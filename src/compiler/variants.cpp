#include "compiler/variants.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"
#include "compiler/lowering.hpp"

namespace everest::compiler {

CpuModel CpuModel::power9() {
  CpuModel m;
  m.name = "POWER9";
  m.cores = 16;
  m.peak_gflops_per_core = 14.0;
  m.mem_bw_gbps = 110.0;
  m.l2_kib_per_core = 512.0;
  m.active_power_w = 190.0;
  m.idle_power_w = 60.0;
  return m;
}

CpuModel CpuModel::edge_arm() {
  CpuModel m;
  m.name = "Edge-ARM";
  m.cores = 4;
  m.peak_gflops_per_core = 4.0;
  m.mem_bw_gbps = 12.8;
  m.l2_kib_per_core = 256.0;
  m.active_power_w = 12.0;
  m.idle_power_w = 3.0;
  return m;
}

std::string_view to_string(TargetKind kind) {
  return kind == TargetKind::kCpu ? "cpu" : "fpga";
}

SwEstimate estimate_software(const KernelProfile& profile, const CpuModel& cpu,
                             int threads, int tile,
                             const std::string& layout) {
  SwEstimate out;
  threads = std::clamp(threads, 1, cpu.cores);

  // Compute efficiency: tiling that fits L2 keeps the SIMD pipes fed.
  double compute_eff = 0.55;
  if (tile > 0) {
    const double tile_bytes = double(tile) * double(tile) * 8.0;
    compute_eff = tile_bytes <= cpu.l2_kib_per_core * 1024.0 ? 0.85 : 0.5;
  }
  const double effective_gflops =
      cpu.peak_gflops_per_core * threads * compute_eff;
  const double flop_equiv =
      profile.flops + profile.special_ops * cpu.special_op_cost;
  out.compute_us = flop_equiv / (effective_gflops * 1e3);  // GFLOP/s → us

  // Memory: SoA streams at full bandwidth; AoS wastes cache lines when only
  // one field is touched. Bandwidth saturates after a few cores.
  const double layout_eff = layout == "soa" ? 1.0 : 0.45;
  const double bw_scale =
      std::min(1.0, 0.35 + 0.65 * double(threads) / double(cpu.cores));
  const double effective_bw = cpu.mem_bw_gbps * layout_eff * bw_scale;
  out.memory_us = profile.total_bytes() / (effective_bw * 1e3);  // GB/s → us

  // Roofline with a small overlap bonus.
  out.latency_us = std::max(out.compute_us, out.memory_us) +
                   0.25 * std::min(out.compute_us, out.memory_us);
  const double busy_fraction = double(threads) / double(cpu.cores);
  const double power =
      cpu.idle_power_w + (cpu.active_power_w - cpu.idle_power_w) * busy_fraction;
  out.energy_uj = power * out.latency_us;  // W * us = uJ
  return out;
}

namespace {

/// Bytes moved in/out of the kernel, from the tensor signature.
void io_bytes(const ir::Function& fn, double* in_bytes, double* out_bytes) {
  *in_bytes = 0;
  *out_bytes = 0;
  for (const ir::Type& t : fn.input_types()) {
    if (t.is_shaped()) *in_bytes += double(t.byte_size());
  }
  for (const ir::Type& t : fn.result_types()) {
    if (t.is_shaped()) *out_bytes += double(t.byte_size());
  }
}

}  // namespace

Result<std::vector<Variant>> generate_variants(ir::Module& module,
                                               const std::string& tensor_fn,
                                               const VariantSpace& space,
                                               const CpuModel& cpu) {
  ir::Function* fn = module.find(tensor_fn);
  if (fn == nullptr) return NotFound("function '" + tensor_fn + "' not found");
  EVEREST_ASSIGN_OR_RETURN(KernelProfile profile, profile_kernel(*fn));
  double bytes_in = 0, bytes_out = 0;
  io_bytes(*fn, &bytes_in, &bytes_out);

  std::vector<Variant> variants;

  // Software variants.
  for (int threads : space.thread_counts) {
    for (int tile : space.tile_sizes) {
      for (const std::string& layout : space.layouts) {
        Variant v;
        v.kernel = tensor_fn;
        v.target = TargetKind::kCpu;
        v.threads = threads;
        v.tile = tile;
        v.layout = layout;
        v.id = strprintf("cpu-t%d-tile%d-%s", threads, tile, layout.c_str());
        const SwEstimate est =
            estimate_software(profile, cpu, threads, tile, layout);
        v.latency_us = est.latency_us;
        v.energy_uj = est.energy_uj;
        v.bytes_in = bytes_in;
        v.bytes_out = bytes_out;
        variants.push_back(std::move(v));
      }
    }
  }

  // Hardware variants: lower once, synthesize per device × unroll.
  if (!space.devices.empty()) {
    const std::string kernel_name = tensor_fn + "_kernel";
    if (module.find(kernel_name) == nullptr) {
      EVEREST_RETURN_IF_ERROR(
          lower_to_kernel(module, tensor_fn).status());
    }
    ir::Function* kernel_fn = module.find(kernel_name);
    const auto offchip_bytes =
        static_cast<std::int64_t>(bytes_in + bytes_out);
    for (const hls::FpgaDevice& device : space.devices) {
      for (int unroll : space.unroll_factors) {
        std::vector<std::pair<bool, std::string>> security_modes = {
            {false, ""}};
        if (space.with_dift) security_modes.push_back({true, ""});
        if (!space.with_encryption.empty()) {
          security_modes.push_back({false, space.with_encryption});
        }
        for (const auto& [dift, encryption] : security_modes) {
          hls::HlsConfig config;
          config.unroll = unroll;
          config.enable_dift = dift;
          config.encrypt_offchip = encryption;
          auto design =
              hls::synthesize(*kernel_fn, config, device, offchip_bytes);
          if (!design.ok()) continue;  // does not fit: skip this point
          Variant v;
          v.kernel = tensor_fn;
          v.target = TargetKind::kFpga;
          v.unroll = unroll;
          v.device = device.name;
          v.dift = dift;
          v.encrypted = encryption;
          v.id = strprintf("fpga-%s-u%d%s%s", device.name.c_str(), unroll,
                           dift ? "-dift" : "",
                           encryption.empty() ? "" : "-enc");
          v.latency_us = design->estimate.latency_us;
          v.energy_uj = design->estimate.energy_uj();
          v.area_fraction = design->estimate.resources.utilization(device);
          v.bytes_in = bytes_in;
          v.bytes_out = bytes_out;
          variants.push_back(std::move(v));
        }
      }
    }
  }
  return variants;
}

json::Value Variant::to_json() const {
  json::Object o;
  o["id"] = id;
  o["kernel"] = kernel;
  o["target"] = std::string(compiler::to_string(target));
  o["threads"] = threads;
  o["tile"] = tile;
  o["layout"] = layout;
  o["unroll"] = unroll;
  o["device"] = device;
  o["dift"] = dift;
  o["encrypted"] = encrypted;
  if (specialized_scale > 0.0) o["specialized_scale"] = specialized_scale;
  o["latency_us"] = latency_us;
  o["energy_uj"] = energy_uj;
  o["area_fraction"] = area_fraction;
  o["bytes_in"] = bytes_in;
  o["bytes_out"] = bytes_out;
  return o;
}

Result<Variant> Variant::from_json(const json::Value& v) {
  if (!v.is_object()) return InvalidArgument("variant JSON must be an object");
  Variant out;
  out.id = v.at("id").as_string();
  out.kernel = v.at("kernel").as_string();
  if (out.id.empty() || out.kernel.empty()) {
    return InvalidArgument("variant JSON needs non-empty id and kernel");
  }
  out.target = v.at("target").as_string() == "fpga" ? TargetKind::kFpga
                                                    : TargetKind::kCpu;
  out.threads = static_cast<int>(v.at("threads").as_int());
  out.tile = static_cast<int>(v.at("tile").as_int());
  out.layout = v.at("layout").as_string();
  out.unroll = static_cast<int>(v.at("unroll").as_int());
  out.device = v.at("device").as_string();
  out.dift = v.at("dift").as_bool();
  out.encrypted = v.at("encrypted").as_string();
  // Absent in metadata emitted before shape specialization existed.
  if (v.contains("specialized_scale")) {
    out.specialized_scale = v.at("specialized_scale").as_number();
  }
  out.latency_us = v.at("latency_us").as_number();
  out.energy_uj = v.at("energy_uj").as_number();
  out.area_fraction = v.at("area_fraction").as_number();
  out.bytes_in = v.at("bytes_in").as_number();
  out.bytes_out = v.at("bytes_out").as_number();
  return out;
}

json::Value variants_to_json(const std::vector<Variant>& variants) {
  json::Array arr;
  arr.reserve(variants.size());
  for (const Variant& v : variants) arr.push_back(v.to_json());
  json::Object o;
  o["variants"] = std::move(arr);
  o["schema"] = "everest.variants.v1";
  return o;
}

Result<std::vector<Variant>> variants_from_json(const json::Value& v) {
  if (v.at("schema").as_string() != "everest.variants.v1") {
    return InvalidArgument("unknown variant metadata schema");
  }
  std::vector<Variant> out;
  for (const json::Value& item : v.at("variants").as_array()) {
    EVEREST_ASSIGN_OR_RETURN(Variant variant, Variant::from_json(item));
    out.push_back(std::move(variant));
  }
  return out;
}

}  // namespace everest::compiler
