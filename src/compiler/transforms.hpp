// Middle-end transformations over the EVEREST IR (paper Fig. 1 middle-end):
// classic cleanups (constant folding, CSE, DCE) as passes, plus loop-level
// utilities (tiling, interchange with a dependence legality check) used by
// the variant generator.
#pragma once

#include "common/status.hpp"
#include "ir/module.hpp"
#include "ir/pass.hpp"

namespace everest::compiler {

/// Folds kernel.binop / kernel.unop / tensor elementwise ops whose operands
/// are builtin.constants.
class ConstantFoldPass : public ir::Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "constant-fold"; }
  Status run(ir::Module& module) override;
};

/// Common-subexpression elimination within each block for side-effect-free
/// ops (same name, operands, and attributes).
class CsePass : public ir::Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "cse"; }
  Status run(ir::Module& module) override;
};

/// Removes side-effect-free ops whose results are unused.
class DcePass : public ir::Pass {
 public:
  [[nodiscard]] std::string_view name() const override { return "dce"; }
  Status run(ir::Module& module) override;
};

/// Tiles the innermost loop of the `nest_index`-th top-level loop nest of
/// `fn` by `factor`: for i in [0,N) → for it in [0,N/T) { for ii in [0,T) }.
/// The trip count must be divisible by the factor.
Status tile_innermost(ir::Function& fn, std::size_t nest_index, int factor);

/// Interchanges loop levels `a` and `b` (0 = outermost) of the given nest.
/// Conservatively legal only when no array is both loaded and stored inside
/// the nest (no loop-carried dependences to violate); returns
/// FAILED_PRECONDITION otherwise.
Status interchange_loops(ir::Function& fn, std::size_t nest_index,
                         std::size_t a, std::size_t b);

/// Number of top-level kernel.for nests in the function.
std::size_t count_loop_nests(const ir::Function& fn);

}  // namespace everest::compiler
