#include "compiler/interpreter.hpp"

#include <cassert>
#include <cmath>
#include <functional>
#include <memory>

#include "dsl/einsum.hpp"

namespace everest::compiler {

TensorValue TensorValue::zeros(std::vector<std::int64_t> shape) {
  TensorValue v;
  v.shape = std::move(shape);
  v.data.assign(static_cast<std::size_t>(v.num_elements()), 0.0);
  return v;
}

TensorValue TensorValue::from(std::vector<std::int64_t> shape,
                              std::vector<double> data) {
  TensorValue v;
  v.shape = std::move(shape);
  v.data = std::move(data);
  return v;
}

namespace {

struct ValueKey {
  const void* def;
  unsigned index;
  bool operator<(const ValueKey& other) const {
    return def != other.def ? def < other.def : index < other.index;
  }
};

ValueKey key_of(const ir::Value& v) {
  if (v.is_op_result()) return {v.defining_op(), v.index()};
  return {v.owner_block(), v.index() + (1u << 30)};
}

double apply_binop(const std::string& kind, double a, double b) {
  if (kind == "add") return a + b;
  if (kind == "sub") return a - b;
  if (kind == "mul") return a * b;
  if (kind == "div") return b != 0.0 ? a / b : 0.0;
  if (kind == "mod") {
    return b != 0.0 ? static_cast<double>(static_cast<std::int64_t>(a) %
                                          static_cast<std::int64_t>(b))
                    : 0.0;
  }
  if (kind == "min") return std::min(a, b);
  if (kind == "max") return std::max(a, b);
  if (kind == "cmplt") return a < b ? 1.0 : 0.0;
  if (kind == "cmple") return a <= b ? 1.0 : 0.0;
  return 0.0;
}

double apply_unop(const std::string& fn, double x) {
  if (fn == "relu") return x > 0 ? x : 0.0;
  if (fn == "exp") return std::exp(x);
  if (fn == "log") return x > 0 ? std::log(x) : 0.0;
  if (fn == "sqrt") return x >= 0 ? std::sqrt(x) : 0.0;
  if (fn == "tanh") return std::tanh(x);
  if (fn == "sigmoid") return 1.0 / (1.0 + std::exp(-x));
  if (fn == "abs") return std::abs(x);
  if (fn == "neg") return -x;
  if (fn == "square") return x * x;
  return x;
}

// ------------------------------------------------------- tensor dialect --

class TensorInterpreter {
 public:
  explicit TensorInterpreter(const ir::Module& module) : module_(module) {}

  Result<std::vector<TensorValue>> run(const ir::Function& fn,
                                       const std::vector<TensorValue>& inputs) {
    if (inputs.size() != fn.input_types().size()) {
      return InvalidArgument("function '" + fn.name() + "' expects " +
                             std::to_string(fn.input_types().size()) +
                             " inputs, got " + std::to_string(inputs.size()));
    }
    std::map<ValueKey, TensorValue> env;
    auto& mutable_fn = const_cast<ir::Function&>(fn);
    for (unsigned i = 0; i < fn.entry().num_args(); ++i) {
      env[key_of(mutable_fn.arg(i))] = inputs[i];
    }
    for (const auto& op : fn.entry()) {
      if (op->name() == "builtin.return") {
        std::vector<TensorValue> results;
        for (std::size_t i = 0; i < op->num_operands(); ++i) {
          results.push_back(env.at(key_of(op->operand(i))));
        }
        return results;
      }
      EVEREST_ASSIGN_OR_RETURN(TensorValue result, eval(*op, env));
      env[{op.get(), 0}] = std::move(result);
    }
    return FailedPrecondition("function has no builtin.return");
  }

 private:
  Result<TensorValue> eval(const ir::Operation& op,
                           std::map<ValueKey, TensorValue>& env) {
    const std::string& name = op.name();
    auto operand = [&](std::size_t i) -> const TensorValue& {
      return env.at(key_of(op.operand(i)));
    };
    if (name == "builtin.constant") {
      const ir::Attribute* a = op.attr("value");
      TensorValue v;
      v.shape = {};
      v.data = {a->is_double() ? a->as_double()
                               : static_cast<double>(a->as_int())};
      return v;
    }
    if (name == "tensor.constant") {
      const ir::Type& t = op.result_types()[0];
      return TensorValue::from(t.shape(), op.attr("value")->as_dense_f64());
    }
    if (name == "tensor.add" || name == "tensor.sub" || name == "tensor.mul" ||
        name == "tensor.div") {
      const std::string kind = name.substr(7);
      const TensorValue& a = operand(0);
      const TensorValue& b = operand(1);
      TensorValue out = a;
      for (std::size_t i = 0; i < out.data.size(); ++i) {
        out.data[i] = apply_binop(kind, a.data[i], b.data[i]);
      }
      return out;
    }
    if (name == "tensor.scale") {
      const TensorValue& a = operand(0);
      const double f = operand(1).data.at(0);
      TensorValue out = a;
      for (double& v : out.data) v *= f;
      return out;
    }
    if (name == "tensor.map") {
      const std::string fn = op.str_attr("fn");
      TensorValue out = operand(0);
      for (double& v : out.data) v = apply_unop(fn, v);
      return out;
    }
    if (name == "tensor.matmul") {
      const TensorValue& a = operand(0);
      const TensorValue& b = operand(1);
      const std::int64_t m = a.shape[0], k = a.shape[1], n = b.shape[1];
      TensorValue out = TensorValue::zeros({m, n});
      for (std::int64_t i = 0; i < m; ++i) {
        for (std::int64_t kk = 0; kk < k; ++kk) {
          const double av = a.data[static_cast<std::size_t>(i * k + kk)];
          for (std::int64_t j = 0; j < n; ++j) {
            out.data[static_cast<std::size_t>(i * n + j)] +=
                av * b.data[static_cast<std::size_t>(kk * n + j)];
          }
        }
      }
      return out;
    }
    if (name == "tensor.reshape") {
      TensorValue out = operand(0);
      out.shape = op.result_types()[0].shape();
      return out;
    }
    if (name == "tensor.contract") return eval_contract(op, env);
    if (name == "tensor.reduce") {
      const std::string kind = op.str_attr("kind");
      const TensorValue& a = operand(0);
      TensorValue out = TensorValue::zeros({});
      if (a.data.empty()) return out;
      double acc = kind == "max" || kind == "min" ? a.data[0] : 0.0;
      for (double v : a.data) {
        if (kind == "max") acc = std::max(acc, v);
        else if (kind == "min") acc = std::min(acc, v);
        else acc += v;
      }
      if (kind == "mean") acc /= static_cast<double>(a.data.size());
      out.data[0] = acc;
      return out;
    }
    if (name == "tensor.transpose") {
      const TensorValue& a = operand(0);
      const auto perm = op.attr("perm")->as_int_array();
      const ir::Type& rt = op.result_types()[0];
      TensorValue out = TensorValue::zeros(rt.shape());
      const std::size_t rank = perm.size();
      // Strides.
      std::vector<std::int64_t> in_stride(rank, 1), out_stride(rank, 1);
      for (std::size_t d = rank - 1; d-- > 0;) {
        in_stride[d] = in_stride[d + 1] * a.shape[d + 1];
        out_stride[d] = out_stride[d + 1] * out.shape[d + 1];
      }
      std::vector<std::int64_t> idx(rank, 0);
      const std::int64_t total = out.num_elements();
      for (std::int64_t flat = 0; flat < total; ++flat) {
        // out[idx] = in[j] with j[perm[d]] = idx[d].
        std::int64_t in_flat = 0;
        for (std::size_t d = 0; d < rank; ++d) {
          in_flat += idx[d] * in_stride[static_cast<std::size_t>(perm[d])];
        }
        out.data[static_cast<std::size_t>(flat)] =
            a.data[static_cast<std::size_t>(in_flat)];
        for (std::size_t d = rank; d-- > 0;) {
          if (++idx[d] < out.shape[d]) break;
          idx[d] = 0;
        }
      }
      return out;
    }
    return Unimplemented("tensor interpreter: unsupported op '" + name + "'");
  }

  Result<TensorValue> eval_contract(const ir::Operation& op,
                                    std::map<ValueKey, TensorValue>& env) {
    EVEREST_ASSIGN_OR_RETURN(dsl::EinsumSpec spec,
                             dsl::parse_einsum(op.str_attr("spec")));
    std::vector<const TensorValue*> operands;
    std::vector<std::vector<std::int64_t>> shapes;
    for (std::size_t i = 0; i < op.num_operands(); ++i) {
      operands.push_back(&env.at(key_of(op.operand(i))));
      shapes.push_back(operands.back()->shape);
    }
    EVEREST_ASSIGN_OR_RETURN(auto extents,
                             dsl::infer_index_extents(spec, shapes));
    EVEREST_ASSIGN_OR_RETURN(auto out_shape,
                             dsl::infer_output_shape(spec, shapes));
    TensorValue out = TensorValue::zeros(out_shape);
    const std::string order = spec.all_indices();
    std::map<char, std::int64_t> idx;
    for (char c : order) idx[c] = 0;
    // Iterate the full index space.
    std::function<void(std::size_t)> recurse = [&](std::size_t depth) {
      if (depth == order.size()) {
        double product = 1.0;
        for (std::size_t i = 0; i < operands.size(); ++i) {
          std::int64_t flat = 0;
          for (char c : spec.inputs[i]) {
            flat = flat * extents.at(c) + idx.at(c);
          }
          product *= operands[i]->data[static_cast<std::size_t>(flat)];
        }
        std::int64_t out_flat = 0;
        for (char c : spec.output) {
          out_flat = out_flat * extents.at(c) + idx.at(c);
        }
        out.data[static_cast<std::size_t>(out_flat)] += product;
        return;
      }
      const char c = order[depth];
      for (std::int64_t i = 0; i < extents.at(c); ++i) {
        idx[c] = i;
        recurse(depth + 1);
      }
    };
    recurse(0);
    return out;
  }

  const ir::Module& module_;
};

// ------------------------------------------------------- kernel dialect --

std::int64_t fn_int_attr(const ir::Function& fn, const char* key,
                         std::int64_t fallback) {
  const ir::Attribute* a = fn.attr(key);
  return a != nullptr && a->is_int() ? a->as_int() : fallback;
}

class KernelInterpreter {
 public:
  Result<std::vector<TensorValue>> run(
      ir::Function& fn, const std::vector<TensorValue>& bound) {
    const auto num_inputs =
        static_cast<std::size_t>(fn_int_attr(fn, "ev.num_inputs", 0));
    const auto num_constants =
        static_cast<std::size_t>(fn_int_attr(fn, "ev.promoted_constants", 0));
    const auto num_outputs =
        static_cast<std::size_t>(fn_int_attr(fn, "ev.num_outputs", 0));
    if (num_inputs + num_outputs == 0 ||
        fn.entry().num_args() != num_inputs + num_constants + num_outputs) {
      return FailedPrecondition(
          "function '" + fn.name() +
          "' lacks lowering metadata (run lower_to_kernel first)");
    }
    if (bound.size() != num_inputs + num_constants) {
      return InvalidArgument("expected " +
                             std::to_string(num_inputs + num_constants) +
                             " bound values, got " +
                             std::to_string(bound.size()));
    }
    // Bind buffers.
    for (std::size_t i = 0; i < bound.size(); ++i) {
      auto buf = std::make_shared<TensorValue>(bound[i]);
      buffers_[key_of(fn.arg(static_cast<unsigned>(i)))] = buf;
    }
    std::vector<std::shared_ptr<TensorValue>> outputs;
    for (std::size_t o = 0; o < num_outputs; ++o) {
      const unsigned arg = static_cast<unsigned>(bound.size() + o);
      const ir::Type& t = fn.input_types()[arg];
      auto buf = std::make_shared<TensorValue>(TensorValue::zeros(t.shape()));
      buffers_[key_of(fn.arg(arg))] = buf;
      outputs.push_back(buf);
    }
    EVEREST_RETURN_IF_ERROR(exec_block(fn.entry()));
    std::vector<TensorValue> out;
    for (const auto& buf : outputs) out.push_back(*buf);
    return out;
  }

 private:
  Status exec_block(ir::Block& block) {
    for (auto& op : block) {
      EVEREST_RETURN_IF_ERROR(exec_op(*op));
    }
    return OkStatus();
  }

  Status exec_op(ir::Operation& op) {
    const std::string& name = op.name();
    if (name == "builtin.return" || name == "kernel.yield") return OkStatus();
    if (name == "builtin.constant") {
      const ir::Attribute* a = op.attr("value");
      scalars_[{&op, 0}] = a->is_double()
                               ? a->as_double()
                               : static_cast<double>(a->as_int());
      return OkStatus();
    }
    if (name == "kernel.alloc") {
      buffers_[{&op, 0}] = std::make_shared<TensorValue>(
          TensorValue::zeros(op.result_types()[0].shape()));
      return OkStatus();
    }
    if (name == "kernel.for") {
      const std::int64_t lb = op.int_attr("lb");
      const std::int64_t ub = op.int_attr("ub");
      const std::int64_t step = op.int_attr("step", 1);
      ir::Block& body = op.region(0).front();
      for (std::int64_t i = lb; i < ub; i += step) {
        scalars_[key_of(body.arg(0))] = static_cast<double>(i);
        EVEREST_RETURN_IF_ERROR(exec_block(body));
      }
      return OkStatus();
    }
    if (name == "kernel.load") {
      auto buf = buffers_.find(key_of(op.operand(0)));
      if (buf == buffers_.end()) return Internal("load from unbound buffer");
      std::int64_t flat = 0;
      const auto& shape = buf->second->shape;
      for (std::size_t d = 0; d < shape.size(); ++d) {
        flat = flat * shape[d] +
               static_cast<std::int64_t>(scalar(op.operand(d + 1)));
      }
      if (flat < 0 || flat >= buf->second->num_elements()) {
        return OutOfRange("load index " + std::to_string(flat) +
                          " outside buffer");
      }
      scalars_[{&op, 0}] = buf->second->data[static_cast<std::size_t>(flat)];
      return OkStatus();
    }
    if (name == "kernel.store") {
      auto buf = buffers_.find(key_of(op.operand(1)));
      if (buf == buffers_.end()) return Internal("store to unbound buffer");
      std::int64_t flat = 0;
      const auto& shape = buf->second->shape;
      for (std::size_t d = 0; d < shape.size(); ++d) {
        flat = flat * shape[d] +
               static_cast<std::int64_t>(scalar(op.operand(d + 2)));
      }
      if (flat < 0 || flat >= buf->second->num_elements()) {
        return OutOfRange("store index " + std::to_string(flat) +
                          " outside buffer");
      }
      buf->second->data[static_cast<std::size_t>(flat)] = scalar(op.operand(0));
      return OkStatus();
    }
    if (name == "kernel.binop") {
      scalars_[{&op, 0}] = apply_binop(op.str_attr("op"), scalar(op.operand(0)),
                                       scalar(op.operand(1)));
      return OkStatus();
    }
    if (name == "kernel.unop") {
      scalars_[{&op, 0}] =
          apply_unop(op.str_attr("fn"), scalar(op.operand(0)));
      return OkStatus();
    }
    if (name == "kernel.cast") {
      scalars_[{&op, 0}] = scalar(op.operand(0));
      return OkStatus();
    }
    return Unimplemented("kernel interpreter: unsupported op '" + name + "'");
  }

  double scalar(const ir::Value& v) const {
    auto it = scalars_.find(key_of(v));
    assert(it != scalars_.end() && "use of undefined scalar");
    return it == scalars_.end() ? 0.0 : it->second;
  }

  std::map<ValueKey, double> scalars_;
  std::map<ValueKey, std::shared_ptr<TensorValue>> buffers_;
};

}  // namespace

Result<std::vector<TensorValue>> run_tensor_function(
    const ir::Module& module, const std::string& function,
    const std::vector<TensorValue>& inputs) {
  const ir::Function* fn = module.find(function);
  if (fn == nullptr) return NotFound("function '" + function + "' not found");
  return TensorInterpreter(module).run(*fn, inputs);
}

Result<std::vector<TensorValue>> run_kernel_function(
    ir::Module& module, const std::string& function,
    const std::vector<TensorValue>& inputs_and_constants) {
  ir::Function* fn = module.find(function);
  if (fn == nullptr) return NotFound("function '" + function + "' not found");
  return KernelInterpreter().run(*fn, inputs_and_constants);
}

Result<std::vector<TensorValue>> promoted_constant_values(
    const ir::Module& module, const std::string& tensor_function) {
  const ir::Function* fn = module.find(tensor_function);
  if (fn == nullptr) {
    return NotFound("function '" + tensor_function + "' not found");
  }
  std::vector<TensorValue> out;
  for (const auto& op : fn->entry()) {
    if (op->name() != "tensor.constant") continue;
    out.push_back(TensorValue::from(op->result_types()[0].shape(),
                                    op->attr("value")->as_dense_f64()));
  }
  return out;
}

}  // namespace everest::compiler
