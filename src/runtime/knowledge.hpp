// Application knowledge base (mARGOt-style, paper §IV): holds the variant
// metadata emitted by the compiler plus online observations, and blends the
// two into calibrated expectations.
//
// Hot-swap contract (the compile↔serve loop, DESIGN.md row 20): the
// variant set of a kernel is an immutable snapshot behind a shared_ptr.
// Readers (autotuner selection, serving workers) grab the snapshot once
// and iterate it lock-free; writers (the JIT compilation service
// publishing freshly minted variants, or retiring superseded ones) build
// a NEW vector and swap the pointer under the mutex, bumping the kernel's
// epoch. Epoch-based retirement falls out of the shared_ptr: a batch that
// selected against epoch N keeps that snapshot alive until it finishes,
// while every selection started after the swap sees epoch N+1 — a retired
// variant is never handed to a NEW batch (regression-tested under TSan in
// test_runtime).
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "compiler/variants.hpp"

namespace everest::runtime {

/// Online measurements for one variant.
struct Observation {
  Ewma latency_us{0.2};
  Ewma energy_uj{0.2};
  int samples = 0;
};

/// Immutable snapshot of one kernel's variant set. Holders may iterate it
/// without locks for as long as they keep the pointer alive.
using VariantSet = std::shared_ptr<const std::vector<compiler::Variant>>;

/// Per-application store of variants and their observed behavior.
///
/// Thread safety: everything is safe to call concurrently. observe /
/// expected_* / observation_count are guarded by an internal mutex;
/// variants_for returns an immutable snapshot (see the hot-swap contract
/// above), so any number of serving workers may select variants while the
/// JIT publishes new ones mid-flight.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  /// Copies take a consistent snapshot of the source (its mutex is held
  /// during the copy); the copy starts with its own unlocked mutex.
  KnowledgeBase(const KnowledgeBase& other);
  KnowledgeBase& operator=(const KnowledgeBase& other);

  /// Loads compiler metadata (appends; ids must be unique per kernel).
  Status load(const std::vector<compiler::Variant>& variants);
  /// Convenience: load from serialized metadata.
  Status load_json(const std::string& json_text);

  [[nodiscard]] std::vector<std::string> kernels() const;
  /// Immutable snapshot of the kernel's current variant set (never null;
  /// empty vector for unknown kernels). Iterate the snapshot, not
  /// repeated calls — each call may observe a newer epoch.
  [[nodiscard]] VariantSet variants_for(const std::string& kernel) const;
  /// Copy of the named variant in the CURRENT snapshot (nullopt when the
  /// kernel or id is unknown — including ids retired by a hot swap).
  [[nodiscard]] std::optional<compiler::Variant> find(
      const std::string& kernel, const std::string& variant_id) const;

  // ---- hot swap (the JIT publish path) ----

  /// Adds or replaces variants by id in one atomic swap. Replaced ids
  /// drop their accumulated observations (a re-minted variant is new
  /// code; stale EWMAs would mis-calibrate it). Bumps the kernel epoch.
  /// Returns the post-swap epoch via `epoch_out` when non-null.
  Status upsert(const std::string& kernel,
                const std::vector<compiler::Variant>& minted,
                std::uint64_t* epoch_out = nullptr);

  /// Removes the named variants in one atomic swap (their observations
  /// too). Unknown ids are ignored. Returns how many were removed; bumps
  /// the epoch when at least one was.
  std::size_t retire(const std::string& kernel,
                     const std::vector<std::string>& variant_ids,
                     std::uint64_t* epoch_out = nullptr);

  /// Monotone per-kernel version: bumped by every load/upsert/retire that
  /// changed the set. 0 = kernel never loaded.
  [[nodiscard]] std::uint64_t epoch(const std::string& kernel) const;

  /// Records a runtime measurement for a variant.
  void observe(const std::string& kernel, const std::string& variant_id,
               double latency_us, double energy_uj);

  /// Expected latency/energy: the static estimate until enough samples
  /// exist, then the observed EWMA (smooth handover after 3 samples).
  [[nodiscard]] double expected_latency(const std::string& kernel,
                                        const compiler::Variant& variant) const;
  [[nodiscard]] double expected_energy(const std::string& kernel,
                                       const compiler::Variant& variant) const;

  [[nodiscard]] int observation_count(const std::string& kernel,
                                      const std::string& variant_id) const;

 private:
  /// Looks up an observation; caller must hold mu_.
  [[nodiscard]] const Observation* observation(
      const std::string& kernel, const std::string& variant_id) const;

  /// Guards the snapshot map, epochs, and observations.
  mutable std::mutex mu_;
  std::map<std::string, VariantSet> variants_;
  std::map<std::string, std::uint64_t> epochs_;
  std::map<std::string, std::map<std::string, Observation>> observations_;
};

}  // namespace everest::runtime
