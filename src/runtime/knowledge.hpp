// Application knowledge base (mARGOt-style, paper §IV): holds the variant
// metadata emitted by the compiler plus online observations, and blends the
// two into calibrated expectations.
#pragma once

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/status.hpp"
#include "compiler/variants.hpp"

namespace everest::runtime {

/// Online measurements for one variant.
struct Observation {
  Ewma latency_us{0.2};
  Ewma energy_uj{0.2};
  int samples = 0;
};

/// Per-application store of variants and their observed behavior.
///
/// Thread safety: observations (observe / expected_* / observation_count)
/// are guarded by an internal mutex, so any number of serving workers may
/// record measurements while others select variants. Variant *loading* is
/// a setup-phase operation: `load`/`load_json` must complete before
/// concurrent readers start, because `variants_for` hands out references
/// into the store.
class KnowledgeBase {
 public:
  KnowledgeBase() = default;
  /// Copies take a consistent snapshot of the source (its mutex is held
  /// during the copy); the copy starts with its own unlocked mutex.
  KnowledgeBase(const KnowledgeBase& other);
  KnowledgeBase& operator=(const KnowledgeBase& other);

  /// Loads compiler metadata (appends; ids must be unique per kernel).
  Status load(const std::vector<compiler::Variant>& variants);
  /// Convenience: load from serialized metadata.
  Status load_json(const std::string& json_text);

  [[nodiscard]] std::vector<std::string> kernels() const;
  [[nodiscard]] const std::vector<compiler::Variant>& variants_for(
      const std::string& kernel) const;
  [[nodiscard]] const compiler::Variant* find(const std::string& kernel,
                                              const std::string& variant_id) const;

  /// Records a runtime measurement for a variant.
  void observe(const std::string& kernel, const std::string& variant_id,
               double latency_us, double energy_uj);

  /// Expected latency/energy: the static estimate until enough samples
  /// exist, then the observed EWMA (smooth handover after 3 samples).
  [[nodiscard]] double expected_latency(const std::string& kernel,
                                        const compiler::Variant& variant) const;
  [[nodiscard]] double expected_energy(const std::string& kernel,
                                       const compiler::Variant& variant) const;

  [[nodiscard]] int observation_count(const std::string& kernel,
                                      const std::string& variant_id) const;

 private:
  /// Looks up an observation; caller must hold mu_.
  [[nodiscard]] const Observation* observation(
      const std::string& kernel, const std::string& variant_id) const;

  /// Guards observations_ (and load-time mutation of variants_).
  mutable std::mutex mu_;
  std::map<std::string, std::vector<compiler::Variant>> variants_;
  std::map<std::string, std::map<std::string, Observation>> observations_;
};

}  // namespace everest::runtime
