// The multi-node EVEREST demonstrator (paper §V: "We aim at developing a
// small multi-node demonstrator based on the technology and the components
// available during the project's timeline").
//
// Ties the layers together end to end: a HyperLoom-style task graph is
// scheduled across the platform's nodes; for every task the mARGOt-style
// autotuner picks a variant given that node's live state (CPU pressure,
// FPGA queue, protection level); the platform executor prices the run
// (compute + link transfers + reconfiguration); monitors feed back into the
// knowledge base. The result is the full Fig. 1 → Fig. 2 → Fig. 4 loop in
// one call.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "platform/node.hpp"
#include "resilience/circuit_breaker.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"
#include "workflow/task_graph.hpp"

namespace everest::runtime {

/// Where one task ran and what it cost.
struct TaskPlacement {
  std::string task;
  std::string node;
  std::string variant_id;
  double start_us = 0.0;
  double end_us = 0.0;
  double transfer_us = 0.0;
  double reconfig_us = 0.0;
  double energy_uj = 0.0;
};

/// Aggregate outcome of one demonstrator run.
struct DemonstratorRun {
  double makespan_us = 0.0;
  double total_energy_uj = 0.0;
  double bytes_moved = 0.0;
  std::vector<TaskPlacement> placements;
  /// Variant-id → times selected.
  std::map<std::string, int> variant_mix;
  /// Node → busy time (us).
  std::map<std::string, double> node_busy_us;
};

struct DemonstratorOptions {
  Goal goal;
  /// Extra CPU load per node (co-tenants), 0..1.
  double background_cpu_load = 0.0;
  /// Tasks whose kernel has no variants fall back to a generic CPU cost
  /// (flops / node-throughput) instead of failing.
  bool allow_generic_tasks = true;
  /// Optional (borrowed) breaker board keyed (node name, variant id):
  /// variants whose breaker is open on a node are not considered there,
  /// so placement degrades around unhealthy accelerators. Failed FPGA
  /// slots (FpgaSlot::failed) are always skipped.
  resilience::CircuitBreakerBoard* breakers = nullptr;
};

/// Executes the task graph on the platform. Tasks whose `kernel` matches a
/// knowledge-base entry are autotuned; placement greedily minimizes
/// predicted finish time (data transfers included). Node/FPGA state
/// (role caching, queue depths) persists across tasks.
Result<DemonstratorRun> run_demonstrator(
    const platform::PlatformSpec& platform_template,
    const KnowledgeBase& knowledge, const workflow::TaskGraph& graph,
    const DemonstratorOptions& options = {});

}  // namespace everest::runtime
