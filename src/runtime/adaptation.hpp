// The closed control loop of the virtualized runtime (paper §IV, Fig. 2):
// monitors feed the anomaly detectors and the knowledge base; the
// auto-protection policy sets the protection level; the autotuner picks the
// variant; the hypervisor executes it. One AdaptationLoop instance manages
// one application on one node.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "obs/trace.hpp"
#include "resilience/circuit_breaker.hpp"
#include "resilience/retry.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"
#include "runtime/vm.hpp"
#include "security/anomaly.hpp"

namespace everest::runtime {

/// One completed invocation, as reported to the caller.
struct InvocationRecord {
  std::string kernel;
  std::string variant_id;
  double latency_us = 0.0;
  double energy_uj = 0.0;
  bool anomaly_flagged = false;
  security::ProtectionLevel protection_after =
      security::ProtectionLevel::kNormal;
  /// Executions it took (1 = first try succeeded).
  int attempts = 1;
  /// The invocation ran, but on a fallback variant because breakers
  /// withheld the preferred implementation (degraded mode).
  bool degraded = false;
};

/// Per-invocation environment the caller supplies (workload knobs).
struct InvocationContext {
  /// Data-volume scale relative to the profiled size.
  double data_scale = 1.0;
  /// CPU contention from other tenants (0..1).
  double cpu_load = 0.0;
  /// Behavioral overrides for attack injection (0 = derive from run).
  double injected_latency_us = 0.0;
  double injected_bytes = 0.0;
  /// Fault injection: probability that one FPGA-target execution fails
  /// (reconfiguration or offload error). Failures feed the circuit
  /// breakers and are retried per the retry policy.
  double fault_probability = 0.0;
};

class AdaptationLoop {
 public:
  /// The loop borrows the knowledge base (shared with other loops) and owns
  /// a hypervisor bound to one node.
  AdaptationLoop(KnowledgeBase* kb, Hypervisor hypervisor, VmHandle vm)
      : kb_(kb), tuner_(kb), hypervisor_(std::move(hypervisor)), vm_(vm) {}

  /// Runs one invocation of `kernel` under `goal`, advancing virtual time.
  Result<InvocationRecord> invoke(const std::string& kernel, const Goal& goal,
                                  const InvocationContext& ctx = {});

  [[nodiscard]] double now_us() const { return now_us_; }
  [[nodiscard]] security::ProtectionLevel protection(
      const std::string& kernel) const;

  /// Measurement noise applied to observed latency (std fraction).
  void set_noise(double fraction, std::uint64_t seed) {
    noise_fraction_ = fraction;
    rng_.reseed(seed);
  }

  /// Arms fault tolerance: failed executions trip per-(kernel, variant)
  /// breakers on the (borrowed) board, retries follow `policy`, and
  /// selection skips variants whose breaker is open.
  void set_resilience(resilience::CircuitBreakerBoard* board,
                      resilience::RetryPolicy policy = {}) {
    breakers_ = board;
    retry_policy_ = policy;
  }
  [[nodiscard]] const resilience::CircuitBreakerBoard* breakers() const {
    return breakers_;
  }

  /// Span sink (borrowed; may be null). Each invoke() emits one span on
  /// the loop's virtual clock (sim domain), annotated with the
  /// autotuner's variant decision, attempt count, and the monitors'
  /// verdict. `track` is the render lane (e.g. the node index).
  void set_tracer(obs::Tracer* tracer, std::uint32_t track = 0) {
    tracer_ = tracer;
    track_ = track;
  }

 private:
  KnowledgeBase* kb_;
  Autotuner tuner_;
  Hypervisor hypervisor_;
  VmHandle vm_;
  double now_us_ = 0.0;
  double noise_fraction_ = 0.0;
  Rng rng_{123};
  resilience::CircuitBreakerBoard* breakers_ = nullptr;
  resilience::RetryPolicy retry_policy_;
  obs::Tracer* tracer_ = nullptr;
  std::uint32_t track_ = 0;
  std::map<std::string, security::AnomalyDetector> detectors_;
  std::map<std::string, security::AutoProtectionPolicy> policies_;
};

}  // namespace everest::runtime
