#include "runtime/demonstrator.hpp"

#include <algorithm>
#include <limits>

#include "platform/executor.hpp"

namespace everest::runtime {

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

/// One candidate execution of a task.
struct Candidate {
  std::size_t node_index = kNone;
  const compiler::Variant* variant = nullptr;  // null = generic CPU task
  double start_us = 0.0;
  double end_us = 0.0;
  double transfer_us = 0.0;
  double reconfig_us = 0.0;
  double energy_uj = 0.0;
  double inter_node_bytes = 0.0;
};

}  // namespace

Result<DemonstratorRun> run_demonstrator(
    const platform::PlatformSpec& platform_template,
    const KnowledgeBase& knowledge, const workflow::TaskGraph& graph,
    const DemonstratorOptions& options) {
  EVEREST_RETURN_IF_ERROR(graph.validate());
  if (platform_template.nodes.empty()) {
    return InvalidArgument("platform has no nodes");
  }
  platform::PlatformSpec platform = platform_template;  // mutable copy

  DemonstratorRun run;
  std::vector<double> node_free(platform.nodes.size(), 0.0);
  std::vector<double> task_finish(graph.size(), 0.0);
  std::vector<std::size_t> task_node(graph.size(), kNone);

  const double load = std::clamp(options.background_cpu_load, 0.0, 0.95);

  for (std::size_t t = 0; t < graph.size(); ++t) {
    const workflow::TaskNode& task = graph.task(t);
    Candidate best;
    double best_score = std::numeric_limits<double>::infinity();

    for (std::size_t n = 0; n < platform.nodes.size(); ++n) {
      platform::NodeSpec& node = platform.nodes[n];
      // When the inputs land on this node.
      double data_ready = 0.0;
      double inter_bytes = 0.0;
      double xfer = 0.0;
      for (std::size_t dep : task.deps) {
        double arrive = task_finish[dep];
        if (task_node[dep] != n && task_node[dep] != kNone) {
          const platform::LinkModel link = platform.link_between(
              platform.nodes[task_node[dep]], node);
          const double move = link.transfer_us(graph.task(dep).output_bytes);
          arrive += move;
          xfer = std::max(xfer, move);
          inter_bytes += graph.task(dep).output_bytes;
        }
        data_ready = std::max(data_ready, arrive);
      }
      const double earliest = std::max(node_free[n], data_ready);

      auto consider = [&](const compiler::Variant* variant, double compute_us,
                          double reconfig_us, double energy_uj) {
        Candidate c;
        c.node_index = n;
        c.variant = variant;
        c.start_us = earliest;
        c.transfer_us = xfer;
        c.reconfig_us = reconfig_us;
        c.end_us = earliest + compute_us + reconfig_us;
        c.energy_uj = energy_uj;
        c.inter_node_bytes = inter_bytes;
        const double score = options.goal.objective == Goal::Objective::kMinEnergy
                                 ? energy_uj + c.end_us * 1e-6
                                 : c.end_us;
        if (score < best_score) {
          best_score = score;
          best = c;
        }
      };

      const runtime::VariantSet variant_snapshot =
          knowledge.variants_for(task.kernel);
      const auto& variants = *variant_snapshot;
      if (!variants.empty()) {
        for (const compiler::Variant& v : variants) {
          // Graceful degradation: a tripped breaker withholds this
          // variant on this node; selection falls back to what remains.
          if (options.breakers != nullptr &&
              !options.breakers->allow(node.name, v.id, node_free[n])) {
            continue;
          }
          if (v.target == compiler::TargetKind::kCpu) {
            auto exec = platform::execute_on_cpu(platform, node, v);
            if (!exec.ok()) continue;
            const double stretched =
                exec->compute_us / std::max(0.05, 1.0 - load);
            consider(&v, stretched, 0.0, exec->energy_uj);
          } else {
            platform::FpgaSlot* slot = platform::find_slot(node, v);
            if (slot == nullptr) continue;
            // Predict without committing the role change.
            const double reconfig = slot->reconfig_us(v.kernel);
            const double io = slot->link.transfer_us(v.bytes_in) +
                              slot->link.transfer_us(v.bytes_out);
            const double energy =
                v.energy_uj + (slot->network_attached ? 50e-6 : 15e-6) *
                                  (v.bytes_in + v.bytes_out);
            consider(&v, v.latency_us + io, reconfig, energy);
          }
        }
      }
      if (variants.empty() && options.allow_generic_tasks) {
        const double gflops =
            node.cpu.peak_gflops_per_core * node.cpu.cores * 0.6 *
            std::max(0.05, 1.0 - load);
        const double compute = task.flops / (gflops * 1e3);
        const double energy = node.cpu.active_power_w * compute * 0.6;
        consider(nullptr, compute, 0.0, energy);
      }
    }

    if (best.node_index == kNone) {
      return FailedPrecondition("task '" + task.name +
                                "' has no runnable variant on any node");
    }
    // Commit: persist FPGA role state for hardware picks.
    platform::NodeSpec& chosen_node = platform.nodes[best.node_index];
    if (best.variant != nullptr &&
        best.variant->target == compiler::TargetKind::kFpga) {
      platform::FpgaSlot* slot =
          platform::find_slot(chosen_node, *best.variant);
      if (slot != nullptr) slot->current_role = best.variant->kernel;
    }
    node_free[best.node_index] = best.end_us;
    task_finish[t] = best.end_us;
    task_node[t] = best.node_index;

    TaskPlacement placement;
    placement.task = task.name;
    placement.node = chosen_node.name;
    placement.variant_id =
        best.variant != nullptr ? best.variant->id : "generic-cpu";
    placement.start_us = best.start_us;
    placement.end_us = best.end_us;
    placement.transfer_us = best.transfer_us;
    placement.reconfig_us = best.reconfig_us;
    placement.energy_uj = best.energy_uj;
    run.placements.push_back(placement);
    run.makespan_us = std::max(run.makespan_us, best.end_us);
    run.total_energy_uj += best.energy_uj;
    run.bytes_moved += best.inter_node_bytes;
    ++run.variant_mix[placement.variant_id];
    run.node_busy_us[chosen_node.name] += best.end_us - best.start_us;
  }
  return run;
}

}  // namespace everest::runtime
