#include "runtime/autotuner.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace everest::runtime {

bool specialization_matches(const compiler::Variant& variant,
                            double data_scale) {
  if (variant.specialized_scale <= 0.0) return true;  // generic code
  if (data_scale <= 0.0) return false;
  // Within half a log2 bucket of the target scale: the window the tile /
  // layout choice was specialized for.
  return std::abs(std::log2(data_scale / variant.specialized_scale)) <= 0.5;
}

bool Autotuner::eligible(const compiler::Variant& variant,
                         const SystemState& state) const {
  using security::ProtectionLevel;
  if (variant.target == compiler::TargetKind::kFpga &&
      state.fpgas_available <= 0) {
    return false;
  }
  // Shape-specialized code only runs on the shapes it was minted for.
  if (!specialization_matches(variant, state.data_scale)) return false;
  switch (state.protection) {
    case ProtectionLevel::kNormal:
    case ProtectionLevel::kMonitor:
      // Monitor prefers protected variants via scoring, not filtering.
      return true;
    case ProtectionLevel::kProtect:
      // Only variants with active protection may run. CPU variants are
      // excluded (no DIFT shadow logic on commodity cores).
      return variant.target == compiler::TargetKind::kFpga &&
             (variant.dift || !variant.encrypted.empty());
    case ProtectionLevel::kQuarantine:
      return false;
  }
  return true;
}

double Autotuner::adjusted_latency(const std::string& kernel,
                                   const compiler::Variant& variant,
                                   const SystemState& state) const {
  double latency = kb_->expected_latency(kernel, variant);
  // Data features: compute scales with volume (linear model).
  latency *= state.data_scale;
  if (variant.target == compiler::TargetKind::kCpu) {
    // Contention leaves (1 - load) of the machine.
    const double free_fraction = std::max(0.05, 1.0 - state.cpu_load);
    latency /= free_fraction;
  } else {
    // Queueing behind outstanding offloads on the shared accelerators.
    latency *= 1.0 + state.fpga_queue_depth;
  }
  return latency;
}

Result<Selection> Autotuner::select(const std::string& kernel,
                                    const Goal& goal,
                                    const SystemState& state) const {
  if (state.protection == security::ProtectionLevel::kQuarantine) {
    return FailedPrecondition("kernel '" + kernel +
                              "' is quarantined by auto-protection");
  }
  // One immutable snapshot per decision: a concurrent hot swap (the JIT
  // publishing mid-flight) is either entirely before or entirely after
  // this selection, never interleaved with it.
  const VariantSet snapshot = kb_->variants_for(kernel);
  const std::vector<compiler::Variant>& variants = *snapshot;
  if (variants.empty()) {
    return NotFound("no variants loaded for kernel '" + kernel + "'");
  }
  const std::uint64_t kb_epoch = kb_->epoch(kernel);

  const bool prefer_protected =
      state.protection == security::ProtectionLevel::kMonitor;

  const Selection* chosen = nullptr;
  Selection best_feasible, best_infeasible;
  double best_feasible_score = std::numeric_limits<double>::infinity();
  double best_violation = std::numeric_limits<double>::infinity();

  int gated = 0;
  for (const compiler::Variant& v : variants) {
    if (!eligible(v, state)) continue;
    if (state.variant_gate && !state.variant_gate(v)) {
      ++gated;
      continue;
    }
    Selection s;
    s.variant = v;
    s.kb_epoch = kb_epoch;
    s.predicted_latency_us = adjusted_latency(kernel, v, state);
    s.predicted_energy_uj =
        kb_->expected_energy(kernel, v) * state.data_scale;
    const double lat_excess =
        std::max(0.0, s.predicted_latency_us - goal.latency_deadline_us);
    const double en_excess =
        std::max(0.0, s.predicted_energy_uj - goal.energy_budget_uj);
    s.constraints_met = lat_excess == 0.0 && en_excess == 0.0;

    double score = goal.objective == Goal::Objective::kMinLatency
                       ? s.predicted_latency_us
                       : s.predicted_energy_uj;
    // In monitor mode, protected variants get a 20% scoring bonus so they
    // win ties against marginally faster unprotected ones.
    if (prefer_protected && (v.dift || !v.encrypted.empty())) score *= 0.8;

    if (s.constraints_met) {
      if (score < best_feasible_score) {
        best_feasible_score = score;
        best_feasible = s;
        chosen = &best_feasible;
      }
    } else if (chosen == nullptr) {
      const double violation =
          lat_excess / std::max(goal.latency_deadline_us, 1e-9) +
          en_excess / std::max(goal.energy_budget_uj, 1e-9);
      if (violation < best_violation) {
        best_violation = violation;
        best_infeasible = s;
      }
    }
  }
  if (chosen != nullptr) return best_feasible;
  if (best_violation < std::numeric_limits<double>::infinity()) {
    return best_infeasible;  // least-violating fallback
  }
  if (gated > 0) {
    return Unavailable("all " + std::to_string(gated) +
                       " eligible variants of kernel '" + kernel +
                       "' are withheld (circuit breakers open)");
  }
  return FailedPrecondition("no eligible variant for kernel '" + kernel +
                            "' under the current protection level");
}

}  // namespace everest::runtime
