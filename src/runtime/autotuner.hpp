// Dynamic variant selection (mARGOt-style, paper §IV): "an intelligent
// policy to select the code variant or hardware configuration to execute,
// among the ones pre-generated at compile time, based on the system
// status". Selection honours (1) dynamic system characteristics,
// (2) the optimization goal, (3) dynamic requirements (security level,
// data features), and (4) resource availability.
#pragma once

#include <functional>
#include <string>

#include "common/status.hpp"
#include "runtime/knowledge.hpp"
#include "security/anomaly.hpp"

namespace everest::runtime {

/// What the application asks for.
struct Goal {
  enum class Objective { kMinLatency, kMinEnergy };
  Objective objective = Objective::kMinLatency;
  /// Constraints (infinity = unconstrained).
  double latency_deadline_us = 1e300;
  double energy_budget_uj = 1e300;
};

/// Snapshot of the system status used to adjust the estimates.
struct SystemState {
  /// FPGA slots reachable right now (0 disables hardware variants).
  int fpgas_available = 1;
  /// Outstanding offloads per available FPGA (queueing delay multiplier).
  double fpga_queue_depth = 0.0;
  /// CPU contention 0..1 (fraction of cores taken by other tenants).
  double cpu_load = 0.0;
  /// Current auto-protection level (restricts eligible variants).
  security::ProtectionLevel protection = security::ProtectionLevel::kNormal;
  /// Data-volume scale vs the profiled size (data feature input).
  double data_scale = 1.0;
  /// Resource-availability gate: variants it rejects are withheld from
  /// selection (e.g. a tripped circuit breaker steering FPGA → CPU).
  /// Null = every variant allowed. If the gate withholds every otherwise
  /// eligible variant, select() returns UNAVAILABLE.
  std::function<bool(const compiler::Variant&)> variant_gate;
};

/// One selection decision with its adjusted expectations.
struct Selection {
  compiler::Variant variant;
  double predicted_latency_us = 0.0;
  double predicted_energy_uj = 0.0;
  bool constraints_met = true;
  /// Knowledge-base epoch of the variant snapshot this decision was made
  /// against (the hot-swap audit trail: a decision stamped epoch N can
  /// only name variants live at N).
  std::uint64_t kb_epoch = 0;
};

/// Does a shape-specialized variant cover the live data scale? Generic
/// variants (specialized_scale == 0) match everything; specialized ones
/// match within half a log2 bucket of their target scale — the same
/// bucketing the serving layer exports data-feature histograms under.
[[nodiscard]] bool specialization_matches(const compiler::Variant& variant,
                                          double data_scale);

/// The decision maker. Stateless across calls except through the shared
/// KnowledgeBase (observations feed back via observe()).
class Autotuner {
 public:
  explicit Autotuner(KnowledgeBase* kb) : kb_(kb) {}

  /// Picks the best eligible variant for `kernel`. NOT_FOUND if the kernel
  /// has no variants, FAILED_PRECONDITION if quarantined.
  Result<Selection> select(const std::string& kernel, const Goal& goal,
                           const SystemState& state) const;

  /// Feeds a runtime measurement back into the knowledge base.
  void observe(const std::string& kernel, const std::string& variant_id,
               double latency_us, double energy_uj) {
    kb_->observe(kernel, variant_id, latency_us, energy_uj);
  }

  /// Adjusted latency estimate for a variant under a system state
  /// (exposed for tests/benches).
  [[nodiscard]] double adjusted_latency(const std::string& kernel,
                                        const compiler::Variant& variant,
                                        const SystemState& state) const;

 private:
  [[nodiscard]] bool eligible(const compiler::Variant& variant,
                              const SystemState& state) const;

  KnowledgeBase* kb_;
};

}  // namespace everest::runtime
