#include "runtime/adaptation.hpp"

#include <algorithm>
#include <cmath>

namespace everest::runtime {

security::ProtectionLevel AdaptationLoop::protection(
    const std::string& kernel) const {
  auto it = policies_.find(kernel);
  return it == policies_.end() ? security::ProtectionLevel::kNormal
                               : it->second.level();
}

Result<InvocationRecord> AdaptationLoop::invoke(const std::string& kernel,
                                                const Goal& goal,
                                                const InvocationContext& ctx) {
  Selection selection;
  VmExecution execution;
  int attempt = 0;
  const double invoke_start_us = now_us_;
  for (;;) {
    ++attempt;
    // 1. Assemble the system state from live signals.
    SystemState state;
    state.cpu_load = ctx.cpu_load;
    state.data_scale = ctx.data_scale;
    state.protection = protection(kernel);
    // Queue signal: normalize waiting time by a typical accelerator
    // latency.
    const double wait = hypervisor_.queue_wait_us("", now_us_);
    state.fpga_queue_depth = wait / 1000.0;
    if (breakers_ != nullptr) {
      state.variant_gate = [this, &kernel](const compiler::Variant& v) {
        return breakers_->allow(kernel, v.id, now_us_);
      };
    }

    // 2. Select (breakers steer away from tripped variants).
    EVEREST_ASSIGN_OR_RETURN(selection, tuner_.select(kernel, goal, state));

    // 3. Execute through the hypervisor, with fault injection: an FPGA
    // offload may fail (reconfiguration error, dead slot); the failure
    // feeds the variant's breaker and the attempt is retried with
    // backoff — re-selection then falls back to a healthy variant.
    const bool injected_fault =
        ctx.fault_probability > 0.0 &&
        selection.variant.target == compiler::TargetKind::kFpga &&
        rng_.bernoulli(ctx.fault_probability);
    if (injected_fault) {
      if (breakers_ != nullptr) {
        breakers_->record(kernel, selection.variant.id, /*success=*/false,
                          now_us_);
      }
      const Status failure =
          Unavailable("injected fault on variant '" + selection.variant.id +
                      "' of kernel '" + kernel + "'");
      if (breakers_ == nullptr ||
          !retry_policy_.should_retry(attempt, failure.code())) {
        return failure;
      }
      now_us_ += retry_policy_.delay_us(attempt, rng_);
      continue;
    }
    EVEREST_ASSIGN_OR_RETURN(
        execution, hypervisor_.execute(vm_, selection.variant, now_us_));
    if (breakers_ != nullptr) {
      breakers_->record(kernel, selection.variant.id, /*success=*/true,
                        now_us_);
    }
    break;
  }
  double latency = (execution.end_us - execution.start_us) * ctx.data_scale;
  if (noise_fraction_ > 0.0) {
    latency *= std::max(0.1, rng_.normal(1.0, noise_fraction_));
  }
  const double energy = execution.breakdown.energy_uj * ctx.data_scale;
  now_us_ += latency;

  // 4. Feed the monitors.
  security::BehaviorSample sample;
  sample.latency_us =
      ctx.injected_latency_us > 0 ? ctx.injected_latency_us : latency;
  sample.bytes = ctx.injected_bytes > 0
                     ? ctx.injected_bytes
                     : (selection.variant.bytes_in +
                        selection.variant.bytes_out) * ctx.data_scale;
  sample.value_range = 100.0;
  sample.access_stride = 1.0;
  const auto verdict = detectors_[kernel].observe(sample);
  const auto level = policies_[kernel].update(verdict);

  // 5. Learn.
  tuner_.observe(kernel, selection.variant.id, latency, energy);

  InvocationRecord record;
  record.kernel = kernel;
  record.variant_id = selection.variant.id;
  record.latency_us = latency;
  record.energy_uj = energy;
  record.anomaly_flagged = verdict.anomalous;
  record.protection_after = level;
  record.attempts = attempt;
  record.degraded =
      breakers_ != nullptr && breakers_->open_count(kernel) > 0;
  if (tracer_ != nullptr && tracer_->enabled()) {
    // One span per invocation on the loop's virtual clock, carrying the
    // variant decision the autotuner made for it.
    tracer_->span(obs::TimeDomain::kSim, tracer_->next_id(),
                  tracer_->next_id(), 0, invoke_start_us, now_us_, track_,
                  kernel, "runtime",
                  {{"variant", record.variant_id},
                   {"predicted_latency_us",
                    std::to_string(selection.predicted_latency_us)},
                   {"attempts", std::to_string(record.attempts)},
                   {"degraded", record.degraded ? "1" : "0"},
                   {"anomaly", record.anomaly_flagged ? "1" : "0"}});
  }
  return record;
}

}  // namespace everest::runtime
