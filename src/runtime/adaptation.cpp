#include "runtime/adaptation.hpp"

#include <algorithm>
#include <cmath>

namespace everest::runtime {

security::ProtectionLevel AdaptationLoop::protection(
    const std::string& kernel) const {
  auto it = policies_.find(kernel);
  return it == policies_.end() ? security::ProtectionLevel::kNormal
                               : it->second.level();
}

Result<InvocationRecord> AdaptationLoop::invoke(const std::string& kernel,
                                                const Goal& goal,
                                                const InvocationContext& ctx) {
  // 1. Assemble the system state from live signals.
  SystemState state;
  state.cpu_load = ctx.cpu_load;
  state.data_scale = ctx.data_scale;
  state.protection = protection(kernel);
  // Queue signal: normalize waiting time by a typical accelerator latency.
  const double wait = hypervisor_.queue_wait_us("", now_us_);
  state.fpga_queue_depth = wait / 1000.0;

  // 2. Select.
  EVEREST_ASSIGN_OR_RETURN(Selection selection,
                           tuner_.select(kernel, goal, state));

  // 3. Execute through the hypervisor.
  EVEREST_ASSIGN_OR_RETURN(
      VmExecution execution,
      hypervisor_.execute(vm_, selection.variant, now_us_));
  double latency = (execution.end_us - execution.start_us) * ctx.data_scale;
  if (noise_fraction_ > 0.0) {
    latency *= std::max(0.1, rng_.normal(1.0, noise_fraction_));
  }
  const double energy = execution.breakdown.energy_uj * ctx.data_scale;
  now_us_ += latency;

  // 4. Feed the monitors.
  security::BehaviorSample sample;
  sample.latency_us =
      ctx.injected_latency_us > 0 ? ctx.injected_latency_us : latency;
  sample.bytes = ctx.injected_bytes > 0
                     ? ctx.injected_bytes
                     : (selection.variant.bytes_in +
                        selection.variant.bytes_out) * ctx.data_scale;
  sample.value_range = 100.0;
  sample.access_stride = 1.0;
  const auto verdict = detectors_[kernel].observe(sample);
  const auto level = policies_[kernel].update(verdict);

  // 5. Learn.
  tuner_.observe(kernel, selection.variant.id, latency, energy);

  InvocationRecord record;
  record.kernel = kernel;
  record.variant_id = selection.variant.id;
  record.latency_us = latency;
  record.energy_uj = energy;
  record.anomaly_flagged = verdict.anomalous;
  record.protection_after = level;
  return record;
}

}  // namespace everest::runtime
