#include "runtime/knowledge.hpp"

#include "common/json.hpp"

namespace everest::runtime {

namespace {
/// The shared "no variants" snapshot unknown kernels answer with.
const VariantSet& empty_set() {
  static const VariantSet kEmpty =
      std::make_shared<const std::vector<compiler::Variant>>();
  return kEmpty;
}
}  // namespace

KnowledgeBase::KnowledgeBase(const KnowledgeBase& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  variants_ = other.variants_;
  epochs_ = other.epochs_;
  observations_ = other.observations_;
}

KnowledgeBase& KnowledgeBase::operator=(const KnowledgeBase& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  variants_ = other.variants_;
  epochs_ = other.epochs_;
  observations_ = other.observations_;
  return *this;
}

Status KnowledgeBase::load(const std::vector<compiler::Variant>& variants) {
  std::lock_guard<std::mutex> lock(mu_);
  // Validate against both the stored sets and the batch itself before
  // mutating anything, so a rejected load leaves the store untouched.
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const compiler::Variant& v = variants[i];
    const VariantSet& current = [&]() -> const VariantSet& {
      auto it = variants_.find(v.kernel);
      return it == variants_.end() ? empty_set() : it->second;
    }();
    for (const compiler::Variant& existing : *current) {
      if (existing.id == v.id) {
        return AlreadyExists("variant '" + v.id + "' already loaded for '" +
                             v.kernel + "'");
      }
    }
    for (std::size_t j = 0; j < i; ++j) {
      if (variants[j].kernel == v.kernel && variants[j].id == v.id) {
        return AlreadyExists("variant '" + v.id + "' duplicated in load for '" +
                             v.kernel + "'");
      }
    }
  }
  // Copy-on-write per touched kernel: one swap each.
  std::map<std::string, std::vector<compiler::Variant>> grown;
  for (const compiler::Variant& v : variants) {
    auto git = grown.find(v.kernel);
    if (git == grown.end()) {
      auto it = variants_.find(v.kernel);
      git = grown.emplace(v.kernel, it == variants_.end()
                                        ? std::vector<compiler::Variant>{}
                                        : *it->second)
                .first;
    }
    git->second.push_back(v);
  }
  for (auto& [kernel, list] : grown) {
    variants_[kernel] =
        std::make_shared<const std::vector<compiler::Variant>>(std::move(list));
    ++epochs_[kernel];
  }
  return OkStatus();
}

Status KnowledgeBase::load_json(const std::string& json_text) {
  EVEREST_ASSIGN_OR_RETURN(json::Value doc, json::parse(json_text));
  EVEREST_ASSIGN_OR_RETURN(std::vector<compiler::Variant> variants,
                           compiler::variants_from_json(doc));
  return load(variants);
}

std::vector<std::string> KnowledgeBase::kernels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [kernel, list] : variants_) out.push_back(kernel);
  return out;
}

VariantSet KnowledgeBase::variants_for(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = variants_.find(kernel);
  return it == variants_.end() ? empty_set() : it->second;
}

std::optional<compiler::Variant> KnowledgeBase::find(
    const std::string& kernel, const std::string& variant_id) const {
  const VariantSet set = variants_for(kernel);
  for (const compiler::Variant& v : *set) {
    if (v.id == variant_id) return v;
  }
  return std::nullopt;
}

Status KnowledgeBase::upsert(const std::string& kernel,
                             const std::vector<compiler::Variant>& minted,
                             std::uint64_t* epoch_out) {
  if (minted.empty()) return InvalidArgument("upsert needs >=1 variant");
  for (const compiler::Variant& v : minted) {
    if (v.kernel != kernel) {
      return InvalidArgument("variant '" + v.id + "' targets kernel '" +
                             v.kernel + "', not '" + kernel + "'");
    }
    if (v.id.empty()) return InvalidArgument("variant needs a non-empty id");
  }
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<compiler::Variant> next;
  auto it = variants_.find(kernel);
  if (it != variants_.end()) {
    // Keep every current variant whose id is not being replaced.
    for (const compiler::Variant& v : *it->second) {
      bool replaced = false;
      for (const compiler::Variant& m : minted) {
        if (m.id == v.id) {
          replaced = true;
          break;
        }
      }
      if (!replaced) next.push_back(v);
    }
  }
  auto& obs = observations_[kernel];
  for (const compiler::Variant& m : minted) {
    next.push_back(m);
    obs.erase(m.id);  // re-minted code starts with fresh calibration
  }
  variants_[kernel] =
      std::make_shared<const std::vector<compiler::Variant>>(std::move(next));
  const std::uint64_t e = ++epochs_[kernel];
  if (epoch_out != nullptr) *epoch_out = e;
  return OkStatus();
}

std::size_t KnowledgeBase::retire(const std::string& kernel,
                                  const std::vector<std::string>& variant_ids,
                                  std::uint64_t* epoch_out) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = variants_.find(kernel);
  if (it == variants_.end()) {
    if (epoch_out != nullptr) *epoch_out = 0;
    return 0;
  }
  std::vector<compiler::Variant> next;
  std::size_t removed = 0;
  auto& obs = observations_[kernel];
  for (const compiler::Variant& v : *it->second) {
    bool gone = false;
    for (const std::string& id : variant_ids) {
      if (id == v.id) {
        gone = true;
        break;
      }
    }
    if (gone) {
      ++removed;
      obs.erase(v.id);
    } else {
      next.push_back(v);
    }
  }
  if (removed > 0) {
    it->second =
        std::make_shared<const std::vector<compiler::Variant>>(std::move(next));
    ++epochs_[kernel];
  }
  if (epoch_out != nullptr) *epoch_out = epochs_[kernel];
  return removed;
}

std::uint64_t KnowledgeBase::epoch(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = epochs_.find(kernel);
  return it == epochs_.end() ? 0 : it->second;
}

void KnowledgeBase::observe(const std::string& kernel,
                            const std::string& variant_id, double latency_us,
                            double energy_uj) {
  std::lock_guard<std::mutex> lock(mu_);
  Observation& obs = observations_[kernel][variant_id];
  obs.latency_us.add(latency_us);
  obs.energy_uj.add(energy_uj);
  ++obs.samples;
}

const Observation* KnowledgeBase::observation(
    const std::string& kernel, const std::string& variant_id) const {
  auto kit = observations_.find(kernel);
  if (kit == observations_.end()) return nullptr;
  auto vit = kit->second.find(variant_id);
  return vit == kit->second.end() ? nullptr : &vit->second;
}

namespace {
/// Blend weight of observations: 0 below 1 sample, 1 from 3 samples on.
double blend(int samples) {
  if (samples <= 0) return 0.0;
  if (samples >= 3) return 1.0;
  return samples / 3.0;
}
}  // namespace

double KnowledgeBase::expected_latency(const std::string& kernel,
                                       const compiler::Variant& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant.id);
  if (obs == nullptr || obs->samples == 0) return variant.latency_us;
  const double w = blend(obs->samples);
  return w * obs->latency_us.mean() + (1.0 - w) * variant.latency_us;
}

double KnowledgeBase::expected_energy(const std::string& kernel,
                                      const compiler::Variant& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant.id);
  if (obs == nullptr || obs->samples == 0) return variant.energy_uj;
  const double w = blend(obs->samples);
  return w * obs->energy_uj.mean() + (1.0 - w) * variant.energy_uj;
}

int KnowledgeBase::observation_count(const std::string& kernel,
                                     const std::string& variant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant_id);
  return obs == nullptr ? 0 : obs->samples;
}

}  // namespace everest::runtime
