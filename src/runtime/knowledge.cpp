#include "runtime/knowledge.hpp"

#include "common/json.hpp"

namespace everest::runtime {

KnowledgeBase::KnowledgeBase(const KnowledgeBase& other) {
  std::lock_guard<std::mutex> lock(other.mu_);
  variants_ = other.variants_;
  observations_ = other.observations_;
}

KnowledgeBase& KnowledgeBase::operator=(const KnowledgeBase& other) {
  if (this == &other) return *this;
  std::scoped_lock lock(mu_, other.mu_);
  variants_ = other.variants_;
  observations_ = other.observations_;
  return *this;
}

Status KnowledgeBase::load(const std::vector<compiler::Variant>& variants) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const compiler::Variant& v : variants) {
    auto& list = variants_[v.kernel];
    for (const compiler::Variant& existing : list) {
      if (existing.id == v.id) {
        return AlreadyExists("variant '" + v.id + "' already loaded for '" +
                             v.kernel + "'");
      }
    }
    list.push_back(v);
  }
  return OkStatus();
}

Status KnowledgeBase::load_json(const std::string& json_text) {
  EVEREST_ASSIGN_OR_RETURN(json::Value doc, json::parse(json_text));
  EVEREST_ASSIGN_OR_RETURN(std::vector<compiler::Variant> variants,
                           compiler::variants_from_json(doc));
  return load(variants);
}

std::vector<std::string> KnowledgeBase::kernels() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [kernel, list] : variants_) out.push_back(kernel);
  return out;
}

const std::vector<compiler::Variant>& KnowledgeBase::variants_for(
    const std::string& kernel) const {
  static const std::vector<compiler::Variant> kEmpty;
  auto it = variants_.find(kernel);
  return it == variants_.end() ? kEmpty : it->second;
}

const compiler::Variant* KnowledgeBase::find(
    const std::string& kernel, const std::string& variant_id) const {
  for (const compiler::Variant& v : variants_for(kernel)) {
    if (v.id == variant_id) return &v;
  }
  return nullptr;
}

void KnowledgeBase::observe(const std::string& kernel,
                            const std::string& variant_id, double latency_us,
                            double energy_uj) {
  std::lock_guard<std::mutex> lock(mu_);
  Observation& obs = observations_[kernel][variant_id];
  obs.latency_us.add(latency_us);
  obs.energy_uj.add(energy_uj);
  ++obs.samples;
}

const Observation* KnowledgeBase::observation(
    const std::string& kernel, const std::string& variant_id) const {
  auto kit = observations_.find(kernel);
  if (kit == observations_.end()) return nullptr;
  auto vit = kit->second.find(variant_id);
  return vit == kit->second.end() ? nullptr : &vit->second;
}

namespace {
/// Blend weight of observations: 0 below 1 sample, 1 from 3 samples on.
double blend(int samples) {
  if (samples <= 0) return 0.0;
  if (samples >= 3) return 1.0;
  return samples / 3.0;
}
}  // namespace

double KnowledgeBase::expected_latency(const std::string& kernel,
                                       const compiler::Variant& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant.id);
  if (obs == nullptr || obs->samples == 0) return variant.latency_us;
  const double w = blend(obs->samples);
  return w * obs->latency_us.mean() + (1.0 - w) * variant.latency_us;
}

double KnowledgeBase::expected_energy(const std::string& kernel,
                                      const compiler::Variant& variant) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant.id);
  if (obs == nullptr || obs->samples == 0) return variant.energy_uj;
  const double w = blend(obs->samples);
  return w * obs->energy_uj.mean() + (1.0 - w) * variant.energy_uj;
}

int KnowledgeBase::observation_count(const std::string& kernel,
                                     const std::string& variant_id) const {
  std::lock_guard<std::mutex> lock(mu_);
  const Observation* obs = observation(kernel, variant_id);
  return obs == nullptr ? 0 : obs->samples;
}

}  // namespace everest::runtime
