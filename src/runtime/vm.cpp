#include "runtime/vm.hpp"

#include <algorithm>

namespace everest::runtime {

Result<VmHandle> Hypervisor::create_vm(const VmConfig& config) {
  if (config.vcpus <= 0) return InvalidArgument("vcpus must be positive");
  int total = config.vcpus;
  for (const VmConfig& vm : vms_) total += vm.vcpus;
  if (total > 2 * node_.cpu.cores) {
    return ResourceExhausted("vCPU overcommit limit reached on " + node_.name);
  }
  vms_.push_back(config);
  return VmHandle{static_cast<int>(vms_.size()) - 1};
}

double Hypervisor::cpu_pressure() const {
  int total = 0;
  for (const VmConfig& vm : vms_) total += vm.vcpus;
  return node_.cpu.cores > 0
             ? static_cast<double>(total) / node_.cpu.cores
             : 0.0;
}

Result<VmExecution> Hypervisor::execute(VmHandle vm,
                                        const compiler::Variant& variant,
                                        double now_us) {
  if (!vm.valid() || static_cast<std::size_t>(vm.id) >= vms_.size()) {
    return InvalidArgument("invalid VM handle");
  }
  const VmConfig& config = vms_[static_cast<std::size_t>(vm.id)];
  VmExecution out;
  out.start_us = now_us;

  if (variant.target == compiler::TargetKind::kCpu) {
    EVEREST_ASSIGN_OR_RETURN(
        out.breakdown, platform::execute_on_cpu(platform_, node_, variant));
    // Contention: the VM holds vcpus/cores of the machine; when the node is
    // overcommitted the hypervisor time-slices, stretching latency.
    const double pressure = std::max(1.0, cpu_pressure());
    out.breakdown.compute_us *= pressure;
    out.end_us = now_us + out.breakdown.total_us();
    return out;
  }

  if (!config.vfpga_access) {
    return PermissionDenied("VM '" + config.name + "' has no vFPGA access");
  }
  platform::FpgaSlot* slot = platform::find_slot(node_, variant);
  if (slot == nullptr) {
    return NotFound("no slot with device '" + variant.device + "' on " +
                    node_.name);
  }
  // Queue behind earlier offloads on this slot.
  double& busy_until = slot_busy_until_[slot->id];
  const double queue_wait = std::max(0.0, busy_until - now_us);
  out.remoting_us = config.api_remoting_us;
  EVEREST_ASSIGN_OR_RETURN(
      out.breakdown,
      platform::execute_on_fpga(platform_, node_, *slot, variant));
  out.breakdown.queue_us = queue_wait;
  out.slot_id = slot->id;
  out.end_us = now_us + queue_wait + out.remoting_us + out.breakdown.total_us();
  busy_until = out.end_us;
  return out;
}

double Hypervisor::queue_wait_us(const std::string& device,
                                 double now_us) const {
  double best = -1.0;
  for (const platform::FpgaSlot& slot : node_.fpgas) {
    if (!device.empty() && slot.device.name != device) continue;
    auto it = slot_busy_until_.find(slot.id);
    const double wait =
        it == slot_busy_until_.end() ? 0.0 : std::max(0.0, it->second - now_us);
    if (best < 0.0 || wait < best) best = wait;
  }
  return best < 0.0 ? 0.0 : best;
}

}  // namespace everest::runtime
