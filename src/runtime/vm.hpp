// Virtualization layer (paper §IV, Fig. 2): VMs share a node through a
// hypervisor that exposes vCPUs and vFPGA access. Accelerator calls go
// through API remoting (guest → hypervisor → device), and FPGA slots are
// time-multiplexed across VMs with per-slot queues.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "platform/executor.hpp"
#include "platform/node.hpp"

namespace everest::runtime {

/// Guest configuration.
struct VmConfig {
  std::string name;
  int vcpus = 4;
  bool vfpga_access = false;
  /// Per accelerator call: guest→hypervisor→device round trip (us).
  double api_remoting_us = 15.0;
};

/// Opaque VM handle.
struct VmHandle {
  int id = -1;
  [[nodiscard]] bool valid() const { return id >= 0; }
};

/// Result of one virtualized invocation.
struct VmExecution {
  platform::ExecutionBreakdown breakdown;
  double remoting_us = 0.0;
  double start_us = 0.0;
  double end_us = 0.0;
  std::string slot_id;  // FPGA slot used ("" for CPU)
};

/// Manages one node's VMs and multiplexes its FPGA slots.
class Hypervisor {
 public:
  explicit Hypervisor(platform::NodeSpec node,
                      platform::PlatformSpec platform)
      : node_(std::move(node)), platform_(std::move(platform)) {}

  /// Creates a VM; fails when vCPUs would exceed 2× physical cores
  /// (overcommit limit).
  Result<VmHandle> create_vm(const VmConfig& config);

  [[nodiscard]] std::size_t num_vms() const { return vms_.size(); }
  /// Aggregate vCPU overcommit: total vCPUs / physical cores.
  [[nodiscard]] double cpu_pressure() const;

  /// Runs a variant for a VM at wall-clock `now_us`. CPU variants run in
  /// the VM directly; FPGA variants pay API remoting and queue on the
  /// least-busy matching slot. PERMISSION_DENIED if the VM lacks vFPGA
  /// access.
  Result<VmExecution> execute(VmHandle vm, const compiler::Variant& variant,
                              double now_us);

  /// Outstanding queued time (us) at `now_us` on the least-busy matching
  /// slot — feeds the autotuner's fpga_queue_depth signal.
  [[nodiscard]] double queue_wait_us(const std::string& device,
                                     double now_us) const;

 private:
  platform::NodeSpec node_;
  platform::PlatformSpec platform_;
  std::vector<VmConfig> vms_;
  /// Per FPGA slot: time until which it is busy.
  std::map<std::string, double> slot_busy_until_;
};

}  // namespace everest::runtime
