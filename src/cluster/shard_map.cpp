#include "cluster/shard_map.hpp"

#include <algorithm>

#include "data/object.hpp"
#include "data/placement.hpp"

namespace everest::cluster {

double ShardTable::primary_imbalance() const {
  std::uint32_t max_count = 0;
  std::uint64_t total = 0;
  std::size_t holders = 0;
  for (std::uint32_t c : primary_count) {
    if (c == 0) continue;
    ++holders;
    total += c;
    max_count = std::max(max_count, c);
  }
  if (holders == 0) return 0.0;
  const double mean =
      static_cast<double>(total) / static_cast<double>(holders);
  return mean > 0.0 ? static_cast<double>(max_count) / mean : 0.0;
}

ShardMap::ShardMap(std::size_t num_nodes, ShardMapConfig config)
    : num_nodes_(num_nodes), config_(config) {
  if (config_.replication < 1) config_.replication = 1;
  // Version 0: everything healthy (callers rebuild on the first real view
  // anyway; starting populated keeps single-node setups trivial).
  MembershipView all;
  all.health.assign(num_nodes_, resilience::Health::kHealthy);
  for (std::size_t i = 0; i < num_nodes_; ++i) all.routable.push_back(i);
  rebuild(all);
}

std::size_t ShardMap::rebuild(const MembershipView& view) {
  // Equal-weight rendezvous over the healthy nodes via the data plane's
  // placement policy; a failed StorageNode receives nothing, so a dead
  // node's shards land on the next-highest scorers — its replicas.
  std::vector<data::StorageNode> nodes(num_nodes_);
  for (std::size_t i = 0; i < num_nodes_; ++i) {
    nodes[i].name = "node" + std::to_string(i);
    nodes[i].capacity_bytes = 1e18;
    nodes[i].failed =
        i < view.health.size()
            ? view.health[i] != resilience::Health::kHealthy
            : false;
  }
  data::PlacementConfig placement;
  placement.replication = config_.replication;
  placement.salt = config_.salt;
  data::PlacementPolicy policy(std::move(nodes), placement);

  auto next = std::make_shared<ShardTable>();
  next->built_epoch = view.epoch;
  next->num_shards = config_.num_shards;
  next->replicas.resize(config_.num_shards);
  next->primary_count.assign(num_nodes_, 0);
  for (std::uint32_t s = 0; s < config_.num_shards; ++s) {
    const data::ShardKey key{static_cast<data::ObjectId>(s), 0, 0};
    auto placed = policy.place(key, 1.0, data::PlacementPolicy::kNowhere);
    if (placed.ok()) {
      next->replicas[s] = std::move(*placed);
      ++next->primary_count[next->replicas[s].front()];
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  std::size_t moved = 0;
  if (table_ != nullptr && table_->num_shards == next->num_shards) {
    for (std::uint32_t s = 0; s < next->num_shards; ++s) {
      const auto& before = table_->replicas[s];
      const auto& after = next->replicas[s];
      const std::size_t slots = std::max(before.size(), after.size());
      for (std::size_t r = 0; r < slots; ++r) {
        const bool same = r < before.size() && r < after.size() &&
                          before[r] == after[r];
        if (!same) ++moved;
      }
    }
    next->version = table_->version + 1;
  } else if (table_ != nullptr) {
    moved = next->num_shards;
    next->version = table_->version + 1;
  }
  table_ = std::move(next);
  return moved;
}

std::shared_ptr<const ShardTable> ShardMap::table() const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_;
}

std::uint32_t ShardMap::shard_of(std::string_view key) const {
  return shard_of(key, config_.num_shards, config_.salt);
}

std::uint32_t ShardMap::shard_of(std::string_view key,
                                 std::uint32_t num_shards,
                                 std::uint64_t salt) {
  return shard_of_object(data::object_id_from_name(std::string(key)),
                         num_shards, salt);
}

std::uint32_t ShardMap::shard_of_object(data::ObjectId id,
                                        std::uint32_t num_shards,
                                        std::uint64_t salt) {
  if (num_shards == 0) return 0;
  const data::ShardKey k{id, 0, 0};
  return static_cast<std::uint32_t>(data::hash_key(k, salt) % num_shards);
}

}  // namespace everest::cluster
