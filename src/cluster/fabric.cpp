#include "cluster/fabric.hpp"

#include <algorithm>

namespace everest::cluster {

ForwardFabric::ForwardFabric(std::size_t num_nodes,
                             platform::LinkModel model)
    : n_(num_nodes),
      model_(std::move(model)),
      epoch_(std::chrono::steady_clock::now()) {
  links_.resize(n_ * n_);
  for (std::size_t s = 0; s < n_; ++s) {
    for (std::size_t d = 0; d < n_; ++d) {
      if (s == d) continue;
      auto l = std::make_unique<Link>();
      l->channel = std::make_unique<platform::LinkChannel>(l->sim, model_);
      links_[s * n_ + d] = std::move(l);
    }
  }
}

double ForwardFabric::hop_us(std::size_t src, std::size_t dst,
                             double bytes) {
  if (src == dst || src >= n_ || dst >= n_) return 0.0;
  const double wall_us =
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - epoch_)
          .count() /
      1e3;

  Link& l = link(src, dst);
  std::lock_guard<std::mutex> lock(l.mu);
  // The link's sim clock only moves when transfers run, so it lags the
  // wall when idle (no queueing) and leads it right after a burst (the
  // lead is exactly the backlog the next hop must wait out).
  const double backlog_us = std::max(0.0, l.sim.now() - wall_us);
  const double start = l.sim.now();
  double done_at = start;
  l.channel->transfer(bytes, [&l, &done_at] { done_at = l.sim.now(); });
  l.sim.run();  // previous hops already completed; this drains ours
  return backlog_us + (done_at - start);
}

FabricStats ForwardFabric::stats() const {
  FabricStats out;
  for (const auto& l : links_) {
    if (l == nullptr) continue;
    std::lock_guard<std::mutex> lock(l->mu);
    out.bytes_moved += l->channel->bytes_moved();
    out.transfers += l->channel->transfers_completed();
    out.busy_flow_us += l->channel->busy_flow_us();
  }
  return out;
}

}  // namespace everest::cluster
