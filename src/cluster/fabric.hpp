// Inter-node interconnect model for the federation: one fair-share
// platform::LinkChannel per directed node pair, each inside its own
// discrete-event Simulator whose clock is anchored to the wall. A hop is
// issued at the wall instant it happens; if earlier hops on the same
// link pushed that link's simulation clock ahead of the wall, the new
// hop inherits the difference as queueing delay before its own transfer
// time — an M/G/1-style FIFO link under load, exact LinkModel cost when
// idle. The LinkChannels keep the real cost books (bytes moved,
// transfers, flow-time integral) that the federation exports.
//
// Per-link locking: hops on distinct node pairs never contend.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "platform/desim.hpp"
#include "platform/links.hpp"

namespace everest::cluster {

struct FabricStats {
  double bytes_moved = 0.0;
  std::uint64_t transfers = 0;
  /// Sum over links of the time-integral of in-flight payloads (µs) — a
  /// fabric-wide congestion measure.
  double busy_flow_us = 0.0;
};

class ForwardFabric {
 public:
  ForwardFabric(std::size_t num_nodes, platform::LinkModel model);

  /// Models moving `bytes` from `src` to `dst` right now; returns the
  /// hop's total cost (µs) = queueing behind transfers already booked on
  /// that link + the transfer itself. Does not sleep — callers charge
  /// the cost where it belongs (the forwarded request's latency).
  double hop_us(std::size_t src, std::size_t dst, double bytes);

  [[nodiscard]] FabricStats stats() const;
  [[nodiscard]] const platform::LinkModel& model() const { return model_; }
  [[nodiscard]] std::size_t num_nodes() const { return n_; }

 private:
  /// One directed link: its own simulator so backlog on (a, b) never
  /// couples to (c, d).
  struct Link {
    std::mutex mu;
    platform::Simulator sim;
    std::unique_ptr<platform::LinkChannel> channel;
  };

  Link& link(std::size_t src, std::size_t dst) {
    return *links_[src * n_ + dst];
  }

  std::size_t n_;
  platform::LinkModel model_;
  std::chrono::steady_clock::time_point epoch_;
  std::vector<std::unique_ptr<Link>> links_;
};

}  // namespace everest::cluster
