// The serving federation: N per-node serve::Server instances composed
// into one horizontally scaled service (the paper's §V distributed
// edge/inner-edge/cloud ecosystem, made concrete as a sharded cluster).
// This is the first subsystem that composes all four prior layers into
// one distributed system:
//
//   * resilience — a phi-accrual Membership driven by a heartbeat pump
//     decides who is routable; dead nodes' shards fail over to replicas
//     within one detection interval;
//   * data       — the ShardMap reuses the data plane's weighted
//     rendezvous placement, so keyed requests land on the node whose
//     input cache is warm for their key (locality first);
//   * platform   — cross-node forwarding is paid through per-link
//     LinkChannel hops with real byte/flow accounting, not a constant;
//   * serve      — each node is a full Server (admission control,
//     batching, autotuned variant selection, graceful drain); keyless
//     traffic is spread by power-of-two-choices on live queue depth;
//   * obs        — every decision and hop is counted/metered through a
//     Registry, and per-hop spans land on an optional Tracer.
//
// Fail-stop is modeled at the network boundary: crash(i) makes node i
// unreachable (submits refused, heartbeats stop) while requests already
// inside it run to completion — the in-process analogue of a process
// whose NIC died. Clients hitting a crashed node are transparently
// re-routed to the next replica (connection-refused retry), so keyed
// availability holds even before detection; detection then rebuilds the
// shard map (failover), and a rejoin rebuilds it again (rebalance) while
// in-flight work on the temporary owners drains naturally.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "cluster/fabric.hpp"
#include "cluster/membership.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "obs/flight.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/knowledge.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "storage/log.hpp"

namespace everest::cluster {

struct FederationOptions {
  std::size_t num_nodes = 4;
  /// Per-node server template (queue capacity, workers, batching,
  /// input cache, ... — every node gets an identical copy).
  serve::ServerOptions node;
  ShardMapConfig shard_map;
  MembershipConfig membership;
  /// Inter-node transport for forwarded requests and replies.
  platform::LinkModel interconnect = platform::LinkModel::tcp_datacenter();
  /// Bytes of a forwarded request envelope and of its reply.
  double forward_bytes = 2048.0;
  double reply_bytes = 512.0;
  /// Add the modeled hop costs to Response::latency_us (what a client
  /// behind the ingress node would observe).
  bool charge_hops_in_latency = true;
  /// false = ignore data_key and balance everything by queue depth (the
  /// locality ablation the E21 bench runs).
  bool locality_routing = true;
  /// Heartbeat/detection pump cadence (wall µs between passes).
  double pump_period_us = 2'000.0;
  /// Root of ingress choice and keyless candidate draws.
  std::uint64_t seed = 42;
  /// Durable root for per-node input-staging catalogs ("<dir>/node<i>"
  /// each holds a storage::CatalogLog). Empty = no logging: a restarted
  /// node comes back cold and re-pays every input transfer.
  std::string storage_dir;
  /// Model process death on crash(): the node's input cache is cleared
  /// (RAM dies with the process). With a storage_dir, restart() then
  /// replays the node's log to warm the cache back — the E22
  /// restart-to-warm path; without one, the node truly restarts cold.
  /// false keeps the pre-storage fail-stop-at-the-NIC semantics (RAM
  /// survives, nothing to restore).
  bool cold_restart_cache = false;
  /// Optional federation-level tracer (per-hop spans, failover/rebalance
  /// instants). The per-node template's tracer traces inside each node.
  /// When both point at the SAME tracer, every ingress request becomes
  /// one stitched cross-node chain: a "federation.request" root span
  /// with the forward hop, the target node's queue/batch/execute/reply
  /// spans, and the reply hop all parented under it (TraceContext
  /// propagation through serve::Request::trace).
  obs::Tracer* tracer = nullptr;
  /// Optional flight recorder (borrowed): crash() triggers a
  /// "fault.crash" bundle capturing the spans and rollups leading up to
  /// the injected fault.
  obs::FlightRecorder* flight_recorder = nullptr;
};

/// Aggregated federation counters (snapshot of the registry).
struct FederationStats {
  std::uint64_t submitted = 0;
  std::uint64_t keyed = 0;
  std::uint64_t keyed_data_local = 0;  ///< served by a replica holder
  std::uint64_t routed_primary = 0;
  std::uint64_t routed_failover = 0;
  std::uint64_t routed_no_owner = 0;
  std::uint64_t routed_p2c = 0;
  std::uint64_t ingress_local = 0;  ///< target == ingress, no hop paid
  std::uint64_t forwarded = 0;      ///< paid an ingress → target hop
  std::uint64_t refused_retries = 0;  ///< re-routes around a crashed node
  std::uint64_t unroutable = 0;       ///< no reachable node at all
  std::uint64_t failovers = 0;        ///< dead transitions handled
  std::uint64_t rejoins = 0;
  std::uint64_t warm_restored_entries = 0;  ///< cache entries replayed back
  /// Entries warmed from *other* nodes' staging logs on restart: traffic
  /// homed on this node that was staged elsewhere while it was down.
  std::uint64_t hinted_handoff_entries = 0;
  std::uint64_t rebuilds = 0;         ///< shard-map rebuilds
  double shards_moved_last = 0.0;     ///< assignment churn of last rebuild
  double shard_imbalance = 0.0;       ///< primary max/mean of live table
  /// Wall µs (federation epoch) of the most recent kDead detection.
  double last_detection_us = 0.0;
  /// Forward-hop latency distribution (µs).
  double hop_mean_us = 0.0;
  double hop_p99_us = 0.0;
  std::uint64_t hops = 0;

  [[nodiscard]] double data_local_fraction() const {
    return keyed == 0 ? 0.0
                      : static_cast<double>(keyed_data_local) /
                            static_cast<double>(keyed);
  }
};

class Federation {
 public:
  explicit Federation(FederationOptions options);
  ~Federation();

  Federation(const Federation&) = delete;
  Federation& operator=(const Federation&) = delete;

  /// Registers `endpoint` on every node (each node keeps its own
  /// knowledge base and learns its own calibration). Before start().
  Status register_endpoint(const serve::Endpoint& endpoint);

  /// Starts every node server plus the heartbeat/detection pump.
  Status start();

  /// Routes and submits one request: locality first for keyed traffic,
  /// power-of-two-choices for keyless, connection-refused retry around
  /// crashed nodes, LinkChannel-modeled forward/reply hops charged to
  /// the response latency. Callback contract matches serve::Server.
  Status submit(serve::Request request, serve::ResponseCallback on_done);

  /// Waits until every node delivered every admitted response.
  void drain();

  /// Graceful shutdown: seals admission on every node (drain_gracefully),
  /// finishes in-flight work, stops the pump and the servers. Idempotent.
  void stop();

  // ---- fault injection (the E21 failover experiments) ----
  /// Fail-stop node `i` at the network boundary: heartbeats cease and
  /// submits are refused; requests already inside finish.
  void crash(std::size_t node);
  /// Brings a crashed node back; the next pump heartbeat revives it and
  /// triggers the rejoin rebalance.
  void restart(std::size_t node);
  [[nodiscard]] bool crashed(std::size_t node) const {
    return crashed_[node]->load(std::memory_order_acquire);
  }

  // ---- introspection ----
  [[nodiscard]] const Membership& membership() const { return *membership_; }
  [[nodiscard]] std::shared_ptr<const ShardTable> shard_table() const {
    return shard_map_->table();
  }
  [[nodiscard]] serve::Server& node(std::size_t i) { return *servers_[i]; }
  [[nodiscard]] std::size_t num_nodes() const { return options_.num_nodes; }
  [[nodiscard]] FederationStats stats() const;
  [[nodiscard]] const obs::Registry& registry() const { return registry_; }
  [[nodiscard]] const ForwardFabric& fabric() const { return *fabric_; }
  /// Silence → declared-dead bound plus one pump period.
  [[nodiscard]] double detection_interval_us() const {
    return membership_->detection_interval_us() + options_.pump_period_us;
  }
  /// Wall µs since federation construction (the pump/detection clock).
  [[nodiscard]] double now_us() const;

  /// Loadgen adapters: `run_open_loop(fed.submit_fn(), fed.drain_fn(),
  /// spec)` drives the whole cluster with the single-server generator.
  [[nodiscard]] serve::SubmitFn submit_fn();
  [[nodiscard]] serve::DrainFn drain_fn();

 private:
  void pump_loop();
  void rebuild_shard_map(const char* reason);
  [[nodiscard]] std::size_t pick_ingress(std::uint64_t seed) const;

  FederationOptions options_;
  std::chrono::steady_clock::time_point epoch_;

  std::unique_ptr<Membership> membership_;
  std::unique_ptr<ShardMap> shard_map_;
  std::unique_ptr<ClusterRouter> router_;
  std::unique_ptr<ForwardFabric> fabric_;
  /// The all-healthy version-0 table: each staged input's WAL record is
  /// stamped with its *home* primary under this table (not the node it
  /// happened to land on), so a restarting node can pull its own keys
  /// out of the survivors' logs — hinted handoff.
  std::shared_ptr<const ShardTable> home_table_;

  /// Per-node stacks: each node owns its knowledge base + server.
  std::vector<std::unique_ptr<runtime::KnowledgeBase>> knowledge_;
  std::vector<std::unique_ptr<serve::Server>> servers_;
  /// Per-node input-staging WALs (empty unless storage_dir is set).
  /// Appended from worker threads via ServerOptions::on_input_staged
  /// (CatalogLog::append is thread-safe).
  std::vector<std::unique_ptr<storage::CatalogLog>> wals_;
  /// Heap-allocated so the vector never relocates a live atomic.
  std::vector<std::unique_ptr<std::atomic<bool>>> crashed_;

  std::thread pump_;
  std::atomic<bool> running_{false};
  std::atomic<bool> pump_running_{false};

  // ---- instruments (owned registry; pointers cached at construction) --
  obs::Registry registry_;
  obs::Counter* submitted_;
  obs::Counter* keyed_;
  obs::Counter* keyed_local_;
  obs::Counter* route_kind_[4];  ///< indexed by RouteKind
  obs::Counter* ingress_local_;
  obs::Counter* forwarded_;
  obs::Counter* refused_retry_;
  obs::Counter* unroutable_;
  obs::Counter* failovers_;
  obs::Counter* rejoins_;
  obs::Counter* rebuilds_;
  obs::Counter* warm_restored_;
  obs::Counter* hinted_handoff_;
  obs::Histogram* warm_restore_us_;
  obs::Gauge* shards_moved_;
  obs::Gauge* imbalance_;
  obs::Gauge* last_detection_;
  obs::Histogram* hop_us_;
};

}  // namespace everest::cluster
