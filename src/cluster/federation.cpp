#include "cluster/federation.hpp"

#include <algorithm>

#include "common/logging.hpp"
#include "common/rng.hpp"

namespace everest::cluster {

Federation::Federation(FederationOptions options)
    : options_(std::move(options)),
      epoch_(std::chrono::steady_clock::now()) {
  if (options_.num_nodes < 1) options_.num_nodes = 1;

  std::vector<std::string> names;
  names.reserve(options_.num_nodes);
  for (std::size_t i = 0; i < options_.num_nodes; ++i) {
    names.push_back("node" + std::to_string(i));
  }
  membership_ =
      std::make_unique<Membership>(std::move(names), options_.membership);
  shard_map_ =
      std::make_unique<ShardMap>(options_.num_nodes, options_.shard_map);
  fabric_ =
      std::make_unique<ForwardFabric>(options_.num_nodes, options_.interconnect);
  home_table_ = shard_map_->table();  // version 0: all nodes healthy

  knowledge_.reserve(options_.num_nodes);
  servers_.reserve(options_.num_nodes);
  crashed_.reserve(options_.num_nodes);
  for (std::size_t i = 0; i < options_.num_nodes; ++i) {
    knowledge_.push_back(std::make_unique<runtime::KnowledgeBase>());
    serve::ServerOptions node_opts = options_.node;
    if (!options_.storage_dir.empty()) {
      // One WAL per node: every cold input staging is appended (as a
      // kPlace record — "this key's bytes now live in node i's RAM"), so
      // a restart can replay the node back to a warm cache instead of
      // re-paying every input transfer.
      wals_.push_back(std::make_unique<storage::CatalogLog>(
          options_.storage_dir + "/node" + std::to_string(i),
          storage::LogConfig{}, &registry_));
      storage::CatalogLog* wal = wals_.back().get();
      node_opts.on_input_staged = [this, wal](const data::ShardKey& key,
                                              double bytes, double) {
        // Stamp the record with the key's *home* primary under the
        // all-healthy table, not the node it landed on: while a node is
        // down its keyed traffic fails over and stages elsewhere, and
        // on restart() the owner finds those keys in the survivors'
        // logs by this stamp (hinted handoff).
        const std::uint32_t shard = ShardMap::shard_of_object(
            key.object, options_.shard_map.num_shards,
            options_.shard_map.salt);
        const auto& owners = home_table_->replicas[shard];
        const std::uint64_t home = owners.empty() ? 0 : owners.front();
        (void)wal->append({storage::LogRecordType::kPlace, 0, key.object,
                           key.shard, key.version, home, bytes});
      };
    }
    servers_.push_back(
        std::make_unique<serve::Server>(node_opts, knowledge_[i].get()));
    crashed_.push_back(std::make_unique<std::atomic<bool>>(false));
  }

  router_ = std::make_unique<ClusterRouter>(
      membership_.get(), shard_map_.get(),
      [this](std::size_t node) { return servers_[node]->queue_depth(); },
      options_.seed);

  submitted_ = registry_.counter("cluster.submitted");
  keyed_ = registry_.counter("cluster.keyed");
  keyed_local_ = registry_.counter("cluster.keyed_data_local");
  route_kind_[0] = registry_.counter("cluster.route", {{"kind", "primary"}});
  route_kind_[1] = registry_.counter("cluster.route", {{"kind", "failover"}});
  route_kind_[2] = registry_.counter("cluster.route", {{"kind", "no_owner"}});
  route_kind_[3] = registry_.counter("cluster.route", {{"kind", "p2c"}});
  ingress_local_ = registry_.counter("cluster.ingress_local");
  forwarded_ = registry_.counter("cluster.forwarded");
  refused_retry_ = registry_.counter("cluster.refused_retries");
  unroutable_ = registry_.counter("cluster.unroutable");
  failovers_ = registry_.counter("cluster.failovers");
  rejoins_ = registry_.counter("cluster.rejoins");
  rebuilds_ = registry_.counter("cluster.rebuilds");
  warm_restored_ = registry_.counter("cluster.warm_restored_entries");
  hinted_handoff_ = registry_.counter("cluster.hinted_handoff_entries");
  warm_restore_us_ = registry_.histogram("cluster.warm_restore_us");
  // shards_moved_last / shard_imbalance are node-local instantaneous
  // readings with no meaningful cross-node aggregate — they stay
  // kLastWrite, which RegistrySnapshot::merge deliberately drops.
  // last_detection_us is a watermark: merged value = slowest detector.
  shards_moved_ = registry_.gauge("cluster.shards_moved_last");
  imbalance_ = registry_.gauge("cluster.shard_imbalance");
  last_detection_ =
      registry_.gauge("cluster.last_detection_us", obs::GaugeKind::kMax);
  hop_us_ = registry_.histogram("cluster.hop_us");

  imbalance_->set(shard_map_->table()->primary_imbalance());
}

Federation::~Federation() { stop(); }

double Federation::now_us() const {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now() - epoch_)
             .count() /
         1e3;
}

Status Federation::register_endpoint(const serve::Endpoint& endpoint) {
  if (running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("cannot register endpoints while serving");
  }
  for (auto& server : servers_) {
    EVEREST_RETURN_IF_ERROR(server->register_endpoint(endpoint));
  }
  return OkStatus();
}

Status Federation::start() {
  if (running_.exchange(true)) {
    return FailedPrecondition("federation already started");
  }
  for (auto& server : servers_) {
    const Status started = server->start();
    if (!started.ok()) {
      running_.store(false);
      return started;
    }
  }
  // Prime the detectors so a node that dies immediately after start is
  // still detected against a calibrated model.
  const double now = now_us();
  for (std::size_t i = 0; i < options_.num_nodes; ++i) {
    membership_->heartbeat(i, now);
  }
  pump_running_.store(true, std::memory_order_release);
  pump_ = std::thread([this] { pump_loop(); });
  EVEREST_LOG(kInfo, "cluster")
      << "federation started: " << options_.num_nodes << " nodes, "
      << options_.shard_map.num_shards << " shards, replication "
      << options_.shard_map.replication;
  return OkStatus();
}

std::size_t Federation::pick_ingress(std::uint64_t seed) const {
  SplitMix64 sm(options_.seed ^ (0x9E3779B97F4A7C15ULL * (seed + 1)));
  return static_cast<std::size_t>(sm.next() % options_.num_nodes);
}

Status Federation::submit(serve::Request request,
                          serve::ResponseCallback on_done) {
  if (!running_.load(std::memory_order_acquire)) {
    return FailedPrecondition("federation is not running");
  }
  submitted_->inc();

  // Client affinity: a deterministic ingress endpoint per client seed;
  // a client whose endpoint is unreachable rotates through the endpoint
  // list like a real client library would.
  std::size_t ingress = pick_ingress(request.seed);
  bool reachable = false;
  for (std::size_t k = 0; k < options_.num_nodes; ++k) {
    const std::size_t candidate = (ingress + k) % options_.num_nodes;
    if (!crashed(candidate)) {
      if (k > 0) refused_retry_->inc();
      ingress = candidate;
      reachable = true;
      break;
    }
  }
  if (!reachable) {
    unroutable_->inc();
    return Unavailable("every cluster node is unreachable");
  }

  if (!request.data_key.empty()) keyed_->inc();
  const std::string_view route_key =
      options_.locality_routing ? std::string_view(request.data_key)
                                : std::string_view();

  obs::Tracer* tracer = options_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();

  std::size_t exclude = ClusterRouter::kNone;
  for (std::size_t attempt = 0; attempt < options_.num_nodes; ++attempt) {
    auto routed = router_->route(route_key, exclude);
    if (!routed.ok()) {
      unroutable_->inc();
      return routed.status();
    }
    const RouteDecision decision = *routed;
    if (crashed(decision.node)) {
      // Connection refused ahead of failure detection: re-route around
      // the dead node (next replica for keyed, fresh pair for keyless).
      refused_retry_->inc();
      exclude = decision.node;
      continue;
    }

    route_kind_[static_cast<int>(decision.kind)]->inc();
    if (!request.data_key.empty() && decision.data_local()) {
      keyed_local_->inc();
    }

    const std::size_t target = decision.node;

    // One federation-wide trace per ingress request: the root
    // "federation.request" span (emitted when the outcome is known)
    // parents the forward hop, the target node's serve chain (via
    // TraceContext propagation on the request), and the reply hop — the
    // stitched cross-node chain E25 validates root-reachability on.
    std::uint64_t trace_id = 0;
    std::uint64_t root_span = 0;
    double t_root0 = 0.0;
    if (tracing) {
      trace_id = tracer->next_id();
      root_span = tracer->next_id();
      t_root0 = tracer->wall_now_us();
      request.trace = obs::TraceContext{trace_id, root_span};
    }

    double forward_us = 0.0;
    if (target != ingress) {
      forwarded_->inc();
      forward_us = fabric_->hop_us(ingress, target, options_.forward_bytes);
      hop_us_->record(forward_us);
      if (tracing) {
        const double t0 = tracer->wall_now_us();
        tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(),
                     root_span, t0, t0 + forward_us, obs::kAutoTrack, "hop",
                     "cluster",
                     {{"src", membership_->name(ingress)},
                      {"dst", membership_->name(target)},
                      {"kind", std::string(to_string(decision.kind))},
                      {"bytes", std::to_string(
                           static_cast<long>(options_.forward_bytes))}});
      }
    } else {
      ingress_local_->inc();
    }

    serve::ResponseCallback cb;
    if (target != ingress) {
      // The reply pays the return hop at completion time, so it sees the
      // fabric contention of *that* moment, not of admission.
      cb = [this, done = std::move(on_done), target, ingress, forward_us,
            trace_id, root_span, t_root0, tracer,
            tracing](const serve::Response& response) {
        const double reply_us =
            fabric_->hop_us(target, ingress, options_.reply_bytes);
        hop_us_->record(reply_us);
        if (tracing) {
          const double t0 = tracer->wall_now_us();
          tracer->span(obs::TimeDomain::kWall, trace_id, tracer->next_id(),
                       root_span, t0, t0 + reply_us, obs::kAutoTrack, "hop",
                       "cluster",
                       {{"src", membership_->name(target)},
                        {"dst", membership_->name(ingress)},
                        {"kind", "reply"}});
          tracer->span(obs::TimeDomain::kWall, trace_id, root_span, 0,
                       t_root0, t0 + reply_us, obs::kAutoTrack,
                       "federation.request", "cluster",
                       {{"ingress", membership_->name(ingress)},
                        {"target", membership_->name(target)}});
        }
        if (options_.charge_hops_in_latency) {
          serve::Response adjusted = response;
          adjusted.latency_us += forward_us + reply_us;
          done(adjusted);
        } else {
          done(response);
        }
      };
    } else if (tracing) {
      // Local requests get the same root so every ingress request is
      // exactly one root-reachable chain regardless of placement.
      cb = [this, done = std::move(on_done), ingress, trace_id, root_span,
            t_root0, tracer](const serve::Response& response) {
        tracer->span(obs::TimeDomain::kWall, trace_id, root_span, 0, t_root0,
                     tracer->wall_now_us(), obs::kAutoTrack,
                     "federation.request", "cluster",
                     {{"ingress", membership_->name(ingress)},
                      {"target", membership_->name(ingress)}});
        done(response);
      };
    } else {
      cb = std::move(on_done);
    }
    // Admission backpressure at the target (queue full, draining) is
    // surfaced end-to-end: bouncing to another node would break keyed
    // locality and hide the overload from the caller's retry policy.
    const Status admitted =
        servers_[target]->submit(std::move(request), std::move(cb));
    if (!admitted.ok() && tracing) {
      // Rejected at admission: the callback never fires, so close the
      // root here — the already-emitted forward hop must not dangle.
      tracer->span(obs::TimeDomain::kWall, trace_id, root_span, 0, t_root0,
                   tracer->wall_now_us(), obs::kAutoTrack,
                   "federation.request", "cluster",
                   {{"ingress", membership_->name(ingress)},
                    {"target", membership_->name(target)},
                    {"outcome", "rejected"}});
    }
    return admitted;
  }

  unroutable_->inc();
  return Unavailable("no reachable replica after retries");
}

void Federation::drain() {
  for (auto& server : servers_) server->drain();
}

void Federation::stop() {
  if (!running_.exchange(false)) return;
  pump_running_.store(false, std::memory_order_release);
  if (pump_.joinable()) pump_.join();
  for (auto& server : servers_) server->drain_gracefully();
  for (auto& server : servers_) server->stop();
  EVEREST_LOG(kInfo, "cluster") << "federation stopped";
}

void Federation::crash(std::size_t node) {
  if (node >= options_.num_nodes) return;
  crashed_[node]->store(true, std::memory_order_release);
  // Process death loses RAM: the staged-input cache dies with it. The
  // node's WAL (when configured) survives on disk — that is what
  // restart() replays. Without cold_restart_cache the crash stays a
  // NIC-level fail-stop and RAM survives (the pre-storage model).
  if (options_.cold_restart_cache) servers_[node]->clear_input_cache();
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->instant(obs::TimeDomain::kWall, 0,
                             options_.tracer->wall_now_us(), obs::kAutoTrack,
                             "crash", "cluster",
                             {{"node", membership_->name(node)}});
  }
  if (options_.flight_recorder != nullptr) {
    // Black-box dump: capture the spans and rollups leading up to the
    // injected fault (debounced inside the recorder).
    (void)options_.flight_recorder->trigger(
        "fault.crash", {{"node", membership_->name(node)}});
  }
  EVEREST_LOG(kWarn, "cluster")
      << membership_->name(node) << " crashed (fail-stop at the network)";
}

void Federation::restart(std::size_t node) {
  if (node >= options_.num_nodes) return;
  if (options_.cold_restart_cache && node < wals_.size()) {
    // Warm restart: replay the node's staging log in append order — the
    // cache's own capacity bound keeps the most recently staged keys, so
    // the node rejoins roughly as warm as it died.
    const auto t0 = std::chrono::steady_clock::now();
    wals_[node]->sync();
    std::uint64_t restored = 0;
    storage::CatalogLog::replay_records(
        wals_[node]->dir(), [&](const storage::LogRecord& rec) {
          if (rec.type != storage::LogRecordType::kPlace) return;
          servers_[node]->warm_input(rec.key(), rec.bytes);
          ++restored;
        });
    // Hinted handoff: while this node was down, its keyed traffic
    // failed over and staged inputs on the surviving replicas — each
    // stamped with this node as home. Pull those entries back so the
    // node rejoins warm for keys it never saw itself.
    std::uint64_t handed = 0;
    for (std::size_t peer = 0; peer < wals_.size(); ++peer) {
      if (peer == node) continue;
      wals_[peer]->sync();
      storage::CatalogLog::replay_records(
          wals_[peer]->dir(), [&](const storage::LogRecord& rec) {
            if (rec.type != storage::LogRecordType::kPlace) return;
            if (rec.node != node) return;
            servers_[node]->warm_input(rec.key(), rec.bytes);
            ++handed;
          });
    }
    const double wall_us =
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - t0)
            .count() /
        1e3;
    warm_restored_->inc(restored);
    hinted_handoff_->inc(handed);
    warm_restore_us_->record(wall_us);
    EVEREST_LOG(kInfo, "cluster")
        << membership_->name(node) << " warm restart: " << restored
        << " cache entries replayed, " << handed
        << " handed off from peers, in " << wall_us << " us";
  }
  crashed_[node]->store(false, std::memory_order_release);
  servers_[node]->resume_admission();
  EVEREST_LOG(kInfo, "cluster") << membership_->name(node) << " restarting";
}

void Federation::pump_loop() {
  std::vector<double> last_hb(options_.num_nodes, -1e18);
  while (pump_running_.load(std::memory_order_acquire)) {
    const double now = now_us();
    for (std::size_t i = 0; i < options_.num_nodes; ++i) {
      if (crashed(i)) continue;
      if (now - last_hb[i] >= options_.membership.heartbeat_interval_us) {
        membership_->heartbeat(i, now);
        last_hb[i] = now;
      }
    }
    const std::vector<Transition> transitions = membership_->update(now);
    bool rebuild = false;
    const char* reason = "";
    for (const Transition& t : transitions) {
      if (t.to == resilience::Health::kDead) {
        failovers_->inc();
        last_detection_->set(t.at_us);
        rebuild = true;
        reason = "failover";
        EVEREST_LOG(kWarn, "cluster")
            << membership_->name(t.node) << " declared dead at "
            << static_cast<long>(t.at_us) << " us; failing over its shards";
      } else if (t.from == resilience::Health::kDead) {
        rejoins_->inc();
        rebuild = true;
        reason = "rejoin";
        EVEREST_LOG(kInfo, "cluster")
            << membership_->name(t.node) << " rejoined; rebalancing";
      }
    }
    if (rebuild) rebuild_shard_map(reason);
    std::this_thread::sleep_for(std::chrono::microseconds(
        static_cast<std::int64_t>(options_.pump_period_us)));
  }
}

void Federation::rebuild_shard_map(const char* reason) {
  const std::size_t moved = shard_map_->rebuild(*membership_->view());
  rebuilds_->inc();
  shards_moved_->set(static_cast<double>(moved));
  imbalance_->set(shard_map_->table()->primary_imbalance());
  if (options_.tracer != nullptr && options_.tracer->enabled()) {
    options_.tracer->instant(
        obs::TimeDomain::kWall, 0, options_.tracer->wall_now_us(),
        obs::kAutoTrack, "shard-map-rebuild", "cluster",
        {{"reason", reason}, {"moved", std::to_string(moved)}});
  }
}

FederationStats Federation::stats() const {
  FederationStats out;
  out.submitted = submitted_->value();
  out.keyed = keyed_->value();
  out.keyed_data_local = keyed_local_->value();
  out.routed_primary = route_kind_[0]->value();
  out.routed_failover = route_kind_[1]->value();
  out.routed_no_owner = route_kind_[2]->value();
  out.routed_p2c = route_kind_[3]->value();
  out.ingress_local = ingress_local_->value();
  out.forwarded = forwarded_->value();
  out.refused_retries = refused_retry_->value();
  out.unroutable = unroutable_->value();
  out.failovers = failovers_->value();
  out.rejoins = rejoins_->value();
  out.rebuilds = rebuilds_->value();
  out.warm_restored_entries = warm_restored_->value();
  out.hinted_handoff_entries = hinted_handoff_->value();
  out.shards_moved_last = shards_moved_->value();
  out.shard_imbalance = imbalance_->value();
  out.last_detection_us = last_detection_->value();
  const obs::HistogramSnapshot hops = hop_us_->snapshot();
  out.hops = hops.count;
  out.hop_mean_us = hops.mean();
  out.hop_p99_us = hops.percentile(99.0);
  return out;
}

serve::SubmitFn Federation::submit_fn() {
  return [this](serve::Request request, serve::ResponseCallback on_done) {
    return submit(std::move(request), std::move(on_done));
  };
}

serve::DrainFn Federation::drain_fn() {
  return [this] { drain(); };
}

}  // namespace everest::cluster
