#include "cluster/router.hpp"

#include "common/rng.hpp"

namespace everest::cluster {

std::string_view to_string(RouteKind kind) {
  switch (kind) {
    case RouteKind::kPrimary: return "primary";
    case RouteKind::kFailover: return "failover";
    case RouteKind::kNoOwner: return "no_owner";
    case RouteKind::kPowerOfTwo: return "p2c";
  }
  return "?";
}

std::string RouteDecision::to_string() const {
  std::string out = "s=";
  out += shard == kNoShard ? "-" : std::to_string(shard);
  out += " n=" + std::to_string(node);
  out += " k=";
  out += cluster::to_string(kind);
  out += " v=" + std::to_string(map_version);
  out += " e=" + std::to_string(membership_epoch);
  return out;
}

ClusterRouter::ClusterRouter(const Membership* membership,
                             const ShardMap* shard_map, DepthProbe depth,
                             std::uint64_t seed)
    : membership_(membership),
      shard_map_(shard_map),
      depth_(std::move(depth)),
      seed_(seed) {}

Result<std::size_t> ClusterRouter::pick_balanced(const MembershipView& view,
                                                 std::size_t exclude) {
  // Candidate set: routable minus the excluded node. The common case has
  // no exclusion and uses the view's list in place.
  const std::size_t* live = view.routable.data();
  std::size_t n = view.routable.size();
  std::vector<std::size_t> filtered;
  if (exclude != kNone) {
    filtered.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      if (view.routable[i] != exclude) filtered.push_back(view.routable[i]);
    }
    live = filtered.data();
    n = filtered.size();
  }
  if (n == 0) return Unavailable("no routable node in the cluster");
  if (n == 1) return live[0];

  // Two distinct candidates from a stateless per-ticket hash: the ticket
  // order is the only shared state, so concurrent routes never contend on
  // RNG state and a single-threaded replay is byte-identical.
  const std::uint64_t ticket =
      ticket_.fetch_add(1, std::memory_order_relaxed);
  SplitMix64 sm(seed_ ^ (0x9E3779B97F4A7C15ULL * (ticket + 1)));
  const std::uint64_t h = sm.next();
  const std::size_t a = static_cast<std::size_t>(h % n);
  std::size_t b = static_cast<std::size_t>((h >> 32) % (n - 1));
  if (b >= a) ++b;

  const std::size_t node_a = live[a];
  const std::size_t node_b = live[b];
  const std::size_t depth_a = depth_ ? depth_(node_a) : 0;
  const std::size_t depth_b = depth_ ? depth_(node_b) : 0;
  if (depth_a != depth_b) return depth_a < depth_b ? node_a : node_b;
  return node_a < node_b ? node_a : node_b;  // deterministic tie-break
}

Result<RouteDecision> ClusterRouter::route(std::string_view data_key,
                                           std::size_t exclude) {
  const std::shared_ptr<const MembershipView> view = membership_->view();
  const std::shared_ptr<const ShardTable> table = shard_map_->table();

  RouteDecision decision;
  decision.map_version = table->version;
  decision.membership_epoch = view->epoch;

  if (!data_key.empty()) {
    decision.shard = shard_map_->shard_of(data_key);
    const auto& replicas = table->replicas[decision.shard];
    for (std::size_t slot = 0; slot < replicas.size(); ++slot) {
      const std::size_t node = replicas[slot];
      if (node == exclude || !view->is_routable(node)) continue;
      decision.node = node;
      decision.kind =
          slot == 0 ? RouteKind::kPrimary : RouteKind::kFailover;
      return decision;
    }
    // No healthy replica: serve anywhere, pay the cold data staging.
    auto picked = pick_balanced(*view, exclude);
    EVEREST_RETURN_IF_ERROR(picked.status());
    decision.node = *picked;
    decision.kind = RouteKind::kNoOwner;
    return decision;
  }

  auto picked = pick_balanced(*view, exclude);
  EVEREST_RETURN_IF_ERROR(picked.status());
  decision.node = *picked;
  decision.kind = RouteKind::kPowerOfTwo;
  return decision;
}

}  // namespace everest::cluster
