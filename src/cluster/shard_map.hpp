// Versioned shard → replica-set map for the serving federation. The key
// space is hashed into a fixed number of shards; each shard's replicas
// are chosen by the data plane's capacity-aware weighted-rendezvous
// placement (data::PlacementPolicy) over the currently healthy nodes, so
// the serving tier and the data tier agree on where a key "lives" — the
// property locality-aware routing depends on. Rendezvous keeps rebuilds
// minimal: failing one node moves only the shards it held; every other
// assignment is byte-identical across the rebuild (the tests pin this).
//
// Tables are immutable snapshots behind a shared_ptr: a router holds one
// for the duration of a decision, rebuilds swap in a new version, and
// the version number makes "which map routed this request" a recordable
// fact.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "cluster/membership.hpp"
#include "data/object.hpp"

namespace everest::cluster {

struct ShardMapConfig {
  /// Fixed shard count (the unit of placement/failover granularity).
  std::uint32_t num_shards = 64;
  /// Replicas per shard; capped by the number of healthy nodes.
  int replication = 2;
  /// Salt decorrelating this federation's rendezvous scores.
  std::uint64_t salt = 0x5eedULL;
};

/// Immutable shard table at one version.
struct ShardTable {
  std::uint64_t version = 0;
  /// Membership epoch this table was built from.
  std::uint64_t built_epoch = 0;
  std::uint32_t num_shards = 0;
  /// Per shard: node indices in preference order (index 0 = primary).
  /// Empty when no healthy node could host the shard (cluster down).
  std::vector<std::vector<std::size_t>> replicas;
  /// Per node: shards for which it is primary (placement balance).
  std::vector<std::uint32_t> primary_count;

  /// max/mean primary count over nodes that hold at least one primary
  /// (1.0 = perfectly balanced; 0 when the table is empty).
  [[nodiscard]] double primary_imbalance() const;
};

/// Thread-safe versioned map. One writer calls rebuild() (the
/// federation's pump, on membership transitions); readers call table().
class ShardMap {
 public:
  ShardMap(std::size_t num_nodes, ShardMapConfig config = {});

  /// Recomputes every shard's replica set over `view`'s healthy nodes,
  /// bumps the version, and publishes the new table. Returns the number
  /// of (shard, preference-slot) assignments that changed vs. the
  /// previous table — the shard-movement cost of this membership event.
  std::size_t rebuild(const MembershipView& view);

  [[nodiscard]] std::shared_ptr<const ShardTable> table() const;

  /// Shard owning `key` under this map's geometry. Deterministic; uses
  /// the same name → ObjectId hash as the data plane and the serve input
  /// cache, so "the node that owns the shard" is also "the node whose
  /// input cache is warm for the key".
  [[nodiscard]] std::uint32_t shard_of(std::string_view key) const;
  static std::uint32_t shard_of(std::string_view key,
                                std::uint32_t num_shards, std::uint64_t salt);
  /// Same mapping for an already-hashed object id (what the staging
  /// callbacks carry) — `shard_of(name)` == `shard_of_object(
  /// object_id_from_name(name))` by construction.
  static std::uint32_t shard_of_object(data::ObjectId id,
                                       std::uint32_t num_shards,
                                       std::uint64_t salt);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] const ShardMapConfig& config() const { return config_; }

 private:
  std::size_t num_nodes_;
  ShardMapConfig config_;

  mutable std::mutex mu_;
  std::shared_ptr<const ShardTable> table_;
};

}  // namespace everest::cluster
