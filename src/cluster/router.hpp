// Locality-first routing for the serving federation. A keyed request
// (Request::data_key non-empty) is routed to the first *healthy* replica
// of its shard — the node whose input cache is warm for that key; if the
// rendezvous primary is suspected/dead the decision degrades to the next
// replica (failover) without waiting for a map rebuild. Keyless traffic
// is balanced by power-of-two-choices over live queue depths: two
// deterministic candidates per decision, the shallower queue wins —
// the classic O(1) balancer whose max load is exponentially better than
// random placement.
//
// Decisions are deterministic given (seed, decision ordinal, membership
// view, shard table, probed depths): the keyless candidate pair comes
// from a SplitMix64 hash of seed ^ ticket, not from shared RNG state, so
// the router is lock-free on the hot path and replays byte-identically
// (test_cluster pins this with serialized decision logs).
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <string_view>

#include "cluster/membership.hpp"
#include "cluster/shard_map.hpp"
#include "common/status.hpp"

namespace everest::cluster {

/// Why a decision landed where it did.
enum class RouteKind : std::uint8_t {
  /// Keyed; routed to the shard's rendezvous primary (data-local).
  kPrimary = 0,
  /// Keyed; primary unhealthy/excluded, a lower-preference replica won
  /// (still data-local).
  kFailover,
  /// Keyed but no healthy replica holds the shard; fell back to
  /// power-of-two-choices (the serving node will stage the data cold).
  kNoOwner,
  /// Keyless; power-of-two-choices on live queue depth.
  kPowerOfTwo,
};

std::string_view to_string(RouteKind kind);

struct RouteDecision {
  std::size_t node = 0;
  /// Shard of the key (kNoShard for keyless decisions).
  std::uint32_t shard = kNoShard;
  RouteKind kind = RouteKind::kPowerOfTwo;
  /// Map/membership versions the decision was made under.
  std::uint64_t map_version = 0;
  std::uint64_t membership_epoch = 0;

  /// The chosen node holds a replica of the key's shard.
  [[nodiscard]] bool data_local() const {
    return kind == RouteKind::kPrimary || kind == RouteKind::kFailover;
  }
  /// Stable fingerprint ("s=12 n=3 k=primary v=4 e=2") — what the
  /// determinism tests compare byte-for-byte.
  [[nodiscard]] std::string to_string() const;

  static constexpr std::uint32_t kNoShard = 0xffffffffu;
};

class ClusterRouter {
 public:
  /// Live queue depth of a node (shallower wins power-of-two-choices).
  using DepthProbe = std::function<std::size_t(std::size_t node)>;

  /// `membership` and `shard_map` are borrowed and must outlive the
  /// router. `depth` may be empty (depth 0 everywhere → ties break to the
  /// lower node index).
  ClusterRouter(const Membership* membership, const ShardMap* shard_map,
                DepthProbe depth, std::uint64_t seed);

  /// Routes one request. `data_key` empty = keyless. `exclude` removes
  /// one node from consideration (a connection-refused retry re-routes
  /// around the node that just refused, ahead of failure detection).
  /// Fails with UNAVAILABLE only when no routable node remains.
  Result<RouteDecision> route(std::string_view data_key,
                              std::size_t exclude = kNone);

  /// Decisions made so far (the keyless determinism ticket).
  [[nodiscard]] std::uint64_t tickets() const {
    return ticket_.load(std::memory_order_relaxed);
  }

  static constexpr std::size_t kNone = static_cast<std::size_t>(-1);

 private:
  /// Power-of-two-choices over `view`'s routable nodes minus `exclude`.
  Result<std::size_t> pick_balanced(const MembershipView& view,
                                    std::size_t exclude);

  const Membership* membership_;
  const ShardMap* shard_map_;
  DepthProbe depth_;
  std::uint64_t seed_;
  std::atomic<std::uint64_t> ticket_{0};
};

}  // namespace everest::cluster
