#include "cluster/membership.hpp"

#include <algorithm>

namespace everest::cluster {

Membership::Membership(std::vector<std::string> node_names,
                       MembershipConfig config)
    : names_(std::move(node_names)),
      config_(config),
      registry_(names_.size(), config.heartbeat_interval_us,
                config.suspect_phi, config.dead_phi),
      last_(names_.size(), resilience::Health::kHealthy) {
  std::lock_guard<std::mutex> lock(mu_);
  publish_view_locked();
}

void Membership::heartbeat(std::size_t node, double now_us) {
  if (node >= names_.size()) return;
  std::lock_guard<std::mutex> lock(mu_);
  if (registry_.health(node) == resilience::Health::kDead) {
    registry_.reset(node, config_.heartbeat_interval_us);
  }
  registry_.heartbeat(node, now_us);
}

std::vector<Transition> Membership::update(double now_us) {
  std::lock_guard<std::mutex> lock(mu_);
  (void)registry_.update(now_us);
  std::vector<Transition> transitions;
  for (std::size_t i = 0; i < names_.size(); ++i) {
    const resilience::Health current = registry_.health(i);
    if (current != last_[i]) {
      transitions.push_back(Transition{i, last_[i], current, now_us});
      last_[i] = current;
    }
  }
  if (!transitions.empty()) {
    ++epoch_;
    publish_view_locked();
  }
  return transitions;
}

std::shared_ptr<const MembershipView> Membership::view() const {
  std::lock_guard<std::mutex> lock(mu_);
  return view_;
}

double Membership::detection_interval_us() const {
  constexpr double kLog10E = 0.4342944819032518;
  return config_.dead_phi * config_.heartbeat_interval_us / kLog10E;
}

void Membership::publish_view_locked() {
  auto next = std::make_shared<MembershipView>();
  next->epoch = epoch_;
  next->health = last_;
  for (std::size_t i = 0; i < last_.size(); ++i) {
    if (last_[i] == resilience::Health::kHealthy) next->routable.push_back(i);
  }
  view_ = std::move(next);
}

}  // namespace everest::cluster
