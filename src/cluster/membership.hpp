// Cluster membership: the federation's shared view of which serving
// nodes are alive. Built on the resilience phi-accrual detector — a
// heartbeat pump feeds each node's detector, update() re-scores them
// against the suspect/dead thresholds, and every health transition bumps
// a monotonically increasing epoch so routers and shard maps can detect
// staleness with one integer compare. The view itself is published as an
// immutable snapshot behind a shared_ptr: readers (one per routed
// request) never block the pump, and a reader holding an old view sees a
// consistent — merely slightly stale — membership, exactly like a real
// gossip/failure-detector readout.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "resilience/detector.hpp"

namespace everest::cluster {

struct MembershipConfig {
  /// Expected heartbeat cadence (µs); seeds the detectors' inter-arrival
  /// model and defines detection_interval_us().
  double heartbeat_interval_us = 10'000.0;
  /// Phi past which a node stops receiving new work.
  double suspect_phi = 3.0;
  /// Phi past which a node is declared dead and its shards fail over.
  double dead_phi = 8.0;
};

/// One health transition observed by update(); ordered by node index
/// within a pass, so a transition log is deterministic.
struct Transition {
  std::size_t node = 0;
  resilience::Health from = resilience::Health::kHealthy;
  resilience::Health to = resilience::Health::kHealthy;
  double at_us = 0.0;
};

/// Immutable membership snapshot. `routable` lists kHealthy nodes in
/// ascending index order (suspected nodes stop receiving new work before
/// they are declared dead — the phi detector's two-threshold contract).
struct MembershipView {
  std::uint64_t epoch = 0;
  std::vector<resilience::Health> health;
  std::vector<std::size_t> routable;

  [[nodiscard]] bool is_routable(std::size_t node) const {
    return node < health.size() &&
           health[node] == resilience::Health::kHealthy;
  }
  [[nodiscard]] std::size_t alive_count() const { return routable.size(); }
};

/// Thread-safe membership registry. One writer (the heartbeat pump)
/// drives heartbeat()/update(); any number of readers call view().
class Membership {
 public:
  Membership(std::vector<std::string> node_names,
             MembershipConfig config = {});

  /// Records a heartbeat from `node` at `now_us` (µs on the caller's
  /// monotonic clock). A heartbeat from a kDead node first resets its
  /// detector's inter-arrival model: the outage gap is silence, not a
  /// sample, and must not poison the EWMA (a poisoned mean would make the
  /// *next* failure of the same node take minutes to detect).
  void heartbeat(std::size_t node, double now_us);

  /// Re-scores every node at `now_us` and returns the transitions of this
  /// pass (including revivals recorded by heartbeat() since the last
  /// pass). Any transition bumps the epoch and publishes a fresh view.
  std::vector<Transition> update(double now_us);

  [[nodiscard]] std::shared_ptr<const MembershipView> view() const;

  [[nodiscard]] const std::string& name(std::size_t node) const {
    return names_[node];
  }
  [[nodiscard]] std::size_t size() const { return names_.size(); }
  [[nodiscard]] const MembershipConfig& config() const { return config_; }

  /// Upper bound on silence → kDead for a node with a calibrated
  /// inter-arrival model: phi = silence/mean * log10(e) reaches dead_phi
  /// at silence = dead_phi * mean / log10(e). Callers add their own pump
  /// granularity on top.
  [[nodiscard]] double detection_interval_us() const;

 private:
  void publish_view_locked();

  std::vector<std::string> names_;
  MembershipConfig config_;

  mutable std::mutex mu_;
  resilience::HealthRegistry registry_;
  /// Health as of the last published view; diffed to emit transitions.
  std::vector<resilience::Health> last_;
  std::uint64_t epoch_ = 0;
  std::shared_ptr<const MembershipView> view_;
};

}  // namespace everest::cluster
