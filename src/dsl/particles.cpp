#include "dsl/particles.hpp"

#include <map>

#include "ir/builder.hpp"
#include "ir/dialect.hpp"

namespace everest::dsl {

std::string_view to_string(ParticleLayout layout) {
  return layout == ParticleLayout::kAoS ? "aos" : "soa";
}

namespace pdetail {

enum class PKind { kField, kConstant, kBinary, kMap };

struct PExprNode {
  PKind kind;
  std::vector<std::shared_ptr<PExprNode>> operands;
  int field_index = -1;   // kField
  double value = 0.0;     // kConstant
  std::string op;         // kBinary kind / kMap fn
};

}  // namespace pdetail

using pdetail::PExprNode;
using pdetail::PKind;

namespace {

std::shared_ptr<PExprNode> binary_node(const std::string& op,
                                       std::shared_ptr<PExprNode> a,
                                       std::shared_ptr<PExprNode> b) {
  auto n = std::make_shared<PExprNode>();
  n->kind = PKind::kBinary;
  n->op = op;
  n->operands = {std::move(a), std::move(b)};
  return n;
}

}  // namespace

ParticleExpr operator+(const ParticleExpr& a, const ParticleExpr& b) {
  return ParticleExpr(binary_node("add", a.node_, b.node_));
}
ParticleExpr operator-(const ParticleExpr& a, const ParticleExpr& b) {
  return ParticleExpr(binary_node("sub", a.node_, b.node_));
}
ParticleExpr operator*(const ParticleExpr& a, const ParticleExpr& b) {
  return ParticleExpr(binary_node("mul", a.node_, b.node_));
}
ParticleExpr operator/(const ParticleExpr& a, const ParticleExpr& b) {
  return ParticleExpr(binary_node("div", a.node_, b.node_));
}

ParticleExpr pmap(const std::string& fn, const ParticleExpr& x) {
  auto n = std::make_shared<PExprNode>();
  n->kind = PKind::kMap;
  n->op = fn;
  n->operands = {x.node_};
  return ParticleExpr(std::move(n));
}

ParticleExpr ParticleKernel::field(const std::string& name) {
  int index = -1;
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == name) index = static_cast<int>(i);
  }
  if (index < 0) {
    index = static_cast<int>(fields_.size());
    fields_.push_back(name);
    updates_.push_back(nullptr);
  }
  auto n = std::make_shared<PExprNode>();
  n->kind = PKind::kField;
  n->field_index = index;
  return ParticleExpr(std::move(n));
}

ParticleExpr ParticleKernel::constant(double value) {
  auto n = std::make_shared<PExprNode>();
  n->kind = PKind::kConstant;
  n->value = value;
  return ParticleExpr(std::move(n));
}

Status ParticleKernel::update(const std::string& field_name,
                              ParticleExpr expr) {
  if (!expr.valid()) return InvalidArgument("invalid update expression");
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i] == field_name) {
      updates_[i] = expr.node_;
      return OkStatus();
    }
  }
  return NotFound("field '" + field_name + "' was never declared");
}

namespace {

using ir::Attribute;
using ir::OpBuilder;
using ir::Type;
using ir::Value;

class ParticleLowerer {
 public:
  ParticleLowerer(OpBuilder& body, Value particle_iv, Value state_in,
                  ParticleLayout layout, std::int64_t num_particles,
                  std::int64_t num_fields)
      : body_(body),
        iv_(particle_iv),
        state_in_(state_in),
        layout_(layout),
        num_particles_(num_particles),
        num_fields_(num_fields) {}

  /// Layout-dependent element index for (current particle, field f).
  Value element_index(int field) {
    if (layout_ == ParticleLayout::kAoS) {
      // p * F + f
      Value stride = body_.constant_index(num_fields_);
      Value scaled = body_.create_value("kernel.binop", {iv_, stride},
                                        Type::index(),
                                        {{"op", Attribute::string("mul")}});
      Value offset = body_.constant_index(field);
      return body_.create_value("kernel.binop", {scaled, offset},
                                Type::index(),
                                {{"op", Attribute::string("add")}});
    }
    // SoA: f * N + p
    Value base = body_.constant_index(field * num_particles_);
    return body_.create_value("kernel.binop", {iv_, base}, Type::index(),
                              {{"op", Attribute::string("add")}});
  }

  Result<Value> eval(const std::shared_ptr<PExprNode>& node) {
    if (node == nullptr) return InvalidArgument("null particle expression");
    switch (node->kind) {
      case PKind::kField: {
        auto it = field_loads_.find(node->field_index);
        if (it != field_loads_.end()) return it->second;
        Value idx = element_index(node->field_index);
        Value loaded = body_.create_value("kernel.load", {state_in_, idx},
                                          Type::f64());
        field_loads_.emplace(node->field_index, loaded);
        return loaded;
      }
      case PKind::kConstant:
        return body_.constant_f64(node->value);
      case PKind::kBinary: {
        EVEREST_ASSIGN_OR_RETURN(Value a, eval(node->operands[0]));
        EVEREST_ASSIGN_OR_RETURN(Value b, eval(node->operands[1]));
        return body_.create_value("kernel.binop", {a, b}, Type::f64(),
                                  {{"op", Attribute::string(node->op)}});
      }
      case PKind::kMap: {
        EVEREST_ASSIGN_OR_RETURN(Value x, eval(node->operands[0]));
        return body_.create_value("kernel.unop", {x}, Type::f64(),
                                  {{"fn", Attribute::string(node->op)}});
      }
    }
    return Internal("unhandled particle expression kind");
  }

 private:
  OpBuilder& body_;
  Value iv_;
  Value state_in_;
  ParticleLayout layout_;
  std::int64_t num_particles_;
  std::int64_t num_fields_;
  std::map<int, Value> field_loads_;
};

}  // namespace

Result<ir::Module> ParticleKernel::lower(ParticleLayout layout,
                                         bool store_only_updated) const {
  ir::register_everest_dialects();
  if (fields_.empty()) {
    return FailedPrecondition("particle kernel '" + name_ +
                              "' declares no fields");
  }
  const auto num_fields = static_cast<std::int64_t>(fields_.size());
  const std::int64_t total = num_particles_ * num_fields;
  ir::Module module(name_ + "_module");
  Type mem = Type::memref({total}, ir::ScalarKind::kF64,
                          ir::MemorySpace::kDevice);
  const std::string fn_name =
      name_ + "_" + std::string(to_string(layout));
  EVEREST_ASSIGN_OR_RETURN(
      ir::Function * fn,
      module.add_function(fn_name, Type::function({mem, mem}, {})));
  fn->set_attr("ev.layout", Attribute::string(std::string(to_string(layout))));
  fn->set_attr("ev.num_particles", Attribute::integer(num_particles_));
  fn->set_attr("ev.num_fields", Attribute::integer(num_fields));
  if (store_only_updated) {
    fn->set_attr("ev.partial_update", Attribute::boolean(true));
  }

  OpBuilder b(&fn->entry());
  ir::Operation& loop = b.create("kernel.for", {}, {},
                                 {{"lb", Attribute::integer(0)},
                                  {"ub", Attribute::integer(num_particles_)},
                                  {"step", Attribute::integer(1)}});
  ir::Block& body = loop.emplace_region().emplace_block({Type::index()});
  OpBuilder ib(&body);
  ParticleLowerer lowerer(ib, body.arg(0), fn->arg(0), layout,
                          num_particles_, num_fields);
  // Evaluate every update against the *input* state, then write all
  // results to the output state (two-buffer semantics).
  std::vector<Value> results(fields_.size());
  std::vector<bool> materialize(fields_.size(), true);
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (updates_[f] != nullptr) {
      EVEREST_ASSIGN_OR_RETURN(results[f], lowerer.eval(updates_[f]));
    } else if (!store_only_updated) {
      // Copy-through of untouched fields (complete output state).
      auto node = std::make_shared<PExprNode>();
      node->kind = PKind::kField;
      node->field_index = static_cast<int>(f);
      EVEREST_ASSIGN_OR_RETURN(results[f], lowerer.eval(node));
    } else {
      materialize[f] = false;  // cold field: never touched
    }
  }
  for (std::size_t f = 0; f < fields_.size(); ++f) {
    if (!materialize[f]) continue;
    Value idx = lowerer.element_index(static_cast<int>(f));
    ib.create("kernel.store", {results[f], fn->arg(1), idx}, {});
  }
  ib.create("kernel.yield", {}, {});
  b.ret();
  return module;
}

}  // namespace everest::dsl
