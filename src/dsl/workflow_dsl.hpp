// Workflow eDSL (paper §III-A: "a workflow pipeline where each node can be
// specified in C/C++ or with proper AI libraries", executed HyperLoom-style).
// Applications compose named tasks over data dependencies; kernels can be
// plain symbols (implemented elsewhere) or attached TensorPrograms that are
// lowered into the same module.
//
//   WorkflowBuilder wf("energy");
//   auto feed = wf.source("ensemble_feed", {.rate_hz = 24});
//   auto grid = wf.task("downscale").kernel("downscale_k")
//                 .inputs({feed}).output_shape({512, 512})
//                 .annotate({.volume_mb = 120}).done();
//   wf.sink("market", grid);
//   auto module = wf.lower();
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dsl/annotations.hpp"
#include "dsl/tensor_expr.hpp"
#include "ir/module.hpp"

namespace everest::dsl {

/// Opaque handle to a workflow node's data output.
struct WorkflowValue {
  int node_id = -1;
  [[nodiscard]] bool valid() const { return node_id >= 0; }
};

struct SourceOptions {
  /// Nominal arrival rate of items (used by the runtime placement model).
  double rate_hz = 1.0;
  /// Element scalar kind of the stream.
  ir::ScalarKind elem = ir::ScalarKind::kF64;
  DataAnnotations annotations;
};

class WorkflowBuilder;

/// Fluent configurator returned by WorkflowBuilder::task().
class TaskBuilder {
 public:
  /// Names the kernel function implementing this task (required).
  TaskBuilder& kernel(std::string symbol);
  /// Attaches a tensor-eDSL implementation; the kernel symbol defaults to
  /// the program's name and the program is lowered into the module.
  TaskBuilder& implemented_by(std::shared_ptr<TensorProgram> program);
  /// Declares data dependencies (outputs of other nodes).
  TaskBuilder& inputs(std::vector<WorkflowValue> deps);
  /// Output tensor shape (f64); rank-0 by default.
  TaskBuilder& output_shape(std::vector<std::int64_t> shape);
  /// Estimated work per invocation in FLOPs (drives variant selection).
  TaskBuilder& flops(double flops);
  /// Data/security annotations for the task's output.
  TaskBuilder& annotate(DataAnnotations annotations);
  /// Finalizes and returns the task's output handle.
  WorkflowValue done();

 private:
  friend class WorkflowBuilder;
  TaskBuilder(WorkflowBuilder* owner, int node_id)
      : owner_(owner), node_id_(node_id) {}
  WorkflowBuilder* owner_;
  int node_id_;
};

/// Builds a workflow pipeline and lowers it to the `workflow` dialect.
class WorkflowBuilder {
 public:
  explicit WorkflowBuilder(std::string name) : name_(std::move(name)) {}

  /// Declares an external data source.
  WorkflowValue source(const std::string& name, SourceOptions options = {});

  /// Starts configuring a new task.
  TaskBuilder task(const std::string& name);

  /// Declares a terminal consumer.
  Status sink(const std::string& name, WorkflowValue input);

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Lowers the workflow into a module: one @<name> orchestration function
  /// in the workflow dialect plus one function per attached TensorProgram.
  Result<ir::Module> lower() const;

 private:
  friend class TaskBuilder;

  enum class NodeKind { kSource, kTask, kSink };
  struct Node {
    NodeKind kind;
    std::string name;
    std::string kernel;              // tasks
    std::vector<int> inputs;         // node ids
    std::vector<std::int64_t> shape; // output shape (tasks)
    double flops = 0.0;
    SourceOptions source_options;    // sources
    DataAnnotations annotations;
    std::shared_ptr<TensorProgram> program;  // optional implementation
  };

  std::string name_;
  std::vector<Node> nodes_;
  std::string error_;
};

}  // namespace everest::dsl
