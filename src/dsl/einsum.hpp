// Einsum contraction specs ("ij,jk->ik"): parsing, validation, shape
// inference, and loop-nest metadata. Used by the tensor eDSL and by the
// tensor→kernel lowering (paper §III-B: "tensor expression optimizations").
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace everest::dsl {

/// A parsed einsum specification.
struct EinsumSpec {
  /// One index string per input operand, e.g. {"ij", "jk"}.
  std::vector<std::string> inputs;
  /// Output index string, e.g. "ik".
  std::string output;

  /// All distinct index letters in first-appearance order.
  [[nodiscard]] std::string all_indices() const;
  /// Indices that appear in inputs but not the output (contracted).
  [[nodiscard]] std::string contracted_indices() const;

  [[nodiscard]] std::string to_string() const;
};

/// Parses "ij,jk->ik". Index letters must be lowercase a–z; each operand
/// needs at least one index; duplicate letters within one operand are
/// rejected (no trace shorthand).
Result<EinsumSpec> parse_einsum(const std::string& spec);

/// Given operand shapes, checks consistency (same letter ⇒ same extent) and
/// returns extents for every index letter.
Result<std::map<char, std::int64_t>> infer_index_extents(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes);

/// Output shape for the spec given consistent input shapes.
Result<std::vector<std::int64_t>> infer_output_shape(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes);

/// Number of scalar multiply-accumulate operations the contraction performs
/// (product of all index extents).
Result<std::int64_t> contraction_flops(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes);

}  // namespace everest::dsl
