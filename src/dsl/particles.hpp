// Particle eDSL (paper §III-B: "Tensors and particles are two examples of
// EVEREST data-centric programming abstractions"; §III-B again: "a
// software-only implementation could explore layouts of particles as
// array-of-structures or structure-of-arrays").
//
// A ParticleKernel declares per-particle fields and update rules; lowering
// materializes ONE flat buffer whose indexing encodes the chosen layout:
//   AoS: element(p, f) = p * num_fields + f   (fields interleaved)
//   SoA: element(p, f) = f * num_particles + p (fields contiguous)
// Both are affine, so the HLS analyzer, the dependence analysis, and the
// cache simulator all see the layout decision — the knob is real IR, not a
// cost-model assumption.
//
//   ParticleKernel k("advect", 4096);
//   auto x = k.field("x"), v = k.field("v");
//   k.update(x, x + v * k.constant(0.1));
//   auto module = k.lower(ParticleLayout::kSoA);
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::dsl {

enum class ParticleLayout { kAoS, kSoA };

std::string_view to_string(ParticleLayout layout);

namespace pdetail {
struct PExprNode;
}

/// A per-particle scalar expression (field reads, constants, arithmetic,
/// elementwise functions).
class ParticleExpr {
 public:
  ParticleExpr() = default;
  [[nodiscard]] bool valid() const { return node_ != nullptr; }

  friend ParticleExpr operator+(const ParticleExpr& a, const ParticleExpr& b);
  friend ParticleExpr operator-(const ParticleExpr& a, const ParticleExpr& b);
  friend ParticleExpr operator*(const ParticleExpr& a, const ParticleExpr& b);
  friend ParticleExpr operator/(const ParticleExpr& a, const ParticleExpr& b);
  friend ParticleExpr pmap(const std::string& fn, const ParticleExpr& x);

 private:
  friend class ParticleKernel;
  explicit ParticleExpr(std::shared_ptr<pdetail::PExprNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<pdetail::PExprNode> node_;
};

/// Elementwise function over a particle expression (sqrt/exp/abs/...).
ParticleExpr pmap(const std::string& fn, const ParticleExpr& x);

/// A particle system update kernel.
class ParticleKernel {
 public:
  ParticleKernel(std::string name, std::int64_t num_particles)
      : name_(std::move(name)), num_particles_(num_particles) {}

  /// Declares a field; returns an expression reading it (current values).
  ParticleExpr field(const std::string& name);
  /// A per-particle constant.
  ParticleExpr constant(double value);

  /// Sets the update rule for a field (evaluated against current values;
  /// all reads happen before any write, two-buffer semantics).
  Status update(const std::string& field_name, ParticleExpr expr);

  [[nodiscard]] std::size_t num_fields() const { return fields_.size(); }
  [[nodiscard]] const std::string& name() const { return name_; }

  /// Lowers to a kernel-dialect function
  ///   @<name>_<layout>(%state_in: memref<N*F>, %state_out: memref<N*F>)
  /// with the layout encoded in the access pattern. By default fields
  /// without an update rule are copied through (out is a complete state);
  /// with `store_only_updated` the kernel touches only the hot fields and
  /// the caller keeps the cold ones — the optimization that makes SoA pay
  /// off for partial updates.
  Result<ir::Module> lower(ParticleLayout layout,
                           bool store_only_updated = false) const;

 private:
  std::string name_;
  std::int64_t num_particles_;
  std::vector<std::string> fields_;
  std::vector<std::shared_ptr<pdetail::PExprNode>> updates_;  // per field
};

}  // namespace everest::dsl
