#include "dsl/einsum.hpp"

#include <algorithm>

#include "common/strings.hpp"

namespace everest::dsl {

std::string EinsumSpec::all_indices() const {
  std::string out;
  auto add = [&](char c) {
    if (out.find(c) == std::string::npos) out += c;
  };
  for (const std::string& in : inputs) {
    for (char c : in) add(c);
  }
  for (char c : output) add(c);
  return out;
}

std::string EinsumSpec::contracted_indices() const {
  std::string out;
  for (char c : all_indices()) {
    if (output.find(c) == std::string::npos) out += c;
  }
  return out;
}

std::string EinsumSpec::to_string() const {
  std::string out = join(inputs, ",");
  out += "->";
  out += output;
  return out;
}

Result<EinsumSpec> parse_einsum(const std::string& spec) {
  const auto arrow = spec.find("->");
  if (arrow == std::string::npos) {
    return InvalidArgument("einsum spec '" + spec + "' lacks '->'");
  }
  EinsumSpec out;
  const std::string lhs = spec.substr(0, arrow);
  out.output = spec.substr(arrow + 2);
  out.inputs = split(lhs, ',');
  if (out.inputs.empty() || lhs.empty()) {
    return InvalidArgument("einsum spec '" + spec + "' has no inputs");
  }
  auto check_letters = [&](const std::string& s,
                           bool allow_dups) -> Status {
    std::string seen;
    for (char c : s) {
      if (c < 'a' || c > 'z') {
        return InvalidArgument("einsum index '" + std::string(1, c) +
                               "' is not a lowercase letter");
      }
      if (!allow_dups && seen.find(c) != std::string::npos) {
        return InvalidArgument("einsum operand '" + s +
                               "' repeats index '" + std::string(1, c) + "'");
      }
      seen += c;
    }
    return OkStatus();
  };
  for (const std::string& in : out.inputs) {
    if (in.empty()) {
      return InvalidArgument("einsum spec '" + spec + "' has an empty operand");
    }
    EVEREST_RETURN_IF_ERROR(check_letters(in, /*allow_dups=*/false));
  }
  EVEREST_RETURN_IF_ERROR(check_letters(out.output, /*allow_dups=*/false));
  // Output indices must come from the inputs.
  const std::string all = out.all_indices();
  for (char c : out.output) {
    bool found = false;
    for (const std::string& in : out.inputs) {
      if (in.find(c) != std::string::npos) found = true;
    }
    if (!found) {
      return InvalidArgument("einsum output index '" + std::string(1, c) +
                             "' does not appear in any input");
    }
  }
  return out;
}

Result<std::map<char, std::int64_t>> infer_index_extents(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes) {
  if (input_shapes.size() != spec.inputs.size()) {
    return InvalidArgument("einsum '" + spec.to_string() + "' expects " +
                           std::to_string(spec.inputs.size()) +
                           " operands, got " +
                           std::to_string(input_shapes.size()));
  }
  std::map<char, std::int64_t> extents;
  for (std::size_t i = 0; i < spec.inputs.size(); ++i) {
    const std::string& idx = spec.inputs[i];
    const auto& shape = input_shapes[i];
    if (idx.size() != shape.size()) {
      return InvalidArgument("operand " + std::to_string(i) + " of '" +
                             spec.to_string() + "' has rank " +
                             std::to_string(shape.size()) + ", spec wants " +
                             std::to_string(idx.size()));
    }
    for (std::size_t d = 0; d < idx.size(); ++d) {
      auto [it, inserted] = extents.emplace(idx[d], shape[d]);
      if (!inserted && it->second != shape[d]) {
        return InvalidArgument(
            "einsum index '" + std::string(1, idx[d]) + "' bound to both " +
            std::to_string(it->second) + " and " + std::to_string(shape[d]));
      }
    }
  }
  return extents;
}

Result<std::vector<std::int64_t>> infer_output_shape(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes) {
  EVEREST_ASSIGN_OR_RETURN(auto extents,
                           infer_index_extents(spec, input_shapes));
  std::vector<std::int64_t> shape;
  shape.reserve(spec.output.size());
  for (char c : spec.output) shape.push_back(extents.at(c));
  return shape;
}

Result<std::int64_t> contraction_flops(
    const EinsumSpec& spec,
    const std::vector<std::vector<std::int64_t>>& input_shapes) {
  EVEREST_ASSIGN_OR_RETURN(auto extents,
                           infer_index_extents(spec, input_shapes));
  std::int64_t total = 1;
  for (const auto& [idx, extent] : extents) total *= extent;
  return total;
}

}  // namespace everest::dsl
