// DSL annotations: the "extra characteristics of the algorithms and data"
// the paper's domain-specific extensions carry (§I, §III-A). They attach to
// DSL inputs/tasks and are propagated into IR attributes so the compiler
// middle-end and the runtime can act on them.
#pragma once

#include <string>

#include "ir/attribute.hpp"

namespace everest::dsl {

/// How the data arrives / lives.
enum class Locality {
  kResident,    // fits in node memory, batch-processed
  kStreaming,   // arrives continuously from end-point devices
  kDistributed, // partitioned across nodes
};

std::string_view to_string(Locality locality);

/// Data-characteristic and security annotations for one datum or task.
struct DataAnnotations {
  /// Expected data volume per invocation, in MiB (drives placement).
  double volume_mb = 0.0;
  /// Arrival/placement pattern.
  Locality locality = Locality::kResident;
  /// Confidentiality requirement: data must be encrypted off-chip.
  bool confidential = false;
  /// Integrity requirement: data must be authenticated (hash/MAC).
  bool integrity = false;
  /// Free-form provenance tag ("wind-sensor", "FCD", ...).
  std::string provenance;

  /// Serializes into IR attributes under canonical keys (ev.volume_mb,
  /// ev.locality, ev.confidential, ev.integrity, ev.provenance).
  void attach_to(ir::AttrMap& attrs) const;

  /// Reads annotations back from IR attributes (missing keys ⇒ defaults).
  static DataAnnotations from_attrs(const ir::AttrMap& attrs);
};

}  // namespace everest::dsl
