#include "dsl/nn_exchange.hpp"

#include <cctype>
#include <map>

namespace everest::dsl {

namespace {

Result<std::vector<std::int64_t>> parse_shape(const json::Value& v) {
  if (!v.is_array()) return InvalidArgument("shape must be an array");
  std::vector<std::int64_t> shape;
  for (const json::Value& d : v.as_array()) {
    if (!d.is_number() || d.as_int() <= 0) {
      return InvalidArgument("shape dims must be positive integers");
    }
    shape.push_back(d.as_int());
  }
  return shape;
}

}  // namespace

Result<TensorProgram> import_nn_model(const std::string& json_text) {
  EVEREST_ASSIGN_OR_RETURN(json::Value doc, json::parse(json_text));
  if (doc.at("format").as_string() != "everest.nn.v1") {
    return InvalidArgument("unknown model format '" +
                           doc.at("format").as_string() + "'");
  }
  const std::string name = doc.at("name").is_string()
                               ? doc.at("name").as_string()
                               : "model";
  TensorProgram program(name);
  std::map<std::string, TensorExpr> env;

  for (const json::Value& input : doc.at("inputs").as_array()) {
    const std::string& tensor_name = input.at("name").as_string();
    EVEREST_ASSIGN_OR_RETURN(auto shape, parse_shape(input.at("shape")));
    env[tensor_name] = program.input(tensor_name, shape);
  }
  for (const json::Value& init : doc.at("initializers").as_array()) {
    const std::string& tensor_name = init.at("name").as_string();
    EVEREST_ASSIGN_OR_RETURN(auto shape, parse_shape(init.at("shape")));
    std::vector<double> data;
    for (const json::Value& d : init.at("data").as_array()) {
      data.push_back(d.as_number());
    }
    env[tensor_name] = program.constant(shape, std::move(data));
  }

  auto lookup = [&](const std::string& tensor_name) -> Result<TensorExpr> {
    auto it = env.find(tensor_name);
    if (it == env.end()) {
      return NotFound("tensor '" + tensor_name +
                      "' is not defined before use");
    }
    return it->second;
  };

  for (const json::Value& node : doc.at("nodes").as_array()) {
    const std::string op = node.at("op").as_string();
    const std::string out = node.at("output").as_string();
    if (env.count(out) > 0) {
      return AlreadyExists("tensor '" + out + "' defined twice");
    }
    std::vector<TensorExpr> args;
    for (const json::Value& in : node.at("inputs").as_array()) {
      EVEREST_ASSIGN_OR_RETURN(TensorExpr e, lookup(in.as_string()));
      args.push_back(std::move(e));
    }
    auto need = [&](std::size_t n) -> Status {
      if (args.size() != n) {
        return InvalidArgument("op '" + op + "' (output '" + out +
                               "') expects " + std::to_string(n) + " inputs");
      }
      return OkStatus();
    };
    TensorExpr result;
    if (op == "MatMul") {
      EVEREST_RETURN_IF_ERROR(need(2));
      result = matmul(args[0], args[1]);
    } else if (op == "Add" || op == "Sub" || op == "Mul" || op == "Div") {
      EVEREST_RETURN_IF_ERROR(need(2));
      if (op == "Add") result = args[0] + args[1];
      else if (op == "Sub") result = args[0] - args[1];
      else if (op == "Mul") result = args[0] * args[1];
      else result = args[0] / args[1];
    } else if (op == "Relu" || op == "Tanh" || op == "Sigmoid" ||
               op == "Exp" || op == "Sqrt" || op == "Neg" || op == "Abs" ||
               op == "Log") {
      EVEREST_RETURN_IF_ERROR(need(1));
      std::string fn = op;
      for (char& c : fn) c = static_cast<char>(std::tolower(c));
      result = map(fn, args[0]);
    } else if (op == "Scale") {
      EVEREST_RETURN_IF_ERROR(need(1));
      if (!node.at("attr").is_number()) {
        return InvalidArgument("Scale node '" + out + "' needs numeric attr");
      }
      result = scale(args[0], node.at("attr").as_number());
    } else if (op == "Transpose") {
      EVEREST_RETURN_IF_ERROR(need(1));
      if (!node.at("perm").is_array()) {
        return InvalidArgument("Transpose node '" + out + "' needs a perm");
      }
      std::vector<std::int64_t> p;  // perm entries may legitimately be 0
      for (const json::Value& d : node.at("perm").as_array()) {
        p.push_back(d.as_int());
      }
      result = transpose(args[0], p);
    } else if (op == "ReduceSum" || op == "ReduceMean" || op == "ReduceMax" ||
               op == "ReduceMin") {
      EVEREST_RETURN_IF_ERROR(need(1));
      const std::string kind = op == "ReduceSum" ? "sum"
                               : op == "ReduceMean" ? "mean"
                               : op == "ReduceMax" ? "max"
                                                   : "min";
      result = reduce(kind, args[0]);
    } else if (op == "Einsum") {
      if (!node.at("equation").is_string()) {
        return InvalidArgument("Einsum node '" + out + "' needs an equation");
      }
      result = contract(node.at("equation").as_string(), args);
    } else {
      return Unimplemented("unsupported node op '" + op + "'");
    }
    if (!result.ok()) {
      return InvalidArgument("node '" + out + "': " + result.error());
    }
    env[out] = std::move(result);
  }

  const std::string& output_name = doc.at("output").as_string();
  EVEREST_ASSIGN_OR_RETURN(TensorExpr out_expr, lookup(output_name));
  program.output(output_name, std::move(out_expr));
  return program;
}

NnModelBuilder::NnModelBuilder(std::string name) {
  doc_["format"] = "everest.nn.v1";
  doc_["name"] = std::move(name);
}

NnModelBuilder& NnModelBuilder::input(const std::string& name,
                                      std::vector<std::int64_t> shape) {
  json::Object o;
  o["name"] = name;
  json::Array s;
  for (std::int64_t d : shape) s.push_back(d);
  o["shape"] = std::move(s);
  inputs_.push_back(std::move(o));
  return *this;
}

NnModelBuilder& NnModelBuilder::initializer(const std::string& name,
                                            std::vector<std::int64_t> shape,
                                            std::vector<double> data) {
  json::Object o;
  o["name"] = name;
  json::Array s;
  for (std::int64_t d : shape) s.push_back(d);
  o["shape"] = std::move(s);
  json::Array values;
  for (double v : data) values.push_back(v);
  o["data"] = std::move(values);
  initializers_.push_back(std::move(o));
  return *this;
}

NnModelBuilder& NnModelBuilder::node(const std::string& op,
                                     std::vector<std::string> inputs,
                                     std::string output, json::Value attr) {
  json::Object o;
  o["op"] = op;
  json::Array in;
  for (std::string& name : inputs) in.push_back(std::move(name));
  o["inputs"] = std::move(in);
  o["output"] = std::move(output);
  if (!attr.is_null()) {
    // The importer looks for op-specific keys.
    if (op == "Scale") o["attr"] = std::move(attr);
    else if (op == "Transpose") o["perm"] = std::move(attr);
    else if (op == "Einsum") o["equation"] = std::move(attr);
  }
  nodes_.push_back(std::move(o));
  return *this;
}

NnModelBuilder& NnModelBuilder::output(const std::string& name) {
  output_ = name;
  return *this;
}

std::string NnModelBuilder::to_json() const {
  json::Object doc = doc_;
  doc["inputs"] = inputs_;
  doc["initializers"] = initializers_;
  doc["nodes"] = nodes_;
  doc["output"] = output_;
  return json::Value(doc).dump(2);
}

}  // namespace everest::dsl
