#include "dsl/tensor_expr.hpp"

#include <map>

#include "ir/builder.hpp"
#include "ir/dialect.hpp"

namespace everest::dsl {

namespace detail {

enum class ExprKind {
  kInput, kConstant, kBinary, kMap, kMatmul, kContract, kReduce,
  kTranspose, kReshape, kScale,
};

struct ExprNode {
  ExprKind kind;
  std::vector<std::shared_ptr<ExprNode>> operands;
  std::vector<std::int64_t> shape;
  std::string error;  // sticky: first error in this subtree

  // Per-kind payloads.
  std::string name;               // kInput
  std::vector<double> values;     // kConstant
  std::string op;                 // kBinary ("add"...), kMap (fn), kReduce
  EinsumSpec spec;                // kContract
  std::vector<std::int64_t> perm; // kTranspose
  double factor = 1.0;            // kScale
  DataAnnotations annotations;    // kInput
  int input_index = -1;           // kInput: argument position
};

namespace {

std::shared_ptr<ExprNode> make_error(std::string message) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kInput;
  n->error = std::move(message);
  return n;
}

std::string propagate_error(
    const std::vector<std::shared_ptr<ExprNode>>& operands) {
  for (const auto& op : operands) {
    if (!op) return "null operand expression";
    if (!op->error.empty()) return op->error;
  }
  return {};
}

}  // namespace
}  // namespace detail

using detail::ExprKind;
using detail::ExprNode;

const std::vector<std::int64_t>& TensorExpr::shape() const {
  static const std::vector<std::int64_t> kEmpty;
  return node_ ? node_->shape : kEmpty;
}

std::string TensorExpr::error() const {
  return node_ ? node_->error : "uninitialized expression";
}

TensorExpr binary(const std::string& op, const TensorExpr& a,
                  const TensorExpr& b) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kBinary;
  n->op = op;
  n->operands = {a.node_, b.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) {
    if (a.shape() != b.shape()) {
      n->error = "elementwise '" + op + "' on mismatched shapes";
    } else {
      n->shape = a.shape();
    }
  }
  return TensorExpr(std::move(n));
}

TensorExpr operator+(const TensorExpr& a, const TensorExpr& b) {
  return binary("add", a, b);
}
TensorExpr operator-(const TensorExpr& a, const TensorExpr& b) {
  return binary("sub", a, b);
}
TensorExpr operator*(const TensorExpr& a, const TensorExpr& b) {
  return binary("mul", a, b);
}
TensorExpr operator/(const TensorExpr& a, const TensorExpr& b) {
  return binary("div", a, b);
}

TensorExpr matmul(const TensorExpr& a, const TensorExpr& b) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kMatmul;
  n->operands = {a.node_, b.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) {
    if (a.shape().size() != 2 || b.shape().size() != 2) {
      n->error = "matmul needs rank-2 operands";
    } else if (a.shape()[1] != b.shape()[0]) {
      n->error = "matmul inner dimensions disagree";
    } else {
      n->shape = {a.shape()[0], b.shape()[1]};
    }
  }
  return TensorExpr(std::move(n));
}

TensorExpr contract(const std::string& spec,
                    const std::vector<TensorExpr>& operands) {
  auto parsed = parse_einsum(spec);
  if (!parsed.ok()) {
    return TensorExpr(detail::make_error(parsed.status().message()));
  }
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kContract;
  n->spec = std::move(parsed).value();
  for (const TensorExpr& e : operands) n->operands.push_back(e.node_);
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) {
    std::vector<std::vector<std::int64_t>> shapes;
    shapes.reserve(operands.size());
    for (const TensorExpr& e : operands) shapes.push_back(e.shape());
    auto out_shape = infer_output_shape(n->spec, shapes);
    if (!out_shape.ok()) {
      n->error = out_shape.status().message();
    } else {
      n->shape = std::move(out_shape).value();
    }
  }
  return TensorExpr(std::move(n));
}

TensorExpr map(const std::string& fn, const TensorExpr& x) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kMap;
  n->op = fn;
  n->operands = {x.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) n->shape = x.shape();
  return TensorExpr(std::move(n));
}

TensorExpr reduce(const std::string& kind, const TensorExpr& x) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kReduce;
  n->op = kind;
  n->operands = {x.node_};
  n->error = detail::propagate_error(n->operands);
  // Full reduction to rank-0: shape stays empty.
  return TensorExpr(std::move(n));
}

TensorExpr transpose(const TensorExpr& x,
                     const std::vector<std::int64_t>& perm) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kTranspose;
  n->perm = perm;
  n->operands = {x.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) {
    if (perm.size() != x.shape().size()) {
      n->error = "transpose perm rank mismatch";
    } else {
      n->shape.resize(perm.size());
      std::vector<bool> seen(perm.size(), false);
      for (std::size_t i = 0; i < perm.size(); ++i) {
        if (perm[i] < 0 || static_cast<std::size_t>(perm[i]) >= perm.size() ||
            seen[static_cast<std::size_t>(perm[i])]) {
          n->error = "transpose perm is not a permutation";
          break;
        }
        seen[static_cast<std::size_t>(perm[i])] = true;
        n->shape[i] = x.shape()[static_cast<std::size_t>(perm[i])];
      }
    }
  }
  return TensorExpr(std::move(n));
}

TensorExpr reshape(const TensorExpr& x, std::vector<std::int64_t> new_shape) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kReshape;
  n->operands = {x.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) {
    std::int64_t in_elems = 1, out_elems = 1;
    for (std::int64_t d : x.shape()) in_elems *= d;
    for (std::int64_t d : new_shape) {
      if (d <= 0) n->error = "reshape dims must be positive";
      out_elems *= d;
    }
    if (n->error.empty() && in_elems != out_elems) {
      n->error = "reshape must preserve the element count";
    } else {
      n->shape = std::move(new_shape);
    }
  }
  return TensorExpr(std::move(n));
}

TensorExpr scale(const TensorExpr& x, double factor) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kScale;
  n->factor = factor;
  n->operands = {x.node_};
  n->error = detail::propagate_error(n->operands);
  if (n->error.empty()) n->shape = x.shape();
  return TensorExpr(std::move(n));
}

TensorExpr TensorProgram::input(const std::string& name,
                                std::vector<std::int64_t> shape,
                                DataAnnotations annotations) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kInput;
  n->name = name;
  n->shape = std::move(shape);
  n->annotations = annotations;
  n->input_index = static_cast<int>(inputs_.size());
  for (std::int64_t d : n->shape) {
    if (d <= 0) n->error = "input '" + name + "' has non-positive dimension";
  }
  TensorExpr expr(n);
  inputs_.push_back({name, expr, std::move(annotations)});
  if (!n->error.empty() && error_.empty()) error_ = n->error;
  return expr;
}

TensorExpr TensorProgram::constant(std::vector<std::int64_t> shape,
                                   std::vector<double> values) {
  auto n = std::make_shared<ExprNode>();
  n->kind = ExprKind::kConstant;
  n->shape = std::move(shape);
  std::int64_t expected = 1;
  for (std::int64_t d : n->shape) expected *= d;
  if (static_cast<std::int64_t>(values.size()) != expected) {
    n->error = "constant value count does not match shape";
    if (error_.empty()) error_ = n->error;
  }
  n->values = std::move(values);
  return TensorExpr(std::move(n));
}

void TensorProgram::output(const std::string& name, TensorExpr expr) {
  if (!expr.ok() && error_.empty()) {
    error_ = "output '" + name + "': " + expr.error();
  }
  outputs_.push_back({name, std::move(expr)});
}

namespace {

/// Emits IR for a node (memoized on node pointer).
class Lowerer {
 public:
  Lowerer(ir::OpBuilder& builder, ir::Function& fn)
      : builder_(builder), fn_(fn) {}

  Result<ir::Value> lower(const std::shared_ptr<ExprNode>& node) {
    if (!node) return InvalidArgument("null expression node");
    if (!node->error.empty()) return InvalidArgument(node->error);
    auto it = memo_.find(node.get());
    if (it != memo_.end()) return it->second;
    EVEREST_ASSIGN_OR_RETURN(ir::Value v, lower_uncached(*node));
    memo_.emplace(node.get(), v);
    return v;
  }

 private:
  Result<ir::Value> lower_uncached(const ExprNode& node) {
    using ir::Attribute;
    const ir::Type result_type =
        ir::Type::tensor(node.shape, ir::ScalarKind::kF64);
    switch (node.kind) {
      case ExprKind::kInput:
        return fn_.arg(static_cast<unsigned>(node.input_index));
      case ExprKind::kConstant:
        return builder_.create_value(
            "tensor.constant", {}, result_type,
            {{"value", Attribute::dense_f64(node.values)}});
      case ExprKind::kBinary: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        EVEREST_ASSIGN_OR_RETURN(ir::Value b, lower(node.operands[1]));
        return builder_.create_value("tensor." + node.op, {a, b}, result_type);
      }
      case ExprKind::kMap: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        return builder_.create_value("tensor.map", {a}, result_type,
                                     {{"fn", Attribute::string(node.op)}});
      }
      case ExprKind::kMatmul: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        EVEREST_ASSIGN_OR_RETURN(ir::Value b, lower(node.operands[1]));
        return builder_.create_value("tensor.matmul", {a, b}, result_type);
      }
      case ExprKind::kContract: {
        std::vector<ir::Value> args;
        for (const auto& op : node.operands) {
          EVEREST_ASSIGN_OR_RETURN(ir::Value v, lower(op));
          args.push_back(v);
        }
        return builder_.create_value(
            "tensor.contract", std::move(args), result_type,
            {{"spec", Attribute::string(node.spec.to_string())}});
      }
      case ExprKind::kReduce: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        return builder_.create_value("tensor.reduce", {a}, result_type,
                                     {{"kind", Attribute::string(node.op)}});
      }
      case ExprKind::kTranspose: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        return builder_.create_value("tensor.transpose", {a}, result_type,
                                     {{"perm", Attribute::int_array(node.perm)}});
      }
      case ExprKind::kReshape: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        return builder_.create_value("tensor.reshape", {a}, result_type);
      }
      case ExprKind::kScale: {
        EVEREST_ASSIGN_OR_RETURN(ir::Value a, lower(node.operands[0]));
        ir::Value factor = builder_.constant_f64(node.factor);
        return builder_.create_value("tensor.scale", {a, factor}, result_type);
      }
    }
    return Internal("unhandled expression kind");
  }

  ir::OpBuilder& builder_;
  ir::Function& fn_;
  std::map<const ExprNode*, ir::Value> memo_;
};

}  // namespace

Status TensorProgram::lower_into(ir::Module& module) const {
  ir::register_everest_dialects();
  if (!error_.empty()) return InvalidArgument(error_);
  if (outputs_.empty()) {
    return FailedPrecondition("program '" + name_ + "' declares no outputs");
  }
  std::vector<ir::Type> input_types;
  input_types.reserve(inputs_.size());
  for (const Input& in : inputs_) {
    input_types.push_back(
        ir::Type::tensor(in.expr.shape(), ir::ScalarKind::kF64));
  }
  std::vector<ir::Type> result_types;
  result_types.reserve(outputs_.size());
  for (const Output& out : outputs_) {
    result_types.push_back(
        ir::Type::tensor(out.expr.shape(), ir::ScalarKind::kF64));
  }
  EVEREST_ASSIGN_OR_RETURN(
      ir::Function * fn,
      module.add_function(name_, ir::Type::function(std::move(input_types),
                                                    std::move(result_types))));
  // Input annotations become per-argument function attributes.
  bool any_confidential = false;
  for (std::size_t i = 0; i < inputs_.size(); ++i) {
    ir::AttrMap attrs;
    inputs_[i].annotations.attach_to(attrs);
    any_confidential |= inputs_[i].annotations.confidential;
    for (auto& [k, v] : attrs) {
      fn->set_attr("arg" + std::to_string(i) + "." + k, v);
    }
  }
  if (any_confidential) {
    fn->set_attr("ev.requires_protection", ir::Attribute::boolean(true));
  }
  fn->set_attr("ev.dsl", ir::Attribute::string("tensor"));

  ir::OpBuilder builder(&fn->entry());
  Lowerer lowerer(builder, *fn);
  std::vector<ir::Value> results;
  for (const Output& out : outputs_) {
    EVEREST_ASSIGN_OR_RETURN(ir::Value v, lowerer.lower(out.expr.node_));
    results.push_back(v);
  }
  builder.ret(std::move(results));
  return OkStatus();
}

Result<ir::Module> TensorProgram::lower() const {
  ir::Module module(name_ + "_module");
  EVEREST_RETURN_IF_ERROR(lower_into(module));
  return module;
}

}  // namespace everest::dsl
