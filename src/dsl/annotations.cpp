#include "dsl/annotations.hpp"

namespace everest::dsl {

std::string_view to_string(Locality locality) {
  switch (locality) {
    case Locality::kResident: return "resident";
    case Locality::kStreaming: return "streaming";
    case Locality::kDistributed: return "distributed";
  }
  return "?";
}

void DataAnnotations::attach_to(ir::AttrMap& attrs) const {
  using ir::Attribute;
  if (volume_mb > 0.0) attrs["ev.volume_mb"] = Attribute::real(volume_mb);
  attrs["ev.locality"] = Attribute::string(std::string(to_string(locality)));
  if (confidential) attrs["ev.confidential"] = Attribute::boolean(true);
  if (integrity) attrs["ev.integrity"] = Attribute::boolean(true);
  if (!provenance.empty()) attrs["ev.provenance"] = Attribute::string(provenance);
}

DataAnnotations DataAnnotations::from_attrs(const ir::AttrMap& attrs) {
  DataAnnotations out;
  auto find = [&](const char* key) -> const ir::Attribute* {
    auto it = attrs.find(key);
    return it == attrs.end() ? nullptr : &it->second;
  };
  if (const auto* a = find("ev.volume_mb"); a && a->is_double()) {
    out.volume_mb = a->as_double();
  }
  if (const auto* a = find("ev.locality"); a && a->is_string()) {
    const std::string& s = a->as_string();
    if (s == "streaming") out.locality = Locality::kStreaming;
    else if (s == "distributed") out.locality = Locality::kDistributed;
  }
  if (const auto* a = find("ev.confidential"); a && a->is_bool()) {
    out.confidential = a->as_bool();
  }
  if (const auto* a = find("ev.integrity"); a && a->is_bool()) {
    out.integrity = a->as_bool();
  }
  if (const auto* a = find("ev.provenance"); a && a->is_string()) {
    out.provenance = a->as_string();
  }
  return out;
}

}  // namespace everest::dsl
