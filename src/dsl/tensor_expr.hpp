// Tensor-expression eDSL (CFDlang/TeIL-style, paper §III-A/B): application
// experts write kernels as algebraic expressions over named tensors; the
// program lowers to the `tensor` dialect of the EVEREST IR.
//
//   TensorProgram p("postproc");
//   auto x = p.input("ens", {kMembers, kCells});
//   auto w = p.input("w", {kCells, kOut});
//   p.output("y", relu(matmul(x, w)));
//   auto module = p.lower();
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "dsl/annotations.hpp"
#include "dsl/einsum.hpp"
#include "ir/module.hpp"

namespace everest::dsl {

namespace detail {
struct ExprNode;
}

/// A value-semantic handle to a tensor expression tree node.
class TensorExpr {
 public:
  TensorExpr() = default;

  [[nodiscard]] bool valid() const { return node_ != nullptr; }
  /// Inferred shape (empty for rank-0). Valid only if ok().
  [[nodiscard]] const std::vector<std::int64_t>& shape() const;
  /// First construction error in this subtree ("" if none).
  [[nodiscard]] std::string error() const;
  [[nodiscard]] bool ok() const { return valid() && error().empty(); }

  // Elementwise algebra (shapes must match).
  friend TensorExpr operator+(const TensorExpr& a, const TensorExpr& b);
  friend TensorExpr operator-(const TensorExpr& a, const TensorExpr& b);
  friend TensorExpr operator*(const TensorExpr& a, const TensorExpr& b);
  friend TensorExpr operator/(const TensorExpr& a, const TensorExpr& b);

 private:
  friend class TensorProgram;
  friend TensorExpr matmul(const TensorExpr&, const TensorExpr&);
  friend TensorExpr contract(const std::string&,
                             const std::vector<TensorExpr>&);
  friend TensorExpr map(const std::string&, const TensorExpr&);
  friend TensorExpr reduce(const std::string&, const TensorExpr&);
  friend TensorExpr transpose(const TensorExpr&,
                              const std::vector<std::int64_t>&);
  friend TensorExpr reshape(const TensorExpr&, std::vector<std::int64_t>);
  friend TensorExpr scale(const TensorExpr&, double);
  friend TensorExpr binary(const std::string&, const TensorExpr&,
                           const TensorExpr&);

  explicit TensorExpr(std::shared_ptr<detail::ExprNode> node)
      : node_(std::move(node)) {}
  std::shared_ptr<detail::ExprNode> node_;
};

/// Rank-2 matrix product.
TensorExpr matmul(const TensorExpr& a, const TensorExpr& b);
/// Generalized einsum contraction, e.g. contract("mc,co->mo", {x, w}).
TensorExpr contract(const std::string& spec,
                    const std::vector<TensorExpr>& operands);
/// Elementwise function: relu/exp/log/sqrt/tanh/sigmoid/abs/neg/square.
TensorExpr map(const std::string& fn, const TensorExpr& x);
inline TensorExpr relu(const TensorExpr& x) { return map("relu", x); }
inline TensorExpr exp(const TensorExpr& x) { return map("exp", x); }
inline TensorExpr sqrt(const TensorExpr& x) { return map("sqrt", x); }
inline TensorExpr tanh_(const TensorExpr& x) { return map("tanh", x); }
inline TensorExpr sigmoid(const TensorExpr& x) { return map("sigmoid", x); }
/// Full reduction to rank-0: kind is sum/max/min/mean.
TensorExpr reduce(const std::string& kind, const TensorExpr& x);
/// Dimension permutation.
TensorExpr transpose(const TensorExpr& x, const std::vector<std::int64_t>& perm);
/// Shape change preserving the element count and row-major order.
TensorExpr reshape(const TensorExpr& x, std::vector<std::int64_t> new_shape);
/// Multiply by a compile-time scalar.
TensorExpr scale(const TensorExpr& x, double factor);

/// A named kernel written in the tensor eDSL. Inputs are declared with
/// shapes (+ optional annotations); one or more named outputs close the
/// program. `lower()` emits one IR function into a fresh module;
/// `lower_into()` appends to an existing module (used by the workflow DSL).
class TensorProgram {
 public:
  explicit TensorProgram(std::string name) : name_(std::move(name)) {}

  /// Declares an input tensor; order of declaration = argument order.
  TensorExpr input(const std::string& name, std::vector<std::int64_t> shape,
                   DataAnnotations annotations = {});
  /// Declares a compile-time constant tensor (row-major values).
  TensorExpr constant(std::vector<std::int64_t> shape,
                      std::vector<double> values);

  /// Declares a named output.
  void output(const std::string& name, TensorExpr expr);

  [[nodiscard]] const std::string& name() const { return name_; }

  /// Lowers into a fresh single-function module.
  Result<ir::Module> lower() const;
  /// Appends function @name_ to `module`.
  Status lower_into(ir::Module& module) const;

 private:
  struct Input {
    std::string name;
    TensorExpr expr;
    DataAnnotations annotations;
  };
  struct Output {
    std::string name;
    TensorExpr expr;
  };
  std::string name_;
  std::vector<Input> inputs_;
  std::vector<Output> outputs_;
  std::string error_;  // first construction error, reported at lower()
};

}  // namespace everest::dsl
