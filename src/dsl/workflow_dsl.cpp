#include "dsl/workflow_dsl.hpp"

#include "ir/builder.hpp"
#include "ir/dialect.hpp"

namespace everest::dsl {

TaskBuilder& TaskBuilder::kernel(std::string symbol) {
  owner_->nodes_[static_cast<std::size_t>(node_id_)].kernel = std::move(symbol);
  return *this;
}

TaskBuilder& TaskBuilder::implemented_by(
    std::shared_ptr<TensorProgram> program) {
  auto& node = owner_->nodes_[static_cast<std::size_t>(node_id_)];
  if (node.kernel.empty()) node.kernel = program->name();
  node.program = std::move(program);
  return *this;
}

TaskBuilder& TaskBuilder::inputs(std::vector<WorkflowValue> deps) {
  auto& node = owner_->nodes_[static_cast<std::size_t>(node_id_)];
  for (const WorkflowValue& v : deps) {
    if (!v.valid() || v.node_id >= static_cast<int>(owner_->nodes_.size())) {
      if (owner_->error_.empty()) {
        owner_->error_ = "task '" + node.name + "' has an invalid input handle";
      }
      continue;
    }
    node.inputs.push_back(v.node_id);
  }
  return *this;
}

TaskBuilder& TaskBuilder::output_shape(std::vector<std::int64_t> shape) {
  owner_->nodes_[static_cast<std::size_t>(node_id_)].shape = std::move(shape);
  return *this;
}

TaskBuilder& TaskBuilder::flops(double flops) {
  owner_->nodes_[static_cast<std::size_t>(node_id_)].flops = flops;
  return *this;
}

TaskBuilder& TaskBuilder::annotate(DataAnnotations annotations) {
  owner_->nodes_[static_cast<std::size_t>(node_id_)].annotations =
      std::move(annotations);
  return *this;
}

WorkflowValue TaskBuilder::done() { return WorkflowValue{node_id_}; }

WorkflowValue WorkflowBuilder::source(const std::string& name,
                                      SourceOptions options) {
  Node node;
  node.kind = NodeKind::kSource;
  node.name = name;
  node.source_options = std::move(options);
  nodes_.push_back(std::move(node));
  return WorkflowValue{static_cast<int>(nodes_.size()) - 1};
}

TaskBuilder WorkflowBuilder::task(const std::string& name) {
  Node node;
  node.kind = NodeKind::kTask;
  node.name = name;
  nodes_.push_back(std::move(node));
  return TaskBuilder(this, static_cast<int>(nodes_.size()) - 1);
}

Status WorkflowBuilder::sink(const std::string& name, WorkflowValue input) {
  if (!input.valid() || input.node_id >= static_cast<int>(nodes_.size())) {
    return InvalidArgument("sink '" + name + "' has an invalid input handle");
  }
  Node node;
  node.kind = NodeKind::kSink;
  node.name = name;
  node.inputs = {input.node_id};
  nodes_.push_back(std::move(node));
  return OkStatus();
}

Result<ir::Module> WorkflowBuilder::lower() const {
  using ir::Attribute;
  ir::register_everest_dialects();
  if (!error_.empty()) return InvalidArgument(error_);

  ir::Module module(name_);
  // Lower attached tensor programs first so tasks can reference them.
  for (const Node& node : nodes_) {
    if (node.program && module.find(node.program->name()) == nullptr) {
      EVEREST_RETURN_IF_ERROR(node.program->lower_into(module));
    }
  }

  EVEREST_ASSIGN_OR_RETURN(
      ir::Function * fn,
      module.add_function(name_, ir::Type::function({}, {})));
  fn->set_attr("ev.dsl", Attribute::string("workflow"));
  ir::OpBuilder b(&fn->entry());

  std::vector<ir::Value> node_values(nodes_.size());
  for (std::size_t i = 0; i < nodes_.size(); ++i) {
    const Node& node = nodes_[i];
    switch (node.kind) {
      case NodeKind::kSource: {
        ir::AttrMap attrs{{"name", Attribute::string(node.name)},
                          {"rate_hz",
                           Attribute::real(node.source_options.rate_hz)}};
        node.source_options.annotations.attach_to(attrs);
        node_values[i] = b.create_value(
            "workflow.source", {}, ir::Type::stream(node.source_options.elem),
            std::move(attrs));
        break;
      }
      case NodeKind::kTask: {
        if (node.kernel.empty()) {
          return InvalidArgument("task '" + node.name + "' has no kernel");
        }
        std::vector<ir::Value> operands;
        for (int dep : node.inputs) {
          const ir::Value& v = node_values[static_cast<std::size_t>(dep)];
          if (!v.valid()) {
            return InvalidArgument("task '" + node.name +
                                   "' depends on a node lowered after it");
          }
          operands.push_back(v);
        }
        ir::AttrMap attrs{{"name", Attribute::string(node.name)},
                          {"kernel", Attribute::string(node.kernel)}};
        if (node.flops > 0) attrs["est_flops"] = Attribute::real(node.flops);
        node.annotations.attach_to(attrs);
        node_values[i] = b.create_value(
            "workflow.task", std::move(operands),
            ir::Type::tensor(node.shape, ir::ScalarKind::kF64),
            std::move(attrs));
        break;
      }
      case NodeKind::kSink: {
        const ir::Value& v =
            node_values[static_cast<std::size_t>(node.inputs[0])];
        if (!v.valid()) {
          return InvalidArgument("sink '" + node.name +
                                 "' consumes an unlowered node");
        }
        b.create("workflow.sink", {v}, {},
                 {{"name", Attribute::string(node.name)}});
        break;
      }
    }
  }
  b.ret();
  return module;
}

}  // namespace everest::dsl
