// Neural-network exchange format ingestion (paper §III-B: "The tool chain
// will support standard exchange formats used in machine learning (e.g.,
// NNEF or ONNX)"). We define a compact JSON graph format with
// ONNX-flavored semantics (initializers, node ops, single output) and
// import it into a TensorProgram, from which the full EVEREST pipeline
// (variants, HLS, runtime) applies.
//
// Document shape:
// {
//   "format": "everest.nn.v1",
//   "name": "model",
//   "inputs":  [{"name": "x", "shape": [1, 4]}],
//   "initializers": [{"name": "W", "shape": [4, 8], "data": [..]}],
//   "nodes": [
//     {"op": "MatMul",  "inputs": ["x", "W"],  "output": "h0"},
//     {"op": "Add",     "inputs": ["h0", "b"], "output": "h1"},
//     {"op": "Relu",    "inputs": ["h1"],      "output": "h2"},
//     {"op": "Tanh"|"Sigmoid"|"Exp"|"Sqrt"|"Neg"|"Abs", ...},
//     {"op": "Mul"|"Sub"|"Div", "inputs": [a, b], "output": ...},
//     {"op": "Scale", "inputs": [a], "attr": 0.5, "output": ...},
//     {"op": "Transpose", "inputs": [a], "perm": [1, 0], "output": ...},
//     {"op": "ReduceSum"|"ReduceMean"|"ReduceMax", "inputs": [a], ...},
//     {"op": "Einsum", "inputs": [...], "equation": "ij,jk->ik", ...}
//   ],
//   "output": "h2"
// }
#pragma once

#include <string>

#include "common/json.hpp"
#include "common/status.hpp"
#include "dsl/tensor_expr.hpp"

namespace everest::dsl {

/// Parses the JSON document and builds the equivalent TensorProgram.
/// Errors carry the offending node/tensor name.
Result<TensorProgram> import_nn_model(const std::string& json_text);

/// Serializes a trained-model description the other way (used by tests to
/// round-trip and by apps exporting their MLPs). Only the ops listed above
/// are representable.
struct NnModelBuilder {
  explicit NnModelBuilder(std::string name);

  NnModelBuilder& input(const std::string& name,
                        std::vector<std::int64_t> shape);
  NnModelBuilder& initializer(const std::string& name,
                              std::vector<std::int64_t> shape,
                              std::vector<double> data);
  NnModelBuilder& node(const std::string& op,
                       std::vector<std::string> inputs, std::string output,
                       json::Value attr = json::Value());
  NnModelBuilder& output(const std::string& name);

  /// Final JSON document.
  [[nodiscard]] std::string to_json() const;

 private:
  json::Object doc_;
  json::Array inputs_, initializers_, nodes_;
  std::string output_;
};

}  // namespace everest::dsl
