#include "platform/executor.hpp"

namespace everest::platform {

namespace {

/// Transfer cost of pulling the variant's inputs from their home node.
double remote_pull_us(const PlatformSpec& platform, const NodeSpec& node,
                      const compiler::Variant& variant,
                      const ExecutionContext& ctx) {
  if (ctx.data_home.empty() || ctx.data_home == node.name) return 0.0;
  const NodeSpec* home = platform.find(ctx.data_home);
  if (home == nullptr) return 0.0;
  const LinkModel link = platform.link_between(*home, node);
  return link.transfer_us(variant.bytes_in * ctx.volume_scale);
}

}  // namespace

Result<ExecutionBreakdown> execute_on_cpu(const PlatformSpec& platform,
                                          const NodeSpec& node,
                                          const compiler::Variant& variant,
                                          const ExecutionContext& ctx) {
  if (variant.target != compiler::TargetKind::kCpu) {
    return InvalidArgument("variant '" + variant.id + "' targets FPGA");
  }
  ExecutionBreakdown out;
  out.transfer_in_us = remote_pull_us(platform, node, variant, ctx);
  // The metadata's latency was estimated on the generator's CPU model;
  // rescale by relative peak throughput for this node's CPU.
  const compiler::CpuModel& cpu = node.cpu;
  const double gen_peak =
      compiler::CpuModel::power9().peak_gflops_per_core *
      compiler::CpuModel::power9().cores;
  const double node_peak = cpu.peak_gflops_per_core * cpu.cores;
  const double scale = node_peak > 0 ? gen_peak / node_peak : 1.0;
  out.compute_us = variant.latency_us * scale;
  out.energy_uj = variant.energy_uj * scale *
                  (cpu.active_power_w /
                   compiler::CpuModel::power9().active_power_w);
  return out;
}

Result<ExecutionBreakdown> execute_on_fpga(const PlatformSpec& platform,
                                           NodeSpec& node, FpgaSlot& slot,
                                           const compiler::Variant& variant,
                                           const ExecutionContext& ctx) {
  if (variant.target != compiler::TargetKind::kFpga) {
    return InvalidArgument("variant '" + variant.id + "' targets CPU");
  }
  if (variant.device != slot.device.name) {
    return FailedPrecondition("variant '" + variant.id + "' synthesized for " +
                              variant.device + ", slot has " +
                              slot.device.name);
  }
  if (slot.failed) {
    return Unavailable("slot '" + slot.id + "' is marked failed");
  }
  ExecutionBreakdown out;
  out.transfer_in_us = remote_pull_us(platform, node, variant, ctx);
  out.transfer_in_us +=
      slot.link.transfer_us(variant.bytes_in * ctx.volume_scale);
  out.transfer_out_us =
      slot.link.transfer_us(variant.bytes_out * ctx.volume_scale);
  if (ctx.allow_reconfig) {
    out.reconfig_us = slot.reconfig_us(variant.kernel);
    slot.current_role = variant.kernel;
  } else if (slot.current_role != variant.kernel) {
    return FailedPrecondition("slot '" + slot.id + "' holds role '" +
                              slot.current_role + "' and reconfig is off");
  }
  out.compute_us = variant.latency_us;
  out.energy_uj = variant.energy_uj +
                  // Link energy: ~50 pJ/byte for network, ~15 for coherent.
                  (slot.network_attached ? 50e-6 : 15e-6) *
                      (variant.bytes_in + variant.bytes_out) *
                      ctx.volume_scale;
  return out;
}

FpgaSlot* find_slot(NodeSpec& node, const compiler::Variant& variant) {
  FpgaSlot* best = nullptr;
  for (FpgaSlot& slot : node.fpgas) {
    if (slot.device.name != variant.device || slot.failed) continue;
    if (best == nullptr ||
        slot.reconfig_us(variant.kernel) < best->reconfig_us(variant.kernel)) {
      best = &slot;
    }
  }
  return best;
}

}  // namespace everest::platform
