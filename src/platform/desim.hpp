// Minimal discrete-event simulation core used by the platform executor and
// the workflow engine: an event queue plus counted resources with FIFO
// waiters. Times are in microseconds.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace everest::platform {

/// Event-driven simulator. Deterministic: ties in time break by insertion
/// order.
class Simulator {
 public:
  using Callback = std::function<void()>;

  [[nodiscard]] double now() const { return now_; }

  /// Schedules `fn` to run `delay` us from now (delay >= 0).
  void schedule(double delay, Callback fn) {
    events_.push(Event{now_ + (delay < 0 ? 0 : delay), seq_++, std::move(fn)});
  }

  /// Runs until the queue drains or `until` (us) is reached.
  /// Returns the number of events executed.
  std::size_t run(double until = 1e300) {
    std::size_t executed = 0;
    while (!events_.empty()) {
      const Event& top = events_.top();
      if (top.time > until) break;
      // Copy out before pop: callbacks may schedule new events.
      Callback fn = top.fn;
      now_ = top.time;
      events_.pop();
      fn();
      ++executed;
    }
    if (events_.empty() && now_ < until) {
      // Time only advances with events.
    }
    return executed;
  }

  [[nodiscard]] bool idle() const { return events_.empty(); }

 private:
  struct Event {
    double time;
    std::uint64_t seq;
    Callback fn;
    bool operator>(const Event& other) const {
      if (time != other.time) return time > other.time;
      return seq > other.seq;
    }
  };
  std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
  double now_ = 0.0;
  std::uint64_t seq_ = 0;
};

/// A counted resource (k identical servers) with FIFO waiting.
class SimResource {
 public:
  SimResource(Simulator& sim, int capacity)
      : sim_(&sim), capacity_(capacity) {}

  [[nodiscard]] int capacity() const { return capacity_; }
  [[nodiscard]] int in_use() const { return in_use_; }
  [[nodiscard]] std::size_t queue_length() const { return waiters_.size(); }

  /// Requests one server; `on_granted` runs (via the simulator, zero delay)
  /// once a server is available.
  void acquire(Simulator::Callback on_granted) {
    if (in_use_ < capacity_) {
      ++in_use_;
      sim_->schedule(0, std::move(on_granted));
    } else {
      waiters_.push(std::move(on_granted));
    }
  }

  /// Returns one server; hands it to the first waiter if any.
  void release() {
    if (!waiters_.empty()) {
      Simulator::Callback next = std::move(waiters_.front());
      waiters_.pop();
      sim_->schedule(0, std::move(next));
    } else {
      --in_use_;
    }
  }

  /// Busy-time accounting helper: total server-us of completed holds.
  void add_busy_time(double us) { busy_us_ += us; }
  [[nodiscard]] double busy_us() const { return busy_us_; }
  /// Utilization over a horizon.
  [[nodiscard]] double utilization(double horizon_us) const {
    return horizon_us > 0 ? busy_us_ / (horizon_us * capacity_) : 0.0;
  }

 private:
  Simulator* sim_;
  int capacity_;
  int in_use_ = 0;
  std::queue<Simulator::Callback> waiters_;
  double busy_us_ = 0.0;
};

}  // namespace everest::platform
