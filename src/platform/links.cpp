#include "platform/links.hpp"

#include <cmath>

namespace everest::platform {

double LinkModel::transfer_us(double bytes) const {
  if (bytes <= 0) return 0.0;
  double time = latency_us + bytes / (bandwidth_gbps * 1e3);  // GB/s → B/us
  if (packet_bytes > 0 && per_packet_us > 0) {
    const double packets = std::ceil(bytes / packet_bytes);
    time += packets * per_packet_us;
  }
  // Coherent links avoid the doorbell/pinning round trip small transfers
  // otherwise pay: modeled as half the setup latency for <4 KiB payloads.
  if (coherent && bytes < 4096) {
    time -= 0.5 * latency_us;
  }
  return time;
}

double LinkModel::effective_gbps(double bytes) const {
  const double t = transfer_us(bytes);
  return t > 0 ? bytes / (t * 1e3) : 0.0;
}

LinkModel LinkModel::degraded(double severity) const {
  LinkModel out = *this;
  if (severity > 1.0) {
    out.latency_us *= severity;
    out.bandwidth_gbps /= severity;
    out.name += "-degraded";
  }
  return out;
}

LinkModel LinkModel::opencapi() {
  LinkModel l;
  l.name = "opencapi";
  l.latency_us = 0.75;     // sub-us coherent access
  l.bandwidth_gbps = 22.0; // OpenCAPI 3.0 x8
  l.coherent = true;
  return l;
}

LinkModel LinkModel::pcie3() {
  LinkModel l;
  l.name = "pcie3";
  l.latency_us = 2.5;      // DMA setup + doorbell
  l.bandwidth_gbps = 12.0; // x16 effective
  return l;
}

LinkModel LinkModel::tcp_datacenter() {
  LinkModel l;
  l.name = "tcp";
  l.latency_us = 18.0;     // kernel TCP stack round-trip share
  l.bandwidth_gbps = 9.5;  // 100GbE with TCP overhead... per-flow 10G shell
  l.per_packet_us = 0.35;
  l.packet_bytes = 1448.0; // MSS
  return l;
}

LinkModel LinkModel::udp_datacenter() {
  LinkModel l;
  l.name = "udp";
  l.latency_us = 6.0;      // cloudFPGA-style lightweight stack
  l.bandwidth_gbps = 9.8;
  l.per_packet_us = 0.08;
  l.packet_bytes = 1472.0;
  return l;
}

LinkModel LinkModel::edge_wan() {
  LinkModel l;
  l.name = "wan";
  l.latency_us = 4000.0;   // metro RTT share
  l.bandwidth_gbps = 0.125; // 1 Gb/s uplink
  l.per_packet_us = 0.0;
  return l;
}

LinkModel LinkModel::local_dram() {
  LinkModel l;
  l.name = "dram";
  l.latency_us = 0.0;
  l.bandwidth_gbps = 100.0;
  l.coherent = true;
  return l;
}

}  // namespace everest::platform
