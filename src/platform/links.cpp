#include "platform/links.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

namespace everest::platform {

double LinkModel::transfer_us(double bytes) const {
  if (bytes <= 0) return 0.0;
  double time = latency_us + bytes / (bandwidth_gbps * 1e3);  // GB/s → B/us
  if (packet_bytes > 0 && per_packet_us > 0) {
    const double packets = std::ceil(bytes / packet_bytes);
    time += packets * per_packet_us;
  }
  // Coherent links avoid the doorbell/pinning round trip small transfers
  // otherwise pay: modeled as half the setup latency for <4 KiB payloads.
  if (coherent && bytes < 4096) {
    time -= 0.5 * latency_us;
  }
  return time;
}

double LinkModel::overhead_us(double bytes) const {
  if (bytes <= 0) return 0.0;
  return transfer_us(bytes) - bytes / (bandwidth_gbps * 1e3);
}

double LinkModel::effective_gbps(double bytes) const {
  const double t = transfer_us(bytes);
  return t > 0 ? bytes / (t * 1e3) : 0.0;
}

LinkModel LinkModel::degraded(double severity) const {
  LinkModel out = *this;
  if (severity > 1.0) {
    out.latency_us *= severity;
    out.bandwidth_gbps /= severity;
    out.name += "-degraded";
  }
  return out;
}

LinkModel LinkModel::opencapi() {
  LinkModel l;
  l.name = "opencapi";
  l.latency_us = 0.75;     // sub-us coherent access
  l.bandwidth_gbps = 22.0; // OpenCAPI 3.0 x8
  l.coherent = true;
  return l;
}

LinkModel LinkModel::pcie3() {
  LinkModel l;
  l.name = "pcie3";
  l.latency_us = 2.5;      // DMA setup + doorbell
  l.bandwidth_gbps = 12.0; // x16 effective
  return l;
}

LinkModel LinkModel::tcp_datacenter() {
  LinkModel l;
  l.name = "tcp";
  l.latency_us = 18.0;     // kernel TCP stack round-trip share
  l.bandwidth_gbps = 9.5;  // 100GbE with TCP overhead... per-flow 10G shell
  l.per_packet_us = 0.35;
  l.packet_bytes = 1448.0; // MSS
  return l;
}

LinkModel LinkModel::udp_datacenter() {
  LinkModel l;
  l.name = "udp";
  l.latency_us = 6.0;      // cloudFPGA-style lightweight stack
  l.bandwidth_gbps = 9.8;
  l.per_packet_us = 0.08;
  l.packet_bytes = 1472.0;
  return l;
}

LinkModel LinkModel::edge_wan() {
  LinkModel l;
  l.name = "wan";
  l.latency_us = 4000.0;   // metro RTT share
  l.bandwidth_gbps = 0.125; // 1 Gb/s uplink
  l.per_packet_us = 0.0;
  return l;
}

LinkModel LinkModel::local_dram() {
  LinkModel l;
  l.name = "dram";
  l.latency_us = 0.0;
  l.bandwidth_gbps = 100.0;
  l.coherent = true;
  return l;
}

LinkModel LinkModel::local_nvme() {
  LinkModel l;
  l.name = "nvme";
  l.latency_us = 80.0;     // datacenter NVMe read latency
  l.bandwidth_gbps = 3.2;  // sustained sequential, PCIe 3.0 x4 class
  return l;
}

// ---- LinkChannel ----------------------------------------------------------

namespace {
// Residues left by floating-point boundary arithmetic; values below these
// are clamped to zero so every boundary event makes progress.
constexpr double kSetupEpsUs = 1e-9;
constexpr double kBytesEps = 1e-6;
}  // namespace

double LinkChannel::payload_rate() const {
  std::size_t payloads = 0;
  for (const Flow& f : flows_) {
    if (f.setup_left_us <= 0.0 && f.bytes_left > 0.0) ++payloads;
  }
  const double full = model_.bandwidth_gbps * 1e3;  // GB/s → bytes/us
  return payloads > 0 ? full / static_cast<double>(payloads) : full;
}

void LinkChannel::transfer(double bytes, Simulator::Callback on_done) {
  if (bytes <= 0.0) {
    sim_->schedule(0, std::move(on_done));
    return;
  }
  advance_and_reschedule();  // settle existing flows before membership changes
  Flow flow;
  flow.setup_left_us = std::max(0.0, model_.overhead_us(bytes));
  flow.bytes_left = bytes;
  flow.bytes_total = bytes;
  flow.on_done = std::move(on_done);
  flows_.push_back(std::move(flow));
  advance_and_reschedule();
}

void LinkChannel::advance_and_reschedule() {
  const double now = sim_->now();
  const double dt = now - last_update_us_;
  // Stage membership has been constant since last_update_us_ (boundary
  // events are scheduled at every stage change), so linear progress over
  // dt is exact.
  if (dt > 0.0) {
    const double rate = payload_rate();
    std::size_t payloads = 0;
    for (Flow& f : flows_) {
      if (f.setup_left_us > 0.0) {
        f.setup_left_us -= dt;
        if (f.setup_left_us < kSetupEpsUs) f.setup_left_us = 0.0;
      } else if (f.bytes_left > 0.0) {
        ++payloads;
        f.bytes_left -= dt * rate;
        if (f.bytes_left < kBytesEps) f.bytes_left = 0.0;
      }
    }
    busy_flow_us_ += dt * static_cast<double>(payloads);
  }
  last_update_us_ = now;

  // Complete drained payloads in issue order.
  for (std::size_t i = 0; i < flows_.size();) {
    Flow& f = flows_[i];
    if (f.setup_left_us <= 0.0 && f.bytes_left <= 0.0) {
      bytes_moved_ += f.bytes_total;
      ++completed_;
      sim_->schedule(0, std::move(f.on_done));
      flows_.erase(flows_.begin() + static_cast<std::ptrdiff_t>(i));
    } else {
      ++i;
    }
  }

  // Next stage boundary: earliest setup completion or payload drain.
  ++generation_;
  if (flows_.empty()) return;
  const double rate = payload_rate();
  double next = 1e300;
  for (const Flow& f : flows_) {
    if (f.setup_left_us > 0.0) {
      next = std::min(next, f.setup_left_us);
    } else {
      next = std::min(next, f.bytes_left / rate);
    }
  }
  // A residue just above the byte/setup epsilons can put the boundary
  // below the clock's resolution at `now` (now + next == now in double).
  // The boundary event would then observe dt == 0, clamp nothing, and
  // re-arm itself forever at a frozen sim time. Lifting it to the next
  // representable instant guarantees dt > 0, and dt * rate >= the
  // residue, so the clamps above retire the flow on the next event.
  const double min_tick = std::nextafter(now, 1e300) - now;
  next = std::max(next, min_tick);
  sim_->schedule(next, [this, gen = generation_] {
    if (gen == generation_) advance_and_reschedule();
  });
}

}  // namespace everest::platform
