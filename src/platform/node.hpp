// Node and platform descriptions for the EVEREST ecosystem (paper Fig. 3:
// end-point / inner-edge / cloud hierarchy; Fig. 4: heterogeneous nodes
// combining CPUs with bus-attached and network-attached FPGAs).
#pragma once

#include <string>
#include <vector>

#include "common/status.hpp"
#include "compiler/variants.hpp"
#include "hls/resource_library.hpp"
#include "platform/links.hpp"

namespace everest::platform {

/// Where a node sits in the hierarchy.
enum class Tier : std::uint8_t { kEndpoint, kInnerEdge, kCloud };

std::string_view to_string(Tier tier);

/// An FPGA attached to (or reachable from) a node.
struct FpgaSlot {
  std::string id;
  hls::FpgaDevice device;
  LinkModel link;             // how the host reaches it
  bool network_attached = false;
  /// Partial-reconfiguration speed (cloudFPGA shell-role, paper §V).
  double reconfig_ms_per_mib = 6.0;
  /// Role bitstream size as a fraction of full-device configuration.
  double role_bitstream_mib = 18.0;
  /// Currently loaded role ("" = blank).
  std::string current_role;
  /// Marked by fault injection / a failed partial reconfiguration: the
  /// slot refuses work until repaired (execute_on_fpga → kUnavailable,
  /// find_slot skips it).
  bool failed = false;

  /// Time (us) to swap in a role; 0 when already loaded.
  [[nodiscard]] double reconfig_us(const std::string& role) const {
    if (role == current_role) return 0.0;
    return reconfig_ms_per_mib * role_bitstream_mib * 1e3;
  }
};

/// One compute node.
struct NodeSpec {
  std::string name;
  Tier tier = Tier::kCloud;
  compiler::CpuModel cpu;
  std::vector<FpgaSlot> fpgas;
  double memory_gib = 64.0;
};

/// A whole deployment: nodes plus the inter-tier fabric.
struct PlatformSpec {
  std::vector<NodeSpec> nodes;
  LinkModel intra_dc = LinkModel::udp_datacenter();
  LinkModel edge_uplink = LinkModel::edge_wan();

  [[nodiscard]] const NodeSpec* find(const std::string& name) const;
  [[nodiscard]] NodeSpec* find(const std::string& name);

  /// Link between two nodes (same node → local DRAM; same tier → intra-DC;
  /// across the edge/cloud boundary → WAN uplink).
  [[nodiscard]] LinkModel link_between(const NodeSpec& a,
                                       const NodeSpec& b) const;

  /// The reference EVEREST deployment (paper §V): `cloud_nodes` POWER9
  /// servers each with one OpenCAPI bus-attached VU9P, `disaggregated`
  /// network-attached cloudFPGA KU060s, and `edge_nodes` ARM edge nodes
  /// each with a small bus-attached device.
  static PlatformSpec everest_reference(int cloud_nodes = 2,
                                        int disaggregated = 4,
                                        int edge_nodes = 2);
};

}  // namespace everest::platform
