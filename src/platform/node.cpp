#include "platform/node.hpp"

namespace everest::platform {

std::string_view to_string(Tier tier) {
  switch (tier) {
    case Tier::kEndpoint: return "endpoint";
    case Tier::kInnerEdge: return "inner-edge";
    case Tier::kCloud: return "cloud";
  }
  return "?";
}

const NodeSpec* PlatformSpec::find(const std::string& name) const {
  for (const NodeSpec& node : nodes) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

NodeSpec* PlatformSpec::find(const std::string& name) {
  for (NodeSpec& node : nodes) {
    if (node.name == name) return &node;
  }
  return nullptr;
}

LinkModel PlatformSpec::link_between(const NodeSpec& a,
                                     const NodeSpec& b) const {
  if (&a == &b || a.name == b.name) return LinkModel::local_dram();
  const bool a_cloud = a.tier == Tier::kCloud;
  const bool b_cloud = b.tier == Tier::kCloud;
  if (a_cloud != b_cloud) return edge_uplink;
  return intra_dc;
}

PlatformSpec PlatformSpec::everest_reference(int cloud_nodes,
                                             int disaggregated,
                                             int edge_nodes) {
  PlatformSpec spec;
  for (int i = 0; i < cloud_nodes; ++i) {
    NodeSpec node;
    node.name = "p9-" + std::to_string(i);
    node.tier = Tier::kCloud;
    node.cpu = compiler::CpuModel::power9();
    node.memory_gib = 512.0;
    FpgaSlot slot;
    slot.id = node.name + "-vu9p";
    slot.device = hls::FpgaDevice::p9_vu9p();
    slot.link = LinkModel::opencapi();
    slot.role_bitstream_mib = 45.0;
    node.fpgas.push_back(std::move(slot));
    spec.nodes.push_back(std::move(node));
  }
  // Disaggregated cloudFPGAs hang off a host-less "resource node" reachable
  // over the data-center network from every cloud node; we attach them to
  // the first cloud node's spec as network-attached slots so the executor
  // charges the network link.
  if (!spec.nodes.empty()) {
    for (int i = 0; i < disaggregated; ++i) {
      FpgaSlot slot;
      slot.id = "cloudfpga-" + std::to_string(i);
      slot.device = hls::FpgaDevice::cloudfpga_ku060();
      slot.link = LinkModel::udp_datacenter();
      slot.network_attached = true;
      slot.role_bitstream_mib = 18.0;
      spec.nodes.front().fpgas.push_back(std::move(slot));
    }
  }
  for (int i = 0; i < edge_nodes; ++i) {
    NodeSpec node;
    node.name = "edge-" + std::to_string(i);
    node.tier = Tier::kInnerEdge;
    node.cpu = compiler::CpuModel::edge_arm();
    node.memory_gib = 8.0;
    FpgaSlot slot;
    slot.id = node.name + "-zu7ev";
    slot.device = hls::FpgaDevice::edge_zu7ev();
    slot.link = LinkModel::pcie3();
    slot.role_bitstream_mib = 8.0;
    node.fpgas.push_back(std::move(slot));
    spec.nodes.push_back(std::move(node));
  }
  return spec;
}

}  // namespace everest::platform
