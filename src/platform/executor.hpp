// Variant execution model: computes the end-to-end time/energy of running
// one variant invocation on a node (CPU) or an FPGA slot (bus- or
// network-attached), including data movement and partial reconfiguration.
// This is the cost oracle the runtime's dynamic selection consults.
#pragma once

#include <string>

#include "common/status.hpp"
#include "compiler/variants.hpp"
#include "platform/node.hpp"

namespace everest::platform {

/// Cost breakdown of one invocation.
struct ExecutionBreakdown {
  double transfer_in_us = 0.0;
  double compute_us = 0.0;
  double transfer_out_us = 0.0;
  double reconfig_us = 0.0;
  double queue_us = 0.0;  // filled by contention-aware callers

  [[nodiscard]] double total_us() const {
    return transfer_in_us + compute_us + transfer_out_us + reconfig_us +
           queue_us;
  }
  double energy_uj = 0.0;
};

/// Options for one invocation.
struct ExecutionContext {
  /// Where the input data currently lives (node name). Transfers from
  /// another node pay the inter-node link first.
  std::string data_home;
  /// Load the FPGA role if it differs from the slot's current one, and
  /// remember it (stateful).
  bool allow_reconfig = true;
  /// Scale factor on the input/output bytes (partial reads).
  double volume_scale = 1.0;
};

/// Executes a CPU variant on `node` (data pulled from `data_home` if
/// remote). Fails if the variant targets FPGA.
Result<ExecutionBreakdown> execute_on_cpu(const PlatformSpec& platform,
                                          const NodeSpec& node,
                                          const compiler::Variant& variant,
                                          const ExecutionContext& ctx = {});

/// Executes an FPGA variant on the given slot of `node`. The variant's
/// device name must match the slot's device; pays link transfers and role
/// reconfiguration, and updates `slot.current_role`.
Result<ExecutionBreakdown> execute_on_fpga(const PlatformSpec& platform,
                                           NodeSpec& node, FpgaSlot& slot,
                                           const compiler::Variant& variant,
                                           const ExecutionContext& ctx = {});

/// Convenience: best slot on the node for this variant (matching device,
/// least reconfig), or nullptr.
FpgaSlot* find_slot(NodeSpec& node, const compiler::Variant& variant);

}  // namespace everest::platform
