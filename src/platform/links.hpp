// Interconnect models for the EVEREST target system (paper Fig. 4:
// "OpenCAPI cache coherent and TCP/UDP protocols"). Each link is an
// analytical latency/bandwidth/packet-overhead model calibrated to
// published measurements of the corresponding technology.
//
// LinkModel answers "how long would `bytes` take on an otherwise idle
// link"; LinkChannel puts a model under discrete-event simulation and
// makes concurrent transfers share the link fairly (processor sharing)
// instead of each seeing the full bandwidth.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "platform/desim.hpp"

namespace everest::platform {

/// One point-to-point transport.
struct LinkModel {
  std::string name;
  /// One-way setup latency per transfer (us).
  double latency_us = 1.0;
  /// Sustained bandwidth (GB/s).
  double bandwidth_gbps = 10.0;
  /// Extra cost per packet (us) and packet payload size (bytes); zero
  /// packet_bytes disables packetization (memory-mapped links).
  double per_packet_us = 0.0;
  double packet_bytes = 0.0;
  /// Cache-coherent links skip explicit copies/pinning for small transfers.
  bool coherent = false;

  /// Time to move `bytes` across the link (us), link otherwise idle.
  [[nodiscard]] double transfer_us(double bytes) const;

  /// The non-bandwidth part of transfer_us (setup latency, packetization,
  /// coherence discounts). transfer_us == overhead_us + payload/bandwidth.
  [[nodiscard]] double overhead_us(double bytes) const;

  /// Effective throughput moving `bytes` (GB/s), including overheads.
  [[nodiscard]] double effective_gbps(double bytes) const;

  /// A degraded copy of this link: latency stretched and bandwidth cut by
  /// `severity` (>= 1; 1 = unchanged). Used by fault injection.
  [[nodiscard]] LinkModel degraded(double severity) const;

  // Presets (calibrated to published figures for each technology).
  static LinkModel opencapi();        // coherent bus-attached FPGA
  static LinkModel pcie3();           // classic bus-attached FPGA
  static LinkModel tcp_datacenter();  // network-attached FPGA over TCP
  static LinkModel udp_datacenter();  // network-attached FPGA over UDP
  static LinkModel edge_wan();        // edge→cloud WAN hop
  static LinkModel local_dram();      // on-node memory "link"
  static LinkModel local_nvme();      // on-node NVMe SSD (storage tier)
};

/// One simulated link carrying concurrent transfers under processor
/// sharing: with n payloads in flight each progresses at bandwidth/n, so
/// two equal concurrent transfers take ~2x the solo payload time instead
/// of each (incorrectly) seeing the full link. Per-transfer fixed costs
/// (setup latency, packet overhead) are paid up front by each transfer
/// and are not shared. A solo transfer completes in exactly
/// model.transfer_us(bytes).
///
/// Deterministic: completion order is a pure function of the issue order
/// and sizes (ties break by issue order via the simulator's event seq).
class LinkChannel {
 public:
  LinkChannel(Simulator& sim, LinkModel model)
      : sim_(&sim), model_(std::move(model)) {}

  /// Starts moving `bytes`; `on_done` fires (as a simulator event) when
  /// the transfer completes under the sharing discipline.
  void transfer(double bytes, Simulator::Callback on_done);

  [[nodiscard]] const LinkModel& model() const { return model_; }
  /// Transfers currently in flight (setup or payload stage).
  [[nodiscard]] std::size_t active() const { return flows_.size(); }
  /// Completed-transfer accounting.
  [[nodiscard]] double bytes_moved() const { return bytes_moved_; }
  [[nodiscard]] std::uint64_t transfers_completed() const {
    return completed_;
  }
  /// Time-integral of (payloads in flight) — a congestion measure.
  [[nodiscard]] double busy_flow_us() const { return busy_flow_us_; }

 private:
  struct Flow {
    double setup_left_us = 0.0;  ///< unshared fixed overhead still to pay
    double bytes_left = 0.0;     ///< payload remaining (shared bandwidth)
    double bytes_total = 0.0;
    Simulator::Callback on_done;
  };

  /// Advances every flow to sim_->now() (exact: stage membership is
  /// constant between scheduled boundary events), completes finished
  /// payloads, and schedules the next boundary event.
  void advance_and_reschedule();
  [[nodiscard]] double payload_rate() const;  // bytes/us per payload flow

  Simulator* sim_;
  LinkModel model_;
  std::vector<Flow> flows_;
  double last_update_us_ = 0.0;
  std::uint64_t generation_ = 0;  ///< invalidates stale boundary events
  double bytes_moved_ = 0.0;
  std::uint64_t completed_ = 0;
  double busy_flow_us_ = 0.0;
};

}  // namespace everest::platform
