// Interconnect models for the EVEREST target system (paper Fig. 4:
// "OpenCAPI cache coherent and TCP/UDP protocols"). Each link is an
// analytical latency/bandwidth/packet-overhead model calibrated to
// published measurements of the corresponding technology.
#pragma once

#include <cstdint>
#include <string>

namespace everest::platform {

/// One point-to-point transport.
struct LinkModel {
  std::string name;
  /// One-way setup latency per transfer (us).
  double latency_us = 1.0;
  /// Sustained bandwidth (GB/s).
  double bandwidth_gbps = 10.0;
  /// Extra cost per packet (us) and packet payload size (bytes); zero
  /// packet_bytes disables packetization (memory-mapped links).
  double per_packet_us = 0.0;
  double packet_bytes = 0.0;
  /// Cache-coherent links skip explicit copies/pinning for small transfers.
  bool coherent = false;

  /// Time to move `bytes` across the link (us).
  [[nodiscard]] double transfer_us(double bytes) const;

  /// Effective throughput moving `bytes` (GB/s), including overheads.
  [[nodiscard]] double effective_gbps(double bytes) const;

  /// A degraded copy of this link: latency stretched and bandwidth cut by
  /// `severity` (>= 1; 1 = unchanged). Used by fault injection.
  [[nodiscard]] LinkModel degraded(double severity) const;

  // Presets (calibrated to published figures for each technology).
  static LinkModel opencapi();        // coherent bus-attached FPGA
  static LinkModel pcie3();           // classic bus-attached FPGA
  static LinkModel tcp_datacenter();  // network-attached FPGA over TCP
  static LinkModel udp_datacenter();  // network-attached FPGA over UDP
  static LinkModel edge_wan();        // edge→cloud WAN hop
  static LinkModel local_dram();      // on-node memory "link"
};

}  // namespace everest::platform
