#include "data/plane.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace everest::data {

std::string PlaneStats::to_string() const {
  std::ostringstream os;
  os << "local=" << local_hits << " hit=" << cache_hits
     << " miss=" << cache_misses << " evict=" << evictions
     << " xfer=" << transfers_issued << " dedup=" << transfers_deduped
     << " pf=" << prefetch_issued << "/" << prefetch_useful
     << " lost=" << objects_lost << " repoint=" << reads_repointed
     << " fetchMB=" << bytes_fetched / (1024.0 * 1024.0)
     << " replMB=" << bytes_replicated / (1024.0 * 1024.0);
  return os.str();
}

namespace {

std::vector<StorageNode> make_nodes(const PlaneConfig& config) {
  std::vector<StorageNode> nodes(config.num_nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].name = "node" + std::to_string(i);
    nodes[i].capacity_bytes = config.node_capacity_bytes;
  }
  return nodes;
}

PlacementConfig make_placement_config(const PlaneConfig& config) {
  PlacementConfig pc = config.placement;
  pc.replication = config.replication;  // PlaneConfig is authoritative
  return pc;
}

}  // namespace

DataPlane::DataPlane(platform::Simulator& sim, PlaneConfig config)
    : sim_(&sim),
      config_(config),
      placement_(make_nodes(config), make_placement_config(config)),
      xfer_(sim, [link = config.link](std::size_t, std::size_t) {
        return link;
      }) {
  caches_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    caches_.push_back(std::make_unique<Cache>(
        CacheConfig{config_.cache_bytes, config_.eviction}));
  }
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    ctr_local_hits_ = reg.counter("data.local_hits");
    ctr_cache_hits_ = reg.counter("data.cache_hits");
    ctr_cache_misses_ = reg.counter("data.cache_misses");
    ctr_evictions_ = reg.counter("data.evictions");
    ctr_prefetch_issued_ = reg.counter("data.prefetch_issued");
    ctr_prefetch_useful_ = reg.counter("data.prefetch_useful");
  }
}

void DataPlane::put(ObjectId id, double bytes, std::size_t node,
                    std::string producer) {
  DataObject* obj;
  auto it = objects_.find(id);
  if (it != objects_.end()) {
    // Fresh content supersedes whatever copies remain: release them and
    // stale their version so no cached shard of the old content can hit.
    obj = &it->second;
    drop_object_replicas(*obj);
    ++obj->version;
    for (auto& cache : caches_) cache->invalidate_object(id, obj->version);
    obj->total_bytes = bytes;
    obj->producer = std::move(producer);
  } else {
    DataObject fresh;
    fresh.id = id;
    fresh.total_bytes = bytes;
    fresh.producer = std::move(producer);
    obj = &objects_.emplace(id, std::move(fresh)).first->second;
  }
  obj->num_shards = shard_count(bytes, config_.shard_limit_bytes);

  for (std::uint32_t s = 0; s < obj->num_shards; ++s) {
    const ShardKey key = obj->key(s);
    const double sb = obj->shard_bytes(s);
    auto placed = placement_.place(key, sb, node);
    if (!placed.ok()) continue;  // no room anywhere: object stays lost
    for (std::size_t holder : placed.value()) {
      if (holder != node) counters_.bytes_replicated += sb;
    }
    replicas_[key] = std::move(placed).value();
  }
}

bool DataPlane::available(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  const DataObject& obj = it->second;
  for (std::uint32_t s = 0; s < obj.num_shards; ++s) {
    auto rit = replicas_.find(obj.key(s));
    if (rit == replicas_.end() || rit->second.empty()) return false;
  }
  return true;
}

const DataObject* DataPlane::find(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<std::size_t> DataPlane::primary_node(ObjectId id) const {
  if (!available(id)) {
    return NotFound("object " + std::to_string(id) +
                    " has no live replica; recompute it");
  }
  const DataObject& obj = objects_.at(id);
  // Lowest-index node holding every shard, if one exists…
  for (std::size_t n = 0; n < caches_.size(); ++n) {
    bool holds_all = true;
    for (std::uint32_t s = 0; s < obj.num_shards && holds_all; ++s) {
      const auto& holders = replicas_.at(obj.key(s));
      holds_all = std::find(holders.begin(), holders.end(), n) !=
                  holders.end();
    }
    if (holds_all) return n;
  }
  // …else the shards are scattered (post-crash re-placement): point at
  // shard 0's preferred source; stage() moves the rest.
  return replicas_.at(obj.key(0)).front();
}

Status DataPlane::stage(ObjectId id, std::size_t dst,
                        platform::Simulator::Callback on_staged) {
  return stage_impl(id, dst, /*is_prefetch=*/false, std::move(on_staged));
}

Status DataPlane::prefetch(ObjectId id, std::size_t dst) {
  return stage_impl(id, dst, /*is_prefetch=*/true, nullptr);
}

Status DataPlane::stage_impl(ObjectId id, std::size_t dst, bool is_prefetch,
                             platform::Simulator::Callback on_staged) {
  if (!available(id)) {
    return NotFound("object " + std::to_string(id) +
                    " is not in the data plane");
  }
  const DataObject& obj = objects_.at(id);

  struct StageState {
    std::size_t pending = 0;
    platform::Simulator::Callback on_staged;
  };
  auto state = std::make_shared<StageState>();
  state->on_staged = std::move(on_staged);

  for (std::uint32_t s = 0; s < obj.num_shards; ++s) {
    const ShardKey key = obj.key(s);
    const double sb = obj.shard_bytes(s);
    const auto& holders = replicas_.at(key);
    if (std::find(holders.begin(), holders.end(), dst) != holders.end()) {
      if (!is_prefetch) {
        ++counters_.local_hits;
        if (ctr_local_hits_ != nullptr) ctr_local_hits_->inc();
      }
      continue;
    }
    Cache& cache = *caches_[dst];
    if (is_prefetch) {
      // Quiet path: no hit/miss accounting, skip anything already here
      // or already on the wire.
      if (cache.contains(key) || xfer_.in_flight(key, dst)) continue;
      ++counters_.prefetch_issued;
      if (ctr_prefetch_issued_ != nullptr) ctr_prefetch_issued_->inc();
    } else if (cache.lookup(key)) {
      if (ctr_cache_hits_ != nullptr) ctr_cache_hits_->inc();
      const auto tag = std::make_pair(key, dst);
      auto pit = prefetched_.find(tag);
      if (pit != prefetched_.end()) {
        ++counters_.prefetch_useful;
        if (ctr_prefetch_useful_ != nullptr) ctr_prefetch_useful_->inc();
        prefetched_.erase(pit);
      }
      continue;
    } else if (ctr_cache_misses_ != nullptr) {
      ctr_cache_misses_->inc();
    }
    // Fetch from the preferred (birth-first) holder; dedup rides any
    // in-flight copy of the same shard to the same destination.
    const std::size_t src = holders.front();
    const double refetch_cost = xfer_.estimate_us(sb, src, dst);
    if (!is_prefetch) ++state->pending;
    const double issue_us = sim_->now();
    xfer_.fetch(key, sb, src, dst,
                [this, key, sb, refetch_cost, src, dst, is_prefetch, state,
                 issue_us] {
                  if (tracing()) {
                    // Sim-time transfer span on the destination's track,
                    // in the owning object/task's trace.
                    config_.tracer->span(
                        obs::TimeDomain::kSim, key.object + 1,
                        config_.tracer->next_id(), 0, issue_us, sim_->now(),
                        static_cast<std::uint32_t>(dst), "xfer", "data",
                        {{"object", std::to_string(key.object)},
                         {"shard", std::to_string(key.shard)},
                         {"src", std::to_string(src)},
                         {"dst", std::to_string(dst)},
                         {"bytes", std::to_string(sb)},
                         {"prefetch", is_prefetch ? "1" : "0"}});
                  }
                  const std::uint64_t ev0 = caches_[dst]->stats().evictions;
                  (void)caches_[dst]->insert(key, sb, refetch_cost);
                  if (ctr_evictions_ != nullptr) {
                    ctr_evictions_->inc(caches_[dst]->stats().evictions - ev0);
                  }
                  if (is_prefetch) {
                    prefetched_.insert({key, dst});
                    return;
                  }
                  if (--state->pending == 0 && state->on_staged) {
                    state->on_staged();
                  }
                });
  }
  if (!is_prefetch && state->pending == 0 && state->on_staged) {
    sim_->schedule(0.0, std::move(state->on_staged));
  }
  return OkStatus();
}

std::vector<ObjectId> DataPlane::invalidate_node(std::size_t node) {
  caches_[node]->clear();
  for (auto it = prefetched_.begin(); it != prefetched_.end();) {
    it = it->second == node ? prefetched_.erase(it) : std::next(it);
  }
  placement_.set_failed(node, true);  // also zeroes its usage
  xfer_.abandon_destination(node);

  std::set<ObjectId> touched;
  std::set<ObjectId> lost;
  for (auto& [key, holders] : replicas_) {
    auto pos = std::find(holders.begin(), holders.end(), node);
    if (pos == holders.end()) continue;
    holders.erase(pos);
    (holders.empty() ? lost : touched).insert(key.object);
  }
  for (ObjectId id : touched) {
    if (lost.count(id) == 0) ++counters_.reads_repointed;
  }

  std::vector<ObjectId> out;
  out.reserve(lost.size());
  for (ObjectId id : lost) {  // std::set → ascending, as promised
    DataObject& obj = objects_.at(id);
    // A partial object is useless: drop its surviving shards too, then
    // stale the version so cached copies anywhere can never hit again.
    drop_object_replicas(obj);
    ++obj.version;
    ++counters_.objects_lost;
    for (auto& cache : caches_) cache->invalidate_object(id, obj.version);
    out.push_back(id);
  }
  return out;
}

void DataPlane::restore_node(std::size_t node) {
  placement_.set_failed(node, false);
}

std::vector<std::size_t> DataPlane::replicas(const ShardKey& key) const {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return {};
  std::vector<std::size_t> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

PlaneStats DataPlane::stats() const {
  PlaneStats out = counters_;
  for (const auto& cache : caches_) {
    const CacheStats& cs = cache->stats();
    out.cache_hits += cs.hits;
    out.cache_misses += cs.misses;
    out.evictions += cs.evictions;
    out.bytes_evicted += cs.bytes_evicted;
  }
  const TransferStats& ts = xfer_.stats();
  out.transfers_issued = ts.issued;
  out.transfers_deduped = ts.deduped;
  out.bytes_fetched = ts.bytes_moved;
  return out;
}

void DataPlane::drop_object_replicas(const DataObject& object) {
  for (std::uint32_t s = 0; s < object.num_shards; ++s) {
    const ShardKey key = object.key(s);
    auto it = replicas_.find(key);
    if (it == replicas_.end()) continue;
    for (std::size_t holder : it->second) {
      placement_.release(holder, object.shard_bytes(s));
    }
    replicas_.erase(it);
  }
}

}  // namespace everest::data
