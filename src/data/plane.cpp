#include "data/plane.hpp"

#include <algorithm>
#include <sstream>
#include <utility>

namespace everest::data {

std::string PlaneStats::to_string() const {
  std::ostringstream os;
  os << "local=" << local_hits << " hit=" << cache_hits
     << " miss=" << cache_misses << " evict=" << evictions
     << " xfer=" << transfers_issued << " dedup=" << transfers_deduped
     << " pf=" << prefetch_issued << "/" << prefetch_useful
     << " lost=" << objects_lost << " repoint=" << reads_repointed
     << " tier=" << tier_hits << " demote=" << demotions << "/-"
     << demote_rejected << " rescue=" << disk_rescues
     << " scrub=" << scrub_verified << " quar=" << scrub_quarantined
     << " repair=" << repairs << "+" << repair_redirected << "-"
     << repair_lost << " ro=" << tier_faults << "/" << tier_resumes
     << " fetchMB=" << bytes_fetched / (1024.0 * 1024.0)
     << " replMB=" << bytes_replicated / (1024.0 * 1024.0)
     << " demoteMB=" << bytes_demoted / (1024.0 * 1024.0)
     << " promoteMB=" << bytes_promoted / (1024.0 * 1024.0);
  return os.str();
}

namespace {

std::vector<StorageNode> make_nodes(const PlaneConfig& config) {
  std::vector<StorageNode> nodes(config.num_nodes);
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    nodes[i].name = "node" + std::to_string(i);
    nodes[i].capacity_bytes = config.node_capacity_bytes;
  }
  return nodes;
}

PlacementConfig make_placement_config(const PlaneConfig& config) {
  PlacementConfig pc = config.placement;
  pc.replication = config.replication;  // PlaneConfig is authoritative
  return pc;
}

/// Canonical shard spelling for the scrub/repair journal.
std::string key_str(const ShardKey& key) {
  return "o" + std::to_string(key.object) + "/s" + std::to_string(key.shard) +
         "@v" + std::to_string(key.version);
}

/// Evictions between resume probes while a tier sheds writes. Low enough
/// that a cleared fault is noticed within a handful of evictions, high
/// enough that a sick disk is not hammered with probe opens.
constexpr std::uint64_t kResumeProbeEvery = 16;

}  // namespace

DataPlane::DataPlane(platform::Simulator& sim, PlaneConfig config)
    : sim_(&sim),
      config_(config),
      placement_(make_nodes(config), make_placement_config(config)),
      xfer_(sim, [link = config.link](std::size_t, std::size_t) {
        return link;
      }) {
  caches_.reserve(config_.num_nodes);
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    caches_.push_back(std::make_unique<Cache>(
        CacheConfig{config_.cache_bytes, config_.eviction}));
  }
  if (config_.storage.enabled()) {
    tiers_.reserve(config_.num_nodes);
    scrubbers_.reserve(config_.num_nodes);
    tier_read_only_.assign(config_.num_nodes, 0);
    resume_probe_.assign(config_.num_nodes, 0);
    for (std::size_t i = 0; i < config_.num_nodes; ++i) {
      storage::TierConfig tc;
      tc.capacity_bytes = config_.storage.disk_capacity_bytes;
      tc.io = config_.storage.io;
      tc.segment = config_.storage.segment;
      tc.env = config_.storage.env;
      if (!config_.storage.dir.empty()) {
        tc.dir = config_.storage.dir + "/tier" + std::to_string(i);
      }
      tiers_.push_back(std::make_unique<storage::DiskTier>(
          sim, i, std::move(tc), config_.registry));
      scrubbers_.push_back(std::make_unique<storage::Scrubber>(
          tiers_[i]->store(), config_.storage.scrub, config_.registry, i));
      caches_[i]->set_on_evict(
          [this, i](const ShardKey& key, double bytes, double cost) {
            on_cache_evict(i, key, bytes, cost);
          });
    }
    if (config_.storage.durable()) {
      log_ = std::make_unique<storage::CatalogLog>(
          config_.storage.dir, config_.storage.log, config_.registry,
          config_.storage.env);
    }
  }
  if (config_.registry != nullptr) {
    obs::Registry& reg = *config_.registry;
    ctr_local_hits_ = reg.counter("data.local_hits");
    ctr_cache_hits_ = reg.counter("data.cache_hits");
    ctr_cache_misses_ = reg.counter("data.cache_misses");
    ctr_evictions_ = reg.counter("data.evictions");
    ctr_prefetch_issued_ = reg.counter("data.prefetch_issued");
    ctr_prefetch_useful_ = reg.counter("data.prefetch_useful");
    if (config_.storage.enabled()) {
      ctr_tier_hits_ = reg.counter("data.tier_hits");
      ctr_demotions_ = reg.counter("data.demotions");
      ctr_demote_rejected_ = reg.counter("data.demote_rejected");
      ctr_disk_rescues_ = reg.counter("data.disk_rescues");
      ctr_repairs_ = reg.counter("storage.repair.shards");
      ctr_repair_lost_ = reg.counter("storage.repair.lost");
      hist_repair_us_ = reg.histogram("storage.repair.mttr_us");
      gauge_tier_ro_.resize(config_.num_nodes);
      for (std::size_t i = 0; i < config_.num_nodes; ++i) {
        // 0/1 flag per labeled node; kMax keeps re-registration and
        // cross-registry merges from double-counting the flag.
        gauge_tier_ro_[i] = reg.gauge("storage.tier.read_only",
                                      obs::GaugeKind::kMax,
                                      {{"node", std::to_string(i)}});
      }
    }
  }
}

void DataPlane::log_apply(storage::LogRecord record) {
  if (!config_.storage.enabled()) return;
  if (log_ != nullptr) {
    // The ack's durability status is surfaced by the log itself
    // (storage.log.degraded gauge, io_errors counter, pending backlog);
    // the record is stamped either way and lands on disk when the
    // medium recovers or the next checkpoint subsumes it.
    record.seq = log_->append(record).seq;
  } else {
    record.seq = ++mem_seq_;
  }
  catalog_.apply(record);
}

void DataPlane::note_tier_fault(std::size_t node) {
  if (tier_read_only_[node] != 0) return;
  tier_read_only_[node] = 1;
  resume_probe_[node] = 0;
  ++counters_.tier_faults;
  if (node < gauge_tier_ro_.size() && gauge_tier_ro_[node] != nullptr) {
    gauge_tier_ro_[node]->set(1.0);
  }
  scrub_journal_.push_back("tier-read-only node=" + std::to_string(node));
}

void DataPlane::note_tier_resume(std::size_t node) {
  if (tier_read_only_[node] == 0) return;
  tier_read_only_[node] = 0;
  ++counters_.tier_resumes;
  if (node < gauge_tier_ro_.size() && gauge_tier_ro_[node] != nullptr) {
    gauge_tier_ro_[node]->set(0.0);
  }
  scrub_journal_.push_back("tier-resumed node=" + std::to_string(node));
}

void DataPlane::on_cache_evict(std::size_t node, const ShardKey& key,
                               double bytes, double refetch_cost_us) {
  storage::DiskTier& tier = *tiers_[node];
  // Degraded medium: shed demotions entirely (reads still work), but
  // probe every few evictions so writes resume the moment the fault
  // clears — no operator action required.
  if (tier_read_only_[node] != 0) {
    if (++resume_probe_[node] % kResumeProbeEvery == 0 &&
        tier.try_resume().ok()) {
      note_tier_resume(node);
    } else {
      ++counters_.demote_rejected;
      if (ctr_demote_rejected_ != nullptr) ctr_demote_rejected_->inc();
      return;
    }
  }
  // Cheap-to-refetch shards are not worth disk space or write bandwidth.
  if (refetch_cost_us < config_.storage.demote_min_refetch_us) {
    ++counters_.demote_rejected;
    if (ctr_demote_rejected_ != nullptr) ctr_demote_rejected_->inc();
    return;
  }
  // A stale version can never be read again (the version is part of
  // every future key): drop it instead of preserving garbage.
  auto it = objects_.find(key.object);
  if (it == objects_.end() || it->second.version != key.version) return;
  if (tier.resident(key)) return;  // already safe on this disk
  const std::uint64_t seals_before = tier.store().stats().seals;
  const Status st = tier.demote(key, bytes);
  if (!st.ok()) {
    ++counters_.demote_rejected;
    if (ctr_demote_rejected_ != nullptr) ctr_demote_rejected_->inc();
    // Distinguish a sick medium (EIO/ENOSPC through the Env — the store
    // latched read-only) from a merely full tier: only the former
    // trips the degraded flag and the storage.tier.read_only gauge.
    if (tier.media_degraded()) note_tier_fault(node);
    return;
  }
  ++counters_.demotions;
  if (ctr_demotions_ != nullptr) ctr_demotions_->inc();
  counters_.bytes_demoted += bytes;
  log_apply({storage::LogRecordType::kDemote, 0, key.object, key.shard,
             key.version, node, bytes});
  // Advisory: record segment seals so replay analysis can line compaction
  // pressure up against the mutation stream.
  for (std::uint64_t s = seals_before; s < tier.store().stats().seals; ++s) {
    log_apply({storage::LogRecordType::kSeal, 0, 0, 0, 0, node, 0.0});
  }
}

std::size_t DataPlane::disk_holder(const ShardKey& key) const {
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    if (tiers_[t]->resident(key)) return t;
  }
  return kNoNode;
}

bool DataPlane::shard_alive(const ShardKey& key) const {
  auto it = replicas_.find(key);
  if (it != replicas_.end() && !it->second.empty()) return true;
  return disk_holder(key) != kNoNode;
}

void DataPlane::mirror_evictions(std::uint64_t before, const Cache& cache) {
  if (ctr_evictions_ != nullptr) {
    ctr_evictions_->inc(cache.stats().evictions - before);
  }
}

void DataPlane::put(ObjectId id, double bytes, std::size_t node,
                    std::string producer) {
  DataObject* obj;
  auto it = objects_.find(id);
  if (it != objects_.end()) {
    // Fresh content supersedes whatever copies remain: release them and
    // stale their version so no cached shard of the old content can hit.
    obj = &it->second;
    drop_object_replicas(*obj);
    ++obj->version;
    for (auto& cache : caches_) cache->invalidate_object(id, obj->version);
    for (auto& tier : tiers_) {
      if (!tier->offline()) tier->invalidate_object(id, obj->version);
    }
    obj->total_bytes = bytes;
    obj->producer = std::move(producer);
  } else {
    DataObject fresh;
    fresh.id = id;
    fresh.total_bytes = bytes;
    fresh.producer = std::move(producer);
    obj = &objects_.emplace(id, std::move(fresh)).first->second;
  }
  obj->num_shards = shard_count(bytes, config_.shard_limit_bytes);
  log_apply({storage::LogRecordType::kPut, 0, id, obj->num_shards,
             obj->version, node, bytes});

  for (std::uint32_t s = 0; s < obj->num_shards; ++s) {
    const ShardKey key = obj->key(s);
    const double sb = obj->shard_bytes(s);
    auto placed = placement_.place(key, sb, node);
    if (!placed.ok()) continue;  // no room anywhere: object stays lost
    for (std::size_t holder : placed.value()) {
      if (holder != node) counters_.bytes_replicated += sb;
      log_apply({storage::LogRecordType::kPlace, 0, key.object, key.shard,
                 key.version, holder, sb});
    }
    replicas_[key] = std::move(placed).value();
  }
}

bool DataPlane::available(ObjectId id) const {
  auto it = objects_.find(id);
  if (it == objects_.end()) return false;
  const DataObject& obj = it->second;
  for (std::uint32_t s = 0; s < obj.num_shards; ++s) {
    if (!shard_alive(obj.key(s))) return false;
  }
  return true;
}

const DataObject* DataPlane::find(ObjectId id) const {
  auto it = objects_.find(id);
  return it == objects_.end() ? nullptr : &it->second;
}

Result<std::size_t> DataPlane::primary_node(ObjectId id) const {
  if (!available(id)) {
    return NotFound("object " + std::to_string(id) +
                    " has no live replica; recompute it");
  }
  const DataObject& obj = objects_.at(id);
  // Lowest-index node holding every shard — in RAM or on its own online
  // disk tier (a tier copy is locally promotable, no fabric involved).
  for (std::size_t n = 0; n < caches_.size(); ++n) {
    bool holds_all = true;
    for (std::uint32_t s = 0; s < obj.num_shards && holds_all; ++s) {
      const ShardKey key = obj.key(s);
      auto hit = replicas_.find(key);
      holds_all = (hit != replicas_.end() &&
                   std::find(hit->second.begin(), hit->second.end(), n) !=
                       hit->second.end()) ||
                  (n < tiers_.size() && tiers_[n]->resident(key));
    }
    if (holds_all) return n;
  }
  // …else the shards are scattered (post-crash re-placement): point at
  // shard 0's preferred source; stage() moves the rest.
  auto rit = replicas_.find(obj.key(0));
  if (rit != replicas_.end() && !rit->second.empty()) {
    return rit->second.front();
  }
  // No RAM replica at all — but the object is available, so an online
  // disk tier holds it: promote from there instead of recomputing.
  const std::size_t t = disk_holder(obj.key(0));
  if (t != kNoNode) return t;
  return NotFound("object " + std::to_string(id) +
                  " has no live replica; recompute it");
}

Status DataPlane::stage(ObjectId id, std::size_t dst,
                        platform::Simulator::Callback on_staged) {
  return stage_impl(id, dst, /*is_prefetch=*/false, obs::TraceContext{},
                    std::move(on_staged));
}

Status DataPlane::stage(ObjectId id, std::size_t dst, obs::TraceContext ctx,
                        platform::Simulator::Callback on_staged) {
  return stage_impl(id, dst, /*is_prefetch=*/false, ctx,
                    std::move(on_staged));
}

Status DataPlane::prefetch(ObjectId id, std::size_t dst) {
  return stage_impl(id, dst, /*is_prefetch=*/true, obs::TraceContext{},
                    nullptr);
}

Status DataPlane::stage_impl(ObjectId id, std::size_t dst, bool is_prefetch,
                             obs::TraceContext ctx,
                             platform::Simulator::Callback on_staged) {
  if (!available(id)) {
    return NotFound("object " + std::to_string(id) +
                    " is not in the data plane");
  }
  const DataObject& obj = objects_.at(id);

  struct StageState {
    std::size_t pending = 0;
    platform::Simulator::Callback on_staged;
  };
  auto state = std::make_shared<StageState>();
  state->on_staged = std::move(on_staged);

  static const std::vector<std::size_t> kNoHolders;
  for (std::uint32_t s = 0; s < obj.num_shards; ++s) {
    const ShardKey key = obj.key(s);
    const double sb = obj.shard_bytes(s);
    auto rit = replicas_.find(key);
    const auto& holders = rit == replicas_.end() ? kNoHolders : rit->second;
    if (std::find(holders.begin(), holders.end(), dst) != holders.end()) {
      if (!is_prefetch) {
        ++counters_.local_hits;
        if (ctr_local_hits_ != nullptr) ctr_local_hits_->inc();
      }
      continue;
    }
    Cache& cache = *caches_[dst];
    if (is_prefetch) {
      // Quiet path: no hit/miss accounting, skip anything already here
      // or already on the wire.
      if (cache.contains(key) || xfer_.in_flight(key, dst)) continue;
      ++counters_.prefetch_issued;
      if (ctr_prefetch_issued_ != nullptr) ctr_prefetch_issued_->inc();
    } else if (cache.lookup(key)) {
      if (ctr_cache_hits_ != nullptr) ctr_cache_hits_->inc();
      const auto tag = std::make_pair(key, dst);
      auto pit = prefetched_.find(tag);
      if (pit != prefetched_.end()) {
        ++counters_.prefetch_useful;
        if (ctr_prefetch_useful_ != nullptr) ctr_prefetch_useful_->inc();
        prefetched_.erase(pit);
      }
      continue;
    } else if (ctr_cache_misses_ != nullptr) {
      ctr_cache_misses_->inc();
    }

    // Propagated identity wins: a request-triggered staging's spans join
    // the caller's trace; standalone stagings keep the per-object trace.
    const std::uint64_t span_trace = ctx.valid() ? ctx.trace_id
                                                 : key.object + 1;
    const std::uint64_t span_parent = ctx.valid() ? ctx.parent_span : 0;

    // Miss. Cheapest source first: this node's own disk tier — a local
    // NVMe read instead of any fabric traffic.
    if (dst < tiers_.size() && tiers_[dst]->resident(key)) {
      const double cost = tiers_[dst]->read_estimate_us(sb);
      if (!is_prefetch) ++state->pending;
      const double issue_us = sim_->now();
      (void)tiers_[dst]->promote(
          key, [this, key, sb, cost, dst, is_prefetch, state, issue_us,
                span_trace, span_parent] {
            ++counters_.tier_hits;
            if (ctr_tier_hits_ != nullptr) ctr_tier_hits_->inc();
            counters_.bytes_promoted += sb;
            log_apply({storage::LogRecordType::kPromote, 0, key.object,
                       key.shard, key.version, dst, sb});
            if (tracing()) {
              config_.tracer->span(
                  obs::TimeDomain::kSim, span_trace,
                  config_.tracer->next_id(), span_parent, issue_us,
                  sim_->now(), static_cast<std::uint32_t>(dst), "promote",
                  "data",
                  {{"object", std::to_string(key.object)},
                   {"shard", std::to_string(key.shard)},
                   {"node", std::to_string(dst)},
                   {"bytes", std::to_string(sb)}});
            }
            const std::uint64_t ev0 = caches_[dst]->stats().evictions;
            (void)caches_[dst]->insert(key, sb, cost);
            mirror_evictions(ev0, *caches_[dst]);
            if (is_prefetch) {
              prefetched_.insert({key, dst});
              return;
            }
            if (--state->pending == 0 && state->on_staged) {
              state->on_staged();
            }
          });
      continue;
    }

    if (!holders.empty()) {
      // Fetch from the preferred (birth-first) holder; dedup rides any
      // in-flight copy of the same shard to the same destination.
      const std::size_t src = holders.front();
      const double refetch_cost = xfer_.estimate_us(sb, src, dst);
      if (!is_prefetch) ++state->pending;
      const double issue_us = sim_->now();
      xfer_.fetch(key, sb, src, dst,
                  [this, key, sb, refetch_cost, src, dst, is_prefetch, state,
                   issue_us, span_trace, span_parent] {
                    if (tracing()) {
                      // Sim-time transfer span on the destination's track,
                      // in the owning object/task's (or caller's) trace.
                      config_.tracer->span(
                          obs::TimeDomain::kSim, span_trace,
                          config_.tracer->next_id(), span_parent, issue_us,
                          sim_->now(),
                          static_cast<std::uint32_t>(dst), "xfer", "data",
                          {{"object", std::to_string(key.object)},
                           {"shard", std::to_string(key.shard)},
                           {"src", std::to_string(src)},
                           {"dst", std::to_string(dst)},
                           {"bytes", std::to_string(sb)},
                           {"prefetch", is_prefetch ? "1" : "0"}});
                    }
                    const std::uint64_t ev0 = caches_[dst]->stats().evictions;
                    (void)caches_[dst]->insert(key, sb, refetch_cost);
                    mirror_evictions(ev0, *caches_[dst]);
                    if (is_prefetch) {
                      prefetched_.insert({key, dst});
                      return;
                    }
                    if (--state->pending == 0 && state->on_staged) {
                      state->on_staged();
                    }
                  });
      continue;
    }

    // No RAM copy anywhere — a remote disk tier is the last live source
    // (the availability check above guarantees one exists): promote at
    // the source node, then move the bytes over the fabric.
    const std::size_t src = disk_holder(key);
    if (src == kNoNode) continue;  // raced away; defensively skip
    const double cost =
        tiers_[src]->read_estimate_us(sb) + xfer_.estimate_us(sb, src, dst);
    if (!is_prefetch) ++state->pending;
    const double issue_us = sim_->now();
    (void)tiers_[src]->promote(
        key, [this, key, sb, cost, src, dst, is_prefetch, state, issue_us,
              span_trace, span_parent] {
          ++counters_.tier_hits;
          if (ctr_tier_hits_ != nullptr) ctr_tier_hits_->inc();
          counters_.bytes_promoted += sb;
          log_apply({storage::LogRecordType::kPromote, 0, key.object,
                     key.shard, key.version, src, sb});
          xfer_.fetch(
              key, sb, src, dst,
              [this, key, sb, cost, src, dst, is_prefetch, state, issue_us,
               span_trace, span_parent] {
                if (tracing()) {
                  config_.tracer->span(
                      obs::TimeDomain::kSim, span_trace,
                      config_.tracer->next_id(), span_parent, issue_us,
                      sim_->now(),
                      static_cast<std::uint32_t>(dst), "xfer", "data",
                      {{"object", std::to_string(key.object)},
                       {"shard", std::to_string(key.shard)},
                       {"src", std::to_string(src)},
                       {"dst", std::to_string(dst)},
                       {"bytes", std::to_string(sb)},
                       {"tier", "1"},
                       {"prefetch", is_prefetch ? "1" : "0"}});
                }
                const std::uint64_t ev0 = caches_[dst]->stats().evictions;
                (void)caches_[dst]->insert(key, sb, cost);
                mirror_evictions(ev0, *caches_[dst]);
                if (is_prefetch) {
                  prefetched_.insert({key, dst});
                  return;
                }
                if (--state->pending == 0 && state->on_staged) {
                  state->on_staged();
                }
              });
        });
  }
  if (!is_prefetch && state->pending == 0 && state->on_staged) {
    sim_->schedule(0.0, std::move(state->on_staged));
  }
  return OkStatus();
}

std::vector<ObjectId> DataPlane::invalidate_node(std::size_t node) {
  caches_[node]->clear();
  for (auto it = prefetched_.begin(); it != prefetched_.end();) {
    it = it->second == node ? prefetched_.erase(it) : std::next(it);
  }
  placement_.set_failed(node, true);  // also zeroes its usage
  xfer_.abandon_destination(node);
  // Fail-stop: the node's disk tier stops serving but keeps its bytes
  // (disks survive process death); restore_node brings it back as-is.
  if (node < tiers_.size()) tiers_[node]->set_offline(true);

  std::set<ObjectId> touched;
  std::set<ObjectId> rescued;
  std::set<ObjectId> lost;
  for (auto& [key, holders] : replicas_) {
    auto pos = std::find(holders.begin(), holders.end(), node);
    if (pos == holders.end()) continue;
    holders.erase(pos);
    log_apply({storage::LogRecordType::kRelease, 0, key.object, key.shard,
               key.version, node, 0.0});
    if (!holders.empty()) {
      touched.insert(key.object);
    } else if (disk_holder(key) != kNoNode) {
      // The last RAM replica died, but an online disk tier still holds
      // the shard: rescued, not lost — reads will promote it.
      rescued.insert(key.object);
    } else {
      lost.insert(key.object);
    }
  }
  for (ObjectId id : touched) {
    if (lost.count(id) == 0 && rescued.count(id) == 0) {
      ++counters_.reads_repointed;
    }
  }
  for (ObjectId id : rescued) {
    if (lost.count(id) == 0) {
      ++counters_.disk_rescues;
      if (ctr_disk_rescues_ != nullptr) ctr_disk_rescues_->inc();
    }
  }

  std::vector<ObjectId> out;
  out.reserve(lost.size());
  for (ObjectId id : lost) {  // std::set → ascending, as promised
    DataObject& obj = objects_.at(id);
    // A partial object is useless: drop its surviving shards too, then
    // stale the version so cached copies anywhere can never hit again.
    drop_object_replicas(obj);
    ++obj.version;
    ++counters_.objects_lost;
    for (auto& cache : caches_) cache->invalidate_object(id, obj.version);
    for (auto& tier : tiers_) {
      if (!tier->offline()) tier->invalidate_object(id, obj.version);
    }
    log_apply({storage::LogRecordType::kInvalidate, 0, id, 0, obj.version,
               node, 0.0});
    out.push_back(id);
  }
  return out;
}

void DataPlane::restore_node(std::size_t node) {
  placement_.set_failed(node, false);
  if (node < tiers_.size()) tiers_[node]->set_offline(false);
}

Status DataPlane::checkpoint() {
  if (log_ == nullptr) return OkStatus();  // nothing durable to compact
  return log_->checkpoint(catalog_);
}

Result<storage::RecoveryReport> DataPlane::recover() {
  if (!config_.storage.durable()) {
    return FailedPrecondition(
        "recover() needs a durable storage dir in PlaneConfig::storage");
  }
  storage::RecoveryReport report = storage::recover_catalog(
      config_.storage.dir, config_.registry, config_.tracer);
  catalog_ = report.replay.catalog;
  mem_seq_ = catalog_.last_seq();

  // Re-seed the in-RAM maps from the replayed catalog. Transient state
  // (caches, prefetch tags, in-flight transfers) died with the process
  // and starts empty; the durable maps come back exactly.
  objects_.clear();
  replicas_.clear();
  prefetched_.clear();
  for (const auto& [id, meta] : catalog_.objects()) {
    DataObject obj;
    obj.id = id;
    obj.total_bytes = meta.bytes;
    obj.num_shards = meta.num_shards;
    obj.version = meta.version;
    objects_.emplace(id, std::move(obj));
  }
  for (const auto& [key, holders] : catalog_.ram_replicas()) {
    auto it = objects_.find(key.object);
    if (it == objects_.end() || it->second.version != key.version) continue;
    const double sb = it->second.shard_bytes(key.shard);
    std::vector<std::size_t>& dst = replicas_[key];
    for (std::uint64_t n : holders) {
      if (n >= caches_.size()) continue;  // shrunk deployment: drop
      dst.push_back(static_cast<std::size_t>(n));
      placement_.adopt(static_cast<std::size_t>(n), sb);
    }
    if (dst.empty()) replicas_.erase(key);
  }

  // Reconcile every tier's segment index with the catalog: the catalog
  // is authoritative (it is the WAL), segment files are the payload
  // ledger. Adopt what the catalog knows and the store lost; drop what
  // the store kept but the catalog disowned (stale versions, torn tails).
  for (std::size_t t = 0; t < tiers_.size(); ++t) {
    std::vector<ShardKey> stale;
    tiers_[t]->store().for_each([&](const ShardKey& key, double) {
      auto it = catalog_.disk().find(key);
      if (it == catalog_.disk().end() || it->second.nodes.count(t) == 0) {
        stale.push_back(key);
      }
    });
    for (const ShardKey& key : stale) tiers_[t]->erase(key);
  }
  for (const auto& [key, res] : catalog_.disk()) {
    for (std::uint64_t n : res.nodes) {
      if (n >= tiers_.size()) continue;
      if (!tiers_[n]->store().contains(key)) {
        tiers_[n]->adopt(key, res.bytes);
      }
    }
  }
  return report;
}

storage::ScrubReport DataPlane::scrub_node(std::size_t node) {
  storage::ScrubReport report;
  if (node >= scrubbers_.size()) return report;
  const double issued_us = sim_->now();
  report = scrubbers_[node]->step();
  counters_.scrub_verified += report.segments_verified;
  counters_.scrub_quarantined += report.segments_quarantined;
  for (const ShardKey& key : report.suspects) {
    scrub_journal_.push_back("suspect " + key_str(key) +
                             " node=" + std::to_string(node));
    // The quarantined copy is out of service; the catalog must agree
    // before repair re-shelters the shard (otherwise recover() would
    // adopt a ghost back into the very store that corrupted it).
    auto it = objects_.find(key.object);
    const double sb = it != objects_.end() && it->second.version == key.version
                          ? it->second.shard_bytes(key.shard)
                          : 0.0;
    log_apply({storage::LogRecordType::kDiskErase, 0, key.object, key.shard,
               key.version, node, sb});
    repair_shard(key, node, issued_us);
  }
  return report;
}

void DataPlane::repair_shard(const ShardKey& key, std::size_t home,
                             double issued_us) {
  auto it = objects_.find(key.object);
  if (it == objects_.end() || it->second.version != key.version) {
    // A stale version was rotting on disk: dropping it IS the repair.
    scrub_journal_.push_back("repair " + key_str(key) + " stale-skip");
    return;
  }
  const double sb = it->second.shard_bytes(key.shard);

  // Destination: the home disk unless its medium is gone — then the
  // lowest-index other healthy tier (re-replication onto a surviving
  // node, the hinted-handoff analogue for disk copies).
  const auto healthy = [this](std::size_t n) {
    return n < tiers_.size() && !tiers_[n]->offline() &&
           !tiers_[n]->media_degraded();
  };
  std::size_t dst = kNoNode;
  if (healthy(home)) {
    dst = home;
  } else {
    for (std::size_t n = 0; n < tiers_.size(); ++n) {
      if (n != home && healthy(n)) {
        dst = n;
        break;
      }
    }
  }

  const bool redirected = dst != kNoNode && dst != home;
  const auto finish = [this, key, sb, dst, redirected, issued_us] {
    const Status st = tiers_[dst]->demote(key, sb);
    if (!st.ok()) {
      scrub_journal_.push_back("repair " + key_str(key) + " dst=" +
                               std::to_string(dst) +
                               " failed: " + st.to_string());
      return;
    }
    log_apply({storage::LogRecordType::kDemote, 0, key.object, key.shard,
               key.version, dst, sb});
    ++counters_.repairs;
    if (redirected) ++counters_.repair_redirected;
    if (ctr_repairs_ != nullptr) ctr_repairs_->inc();
    if (hist_repair_us_ != nullptr) {
      hist_repair_us_->record(sim_->now() - issued_us);
    }
    scrub_journal_.push_back("repaired " + key_str(key) +
                             " dst=" + std::to_string(dst) +
                             (redirected ? " redirected" : ""));
  };

  if (dst != kNoNode) {
    if (tiers_[dst]->resident(key)) {
      // Another disk already shelters it (e.g. a redirected earlier
      // repair): nothing to move.
      scrub_journal_.push_back("repair " + key_str(key) +
                               " already-resident dst=" +
                               std::to_string(dst));
      return;
    }
    auto rit = replicas_.find(key);
    if (rit != replicas_.end() && !rit->second.empty()) {
      // Healthiest source: a RAM replica. Same node = straight demote;
      // remote = one fabric transfer, then demote on arrival.
      const std::size_t src = rit->second.front();
      if (src == dst) {
        finish();
      } else {
        xfer_.fetch(key, sb, src, dst, finish);
      }
      return;
    }
    const std::size_t src_t = disk_holder(key);
    if (src_t != kNoNode) {
      // Last live copy is a remote disk: promote it there, move the
      // bytes, demote into the destination tier.
      (void)tiers_[src_t]->promote(key, [this, key, sb, src_t, dst, finish] {
        counters_.bytes_promoted += sb;
        log_apply({storage::LogRecordType::kPromote, 0, key.object, key.shard,
                   key.version, src_t, sb});
        if (src_t == dst) {
          finish();
        } else {
          xfer_.fetch(key, sb, src_t, dst, finish);
        }
      });
      return;
    }
  } else if (shard_alive(key)) {
    // No healthy tier anywhere, but a RAM replica keeps the shard
    // alive: nothing to re-shelter onto disk right now.
    scrub_journal_.push_back("repair " + key_str(key) + " no-healthy-tier");
    return;
  }

  // No copy left anywhere: the rot won. Same treatment as losing the
  // last replica in a crash — version bump, caches staled, lineage
  // recomputes.
  DataObject& obj = it->second;
  drop_object_replicas(obj);
  ++obj.version;
  ++counters_.repair_lost;
  ++counters_.objects_lost;
  if (ctr_repair_lost_ != nullptr) ctr_repair_lost_->inc();
  for (auto& cache : caches_) cache->invalidate_object(key.object, obj.version);
  for (auto& tier : tiers_) {
    if (!tier->offline()) tier->invalidate_object(key.object, obj.version);
  }
  log_apply({storage::LogRecordType::kInvalidate, 0, key.object, 0,
             obj.version, home, 0.0});
  scrub_journal_.push_back("lost " + key_str(key));
}

std::vector<std::size_t> DataPlane::replicas(const ShardKey& key) const {
  auto it = replicas_.find(key);
  if (it == replicas_.end()) return {};
  std::vector<std::size_t> out = it->second;
  std::sort(out.begin(), out.end());
  return out;
}

PlaneStats DataPlane::stats() const {
  PlaneStats out = counters_;
  for (const auto& cache : caches_) {
    const CacheStats& cs = cache->stats();
    out.cache_hits += cs.hits;
    out.cache_misses += cs.misses;
    out.evictions += cs.evictions;
    out.bytes_evicted += cs.bytes_evicted;
  }
  const TransferStats& ts = xfer_.stats();
  out.transfers_issued = ts.issued;
  out.transfers_deduped = ts.deduped;
  out.bytes_fetched = ts.bytes_moved;
  return out;
}

void DataPlane::drop_object_replicas(const DataObject& object) {
  for (std::uint32_t s = 0; s < object.num_shards; ++s) {
    const ShardKey key = object.key(s);
    auto it = replicas_.find(key);
    if (it == replicas_.end()) continue;
    for (std::size_t holder : it->second) {
      placement_.release(holder, object.shard_bytes(s));
    }
    replicas_.erase(it);
  }
}

}  // namespace everest::data
