// Shard placement over node memories (paper §IV: the virtualized runtime
// decides "where data reside" across the Fig. 3 hierarchy). Placement is
// capacity-aware weighted rendezvous hashing: every (shard, node) pair
// gets a deterministic score from the shard key and the node's weight;
// the top `replication` living nodes that still have room win. Rendezvous
// keeps placement stable — adding or failing one node only moves the
// shards that scored it highest — and needs no coordination state beyond
// the node table.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/object.hpp"

namespace everest::data {

/// One placement target: a node memory with finite capacity.
struct StorageNode {
  std::string name;
  double capacity_bytes = 1e18;
  double used_bytes = 0.0;
  /// Failed nodes receive no new shards and hold no replicas.
  bool failed = false;

  [[nodiscard]] bool fits(double bytes) const {
    return !failed && used_bytes + bytes <= capacity_bytes;
  }
};

struct PlacementConfig {
  /// Copies per shard (>= 1). The first replica of a task output is
  /// always the producing node (data is born there); extras go to the
  /// rendezvous winners.
  int replication = 1;
  /// Per-object pinning: object → node index that must hold a replica
  /// (tenant locality, licensed data). Ignored if the node is full/dead.
  std::map<ObjectId, std::size_t> affinity;
  /// Salt decorrelating this deployment's rendezvous scores.
  std::uint64_t salt = 0x5eedULL;
};

/// Deterministic, capacity-aware replica chooser. Not thread-safe (one
/// instance per simulation / behind the owner's lock).
class PlacementPolicy {
 public:
  PlacementPolicy(std::vector<StorageNode> nodes, PlacementConfig config);

  /// Chooses the replica set for one shard. `born_on` (node index, or
  /// kNowhere) is preferred as the first replica. Returns the chosen node
  /// indices (deduplicated, at most `replication`, possibly fewer when
  /// capacity/liveness constrain) and charges their capacity. Fails with
  /// RESOURCE_EXHAUSTED when no living node can hold the shard.
  Result<std::vector<std::size_t>> place(const ShardKey& key, double bytes,
                                         std::size_t born_on = kNowhere);

  /// Returns a shard's bytes to a node (eviction, invalidation).
  void release(std::size_t node, double bytes);

  /// Recovery re-seed: charges `bytes` against `node` without choosing a
  /// placement — the replica set was decided in a previous life and is
  /// being replayed from the catalog log, so capacity is recorded, not
  /// negotiated.
  void adopt(std::size_t node, double bytes);

  void set_failed(std::size_t node, bool failed);
  [[nodiscard]] const StorageNode& node(std::size_t i) const {
    return nodes_[i];
  }
  [[nodiscard]] std::size_t num_nodes() const { return nodes_.size(); }

  /// Rendezvous score of `key` on `node` (higher wins); exposed for tests.
  [[nodiscard]] double score(const ShardKey& key, std::size_t node) const;

  static constexpr std::size_t kNowhere = static_cast<std::size_t>(-1);

 private:
  std::vector<StorageNode> nodes_;
  PlacementConfig config_;
};

}  // namespace everest::data
