// Locality-aware transfer scheduling: turns remote shard reads into
// simulated link transfers. Each directed (src, dst) node pair owns a
// fair-share LinkChannel (platform::LinkChannel), so concurrent fetches
// crossing the same link congest each other exactly as the
// discrete-event clock dictates. Identical in-flight fetches — the same
// (shard key, destination) — are deduplicated: the second consumer rides
// the first transfer instead of doubling the traffic (the FpgaHub
// observation that data movement, not compute, dominates).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "data/object.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"

namespace everest::data {

struct TransferStats {
  std::uint64_t issued = 0;     ///< transfers actually put on a link
  std::uint64_t deduped = 0;    ///< requests that rode an in-flight fetch
  std::uint64_t completed = 0;  ///< link transfers finished
  double bytes_moved = 0.0;     ///< payload bytes that crossed links
};

/// Event-driven shard mover over a node fabric. Single-owner (driven by
/// one simulation).
class TransferScheduler {
 public:
  /// `link_for(src, dst)` names the link model for that directed pair;
  /// called once per pair, lazily.
  using LinkPicker =
      std::function<platform::LinkModel(std::size_t src, std::size_t dst)>;

  TransferScheduler(platform::Simulator& sim, LinkPicker link_for)
      : sim_(&sim), link_for_(std::move(link_for)) {}

  /// Fetches `bytes` of `key` from node `src` to node `dst`; `on_done`
  /// fires (simulator event) when the copy has fully arrived. When an
  /// identical fetch is already in flight the callback is appended to it
  /// and no new transfer starts.
  void fetch(const ShardKey& key, double bytes, std::size_t src,
             std::size_t dst, platform::Simulator::Callback on_done);

  /// True if (key → dst) is currently in flight (prefetch dedup check).
  [[nodiscard]] bool in_flight(const ShardKey& key, std::size_t dst) const {
    return inflight_.count({key, dst}) != 0;
  }

  /// Drops the in-flight book-keeping for a destination node (crash):
  /// pending callbacks for that node are dropped — the data never
  /// arrives. Link occupancy is NOT rewound (the bytes were sent).
  void abandon_destination(std::size_t dst);

  /// Idle-link estimate of one fetch (used to cost cache refetches).
  [[nodiscard]] double estimate_us(double bytes, std::size_t src,
                                   std::size_t dst);

  [[nodiscard]] const TransferStats& stats() const { return stats_; }
  [[nodiscard]] platform::LinkChannel& channel(std::size_t src,
                                               std::size_t dst);

 private:
  using FlightKey = std::pair<ShardKey, std::size_t>;

  struct Flight {
    std::vector<platform::Simulator::Callback> waiters;
    bool abandoned = false;
  };

  platform::Simulator* sim_;
  LinkPicker link_for_;
  std::map<std::pair<std::size_t, std::size_t>,
           std::unique_ptr<platform::LinkChannel>>
      channels_;
  std::map<FlightKey, Flight> inflight_;
  TransferStats stats_;
};

}  // namespace everest::data
