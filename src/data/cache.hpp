// Per-node shard cache: byte-capacity bounded, with pluggable eviction
// (LRU / LFU / cost-aware) and full hit/miss/eviction accounting. The
// cache holds *transient* copies staged by the transfer scheduler or the
// prefetcher — durable replicas live with the PlacementPolicy. Recency
// and insertion are tracked with logical sequence numbers, not wall
// time, so the same access trace always produces the same victims (the
// determinism the TEST_P suite asserts).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.hpp"
#include "data/object.hpp"

namespace everest::data {

enum class EvictionPolicy : std::uint8_t {
  /// Evict the least-recently-used entry.
  kLru = 0,
  /// Evict the least-frequently-used entry (ties: least recent).
  kLfu,
  /// Evict the entry that is cheapest to refetch per byte retained
  /// (score = refetch_cost_us * uses / bytes; lowest goes first) — keeps
  /// expensive-to-restage shards even when they are cold.
  kCostAware,
};

std::string_view to_string(EvictionPolicy policy);

struct CacheConfig {
  double capacity_bytes = 0.0;  ///< 0 disables the cache entirely
  EvictionPolicy policy = EvictionPolicy::kLru;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t inserts = 0;
  std::uint64_t evictions = 0;
  /// Insert attempts rejected because one shard exceeds the capacity.
  std::uint64_t uncacheable = 0;
  double bytes_evicted = 0.0;

  [[nodiscard]] double hit_rate() const {
    const std::uint64_t n = hits + misses;
    return n == 0 ? 0.0 : static_cast<double>(hits) / static_cast<double>(n);
  }
};

/// Single-owner cache (the data plane serializes access; the serve layer
/// wraps one in a mutex).
class Cache {
 public:
  /// Observer of policy evictions: (victim, bytes, refetch_cost_us).
  /// Fires once per evicted entry, after it left the cache — the storage
  /// tier subscribes here to demote cold shards to disk, without the
  /// cache knowing a disk exists. Victim choice is unaffected: the
  /// callback sees decisions, it does not make them.
  using EvictCallback =
      std::function<void(const ShardKey&, double, double)>;

  explicit Cache(CacheConfig config) : config_(config) {}

  /// Installs (or clears, with nullptr) the eviction observer. Not
  /// invoked for erase()/invalidate_object()/clear() — those are
  /// lifecycle drops, not capacity evictions.
  void set_on_evict(EvictCallback on_evict) {
    on_evict_ = std::move(on_evict);
  }

  /// Lookup with accounting: a hit refreshes recency/frequency and
  /// returns true; a miss only counts. Version mismatches are misses (a
  /// stale key can never hit — the version is part of the key).
  bool lookup(const ShardKey& key);

  /// Peek without touching counters or recency (internal bookkeeping).
  [[nodiscard]] bool contains(const ShardKey& key) const {
    return entries_.count(key) != 0;
  }

  /// Inserts (or refreshes) a shard copy, evicting by policy until it
  /// fits. `refetch_cost_us` is what a future miss would pay (feeds the
  /// cost-aware policy). Returns RESOURCE_EXHAUSTED — and caches nothing
  /// — when the shard alone exceeds the capacity.
  Status insert(const ShardKey& key, double bytes, double refetch_cost_us);

  /// Drops one entry; false if absent. Not counted as an eviction.
  bool erase(const ShardKey& key);

  /// Drops every entry of `object` with version < `version` (invalidation
  /// after recomputation). Returns entries dropped.
  std::size_t invalidate_object(ObjectId object, std::uint64_t version);

  /// Drops everything (node crash).
  void clear();

  [[nodiscard]] const CacheStats& stats() const { return stats_; }
  [[nodiscard]] double resident_bytes() const { return resident_bytes_; }
  [[nodiscard]] std::size_t size() const { return entries_.size(); }
  [[nodiscard]] const CacheConfig& config() const { return config_; }

 private:
  struct Entry {
    double bytes = 0.0;
    double refetch_cost_us = 0.0;
    std::uint64_t last_use = 0;  ///< logical sequence of the last touch
    std::uint64_t uses = 0;
  };

  /// Policy victim among current entries; entries_.end() when empty.
  std::map<ShardKey, Entry>::iterator pick_victim();
  void evict_until_fits(double incoming_bytes);

  CacheConfig config_;
  std::map<ShardKey, Entry> entries_;
  double resident_bytes_ = 0.0;
  std::uint64_t seq_ = 0;
  CacheStats stats_;
  EvictCallback on_evict_;
};

}  // namespace everest::data
