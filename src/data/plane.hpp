// The virtualized data plane (paper Fig. 2: the runtime "manages the
// data movement between the nodes" of the Fig. 3 hierarchy). One
// DataPlane instance tracks, for a set of simulated nodes:
//   * the catalog of versioned DataObjects and where their shard
//     replicas durably live (PlacementPolicy over node memories),
//   * a per-node transient Cache of remotely fetched shards,
//   * a TransferScheduler turning remote reads into fair-share link
//     transfers with in-flight dedup,
//   * prefetch accounting (staged-ahead shards that later save a fetch),
//     and
//   * an optional per-node disk tier (storage::DiskTier) under each
//     cache: capacity evictions demote cold shards to disk (cost-gated),
//     misses promote from disk before paying a remote fetch, and — when
//     a durable directory is configured — every catalog mutation is
//     write-ahead logged so recover() rebuilds this entire state after a
//     process death.
//
// A node crash invalidates exactly the shards that died: replicas on
// other nodes keep their objects alive (reads are repointed), shards
// whose last RAM replica died but that still have an online disk-tier
// copy are *rescued* (promotable, not lost), and only objects with a
// shard in neither place get a version bump — which is what
// resilience::lineage keys recomputation on. A crashed node's own disk
// tier goes offline but keeps its contents (fail-stop: disks survive).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/cache.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "data/object.hpp"
#include "data/placement.hpp"
#include "data/prefetcher.hpp"
#include "data/transfer.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"
#include "storage/storage.hpp"

namespace everest::data {

struct PlaneConfig {
  std::size_t num_nodes = 0;
  /// Durable replica store per node.
  double node_capacity_bytes = 8.0 * 1024 * 1024 * 1024;
  /// Transient fetch cache per node (0 disables caching: every remote
  /// read pays a transfer).
  double cache_bytes = 64.0 * 1024 * 1024;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Durable copies per shard (>= 1; extras cost replication transfers).
  int replication = 1;
  /// Objects split into shards of at most this many bytes.
  double shard_limit_bytes = 4.0 * 1024 * 1024;
  /// Inter-node fabric (every pair; same node never transfers).
  platform::LinkModel link = platform::LinkModel::udp_datacenter();
  PlacementConfig placement;
  /// Disk tier + catalog log under the caches. Disabled by default
  /// (disk_capacity_bytes == 0): the plane then behaves byte-identically
  /// to a build without the storage subsystem.
  storage::StorageConfig storage;

  // ---- observability (both borrowed; may be null) ----
  /// Sink for per-transfer sim-time spans ("xfer", component "data",
  /// track = destination node, trace_id = object id + 1 so they land in
  /// the owning task's trace).
  obs::Tracer* tracer = nullptr;
  /// Registry mirror of the hit/miss/eviction/prefetch counters (the
  /// same numbers PlaneStats aggregates, live instead of post-run).
  obs::Registry* registry = nullptr;
};

/// Aggregated data-plane counters (sums per-node cache stats with
/// transfer and lifecycle accounting).
struct PlaneStats {
  std::uint64_t local_hits = 0;   ///< reads served by a resident replica
  std::uint64_t cache_hits = 0;   ///< reads served by the fetch cache
  std::uint64_t cache_misses = 0; ///< reads that paid (or joined) a fetch
  std::uint64_t evictions = 0;
  std::uint64_t transfers_issued = 0;
  std::uint64_t transfers_deduped = 0;
  std::uint64_t prefetch_issued = 0;  ///< fetches started ahead of demand
  std::uint64_t prefetch_useful = 0;  ///< demand hits on prefetched shards
  std::uint64_t objects_lost = 0;     ///< last copy died (version bumped)
  std::uint64_t reads_repointed = 0;  ///< crash survived via another replica
  std::uint64_t tier_hits = 0;        ///< misses served by a disk tier
  std::uint64_t demotions = 0;        ///< evicted shards written to disk
  std::uint64_t demote_rejected = 0;  ///< demotions cost-gated or refused
  std::uint64_t disk_rescues = 0;     ///< objects only the disk kept alive
  std::uint64_t scrub_verified = 0;     ///< sealed segments verified clean
  std::uint64_t scrub_quarantined = 0;  ///< corrupt segments pulled aside
  std::uint64_t repairs = 0;            ///< suspects re-sheltered from replicas
  std::uint64_t repair_redirected = 0;  ///< repairs re-homed to another node
  std::uint64_t repair_lost = 0;        ///< suspects with no live copy left
  std::uint64_t tier_faults = 0;        ///< tiers entering read-only (media)
  std::uint64_t tier_resumes = 0;       ///< read-only tiers writable again
  double bytes_fetched = 0.0;         ///< demand + prefetch fetch traffic
  double bytes_replicated = 0.0;      ///< extra-replica write traffic
  double bytes_evicted = 0.0;
  double bytes_demoted = 0.0;         ///< cache → disk tier traffic
  double bytes_promoted = 0.0;        ///< disk tier → cache traffic

  [[nodiscard]] std::string to_string() const;
};

/// Single-owner (one simulation drives it; the serve layer uses Cache
/// directly instead).
class DataPlane {
 public:
  DataPlane(platform::Simulator& sim, PlaneConfig config);

  // ---- object lifecycle ----

  /// Registers (or re-registers, after invalidation) `id` with fresh
  /// content produced on `node`. Shards it, places replicas, charges
  /// replication traffic for copies beyond the birth node.
  void put(ObjectId id, double bytes, std::size_t node,
           std::string producer = "");

  /// Object has a live copy of every shard at its current version — in
  /// RAM (a placed replica) or on an *online* disk tier. Disk-resident
  /// objects are available: a read promotes them instead of recomputing.
  [[nodiscard]] bool available(ObjectId id) const;

  [[nodiscard]] const DataObject* find(ObjectId id) const;

  /// A node currently holding every shard of `id` — the birth node while
  /// it lives, else the lowest-index full-copy holder, else the preferred
  /// source of shard 0. Disk-resident objects are NOT lost: when no RAM
  /// replica survives but an online disk tier still holds a shard, the
  /// tier's node is returned and a read there promotes from disk.
  /// NOT_FOUND only when the object is unknown or truly lost — no copy in
  /// RAM or on any online disk — which is not retryable: the object must
  /// be recomputed, not re-asked-for.
  [[nodiscard]] Result<std::size_t> primary_node(ObjectId id) const;

  // ---- read path ----

  /// Ensures every shard of `id` is readable at `dst` (replica, cached
  /// copy, or fetched now); `on_staged` fires as a simulator event once
  /// all shards arrived. Counts hits/misses per shard. NOT_FOUND when the
  /// object is unknown or lost (on_staged is then never invoked).
  Status stage(ObjectId id, std::size_t dst,
               platform::Simulator::Callback on_staged);

  /// stage() with propagated trace identity: promote/xfer spans emitted
  /// for this staging join `ctx`'s trace (parented under
  /// ctx.parent_span) instead of the per-object synthetic trace, so a
  /// request-triggered promote-on-miss stitches into the request chain.
  Status stage(ObjectId id, std::size_t dst, obs::TraceContext ctx,
               platform::Simulator::Callback on_staged);

  /// Same movement as stage() but initiated ahead of demand: cache
  /// inserts are tagged so a later demand hit counts as prefetch_useful.
  /// Already-resident shards are skipped silently (no hit/miss counting).
  Status prefetch(ObjectId id, std::size_t dst);

  // ---- failure handling ----

  /// Node crash: its cache and replicas vanish, in-flight fetches into it
  /// are abandoned. Objects with surviving replicas elsewhere stay
  /// available (reads repoint); objects whose last replica died get a
  /// version bump (staling every cached copy) and are returned, ascending
  /// — exactly the set lineage must recompute.
  std::vector<ObjectId> invalidate_node(std::size_t node);

  /// The node rejoins — RAM empty, but its disk tier comes back online
  /// with contents intact — and may receive placements again.
  void restore_node(std::size_t node);

  // ---- durability ----

  /// Snapshots the catalog and truncates the write-ahead log. OK no-op
  /// when the plane is not durable (no storage dir configured).
  Status checkpoint();

  /// Rebuilds objects, replica placements, and disk-tier indexes by
  /// replaying snapshot + log from the configured storage dir. Call on a
  /// freshly constructed plane (same config, new process) before any
  /// put/stage traffic. Producer strings are not durable and come back
  /// empty. FAILED_PRECONDITION when the plane is not durable.
  Result<storage::RecoveryReport> recover();

  // ---- scrub + repair ----

  /// One budgeted scrub step over `node`'s sealed segments. Corrupt
  /// segments are quarantined (their keys are suspect — never served,
  /// never resurrected) and every suspect is repaired immediately from
  /// the healthiest remaining copy: local RAM replica, remote RAM
  /// replica, remote disk — written back to the home disk, or
  /// re-replicated to another node's tier when the home medium is gone.
  /// Suspects with no copy anywhere get the lost-object treatment
  /// (version bump; lineage recomputes them). No-op report when the
  /// storage tier is off.
  storage::ScrubReport scrub_node(std::size_t node);

  /// True while `node`'s tier refuses writes after a media fault
  /// (ENOSPC/EIO). Reads keep working; demotions shed; the plane probes
  /// the medium periodically and clears this automatically.
  [[nodiscard]] bool tier_read_only(std::size_t node) const {
    return node < tier_read_only_.size() && tier_read_only_[node] != 0;
  }

  /// Deterministic scrub/repair event log (same seed + fault plan ⇒
  /// byte-identical sequence, whatever the cache policy).
  [[nodiscard]] const std::vector<std::string>& scrub_journal() const {
    return scrub_journal_;
  }
  /// One node's scrubber; null when the storage tier is disabled.
  [[nodiscard]] storage::Scrubber* scrubber(std::size_t node) {
    return node < scrubbers_.size() ? scrubbers_[node].get() : nullptr;
  }

  // ---- introspection ----

  [[nodiscard]] Cache& cache(std::size_t node) { return *caches_[node]; }
  [[nodiscard]] const Cache& cache(std::size_t node) const {
    return *caches_[node];
  }
  [[nodiscard]] TransferScheduler& transfers() { return xfer_; }
  [[nodiscard]] const PlacementPolicy& placement() const {
    return placement_;
  }
  [[nodiscard]] std::size_t num_nodes() const { return caches_.size(); }
  /// Replica nodes of one shard (empty when unknown), ascending.
  [[nodiscard]] std::vector<std::size_t> replicas(const ShardKey& key) const;
  /// One node's disk tier; null when the storage tier is disabled.
  [[nodiscard]] storage::DiskTier* tier(std::size_t node) {
    return node < tiers_.size() ? tiers_[node].get() : nullptr;
  }
  /// The in-memory catalog mirror (tracks the WAL when durable).
  [[nodiscard]] const storage::Catalog& catalog() const { return catalog_; }
  /// The write-ahead log; null unless the plane is durable.
  [[nodiscard]] storage::CatalogLog* catalog_log() { return log_.get(); }
  [[nodiscard]] PlaneStats stats() const;

  static constexpr std::size_t kNoNode = static_cast<std::size_t>(-1);

 private:
  Status stage_impl(ObjectId id, std::size_t dst, bool is_prefetch,
                    obs::TraceContext ctx,
                    platform::Simulator::Callback on_staged);
  void drop_object_replicas(const DataObject& object);
  /// Stamps (via the WAL when durable, a memory counter otherwise) and
  /// folds one mutation into the catalog mirror. No-op with the tier off.
  void log_apply(storage::LogRecord record);
  /// Cache-eviction subscriber: cost-gated demotion into `node`'s tier.
  void on_cache_evict(std::size_t node, const ShardKey& key, double bytes,
                      double refetch_cost_us);
  /// Re-shelters one quarantined shard from its healthiest live copy;
  /// `issued_us` is when the scrub step found it (repair-latency clock).
  void repair_shard(const ShardKey& key, std::size_t home, double issued_us);
  /// Flags `node`'s tier read-only after a media fault (gauge + stats).
  void note_tier_fault(std::size_t node);
  /// Clears the read-only flag after a successful resume probe.
  void note_tier_resume(std::size_t node);
  /// Lowest-index node whose *online* tier holds `key`; kNoNode if none.
  [[nodiscard]] std::size_t disk_holder(const ShardKey& key) const;
  /// RAM replica or online disk copy exists at this exact version.
  [[nodiscard]] bool shard_alive(const ShardKey& key) const;
  /// Mirrors cache evictions that happened during one insert into the
  /// registry counter (evictions are counted at their cache).
  void mirror_evictions(std::uint64_t before, const Cache& cache);
  [[nodiscard]] bool tracing() const {
    return config_.tracer != nullptr && config_.tracer->enabled();
  }

  platform::Simulator* sim_;
  PlaneConfig config_;
  PlacementPolicy placement_;
  TransferScheduler xfer_;
  std::vector<std::unique_ptr<Cache>> caches_;
  /// Per-node disk tiers (all non-null when config_.storage.enabled()).
  std::vector<std::unique_ptr<storage::DiskTier>> tiers_;
  /// Per-node scrubbers over the tiers' segment stores (same indexing).
  std::vector<std::unique_ptr<storage::Scrubber>> scrubbers_;
  /// 1 while the node's tier is shedding writes after a media fault.
  std::vector<char> tier_read_only_;
  /// Evictions seen per degraded tier (drives the resume-probe cadence).
  std::vector<std::uint64_t> resume_probe_;
  /// Deterministic scrub/repair event log (see scrub_journal()).
  std::vector<std::string> scrub_journal_;
  /// Write-ahead log (only when config_.storage.durable()).
  std::unique_ptr<storage::CatalogLog> log_;
  /// Materialized view of the logged mutations — always consistent with
  /// what replay would rebuild (the E22 "zero divergence" check).
  storage::Catalog catalog_;
  std::uint64_t mem_seq_ = 0;  ///< seq source when there is no WAL
  std::map<ObjectId, DataObject> objects_;
  /// Current-version shard → replica holders, placement order (birth
  /// node first — the preferred fetch source).
  std::map<ShardKey, std::vector<std::size_t>> replicas_;
  /// (shard, node) pairs staged by prefetch and not yet claimed by demand.
  std::set<std::pair<ShardKey, std::size_t>> prefetched_;
  PlaneStats counters_;  ///< lifecycle counters (cache stats live in caches_)

  /// Registry mirrors (null when config_.registry is null).
  obs::Counter* ctr_local_hits_ = nullptr;
  obs::Counter* ctr_cache_hits_ = nullptr;
  obs::Counter* ctr_cache_misses_ = nullptr;
  obs::Counter* ctr_evictions_ = nullptr;
  obs::Counter* ctr_prefetch_issued_ = nullptr;
  obs::Counter* ctr_prefetch_useful_ = nullptr;
  obs::Counter* ctr_tier_hits_ = nullptr;
  obs::Counter* ctr_demotions_ = nullptr;
  obs::Counter* ctr_demote_rejected_ = nullptr;
  obs::Counter* ctr_disk_rescues_ = nullptr;
  obs::Counter* ctr_repairs_ = nullptr;
  obs::Counter* ctr_repair_lost_ = nullptr;
  obs::Histogram* hist_repair_us_ = nullptr;  ///< quarantine → re-sheltered
  /// Per-node "storage.tier.read_only" gauges (1 = shedding writes).
  std::vector<obs::Gauge*> gauge_tier_ro_;
};

}  // namespace everest::data
