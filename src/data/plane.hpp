// The virtualized data plane (paper Fig. 2: the runtime "manages the
// data movement between the nodes" of the Fig. 3 hierarchy). One
// DataPlane instance tracks, for a set of simulated nodes:
//   * the catalog of versioned DataObjects and where their shard
//     replicas durably live (PlacementPolicy over node memories),
//   * a per-node transient Cache of remotely fetched shards,
//   * a TransferScheduler turning remote reads into fair-share link
//     transfers with in-flight dedup, and
//   * prefetch accounting (staged-ahead shards that later save a fetch).
//
// A node crash invalidates exactly the shards that died: replicas on
// other nodes keep their objects alive (reads are repointed), and only
// objects whose last replica vanished get a version bump — which is what
// resilience::lineage keys recomputation on.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/cache.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "data/object.hpp"
#include "data/placement.hpp"
#include "data/prefetcher.hpp"
#include "data/transfer.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"

namespace everest::data {

struct PlaneConfig {
  std::size_t num_nodes = 0;
  /// Durable replica store per node.
  double node_capacity_bytes = 8.0 * 1024 * 1024 * 1024;
  /// Transient fetch cache per node (0 disables caching: every remote
  /// read pays a transfer).
  double cache_bytes = 64.0 * 1024 * 1024;
  EvictionPolicy eviction = EvictionPolicy::kLru;
  /// Durable copies per shard (>= 1; extras cost replication transfers).
  int replication = 1;
  /// Objects split into shards of at most this many bytes.
  double shard_limit_bytes = 4.0 * 1024 * 1024;
  /// Inter-node fabric (every pair; same node never transfers).
  platform::LinkModel link = platform::LinkModel::udp_datacenter();
  PlacementConfig placement;

  // ---- observability (both borrowed; may be null) ----
  /// Sink for per-transfer sim-time spans ("xfer", component "data",
  /// track = destination node, trace_id = object id + 1 so they land in
  /// the owning task's trace).
  obs::Tracer* tracer = nullptr;
  /// Registry mirror of the hit/miss/eviction/prefetch counters (the
  /// same numbers PlaneStats aggregates, live instead of post-run).
  obs::Registry* registry = nullptr;
};

/// Aggregated data-plane counters (sums per-node cache stats with
/// transfer and lifecycle accounting).
struct PlaneStats {
  std::uint64_t local_hits = 0;   ///< reads served by a resident replica
  std::uint64_t cache_hits = 0;   ///< reads served by the fetch cache
  std::uint64_t cache_misses = 0; ///< reads that paid (or joined) a fetch
  std::uint64_t evictions = 0;
  std::uint64_t transfers_issued = 0;
  std::uint64_t transfers_deduped = 0;
  std::uint64_t prefetch_issued = 0;  ///< fetches started ahead of demand
  std::uint64_t prefetch_useful = 0;  ///< demand hits on prefetched shards
  std::uint64_t objects_lost = 0;     ///< last replica died (version bumped)
  std::uint64_t reads_repointed = 0;  ///< crash survived via another replica
  double bytes_fetched = 0.0;         ///< demand + prefetch fetch traffic
  double bytes_replicated = 0.0;      ///< extra-replica write traffic
  double bytes_evicted = 0.0;

  [[nodiscard]] std::string to_string() const;
};

/// Single-owner (one simulation drives it; the serve layer uses Cache
/// directly instead).
class DataPlane {
 public:
  DataPlane(platform::Simulator& sim, PlaneConfig config);

  // ---- object lifecycle ----

  /// Registers (or re-registers, after invalidation) `id` with fresh
  /// content produced on `node`. Shards it, places replicas, charges
  /// replication traffic for copies beyond the birth node.
  void put(ObjectId id, double bytes, std::size_t node,
           std::string producer = "");

  /// Object has a live, complete replica set at its current version.
  [[nodiscard]] bool available(ObjectId id) const;

  [[nodiscard]] const DataObject* find(ObjectId id) const;

  /// A node currently holding every shard of `id` — the birth node while
  /// it lives, else the lowest-index full-copy holder; NOT_FOUND when the
  /// object is unknown or lost (a cache/object-store miss is not
  /// retryable — the object must be recomputed, not re-asked-for).
  [[nodiscard]] Result<std::size_t> primary_node(ObjectId id) const;

  // ---- read path ----

  /// Ensures every shard of `id` is readable at `dst` (replica, cached
  /// copy, or fetched now); `on_staged` fires as a simulator event once
  /// all shards arrived. Counts hits/misses per shard. NOT_FOUND when the
  /// object is unknown or lost (on_staged is then never invoked).
  Status stage(ObjectId id, std::size_t dst,
               platform::Simulator::Callback on_staged);

  /// Same movement as stage() but initiated ahead of demand: cache
  /// inserts are tagged so a later demand hit counts as prefetch_useful.
  /// Already-resident shards are skipped silently (no hit/miss counting).
  Status prefetch(ObjectId id, std::size_t dst);

  // ---- failure handling ----

  /// Node crash: its cache and replicas vanish, in-flight fetches into it
  /// are abandoned. Objects with surviving replicas elsewhere stay
  /// available (reads repoint); objects whose last replica died get a
  /// version bump (staling every cached copy) and are returned, ascending
  /// — exactly the set lineage must recompute.
  std::vector<ObjectId> invalidate_node(std::size_t node);

  /// The node rejoins, empty, and may receive placements again.
  void restore_node(std::size_t node);

  // ---- introspection ----

  [[nodiscard]] Cache& cache(std::size_t node) { return *caches_[node]; }
  [[nodiscard]] const Cache& cache(std::size_t node) const {
    return *caches_[node];
  }
  [[nodiscard]] TransferScheduler& transfers() { return xfer_; }
  [[nodiscard]] const PlacementPolicy& placement() const {
    return placement_;
  }
  [[nodiscard]] std::size_t num_nodes() const { return caches_.size(); }
  /// Replica nodes of one shard (empty when unknown), ascending.
  [[nodiscard]] std::vector<std::size_t> replicas(const ShardKey& key) const;
  [[nodiscard]] PlaneStats stats() const;

 private:
  Status stage_impl(ObjectId id, std::size_t dst, bool is_prefetch,
                    platform::Simulator::Callback on_staged);
  void drop_object_replicas(const DataObject& object);
  [[nodiscard]] bool tracing() const {
    return config_.tracer != nullptr && config_.tracer->enabled();
  }

  platform::Simulator* sim_;
  PlaneConfig config_;
  PlacementPolicy placement_;
  TransferScheduler xfer_;
  std::vector<std::unique_ptr<Cache>> caches_;
  std::map<ObjectId, DataObject> objects_;
  /// Current-version shard → replica holders, placement order (birth
  /// node first — the preferred fetch source).
  std::map<ShardKey, std::vector<std::size_t>> replicas_;
  /// (shard, node) pairs staged by prefetch and not yet claimed by demand.
  std::set<std::pair<ShardKey, std::size_t>> prefetched_;
  PlaneStats counters_;  ///< lifecycle counters (cache stats live in caches_)

  /// Registry mirrors (null when config_.registry is null).
  obs::Counter* ctr_local_hits_ = nullptr;
  obs::Counter* ctr_cache_hits_ = nullptr;
  obs::Counter* ctr_cache_misses_ = nullptr;
  obs::Counter* ctr_evictions_ = nullptr;
  obs::Counter* ctr_prefetch_issued_ = nullptr;
  obs::Counter* ctr_prefetch_useful_ = nullptr;
};

}  // namespace everest::data
