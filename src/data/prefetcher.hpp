// Frontier prefetching: walk the task DAG a few waves ahead of the
// dispatch frontier and stage the inputs those tasks will read onto the
// node predicted to run them, so the data is already warm when the
// scheduler dispatches (the ExaWorks-style explicit data-object layer
// put to work hiding transfer latency behind compute). Operates on plain
// adjacency lists (like resilience::lineage) so it depends on no
// workflow types — any DAG engine can drive it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/graph.hpp"

namespace everest::data {

struct PrefetchConfig {
  /// Frontier waves to look ahead (0 disables prefetching).
  int depth = 1;
  /// Cap on candidate tasks returned per completion event, to bound the
  /// staging burst a single completion can trigger.
  std::size_t max_candidates_per_event = 32;
};

/// One prefetch suggestion: stage `producer`'s output for upcoming task
/// `consumer` onto node `target`.
struct PrefetchCandidate {
  std::size_t consumer = 0;
  std::size_t producer = 0;
  std::size_t target = 0;
};

/// Stateless planner over a fixed DAG. The caller supplies current
/// execution state per query; the prefetcher only does graph walking and
/// target prediction. Single-owner.
class Prefetcher {
 public:
  /// `deps[t]` lists the producers task t consumes (dense ids, acyclic).
  Prefetcher(const std::vector<std::vector<std::size_t>>& deps,
             PrefetchConfig config);

  /// Tasks within config.depth waves of becoming ready, given `done`.
  [[nodiscard]] std::vector<std::size_t> lookahead(
      const std::vector<char>& done) const;

  /// Plans prefetches after `completed_task` finished. For each
  /// lookahead task reachable from the completion, predicts its target
  /// node by data gravity — the node holding the most input bytes
  /// (`producer_node[d]`, kUnplaced when not yet produced;
  /// `output_bytes[d]` sizes the pull) — and emits one candidate per
  /// (consumer, done producer) whose data lives elsewhere. in_flight
  /// tasks (already dispatched) are skipped.
  [[nodiscard]] std::vector<PrefetchCandidate> plan(
      std::size_t completed_task, const std::vector<char>& done,
      const std::vector<int>& in_flight,
      const std::vector<std::size_t>& producer_node,
      const std::vector<double>& output_bytes) const;

  [[nodiscard]] const PrefetchConfig& config() const { return config_; }

  static constexpr std::size_t kUnplaced = static_cast<std::size_t>(-1);

 private:
  Digraph graph_;
  PrefetchConfig config_;
};

}  // namespace everest::data
