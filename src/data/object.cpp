#include "data/object.hpp"

#include <cmath>

namespace everest::data {

std::string ShardKey::to_string() const {
  return std::to_string(object) + "/" + std::to_string(shard) + "@v" +
         std::to_string(version);
}

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;

std::uint64_t fnv_mix(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h ^= (v >> (8 * i)) & 0xffULL;
    h *= kFnvPrime;
  }
  return h;
}
}  // namespace

std::uint64_t hash_key(const ShardKey& key, std::uint64_t salt) {
  std::uint64_t h = kFnvOffset;
  h = fnv_mix(h, key.object);
  h = fnv_mix(h, key.shard);
  h = fnv_mix(h, key.version);
  h = fnv_mix(h, salt);
  return h;
}

ObjectId object_id_from_name(const std::string& name) {
  std::uint64_t h = kFnvOffset;
  for (char c : name) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

double DataObject::shard_bytes(std::uint32_t i) const {
  if (num_shards == 0 || i >= num_shards) return 0.0;
  const double even = total_bytes / num_shards;
  if (i + 1 < num_shards) return even;
  return total_bytes - even * (num_shards - 1);
}

std::vector<ShardKey> DataObject::keys() const {
  std::vector<ShardKey> out;
  out.reserve(num_shards);
  for (std::uint32_t i = 0; i < num_shards; ++i) out.push_back(key(i));
  return out;
}

std::uint32_t shard_count(double total_bytes, double shard_limit_bytes) {
  if (total_bytes <= 0.0 || shard_limit_bytes <= 0.0) return 1;
  return static_cast<std::uint32_t>(
      std::ceil(total_bytes / shard_limit_bytes));
}

}  // namespace everest::data
