// Virtualized data objects (paper Fig. 2: the runtime "manages the data
// movement between the nodes"). A DataObject is the unit the workflow and
// serving layers name; it is split into Shards — the unit of placement,
// replication, caching, and transfer. Objects carry a content version:
// recomputing an object after loss bumps the version, so every replica or
// cache entry of the dead version is invalidated exactly, never a byte
// more (resilience::lineage decides *what* to recompute; versions decide
// *which copies* may still be served).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace everest::data {

/// Stable object identity. The workflow layer uses the producing task's
/// index; the serving layer hashes tenant data keys.
using ObjectId = std::uint64_t;

/// One shard of one object at one content version. This triple is the
/// cache/transfer key: a version bump makes every key of the old content
/// unreachable.
struct ShardKey {
  ObjectId object = 0;
  std::uint32_t shard = 0;
  std::uint64_t version = 0;

  friend bool operator==(const ShardKey& a, const ShardKey& b) {
    return a.object == b.object && a.shard == b.shard &&
           a.version == b.version;
  }
  friend bool operator<(const ShardKey& a, const ShardKey& b) {
    if (a.object != b.object) return a.object < b.object;
    if (a.shard != b.shard) return a.shard < b.shard;
    return a.version < b.version;
  }
  [[nodiscard]] std::string to_string() const;
};

/// FNV-1a over the key triple — used for rendezvous placement and for
/// hashing tenant data keys into ObjectIds. Deterministic across runs.
[[nodiscard]] std::uint64_t hash_key(const ShardKey& key,
                                     std::uint64_t salt = 0);
[[nodiscard]] ObjectId object_id_from_name(const std::string& name);

/// Descriptor of one logical data object (no payload — the SDK simulates
/// movement, not contents).
struct DataObject {
  ObjectId id = 0;
  double total_bytes = 0.0;
  std::uint32_t num_shards = 1;
  /// Content version; bumped when the object is invalidated/recomputed.
  std::uint64_t version = 0;
  /// Producing task/endpoint (debug, lineage display).
  std::string producer;

  /// Bytes of shard `i` (last shard takes the remainder).
  [[nodiscard]] double shard_bytes(std::uint32_t i) const;
  [[nodiscard]] ShardKey key(std::uint32_t shard) const {
    return ShardKey{id, shard, version};
  }
  [[nodiscard]] std::vector<ShardKey> keys() const;
};

/// Splits `total_bytes` into ceil(total/shard_limit) shards of at most
/// `shard_limit_bytes` each (at least one shard, even for empty objects).
[[nodiscard]] std::uint32_t shard_count(double total_bytes,
                                        double shard_limit_bytes);

}  // namespace everest::data
