#include "data/prefetcher.hpp"

#include <algorithm>

namespace everest::data {

Prefetcher::Prefetcher(const std::vector<std::vector<std::size_t>>& deps,
                       PrefetchConfig config)
    : graph_(deps.size()), config_(config) {
  for (std::size_t t = 0; t < deps.size(); ++t) {
    for (std::size_t d : deps[t]) graph_.add_edge(d, t);
  }
}

std::vector<std::size_t> Prefetcher::lookahead(
    const std::vector<char>& done) const {
  return graph_.frontier_within(done, config_.depth);
}

std::vector<PrefetchCandidate> Prefetcher::plan(
    std::size_t completed_task, const std::vector<char>& done,
    const std::vector<int>& in_flight,
    const std::vector<std::size_t>& producer_node,
    const std::vector<double>& output_bytes) const {
  std::vector<PrefetchCandidate> out;
  if (config_.depth <= 0) return out;

  // Only tasks downstream of the completion can have changed state; the
  // wave walk stays global (frontier semantics) but candidates are
  // filtered to descendants-or-self of the completed task's successors.
  std::vector<char> reachable(graph_.num_nodes(), 0);
  {
    std::vector<std::size_t> stack{completed_task};
    while (!stack.empty()) {
      const std::size_t n = stack.back();
      stack.pop_back();
      for (std::size_t s : graph_.successors(n)) {
        if (reachable[s] != 0) continue;
        reachable[s] = 1;
        stack.push_back(s);
      }
    }
  }

  for (std::size_t t : lookahead(done)) {
    if (out.size() >= config_.max_candidates_per_event) break;
    if (reachable[t] == 0 || in_flight[t] != 0) continue;
    // Data gravity: predict the node holding the most already-produced
    // input bytes as the task's future home.
    std::size_t target = kUnplaced;
    double target_bytes = -1.0;
    for (std::size_t d : graph_.predecessors(t)) {
      if (done[d] == 0 || producer_node[d] == kUnplaced) continue;
      if (output_bytes[d] > target_bytes) {
        target_bytes = output_bytes[d];
        target = producer_node[d];
      }
    }
    if (target == kUnplaced) continue;
    for (std::size_t d : graph_.predecessors(t)) {
      if (done[d] == 0 || producer_node[d] == kUnplaced) continue;
      if (producer_node[d] == target || output_bytes[d] <= 0.0) continue;
      out.push_back(PrefetchCandidate{t, d, target});
    }
  }
  return out;
}

}  // namespace everest::data
