#include "data/placement.hpp"

#include <algorithm>
#include <cmath>

namespace everest::data {

PlacementPolicy::PlacementPolicy(std::vector<StorageNode> nodes,
                                 PlacementConfig config)
    : nodes_(std::move(nodes)), config_(std::move(config)) {
  if (config_.replication < 1) config_.replication = 1;
}

double PlacementPolicy::score(const ShardKey& key, std::size_t node) const {
  // Weighted rendezvous (Thaler/Ravishankar with capacity weights):
  // score = -weight / ln(u), u uniform in (0,1) from the pair hash.
  // Larger capacity → stochastically higher scores → more shards.
  const std::uint64_t h =
      hash_key(key, config_.salt ^ (0x9E3779B97F4A7C15ULL * (node + 1)));
  const double u =
      (static_cast<double>(h >> 11) + 1.0) * 0x1.0p-53;  // (0, 1]
  const double weight = std::max(1.0, nodes_[node].capacity_bytes);
  return -weight / std::log(u);
}

Result<std::vector<std::size_t>> PlacementPolicy::place(
    const ShardKey& key, double bytes, std::size_t born_on) {
  std::vector<std::size_t> chosen;
  auto take = [&](std::size_t n) {
    if (std::find(chosen.begin(), chosen.end(), n) != chosen.end()) {
      return false;
    }
    if (!nodes_[n].fits(bytes)) return false;
    nodes_[n].used_bytes += bytes;
    chosen.push_back(n);
    return true;
  };

  // 1. Birthplace first: a task output starts on the node that made it.
  if (born_on != kNowhere && born_on < nodes_.size()) take(born_on);

  // 2. Affinity pin, if the object has one.
  const auto aff = config_.affinity.find(key.object);
  if (aff != config_.affinity.end() && aff->second < nodes_.size() &&
      chosen.size() < static_cast<std::size_t>(config_.replication)) {
    take(aff->second);
  }

  // 3. Rendezvous winners for the remaining replicas.
  std::vector<std::size_t> order(nodes_.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(),
                   [&](std::size_t a, std::size_t b) {
                     return score(key, a) > score(key, b);
                   });
  for (std::size_t n : order) {
    if (chosen.size() >= static_cast<std::size_t>(config_.replication)) break;
    take(n);
  }

  if (chosen.empty()) {
    return ResourceExhausted("no living node can hold shard " +
                             key.to_string() + " (" +
                             std::to_string(bytes) + " bytes)");
  }
  return chosen;
}

void PlacementPolicy::release(std::size_t node, double bytes) {
  if (node >= nodes_.size()) return;
  nodes_[node].used_bytes = std::max(0.0, nodes_[node].used_bytes - bytes);
}

void PlacementPolicy::adopt(std::size_t node, double bytes) {
  if (node >= nodes_.size() || nodes_[node].failed) return;
  nodes_[node].used_bytes += bytes;
}

void PlacementPolicy::set_failed(std::size_t node, bool failed) {
  if (node >= nodes_.size()) return;
  nodes_[node].failed = failed;
  if (failed) nodes_[node].used_bytes = 0.0;
}

}  // namespace everest::data
