#include "data/cache.hpp"

#include <limits>

namespace everest::data {

std::string_view to_string(EvictionPolicy policy) {
  switch (policy) {
    case EvictionPolicy::kLru: return "lru";
    case EvictionPolicy::kLfu: return "lfu";
    case EvictionPolicy::kCostAware: return "cost-aware";
  }
  return "?";
}

bool Cache::lookup(const ShardKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    return false;
  }
  ++stats_.hits;
  it->second.last_use = ++seq_;
  ++it->second.uses;
  return true;
}

std::map<ShardKey, Cache::Entry>::iterator Cache::pick_victim() {
  auto victim = entries_.end();
  double victim_score = std::numeric_limits<double>::infinity();
  std::uint64_t victim_recency = 0;
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    const Entry& e = it->second;
    double s = 0.0;
    switch (config_.policy) {
      case EvictionPolicy::kLru:
        s = static_cast<double>(e.last_use);
        break;
      case EvictionPolicy::kLfu:
        s = static_cast<double>(e.uses);
        break;
      case EvictionPolicy::kCostAware:
        // Cheapest refetch value retained per byte goes first.
        s = e.refetch_cost_us * static_cast<double>(e.uses) /
            (e.bytes > 0.0 ? e.bytes : 1.0);
        break;
    }
    // Strictly-lower score wins; ties break on older recency, which the
    // map's deterministic iteration order already fixes for equal ages.
    if (victim == entries_.end() || s < victim_score ||
        (s == victim_score && e.last_use < victim_recency)) {
      victim = it;
      victim_score = s;
      victim_recency = e.last_use;
    }
  }
  return victim;
}

void Cache::evict_until_fits(double incoming_bytes) {
  while (!entries_.empty() &&
         resident_bytes_ + incoming_bytes > config_.capacity_bytes) {
    auto victim = pick_victim();
    const ShardKey key = victim->first;
    const double bytes = victim->second.bytes;
    const double refetch_cost_us = victim->second.refetch_cost_us;
    resident_bytes_ -= bytes;
    stats_.bytes_evicted += bytes;
    ++stats_.evictions;
    entries_.erase(victim);
    // Notify after the entry is gone: a subscriber that re-enters the
    // cache (it should not, but defensively) sees consistent state.
    if (on_evict_) on_evict_(key, bytes, refetch_cost_us);
  }
}

Status Cache::insert(const ShardKey& key, double bytes,
                     double refetch_cost_us) {
  if (config_.capacity_bytes <= 0.0 || bytes > config_.capacity_bytes) {
    ++stats_.uncacheable;
    return ResourceExhausted("shard " + key.to_string() + " (" +
                             std::to_string(bytes) +
                             " bytes) exceeds cache capacity");
  }
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // Refresh in place (a racing fetch completed twice).
    it->second.last_use = ++seq_;
    it->second.refetch_cost_us = refetch_cost_us;
    return OkStatus();
  }
  evict_until_fits(bytes);
  Entry e;
  e.bytes = bytes;
  e.refetch_cost_us = refetch_cost_us;
  e.last_use = ++seq_;
  e.uses = 1;
  entries_.emplace(key, e);
  resident_bytes_ += bytes;
  ++stats_.inserts;
  return OkStatus();
}

bool Cache::erase(const ShardKey& key) {
  auto it = entries_.find(key);
  if (it == entries_.end()) return false;
  resident_bytes_ -= it->second.bytes;
  entries_.erase(it);
  return true;
}

std::size_t Cache::invalidate_object(ObjectId object, std::uint64_t version) {
  std::size_t dropped = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (it->first.object == object && it->first.version < version) {
      resident_bytes_ -= it->second.bytes;
      it = entries_.erase(it);
      ++dropped;
    } else {
      ++it;
    }
  }
  return dropped;
}

void Cache::clear() {
  entries_.clear();
  resident_bytes_ = 0.0;
}

}  // namespace everest::data
