#include "data/transfer.hpp"

namespace everest::data {

platform::LinkChannel& TransferScheduler::channel(std::size_t src,
                                                  std::size_t dst) {
  const auto pair = std::make_pair(src, dst);
  auto it = channels_.find(pair);
  if (it == channels_.end()) {
    it = channels_
             .emplace(pair, std::make_unique<platform::LinkChannel>(
                                *sim_, link_for_(src, dst)))
             .first;
  }
  return *it->second;
}

double TransferScheduler::estimate_us(double bytes, std::size_t src,
                                      std::size_t dst) {
  return channel(src, dst).model().transfer_us(bytes);
}

void TransferScheduler::fetch(const ShardKey& key, double bytes,
                              std::size_t src, std::size_t dst,
                              platform::Simulator::Callback on_done) {
  const FlightKey fkey{key, dst};
  auto it = inflight_.find(fkey);
  if (it != inflight_.end() && !it->second.abandoned) {
    ++stats_.deduped;
    it->second.waiters.push_back(std::move(on_done));
    return;
  }
  Flight flight;
  flight.waiters.push_back(std::move(on_done));
  inflight_[fkey] = std::move(flight);
  ++stats_.issued;
  stats_.bytes_moved += bytes;
  channel(src, dst).transfer(bytes, [this, fkey] {
    ++stats_.completed;
    auto flight_it = inflight_.find(fkey);
    if (flight_it == inflight_.end()) return;
    // Move out first: a waiter may issue a new fetch for the same key.
    auto waiters = std::move(flight_it->second.waiters);
    const bool abandoned = flight_it->second.abandoned;
    inflight_.erase(flight_it);
    if (abandoned) return;  // destination died while the bytes were in flight
    for (auto& waiter : waiters) waiter();
  });
}

void TransferScheduler::abandon_destination(std::size_t dst) {
  for (auto& [fkey, flight] : inflight_) {
    if (fkey.second == dst) {
      flight.abandoned = true;
      flight.waiters.clear();
    }
  }
}

}  // namespace everest::data
