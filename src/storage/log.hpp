// The crash-recoverable catalog log: a write-ahead log of catalog
// mutations plus a snapshot file, together reconstructing the data
// plane's durable state after any fail-stop.
//
//   dir/catalog.log   — framed LogRecords, append-only, fsync-batched
//   dir/catalog.snap  — Catalog::encode() written atomically
//                       (tmp + fsync + rename)
//
// Checkpointing is two-phase — write_snapshot() then truncate_log() —
// and crashing between the phases is safe by design: the snapshot
// carries last_seq, every record replays idempotently (seq guard), so
// snapshot + untruncated log converges to the same catalog as the log
// alone. Corrupt or torn tail records are skipped and counted
// (`storage.log.corrupt_records`), never fatal; a corrupt snapshot is
// ignored and replay falls back to the full log.
//
// append() is thread-safe (the serving federation logs input stagings
// from worker threads); everything else is setup/recovery-path.
#pragma once

#include <cstdint>
#include <cstdio>
#include <functional>
#include <mutex>
#include <string>

#include "common/status.hpp"
#include "obs/registry.hpp"
#include "storage/catalog.hpp"
#include "storage/format.hpp"

namespace everest::storage {

struct LogConfig {
  /// fsync after this many unsynced appends (group commit). 1 = every
  /// record (safest, slowest); large values batch the flush cost.
  std::size_t sync_every = 64;
};

struct LogStats {
  std::uint64_t appends = 0;
  std::uint64_t syncs = 0;
  std::uint64_t checkpoints = 0;
  double log_bytes = 0.0;  ///< bytes appended since open/truncate
};

/// Replayed state plus the accounting the recovery metrics report.
struct ReplayResult {
  Catalog catalog;
  bool snapshot_loaded = false;
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  ///< seq guard (checkpoint overlap)
  std::uint64_t corrupt_records = 0;  ///< torn/corrupt frames, snapshot incl.
};

class CatalogLog {
 public:
  /// Opens (creating if needed) the log under `dir`. Scans any existing
  /// log tail so sequence numbers continue where the previous life
  /// stopped. `registry` (borrowed, may be null) receives
  /// storage.log.* counters.
  explicit CatalogLog(std::string dir, LogConfig config = {},
                      obs::Registry* registry = nullptr);
  ~CatalogLog();

  CatalogLog(const CatalogLog&) = delete;
  CatalogLog& operator=(const CatalogLog&) = delete;

  /// Stamps the record with the next sequence number, appends, and
  /// group-commits per the sync policy. Returns the stamped seq.
  /// Thread-safe.
  std::uint64_t append(LogRecord record);

  /// Forces buffered records to disk now.
  void sync();

  // ---- checkpointing ------------------------------------------------------

  /// Phase 1: atomically replaces catalog.snap with `catalog`'s
  /// encoding (tmp file + fsync + rename).
  Status write_snapshot(const Catalog& catalog);

  /// Phase 2: truncates the log. Only safe after a successful
  /// write_snapshot of a catalog at least as new as every logged record.
  Status truncate_log();

  /// write_snapshot + truncate_log. A crash between the phases is the
  /// torn window replay is built to converge through.
  Status checkpoint(const Catalog& catalog);

  // ---- recovery -----------------------------------------------------------

  /// Rebuilds the catalog from snapshot + log in `dir`. Static: usable
  /// before (or without) an open CatalogLog on the same directory.
  static ReplayResult replay(const std::string& dir,
                             obs::Registry* registry = nullptr);

  /// Streams every decodable log record (after the snapshot barrier is
  /// NOT applied — callers see the raw append order). Returns damaged
  /// frames encountered. Used by warm-restart paths that care about
  /// ordering, not folding.
  static std::uint64_t replay_records(
      const std::string& dir,
      const std::function<void(const LogRecord&)>& fn);

  [[nodiscard]] LogStats stats() const;
  [[nodiscard]] std::uint64_t next_seq() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  static std::string log_path(const std::string& dir);
  static std::string snapshot_path(const std::string& dir);

 private:
  void open_file();

  std::string dir_;
  LogConfig config_;

  mutable std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::uint64_t next_seq_ = 1;
  std::size_t unsynced_ = 0;
  LogStats stats_;

  obs::Counter* ctr_appends_ = nullptr;
  obs::Counter* ctr_syncs_ = nullptr;
  obs::Counter* ctr_checkpoints_ = nullptr;
};

}  // namespace everest::storage
