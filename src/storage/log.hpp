// The crash-recoverable catalog log: a write-ahead log of catalog
// mutations plus a snapshot file, together reconstructing the data
// plane's durable state after any fail-stop.
//
//   dir/catalog.log   — framed LogRecords, append-only, fsync-batched
//   dir/catalog.snap  — Catalog::encode() written atomically
//                       (tmp + fsync + rename)
//
// Checkpointing is two-phase — write_snapshot() then truncate_log() —
// and crashing between the phases is safe by design: the snapshot
// carries last_seq, every record replays idempotently (seq guard), so
// snapshot + untruncated log converges to the same catalog as the log
// alone. Corrupt or torn tail records are skipped and counted
// (`storage.log.corrupt_records`), never fatal; a corrupt snapshot is
// ignored and replay falls back to the full log.
//
// All file I/O goes through an injectable storage::Env with every
// result checked. A failed write degrades instead of lying: the frame
// is retained in a pending queue, the ack carries the error, and the
// log self-heals when I/O recovers — truncate back to the last fully
// committed byte (cutting any short-write torn frame), re-append the
// pending frames, fsync. A successful checkpoint also clears the
// backlog, because the snapshot (written from the in-memory mirror)
// already folds every stamped record.
//
// append() is thread-safe (the serving federation logs input stagings
// from worker threads); everything else is setup/recovery-path.
#pragma once

#include <cstdint>
#include <functional>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/registry.hpp"
#include "storage/catalog.hpp"
#include "storage/env.hpp"
#include "storage/format.hpp"

namespace everest::storage {

struct LogConfig {
  /// fsync after this many unsynced appends (group commit). 1 = every
  /// record (safest, slowest); large values batch the flush cost.
  std::size_t sync_every = 64;
};

struct LogStats {
  std::uint64_t appends = 0;
  std::uint64_t syncs = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t io_errors = 0;   ///< failed writes/syncs/opens
  std::uint64_t recoveries = 0;  ///< degraded → healthy transitions
  std::uint64_t pending_records = 0;  ///< frames awaiting a healthy disk
  double log_bytes = 0.0;  ///< bytes durably appended since open/truncate
};

/// Replayed state plus the accounting the recovery metrics report.
struct ReplayResult {
  Catalog catalog;
  bool snapshot_loaded = false;
  std::uint64_t records_applied = 0;
  std::uint64_t records_skipped = 0;  ///< seq guard (checkpoint overlap)
  std::uint64_t corrupt_records = 0;  ///< torn/corrupt frames, snapshot incl.
};

/// Outcome of one append. The sequence number is ALWAYS stamped and
/// valid (the in-memory catalog mirror consumes it even while the disk
/// is failing); `durable` reports whether the frame reached the file or
/// is queued behind an I/O fault, pending recovery or a checkpoint.
struct AppendAck {
  std::uint64_t seq = 0;
  Status durable;
  [[nodiscard]] bool ok() const { return durable.ok(); }
};

class CatalogLog {
 public:
  /// Opens (creating if needed) the log under `dir`. Scans any existing
  /// log tail so sequence numbers continue where the previous life
  /// stopped. `registry` (borrowed, may be null) receives
  /// storage.log.* counters. `env` (borrowed, may be null = posix) is
  /// the filesystem boundary — inject a FaultEnv to script media
  /// faults.
  explicit CatalogLog(std::string dir, LogConfig config = {},
                      obs::Registry* registry = nullptr, Env* env = nullptr);
  ~CatalogLog();

  CatalogLog(const CatalogLog&) = delete;
  CatalogLog& operator=(const CatalogLog&) = delete;

  /// Stamps the record with the next sequence number, appends, and
  /// group-commits per the sync policy. Thread-safe. On I/O failure the
  /// frame is queued and the ack's `durable` carries the error; the
  /// caller keeps the seq (the mirror must not diverge from the stamp
  /// stream) and can surface the degradation.
  AppendAck append(LogRecord record);

  /// Forces buffered records to disk now. While degraded this is also
  /// the self-healing probe: truncate to the last committed byte,
  /// re-append the pending frames, fsync. Returns the current disk
  /// health (OK = everything acked so far is durable).
  Status sync();

  /// True while appended frames are queued behind an I/O fault.
  [[nodiscard]] bool degraded() const;

  // ---- checkpointing ------------------------------------------------------

  /// Phase 1: atomically replaces catalog.snap with `catalog`'s
  /// encoding (tmp file + fsync + rename).
  Status write_snapshot(const Catalog& catalog);

  /// Phase 2: truncates the log. Only safe after a successful
  /// write_snapshot of a catalog at least as new as every logged record
  /// — which is also why it clears the pending backlog: those stamped
  /// records are folded into the snapshot already.
  Status truncate_log();

  /// write_snapshot + truncate_log. A crash between the phases is the
  /// torn window replay is built to converge through.
  Status checkpoint(const Catalog& catalog);

  // ---- recovery -----------------------------------------------------------

  /// Rebuilds the catalog from snapshot + log in `dir`. Static: usable
  /// before (or without) an open CatalogLog on the same directory.
  static ReplayResult replay(const std::string& dir,
                             obs::Registry* registry = nullptr,
                             Env* env = nullptr);

  /// Streams every decodable log record (after the snapshot barrier is
  /// NOT applied — callers see the raw append order). Returns damaged
  /// frames encountered. Used by warm-restart paths that care about
  /// ordering, not folding.
  static std::uint64_t replay_records(
      const std::string& dir, const std::function<void(const LogRecord&)>& fn,
      Env* env = nullptr);

  [[nodiscard]] LogStats stats() const;
  [[nodiscard]] std::uint64_t next_seq() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }

  static std::string log_path(const std::string& dir);
  static std::string snapshot_path(const std::string& dir);

 private:
  void open_file_locked();
  /// Group-commit flush; while degraded, attempts self-healing first.
  Status sync_locked();
  /// Truncate-to-committed + replay pending + reopen. OK = healthy.
  Status recover_io_locked();
  void note_io_error_locked(const Status& status);

  std::string dir_;
  LogConfig config_;
  Env* env_;

  mutable std::mutex mu_;
  std::unique_ptr<WritableFile> file_;
  std::uint64_t next_seq_ = 1;
  std::size_t unsynced_ = 0;
  /// Bytes known to be fully and correctly appended to catalog.log —
  /// the truncation point that cuts short-write torn frames on heal.
  std::uint64_t committed_bytes_ = 0;
  /// Encoded frames stamped but not yet on disk (I/O fault backlog).
  std::vector<std::string> pending_;
  Status last_error_;
  LogStats stats_;

  obs::Counter* ctr_appends_ = nullptr;
  obs::Counter* ctr_syncs_ = nullptr;
  obs::Counter* ctr_checkpoints_ = nullptr;
  obs::Counter* ctr_io_errors_ = nullptr;
  obs::Counter* ctr_recoveries_ = nullptr;
  obs::Gauge* gauge_degraded_ = nullptr;
};

}  // namespace everest::storage
