// The materialized catalog: what the write-ahead log folds up to. It
// mirrors exactly the data plane's durable state — object descriptors,
// RAM replica placements per shard, and disk-tier residency per shard —
// so that replaying snapshot + log after a crash rebuilds placement and
// shard maps without recomputing lineage.
//
// Mutations arrive as LogRecords in sequence order. Replay is idempotent
// by construction: a record whose seq is not beyond last_seq() is
// skipped, which is what makes the crash-mid-checkpoint window safe (the
// snapshot was written but the log not yet truncated, so every snapshot
// record is seen a second time during replay and ignored).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/object.hpp"
#include "storage/format.hpp"

namespace everest::storage {

/// Catalog view of one data object (no payload, no transient cache
/// state — only what must survive a restart).
struct ObjectMeta {
  double bytes = 0.0;
  std::uint32_t num_shards = 1;
  std::uint64_t version = 0;

  friend bool operator==(const ObjectMeta& a, const ObjectMeta& b) {
    return a.bytes == b.bytes && a.num_shards == b.num_shards &&
           a.version == b.version;
  }
};

/// Disk-tier residency of one shard: which nodes' segment stores hold a
/// copy, and how large it is.
struct DiskResidency {
  std::set<std::uint64_t> nodes;
  double bytes = 0.0;

  friend bool operator==(const DiskResidency& a, const DiskResidency& b) {
    return a.nodes == b.nodes && a.bytes == b.bytes;
  }
};

class Catalog {
 public:
  /// Applies one mutation. Returns false (and changes nothing) when the
  /// record's seq is not beyond last_seq() — the replay-idempotence
  /// guard. Records with seq 0 are rejected (append stamps first).
  bool apply(const LogRecord& record);

  [[nodiscard]] std::uint64_t last_seq() const { return last_seq_; }

  [[nodiscard]] const std::map<std::uint64_t, ObjectMeta>& objects() const {
    return objects_;
  }
  /// RAM replica holders per shard, placement order (fetch preference).
  [[nodiscard]] const std::map<data::ShardKey, std::vector<std::uint64_t>>&
  ram_replicas() const {
    return ram_;
  }
  [[nodiscard]] const std::map<data::ShardKey, DiskResidency>& disk() const {
    return disk_;
  }

  [[nodiscard]] bool empty() const {
    return objects_.empty() && ram_.empty() && disk_.empty();
  }

  // ---- snapshot -----------------------------------------------------------

  /// Canonical byte encoding (magic, last_seq, sorted maps, trailing
  /// CRC-32 over everything before it). Two catalogs are byte-identical
  /// iff their durable state is.
  [[nodiscard]] std::string encode() const;

  /// Rejects truncated or bit-flipped snapshots via the trailing CRC.
  static Result<Catalog> decode(std::string_view data);

  /// FNV-1a over encode() minus nothing — a cheap equality token for the
  /// "zero catalog divergence after replay" checks.
  [[nodiscard]] std::uint64_t fingerprint() const;

  /// Human-oriented one-line summary (object/replica/disk-entry counts).
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const Catalog& a, const Catalog& b) {
    return a.last_seq_ == b.last_seq_ && a.objects_ == b.objects_ &&
           a.ram_ == b.ram_ && a.disk_ == b.disk_;
  }

 private:
  /// Drops every per-shard entry of `object` older than `version`.
  void drop_stale(std::uint64_t object, std::uint64_t version);

  std::map<std::uint64_t, ObjectMeta> objects_;
  std::map<data::ShardKey, std::vector<std::uint64_t>> ram_;
  std::map<data::ShardKey, DiskResidency> disk_;
  std::uint64_t last_seq_ = 0;
};

}  // namespace everest::storage
