// FaultEnv — a seed-deterministic fault-injecting storage::Env. Wraps a
// base Env (usually Env::posix()) and scripts media faults per
// (path substring, operation, nth matching call):
//
//   * kDiskIoError   — the call fails with UNAVAILABLE ("EIO"); writes
//     may be short (a magnitude fraction of the data lands first, the
//     torn-tail case replay must truncate through);
//   * kDiskIoFull    — writes fail with RESOURCE_EXHAUSTED ("ENOSPC"),
//     the graceful-degradation trigger;
//   * kDiskIoCorrupt — the call succeeds but one deterministically
//     chosen bit of the data is flipped (silent corruption, caught by
//     frame CRCs and the scrubber);
//   * kDiskIoSlow    — fsync succeeds but a modeled delay is recorded
//     (slow_sync_us accumulates; simulations charge it to their clock).
//
// Rules can be armed directly (`inject`) or derived from the standing
// resilience::FaultPlan window machinery (`arm_from_plan`), so chaos
// timelines schedule disk faults alongside crashes and partitions. The
// same seed + the same rules reproduce the same injected-event journal
// byte for byte — the determinism the TEST_P suites pin.
//
// Thread-compat: call sites in this repo drive one store per thread;
// the injection bookkeeping is guarded by a mutex so concurrent
// CatalogLog appends through a shared FaultEnv stay well-defined.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "resilience/fault_plan.hpp"
#include "storage/env.hpp"

namespace everest::storage {

/// Which Env entry point a rule intercepts.
enum class IoOp : std::uint8_t {
  kOpen = 0,
  kRead,
  kWrite,
  kSync,
  kRename,
  kRemove,
};

std::string_view to_string(IoOp op);

/// One armed injection: fault the `count` matching calls after skipping
/// `after_calls` of them. An empty `path_substr` matches every path.
struct FaultRule {
  std::string path_substr;
  IoOp op = IoOp::kWrite;
  resilience::FaultKind kind = resilience::FaultKind::kDiskIoError;
  std::uint64_t after_calls = 0;
  std::uint64_t count = std::uint64_t(-1);
  /// kDiskIoError/kDiskIoFull: fraction of the data written before the
  /// failure (short write; >=1 writes nothing). kDiskIoCorrupt: flip
  /// probability per call. kDiskIoSlow: extra fsync µs.
  double magnitude = 1.0;
  /// Internal: true when arm_from_plan owns this rule's lifetime.
  bool from_plan = false;
};

struct FaultEnvStats {
  std::uint64_t calls = 0;            ///< Env ops seen (all, faulted or not)
  std::uint64_t injected_errors = 0;  ///< EIO + ENOSPC failures returned
  std::uint64_t short_writes = 0;     ///< failed writes that left a prefix
  std::uint64_t bit_flips = 0;        ///< silent corruptions applied
  std::uint64_t slow_syncs = 0;
  double slow_sync_us = 0.0;          ///< modeled extra fsync time
};

class FaultEnv final : public Env {
 public:
  explicit FaultEnv(Env* base, std::uint64_t seed = 42);

  /// Arms one rule. Rules are evaluated in arm order; the first match
  /// whose window (after_calls, count) covers the call fires.
  void inject(FaultRule rule);
  /// Drops every armed rule (manual and plan-derived) and the journal.
  void clear();

  /// Re-arms the plan-derived rules from every kDiskIo* window of
  /// `plan` covering (`worker`, `now_us`). Manual rules are kept. Call
  /// whenever the simulation clock advances past fault boundaries —
  /// the standing-window analogue of FaultPlan::severity().
  void arm_from_plan(const resilience::FaultPlan& plan, int worker,
                     double now_us, const std::string& path_substr = "");

  /// Deterministic injected-event log, one line per fault applied.
  [[nodiscard]] std::vector<std::string> journal() const;
  [[nodiscard]] FaultEnvStats stats() const;

  // ---- Env ----
  Result<std::unique_ptr<WritableFile>> open_append(
      const std::string& path) override;
  Result<std::unique_ptr<WritableFile>> open_trunc(
      const std::string& path) override;
  Result<std::string> read_file(const std::string& path) override;
  Status create_dirs(const std::string& path) override;
  Status rename_file(const std::string& from, const std::string& to) override;
  Status remove_file(const std::string& path) override;
  Status truncate_file(const std::string& path, std::uint64_t size) override;
  Result<std::vector<std::string>> list_dir(const std::string& path) override;
  Result<std::uint64_t> free_bytes(const std::string& path) override;
  bool file_exists(const std::string& path) override;

  // ---- internal (used by the wrapped file handles; not an API) ----

  /// The fault (if any) armed for this call; bumps per-rule call counts.
  struct Decision {
    bool fire = false;
    resilience::FaultKind kind = resilience::FaultKind::kDiskIoError;
    double magnitude = 1.0;
  };
  Decision decide(const std::string& path, IoOp op);
  void record(const std::string& path, IoOp op, resilience::FaultKind kind,
              const std::string& detail);
  /// Flips one seeded-random bit of `data` in place (no-op when empty).
  void flip_bit(std::string& data);
  void note_short_write();
  void note_slow_sync(double extra_us);

 private:
  Env* base_;
  mutable std::mutex mu_;
  Rng rng_;
  std::vector<FaultRule> rules_;
  std::vector<std::uint64_t> rule_calls_;  ///< matching calls seen per rule
  std::vector<std::string> journal_;
  FaultEnvStats stats_;
};

}  // namespace everest::storage
