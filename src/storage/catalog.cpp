#include "storage/catalog.hpp"

#include <algorithm>
#include <sstream>

namespace everest::storage {

namespace {
constexpr std::uint32_t kSnapshotMagic = 0x45565343u;  // "EVSC"
constexpr std::uint32_t kSnapshotVersion = 1;
}  // namespace

bool Catalog::apply(const LogRecord& record) {
  if (record.seq == 0 || record.seq <= last_seq_) return false;
  last_seq_ = record.seq;
  switch (record.type) {
    case LogRecordType::kPut: {
      // Fresh content supersedes every older copy, RAM and disk alike.
      drop_stale(record.object, record.version);
      ObjectMeta& meta = objects_[record.object];
      meta.bytes = record.bytes;
      meta.num_shards = record.shard;  // kPut reuses the field
      meta.version = record.version;
      break;
    }
    case LogRecordType::kPlace: {
      std::vector<std::uint64_t>& holders = ram_[record.key()];
      if (std::find(holders.begin(), holders.end(), record.node) ==
          holders.end()) {
        holders.push_back(record.node);
      }
      break;
    }
    case LogRecordType::kRelease: {
      auto it = ram_.find(record.key());
      if (it != ram_.end()) {
        auto& holders = it->second;
        holders.erase(std::remove(holders.begin(), holders.end(), record.node),
                      holders.end());
        if (holders.empty()) ram_.erase(it);
      }
      break;
    }
    case LogRecordType::kInvalidate: {
      drop_stale(record.object, record.version);
      auto it = objects_.find(record.object);
      if (it != objects_.end()) it->second.version = record.version;
      break;
    }
    case LogRecordType::kDemote: {
      DiskResidency& res = disk_[record.key()];
      res.nodes.insert(record.node);
      res.bytes = record.bytes;
      break;
    }
    case LogRecordType::kDiskErase: {
      auto it = disk_.find(record.key());
      if (it != disk_.end()) {
        it->second.nodes.erase(record.node);
        if (it->second.nodes.empty()) disk_.erase(it);
      }
      break;
    }
    case LogRecordType::kPromote:
    case LogRecordType::kSeal:
      // Advisory: sequence advances, durable state does not.
      break;
  }
  return true;
}

void Catalog::drop_stale(std::uint64_t object, std::uint64_t version) {
  for (auto it = ram_.lower_bound(data::ShardKey{object, 0, 0});
       it != ram_.end() && it->first.object == object;) {
    it = it->first.version < version ? ram_.erase(it) : std::next(it);
  }
  for (auto it = disk_.lower_bound(data::ShardKey{object, 0, 0});
       it != disk_.end() && it->first.object == object;) {
    it = it->first.version < version ? disk_.erase(it) : std::next(it);
  }
}

std::string Catalog::encode() const {
  std::string out;
  put_u32(out, kSnapshotMagic);
  put_u32(out, kSnapshotVersion);
  put_u64(out, last_seq_);

  put_u64(out, objects_.size());
  for (const auto& [id, meta] : objects_) {
    put_u64(out, id);
    put_f64(out, meta.bytes);
    put_u32(out, meta.num_shards);
    put_u64(out, meta.version);
  }

  std::uint64_t ram_entries = 0;
  for (const auto& [key, holders] : ram_) ram_entries += holders.size();
  put_u64(out, ram_entries);
  for (const auto& [key, holders] : ram_) {
    for (std::uint64_t node : holders) {
      put_u64(out, key.object);
      put_u32(out, key.shard);
      put_u64(out, key.version);
      put_u64(out, node);
    }
  }

  std::uint64_t disk_entries = 0;
  for (const auto& [key, res] : disk_) disk_entries += res.nodes.size();
  put_u64(out, disk_entries);
  for (const auto& [key, res] : disk_) {
    for (std::uint64_t node : res.nodes) {
      put_u64(out, key.object);
      put_u32(out, key.shard);
      put_u64(out, key.version);
      put_u64(out, node);
      put_f64(out, res.bytes);
    }
  }

  put_u32(out, crc32(out));
  return out;
}

Result<Catalog> Catalog::decode(std::string_view data) {
  if (data.size() < 4) return DataLoss("snapshot shorter than its checksum");
  const std::string_view body = data.substr(0, data.size() - 4);
  ByteReader tail(data.substr(data.size() - 4));
  if (tail.u32() != crc32(body)) {
    return DataLoss("snapshot checksum mismatch");
  }

  ByteReader r(body);
  if (r.u32() != kSnapshotMagic) return DataLoss("bad snapshot magic");
  if (r.u32() != kSnapshotVersion) return DataLoss("unknown snapshot version");

  Catalog catalog;
  catalog.last_seq_ = r.u64();

  const std::uint64_t num_objects = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < num_objects; ++i) {
    const std::uint64_t id = r.u64();
    ObjectMeta meta;
    meta.bytes = r.f64();
    meta.num_shards = r.u32();
    meta.version = r.u64();
    catalog.objects_[id] = meta;
  }

  const std::uint64_t ram_entries = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < ram_entries; ++i) {
    data::ShardKey key;
    key.object = r.u64();
    key.shard = r.u32();
    key.version = r.u64();
    catalog.ram_[key].push_back(r.u64());
  }

  const std::uint64_t disk_entries = r.u64();
  for (std::uint64_t i = 0; r.ok() && i < disk_entries; ++i) {
    data::ShardKey key;
    key.object = r.u64();
    key.shard = r.u32();
    key.version = r.u64();
    const std::uint64_t node = r.u64();
    const double bytes = r.f64();
    DiskResidency& res = catalog.disk_[key];
    res.nodes.insert(node);
    res.bytes = bytes;
  }

  if (!r.ok() || r.remaining() != 0) {
    return DataLoss("snapshot body malformed");
  }
  return catalog;
}

std::uint64_t Catalog::fingerprint() const {
  const std::string bytes = encode();
  std::uint64_t h = 14695981039346656037ULL;
  for (unsigned char c : bytes) {
    h ^= c;
    h *= 1099511628211ULL;
  }
  return h;
}

std::string Catalog::to_string() const {
  std::size_t ram_entries = 0;
  for (const auto& [key, holders] : ram_) ram_entries += holders.size();
  std::size_t disk_entries = 0;
  for (const auto& [key, res] : disk_) disk_entries += res.nodes.size();
  std::ostringstream os;
  os << "objects=" << objects_.size() << " ram=" << ram_entries
     << " disk=" << disk_entries << " seq=" << last_seq_;
  return os.str();
}

}  // namespace everest::storage
