// One node's disk tier: a SegmentStore for what is resident plus a
// LinkChannel-modeled I/O path for how long reads and writes take. The
// byte-bounded RAM cache above evicts cold shards *into* this tier
// (demotion) and the data plane re-reads them *out of* it (promotion)
// before ever declaring a remote miss — turning "working set must fit in
// cache" into "working set must fit on disk".
//
// Demotion writes are charged asynchronously (the evicting read does not
// wait for them); promotion reads deliver through a simulator callback
// after the modeled NVMe latency + bandwidth time, sharing the device
// fairly with concurrent I/O exactly like the network links do.
//
// Fail-stop: a node crash takes the tier offline but does NOT erase it —
// local disks survive process death. restore (or a full recovery replay)
// brings the same contents back, which is what makes restart-to-warm
// cheaper than recomputing lineage.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "common/status.hpp"
#include "data/object.hpp"
#include "obs/registry.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"
#include "storage/segment.hpp"

namespace everest::storage {

struct TierConfig {
  /// Logical capacity of the tier; 0 disables it.
  double capacity_bytes = 0.0;
  /// Device model the modeled reads/writes are charged through.
  platform::LinkModel io = platform::LinkModel::local_nvme();
  /// Segment layout under this tier.
  SegmentConfig segment;
  /// Segment-file directory; empty = in-memory (pure simulation).
  std::string dir;
  /// Filesystem boundary for the segment store (null = posix). Inject a
  /// FaultEnv to script media faults against this tier.
  Env* env = nullptr;
};

struct TierStats {
  std::uint64_t demotions = 0;   ///< shards written on eviction
  std::uint64_t promotions = 0;  ///< shards read back on demand
  std::uint64_t rejected = 0;    ///< demotions refused (full/offline/dup)
  std::uint64_t adopted = 0;     ///< entries re-seeded by recovery
  double bytes_written = 0.0;
  double bytes_read = 0.0;
};

/// Single-owner (driven by the data plane's simulation).
class DiskTier {
 public:
  DiskTier(platform::Simulator& sim, std::size_t node, TierConfig config,
           obs::Registry* registry = nullptr);

  /// Accepts an evicted shard: indexes it in the segment store and
  /// charges the modeled write in the background. RESOURCE_EXHAUSTED
  /// when it cannot fit even after compaction, FAILED_PRECONDITION when
  /// offline, ALREADY_EXISTS for a duplicate (not an error for callers:
  /// the copy is already safe).
  Status demote(const data::ShardKey& key, double bytes);

  [[nodiscard]] bool resident(const data::ShardKey& key) const {
    return !offline_ && store_.contains(key);
  }

  /// Modeled read of a resident shard; `on_read` fires as a simulator
  /// event when the bytes are up. NOT_FOUND / FAILED_PRECONDITION are
  /// returned synchronously and `on_read` never fires.
  Status promote(const data::ShardKey& key,
                 platform::Simulator::Callback on_read);

  /// Idle-device estimate of reading `bytes` (feeds cache refetch costs).
  [[nodiscard]] double read_estimate_us(double bytes) const {
    return config_.io.transfer_us(bytes);
  }

  bool erase(const data::ShardKey& key);
  std::size_t invalidate_object(data::ObjectId object, std::uint64_t version);

  /// Recovery re-seed: index a shard without charging I/O (the bytes are
  /// already on disk; only the modeled view is being rebuilt).
  void adopt(const data::ShardKey& key, double bytes);

  /// Fail-stop boundary: offline tiers refuse demote/promote but keep
  /// their contents (disks survive crashes).
  void set_offline(bool offline) { offline_ = offline; }
  [[nodiscard]] bool offline() const { return offline_; }

  /// Media degradation (ENOSPC/EIO on the segment files): the tier
  /// still serves reads of what it holds, but demotions are refused
  /// until try_resume() finds the disk healthy again.
  [[nodiscard]] bool media_degraded() const { return store_.read_only(); }
  /// Probes the medium (new segment + queued tombstones). OK = writes
  /// accepted again; no-op OK when the tier was never degraded.
  Status try_resume() { return store_.retry_io(); }

  [[nodiscard]] double resident_bytes() const { return store_.live_bytes(); }
  [[nodiscard]] double capacity_bytes() const { return config_.capacity_bytes; }
  [[nodiscard]] const TierStats& stats() const { return stats_; }
  [[nodiscard]] SegmentStore& store() { return store_; }
  [[nodiscard]] const SegmentStore& store() const { return store_; }
  [[nodiscard]] std::size_t node() const { return node_; }

 private:
  std::size_t node_;
  TierConfig config_;
  SegmentStore store_;
  platform::LinkChannel channel_;
  bool offline_ = false;
  TierStats stats_;

  obs::Counter* ctr_demotions_ = nullptr;
  obs::Counter* ctr_promotions_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
};

}  // namespace everest::storage
