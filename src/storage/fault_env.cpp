#include "storage/fault_env.hpp"

#include <algorithm>
#include <utility>

namespace everest::storage {

using resilience::FaultKind;

std::string_view to_string(IoOp op) {
  switch (op) {
    case IoOp::kOpen: return "open";
    case IoOp::kRead: return "read";
    case IoOp::kWrite: return "write";
    case IoOp::kSync: return "sync";
    case IoOp::kRename: return "rename";
    case IoOp::kRemove: return "remove";
  }
  return "?";
}

namespace {

/// Journal/display name: the path's final component (temp-dir prefixes
/// would make otherwise-identical runs diverge byte-wise).
std::string leaf(const std::string& path) {
  const std::size_t pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

bool is_disk_fault(FaultKind kind) {
  return kind == FaultKind::kDiskIoError || kind == FaultKind::kDiskIoFull ||
         kind == FaultKind::kDiskIoCorrupt || kind == FaultKind::kDiskIoSlow;
}

Status injected_status(FaultKind kind, const std::string& path, IoOp op) {
  const std::string what = std::string(to_string(op)) + " " + leaf(path);
  if (kind == FaultKind::kDiskIoFull) {
    return ResourceExhausted("injected ENOSPC: " + what);
  }
  return Unavailable("injected EIO: " + what);
}

/// Pass-through file that consults the FaultEnv before every write/sync.
class FaultFile final : public WritableFile {
 public:
  FaultFile(FaultEnv* env, std::unique_ptr<WritableFile> base,
            std::string path)
      : env_(env), base_(std::move(base)), path_(std::move(path)) {}

  Status append(std::string_view data) override {
    const FaultEnv::Decision d = env_->decide(path_, IoOp::kWrite);
    if (!d.fire) return base_->append(data);
    if (d.kind == FaultKind::kDiskIoCorrupt) {
      std::string damaged(data);
      env_->flip_bit(damaged);
      env_->record(path_, IoOp::kWrite, d.kind, "bit-flip");
      return base_->append(damaged);  // silent: the write "succeeds"
    }
    if (d.kind == FaultKind::kDiskIoSlow) {
      env_->record(path_, IoOp::kWrite, d.kind, "slow");
      return base_->append(data);
    }
    // EIO/ENOSPC, optionally leaving a short-write prefix behind —
    // exactly the torn frame a crashed append would leave.
    if (d.magnitude > 0.0 && d.magnitude < 1.0 && !data.empty()) {
      const auto prefix = static_cast<std::size_t>(
          d.magnitude * static_cast<double>(data.size()));
      if (prefix > 0) {
        (void)base_->append(data.substr(0, prefix));
        env_->note_short_write();
      }
    }
    env_->record(path_, IoOp::kWrite, d.kind, "fail");
    return injected_status(d.kind, path_, IoOp::kWrite);
  }

  Status sync() override {
    const FaultEnv::Decision d = env_->decide(path_, IoOp::kSync);
    if (d.fire) {
      if (d.kind == FaultKind::kDiskIoSlow) {
        env_->note_slow_sync(d.magnitude);
        env_->record(path_, IoOp::kSync, d.kind, "slow");
        return base_->sync();
      }
      if (d.kind != FaultKind::kDiskIoCorrupt) {
        env_->record(path_, IoOp::kSync, d.kind, "fail");
        return injected_status(d.kind, path_, IoOp::kSync);
      }
    }
    return base_->sync();
  }

  Status close() override { return base_->close(); }

 private:
  FaultEnv* env_;
  std::unique_ptr<WritableFile> base_;
  std::string path_;
};

}  // namespace

FaultEnv::FaultEnv(Env* base, std::uint64_t seed)
    : base_(base), rng_(seed ^ 0xD15CF417ULL) {}

void FaultEnv::inject(FaultRule rule) {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.push_back(std::move(rule));
  rule_calls_.push_back(0);
}

void FaultEnv::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  rules_.clear();
  rule_calls_.clear();
  journal_.clear();
}

void FaultEnv::arm_from_plan(const resilience::FaultPlan& plan, int worker,
                             double now_us, const std::string& path_substr) {
  std::lock_guard<std::mutex> lock(mu_);
  // Plan-derived rules are standing windows: rebuild them wholesale for
  // the current clock, keeping manually injected rules (and their call
  // counts) untouched.
  for (std::size_t i = rules_.size(); i-- > 0;) {
    if (rules_[i].from_plan) {
      rules_.erase(rules_.begin() + static_cast<std::ptrdiff_t>(i));
      rule_calls_.erase(rule_calls_.begin() + static_cast<std::ptrdiff_t>(i));
    }
  }
  auto arm = [&](IoOp op, FaultKind kind, double magnitude) {
    rules_.push_back({path_substr, op, kind, 0, std::uint64_t(-1), magnitude,
                      /*from_plan=*/true});
    rule_calls_.push_back(0);
  };
  for (const resilience::FaultEvent& e : plan.events()) {
    if (!is_disk_fault(e.kind) || !e.covers(worker, now_us)) continue;
    switch (e.kind) {
      case FaultKind::kDiskIoError:
        arm(IoOp::kWrite, e.kind, e.magnitude);
        arm(IoOp::kSync, e.kind, e.magnitude);
        break;
      case FaultKind::kDiskIoFull:
        arm(IoOp::kWrite, e.kind, e.magnitude);
        break;
      case FaultKind::kDiskIoCorrupt:
        arm(IoOp::kWrite, e.kind, e.magnitude);
        arm(IoOp::kRead, e.kind, e.magnitude);
        break;
      case FaultKind::kDiskIoSlow:
        arm(IoOp::kSync, e.kind, e.magnitude);
        break;
      default:
        break;
    }
  }
}

std::vector<std::string> FaultEnv::journal() const {
  std::lock_guard<std::mutex> lock(mu_);
  return journal_;
}

FaultEnvStats FaultEnv::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

FaultEnv::Decision FaultEnv::decide(const std::string& path, IoOp op) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.calls;
  Decision out;
  for (std::size_t i = 0; i < rules_.size(); ++i) {
    const FaultRule& rule = rules_[i];
    if (rule.op != op) continue;
    if (!rule.path_substr.empty() &&
        path.find(rule.path_substr) == std::string::npos) {
      continue;
    }
    const std::uint64_t n = rule_calls_[i]++;
    if (out.fire || n < rule.after_calls ||
        n - rule.after_calls >= rule.count) {
      continue;
    }
    if (rule.kind == FaultKind::kDiskIoCorrupt && rule.magnitude < 1.0 &&
        rng_.uniform() >= rule.magnitude) {
      continue;  // seeded coin: this op escapes corruption
    }
    out.fire = true;
    out.kind = rule.kind;
    out.magnitude = rule.magnitude;
  }
  return out;
}

void FaultEnv::record(const std::string& path, IoOp op, FaultKind kind,
                      const std::string& detail) {
  std::lock_guard<std::mutex> lock(mu_);
  if (kind == FaultKind::kDiskIoError || kind == FaultKind::kDiskIoFull) {
    ++stats_.injected_errors;
  }
  journal_.push_back("inject op=" + std::string(to_string(op)) +
                     " path=" + leaf(path) + " kind=" +
                     std::string(resilience::to_string(kind)) + " " + detail);
}

void FaultEnv::flip_bit(std::string& data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (data.empty()) return;
  const std::uint64_t bit = rng_.uniform_int(data.size() * 8);
  data[bit / 8] = static_cast<char>(data[bit / 8] ^ (1u << (bit % 8)));
  ++stats_.bit_flips;
}

void FaultEnv::note_short_write() {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.short_writes;
}

void FaultEnv::note_slow_sync(double extra_us) {
  std::lock_guard<std::mutex> lock(mu_);
  ++stats_.slow_syncs;
  stats_.slow_sync_us += extra_us;
}

Result<std::unique_ptr<WritableFile>> FaultEnv::open_append(
    const std::string& path) {
  const Decision d = decide(path, IoOp::kOpen);
  if (d.fire && d.kind != FaultKind::kDiskIoCorrupt &&
      d.kind != FaultKind::kDiskIoSlow) {
    record(path, IoOp::kOpen, d.kind, "fail");
    return injected_status(d.kind, path, IoOp::kOpen);
  }
  auto base = base_->open_append(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(base).value(), path));
}

Result<std::unique_ptr<WritableFile>> FaultEnv::open_trunc(
    const std::string& path) {
  const Decision d = decide(path, IoOp::kOpen);
  if (d.fire && d.kind != FaultKind::kDiskIoCorrupt &&
      d.kind != FaultKind::kDiskIoSlow) {
    record(path, IoOp::kOpen, d.kind, "fail");
    return injected_status(d.kind, path, IoOp::kOpen);
  }
  auto base = base_->open_trunc(path);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultFile(this, std::move(base).value(), path));
}

Result<std::string> FaultEnv::read_file(const std::string& path) {
  const Decision d = decide(path, IoOp::kRead);
  if (d.fire && (d.kind == FaultKind::kDiskIoError ||
                 d.kind == FaultKind::kDiskIoFull)) {
    record(path, IoOp::kRead, d.kind, "fail");
    return injected_status(d.kind, path, IoOp::kRead);
  }
  Result<std::string> blob = base_->read_file(path);
  if (blob.ok() && d.fire && d.kind == FaultKind::kDiskIoCorrupt) {
    std::string damaged = std::move(blob).value();
    flip_bit(damaged);
    record(path, IoOp::kRead, d.kind, "bit-flip");
    return damaged;
  }
  return blob;
}

Status FaultEnv::create_dirs(const std::string& path) {
  return base_->create_dirs(path);
}

Status FaultEnv::rename_file(const std::string& from, const std::string& to) {
  const Decision d = decide(from, IoOp::kRename);
  if (d.fire && (d.kind == FaultKind::kDiskIoError ||
                 d.kind == FaultKind::kDiskIoFull)) {
    record(from, IoOp::kRename, d.kind, "fail");
    return injected_status(d.kind, from, IoOp::kRename);
  }
  return base_->rename_file(from, to);
}

Status FaultEnv::remove_file(const std::string& path) {
  const Decision d = decide(path, IoOp::kRemove);
  if (d.fire && (d.kind == FaultKind::kDiskIoError ||
                 d.kind == FaultKind::kDiskIoFull)) {
    record(path, IoOp::kRemove, d.kind, "fail");
    return injected_status(d.kind, path, IoOp::kRemove);
  }
  return base_->remove_file(path);
}

Status FaultEnv::truncate_file(const std::string& path, std::uint64_t size) {
  return base_->truncate_file(path, size);
}

Result<std::vector<std::string>> FaultEnv::list_dir(const std::string& path) {
  return base_->list_dir(path);
}

Result<std::uint64_t> FaultEnv::free_bytes(const std::string& path) {
  return base_->free_bytes(path);
}

bool FaultEnv::file_exists(const std::string& path) {
  return base_->file_exists(path);
}

}  // namespace everest::storage
