#include "storage/tier.hpp"

namespace everest::storage {

DiskTier::DiskTier(platform::Simulator& sim, std::size_t node,
                   TierConfig config, obs::Registry* registry)
    : node_(node),
      config_(config),
      store_(config.dir, config.segment, config.env),
      channel_(sim, config.io) {
  if (registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(node)}};
    ctr_demotions_ = registry->counter("storage.tier.demotions", labels);
    ctr_promotions_ = registry->counter("storage.tier.promotions", labels);
    ctr_rejected_ = registry->counter("storage.tier.rejected", labels);
  }
}

Status DiskTier::demote(const data::ShardKey& key, double bytes) {
  if (offline_) {
    ++stats_.rejected;
    if (ctr_rejected_ != nullptr) ctr_rejected_->inc();
    return FailedPrecondition("disk tier offline");
  }
  if (store_.contains(key)) {
    return AlreadyExists("shard already on disk");
  }
  if (store_.live_bytes() + bytes > config_.capacity_bytes) {
    // Reclaim dead segment space before giving up.
    store_.compact();
    if (store_.live_bytes() + bytes > config_.capacity_bytes) {
      ++stats_.rejected;
      if (ctr_rejected_ != nullptr) ctr_rejected_->inc();
      return ResourceExhausted("disk tier full");
    }
  }
  const Status appended = store_.append(key, bytes);
  if (!appended.ok()) {
    // Media fault (EIO/ENOSPC through the Env): the store went
    // read-only; the caller sees the original error and should shed
    // demotions until try_resume() succeeds.
    ++stats_.rejected;
    if (ctr_rejected_ != nullptr) ctr_rejected_->inc();
    return appended;
  }
  // The eviction that triggered us does not wait for the write; the
  // device still pays for it (and congests concurrent promotes).
  channel_.transfer(bytes, [] {});
  ++stats_.demotions;
  stats_.bytes_written += bytes;
  if (ctr_demotions_ != nullptr) ctr_demotions_->inc();
  return OkStatus();
}

Status DiskTier::promote(const data::ShardKey& key,
                         platform::Simulator::Callback on_read) {
  if (offline_) return FailedPrecondition("disk tier offline");
  Result<double> located = store_.locate(key);
  if (!located.ok()) return located.status();
  const double bytes = located.value();
  channel_.transfer(bytes, std::move(on_read));
  ++stats_.promotions;
  stats_.bytes_read += bytes;
  if (ctr_promotions_ != nullptr) ctr_promotions_->inc();
  return OkStatus();
}

bool DiskTier::erase(const data::ShardKey& key) { return store_.erase(key); }

std::size_t DiskTier::invalidate_object(data::ObjectId object,
                                        std::uint64_t version) {
  return store_.invalidate_object(object, version);
}

void DiskTier::adopt(const data::ShardKey& key, double bytes) {
  if (store_.contains(key)) return;
  if (store_.append(key, bytes).ok()) ++stats_.adopted;
}

}  // namespace everest::storage
