// Background segment scrubber: the disk tier's early-warning system.
// Latent media corruption (bit rot, torn sectors) is only dangerous
// while it is *undetected* — a flipped bit found months later, after the
// other replicas aged out, is data loss; the same bit found within one
// scrub pass is a cheap re-replication. The scrubber walks every sealed
// segment at a bounded byte rate, re-reads the file through the Env, and
// verifies each frame CRC plus the chained payload CRC against the
// footer and the in-memory index.
//
// A segment that fails verification is quarantined immediately: the file
// is renamed aside, its keys are dropped from the index and tombstoned
// (a reopen can never resurrect them), and the suspect keys are handed
// to the caller — the data plane repairs them from healthy replicas
// (local disk -> remote RAM -> remote disk) and re-replicates.
//
// step() is budgeted in *bytes examined*, not segments, so one huge
// segment cannot starve the rest of the pass; the cursor round-robins
// across the sealed set and wraps. Every decision is appended to a
// deterministic journal (segment ids + frame counts only — no pointers,
// no wall-clock), which the determinism tests compare across cache
// policies and runs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/object.hpp"
#include "obs/registry.hpp"
#include "storage/segment.hpp"

namespace everest::storage {

struct ScrubConfig {
  /// Byte budget per step(); a segment mid-verification is never split,
  /// so one step scans at least one segment when any are eligible.
  double bytes_per_step = 4.0 * 1024 * 1024;
};

/// Cumulative totals across every step()/full_pass().
struct ScrubStats {
  std::uint64_t steps = 0;
  std::uint64_t segments_verified = 0;     ///< clean verifications
  std::uint64_t segments_quarantined = 0;  ///< failed -> renamed aside
  std::uint64_t suspects = 0;              ///< keys handed back for repair
  double bytes_scanned = 0.0;
};

/// What one step()/full_pass() produced.
struct ScrubReport {
  std::uint64_t segments_verified = 0;
  std::uint64_t segments_quarantined = 0;
  double bytes_scanned = 0.0;
  /// Keys whose only local copy was in a quarantined segment; the
  /// caller must repair them from replicas (they are already
  /// tombstoned locally and will never be resurrected).
  std::vector<data::ShardKey> suspects;
};

/// Single-owner (driven by the data plane alongside the store it scrubs).
class Scrubber {
 public:
  /// Borrows `store` (must outlive the scrubber).
  explicit Scrubber(SegmentStore& store, ScrubConfig config = {},
                    obs::Registry* registry = nullptr,
                    std::size_t node = 0);

  /// Verifies sealed segments round-robin until the byte budget is
  /// spent (at least one when any are eligible), quarantining failures.
  ScrubReport step();

  /// Verifies every sealed segment once, budget ignored.
  ScrubReport full_pass();

  [[nodiscard]] const ScrubStats& stats() const { return stats_; }
  /// Deterministic event log ("verify seg-3 frames=12 clean", ...).
  [[nodiscard]] const std::vector<std::string>& journal() const {
    return journal_;
  }

 private:
  /// Verifies one segment, quarantining on failure; appends the
  /// outcome to `report` and the journal.
  void scrub_one(std::uint64_t id, ScrubReport& report);

  SegmentStore& store_;
  ScrubConfig config_;
  /// Next sealed id to examine (round-robin; ids are ascending).
  std::uint64_t cursor_ = 0;
  ScrubStats stats_;
  std::vector<std::string> journal_;

  obs::Counter* ctr_verified_ = nullptr;
  obs::Counter* ctr_quarantined_ = nullptr;
  obs::Counter* ctr_suspects_ = nullptr;
  obs::Counter* ctr_bytes_ = nullptr;
};

}  // namespace everest::storage
