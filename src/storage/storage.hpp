// Umbrella header + top-level configuration for the persistent tiered
// storage subsystem (DESIGN.md row 16): append-only segment stores, a
// crash-recoverable write-ahead catalog log, per-node disk tiers under
// the data plane's caches, and restart recovery that replays instead of
// recomputing.
#pragma once

#include "storage/catalog.hpp"    // IWYU pragma: export
#include "storage/env.hpp"        // IWYU pragma: export
#include "storage/fault_env.hpp"  // IWYU pragma: export
#include "storage/format.hpp"     // IWYU pragma: export
#include "storage/log.hpp"        // IWYU pragma: export
#include "storage/recovery.hpp"   // IWYU pragma: export
#include "storage/scrub.hpp"      // IWYU pragma: export
#include "storage/segment.hpp"    // IWYU pragma: export
#include "storage/tier.hpp"       // IWYU pragma: export

namespace everest::storage {

/// How the data plane runs its storage tier. Disabled by default — a
/// plane without disk behaves exactly as before this subsystem existed.
struct StorageConfig {
  /// Per-node disk tier capacity; 0 disables the whole tier.
  double disk_capacity_bytes = 0.0;
  /// Durable directory for the catalog log + per-node segment files;
  /// empty = model-only (tier works, nothing survives process death).
  std::string dir;
  /// Device model for tier reads/writes.
  platform::LinkModel io = platform::LinkModel::local_nvme();
  /// Cost-aware demotion gate: shards whose refetch would cost less than
  /// this are simply dropped on eviction (cheap to re-stage), everything
  /// else is worth disk space. 0 = demote everything.
  double demote_min_refetch_us = 0.0;
  SegmentConfig segment;
  LogConfig log;
  /// Background scrub pacing (byte budget per scrub_node() step).
  ScrubConfig scrub;
  /// Filesystem boundary for every file this subsystem touches (catalog
  /// log, snapshots, segment files). Null = real POSIX I/O; tests and
  /// the durability bench inject a FaultEnv here to script media
  /// faults. Borrowed — must outlive the plane.
  Env* env = nullptr;

  [[nodiscard]] bool enabled() const { return disk_capacity_bytes > 0.0; }
  [[nodiscard]] bool durable() const { return enabled() && !dir.empty(); }
};

}  // namespace everest::storage
