#include "storage/recovery.hpp"

#include <sstream>

#include "common/logging.hpp"
#include "obs/instruments.hpp"

namespace everest::storage {

std::string RecoveryReport::to_string() const {
  std::ostringstream os;
  os << "recovered " << replay.catalog.to_string()
     << (replay.snapshot_loaded ? " (snapshot+log)" : " (log only)")
     << " applied=" << replay.records_applied
     << " skipped=" << replay.records_skipped
     << " corrupt=" << replay.corrupt_records << " in " << wall_us << " us";
  return os.str();
}

RecoveryReport recover_catalog(const std::string& dir, obs::Registry* registry,
                               obs::Tracer* tracer) {
  RecoveryReport report;
  {
    // The timer's gauge sink records last_us at scope exit; the explicit
    // read feeds the report and the histogram of all runs.
    obs::ScopedTimerUs timer(
        registry != nullptr ? registry->histogram("storage.recovery.us")
                            : nullptr,
        registry != nullptr
            ? registry->gauge("storage.recovery.last_us", obs::GaugeKind::kMax)
            : nullptr);  // kMax: merged value = slowest node recovery
    report.replay = CatalogLog::replay(dir, registry);
    report.wall_us = timer.elapsed_us();
  }
  if (registry != nullptr) {
    registry->counter("storage.recovery.runs")->inc();
  }
  if (tracer != nullptr && tracer->enabled()) {
    const double end = tracer->wall_now_us();
    tracer->span(
        obs::TimeDomain::kWall, tracer->next_id(), tracer->next_id(), 0,
        end - report.wall_us, end, obs::kAutoTrack, "recovery", "storage",
        {{"applied", std::to_string(report.replay.records_applied)},
         {"skipped", std::to_string(report.replay.records_skipped)},
         {"corrupt", std::to_string(report.replay.corrupt_records)},
         {"snapshot", report.replay.snapshot_loaded ? "1" : "0"}});
  }
  EVEREST_LOG(kInfo, "storage") << report.to_string();
  return report;
}

}  // namespace everest::storage
