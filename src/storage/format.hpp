// On-disk byte format shared by the storage subsystem: a CRC-32 (IEEE)
// implementation, little-endian primitive encoding, and the framed
// LogRecord every durable file is built from. One frame is
// [len u32][crc u32][payload]; the CRC covers the payload only, so a
// torn tail (short payload) and a corrupted record (bad CRC) are
// distinguishable from a clean end-of-file — replay skips and counts
// them instead of crashing (the `storage.log.corrupt_records` metric).
//
// Shard payloads themselves are *modeled* (the SDK simulates movement,
// not contents); what hits the disk for real is this metadata — small
// fixed-size records that make the catalog crash-recoverable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>

#include "data/object.hpp"

namespace everest::storage {

/// CRC-32 (IEEE 802.3 polynomial, reflected). `seed` chains calls:
/// crc32(b, crc32(a)) == crc32(a+b).
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t size,
                                  std::uint32_t seed = 0);
[[nodiscard]] inline std::uint32_t crc32(std::string_view s,
                                         std::uint32_t seed = 0) {
  return crc32(s.data(), s.size(), seed);
}

// ---- little-endian primitive encoding -------------------------------------

void put_u8(std::string& out, std::uint8_t v);
void put_u32(std::string& out, std::uint32_t v);
void put_u64(std::string& out, std::uint64_t v);
/// Doubles travel as their IEEE-754 bit pattern (bit-exact roundtrip).
void put_f64(std::string& out, double v);

/// Bounds-checked sequential reader. A read past the end clears ok() and
/// returns zero; callers check ok() once after a batch of reads.
class ByteReader {
 public:
  explicit ByteReader(std::string_view data) : data_(data) {}

  std::uint8_t u8();
  std::uint32_t u32();
  std::uint64_t u64();
  double f64();
  /// Raw view of the next `n` bytes (empty + !ok() when short).
  std::string_view bytes(std::size_t n);

  [[nodiscard]] bool ok() const { return ok_; }
  [[nodiscard]] std::size_t pos() const { return pos_; }
  [[nodiscard]] std::size_t remaining() const { return data_.size() - pos_; }

 private:
  std::string_view data_;
  std::size_t pos_ = 0;
  bool ok_ = true;
};

// ---- log records ----------------------------------------------------------

/// Catalog mutation kinds. Every durable state change of the data plane
/// is one of these; kPromote and kSeal are advisory (they bump the
/// sequence and feed counters but change no catalog state).
enum class LogRecordType : std::uint8_t {
  kPut = 1,      ///< object (re)registered: version, bytes, shard count
  kPlace,        ///< shard replica placed on a node (RAM)
  kRelease,      ///< shard replica removed from a node (crash, drop)
  kInvalidate,   ///< object lost: version bumped, all copies stale
  kDemote,       ///< shard evicted from cache onto a node's disk tier
  kDiskErase,    ///< shard's disk copy dropped (invalidation, compaction)
  kPromote,      ///< advisory: disk copy re-read into the cache
  kSeal,         ///< advisory: a segment file was sealed on a node
};

std::string_view to_string(LogRecordType type);

/// One fixed-size catalog mutation. Field meaning varies slightly by
/// type: for kPut, `shard` carries the object's shard count and `node`
/// the birth node; for everything else (object, shard, version) names
/// one shard and `node` the affected holder.
struct LogRecord {
  LogRecordType type = LogRecordType::kPut;
  std::uint64_t seq = 0;  ///< total order over the log; 0 = unstamped
  std::uint64_t object = 0;
  std::uint32_t shard = 0;
  std::uint64_t version = 0;
  std::uint64_t node = 0;
  double bytes = 0.0;

  [[nodiscard]] data::ShardKey key() const {
    return data::ShardKey{object, shard, version};
  }
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const LogRecord& a, const LogRecord& b) {
    return a.type == b.type && a.seq == b.seq && a.object == b.object &&
           a.shard == b.shard && a.version == b.version && a.node == b.node &&
           a.bytes == b.bytes;
  }
};

/// Payload bytes of one encoded record (frame adds 8: len + crc).
inline constexpr std::size_t kRecordPayloadBytes = 1 + 8 + 8 + 4 + 8 + 8 + 8;
inline constexpr std::size_t kRecordFrameBytes = kRecordPayloadBytes + 8;

/// Appends the framed record to `out`.
void encode_record(const LogRecord& record, std::string& out);

/// Outcome of decoding one frame at the reader's position.
enum class DecodeStatus {
  kOk,         ///< record decoded; reader advanced past it
  kEndOfInput, ///< clean end: zero bytes remained
  kTorn,       ///< a partial frame (crash mid-write); reader consumed rest
  kCorrupt,    ///< CRC/length mismatch; reader consumed rest
};

/// Decodes one framed record. On kTorn/kCorrupt the reader is drained —
/// nothing after a damaged frame can be trusted (lengths are gone), which
/// is exactly the append-only-log tail-truncation rule.
DecodeStatus decode_record(ByteReader& reader, LogRecord* out);

}  // namespace everest::storage
