#include "storage/segment.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <vector>

#include "common/logging.hpp"

namespace everest::storage {

namespace fs = std::filesystem;

SegmentStore::SegmentStore(std::string dir, SegmentConfig config)
    : dir_(std::move(dir)), config_(config) {
  if (!dir_.empty()) {
    fs::create_directories(dir_);
    // Rebuild from whatever segments a previous life left behind.
    std::vector<std::uint64_t> ids;
    for (const auto& entry : fs::directory_iterator(dir_)) {
      const std::string name = entry.path().filename().string();
      if (name.rfind("seg-", 0) != 0 || entry.path().extension() != ".dat") {
        continue;
      }
      ids.push_back(std::strtoull(name.c_str() + 4, nullptr, 10));
    }
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
      stats_.corrupt_records += load_segment(id, segment_path(id));
      next_id_ = std::max(next_id_, id + 1);
    }
    // Never append after a possibly-damaged region: everything recovered
    // is treated as sealed and writes continue in a fresh segment.
    for (auto& [id, segment] : segments_) segment.sealed = true;
  }
  open_new_segment();
}

SegmentStore::~SegmentStore() {
  if (active_file_ != nullptr) std::fclose(active_file_);
}

std::string SegmentStore::segment_path(std::uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".dat";
}

SegmentStore::Segment& SegmentStore::active() {
  return segments_.at(active_id_);
}

void SegmentStore::open_new_segment() {
  if (active_file_ != nullptr) {
    std::fclose(active_file_);
    active_file_ = nullptr;
  }
  Segment segment;
  segment.id = next_id_++;
  active_id_ = segment.id;
  segments_.emplace(segment.id, std::move(segment));
  if (!dir_.empty()) {
    active_file_ = std::fopen(segment_path(active_id_).c_str(), "ab");
    if (active_file_ == nullptr) {
      EVEREST_LOG(kError, "storage")
          << "cannot open segment file " << segment_path(active_id_);
    }
  }
}

void SegmentStore::write_frame(const LogRecord& record) {
  if (active_file_ == nullptr) return;
  std::string frame;
  frame.reserve(kRecordFrameBytes);
  encode_record(record, frame);
  std::fwrite(frame.data(), 1, frame.size(), active_file_);
}

Status SegmentStore::append(const data::ShardKey& key, double bytes) {
  if (index_.count(key) != 0) {
    return AlreadyExists("shard already resident in segment store");
  }
  Segment& segment = active();
  LogRecord record;
  record.type = LogRecordType::kDemote;
  record.seq = segment.records + 1;  // per-segment ordinal, not a log seq
  record.object = key.object;
  record.shard = key.shard;
  record.version = key.version;
  record.bytes = bytes;

  std::string payload;  // chain CRC over the same payload bytes on disk
  encode_record(record, payload);
  segment.chain_crc =
      crc32(payload.data() + 8, payload.size() - 8, segment.chain_crc);
  write_frame(record);

  segment.live.emplace(key, bytes);
  segment.live_bytes += bytes;
  ++segment.records;
  index_[key] = segment.id;
  stats_.live_bytes += bytes;
  ++stats_.appends;

  if (segment.live_bytes + segment.dead_bytes >= config_.segment_bytes) {
    seal(segment);
    open_new_segment();
  }
  return OkStatus();
}

void SegmentStore::seal(Segment& segment) {
  if (segment.sealed) return;
  segment.sealed = true;
  ++stats_.seals;
  LogRecord footer;
  footer.type = LogRecordType::kSeal;
  footer.seq = segment.records;
  footer.node = segment.chain_crc;
  footer.bytes = segment.live_bytes + segment.dead_bytes;
  write_frame(footer);
  if (active_file_ != nullptr) std::fflush(active_file_);
}

void SegmentStore::seal_active() {
  seal(active());
  open_new_segment();
}

Result<double> SegmentStore::locate(const data::ShardKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return NotFound("shard not in segment store");
  return segments_.at(it->second).live.at(key);
}

bool SegmentStore::erase(const data::ShardKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Segment& segment = segments_.at(it->second);
  auto lit = segment.live.find(key);
  const double bytes = lit->second;
  segment.live.erase(lit);
  segment.live_bytes -= bytes;
  segment.dead_bytes += bytes;
  stats_.live_bytes -= bytes;
  stats_.dead_bytes += bytes;
  index_.erase(it);

  // Tombstone in the active segment so a reopen cannot resurrect the
  // key. It counts toward the footer's record count and chain CRC like
  // any other record, but carries no logical bytes of its own.
  Segment& act = active();
  LogRecord tomb;
  tomb.type = LogRecordType::kDiskErase;
  tomb.seq = act.records + 1;
  tomb.object = key.object;
  tomb.shard = key.shard;
  tomb.version = key.version;
  tomb.bytes = bytes;
  std::string payload;
  encode_record(tomb, payload);
  act.chain_crc = crc32(payload.data() + 8, payload.size() - 8, act.chain_crc);
  write_frame(tomb);
  ++act.records;
  return true;
}

std::size_t SegmentStore::invalidate_object(data::ObjectId object,
                                            std::uint64_t version) {
  std::vector<data::ShardKey> stale;
  for (auto it = index_.lower_bound(data::ShardKey{object, 0, 0});
       it != index_.end() && it->first.object == object; ++it) {
    if (it->first.version < version) stale.push_back(it->first);
  }
  for (const data::ShardKey& key : stale) erase(key);
  return stale.size();
}

std::size_t SegmentStore::compact() {
  std::vector<std::uint64_t> victims;
  for (const auto& [id, segment] : segments_) {
    if (!segment.sealed || id == active_id_) continue;
    const double total = segment.live_bytes + segment.dead_bytes;
    if (total <= 0.0 || segment.dead_bytes / total < config_.compact_dead_fraction) {
      continue;
    }
    victims.push_back(id);
  }
  if (victims.empty()) return 0;
  ++stats_.compactions;
  for (std::uint64_t id : victims) {
    // Move the survivors, then drop the file: space comes back as soon
    // as the old segment is unlinked.
    std::vector<std::pair<data::ShardKey, double>> live(
        segments_.at(id).live.begin(), segments_.at(id).live.end());
    for (const auto& [key, bytes] : live) {
      erase(key);
      stats_.dead_bytes -= bytes;  // not dead: just moved
      (void)append(key, bytes);
    }
    stats_.dead_bytes -= segments_.at(id).dead_bytes;
    segments_.erase(id);
    if (!dir_.empty()) {
      std::error_code ec;
      fs::remove(segment_path(id), ec);
    }
    ++stats_.segments_removed;
  }
  return victims.size();
}

void SegmentStore::for_each(
    const std::function<void(const data::ShardKey&, double)>& fn) const {
  for (const auto& [key, id] : index_) {
    fn(key, segments_.at(id).live.at(key));
  }
}

std::uint64_t SegmentStore::load_segment(std::uint64_t id,
                                         const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return 0;
  std::string blob((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  Segment segment;
  segment.id = id;

  std::uint64_t damaged = 0;
  bool footer_valid = false;
  ByteReader reader(blob);
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status == DecodeStatus::kEndOfInput) break;
    if (status != DecodeStatus::kOk) {
      // Torn or corrupt tail: keep the valid prefix, count the damage.
      ++damaged;
      break;
    }
    if (record.type == LogRecordType::kSeal) {
      // Footer attests the record count and the chained payload CRC.
      footer_valid = record.seq == segment.records &&
                     static_cast<std::uint32_t>(record.node) ==
                         segment.chain_crc;
      if (!footer_valid) ++damaged;
      continue;
    }
    std::string payload;
    encode_record(record, payload);
    segment.chain_crc =
        crc32(payload.data() + 8, payload.size() - 8, segment.chain_crc);
    ++segment.records;
    const data::ShardKey key = record.key();
    // The owning segment may be the one still being loaded (an erase or
    // re-append of a key written earlier in this same file).
    auto existing = index_.find(key);
    Segment* owner = existing == index_.end()       ? nullptr
                     : existing->second == id        ? &segment
                                                     : &segments_.at(existing->second);
    if (record.type == LogRecordType::kDiskErase) {
      // Tombstone: drop the key wherever it currently lives.
      if (owner != nullptr) {
        const double old_bytes = owner->live.at(key);
        owner->live.erase(key);
        owner->live_bytes -= old_bytes;
        owner->dead_bytes += old_bytes;
        stats_.live_bytes -= old_bytes;
        stats_.dead_bytes += old_bytes;
        index_.erase(existing);
      }
      continue;
    }
    // Last write wins within the store (re-appends after compaction).
    if (owner != nullptr) {
      const double old_bytes = owner->live.at(key);
      owner->live_bytes -= old_bytes;
      owner->dead_bytes += old_bytes;
      owner->live.erase(key);
      stats_.live_bytes -= old_bytes;
      stats_.dead_bytes += old_bytes;
      existing->second = id;
    } else {
      index_[key] = id;
    }
    segment.live[key] = record.bytes;
    segment.live_bytes += record.bytes;
    stats_.live_bytes += record.bytes;
  }
  (void)footer_valid;  // informational: unsealed actives have none
  segments_.emplace(id, std::move(segment));
  return damaged;
}

}  // namespace everest::storage
