#include "storage/segment.hpp"

#include <algorithm>
#include <cstdlib>
#include <vector>

#include "common/logging.hpp"

namespace everest::storage {

SegmentStore::SegmentStore(std::string dir, SegmentConfig config, Env* env)
    : dir_(std::move(dir)), config_(config),
      env_(env != nullptr ? env : Env::posix()) {
  if (!dir_.empty()) {
    const Status made = env_->create_dirs(dir_);
    if (!made.ok()) {
      EVEREST_LOG(kError, "storage")
          << "cannot create segment dir " << dir_ << ": " << made.to_string();
    }
    // Rebuild from whatever segments a previous life left behind.
    // Quarantined files ("seg-N.dat.quarantined") no longer match the
    // ".dat" suffix and are never loaded again — by design.
    std::vector<std::uint64_t> ids;
    Result<std::vector<std::string>> names = env_->list_dir(dir_);
    if (names.ok()) {
      for (const std::string& name : names.value()) {
        if (name.rfind("seg-", 0) != 0 || name.size() < 8 ||
            name.compare(name.size() - 4, 4, ".dat") != 0) {
          continue;
        }
        ids.push_back(std::strtoull(name.c_str() + 4, nullptr, 10));
      }
    }
    std::sort(ids.begin(), ids.end());
    for (std::uint64_t id : ids) {
      stats_.corrupt_records += load_segment(id, segment_path(id));
      next_id_ = std::max(next_id_, id + 1);
    }
    // Never append after a possibly-damaged region: everything recovered
    // is treated as sealed and writes continue in a fresh segment.
    for (auto& [id, segment] : segments_) segment.sealed = true;
  }
  open_new_segment();
}

SegmentStore::~SegmentStore() {
  if (active_file_ != nullptr) (void)active_file_->close();
}

std::string SegmentStore::segment_path(std::uint64_t id) const {
  return dir_ + "/seg-" + std::to_string(id) + ".dat";
}

SegmentStore::Segment& SegmentStore::active() {
  return segments_.at(active_id_);
}

void SegmentStore::open_new_segment() {
  if (active_file_ != nullptr) {
    (void)active_file_->close();
    active_file_.reset();
  }
  Segment segment;
  segment.id = next_id_++;
  active_id_ = segment.id;
  segments_.emplace(segment.id, std::move(segment));
  if (!dir_.empty()) {
    Result<std::unique_ptr<WritableFile>> opened =
        env_->open_append(segment_path(active_id_));
    if (!opened.ok()) {
      EVEREST_LOG(kError, "storage")
          << "cannot open segment file " << segment_path(active_id_) << ": "
          << opened.status().to_string();
      enter_read_only(opened.status());
      return;
    }
    active_file_ = std::move(opened).value();
  }
}

Status SegmentStore::write_bytes(const std::string& frame) {
  if (dir_.empty()) return OkStatus();  // in-memory: nothing to fail
  if (active_file_ == nullptr) {
    return last_error_.ok() ? Unavailable("segment file is not open")
                            : last_error_;
  }
  return active_file_->append(frame);
}

void SegmentStore::enter_read_only(const Status& cause) {
  ++stats_.io_errors;
  if (!read_only_) {
    EVEREST_LOG(kWarn, "storage")
        << "segment store " << dir_ << " read-only: " << cause.to_string();
  }
  read_only_ = true;
  last_error_ = cause;
  // The active file's tail may hold a short-write torn frame; seal the
  // segment in memory so nothing is ever written after the damage (the
  // same invariant reopen enforces for crash-torn tails).
  if (!segments_.empty()) active().sealed = true;
  if (active_file_ != nullptr) {
    (void)active_file_->close();
    active_file_.reset();
  }
}

Status SegmentStore::retry_io() {
  if (!read_only_) return OkStatus();
  if (!dir_.empty()) {
    read_only_ = false;
    open_new_segment();  // probe: sets read_only_ again on failure
    if (read_only_) return last_error_;
  } else {
    read_only_ = false;
  }
  last_error_ = OkStatus();
  ++stats_.io_resumes;
  // Land the erases that happened while the disk was sick.
  std::vector<std::pair<data::ShardKey, double>> queued;
  queued.swap(pending_tombstones_);
  for (std::size_t i = 0; i < queued.size(); ++i) {
    write_tombstone(queued[i].first, queued[i].second);
    if (read_only_) {  // relapsed mid-flush; keep the rest queued
      return last_error_;
    }
  }
  EVEREST_LOG(kInfo, "storage")
      << "segment store " << dir_ << " writable again (" << queued.size()
      << " queued tombstone(s) flushed)";
  return OkStatus();
}

Status SegmentStore::append(const data::ShardKey& key, double bytes) {
  if (read_only_) return last_error_;
  if (index_.count(key) != 0) {
    return AlreadyExists("shard already resident in segment store");
  }
  Segment& segment = active();
  LogRecord record;
  record.type = LogRecordType::kDemote;
  record.seq = segment.records + 1;  // per-segment ordinal, not a log seq
  record.object = key.object;
  record.shard = key.shard;
  record.version = key.version;
  record.bytes = bytes;

  std::string frame;  // chain CRC covers the same payload bytes on disk
  encode_record(record, frame);
  const Status written = write_bytes(frame);
  if (!written.ok()) {
    // Nothing indexed: the caller still holds the shard and can retry
    // or place it elsewhere; this store degrades to read-only.
    enter_read_only(written);
    return written;
  }
  segment.chain_crc =
      crc32(frame.data() + 8, frame.size() - 8, segment.chain_crc);
  segment.live.emplace(key, bytes);
  segment.live_bytes += bytes;
  ++segment.records;
  index_[key] = segment.id;
  stats_.live_bytes += bytes;
  ++stats_.appends;

  if (segment.live_bytes + segment.dead_bytes >= config_.segment_bytes) {
    seal(segment);
    if (!read_only_) open_new_segment();
  }
  return OkStatus();
}

void SegmentStore::seal(Segment& segment) {
  if (segment.sealed) return;
  segment.sealed = true;
  ++stats_.seals;
  LogRecord footer;
  footer.type = LogRecordType::kSeal;
  footer.seq = segment.records;
  footer.node = segment.chain_crc;
  footer.bytes = segment.live_bytes + segment.dead_bytes;
  std::string frame;
  encode_record(footer, frame);
  Status written = write_bytes(frame);
  if (written.ok() && active_file_ != nullptr) written = active_file_->sync();
  if (!written.ok()) {
    // The segment stays sealed in memory; reopen treats the footerless
    // file as recovered-sealed. The medium is suspect: degrade.
    enter_read_only(written);
  }
}

void SegmentStore::seal_active() {
  seal(active());
  if (!read_only_) open_new_segment();
}

Result<double> SegmentStore::locate(const data::ShardKey& key) const {
  auto it = index_.find(key);
  if (it == index_.end()) return NotFound("shard not in segment store");
  return segments_.at(it->second).live.at(key);
}

void SegmentStore::write_tombstone(const data::ShardKey& key, double bytes) {
  if (read_only_) {
    // The in-memory erase already happened; the frame lands when the
    // disk heals (retry_io). Until then recovery-side reconciliation
    // against the catalog covers a crash-before-flush.
    pending_tombstones_.emplace_back(key, bytes);
    return;
  }
  Segment& act = active();
  LogRecord tomb;
  tomb.type = LogRecordType::kDiskErase;
  tomb.seq = act.records + 1;
  tomb.object = key.object;
  tomb.shard = key.shard;
  tomb.version = key.version;
  tomb.bytes = bytes;
  std::string frame;
  encode_record(tomb, frame);
  const Status written = write_bytes(frame);
  if (!written.ok()) {
    enter_read_only(written);
    pending_tombstones_.emplace_back(key, bytes);
    return;
  }
  act.chain_crc = crc32(frame.data() + 8, frame.size() - 8, act.chain_crc);
  ++act.records;
}

bool SegmentStore::erase(const data::ShardKey& key) {
  auto it = index_.find(key);
  if (it == index_.end()) return false;
  Segment& segment = segments_.at(it->second);
  auto lit = segment.live.find(key);
  const double bytes = lit->second;
  segment.live.erase(lit);
  segment.live_bytes -= bytes;
  segment.dead_bytes += bytes;
  stats_.live_bytes -= bytes;
  stats_.dead_bytes += bytes;
  index_.erase(it);

  // Tombstone in the active segment so a reopen cannot resurrect the
  // key. It counts toward the footer's record count and chain CRC like
  // any other record, but carries no logical bytes of its own.
  write_tombstone(key, bytes);
  return true;
}

std::size_t SegmentStore::invalidate_object(data::ObjectId object,
                                            std::uint64_t version) {
  std::vector<data::ShardKey> stale;
  for (auto it = index_.lower_bound(data::ShardKey{object, 0, 0});
       it != index_.end() && it->first.object == object; ++it) {
    if (it->first.version < version) stale.push_back(it->first);
  }
  for (const data::ShardKey& key : stale) erase(key);
  return stale.size();
}

std::size_t SegmentStore::compact() {
  if (read_only_) return 0;  // cannot rewrite onto a sick disk
  std::vector<std::uint64_t> victims;
  for (const auto& [id, segment] : segments_) {
    if (!segment.sealed || id == active_id_) continue;
    const double total = segment.live_bytes + segment.dead_bytes;
    if (total <= 0.0 || segment.dead_bytes / total < config_.compact_dead_fraction) {
      continue;
    }
    victims.push_back(id);
  }
  if (victims.empty()) return 0;
  ++stats_.compactions;
  std::size_t removed = 0;
  for (std::uint64_t id : victims) {
    // Move the survivors, then drop the file: space comes back as soon
    // as the old segment is unlinked.
    bool aborted = false;
    std::vector<std::pair<data::ShardKey, double>> live(
        segments_.at(id).live.begin(), segments_.at(id).live.end());
    for (const auto& [key, bytes] : live) {
      erase(key);
      stats_.dead_bytes -= bytes;  // not dead: just moved
      const Status moved = append(key, bytes);
      if (moved.ok()) continue;
      // Write fault mid-move: resurrect the record in its old segment
      // (the file is still there) and stop — losing a key to reclaim
      // space would invert the whole point of compaction.
      Segment& victim = segments_.at(id);
      victim.live.emplace(key, bytes);
      victim.live_bytes += bytes;
      victim.dead_bytes -= bytes;
      stats_.live_bytes += bytes;
      index_[key] = id;
      aborted = true;
      break;
    }
    if (aborted) break;
    stats_.dead_bytes -= segments_.at(id).dead_bytes;
    segments_.erase(id);
    if (!dir_.empty()) {
      const Status rm = env_->remove_file(segment_path(id));
      if (!rm.ok()) {
        // Reopen still converges (tombstones + last-write-wins), but
        // the space is not reclaimed yet: count and carry on.
        ++stats_.io_errors;
        EVEREST_LOG(kWarn, "storage")
            << "cannot remove compacted segment " << segment_path(id) << ": "
            << rm.to_string();
      }
    }
    ++stats_.segments_removed;
    ++removed;
  }
  return removed;
}

std::vector<std::uint64_t> SegmentStore::sealed_segment_ids() const {
  std::vector<std::uint64_t> ids;
  for (const auto& [id, segment] : segments_) {
    if (segment.sealed && id != active_id_) ids.push_back(id);
  }
  return ids;
}

double SegmentStore::segment_physical_bytes(std::uint64_t id) const {
  auto it = segments_.find(id);
  if (it == segments_.end()) return 0.0;
  const double frames = static_cast<double>(it->second.records) +
                        (it->second.sealed ? 1.0 : 0.0);
  return frames * static_cast<double>(kRecordFrameBytes);
}

VerifyResult SegmentStore::verify_segment(std::uint64_t id) const {
  VerifyResult out;
  auto sit = segments_.find(id);
  if (sit == segments_.end()) return out;   // unknown: nothing to verify
  if (dir_.empty()) return out;             // in-memory: no media to rot
  Result<std::string> blob = env_->read_file(segment_path(id));
  if (!blob.ok()) {
    out.clean = false;
    out.read_failed = true;
    return out;
  }
  out.bytes_scanned = static_cast<double>(blob.value().size());
  std::uint32_t chain = 0;
  bool footer_seen = false;
  bool footer_ok = true;
  ByteReader reader(blob.value());
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status == DecodeStatus::kEndOfInput) break;
    if (status != DecodeStatus::kOk) {
      ++out.corrupt_frames;
      out.clean = false;
      break;
    }
    if (record.type == LogRecordType::kSeal) {
      footer_seen = true;
      footer_ok = record.seq == out.frames &&
                  static_cast<std::uint32_t>(record.node) == chain;
      continue;
    }
    std::string payload;
    encode_record(record, payload);
    chain = crc32(payload.data() + 8, payload.size() - 8, chain);
    ++out.frames;
  }
  // The file must agree with what this process believes it wrote (or
  // loaded): frame count and chained CRC. A valid-looking file that
  // drifted from the index is as corrupt as a bad CRC.
  const Segment& mem = sit->second;
  if (out.frames != mem.records || chain != mem.chain_crc ||
      (footer_seen && !footer_ok)) {
    out.chain_mismatch = true;
    out.clean = false;
  }
  return out;
}

std::vector<data::ShardKey> SegmentStore::quarantine_segment(
    std::uint64_t id) {
  std::vector<data::ShardKey> suspects;
  auto sit = segments_.find(id);
  if (sit == segments_.end() || id == active_id_) return suspects;
  const Segment seg = std::move(sit->second);
  segments_.erase(sit);
  for (const auto& [key, bytes] : seg.live) {
    suspects.push_back(key);
    index_.erase(key);
    stats_.live_bytes -= bytes;
  }
  stats_.dead_bytes -= seg.dead_bytes;
  ++stats_.quarantined_segments;
  if (!dir_.empty()) {
    const std::string path = segment_path(id);
    const Status moved = env_->rename_file(path, path + ".quarantined");
    if (!moved.ok()) {
      // Renaming aside failed (the medium is sick): deleting works too —
      // either way the file can never be loaded again.
      const Status rm = env_->remove_file(path);
      if (!rm.ok()) ++stats_.io_errors;
    }
  }
  // Never resurrect: even if the file somehow returned, these
  // tombstones (queued while read-only) outrank its records on reopen.
  for (const auto& [key, bytes] : seg.live) write_tombstone(key, bytes);
  return suspects;
}

void SegmentStore::for_each(
    const std::function<void(const data::ShardKey&, double)>& fn) const {
  for (const auto& [key, id] : index_) {
    fn(key, segments_.at(id).live.at(key));
  }
}

std::uint64_t SegmentStore::load_segment(std::uint64_t id,
                                         const std::string& path) {
  Result<std::string> read = env_->read_file(path);
  if (!read.ok()) return 0;
  const std::string blob = std::move(read).value();
  Segment segment;
  segment.id = id;

  std::uint64_t damaged = 0;
  bool footer_valid = false;
  ByteReader reader(blob);
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status == DecodeStatus::kEndOfInput) break;
    if (status != DecodeStatus::kOk) {
      // Torn or corrupt tail: keep the valid prefix, count the damage.
      ++damaged;
      break;
    }
    if (record.type == LogRecordType::kSeal) {
      // Footer attests the record count and the chained payload CRC.
      footer_valid = record.seq == segment.records &&
                     static_cast<std::uint32_t>(record.node) ==
                         segment.chain_crc;
      if (!footer_valid) ++damaged;
      continue;
    }
    std::string payload;
    encode_record(record, payload);
    segment.chain_crc =
        crc32(payload.data() + 8, payload.size() - 8, segment.chain_crc);
    ++segment.records;
    const data::ShardKey key = record.key();
    // The owning segment may be the one still being loaded (an erase or
    // re-append of a key written earlier in this same file).
    auto existing = index_.find(key);
    Segment* owner = existing == index_.end()       ? nullptr
                     : existing->second == id        ? &segment
                                                     : &segments_.at(existing->second);
    if (record.type == LogRecordType::kDiskErase) {
      // Tombstone: drop the key wherever it currently lives.
      if (owner != nullptr) {
        const double old_bytes = owner->live.at(key);
        owner->live.erase(key);
        owner->live_bytes -= old_bytes;
        owner->dead_bytes += old_bytes;
        stats_.live_bytes -= old_bytes;
        stats_.dead_bytes += old_bytes;
        index_.erase(existing);
      }
      continue;
    }
    // Last write wins within the store (re-appends after compaction).
    if (owner != nullptr) {
      const double old_bytes = owner->live.at(key);
      owner->live_bytes -= old_bytes;
      owner->dead_bytes += old_bytes;
      owner->live.erase(key);
      stats_.live_bytes -= old_bytes;
      stats_.dead_bytes += old_bytes;
      existing->second = id;
    } else {
      index_[key] = id;
    }
    segment.live[key] = record.bytes;
    segment.live_bytes += record.bytes;
    stats_.live_bytes += record.bytes;
  }
  (void)footer_valid;  // informational: unsealed actives have none
  segments_.emplace(id, std::move(segment));
  return damaged;
}

}  // namespace everest::storage
