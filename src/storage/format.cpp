#include "storage/format.hpp"

#include <array>
#include <cstring>
#include <sstream>

namespace everest::storage {

namespace {

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> kTable = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void put_u8(std::string& out, std::uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void put_u32(std::string& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_u64(std::string& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFFu));
  }
}

void put_f64(std::string& out, double v) {
  std::uint64_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  put_u64(out, bits);
}

std::uint8_t ByteReader::u8() {
  if (pos_ + 1 > data_.size()) {
    ok_ = false;
    return 0;
  }
  return static_cast<std::uint8_t>(data_[pos_++]);
}

std::uint32_t ByteReader::u32() {
  if (pos_ + 4 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<std::uint32_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 4;
  return v;
}

std::uint64_t ByteReader::u64() {
  if (pos_ + 8 > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return 0;
  }
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<std::uint64_t>(
             static_cast<unsigned char>(data_[pos_ + i]))
         << (8 * i);
  }
  pos_ += 8;
  return v;
}

double ByteReader::f64() {
  const std::uint64_t bits = u64();
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string_view ByteReader::bytes(std::size_t n) {
  if (pos_ + n > data_.size()) {
    ok_ = false;
    pos_ = data_.size();
    return {};
  }
  std::string_view out = data_.substr(pos_, n);
  pos_ += n;
  return out;
}

std::string_view to_string(LogRecordType type) {
  switch (type) {
    case LogRecordType::kPut: return "put";
    case LogRecordType::kPlace: return "place";
    case LogRecordType::kRelease: return "release";
    case LogRecordType::kInvalidate: return "invalidate";
    case LogRecordType::kDemote: return "demote";
    case LogRecordType::kDiskErase: return "disk-erase";
    case LogRecordType::kPromote: return "promote";
    case LogRecordType::kSeal: return "seal";
  }
  return "?";
}

std::string LogRecord::to_string() const {
  std::ostringstream os;
  os << storage::to_string(type) << "#" << seq << " obj=" << object << "/"
     << shard << "@v" << version << " node=" << node << " bytes=" << bytes;
  return os.str();
}

void encode_record(const LogRecord& record, std::string& out) {
  std::string payload;
  payload.reserve(kRecordPayloadBytes);
  put_u8(payload, static_cast<std::uint8_t>(record.type));
  put_u64(payload, record.seq);
  put_u64(payload, record.object);
  put_u32(payload, record.shard);
  put_u64(payload, record.version);
  put_u64(payload, record.node);
  put_f64(payload, record.bytes);

  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  put_u32(out, crc32(payload));
  out += payload;
}

DecodeStatus decode_record(ByteReader& reader, LogRecord* out) {
  if (reader.remaining() == 0) return DecodeStatus::kEndOfInput;
  if (reader.remaining() < 8) {
    (void)reader.bytes(reader.remaining());
    return DecodeStatus::kTorn;
  }
  const std::uint32_t len = reader.u32();
  const std::uint32_t crc = reader.u32();
  if (len != kRecordPayloadBytes) {
    // A garbage length cannot be skipped over safely: stop here.
    (void)reader.bytes(reader.remaining());
    return DecodeStatus::kCorrupt;
  }
  if (reader.remaining() < len) {
    (void)reader.bytes(reader.remaining());
    return DecodeStatus::kTorn;
  }
  const std::string_view payload = reader.bytes(len);
  if (crc32(payload) != crc) {
    (void)reader.bytes(reader.remaining());
    return DecodeStatus::kCorrupt;
  }
  ByteReader pr(payload);
  out->type = static_cast<LogRecordType>(pr.u8());
  out->seq = pr.u64();
  out->object = pr.u64();
  out->shard = pr.u32();
  out->version = pr.u64();
  out->node = pr.u64();
  out->bytes = pr.f64();
  return DecodeStatus::kOk;
}

}  // namespace everest::storage
