#include "storage/log.hpp"

#include "common/logging.hpp"

namespace everest::storage {

std::string CatalogLog::log_path(const std::string& dir) {
  return dir + "/catalog.log";
}

std::string CatalogLog::snapshot_path(const std::string& dir) {
  return dir + "/catalog.snap";
}

namespace {

/// Whole-file read through the env; missing file = empty (a fresh log).
std::string read_or_empty(Env* env, const std::string& path) {
  Result<std::string> blob = env->read_file(path);
  return blob.ok() ? std::move(blob).value() : std::string();
}

/// Length of the valid frame prefix of a log blob (frames are fixed
/// size, so this is good-frames × frame-size). Everything past it is a
/// torn or corrupt tail.
std::uint64_t valid_prefix_bytes(const std::string& blob) {
  ByteReader reader(blob);
  std::uint64_t frames = 0;
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status != DecodeStatus::kOk) break;
    ++frames;
  }
  return frames * kRecordFrameBytes;
}

}  // namespace

CatalogLog::CatalogLog(std::string dir, LogConfig config,
                       obs::Registry* registry, Env* env)
    : dir_(std::move(dir)), config_(config),
      env_(env != nullptr ? env : Env::posix()) {
  if (config_.sync_every == 0) config_.sync_every = 1;
  if (registry != nullptr) {
    ctr_appends_ = registry->counter("storage.log.appends");
    ctr_syncs_ = registry->counter("storage.log.syncs");
    ctr_checkpoints_ = registry->counter("storage.log.checkpoints");
    ctr_io_errors_ = registry->counter("storage.log.io_errors");
    ctr_recoveries_ = registry->counter("storage.log.recoveries");
    // 0/1 flag; kMax so a federation merge reads 1 when ANY node degraded.
    gauge_degraded_ =
        registry->gauge("storage.log.degraded", obs::GaugeKind::kMax);
  }
  const Status made = env_->create_dirs(dir_);
  if (!made.ok()) {
    EVEREST_LOG(kError, "storage")
        << "cannot create log dir " << dir_ << ": " << made.to_string();
  }
  // Sequence numbers must keep rising across restarts: resume after the
  // highest seq any surviving file carries.
  const ReplayResult prior = replay(dir_, nullptr, env_);
  next_seq_ = prior.catalog.last_seq() + 1;
  // Cut any torn tail NOW, before appending: a record written after a
  // damaged region would be unreachable by replay (which stops at the
  // first bad frame) — durable in name only.
  const std::string blob = read_or_empty(env_, log_path(dir_));
  committed_bytes_ = valid_prefix_bytes(blob);
  if (blob.size() > committed_bytes_) {
    const Status cut = env_->truncate_file(log_path(dir_), committed_bytes_);
    if (!cut.ok()) {
      EVEREST_LOG(kWarn, "storage")
          << "cannot trim torn log tail in " << dir_ << ": "
          << cut.to_string();
      committed_bytes_ = blob.size();
    }
  }
  std::lock_guard<std::mutex> lock(mu_);
  open_file_locked();
}

CatalogLog::~CatalogLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    (void)file_->sync();
    (void)file_->close();
    file_.reset();
  }
}

void CatalogLog::open_file_locked() {
  Result<std::unique_ptr<WritableFile>> opened =
      env_->open_append(log_path(dir_));
  if (!opened.ok()) {
    EVEREST_LOG(kError, "storage")
        << "cannot open catalog log " << log_path(dir_) << ": "
        << opened.status().to_string();
    note_io_error_locked(opened.status());
    return;
  }
  file_ = std::move(opened).value();
}

void CatalogLog::note_io_error_locked(const Status& status) {
  ++stats_.io_errors;
  if (ctr_io_errors_ != nullptr) ctr_io_errors_->inc();
  if (last_error_.ok()) {
    EVEREST_LOG(kWarn, "storage")
        << "catalog log degraded: " << status.to_string();
  }
  last_error_ = status;
  if (gauge_degraded_ != nullptr) gauge_degraded_->set(1.0);
  // The handle's write offset is untrustworthy after a failure (a short
  // write may sit past committed_bytes_); recovery reopens from scratch.
  file_.reset();
}

AppendAck CatalogLog::append(LogRecord record) {
  std::string frame;
  frame.reserve(kRecordFrameBytes);
  AppendAck ack;
  {
    std::lock_guard<std::mutex> lock(mu_);
    ack.seq = next_seq_++;
    record.seq = ack.seq;
    encode_record(record, frame);
    ++stats_.appends;
    if (!last_error_.ok() || file_ == nullptr) {
      // Degraded: stamp and queue. The frame reaches disk when the
      // fault clears (sync probe) or is subsumed by a checkpoint.
      pending_.push_back(std::move(frame));
      stats_.pending_records = pending_.size();
      ack.durable = last_error_.ok()
                        ? Unavailable("catalog log file is not open")
                        : last_error_;
    } else {
      const Status written = file_->append(frame);
      if (written.ok()) {
        committed_bytes_ += frame.size();
        stats_.log_bytes += static_cast<double>(frame.size());
        if (++unsynced_ >= config_.sync_every) {
          ack.durable = sync_locked();
        }
      } else {
        note_io_error_locked(written);
        pending_.push_back(std::move(frame));
        stats_.pending_records = pending_.size();
        ack.durable = written;
      }
    }
  }
  if (ctr_appends_ != nullptr) ctr_appends_->inc();
  return ack;
}

Status CatalogLog::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  return sync_locked();
}

Status CatalogLog::sync_locked() {
  if (!last_error_.ok() || file_ == nullptr) {
    EVEREST_RETURN_IF_ERROR(recover_io_locked());
  }
  if (unsynced_ > 0) {
    const Status synced = file_->sync();
    if (!synced.ok()) {
      note_io_error_locked(synced);
      return synced;
    }
    unsynced_ = 0;
    ++stats_.syncs;
    if (ctr_syncs_ != nullptr) ctr_syncs_->inc();
  }
  return OkStatus();
}

Status CatalogLog::recover_io_locked() {
  file_.reset();
  // Cut back to the last byte known fully written: a faulted append may
  // have left a short-write torn frame past it.
  if (env_->file_exists(log_path(dir_))) {
    const Status cut = env_->truncate_file(log_path(dir_), committed_bytes_);
    if (!cut.ok()) {
      last_error_ = cut;
      return cut;
    }
  }
  Result<std::unique_ptr<WritableFile>> opened =
      env_->open_append(log_path(dir_));
  if (!opened.ok()) {
    last_error_ = opened.status();
    return opened.status();
  }
  file_ = std::move(opened).value();
  std::size_t drained = 0;
  for (; drained < pending_.size(); ++drained) {
    const std::string& frame = pending_[drained];
    const Status written = file_->append(frame);
    if (!written.ok()) {
      pending_.erase(pending_.begin(),
                     pending_.begin() + static_cast<std::ptrdiff_t>(drained));
      stats_.pending_records = pending_.size();
      note_io_error_locked(written);
      return written;
    }
    committed_bytes_ += frame.size();
    stats_.log_bytes += static_cast<double>(frame.size());
  }
  const bool was_degraded = !last_error_.ok();
  pending_.clear();
  stats_.pending_records = 0;
  last_error_ = OkStatus();
  unsynced_ += drained;
  if (was_degraded) {
    ++stats_.recoveries;
    if (ctr_recoveries_ != nullptr) ctr_recoveries_->inc();
    if (gauge_degraded_ != nullptr) gauge_degraded_->set(0.0);
    EVEREST_LOG(kInfo, "storage")
        << "catalog log recovered; " << drained << " pending record(s) "
        << "replayed to disk";
  }
  return OkStatus();
}

bool CatalogLog::degraded() const {
  std::lock_guard<std::mutex> lock(mu_);
  return !last_error_.ok();
}

Status CatalogLog::write_snapshot(const Catalog& catalog) {
  const std::string tmp = snapshot_path(dir_) + ".tmp";
  Result<std::unique_ptr<WritableFile>> out = env_->open_trunc(tmp);
  if (!out.ok()) return out.status();
  WritableFile& file = *out.value();
  EVEREST_RETURN_IF_ERROR(file.append(catalog.encode()));
  EVEREST_RETURN_IF_ERROR(file.sync());
  EVEREST_RETURN_IF_ERROR(file.close());
  return env_->rename_file(tmp, snapshot_path(dir_));  // atomic on POSIX
}

Status CatalogLog::truncate_log() {
  std::lock_guard<std::mutex> lock(mu_);
  file_.reset();
  Result<std::unique_ptr<WritableFile>> trunc =
      env_->open_trunc(log_path(dir_));
  if (!trunc.ok()) {
    note_io_error_locked(trunc.status());
    return trunc.status();
  }
  {
    WritableFile& file = *trunc.value();
    const Status synced = file.sync();
    if (!synced.ok()) {
      note_io_error_locked(synced);
      return synced;
    }
    (void)file.close();
  }
  committed_bytes_ = 0;
  stats_.log_bytes = 0.0;
  unsynced_ = 0;
  // Every stamped record — including any fault backlog — is folded into
  // the snapshot this truncation follows: the backlog is obsolete.
  pending_.clear();
  stats_.pending_records = 0;
  last_error_ = OkStatus();
  if (gauge_degraded_ != nullptr) gauge_degraded_->set(0.0);
  open_file_locked();
  if (!last_error_.ok()) return last_error_;
  ++stats_.checkpoints;
  if (ctr_checkpoints_ != nullptr) ctr_checkpoints_->inc();
  return OkStatus();
}

Status CatalogLog::checkpoint(const Catalog& catalog) {
  // Try to land every buffered record first; a still-degraded log is
  // fine — `catalog` already folds every stamped seq, so the snapshot
  // subsumes whatever the disk refused.
  (void)sync();
  EVEREST_RETURN_IF_ERROR(write_snapshot(catalog));
  return truncate_log();
}

ReplayResult CatalogLog::replay(const std::string& dir,
                                obs::Registry* registry, Env* env) {
  if (env == nullptr) env = Env::posix();
  ReplayResult result;

  const std::string snap = read_or_empty(env, snapshot_path(dir));
  if (!snap.empty()) {
    Result<Catalog> decoded = Catalog::decode(snap);
    if (decoded.ok()) {
      result.catalog = std::move(decoded).value();
      result.snapshot_loaded = true;
    } else {
      // A damaged snapshot is just a missed shortcut: the log still
      // holds everything (truncation only follows a durable snapshot).
      ++result.corrupt_records;
      EVEREST_LOG(kWarn, "storage")
          << "ignoring corrupt snapshot in " << dir << ": "
          << decoded.status().to_string();
    }
  }

  result.corrupt_records += replay_records(
      dir,
      [&](const LogRecord& record) {
        if (result.catalog.apply(record)) {
          ++result.records_applied;
        } else {
          ++result.records_skipped;
        }
      },
      env);

  if (registry != nullptr) {
    registry->counter("storage.log.corrupt_records")
        ->inc(result.corrupt_records);
    registry->counter("storage.log.replayed_records")
        ->inc(result.records_applied);
  }
  return result;
}

std::uint64_t CatalogLog::replay_records(
    const std::string& dir, const std::function<void(const LogRecord&)>& fn,
    Env* env) {
  if (env == nullptr) env = Env::posix();
  const std::string blob = read_or_empty(env, log_path(dir));
  ByteReader reader(blob);
  std::uint64_t damaged = 0;
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status == DecodeStatus::kEndOfInput) break;
    if (status != DecodeStatus::kOk) {
      // Damaged frame: everything before it already replayed; nothing
      // after it is trustworthy. Count and stop — never crash.
      ++damaged;
      break;
    }
    fn(record);
  }
  return damaged;
}

LogStats CatalogLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t CatalogLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace everest::storage
