#include "storage/log.hpp"

#include <unistd.h>

#include <filesystem>
#include <fstream>

#include "common/logging.hpp"

namespace everest::storage {

namespace fs = std::filesystem;

namespace {

/// Flush stdio buffers and force the bytes to stable storage.
void flush_and_fsync(std::FILE* file) {
  if (file == nullptr) return;
  std::fflush(file);
  ::fsync(fileno(file));
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return {};
  return std::string((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
}

}  // namespace

std::string CatalogLog::log_path(const std::string& dir) {
  return dir + "/catalog.log";
}

std::string CatalogLog::snapshot_path(const std::string& dir) {
  return dir + "/catalog.snap";
}

CatalogLog::CatalogLog(std::string dir, LogConfig config,
                       obs::Registry* registry)
    : dir_(std::move(dir)), config_(config) {
  if (config_.sync_every == 0) config_.sync_every = 1;
  fs::create_directories(dir_);
  // Sequence numbers must keep rising across restarts: resume after the
  // highest seq any surviving file carries.
  const ReplayResult prior = replay(dir_);
  next_seq_ = prior.catalog.last_seq() + 1;
  open_file();
  if (registry != nullptr) {
    ctr_appends_ = registry->counter("storage.log.appends");
    ctr_syncs_ = registry->counter("storage.log.syncs");
    ctr_checkpoints_ = registry->counter("storage.log.checkpoints");
  }
}

CatalogLog::~CatalogLog() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) {
    flush_and_fsync(file_);
    std::fclose(file_);
    file_ = nullptr;
  }
}

void CatalogLog::open_file() {
  file_ = std::fopen(log_path(dir_).c_str(), "ab");
  if (file_ == nullptr) {
    EVEREST_LOG(kError, "storage")
        << "cannot open catalog log " << log_path(dir_);
  }
}

std::uint64_t CatalogLog::append(LogRecord record) {
  std::string frame;
  frame.reserve(kRecordFrameBytes);
  std::uint64_t seq;
  {
    std::lock_guard<std::mutex> lock(mu_);
    seq = next_seq_++;
    record.seq = seq;
    encode_record(record, frame);
    if (file_ != nullptr) {
      std::fwrite(frame.data(), 1, frame.size(), file_);
      if (++unsynced_ >= config_.sync_every) {
        flush_and_fsync(file_);
        unsynced_ = 0;
        ++stats_.syncs;
        if (ctr_syncs_ != nullptr) ctr_syncs_->inc();
      }
    }
    ++stats_.appends;
    stats_.log_bytes += static_cast<double>(frame.size());
  }
  if (ctr_appends_ != nullptr) ctr_appends_->inc();
  return seq;
}

void CatalogLog::sync() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr && unsynced_ > 0) {
    flush_and_fsync(file_);
    unsynced_ = 0;
    ++stats_.syncs;
    if (ctr_syncs_ != nullptr) ctr_syncs_->inc();
  }
}

Status CatalogLog::write_snapshot(const Catalog& catalog) {
  const std::string tmp = snapshot_path(dir_) + ".tmp";
  {
    std::FILE* out = std::fopen(tmp.c_str(), "wb");
    if (out == nullptr) {
      return Internal("cannot write snapshot tmp " + tmp);
    }
    const std::string bytes = catalog.encode();
    std::fwrite(bytes.data(), 1, bytes.size(), out);
    flush_and_fsync(out);
    std::fclose(out);
  }
  std::error_code ec;
  fs::rename(tmp, snapshot_path(dir_), ec);  // atomic on POSIX
  if (ec) {
    return Internal("snapshot rename failed: " + ec.message());
  }
  return OkStatus();
}

Status CatalogLog::truncate_log() {
  std::lock_guard<std::mutex> lock(mu_);
  if (file_ != nullptr) std::fclose(file_);
  file_ = std::fopen(log_path(dir_).c_str(), "wb");  // truncate
  if (file_ == nullptr) {
    return Internal("cannot truncate catalog log");
  }
  flush_and_fsync(file_);
  std::fclose(file_);
  open_file();
  unsynced_ = 0;
  stats_.log_bytes = 0.0;
  ++stats_.checkpoints;
  if (ctr_checkpoints_ != nullptr) ctr_checkpoints_->inc();
  return OkStatus();
}

Status CatalogLog::checkpoint(const Catalog& catalog) {
  sync();  // every record the snapshot folds must be durable first
  EVEREST_RETURN_IF_ERROR(write_snapshot(catalog));
  return truncate_log();
}

ReplayResult CatalogLog::replay(const std::string& dir,
                                obs::Registry* registry) {
  ReplayResult result;

  const std::string snap = read_file(snapshot_path(dir));
  if (!snap.empty()) {
    Result<Catalog> decoded = Catalog::decode(snap);
    if (decoded.ok()) {
      result.catalog = std::move(decoded).value();
      result.snapshot_loaded = true;
    } else {
      // A damaged snapshot is just a missed shortcut: the log still
      // holds everything (truncation only follows a durable snapshot).
      ++result.corrupt_records;
      EVEREST_LOG(kWarn, "storage")
          << "ignoring corrupt snapshot in " << dir << ": "
          << decoded.status().to_string();
    }
  }

  result.corrupt_records += replay_records(dir, [&](const LogRecord& record) {
    if (result.catalog.apply(record)) {
      ++result.records_applied;
    } else {
      ++result.records_skipped;
    }
  });

  if (registry != nullptr) {
    registry->counter("storage.log.corrupt_records")
        ->inc(result.corrupt_records);
    registry->counter("storage.log.replayed_records")
        ->inc(result.records_applied);
  }
  return result;
}

std::uint64_t CatalogLog::replay_records(
    const std::string& dir,
    const std::function<void(const LogRecord&)>& fn) {
  const std::string blob = read_file(log_path(dir));
  ByteReader reader(blob);
  std::uint64_t damaged = 0;
  while (true) {
    LogRecord record;
    const DecodeStatus status = decode_record(reader, &record);
    if (status == DecodeStatus::kEndOfInput) break;
    if (status != DecodeStatus::kOk) {
      // Damaged frame: everything before it already replayed; nothing
      // after it is trustworthy. Count and stop — never crash.
      ++damaged;
      break;
    }
    fn(record);
  }
  return damaged;
}

LogStats CatalogLog::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

std::uint64_t CatalogLog::next_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return next_seq_;
}

}  // namespace everest::storage
