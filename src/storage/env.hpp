// storage::Env — the injectable boundary between the storage subsystem
// and the operating system's filesystem. Every byte CatalogLog,
// SegmentStore, and checkpointing move to or from disk goes through one
// of these virtuals, and every call returns a Status the caller must
// check: there is no I/O in src/storage that can fail silently.
//
// Two implementations ship:
//   * PosixEnv (Env::posix()) — thin fd-based syscall wrapper with
//     errno → Status mapping (ENOSPC → RESOURCE_EXHAUSTED, EIO →
//     UNAVAILABLE, ENOENT → NOT_FOUND, ...). Process-wide singleton.
//   * FaultEnv (fault_env.hpp) — wraps another Env and injects
//     seed-deterministic faults per (path, op, nth-call): short writes,
//     EIO, ENOSPC, slow fsync, silent bit-flips.
//
// The split is what makes the durability layer testable: the same
// production code paths run against scripted media faults, and the
// recovery machinery (torn-tail truncation, scrub + quarantine,
// read-only degradation) is exercised deterministically.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.hpp"

namespace everest::storage {

/// One open append-mode file handle. Writes are sequential; sync()
/// forces everything appended so far to stable storage.
class WritableFile {
 public:
  virtual ~WritableFile() = default;

  /// Appends `data` at the end of the file. A short write (fault or
  /// full disk) may leave a prefix of `data` on disk — callers treat
  /// any error as "the tail of this file is now untrustworthy".
  virtual Status append(std::string_view data) = 0;

  /// fsync: the bytes survive power loss after this returns OK.
  virtual Status sync() = 0;

  /// Closes the descriptor. Idempotent; the destructor closes too
  /// (ignoring errors — call close() when the result matters).
  virtual Status close() = 0;
};

/// Filesystem services the storage layer needs. All paths are plain
/// strings (the layer never walks directories it did not create).
class Env {
 public:
  virtual ~Env() = default;

  /// Opens `path` for appending, creating it if needed.
  virtual Result<std::unique_ptr<WritableFile>> open_append(
      const std::string& path) = 0;

  /// Opens `path` truncated to empty (atomic-replace staging files).
  virtual Result<std::unique_ptr<WritableFile>> open_trunc(
      const std::string& path) = 0;

  /// Whole-file read. NOT_FOUND when the file does not exist.
  virtual Result<std::string> read_file(const std::string& path) = 0;

  virtual Status create_dirs(const std::string& path) = 0;
  /// Atomic on POSIX when both paths share a filesystem.
  virtual Status rename_file(const std::string& from,
                             const std::string& to) = 0;
  virtual Status remove_file(const std::string& path) = 0;
  /// Truncates `path` to exactly `size` bytes (WAL self-healing: cut
  /// back to the last fully committed frame before re-appending).
  virtual Status truncate_file(const std::string& path,
                               std::uint64_t size) = 0;
  /// Plain filenames (not paths) in `path`, unsorted.
  virtual Result<std::vector<std::string>> list_dir(
      const std::string& path) = 0;
  /// Free bytes on the filesystem holding `path` (ENOSPC forecasting).
  virtual Result<std::uint64_t> free_bytes(const std::string& path) = 0;
  virtual bool file_exists(const std::string& path) = 0;

  /// The process-wide real-filesystem Env.
  static Env* posix();
};

}  // namespace everest::storage
