// Append-only segment files: the disk tier's persistent layout. Shards
// demoted from a cache are appended to the active segment as fixed-size
// metadata records (the payload bytes themselves are modeled — charged
// through the tier's I/O channel — but every record is real bytes on
// disk, so a restarted node rediscovers exactly what it holds).
//
// Lifecycle of a segment:
//   * active  — the single open segment; appends go here. When its
//     logical payload passes `segment_bytes` it is sealed.
//   * sealed  — immutable; carries a footer record (count + chained CRC
//     over every payload) that reopen validates.
//   * removed — compaction rewrites a mostly-dead segment's live records
//     into the active segment and deletes the file, reclaiming space.
//   * quarantined — the scrubber found the file corrupt: it is renamed
//     aside (never loaded again), its keys are dropped from the index
//     and tombstoned so no reopen can resurrect them, and the caller
//     repairs them from healthy replicas.
//
// Every file operation goes through an injectable storage::Env and its
// Status is checked. A failed write degrades the store to read-only
// instead of lying: the active segment is sealed in memory, appends are
// refused (erases still take effect in memory; their tombstones queue),
// and retry_io() probes the medium — on success writes resume in a
// fresh segment and the queued tombstones are flushed.
//
// Reopening a directory rebuilds the in-memory index by scanning the
// files: sealed segments must match their footer; a torn or corrupt tail
// (crash mid-append) is truncated and counted, never fatal. Segments
// recovered without a footer are treated as sealed ("recovered-sealed")
// and appends continue in a fresh segment — nothing is ever written
// after a damaged region.
//
// With an empty directory the store runs fully in memory (same logic,
// no files) — the mode the pure-simulation benches use.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.hpp"
#include "data/object.hpp"
#include "storage/env.hpp"
#include "storage/format.hpp"

namespace everest::storage {

struct SegmentConfig {
  /// Logical payload bytes per segment before it seals.
  double segment_bytes = 64.0 * 1024 * 1024;
  /// compact() rewrites segments whose dead fraction passes this.
  double compact_dead_fraction = 0.5;
};

struct SegmentStats {
  std::uint64_t appends = 0;
  std::uint64_t seals = 0;
  std::uint64_t compactions = 0;       ///< compact() passes that moved data
  std::uint64_t segments_removed = 0;  ///< files reclaimed by compaction
  std::uint64_t corrupt_records = 0;   ///< damaged frames skipped on reopen
  std::uint64_t io_errors = 0;         ///< failed writes/opens/removes
  std::uint64_t io_resumes = 0;        ///< read-only → writable transitions
  std::uint64_t quarantined_segments = 0;  ///< corrupt files renamed aside
  double live_bytes = 0.0;  ///< logical payload of indexed shards
  double dead_bytes = 0.0;  ///< logical payload of erased shards not yet
                            ///< reclaimed by compaction
};

/// What one scrub of a segment file found.
struct VerifyResult {
  bool clean = true;
  std::uint64_t frames = 0;          ///< good non-footer frames decoded
  std::uint64_t corrupt_frames = 0;  ///< torn/corrupt frames (stops the scan)
  bool chain_mismatch = false;  ///< file disagrees with footer/index state
  bool read_failed = false;     ///< could not read the file at all
  double bytes_scanned = 0.0;   ///< physical file bytes examined
};

/// Single-owner (the tier serializes access through the data plane).
class SegmentStore {
 public:
  /// Opens (or creates) the store in `dir`; empty `dir` = in-memory.
  /// Existing segment files are scanned to rebuild the index. `env`
  /// (borrowed, null = posix) is the filesystem boundary.
  explicit SegmentStore(std::string dir, SegmentConfig config = {},
                        Env* env = nullptr);
  ~SegmentStore();

  SegmentStore(const SegmentStore&) = delete;
  SegmentStore& operator=(const SegmentStore&) = delete;

  /// Appends one shard record; seals and rolls the active segment when
  /// full. ALREADY_EXISTS if the shard is indexed (erase first to
  /// re-append a new copy). While read-only (a prior I/O fault) the
  /// original error is returned and nothing is indexed.
  Status append(const data::ShardKey& key, double bytes);

  [[nodiscard]] bool contains(const data::ShardKey& key) const {
    return index_.count(key) != 0;
  }
  /// Logical bytes of an indexed shard; NOT_FOUND otherwise.
  [[nodiscard]] Result<double> locate(const data::ShardKey& key) const;

  /// Drops a shard from the index; its bytes become dead weight in the
  /// owning segment until compaction. False if absent. Always takes
  /// effect in memory; the tombstone frame queues if the disk is sick.
  bool erase(const data::ShardKey& key);

  /// Drops every indexed shard of `object` with version < `version`.
  std::size_t invalidate_object(data::ObjectId object, std::uint64_t version);

  /// Seals the active segment now (recovery boundary for tests).
  void seal_active();

  /// Rewrites every sealed segment whose dead fraction exceeds the
  /// configured threshold, appending its live records to the active
  /// segment and deleting the file. Returns segments reclaimed. A write
  /// fault mid-pass rolls the in-flight record back and stops (nothing
  /// is lost; the remaining victims wait for a healthy disk).
  std::size_t compact();

  // ---- media-fault handling (scrub + degradation) -------------------------

  /// True after a write fault: appends refused, tombstones queued.
  [[nodiscard]] bool read_only() const { return read_only_; }
  /// Probes the medium: opens a fresh segment and flushes queued
  /// tombstones. OK = writable again; otherwise the store stays
  /// read-only and the probe's error is returned.
  Status retry_io();
  /// Tombstones waiting for a healthy disk (monitoring/tests).
  [[nodiscard]] std::size_t pending_tombstones() const {
    return pending_tombstones_.size();
  }

  /// Re-reads one sealed segment's file and checks every frame CRC, the
  /// chained payload CRC, and the footer. In-memory stores are always
  /// clean (no media to rot).
  [[nodiscard]] VerifyResult verify_segment(std::uint64_t id) const;

  /// Removes a corrupt segment from service: the file is renamed aside
  /// (never loaded again), its live keys are dropped from the index and
  /// tombstoned (never resurrected), and they are returned as suspects
  /// for the caller to repair from healthy replicas.
  std::vector<data::ShardKey> quarantine_segment(std::uint64_t id);

  /// Sealed (scrub-eligible) segment ids, ascending.
  [[nodiscard]] std::vector<std::uint64_t> sealed_segment_ids() const;
  /// Physical frame bytes of a segment (scrub byte budgeting).
  [[nodiscard]] double segment_physical_bytes(std::uint64_t id) const;

  /// Visits every indexed shard (key order).
  void for_each(
      const std::function<void(const data::ShardKey&, double bytes)>& fn) const;

  [[nodiscard]] const SegmentStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] std::size_t size() const { return index_.size(); }
  [[nodiscard]] double live_bytes() const { return stats_.live_bytes; }
  [[nodiscard]] const std::string& dir() const { return dir_; }

 private:
  struct Segment {
    std::uint64_t id = 0;
    /// Live records by key (logical bytes each).
    std::map<data::ShardKey, double> live;
    double live_bytes = 0.0;
    double dead_bytes = 0.0;
    bool sealed = false;
    std::uint32_t chain_crc = 0;  ///< CRC chained over appended payloads
    std::uint64_t records = 0;
  };

  [[nodiscard]] std::string segment_path(std::uint64_t id) const;
  Segment& active();
  void open_new_segment();
  void seal(Segment& segment);
  /// Scans one existing file into a Segment; returns damaged frames.
  std::uint64_t load_segment(std::uint64_t id, const std::string& path);
  /// Raw frame write to the active file (OK in in-memory mode).
  Status write_bytes(const std::string& frame);
  /// Sick-disk entry: seal the active segment in memory, refuse writes.
  void enter_read_only(const Status& cause);
  /// Writes (or queues, when read-only) one tombstone frame.
  void write_tombstone(const data::ShardKey& key, double bytes);

  std::string dir_;
  SegmentConfig config_;
  Env* env_;
  std::map<std::uint64_t, Segment> segments_;
  std::uint64_t next_id_ = 0;
  std::uint64_t active_id_ = 0;
  /// Key → owning segment id.
  std::map<data::ShardKey, std::uint64_t> index_;
  std::unique_ptr<WritableFile> active_file_;  ///< null in in-memory mode
  bool read_only_ = false;
  Status last_error_;
  /// Erases whose tombstone frame awaits a writable disk.
  std::vector<std::pair<data::ShardKey, double>> pending_tombstones_;
  SegmentStats stats_;
};

}  // namespace everest::storage
