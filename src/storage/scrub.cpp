#include "storage/scrub.hpp"

#include <algorithm>

#include "common/logging.hpp"

namespace everest::storage {

Scrubber::Scrubber(SegmentStore& store, ScrubConfig config,
                   obs::Registry* registry, std::size_t node)
    : store_(store), config_(config) {
  if (config_.bytes_per_step <= 0.0) {
    config_.bytes_per_step = ScrubConfig{}.bytes_per_step;
  }
  if (registry != nullptr) {
    const obs::Labels labels{{"node", std::to_string(node)}};
    ctr_verified_ = registry->counter("storage.scrub.segments_verified", labels);
    ctr_quarantined_ =
        registry->counter("storage.scrub.segments_quarantined", labels);
    ctr_suspects_ = registry->counter("storage.scrub.suspects", labels);
    ctr_bytes_ = registry->counter("storage.scrub.bytes_scanned", labels);
  }
}

void Scrubber::scrub_one(std::uint64_t id, ScrubReport& report) {
  const VerifyResult verdict = store_.verify_segment(id);
  report.bytes_scanned += verdict.bytes_scanned;
  stats_.bytes_scanned += verdict.bytes_scanned;
  if (ctr_bytes_ != nullptr) {
    ctr_bytes_->inc(static_cast<std::uint64_t>(verdict.bytes_scanned));
  }
  if (verdict.clean) {
    ++report.segments_verified;
    ++stats_.segments_verified;
    if (ctr_verified_ != nullptr) ctr_verified_->inc();
    journal_.push_back("verify seg-" + std::to_string(id) + " frames=" +
                       std::to_string(verdict.frames) + " clean");
    return;
  }
  std::string why = verdict.read_failed      ? "read-failed"
                    : verdict.chain_mismatch ? "chain-mismatch"
                                             : "corrupt-frames";
  journal_.push_back("verify seg-" + std::to_string(id) + " frames=" +
                     std::to_string(verdict.frames) +
                     " corrupt=" + std::to_string(verdict.corrupt_frames) +
                     " " + why);
  std::vector<data::ShardKey> suspects = store_.quarantine_segment(id);
  ++report.segments_quarantined;
  ++stats_.segments_quarantined;
  stats_.suspects += suspects.size();
  if (ctr_quarantined_ != nullptr) ctr_quarantined_->inc();
  if (ctr_suspects_ != nullptr) ctr_suspects_->inc(suspects.size());
  journal_.push_back("quarantine seg-" + std::to_string(id) +
                     " suspects=" + std::to_string(suspects.size()));
  EVEREST_LOG(kWarn, "storage")
      << "scrub quarantined segment " << id << " (" << why << "), "
      << suspects.size() << " suspect key(s) need repair";
  report.suspects.insert(report.suspects.end(), suspects.begin(),
                         suspects.end());
}

ScrubReport Scrubber::step() {
  ScrubReport report;
  ++stats_.steps;
  const std::vector<std::uint64_t> sealed = store_.sealed_segment_ids();
  if (sealed.empty()) return report;
  // Resume after the cursor; ids are ascending, so the first id strictly
  // greater than the last one examined continues the round-robin.
  auto it = std::upper_bound(sealed.begin(), sealed.end(), cursor_);
  std::size_t start = static_cast<std::size_t>(it - sealed.begin());
  if (start == sealed.size()) start = 0;  // wrapped: new pass
  double budget = config_.bytes_per_step;
  for (std::size_t n = 0; n < sealed.size(); ++n) {
    const std::uint64_t id = sealed[(start + n) % sealed.size()];
    // Never split a segment across steps: scan it whole, then stop if
    // the budget is spent. Guarantees progress on oversized segments.
    const double cost = store_.segment_physical_bytes(id);
    scrub_one(id, report);
    cursor_ = id;
    budget -= cost;
    if (budget <= 0.0) break;
  }
  return report;
}

ScrubReport Scrubber::full_pass() {
  ScrubReport report;
  ++stats_.steps;
  for (const std::uint64_t id : store_.sealed_segment_ids()) {
    scrub_one(id, report);
    cursor_ = id;
  }
  return report;
}

}  // namespace everest::storage
