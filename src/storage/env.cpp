#include "storage/env.hpp"

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/statvfs.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>

namespace everest::storage {

namespace fs = std::filesystem;

namespace {

Status errno_status(const std::string& what, int err) {
  const std::string msg = what + ": " + std::strerror(err);
  switch (err) {
    case ENOSPC:
#ifdef EDQUOT
    case EDQUOT:
#endif
      return ResourceExhausted(msg);
    case EIO:
      return Unavailable(msg);  // retryable: the medium may recover
    case ENOENT:
      return NotFound(msg);
    case EACCES:
    case EROFS:
      return PermissionDenied(msg);
    default:
      return Internal(msg);
  }
}

class PosixFile final : public WritableFile {
 public:
  PosixFile(int fd, std::string path) : fd_(fd), path_(std::move(path)) {}
  ~PosixFile() override { (void)close(); }

  Status append(std::string_view data) override {
    if (fd_ < 0) return FailedPrecondition("write to closed file " + path_);
    const char* p = data.data();
    std::size_t left = data.size();
    while (left > 0) {
      const ssize_t n = ::write(fd_, p, left);
      if (n < 0) {
        if (errno == EINTR) continue;
        return errno_status("write " + path_, errno);
      }
      p += n;
      left -= static_cast<std::size_t>(n);
    }
    return OkStatus();
  }

  Status sync() override {
    if (fd_ < 0) return FailedPrecondition("sync of closed file " + path_);
    if (::fsync(fd_) != 0) return errno_status("fsync " + path_, errno);
    return OkStatus();
  }

  Status close() override {
    if (fd_ < 0) return OkStatus();
    const int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return errno_status("close " + path_, errno);
    return OkStatus();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> open_append(
      const std::string& path) override {
    return open_with(path, O_WRONLY | O_CREAT | O_APPEND);
  }

  Result<std::unique_ptr<WritableFile>> open_trunc(
      const std::string& path) override {
    return open_with(path, O_WRONLY | O_CREAT | O_TRUNC);
  }

  Result<std::string> read_file(const std::string& path) override {
    const int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) return errno_status("open " + path, errno);
    std::string out;
    char buf[1 << 16];
    while (true) {
      const ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        const int err = errno;
        ::close(fd);
        return errno_status("read " + path, err);
      }
      if (n == 0) break;
      out.append(buf, static_cast<std::size_t>(n));
    }
    ::close(fd);
    return out;
  }

  Status create_dirs(const std::string& path) override {
    std::error_code ec;
    fs::create_directories(path, ec);
    if (ec) return Internal("mkdir " + path + ": " + ec.message());
    return OkStatus();
  }

  Status rename_file(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return errno_status("rename " + from + " -> " + to, errno);
    }
    return OkStatus();
  }

  Status remove_file(const std::string& path) override {
    if (::unlink(path.c_str()) != 0) {
      return errno_status("unlink " + path, errno);
    }
    return OkStatus();
  }

  Status truncate_file(const std::string& path, std::uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return errno_status("truncate " + path, errno);
    }
    return OkStatus();
  }

  Result<std::vector<std::string>> list_dir(const std::string& path) override {
    std::error_code ec;
    std::vector<std::string> names;
    for (fs::directory_iterator it(path, ec), end; !ec && it != end;
         it.increment(ec)) {
      names.push_back(it->path().filename().string());
    }
    if (ec) return Internal("listdir " + path + ": " + ec.message());
    return names;
  }

  Result<std::uint64_t> free_bytes(const std::string& path) override {
    struct statvfs vfs{};
    if (::statvfs(path.c_str(), &vfs) != 0) {
      return errno_status("statvfs " + path, errno);
    }
    return static_cast<std::uint64_t>(vfs.f_bavail) *
           static_cast<std::uint64_t>(vfs.f_frsize);
  }

  bool file_exists(const std::string& path) override {
    struct stat st{};
    return ::stat(path.c_str(), &st) == 0;
  }

 private:
  static Result<std::unique_ptr<WritableFile>> open_with(
      const std::string& path, int flags) {
    const int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return errno_status("open " + path, errno);
    return std::unique_ptr<WritableFile>(new PosixFile(fd, path));
  }
};

}  // namespace

Env* Env::posix() {
  static PosixEnv env;
  return &env;
}

}  // namespace everest::storage
