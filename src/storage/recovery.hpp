// Restart-time recovery: replays snapshot + write-ahead log into a
// Catalog, times it, and reports it through the observability stack (a
// "recovery" span on the tracer, storage.recovery.* metrics on the
// registry). The data plane then re-seeds its object, placement, and
// disk-tier maps from the result — coming back *warm* instead of
// recomputing lineage from scratch.
#pragma once

#include <cstdint>
#include <string>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "storage/log.hpp"

namespace everest::storage {

struct RecoveryReport {
  ReplayResult replay;
  double wall_us = 0.0;  ///< real time spent loading snapshot + log

  [[nodiscard]] std::string to_string() const;
};

/// Replays `dir` and instruments the result. `registry` and `tracer`
/// are borrowed and may be null.
RecoveryReport recover_catalog(const std::string& dir,
                               obs::Registry* registry = nullptr,
                               obs::Tracer* tracer = nullptr);

}  // namespace everest::storage
