#include "jit/jit.hpp"

#include <chrono>

#if defined(__linux__)
#include <pthread.h>
#include <sched.h>
#endif

namespace everest::jit {

void set_background_thread_priority() {
#if defined(__linux__)
  // SCHED_IDLE: the kernel runs this thread only when nothing else is
  // runnable and preempts it the instant a serving thread wakes. This is
  // what insulates tail latency from a compile slice on few-core nodes —
  // the budget caps how much compile work runs, the priority decides
  // when it runs.
  sched_param param{};
  (void)pthread_setschedparam(pthread_self(), SCHED_IDLE, &param);
#endif
}

namespace {
double steady_us() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

JitService::JitService(runtime::KnowledgeBase* kb,
                       const obs::Registry* serving_registry,
                       obs::Registry* jit_registry, obs::Tracer* tracer,
                       storage::Env* env, JitConfig config)
    : serving_registry_(serving_registry),
      tracer_(tracer),
      env_(env),
      config_(std::move(config)),
      cache_(kb, jit_registry, config_.cache),
      service_(&cache_, jit_registry, tracer, config_.service),
      detector_(kb, jit_registry, config_.detector) {}

JitService::~JitService() { stop(); }

Result<std::size_t> JitService::warm_restart() {
  if (env_ == nullptr || config_.cache_path.empty()) {
    return std::size_t{0};
  }
  auto restored = cache_.load(env_, config_.cache_path);
  if (!restored.ok() && restored.status().code() == StatusCode::kNotFound) {
    return std::size_t{0};  // cold start
  }
  return restored;
}

Status JitService::persist() const {
  if (env_ == nullptr || config_.cache_path.empty()) return OkStatus();
  return cache_.save(env_, config_.cache_path);
}

std::size_t JitService::tick(double now_us) {
  obs::Tracer::ScopedSpan scan_span;
  if (tracer_ != nullptr) scan_span = tracer_->scoped("jit.detect", "jit");
  std::vector<HotCandidate> candidates =
      detector_.scan(serving_registry_->snapshot(now_us));
  if (scan_span.active()) {
    scan_span.annotate("candidates", std::to_string(candidates.size()));
  }
  service_.enqueue(candidates);
  return service_.run_pending(now_us);
}

void JitService::start() {
  bool expected = false;
  if (!running_.compare_exchange_strong(expected, true)) return;
  worker_ = std::thread([this] { run_loop(); });
}

void JitService::stop() {
  if (running_.exchange(false) && worker_.joinable()) worker_.join();
  if (env_ != nullptr && !config_.cache_path.empty()) {
    persist();  // best effort; callers needing the Status call persist()
  }
}

void JitService::run_loop() {
  set_background_thread_priority();
  while (running_.load(std::memory_order_acquire)) {
    tick(steady_us());
    // Sleep in small slices so stop() is responsive even with long scan
    // periods.
    double remaining_us = config_.scan_period_us;
    while (remaining_us > 0.0 && running_.load(std::memory_order_acquire)) {
      const double slice_us = std::min(remaining_us, 10'000.0);
      std::this_thread::sleep_for(
          std::chrono::microseconds(static_cast<std::int64_t>(slice_us)));
      remaining_us -= slice_us;
    }
  }
}

}  // namespace everest::jit
