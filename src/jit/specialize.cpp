#include "jit/specialize.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "common/rng.hpp"
#include "common/strings.hpp"
#include "compiler/dse.hpp"

namespace everest::jit {

namespace {

/// Scales the scale-1 profile to the tuple's data feature (volume is
/// linear in scale for every cost axis).
compiler::KernelProfile scaled_profile(const compiler::KernelProfile& p,
                                       double scale) {
  compiler::KernelProfile out = p;
  out.flops *= scale;
  out.special_ops *= scale;
  out.bytes_read *= scale;
  out.bytes_written *= scale;
  out.live_bytes = static_cast<std::int64_t>(
      static_cast<double>(p.live_bytes) * scale);
  return out;
}

/// FNV-1a over the tuple key: folds the tuple identity into the DSE seed
/// so two tuples never share an exploration stream by accident.
std::uint64_t tuple_seed(const HotTuple& tuple, std::uint64_t seed) {
  std::uint64_t h = 1469598103934665603ULL;
  for (char c : tuple.key()) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ULL;
  }
  return h ^ seed;
}

}  // namespace

ShapeEstimate estimate_shaped(const KernelSpec& spec, int threads, int tile,
                              const std::string& layout, double scale) {
  const compiler::SwEstimate est = compiler::estimate_software(
      scaled_profile(spec.profile, scale), spec.cpu, threads, tile, layout);
  double match = 1.0;
  if (tile > 0) {
    const double dim = std::max(1.0, spec.base_dim * std::sqrt(scale));
    const double r = static_cast<double>(tile) / dim;
    if (r > 1.0) {
      // The tile overshoots the problem: the padded remainder iterations
      // are wasted work proportional to the overshoot.
      match = r;
    } else {
      // Finer tiles pay strip-mining overhead (loop bookkeeping, edge
      // re-loads) that an exact-fit tile elides.
      match = 1.0 + 0.25 * (1.0 - r);
    }
  }
  ShapeEstimate out;
  out.latency_us = est.latency_us * match;
  out.energy_uj = est.energy_uj * match;
  return out;
}

ShapeEstimate estimate_variant(const KernelSpec& spec,
                               const compiler::Variant& variant, double scale) {
  if (variant.target == compiler::TargetKind::kFpga) {
    // HLS designs are shape-agnostic in this model: static estimate,
    // linear in volume.
    return ShapeEstimate{variant.latency_us * scale,
                         variant.energy_uj * scale};
  }
  return estimate_shaped(spec, variant.threads, variant.tile, variant.layout,
                         scale);
}

double oracle_latency_us(const KernelSpec& spec, double scale) {
  const double dim = std::max(1.0, spec.base_dim * std::sqrt(scale));
  double best = std::numeric_limits<double>::infinity();
  for (int threads : spec.thread_candidates) {
    for (const std::string& layout : spec.layouts) {
      // The oracle knows the exact-fit tile; sweep it plus the generic
      // power-of-two menu (including the L2-fitting sizes an exact fit
      // overflows at large dims) so "no tiling wins" shapes and
      // cache-bounded shapes are both represented.
      for (int tile : {0, 32, 64, 128, 256, 512,
                       static_cast<int>(std::lround(dim)),
                       static_cast<int>(std::lround(dim / 2.0))}) {
        if (tile < 0) continue;
        best = std::min(
            best, estimate_shaped(spec, threads, tile, layout, scale)
                      .latency_us);
      }
    }
  }
  return best;
}

Result<MintedVariants> specialize(const KernelSpec& spec,
                                  const SpecializeRequest& request) {
  if (spec.kernel.empty()) return InvalidArgument("spec needs a kernel name");
  if (spec.profile.flops <= 0.0 && spec.profile.total_bytes() <= 0.0) {
    return InvalidArgument("kernel '" + spec.kernel +
                           "' has an empty cost profile; nothing to "
                           "specialize against");
  }
  if (spec.thread_candidates.empty() || spec.layouts.empty()) {
    return InvalidArgument("kernel '" + spec.kernel +
                           "' spec has an empty knob space");
  }
  const double scale = request.tuple.scale();
  const double dim = std::max(1.0, spec.base_dim * std::sqrt(scale));

  // ---- tile menu: exact fit, its pow2 neighbors, plus seeded DSE
  // exploration points (deterministic in (tuple, seed)). ----
  std::set<int> tiles;
  const int fit = std::max(8, static_cast<int>(std::lround(dim)));
  tiles.insert(fit);
  const int pow2_below = 1 << static_cast<int>(std::floor(std::log2(fit)));
  tiles.insert(std::max(8, pow2_below));
  tiles.insert(std::max(8, pow2_below * 2));
  tiles.insert(std::max(8, fit / 2));
  tiles.insert(std::min(1024, fit * 2));
  static constexpr int kMenu[] = {8,  16, 24,  32,  48,  64,
                                  96, 128, 192, 256, 384, 512};
  SplitMix64 sm(tuple_seed(request.tuple, request.seed));
  for (int i = 0; i < 2; ++i) {
    tiles.insert(kMenu[sm.next() % (sizeof(kMenu) / sizeof(kMenu[0]))]);
  }
  tiles.insert(0);  // the untiled point anchors the front

  // ---- sweep: threads x tiles x layouts through the shape-aware
  // roofline (the DSE candidate set). ----
  std::vector<compiler::Variant> candidates;
  for (int threads : spec.thread_candidates) {
    for (int tile : tiles) {
      for (const std::string& layout : spec.layouts) {
        const ShapeEstimate est =
            estimate_shaped(spec, threads, tile, layout, scale);
        compiler::Variant v;
        v.kernel = spec.kernel;
        v.target = compiler::TargetKind::kCpu;
        v.threads = threads;
        v.tile = tile;
        v.layout = layout;
        v.specialized_scale = scale;
        // Normalized to scale 1: the autotuner multiplies expectations by
        // the live data_scale, so at the target scale the prediction
        // reproduces est exactly.
        v.latency_us = est.latency_us / scale;
        v.energy_uj = est.energy_uj / scale;
        v.bytes_in = spec.profile.bytes_read * scale;
        v.bytes_out = spec.profile.bytes_written * scale;
        candidates.push_back(std::move(v));
      }
    }
  }

  // ---- DSE filter: Pareto front on (latency, energy), then knee point
  // plus the two extremes — the same selection shape the offline
  // pipeline hands the runtime. ----
  std::vector<compiler::Variant> front =
      compiler::pareto_variants(candidates, {});
  if (front.empty()) return Internal("empty Pareto front");
  std::vector<std::size_t> picks;
  picks.push_back(compiler::knee_point(front));
  std::size_t min_lat = 0, min_en = 0;
  for (std::size_t i = 1; i < front.size(); ++i) {
    if (front[i].latency_us < front[min_lat].latency_us) min_lat = i;
    if (front[i].energy_uj < front[min_en].energy_uj) min_en = i;
  }
  picks.push_back(min_lat);
  picks.push_back(min_en);
  std::sort(picks.begin(), picks.end());
  picks.erase(std::unique(picks.begin(), picks.end()), picks.end());

  MintedVariants out;
  out.dse_points = candidates.size();
  out.pareto_size = front.size();
  for (std::size_t i : picks) {
    compiler::Variant v = front[i];
    v.id = strprintf("jit-%s-b%d%s%s-v%u-t%d-tile%d-%s", spec.kernel.c_str(),
                     request.tuple.bucket,
                     request.tuple.tenant.empty() ? "" : "-",
                     request.tuple.tenant.c_str(), request.version, v.threads,
                     v.tile, v.layout.c_str());
    out.variants.push_back(std::move(v));
  }
  out.descriptor_json = compiler::variants_to_json(out.variants).dump();
  return out;
}

}  // namespace everest::jit
