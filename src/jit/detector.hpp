// The JIT's eyes: mines the serving layer's data-feature export
// (serve.feature.* registry series, written by ServingMetrics::
// record_feature at batch dispatch) for hot (kernel, bucket, tenant)
// tuples worth specializing. "Hot" = enough requests in the scan window
// AND positive regret: the observed per-request cost exceeds the best
// expectation any CURRENT variant offers at that tuple's scale (the
// KnowledgeBase::observe-calibrated blend), so fresh shape-specialized
// code could plausibly buy the difference back.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "jit/tuple.hpp"
#include "obs/registry.hpp"
#include "runtime/knowledge.hpp"

namespace everest::jit {

struct DetectorConfig {
  /// A tuple must see at least this many requests in the scan window
  /// before it is surfaced (cold tuples are not worth compile budget).
  std::uint64_t min_requests = 32;
  /// Minimum per-request regret (us) to surface a tuple.
  double min_regret_us = 1.0;
  /// At most this many candidates per scan, best priority first.
  std::size_t max_candidates = 4;
};

/// Stateful scanner over serving-registry snapshots. Keeps the previous
/// snapshot and works on reset-aware deltas, so each scan sees only the
/// traffic of its own window. Single owner (the compilation service's
/// scan loop); not thread-safe by itself.
class HotTupleDetector {
 public:
  /// `kb` supplies the best-known expectations regret is measured
  /// against. `jit_registry` (optional) receives jit.regret{...} gauges
  /// and the jit.detector.* scan counters.
  HotTupleDetector(const runtime::KnowledgeBase* kb,
                   obs::Registry* jit_registry = nullptr,
                   DetectorConfig config = {});

  /// Scans one serving-registry snapshot against the previous one.
  /// Returns surfaced candidates sorted by descending priority
  /// (requests x regret — the window cost left on the table).
  std::vector<HotCandidate> scan(const obs::RegistrySnapshot& snapshot);

  /// Tuples with any traffic in the last window (before thresholds) —
  /// visible for tests and the bench.
  [[nodiscard]] std::size_t last_window_tuples() const {
    return last_window_tuples_;
  }

 private:
  const runtime::KnowledgeBase* kb_;
  obs::Registry* jit_registry_;
  DetectorConfig config_;
  obs::RegistrySnapshot prev_;
  bool has_prev_ = false;
  std::size_t last_window_tuples_ = 0;
};

/// Parses a canonical serve.feature.* instrument key back into a tuple.
/// `prefix` is the series name, e.g. "serve.feature.requests". Returns
/// false when the key is not that series or lacks the tuple labels.
bool parse_feature_key(const std::string& key, const std::string& prefix,
                       HotTuple* out);

}  // namespace everest::jit
