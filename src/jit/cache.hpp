// VariantCache — the publish side of the compile↔serve loop. Holds one
// versioned entry per hot tuple; publishing an entry atomically hot-swaps
// its minted variants into the KnowledgeBase (upsert new ids, retire the
// previous version's ids), so serving workers pick them up on their next
// selection while in-flight batches finish on the snapshot they hold
// (epoch-based retirement, see runtime/knowledge.hpp).
//
// The cache is also the warm-restart store: save() serializes every entry
// (schema "everest.jitcache.v1") through storage::Env with the
// write-to-temp + rename atomic-replace idiom, and load() republishes the
// persisted variants into the KnowledgeBase without re-running DSE.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.hpp"
#include "jit/specialize.hpp"
#include "jit/tuple.hpp"
#include "obs/registry.hpp"
#include "runtime/knowledge.hpp"
#include "storage/env.hpp"

namespace everest::jit {

struct CacheConfig {
  /// LRU capacity; evicting an entry also retires its variants from the
  /// KnowledgeBase (the cache is the authority on JIT-minted ids).
  std::size_t max_entries = 64;
};

struct CacheStats {
  std::uint64_t hits = 0;
  std::uint64_t misses = 0;
  std::uint64_t evictions = 0;
  std::uint64_t publishes = 0;
};

/// One published specialization.
struct CacheEntry {
  HotTuple tuple;
  std::uint32_t version = 0;  ///< bumped on every re-specialization
  std::uint64_t seed = 0;     ///< the DSE seed the entry was minted with
  std::vector<compiler::Variant> variants;  ///< what is live in the KB
  std::uint64_t kb_epoch = 0;  ///< KB epoch after this entry's publish
};

class VariantCache {
 public:
  /// `kb` receives the hot swaps; `registry` (optional) receives
  /// jit.cache.{hit,miss,evict,publish} counters and the
  /// jit.cache.entries gauge.
  explicit VariantCache(runtime::KnowledgeBase* kb,
                        obs::Registry* registry = nullptr,
                        CacheConfig config = {});

  /// Fast-path membership probe (the serving scan's dedup check): the
  /// published version covering `tuple`, or 0 when none. Counts a
  /// hit/miss and refreshes LRU recency on hit. Budgeted <200 ns in
  /// bench_micro — one hash lookup, no string allocation.
  std::uint32_t covers(const HotTuple& tuple);

  /// Publishes a freshly minted set for `tuple`: upserts into the
  /// KnowledgeBase, retires the previous version's ids that the new set
  /// does not reuse, stores the entry (evicting LRU over capacity).
  /// Returns the entry's new version.
  Result<std::uint32_t> publish(const HotTuple& tuple,
                                const MintedVariants& minted,
                                std::uint64_t seed);

  /// Copy of the entry covering `tuple` (no stats side effects).
  [[nodiscard]] std::optional<CacheEntry> lookup(const HotTuple& tuple) const;

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] CacheStats stats() const;

  // ---- persistence (warm restart without recompilation) ----

  /// Atomic-replace save of every entry to `path` via `env`.
  Status save(storage::Env* env, const std::string& path) const;

  /// Loads a saved cache and republishes every entry into the
  /// KnowledgeBase. Returns the number of entries restored; NOT_FOUND
  /// from the Env is surfaced (callers treat it as a cold start).
  Result<std::size_t> load(storage::Env* env, const std::string& path);

 private:
  /// Caller holds mu_. Removes the LRU entry and retires its ids.
  void evict_one_locked();

  runtime::KnowledgeBase* kb_;
  obs::Registry* registry_;
  CacheConfig config_;

  mutable std::mutex mu_;
  struct Slot {
    CacheEntry entry;
    std::uint64_t last_used = 0;
  };
  std::unordered_map<HotTuple, Slot, HotTupleHash> entries_;
  std::uint64_t tick_ = 0;
  CacheStats stats_;
};

}  // namespace everest::jit
