// The JIT's compile step: feed a hot (kernel, data-feature, tenant) tuple
// through the compiler's rewrite/DSE pipeline and mint shape-specialized
// variant descriptors. The pipeline is the offline variant generator's
// machinery (estimate_software roofline, pareto_front, knee_point from
// src/compiler/{variants,dse}) applied to a profile rescaled to the
// tuple's data feature, plus a shape-match term the offline sweep cannot
// have: the tile is chosen against the ACTUAL problem dimension the
// bucket implies, so remainder waste and strip-mining overhead are
// modeled — and rewarded — per shape.
//
// Determinism contract (the warm-restart precondition, tested by TEST_P
// in test_jit): specialize() is a pure function of (spec, tuple, seed,
// version). Same inputs => byte-identical descriptor JSON across reruns
// and processes, so a persisted VariantCache can be trusted to equal
// what recompilation would produce.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "compiler/analysis.hpp"
#include "compiler/variants.hpp"
#include "jit/tuple.hpp"

namespace everest::jit {

/// Everything the JIT needs to compile variants for one kernel —
/// registered once by the application (the compiler emits profiles; the
/// serving layer knows which kernels it exposes).
struct KernelSpec {
  std::string kernel;
  /// Static cost profile at data scale 1 (compiler::profile_kernel, or
  /// hand-calibrated like the serving endpoints' variants).
  compiler::KernelProfile profile;
  compiler::CpuModel cpu;
  /// Problem dimension at scale 1 (the tile-match axis): a scale-s
  /// request works on a ~(base_dim*sqrt(s))^2 working set.
  double base_dim = 64.0;
  /// Knob space the specializer sweeps.
  std::vector<int> thread_candidates = {1, 2, 4, 8};
  std::vector<std::string> layouts = {"soa", "aos"};
};

/// Shape-aware roofline estimate for one configuration at one data scale.
struct ShapeEstimate {
  double latency_us = 0.0;  ///< at the given scale (NOT normalized)
  double energy_uj = 0.0;
};

/// estimate_software on the scale-adjusted profile, multiplied by the
/// tile-vs-shape match factor:
///   * tile > dim  -> padding/remainder waste, latency x (tile/dim)
///   * tile < dim  -> strip-mining overhead, latency x (1 + 0.25*(1-r))
///   * tile == dim -> exact fit (as long as it also fits L2)
/// Used by both the specializer (to rank candidates) and the E26
/// endpoint's execution model (so minted variants genuinely run faster).
ShapeEstimate estimate_shaped(const KernelSpec& spec, int threads, int tile,
                              const std::string& layout, double scale);

/// Convenience: estimate a variant's knobs (tile/threads/layout) at a
/// scale. FPGA variants fall back to their static estimate x scale.
ShapeEstimate estimate_variant(const KernelSpec& spec,
                               const compiler::Variant& variant, double scale);

/// The best latency ANY configuration in the spec's knob space achieves
/// at this scale — the per-request oracle the E26 regret series is
/// measured against.
double oracle_latency_us(const KernelSpec& spec, double scale);

struct SpecializeRequest {
  HotTuple tuple;
  /// Seed for the DSE exploration points (deterministic expansion).
  std::uint64_t seed = 0;
  /// Version of this tuple's minted set; baked into the variant ids so a
  /// re-specialization retires its predecessor unambiguously.
  std::uint32_t version = 1;
};

struct MintedVariants {
  /// Up to 3 variants (knee point, min-latency, min-energy of the Pareto
  /// front), latency normalized to scale 1 (the autotuner multiplies by
  /// the live data_scale), specialized_scale set to the tuple's scale.
  std::vector<compiler::Variant> variants;
  std::size_t dse_points = 0;   ///< configurations swept
  std::size_t pareto_size = 0;  ///< Pareto-optimal subset size
  /// Canonical serialized descriptor bytes (variants_to_json dump) — the
  /// unit of the byte-identity determinism contract.
  std::string descriptor_json;
};

/// Runs the specialization pipeline. InvalidArgument when the spec has an
/// empty cost profile or no knobs to sweep (the compile-failure path the
/// per-tuple circuit breaker guards).
Result<MintedVariants> specialize(const KernelSpec& spec,
                                  const SpecializeRequest& request);

}  // namespace everest::jit
