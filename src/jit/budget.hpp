// The compilation-cost budget: a token bucket of compile-microseconds
// per wall-second. Background specialization must never starve serving —
// the bucket caps how much compile work the service may start per unit
// time, and everything over budget is dropped-and-accounted (the
// detector will re-surface a still-hot tuple on a later scan, when
// tokens have refilled).
#pragma once

#include <algorithm>
#include <cstdint>
#include <mutex>

namespace everest::jit {

struct BudgetConfig {
  /// Refill rate: compile-us granted per wall-second.
  double compile_us_per_s = 50'000.0;
  /// Bucket capacity (burst): at most this much compile debt at once.
  double burst_us = 100'000.0;
};

struct BudgetStats {
  std::uint64_t granted = 0;
  std::uint64_t denied = 0;
  double granted_us = 0.0;   ///< estimates acquired
  double settled_us = 0.0;   ///< actual compile time charged back
};

/// Thread-safe token bucket on an injected clock (microseconds; wall or
/// simulated — the owner passes now_us on every call, so tests drive it
/// deterministically).
class CompileBudget {
 public:
  explicit CompileBudget(BudgetConfig config = {}) : config_(config) {}

  /// Tries to reserve `estimated_us` of compile work. On success the
  /// tokens are taken immediately (pessimistic — settle() reconciles).
  bool try_acquire(double estimated_us, double now_us) {
    std::lock_guard<std::mutex> lock(mu_);
    refill(now_us);
    if (tokens_us_ < estimated_us) {
      ++stats_.denied;
      return false;
    }
    tokens_us_ -= estimated_us;
    ++stats_.granted;
    stats_.granted_us += estimated_us;
    return true;
  }

  /// Reconciles a finished compile: refunds an over-estimate, charges an
  /// overrun (tokens may go negative — the debt delays the next grant,
  /// so long compiles cannot cheat the rate).
  void settle(double estimated_us, double actual_us, double now_us) {
    std::lock_guard<std::mutex> lock(mu_);
    refill(now_us);
    tokens_us_ =
        std::min(tokens_us_ + estimated_us - actual_us, config_.burst_us);
    stats_.settled_us += actual_us;
  }

  [[nodiscard]] double available_us(double now_us) {
    std::lock_guard<std::mutex> lock(mu_);
    refill(now_us);
    return tokens_us_;
  }

  [[nodiscard]] BudgetStats stats() const {
    std::lock_guard<std::mutex> lock(mu_);
    return stats_;
  }

  [[nodiscard]] const BudgetConfig& config() const { return config_; }

 private:
  /// Caller holds mu_.
  void refill(double now_us) {
    if (last_us_ < 0.0) {
      last_us_ = now_us;  // first touch: start full
      tokens_us_ = config_.burst_us;
      return;
    }
    const double dt_s = std::max(0.0, (now_us - last_us_) / 1e6);
    last_us_ = std::max(last_us_, now_us);
    tokens_us_ = std::min(tokens_us_ + dt_s * config_.compile_us_per_s,
                          config_.burst_us);
  }

  BudgetConfig config_;
  mutable std::mutex mu_;
  double tokens_us_ = 0.0;
  double last_us_ = -1.0;
  BudgetStats stats_;
};

}  // namespace everest::jit
