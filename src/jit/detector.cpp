#include "jit/detector.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/autotuner.hpp"

namespace everest::jit {

namespace {

/// Reset-aware counter delta: a restarted serving process re-counts from
/// zero, so current < previous means the whole current value is new.
std::uint64_t counter_delta(std::uint64_t current, std::uint64_t previous) {
  return current >= previous ? current - previous : current;
}

}  // namespace

bool parse_feature_key(const std::string& key, const std::string& prefix,
                       HotTuple* out) {
  // Canonical key shape (Registry::key_of, labels sorted):
  //   <prefix>{bucket=<b>,kernel=<k>,tenant=<t>}
  if (key.size() <= prefix.size() + 2 ||
      key.compare(0, prefix.size(), prefix) != 0 ||
      key[prefix.size()] != '{' || key.back() != '}') {
    return false;
  }
  const std::string body =
      key.substr(prefix.size() + 1, key.size() - prefix.size() - 2);
  HotTuple tuple;
  bool have_bucket = false, have_kernel = false, have_tenant = false;
  std::size_t pos = 0;
  while (pos < body.size()) {
    std::size_t comma = body.find(',', pos);
    if (comma == std::string::npos) comma = body.size();
    const std::string pair = body.substr(pos, comma - pos);
    pos = comma + 1;
    const std::size_t eq = pair.find('=');
    if (eq == std::string::npos) return false;
    const std::string k = pair.substr(0, eq);
    const std::string v = pair.substr(eq + 1);
    if (k == "bucket") {
      try {
        tuple.bucket = std::stoi(v);
      } catch (...) {
        return false;
      }
      have_bucket = true;
    } else if (k == "kernel") {
      tuple.kernel = v;
      have_kernel = true;
    } else if (k == "tenant") {
      tuple.tenant = v;
      have_tenant = true;
    }
  }
  if (!have_bucket || !have_kernel || !have_tenant) return false;
  *out = tuple;
  return true;
}

HotTupleDetector::HotTupleDetector(const runtime::KnowledgeBase* kb,
                                   obs::Registry* jit_registry,
                                   DetectorConfig config)
    : kb_(kb), jit_registry_(jit_registry), config_(config) {}

std::vector<HotCandidate> HotTupleDetector::scan(
    const obs::RegistrySnapshot& snapshot) {
  static const std::string kRequests = "serve.feature.requests";
  static const std::string kServiceUs = "serve.feature.service_us";

  const double window_s =
      has_prev_ ? std::max(0.0, (snapshot.at_us - prev_.at_us) / 1e6) : 0.0;

  std::vector<HotCandidate> candidates;
  last_window_tuples_ = 0;
  for (const auto& [key, count] : snapshot.counters) {
    HotTuple tuple;
    if (!parse_feature_key(key, kRequests, &tuple)) continue;

    std::uint64_t prev_count = 0;
    if (has_prev_) {
      auto it = prev_.counters.find(key);
      if (it != prev_.counters.end()) prev_count = it->second;
    }
    const std::uint64_t requests = counter_delta(count, prev_count);
    if (requests == 0) continue;
    ++last_window_tuples_;

    // Windowed mean service share from the paired histogram's
    // (count, sum) deltas.
    TupleSignal signal;
    signal.requests = requests;
    signal.rate_per_s =
        window_s > 0.0 ? static_cast<double>(requests) / window_s : 0.0;
    const std::string hist_key = kServiceUs + key.substr(kRequests.size());
    auto hist_it = snapshot.histograms.find(hist_key);
    if (hist_it != snapshot.histograms.end()) {
      double dsum = hist_it->second.sum;
      std::uint64_t dcount = hist_it->second.count;
      if (has_prev_) {
        auto pit = prev_.histograms.find(hist_key);
        if (pit != prev_.histograms.end() &&
            pit->second.count <= hist_it->second.count) {
          dsum -= pit->second.sum;
          dcount -= pit->second.count;
        }
      }
      if (dcount > 0) signal.mean_service_us = dsum / static_cast<double>(dcount);
    }

    // Regret vs best-known: the cheapest calibrated expectation any
    // variant eligible at this tuple's scale offers right now.
    const double scale = tuple.scale();
    double best_expected = std::numeric_limits<double>::infinity();
    const runtime::VariantSet variants = kb_->variants_for(tuple.kernel);
    for (const compiler::Variant& v : *variants) {
      if (!runtime::specialization_matches(v, scale)) continue;
      best_expected = std::min(
          best_expected, kb_->expected_latency(tuple.kernel, v) * scale);
    }
    if (std::isfinite(best_expected) && signal.mean_service_us > 0.0) {
      signal.regret_us = signal.mean_service_us - best_expected;
    }

    if (jit_registry_ != nullptr) {
      // Node-local instantaneous diagnostic — neither sum nor max is
      // meaningful across nodes, so kLastWrite (PR 9 contract).
      jit_registry_
          ->gauge("jit.regret", obs::GaugeKind::kLastWrite,
                  {{"kernel", tuple.kernel},
                   {"bucket", std::to_string(tuple.bucket)},
                   {"tenant", tuple.tenant}})
          ->set(signal.regret_us);
    }

    if (requests < config_.min_requests) continue;
    if (signal.regret_us < config_.min_regret_us) continue;

    HotCandidate c;
    c.tuple = std::move(tuple);
    c.signal = signal;
    c.priority = static_cast<double>(requests) * signal.regret_us;
    candidates.push_back(std::move(c));
  }

  std::sort(candidates.begin(), candidates.end(),
            [](const HotCandidate& a, const HotCandidate& b) {
              if (a.priority != b.priority) return a.priority > b.priority;
              return a.tuple < b.tuple;  // deterministic tie-break
            });
  if (candidates.size() > config_.max_candidates) {
    candidates.resize(config_.max_candidates);
  }

  if (jit_registry_ != nullptr) {
    jit_registry_->counter("jit.detector.scans")->inc();
    jit_registry_->counter("jit.detector.candidates")
        ->inc(candidates.size());
  }

  prev_ = snapshot;
  has_prev_ = true;
  return candidates;
}

}  // namespace everest::jit
