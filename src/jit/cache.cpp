#include "jit/cache.hpp"

#include <algorithm>

#include "common/json.hpp"

namespace everest::jit {

VariantCache::VariantCache(runtime::KnowledgeBase* kb, obs::Registry* registry,
                           CacheConfig config)
    : kb_(kb), registry_(registry), config_(config) {}

std::uint32_t VariantCache::covers(const HotTuple& tuple) {
  std::uint32_t version = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = entries_.find(tuple);
    if (it != entries_.end()) {
      it->second.last_used = ++tick_;
      version = it->second.entry.version;
      ++stats_.hits;
    } else {
      ++stats_.misses;
    }
  }
  if (registry_ != nullptr) {
    registry_->counter(version > 0 ? "jit.cache.hit" : "jit.cache.miss")
        ->inc();
  }
  return version;
}

Result<std::uint32_t> VariantCache::publish(const HotTuple& tuple,
                                            const MintedVariants& minted,
                                            std::uint64_t seed) {
  if (minted.variants.empty()) {
    return InvalidArgument("publish of an empty minted set for tuple " +
                           tuple.key());
  }
  for (const compiler::Variant& v : minted.variants) {
    if (v.kernel != tuple.kernel) {
      return InvalidArgument("minted variant '" + v.id + "' targets kernel '" +
                             v.kernel + "', tuple is for '" + tuple.kernel +
                             "'");
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tuple);
  std::vector<std::string> prior_ids;
  std::uint32_t version = 1;
  if (it != entries_.end()) {
    version = it->second.entry.version + 1;
    for (const compiler::Variant& v : it->second.entry.variants) {
      prior_ids.push_back(v.id);
    }
  }

  // Publish first, then retire: there is never a window where the kernel
  // has NO specialized coverage for the tuple mid-re-mint.
  std::uint64_t epoch = 0;
  Status st = kb_->upsert(tuple.kernel, minted.variants, &epoch);
  if (!st.ok()) return st;
  std::vector<std::string> stale;
  for (const std::string& id : prior_ids) {
    const bool reused =
        std::any_of(minted.variants.begin(), minted.variants.end(),
                    [&](const compiler::Variant& v) { return v.id == id; });
    if (!reused) stale.push_back(id);
  }
  if (!stale.empty()) kb_->retire(tuple.kernel, stale, &epoch);

  Slot& slot = entries_[tuple];
  slot.entry.tuple = tuple;
  slot.entry.version = version;
  slot.entry.seed = seed;
  slot.entry.variants = minted.variants;
  slot.entry.kb_epoch = epoch;
  slot.last_used = ++tick_;
  ++stats_.publishes;

  while (entries_.size() > config_.max_entries) evict_one_locked();

  if (registry_ != nullptr) {
    registry_->counter("jit.cache.publish")->inc();
    registry_->gauge("jit.cache.entries", obs::GaugeKind::kLastWrite)
        ->set(static_cast<double>(entries_.size()));
  }
  return version;
}

std::optional<CacheEntry> VariantCache::lookup(const HotTuple& tuple) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(tuple);
  if (it == entries_.end()) return std::nullopt;
  return it->second.entry;
}

std::size_t VariantCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

CacheStats VariantCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void VariantCache::evict_one_locked() {
  auto victim = entries_.end();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (victim == entries_.end() ||
        it->second.last_used < victim->second.last_used) {
      victim = it;
    }
  }
  if (victim == entries_.end()) return;
  std::vector<std::string> ids;
  for (const compiler::Variant& v : victim->second.entry.variants) {
    ids.push_back(v.id);
  }
  kb_->retire(victim->first.kernel, ids);
  entries_.erase(victim);
  ++stats_.evictions;
  if (registry_ != nullptr) registry_->counter("jit.cache.evict")->inc();
}

Status VariantCache::save(storage::Env* env, const std::string& path) const {
  json::Array entries;
  {
    std::lock_guard<std::mutex> lock(mu_);
    // Deterministic file bytes: serialize in tuple order, not hash order.
    std::vector<const Slot*> slots;
    slots.reserve(entries_.size());
    for (const auto& [tuple, slot] : entries_) slots.push_back(&slot);
    std::sort(slots.begin(), slots.end(), [](const Slot* a, const Slot* b) {
      return a->entry.tuple < b->entry.tuple;
    });
    for (const Slot* slot : slots) {
      json::Object o;
      o["kernel"] = slot->entry.tuple.kernel;
      o["bucket"] = slot->entry.tuple.bucket;
      o["tenant"] = slot->entry.tuple.tenant;
      o["version"] = static_cast<std::int64_t>(slot->entry.version);
      o["seed"] = static_cast<std::int64_t>(slot->entry.seed);
      o["variants"] = compiler::variants_to_json(slot->entry.variants);
      entries.emplace_back(std::move(o));
    }
  }
  json::Object root;
  root["schema"] = "everest.jitcache.v1";
  root["entries"] = std::move(entries);
  const std::string bytes = json::Value(std::move(root)).dump();

  const std::string tmp = path + ".tmp";
  auto file = env->open_trunc(tmp);
  if (!file.ok()) return file.status();
  Status st = (*file)->append(bytes);
  if (st.ok()) st = (*file)->sync();
  if (st.ok()) st = (*file)->close();
  if (!st.ok()) {
    env->remove_file(tmp);
    return st;
  }
  return env->rename_file(tmp, path);
}

Result<std::size_t> VariantCache::load(storage::Env* env,
                                       const std::string& path) {
  auto bytes = env->read_file(path);
  if (!bytes.ok()) return bytes.status();
  auto parsed = json::parse(*bytes);
  if (!parsed.ok()) return parsed.status();
  if (parsed->at("schema").as_string() != "everest.jitcache.v1") {
    return InvalidArgument("jit cache file '" + path +
                           "' has an unknown schema");
  }
  std::size_t restored = 0;
  for (const json::Value& e : parsed->at("entries").as_array()) {
    auto variants = compiler::variants_from_json(e.at("variants"));
    if (!variants.ok()) return variants.status();
    if (variants->empty()) continue;
    HotTuple tuple;
    tuple.kernel = e.at("kernel").as_string();
    tuple.bucket = static_cast<int>(e.at("bucket").as_int());
    tuple.tenant = e.at("tenant").as_string();

    std::uint64_t epoch = 0;
    Status st = kb_->upsert(tuple.kernel, *variants, &epoch);
    if (!st.ok()) return st;

    std::lock_guard<std::mutex> lock(mu_);
    Slot& slot = entries_[tuple];
    slot.entry.tuple = tuple;
    slot.entry.version = static_cast<std::uint32_t>(e.at("version").as_int());
    slot.entry.seed = static_cast<std::uint64_t>(e.at("seed").as_int());
    slot.entry.variants = std::move(*variants);
    slot.entry.kb_epoch = epoch;
    slot.last_used = ++tick_;
    while (entries_.size() > config_.max_entries) evict_one_locked();
    ++restored;
  }
  if (registry_ != nullptr) {
    registry_->counter("jit.cache.restored")->inc(restored);
    registry_->gauge("jit.cache.entries", obs::GaugeKind::kLastWrite)
        ->set(static_cast<double>(size()));
  }
  return restored;
}

}  // namespace everest::jit
