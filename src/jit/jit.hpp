// JitService — the whole compile↔serve loop under one roof (DESIGN.md
// row 20): detector (mines the serving registry's data-feature export)
// → compilation service (budgeted, breaker-guarded specialization on a
// background thread) → variant cache (versioned publish, hot-swapped
// into the KnowledgeBase) → persistence (warm restart without DSE).
//
// Two driving modes:
//   * tick(now_us) — one synchronous scan+compile step on an explicit
//     clock. What tests and the E26 bench call: fully deterministic.
//   * start()/stop() — a background thread calling tick() every
//     scan_period_us on the steady clock. The thread is deliberately a
//     single low-duty worker (it sleeps between scans and the compile
//     budget caps its work rate), so serving latency is insulated from
//     compilation by construction, not by OS priorities.
#pragma once

#include <atomic>
#include <memory>
#include <string>
#include <thread>

#include "jit/cache.hpp"
#include "jit/detector.hpp"
#include "jit/service.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "runtime/knowledge.hpp"
#include "storage/env.hpp"

namespace everest::jit {

/// Drops the calling thread to idle scheduling priority (SCHED_IDLE on
/// Linux; no-op elsewhere): background compilation should only ever run
/// on cycles serving is not using. Called by the JitService worker; any
/// caller driving compile_now/run_pending from its own thread should
/// call it too.
void set_background_thread_priority();

struct JitConfig {
  DetectorConfig detector;
  ServiceConfig service;
  CacheConfig cache;
  /// Background-thread scan cadence.
  double scan_period_us = 250'000.0;
  /// Persisted cache file ("" disables persistence / warm restart).
  std::string cache_path;
};

class JitService {
 public:
  /// `kb` is hot-swapped by publishes; `serving_registry` is scanned for
  /// serve.feature.* series. `jit_registry`, `tracer`, and `env` are
  /// optional (no metrics / no spans / no persistence).
  JitService(runtime::KnowledgeBase* kb, const obs::Registry* serving_registry,
             obs::Registry* jit_registry = nullptr,
             obs::Tracer* tracer = nullptr, storage::Env* env = nullptr,
             JitConfig config = {});
  ~JitService();
  JitService(const JitService&) = delete;
  JitService& operator=(const JitService&) = delete;

  void register_kernel(KernelSpec spec) {
    service_.register_kernel(std::move(spec));
  }

  /// Loads the persisted cache and republishes its variants into the
  /// KnowledgeBase — the specialized-variant hit rate is back before a
  /// single compile runs. Cold start (no file) restores 0 entries.
  Result<std::size_t> warm_restart();

  /// Saves the cache for the next process (atomic replace).
  Status persist() const;

  /// One synchronous detect→compile→publish step on the caller's clock.
  /// Returns the number of variants sets published this tick.
  std::size_t tick(double now_us);

  /// Starts/stops the background scan thread (idempotent). stop() also
  /// persists when a cache path is configured.
  void start();
  void stop();

  [[nodiscard]] VariantCache& cache() { return cache_; }
  [[nodiscard]] CompilationService& service() { return service_; }
  [[nodiscard]] HotTupleDetector& detector() { return detector_; }

 private:
  void run_loop();

  const obs::Registry* serving_registry_;
  obs::Tracer* tracer_;
  storage::Env* env_;
  JitConfig config_;

  VariantCache cache_;
  CompilationService service_;
  HotTupleDetector detector_;

  std::atomic<bool> running_{false};
  std::thread worker_;
};

}  // namespace everest::jit
