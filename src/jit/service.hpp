// CompilationService — the JIT's work engine. Pulls ranked hot-tuple
// candidates from the detector into a bounded priority queue
// (drop-and-account, never block), and pumps them through the
// specialization pipeline under two safety valves:
//
//   * a CompileBudget token bucket (compile-us per wall-second): when
//     tokens run out the pump simply stops — pending candidates wait for
//     the refill, so background compilation can never starve serving;
//   * a per-tuple circuit breaker: a tuple whose compiles keep failing is
//     dropped instead of retried forever, and serving degrades to the
//     generic variants it already had (no failure is ever user-visible).
//
// The pump is deliberately synchronous (run_pending on the caller's
// clock) so tests and the E26 bench drive it deterministically; the
// JitService facade adds the background thread for production use.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "jit/budget.hpp"
#include "jit/cache.hpp"
#include "jit/specialize.hpp"
#include "jit/tuple.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "resilience/circuit_breaker.hpp"

namespace everest::jit {

struct ServiceConfig {
  /// Bounded candidate queue; overflow drops the lowest-priority entry.
  std::size_t queue_capacity = 16;
  /// Budget charge per compile, reconciled against the measured time.
  double estimated_compile_us = 5'000.0;
  BudgetConfig budget;
  resilience::BreakerPolicy breaker;
  /// DSE seed baked into every SpecializeRequest (determinism contract).
  std::uint64_t seed = 42;
};

struct ServiceStats {
  std::uint64_t enqueued = 0;
  std::uint64_t dropped_full = 0;     ///< queue overflow (lowest priority)
  std::uint64_t dropped_covered = 0;  ///< already specialized, skipped
  std::uint64_t dropped_breaker = 0;  ///< per-tuple breaker open
  std::uint64_t budget_denied = 0;    ///< pump stopped on empty bucket
  std::uint64_t compiles_ok = 0;
  std::uint64_t compiles_failed = 0;
  double compile_us_total = 0.0;  ///< measured specialize+publish time
};

class CompilationService {
 public:
  /// `cache` is the publish target (which owns the KnowledgeBase swap).
  /// `registry` receives jit.compile_us / jit.queue.* instruments;
  /// `tracer` the compile→publish spans. Both optional.
  explicit CompilationService(VariantCache* cache,
                              obs::Registry* registry = nullptr,
                              obs::Tracer* tracer = nullptr,
                              ServiceConfig config = {});

  /// Registers the kernel spec the specializer compiles against.
  /// Candidates for unregistered kernels are dropped (counted failed).
  void register_kernel(KernelSpec spec);
  [[nodiscard]] bool has_kernel(const std::string& kernel) const;

  /// Admits detector candidates into the queue. Tuples already covered
  /// by the cache or already queued are skipped; over capacity the
  /// lowest-priority entry is dropped-and-accounted. Returns how many
  /// were admitted.
  std::size_t enqueue(const std::vector<HotCandidate>& candidates);

  /// Compiles queued candidates (best priority first) until the queue or
  /// the compile budget is exhausted. `now_us` is the budget/breaker
  /// clock (wall or simulated). Returns successful compiles.
  std::size_t run_pending(double now_us);

  /// Compiles one tuple immediately, bypassing queue and coverage check
  /// (still budget- and breaker-gated): the re-specialization path, and
  /// the test hook. Publishes on success.
  Result<std::uint32_t> compile_now(const HotTuple& tuple, double now_us);

  [[nodiscard]] std::size_t queue_depth() const;
  [[nodiscard]] ServiceStats stats() const;
  [[nodiscard]] BudgetStats budget_stats() const { return budget_.stats(); }
  [[nodiscard]] double budget_available_us(double now_us) {
    return budget_.available_us(now_us);
  }
  [[nodiscard]] const resilience::CircuitBreakerBoard& breakers() const {
    return breakers_;
  }

 private:
  /// Budget+breaker gated compile of one tuple; assumes coverage/dedup
  /// already decided. Does NOT hold mu_ while compiling.
  Result<std::uint32_t> compile_tuple(const HotTuple& tuple, double now_us);

  VariantCache* cache_;
  obs::Registry* registry_;
  obs::Tracer* tracer_;
  ServiceConfig config_;
  CompileBudget budget_;
  resilience::CircuitBreakerBoard breakers_;

  mutable std::mutex mu_;
  std::map<std::string, KernelSpec> specs_;
  std::vector<HotCandidate> queue_;  ///< kept sorted, best priority last
  ServiceStats stats_;
};

}  // namespace everest::jit
