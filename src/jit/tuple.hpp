// The unit of online specialization: a (kernel, data-feature, tenant)
// tuple. Live traffic is aggregated onto these keys by the serving
// layer's feature export (serve.feature.* registry series); the detector
// ranks them by observed cost x regret; the compilation service mints
// shape-specialized variants per tuple (DESIGN.md row 20).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "serve/request.hpp"

namespace everest::jit {

/// One specialization target. `bucket` is the log2 data-feature bucket
/// (serve::feature_bucket of the requests' payload_scale).
struct HotTuple {
  std::string kernel;
  int bucket = 0;
  std::string tenant;

  /// Representative data scale of the bucket — what the JIT specializes
  /// the tile/layout choice for.
  [[nodiscard]] double scale() const {
    return serve::feature_bucket_scale(bucket);
  }

  /// Canonical string key, e.g. "aq_dispersion|b2|tenant-7". Used for
  /// breaker scopes, journal lines, and persisted cache entries.
  [[nodiscard]] std::string key() const {
    return kernel + "|b" + std::to_string(bucket) + "|" + tenant;
  }

  friend bool operator==(const HotTuple& a, const HotTuple& b) {
    return a.bucket == b.bucket && a.kernel == b.kernel && a.tenant == b.tenant;
  }
  friend bool operator<(const HotTuple& a, const HotTuple& b) {
    if (a.kernel != b.kernel) return a.kernel < b.kernel;
    if (a.bucket != b.bucket) return a.bucket < b.bucket;
    return a.tenant < b.tenant;
  }
};

/// Hash over the tuple's fields directly (no key-string allocation) —
/// what keeps VariantCache::covers inside its <200 ns bench_micro budget.
struct HotTupleHash {
  std::size_t operator()(const HotTuple& t) const {
    std::size_t h = std::hash<std::string>{}(t.kernel);
    h ^= std::hash<std::string>{}(t.tenant) + 0x9e3779b97f4a7c15ULL +
         (h << 6) + (h >> 2);
    h ^= std::hash<int>{}(t.bucket) + 0x9e3779b97f4a7c15ULL + (h << 6) +
         (h >> 2);
    return h;
  }
};

/// What the detector measured about a tuple over its scan window.
struct TupleSignal {
  std::uint64_t requests = 0;    ///< requests in the window
  double rate_per_s = 0.0;       ///< request rate over covered time
  double mean_service_us = 0.0;  ///< observed per-request handler share
  /// Observed cost minus the best expectation any CURRENT variant offers
  /// at this tuple's scale — the "how much would specialization help"
  /// signal fed by KnowledgeBase::observe calibration. <= 0 means the
  /// current variant set already serves this shape well.
  double regret_us = 0.0;
};

/// A ranked specialization candidate.
struct HotCandidate {
  HotTuple tuple;
  TupleSignal signal;
  /// Ranking score: window cost the tuple left on the table
  /// (requests x regret). Higher = compile first.
  double priority = 0.0;
};

}  // namespace everest::jit
