#include "jit/service.hpp"

#include <algorithm>
#include <chrono>

namespace everest::jit {

namespace {
constexpr const char* kBreakerScope = "jit";

double steady_us() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}
}  // namespace

CompilationService::CompilationService(VariantCache* cache,
                                       obs::Registry* registry,
                                       obs::Tracer* tracer,
                                       ServiceConfig config)
    : cache_(cache),
      registry_(registry),
      tracer_(tracer),
      config_(config),
      budget_(config.budget),
      breakers_(config.breaker) {}

void CompilationService::register_kernel(KernelSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  specs_[spec.kernel] = std::move(spec);
}

bool CompilationService::has_kernel(const std::string& kernel) const {
  std::lock_guard<std::mutex> lock(mu_);
  return specs_.count(kernel) > 0;
}

std::size_t CompilationService::enqueue(
    const std::vector<HotCandidate>& candidates) {
  std::size_t admitted = 0;
  std::uint64_t dropped = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const HotCandidate& c : candidates) {
      if (cache_->lookup(c.tuple).has_value()) {
        ++stats_.dropped_covered;
        continue;
      }
      const bool queued =
          std::any_of(queue_.begin(), queue_.end(), [&](const HotCandidate& q) {
            return q.tuple == c.tuple;
          });
      if (queued) continue;
      queue_.push_back(c);
      ++stats_.enqueued;
      ++admitted;
    }
    // Best priority last (cheap pop_back pump); overflow drops the front
    // = lowest priority (drop-and-account: the detector will re-surface
    // a still-hot tuple on a later scan).
    std::sort(queue_.begin(), queue_.end(),
              [](const HotCandidate& a, const HotCandidate& b) {
                if (a.priority != b.priority) return a.priority < b.priority;
                return b.tuple < a.tuple;
              });
    while (queue_.size() > config_.queue_capacity) {
      queue_.erase(queue_.begin());
      ++stats_.dropped_full;
      ++dropped;
    }
  }
  if (registry_ != nullptr) {
    if (dropped > 0) registry_->counter("jit.queue.dropped")->inc(dropped);
    registry_->gauge("jit.queue.depth", obs::GaugeKind::kLastWrite)
        ->set(static_cast<double>(queue_depth()));
  }
  return admitted;
}

std::size_t CompilationService::run_pending(double now_us) {
  std::size_t compiled = 0;
  for (;;) {
    HotCandidate next;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (queue_.empty()) break;
      next = queue_.back();
      queue_.pop_back();
    }
    // Re-check coverage: another pump (or a warm restart) may have
    // published this tuple while it sat in the queue.
    if (cache_->lookup(next.tuple).has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.dropped_covered;
      continue;
    }
    Result<std::uint32_t> r = compile_tuple(next.tuple, now_us);
    if (r.ok()) {
      ++compiled;
      continue;
    }
    if (r.status().code() == StatusCode::kResourceExhausted) {
      // Budget empty: put the candidate back and stop the pump — the
      // bucket refills with wall time, the tuple stays pending.
      std::lock_guard<std::mutex> lock(mu_);
      queue_.insert(queue_.begin(), std::move(next));
      break;
    }
    // Breaker-open or compile failure: drop (accounted in compile_tuple).
  }
  if (registry_ != nullptr) {
    registry_->gauge("jit.queue.depth", obs::GaugeKind::kLastWrite)
        ->set(static_cast<double>(queue_depth()));
  }
  return compiled;
}

Result<std::uint32_t> CompilationService::compile_now(const HotTuple& tuple,
                                                      double now_us) {
  return compile_tuple(tuple, now_us);
}

Result<std::uint32_t> CompilationService::compile_tuple(const HotTuple& tuple,
                                                        double now_us) {
  if (!breakers_.allow(kBreakerScope, tuple.key(), now_us)) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.dropped_breaker;
    return Unavailable("compile breaker open for tuple " + tuple.key());
  }
  if (!budget_.try_acquire(config_.estimated_compile_us, now_us)) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.budget_denied;
    }
    if (registry_ != nullptr) registry_->counter("jit.budget.denied")->inc();
    return ResourceExhausted("compile budget exhausted");
  }

  KernelSpec spec;
  std::uint64_t seed = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = specs_.find(tuple.kernel);
    if (it == specs_.end()) {
      ++stats_.compiles_failed;
      budget_.settle(config_.estimated_compile_us, 0.0, now_us);
      breakers_.record(kBreakerScope, tuple.key(), false, now_us);
      return NotFound("no KernelSpec registered for kernel '" + tuple.kernel +
                      "'");
    }
    spec = it->second;
    seed = config_.seed;
  }

  SpecializeRequest request;
  request.tuple = tuple;
  request.seed = seed;
  // Version = current cache entry + 1, so a re-mint's ids never collide
  // with the set it retires.
  const auto current = cache_->lookup(tuple);
  request.version = current.has_value() ? current->version + 1 : 1;

  obs::Tracer::ScopedSpan compile_span;
  if (tracer_ != nullptr) {
    compile_span = tracer_->scoped("jit.compile", "jit");
    compile_span.annotate("tuple", tuple.key());
    compile_span.annotate("version", std::to_string(request.version));
  }

  const double t0 = steady_us();
  Result<MintedVariants> minted = specialize(spec, request);
  Result<std::uint32_t> published =
      minted.ok() ? cache_->publish(tuple, *minted, seed)
                  : Result<std::uint32_t>(minted.status());
  const double actual_us = std::max(0.0, steady_us() - t0);
  budget_.settle(config_.estimated_compile_us, actual_us, now_us);

  const bool ok = published.ok();
  breakers_.record(kBreakerScope, tuple.key(), ok, now_us);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (ok) {
      ++stats_.compiles_ok;
    } else {
      ++stats_.compiles_failed;
    }
    stats_.compile_us_total += actual_us;
  }
  if (registry_ != nullptr) {
    registry_->histogram("jit.compile_us")->record(actual_us);
    registry_->counter(ok ? "jit.compile.ok" : "jit.compile.failed")->inc();
  }
  if (compile_span.active()) {
    compile_span.annotate("ok", ok ? "true" : "false");
    if (minted.ok()) {
      compile_span.annotate("dse_points", std::to_string(minted->dse_points));
      compile_span.annotate("minted",
                            std::to_string(minted->variants.size()));
    }
  }
  return published;
}

std::size_t CompilationService::queue_depth() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

ServiceStats CompilationService::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace everest::jit
