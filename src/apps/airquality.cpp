#include "apps/airquality.hpp"

#include <algorithm>
#include <cmath>

namespace everest::apps {

namespace {
constexpr double kPi = 3.14159265358979323846;
}

Stability classify_stability(double solar_wm2, double wind_ms) {
  // Simplified Turner scheme: strong sun + weak wind → unstable; night +
  // weak wind → stable; strong wind → neutral.
  if (wind_ms >= 6.0) return Stability::kD;
  if (solar_wm2 > 600.0) return wind_ms < 3.0 ? Stability::kA : Stability::kB;
  if (solar_wm2 > 300.0) return wind_ms < 3.0 ? Stability::kB : Stability::kC;
  if (solar_wm2 > 50.0) return Stability::kC;
  // Night.
  return wind_ms < 3.0 ? Stability::kF : Stability::kE;
}

void briggs_sigmas(Stability stability, double x_m, double* sigma_y,
                   double* sigma_z) {
  x_m = std::max(x_m, 1.0);
  // Briggs (1973) rural fits.
  switch (stability) {
    case Stability::kA:
      *sigma_y = 0.22 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.20 * x_m;
      break;
    case Stability::kB:
      *sigma_y = 0.16 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.12 * x_m;
      break;
    case Stability::kC:
      *sigma_y = 0.11 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.08 * x_m / std::sqrt(1.0 + 0.0002 * x_m);
      break;
    case Stability::kD:
      *sigma_y = 0.08 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.06 * x_m / std::sqrt(1.0 + 0.0015 * x_m);
      break;
    case Stability::kE:
      *sigma_y = 0.06 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.03 * x_m / (1.0 + 0.0003 * x_m);
      break;
    case Stability::kF:
      *sigma_y = 0.04 * x_m / std::sqrt(1.0 + 0.0001 * x_m);
      *sigma_z = 0.016 * x_m / (1.0 + 0.0003 * x_m);
      break;
  }
}

double plume_concentration(const StackSource& source, double wind_ms,
                           double wind_dir_rad, Stability stability,
                           double receptor_y_km, double receptor_x_km) {
  const double u = std::max(0.5, wind_ms);
  // Rotate receptor into plume coordinates (x downwind, y crosswind).
  const double dy = (receptor_y_km - source.y_km) * 1000.0;
  const double dx = (receptor_x_km - source.x_km) * 1000.0;
  const double cos_d = std::cos(wind_dir_rad);
  const double sin_d = std::sin(wind_dir_rad);
  const double downwind = dx * cos_d + dy * sin_d;
  const double crosswind = -dx * sin_d + dy * cos_d;
  if (downwind <= 1.0) return 0.0;  // upwind of the source
  double sigma_y = 0.0, sigma_z = 0.0;
  briggs_sigmas(stability, downwind, &sigma_y, &sigma_z);
  const double q_ug = source.emission_gs * 1e6;  // g/s → µg/s
  const double h = source.height_m;
  // Ground-level Gaussian plume with total reflection.
  const double norm = q_ug / (2.0 * kPi * u * sigma_y * sigma_z);
  const double lateral =
      std::exp(-0.5 * (crosswind / sigma_y) * (crosswind / sigma_y));
  const double vertical = 2.0 * std::exp(-0.5 * (h / sigma_z) * (h / sigma_z));
  return norm * lateral * vertical;
}

ConcentrationField dispersion_field(const std::vector<StackSource>& sources,
                                    const WeatherState& weather, int ny,
                                    int nx, double dx_km) {
  ConcentrationField field;
  field.ny = ny;
  field.nx = nx;
  field.dx_km = dx_km;
  field.ugm3.assign(static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx),
                    0.0);
  for (const StackSource& source : sources) {
    // Weather sampled at the source location (local-scale assumption).
    const double gy = source.y_km / weather.wind_speed.dx_km;
    const double gx = source.x_km / weather.wind_speed.dx_km;
    const double wind = weather.wind_speed.sample(gy, gx);
    const double dir = weather.wind_dir.sample(gy, gx);
    const double solar = weather.solar.sample(gy, gx);
    const Stability stability = classify_stability(solar, wind);
    for (int y = 0; y < ny; ++y) {
      for (int x = 0; x < nx; ++x) {
        field.ugm3[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                   static_cast<std::size_t>(x)] +=
            plume_concentration(source, wind, dir, stability, y * dx_km,
                                x * dx_km);
      }
    }
  }
  return field;
}

double dispersion_flops(std::size_t sources, int ny, int nx) {
  // ~40 FLOPs per source-cell evaluation (rotation, sigmas, two exps).
  return 40.0 * static_cast<double>(sources) * ny * nx;
}

AirQualityForecast forecast_air_quality(
    const std::vector<StackSource>& sources,
    const std::vector<Receptor>& receptors, WeatherGenerator& generator,
    const AirQualityOptions& options) {
  AirQualityForecast out;
  out.exceedance_probability.assign(
      receptors.size(), std::vector<double>(options.horizon_hours, 0.0));
  out.mean_ugm3.assign(receptors.size(),
                       std::vector<double>(options.horizon_hours, 0.0));

  const auto truth = generator.generate_truth(options.horizon_hours);
  std::vector<std::vector<WeatherState>> members;
  for (int m = 0; m < options.ensemble_members; ++m) {
    members.push_back(generator.perturb_member(truth));
  }

  for (int h = 0; h < options.horizon_hours; ++h) {
    for (const auto& member : members) {
      const ConcentrationField field =
          dispersion_field(sources, member[h], options.grid_ny,
                           options.grid_nx, options.grid_dx_km);
      out.compute_flops +=
          dispersion_flops(sources.size(), options.grid_ny, options.grid_nx);
      for (std::size_t r = 0; r < receptors.size(); ++r) {
        const int gy = std::clamp(
            static_cast<int>(receptors[r].y_km / options.grid_dx_km), 0,
            options.grid_ny - 1);
        const int gx = std::clamp(
            static_cast<int>(receptors[r].x_km / options.grid_dx_km), 0,
            options.grid_nx - 1);
        const double c = field.at(gy, gx);
        out.mean_ugm3[r][static_cast<std::size_t>(h)] += c;
        if (c > options.limit_ugm3) {
          out.exceedance_probability[r][static_cast<std::size_t>(h)] += 1.0;
        }
      }
    }
    bool curtail = false;
    for (std::size_t r = 0; r < receptors.size(); ++r) {
      out.mean_ugm3[r][static_cast<std::size_t>(h)] /=
          options.ensemble_members;
      out.exceedance_probability[r][static_cast<std::size_t>(h)] /=
          options.ensemble_members;
      curtail |= out.exceedance_probability[r][static_cast<std::size_t>(h)] >
                 options.curtail_threshold;
    }
    if (curtail) out.curtail_hours.push_back(h);
  }
  return out;
}

}  // namespace everest::apps
