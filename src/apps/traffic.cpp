#include "apps/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/stats.hpp"

namespace everest::apps {

namespace {

/// Typical urban rush-hour shape: factor of free-flow speed by hour.
double rush_hour_factor(int hour) {
  // Morning (7-9) and evening (16-19) dips.
  static const double kFactors[24] = {
      0.95, 0.97, 0.98, 0.98, 0.95, 0.90, 0.75, 0.55, 0.60, 0.75,
      0.85, 0.85, 0.80, 0.82, 0.85, 0.80, 0.65, 0.52, 0.58, 0.75,
      0.85, 0.90, 0.93, 0.95};
  return kFactors[hour % 24];
}

}  // namespace

RoadNetwork RoadNetwork::make_grid(int rows, int cols, std::uint64_t seed) {
  RoadNetwork net;
  Rng rng(seed);
  net.num_nodes_ = static_cast<std::size_t>(rows) * cols;
  net.out_segments_.assign(net.num_nodes_, {});
  auto node = [cols](int r, int c) {
    return static_cast<std::size_t>(r) * cols + c;
  };
  auto add_street = [&](std::size_t a, std::size_t b, bool arterial) {
    for (auto [from, to] : {std::pair{a, b}, std::pair{b, a}}) {
      RoadSegment seg;
      seg.from = from;
      seg.to = to;
      seg.length_km = arterial ? 1.2 : 0.6;
      seg.freeflow_kmh = arterial ? 70.0 : 40.0;
      seg.capacity = arterial ? 120.0 : 35.0;
      SpeedProfile profile;
      for (int h = 0; h < 24; ++h) {
        const double congestion_sensitivity = arterial ? 0.8 : 1.0;
        profile.mean_factor[h] =
            1.0 - congestion_sensitivity * (1.0 - rush_hour_factor(h));
        profile.stddev[h] = 0.06 + 0.20 * (1.0 - rush_hour_factor(h));
      }
      net.out_segments_[from].push_back(net.segments_.size());
      net.segments_.push_back(seg);
      net.profiles_.push_back(profile);
    }
  };
  for (int r = 0; r < rows; ++r) {
    for (int c = 0; c < cols; ++c) {
      const bool arterial_row = r % 4 == 0;
      const bool arterial_col = c % 4 == 0;
      if (c + 1 < cols) add_street(node(r, c), node(r, c + 1), arterial_row);
      if (r + 1 < rows) add_street(node(r, c), node(r + 1, c), arterial_col);
    }
  }
  (void)rng;
  return net;
}

double RoadNetwork::expected_time_s(std::size_t segment, int hour) const {
  const RoadSegment& seg = segments_[segment];
  const SpeedProfile& profile = profiles_[segment];
  const double speed =
      std::max(2.0, seg.freeflow_kmh * profile.mean_factor[hour % 24]);
  return seg.length_km / speed * 3600.0;
}

double RoadNetwork::sample_time_s(std::size_t segment, int hour,
                                  Rng& rng) const {
  const RoadSegment& seg = segments_[segment];
  const SpeedProfile& profile = profiles_[segment];
  const double factor = std::max(
      0.05, rng.normal(profile.mean_factor[hour % 24], profile.stddev[hour % 24]));
  const double speed = std::max(2.0, seg.freeflow_kmh * factor);
  return seg.length_km / speed * 3600.0;
}

std::vector<std::size_t> RoadNetwork::shortest_path(std::size_t from,
                                                    std::size_t to,
                                                    int hour) const {
  WeightedDigraph g(num_nodes_);
  for (std::size_t s = 0; s < segments_.size(); ++s) {
    g.add_edge(segments_[s].from, segments_[s].to, expected_time_s(s, hour));
  }
  const auto sp = g.dijkstra(from);
  const auto nodes = WeightedDigraph::extract_path(sp, from, to);
  if (nodes.empty()) return {};
  // Convert node path to segment indices.
  std::vector<std::size_t> path;
  for (std::size_t i = 0; i + 1 < nodes.size(); ++i) {
    bool found = false;
    for (std::size_t s : out_segments_[nodes[i]]) {
      if (segments_[s].to == nodes[i + 1]) {
        path.push_back(s);
        found = true;
        break;
      }
    }
    if (!found) return {};
  }
  return path;
}

std::vector<std::vector<std::size_t>> RoadNetwork::alternative_paths(
    std::size_t from, std::size_t to, int hour, int k) const {
  std::vector<std::vector<std::size_t>> alternatives;
  std::map<std::size_t, double> penalties;  // segment → multiplier
  for (int i = 0; i < k; ++i) {
    WeightedDigraph g(num_nodes_);
    for (std::size_t s = 0; s < segments_.size(); ++s) {
      double w = expected_time_s(s, hour);
      auto it = penalties.find(s);
      if (it != penalties.end()) w *= it->second;
      g.add_edge(segments_[s].from, segments_[s].to, w);
    }
    const auto sp = g.dijkstra(from);
    const auto nodes = WeightedDigraph::extract_path(sp, from, to);
    if (nodes.empty()) break;
    std::vector<std::size_t> path;
    for (std::size_t n = 0; n + 1 < nodes.size(); ++n) {
      for (std::size_t s : out_segments_[nodes[n]]) {
        if (segments_[s].to == nodes[n + 1]) {
          path.push_back(s);
          break;
        }
      }
    }
    // Deduplicate identical alternatives.
    bool duplicate = false;
    for (const auto& existing : alternatives) duplicate |= existing == path;
    if (!duplicate) alternatives.push_back(path);
    // Penalize used segments to push the next search elsewhere.
    for (std::size_t s : path) {
      auto [it, inserted] = penalties.emplace(s, 1.0);
      it->second *= 1.4;
    }
  }
  return alternatives;
}

TravelTimeDistribution ptdr_route_time(const RoadNetwork& network,
                                       const std::vector<std::size_t>& path,
                                       int hour, std::size_t samples,
                                       Rng& rng) {
  std::vector<double> times;
  times.reserve(samples);
  OnlineStats stats;
  for (std::size_t i = 0; i < samples; ++i) {
    double t = 0.0;
    for (std::size_t segment : path) {
      const int current_hour = (hour + static_cast<int>(t / 3600.0)) % 24;
      t += network.sample_time_s(segment, current_hour, rng);
    }
    times.push_back(t);
    stats.add(t);
  }
  TravelTimeDistribution out;
  out.samples = samples;
  out.mean_s = stats.mean();
  out.stddev_s = stats.stddev();
  out.p50_s = percentile(times, 50.0);
  out.p95_s = percentile(times, 95.0);
  return out;
}

Result<RouteChoice> choose_route(const RoadNetwork& network, std::size_t from,
                                 std::size_t to, int hour, int k,
                                 std::size_t mc_samples, double risk_quantile,
                                 Rng& rng) {
  const auto alternatives = network.alternative_paths(from, to, hour, k);
  if (alternatives.empty()) {
    return NotFound("no route between the requested nodes");
  }
  RouteChoice best;
  double best_score = 1e300;
  for (const auto& path : alternatives) {
    const TravelTimeDistribution dist =
        ptdr_route_time(network, path, hour, mc_samples, rng);
    const double score =
        risk_quantile >= 0.95
            ? dist.p95_s
            : (risk_quantile <= 0.5 ? dist.p50_s
                                    : dist.p50_s + (dist.p95_s - dist.p50_s) *
                                                       (risk_quantile - 0.5) /
                                                       0.45);
    if (score < best_score) {
      best_score = score;
      best.path = path;
      best.distribution = dist;
    }
  }
  best.alternatives_evaluated = static_cast<int>(alternatives.size());
  return best;
}

SimulationDay simulate_traffic_day(const RoadNetwork& network,
                                   std::size_t vehicles, std::uint64_t seed) {
  Rng rng(seed);
  SimulationDay day;
  // Per segment per hour: vehicle counts for the congestion feedback.
  std::vector<std::array<double, 24>> load(network.num_segments());
  for (auto& l : load) l.fill(0.0);

  OnlineStats trip_stats;
  for (std::size_t v = 0; v < vehicles; ++v) {
    const std::size_t from = rng.uniform_int(network.num_nodes());
    std::size_t to = rng.uniform_int(network.num_nodes());
    if (to == from) to = (to + 1) % network.num_nodes();
    // Departure skewed to rush hours.
    const int hour = rng.bernoulli(0.5)
                         ? static_cast<int>(rng.uniform_int(7, 9))
                         : static_cast<int>(rng.uniform_int(0, 23));
    const auto path = network.shortest_path(from, to, hour);
    if (path.empty()) continue;
    double t = 0.0;
    for (std::size_t segment : path) {
      const int h = (hour + static_cast<int>(t / 3600.0)) % 24;
      const RoadSegment& seg = network.segment(segment);
      // BPR congestion: time multiplier 1 + 0.15 (v/c)^4.
      const double vc = load[segment][h] / seg.capacity;
      const double congestion = 1.0 + 0.15 * vc * vc * vc * vc;
      const double base = network.sample_time_s(segment, h, rng);
      const double time_s = base * congestion;
      t += time_s;
      load[segment][h] += 1.0;
      day.vehicle_km += seg.length_km;
      FcdPoint fcd;
      fcd.segment = segment;
      fcd.hour = h;
      fcd.speed_kmh = seg.length_km / (time_s / 3600.0);
      day.fcd.push_back(fcd);
    }
    trip_stats.add(t);
  }
  day.mean_trip_time_s = trip_stats.mean();
  return day;
}

std::size_t calibrate_profiles(RoadNetwork& network,
                               const std::vector<FcdPoint>& fcd,
                               std::size_t min_samples) {
  // Aggregate FCD into (segment, hour) cells.
  std::map<std::pair<std::size_t, int>, OnlineStats> cells;
  for (const FcdPoint& point : fcd) {
    cells[{point.segment, point.hour}].add(
        point.speed_kmh / network.segment(point.segment).freeflow_kmh);
  }
  std::size_t updated = 0;
  for (const auto& [key, stats] : cells) {
    if (stats.count() < min_samples) continue;
    SpeedProfile& profile = network.mutable_profile(key.first);
    profile.mean_factor[key.second % 24] = stats.mean();
    profile.stddev[key.second % 24] = std::max(0.02, stats.stddev());
    ++updated;
  }
  return updated;
}

}  // namespace everest::apps
