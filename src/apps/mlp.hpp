// A small from-scratch MLP (inference + SGD training). Stands in for the
// "AI libraries and frameworks" of the paper's use cases, and bridges into
// the SDK: to_tensor_program() re-expresses the trained network in the
// tensor eDSL so it can flow through the EVEREST compiler/HLS pipeline.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "dsl/tensor_expr.hpp"

namespace everest::apps {

/// Fully connected network with tanh hidden activations and linear output.
class Mlp {
 public:
  /// layer_sizes = {inputs, hidden..., outputs}.
  Mlp(std::vector<int> layer_sizes, Rng& rng);

  [[nodiscard]] int num_inputs() const { return layer_sizes_.front(); }
  [[nodiscard]] int num_outputs() const { return layer_sizes_.back(); }

  /// Forward pass for one sample.
  [[nodiscard]] std::vector<double> predict(
      const std::vector<double>& input) const;

  /// One SGD epoch over the dataset (MSE loss); returns the mean loss.
  double train_epoch(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets,
                     double learning_rate, Rng& rng);

  /// Mean squared error over a dataset.
  [[nodiscard]] double evaluate(
      const std::vector<std::vector<double>>& inputs,
      const std::vector<std::vector<double>>& targets) const;

  /// Re-expresses inference as a tensor program over a batch of
  /// `batch` samples (weights baked in as constants).
  [[nodiscard]] dsl::TensorProgram to_tensor_program(
      const std::string& name, int batch) const;

  /// Total trainable parameters.
  [[nodiscard]] std::size_t num_parameters() const;

 private:
  struct Layer {
    int in = 0, out = 0;
    std::vector<double> weights;  // out × in, row-major
    std::vector<double> bias;     // out
  };
  /// Forward keeping pre-activations and activations (for backprop).
  void forward(const std::vector<double>& input,
               std::vector<std::vector<double>>* activations) const;

  std::vector<int> layer_sizes_;
  std::vector<Layer> layers_;
};

}  // namespace everest::apps
