#include "apps/weather.hpp"

#include <algorithm>
#include <cmath>

namespace everest::apps {

namespace {
constexpr double kPi = 3.14159265358979323846;

WeatherField make_field(int ny, int nx, double dx_km, double fill = 0.0) {
  WeatherField f;
  f.ny = ny;
  f.nx = nx;
  f.dx_km = dx_km;
  f.data.assign(static_cast<std::size_t>(ny) * static_cast<std::size_t>(nx),
                fill);
  return f;
}

/// Box-smooths a field `passes` times with the given radius — a cheap
/// separable approximation of Gaussian spatial correlation.
void smooth(WeatherField& f, int radius, int passes) {
  if (radius <= 0) return;
  WeatherField tmp = f;
  for (int pass = 0; pass < passes; ++pass) {
    // Horizontal.
    for (int y = 0; y < f.ny; ++y) {
      for (int x = 0; x < f.nx; ++x) {
        double sum = 0.0;
        int count = 0;
        for (int k = -radius; k <= radius; ++k) {
          const int xx = std::clamp(x + k, 0, f.nx - 1);
          sum += f.at(y, xx);
          ++count;
        }
        tmp.at(y, x) = sum / count;
      }
    }
    // Vertical.
    for (int y = 0; y < f.ny; ++y) {
      for (int x = 0; x < f.nx; ++x) {
        double sum = 0.0;
        int count = 0;
        for (int k = -radius; k <= radius; ++k) {
          const int yy = std::clamp(y + k, 0, f.ny - 1);
          sum += tmp.at(yy, x);
          ++count;
        }
        f.at(y, x) = sum / count;
      }
    }
  }
}

}  // namespace

double WeatherField::sample(double y, double x) const {
  const double cy = std::clamp(y, 0.0, static_cast<double>(ny - 1));
  const double cx = std::clamp(x, 0.0, static_cast<double>(nx - 1));
  const int y0 = static_cast<int>(cy);
  const int x0 = static_cast<int>(cx);
  const int y1 = std::min(y0 + 1, ny - 1);
  const int x1 = std::min(x0 + 1, nx - 1);
  const double fy = cy - y0;
  const double fx = cx - x0;
  return at(y0, x0) * (1 - fy) * (1 - fx) + at(y0, x1) * (1 - fy) * fx +
         at(y1, x0) * fy * (1 - fx) + at(y1, x1) * fy * fx;
}

WeatherField WeatherGenerator::correlated_noise(double stddev) {
  WeatherField noise = make_field(options_.ny, options_.nx, options_.dx_km);
  for (double& v : noise.data) v = rng_.normal(0.0, 1.0);
  const int radius = std::max(1, static_cast<int>(options_.correlation_cells));
  smooth(noise, radius, 2);
  // Smoothing shrinks variance: renormalize to the requested stddev.
  double mean = 0.0, var = 0.0;
  for (double v : noise.data) mean += v;
  mean /= static_cast<double>(noise.data.size());
  for (double v : noise.data) var += (v - mean) * (v - mean);
  var /= static_cast<double>(noise.data.size());
  const double scale = var > 1e-12 ? stddev / std::sqrt(var) : 0.0;
  for (double& v : noise.data) v = (v - mean) * scale;
  return noise;
}

std::vector<WeatherState> WeatherGenerator::generate_truth(int hours) {
  std::vector<WeatherState> out;
  out.reserve(static_cast<std::size_t>(hours));
  // Synoptic base patterns evolve slowly; ramps flip the regime.
  WeatherField wind_base = correlated_noise(options_.wind_variability);
  WeatherField dir_base = correlated_noise(0.6);
  double regime = 0.0;  // ramp offset added to wind
  double regime_target = 0.0;
  for (int h = 0; h < hours; ++h) {
    if (h % 24 == 0 && rng_.bernoulli(options_.ramp_probability)) {
      // Ramp event arriving at a random hour today.
      regime_target = rng_.bernoulli(0.5) ? options_.mean_wind * 0.8
                                          : -options_.mean_wind * 0.5;
    }
    regime += 0.15 * (regime_target - regime);
    regime_target *= 0.98;
    // Slow pattern evolution.
    WeatherField evolve = correlated_noise(options_.wind_variability * 0.15);
    for (std::size_t i = 0; i < wind_base.data.size(); ++i) {
      wind_base.data[i] =
          0.97 * wind_base.data[i] + evolve.data[static_cast<std::size_t>(i)];
    }
    const double hour_angle = 2.0 * kPi * (h % 24) / 24.0;
    const double diurnal_wind = 1.0 + 0.12 * std::sin(hour_angle - kPi / 2);

    WeatherState state;
    state.wind_speed = make_field(options_.ny, options_.nx, options_.dx_km);
    state.wind_dir = make_field(options_.ny, options_.nx, options_.dx_km);
    state.temperature = make_field(options_.ny, options_.nx, options_.dx_km);
    state.solar = make_field(options_.ny, options_.nx, options_.dx_km);
    for (int y = 0; y < options_.ny; ++y) {
      for (int x = 0; x < options_.nx; ++x) {
        const double w = (options_.mean_wind + wind_base.at(y, x) + regime) *
                         diurnal_wind;
        state.wind_speed.at(y, x) = std::max(0.0, w);
        state.wind_dir.at(y, x) = dir_base.at(y, x) + 0.3 * std::sin(hour_angle);
        state.temperature.at(y, x) =
            12.0 + 6.0 * std::sin(hour_angle - kPi / 2) +
            0.4 * wind_base.at(y, x);
        state.solar.at(y, x) =
            std::max(0.0, 800.0 * std::sin(hour_angle - kPi / 2));
      }
    }
    out.push_back(std::move(state));
  }
  return out;
}

std::vector<WeatherState> WeatherGenerator::perturb_member(
    const std::vector<WeatherState>& truth, double error_growth) {
  std::vector<WeatherState> member = truth;
  WeatherField bias = correlated_noise(1.0);
  for (std::size_t h = 0; h < member.size(); ++h) {
    const double amplitude =
        error_growth * static_cast<double>(h + 1);  // grows with lead time
    WeatherField jitter = correlated_noise(1.0);
    for (int y = 0; y < member[h].wind_speed.ny; ++y) {
      for (int x = 0; x < member[h].wind_speed.nx; ++x) {
        const double eps =
            amplitude * (0.7 * bias.at(y, x) + 0.5 * jitter.at(y, x));
        double& w = member[h].wind_speed.at(y, x);
        w = std::max(0.0, w * (1.0 + eps) );
        member[h].temperature.at(y, x) += 2.0 * eps;
        member[h].wind_dir.at(y, x) += 0.2 * eps;
      }
    }
  }
  return member;
}

WeatherField downscale(const WeatherField& coarse, int factor,
                       double perturbation, std::uint64_t seed) {
  if (factor <= 1) return coarse;
  WeatherField fine;
  fine.ny = coarse.ny * factor;
  fine.nx = coarse.nx * factor;
  fine.dx_km = coarse.dx_km / factor;
  fine.data.resize(static_cast<std::size_t>(fine.ny) *
                   static_cast<std::size_t>(fine.nx));
  Rng rng(seed);
  // Deterministic "terrain" modulation at the fine scale.
  std::vector<double> terrain(fine.data.size());
  for (double& t : terrain) t = rng.normal(0.0, 1.0);
  for (int y = 0; y < fine.ny; ++y) {
    for (int x = 0; x < fine.nx; ++x) {
      const double cy = static_cast<double>(y) / factor;
      const double cx = static_cast<double>(x) / factor;
      const double base = coarse.sample(cy, cx);
      const double t =
          terrain[static_cast<std::size_t>(y) *
                      static_cast<std::size_t>(fine.nx) +
                  static_cast<std::size_t>(x)];
      fine.at(y, x) = base * (1.0 + perturbation * t);
    }
  }
  return fine;
}

double downscale_flops(const WeatherField& coarse, int factor) {
  // ~12 FLOPs per fine cell (bilinear weights + modulation).
  return 12.0 * coarse.data.size() * factor * factor;
}

}  // namespace everest::apps
