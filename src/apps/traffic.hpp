// Use case §VI-C: traffic modeling for intelligent transportation. A road
// network with time-dependent probabilistic speed profiles (learned from
// synthetic FCD), probabilistic time-dependent routing (PTDR) via Monte
// Carlo over alternative paths, and a lightweight traffic simulator that
// "boosts the raw sensory data into rich training sequences".
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/graph.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"

namespace everest::apps {

/// One directed road segment.
struct RoadSegment {
  std::size_t from = 0;
  std::size_t to = 0;
  double length_km = 1.0;
  double freeflow_kmh = 50.0;
  /// Capacity in vehicles (for the simulator's congestion model).
  double capacity = 40.0;
};

/// Hourly speed multiplier distribution for a segment: mean and spread of
/// (actual speed / free-flow speed) per hour of day.
struct SpeedProfile {
  std::array<double, 24> mean_factor;
  std::array<double, 24> stddev;
};

/// A road network: grid-shaped generator plus speed profiles per segment.
class RoadNetwork {
 public:
  /// Manhattan grid of rows × cols intersections, bidirectional streets,
  /// a fraction of "arterial" segments with higher speed/capacity.
  static RoadNetwork make_grid(int rows, int cols, std::uint64_t seed);

  [[nodiscard]] std::size_t num_nodes() const { return num_nodes_; }
  [[nodiscard]] std::size_t num_segments() const { return segments_.size(); }
  [[nodiscard]] const RoadSegment& segment(std::size_t i) const {
    return segments_[i];
  }
  [[nodiscard]] const SpeedProfile& profile(std::size_t i) const {
    return profiles_[i];
  }
  SpeedProfile& mutable_profile(std::size_t i) { return profiles_[i]; }

  /// Expected travel time (s) of a segment departing at `hour`.
  [[nodiscard]] double expected_time_s(std::size_t segment, int hour) const;

  /// Sampled travel time (s) with the profile's randomness.
  [[nodiscard]] double sample_time_s(std::size_t segment, int hour,
                                     Rng& rng) const;

  /// Shortest path (by expected time at `hour`) between two nodes; empty
  /// when unreachable. Returns segment indices.
  [[nodiscard]] std::vector<std::size_t> shortest_path(std::size_t from,
                                                       std::size_t to,
                                                       int hour) const;

  /// K alternative paths via iterative edge-penalization.
  [[nodiscard]] std::vector<std::vector<std::size_t>> alternative_paths(
      std::size_t from, std::size_t to, int hour, int k) const;

 private:
  std::size_t num_nodes_ = 0;
  std::vector<RoadSegment> segments_;
  std::vector<SpeedProfile> profiles_;
  /// segment index lookup by (from,to) adjacency.
  WeightedDigraph topology_;  // weights unused; rebuilt per query
  std::vector<std::vector<std::size_t>> out_segments_;
};

/// Travel-time distribution of one path from Monte Carlo sampling.
struct TravelTimeDistribution {
  double mean_s = 0.0;
  double stddev_s = 0.0;
  double p50_s = 0.0;
  double p95_s = 0.0;
  std::size_t samples = 0;
};

/// PTDR: samples departure at `hour`, walking the path with per-segment
/// stochastic speeds, hour advancing as time accumulates.
TravelTimeDistribution ptdr_route_time(const RoadNetwork& network,
                                       const std::vector<std::size_t>& path,
                                       int hour, std::size_t samples,
                                       Rng& rng);

/// Route choice: evaluates k alternatives with PTDR and picks by the given
/// risk quantile (0.5 = median optimizer, 0.95 = risk-averse).
struct RouteChoice {
  std::vector<std::size_t> path;
  TravelTimeDistribution distribution;
  int alternatives_evaluated = 0;
};
Result<RouteChoice> choose_route(const RoadNetwork& network, std::size_t from,
                                 std::size_t to, int hour, int k,
                                 std::size_t mc_samples, double risk_quantile,
                                 Rng& rng);

/// Synthetic floating-car data point.
struct FcdPoint {
  std::size_t segment = 0;
  int hour = 0;
  double speed_kmh = 0.0;
};

/// The traffic simulator: routes `vehicles` O/D trips through the network
/// over one day, congestion feeding back into speeds (BPR curve); emits
/// FCD that can retrain the speed profiles.
struct SimulationDay {
  std::vector<FcdPoint> fcd;
  double mean_trip_time_s = 0.0;
  double vehicle_km = 0.0;
};
SimulationDay simulate_traffic_day(const RoadNetwork& network,
                                   std::size_t vehicles, std::uint64_t seed);

/// Re-estimates speed profiles from FCD (per segment × hour mean/std);
/// segments/hours without data keep their prior. Returns segments updated.
std::size_t calibrate_profiles(RoadNetwork& network,
                               const std::vector<FcdPoint>& fcd,
                               std::size_t min_samples = 5);

}  // namespace everest::apps
