#include "apps/mlp.hpp"

#include <cassert>
#include <cmath>

namespace everest::apps {

Mlp::Mlp(std::vector<int> layer_sizes, Rng& rng)
    : layer_sizes_(std::move(layer_sizes)) {
  assert(layer_sizes_.size() >= 2);
  for (std::size_t l = 0; l + 1 < layer_sizes_.size(); ++l) {
    Layer layer;
    layer.in = layer_sizes_[l];
    layer.out = layer_sizes_[l + 1];
    // Xavier-style init.
    const double scale = std::sqrt(2.0 / (layer.in + layer.out));
    layer.weights.resize(static_cast<std::size_t>(layer.in) *
                         static_cast<std::size_t>(layer.out));
    for (double& w : layer.weights) w = rng.normal(0.0, scale);
    layer.bias.assign(static_cast<std::size_t>(layer.out), 0.0);
    layers_.push_back(std::move(layer));
  }
}

void Mlp::forward(const std::vector<double>& input,
                  std::vector<std::vector<double>>* activations) const {
  activations->clear();
  activations->push_back(input);
  std::vector<double> current = input;
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    std::vector<double> next(static_cast<std::size_t>(layer.out), 0.0);
    for (int o = 0; o < layer.out; ++o) {
      double sum = layer.bias[static_cast<std::size_t>(o)];
      const double* row =
          &layer.weights[static_cast<std::size_t>(o) *
                         static_cast<std::size_t>(layer.in)];
      for (int i = 0; i < layer.in; ++i) {
        sum += row[i] * current[static_cast<std::size_t>(i)];
      }
      // tanh on hidden layers, identity on the output layer.
      next[static_cast<std::size_t>(o)] =
          l + 1 < layers_.size() ? std::tanh(sum) : sum;
    }
    activations->push_back(next);
    current = std::move(next);
  }
}

std::vector<double> Mlp::predict(const std::vector<double>& input) const {
  std::vector<std::vector<double>> activations;
  forward(input, &activations);
  return activations.back();
}

double Mlp::train_epoch(const std::vector<std::vector<double>>& inputs,
                        const std::vector<std::vector<double>>& targets,
                        double learning_rate, Rng& rng) {
  assert(inputs.size() == targets.size());
  std::vector<std::size_t> order(inputs.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  rng.shuffle(order);

  double total_loss = 0.0;
  for (std::size_t sample : order) {
    std::vector<std::vector<double>> acts;
    forward(inputs[sample], &acts);
    // Output delta (MSE, linear output).
    std::vector<double> delta = acts.back();
    for (std::size_t o = 0; o < delta.size(); ++o) {
      delta[o] -= targets[sample][o];
      total_loss += delta[o] * delta[o];
    }
    // Backprop.
    for (std::size_t l = layers_.size(); l-- > 0;) {
      Layer& layer = layers_[l];
      const std::vector<double>& in_act = acts[l];
      std::vector<double> prev_delta(static_cast<std::size_t>(layer.in), 0.0);
      for (int o = 0; o < layer.out; ++o) {
        const double d = delta[static_cast<std::size_t>(o)];
        double* row = &layer.weights[static_cast<std::size_t>(o) *
                                     static_cast<std::size_t>(layer.in)];
        for (int i = 0; i < layer.in; ++i) {
          prev_delta[static_cast<std::size_t>(i)] += row[i] * d;
          row[i] -= learning_rate * d * in_act[static_cast<std::size_t>(i)];
        }
        layer.bias[static_cast<std::size_t>(o)] -= learning_rate * d;
      }
      if (l > 0) {
        // Through the tanh of the previous layer's output.
        for (std::size_t i = 0; i < prev_delta.size(); ++i) {
          const double a = acts[l][i];
          prev_delta[i] *= 1.0 - a * a;
        }
        delta = std::move(prev_delta);
      }
    }
  }
  return inputs.empty() ? 0.0
                        : total_loss / static_cast<double>(inputs.size());
}

double Mlp::evaluate(const std::vector<std::vector<double>>& inputs,
                     const std::vector<std::vector<double>>& targets) const {
  double total = 0.0;
  for (std::size_t s = 0; s < inputs.size(); ++s) {
    const std::vector<double> out = predict(inputs[s]);
    for (std::size_t o = 0; o < out.size(); ++o) {
      const double d = out[o] - targets[s][o];
      total += d * d;
    }
  }
  return inputs.empty() ? 0.0 : total / static_cast<double>(inputs.size());
}

dsl::TensorProgram Mlp::to_tensor_program(const std::string& name,
                                          int batch) const {
  dsl::TensorProgram program(name);
  dsl::DataAnnotations annotations;
  annotations.provenance = "mlp-inference";
  dsl::TensorExpr x = program.input(
      "x", {batch, layer_sizes_.front()}, annotations);
  for (std::size_t l = 0; l < layers_.size(); ++l) {
    const Layer& layer = layers_[l];
    // Weights stored out×in; the tensor program multiplies x(batch,in) by
    // W^T(in,out).
    std::vector<double> wt(static_cast<std::size_t>(layer.in) *
                           static_cast<std::size_t>(layer.out));
    for (int o = 0; o < layer.out; ++o) {
      for (int i = 0; i < layer.in; ++i) {
        wt[static_cast<std::size_t>(i) * static_cast<std::size_t>(layer.out) +
           static_cast<std::size_t>(o)] =
            layer.weights[static_cast<std::size_t>(o) *
                              static_cast<std::size_t>(layer.in) +
                          static_cast<std::size_t>(i)];
      }
    }
    dsl::TensorExpr w = program.constant({layer.in, layer.out}, wt);
    // Bias broadcast over the batch.
    std::vector<double> bias_rep(static_cast<std::size_t>(batch) *
                                 static_cast<std::size_t>(layer.out));
    for (int b = 0; b < batch; ++b) {
      for (int o = 0; o < layer.out; ++o) {
        bias_rep[static_cast<std::size_t>(b) *
                     static_cast<std::size_t>(layer.out) +
                 static_cast<std::size_t>(o)] =
            layer.bias[static_cast<std::size_t>(o)];
      }
    }
    dsl::TensorExpr bias = program.constant({batch, layer.out}, bias_rep);
    x = matmul(x, w) + bias;
    if (l + 1 < layers_.size()) x = tanh_(x);
  }
  program.output("y", x);
  return program;
}

std::size_t Mlp::num_parameters() const {
  std::size_t n = 0;
  for (const Layer& layer : layers_) {
    n += layer.weights.size() + layer.bias.size();
  }
  return n;
}

}  // namespace everest::apps
