// Use case §VI-A: weather-based prediction of wind-farm production for the
// energy trading market. Pipeline: ensemble weather → downscale → farm
// power model → MLP correction trained on history → hourly 24-h forecast;
// scored by RMSE and the asymmetric imbalance cost the market charges.
#pragma once

#include <vector>

#include "apps/mlp.hpp"
#include "apps/weather.hpp"
#include "common/status.hpp"

namespace everest::apps {

/// One turbine position in kilometres within the weather domain; fields
/// convert via their own dx_km, so the same farm works at any resolution.
struct Turbine {
  double y_km = 0.0;
  double x_km = 0.0;
  double rated_mw = 3.0;
};

/// A wind farm with the standard piecewise power curve.
struct WindFarm {
  std::vector<Turbine> turbines;
  double cut_in_ms = 3.0;
  double rated_ms = 12.0;
  double cut_out_ms = 25.0;

  /// Power (MW) of one turbine at wind speed v.
  [[nodiscard]] double turbine_power(double v, double rated_mw) const;
  /// Farm output (MW) given a wind field (fine grid).
  [[nodiscard]] double farm_power(const WeatherField& wind) const;
  [[nodiscard]] double capacity_mw() const;

  /// A layout of `n` turbines clustered in the center of a domain of the
  /// given size (km).
  static WindFarm make_cluster(int n, double domain_y_km, double domain_x_km,
                               std::uint64_t seed);
};

/// Forecast configuration.
struct ForecastOptions {
  int ensemble_members = 8;
  int downscale_factor = 4;   // 25 km → ~6 km
  int horizon_hours = 24;
  double member_error_growth = 0.04;
};

/// One day's forecast vs truth.
struct ForecastResult {
  std::vector<double> forecast_mw;   // per hour (MLP-corrected if trained)
  std::vector<double> physical_mw;   // raw ensemble power-curve forecast
  std::vector<double> actual_mw;     // per hour
  double physical_rmse_mw = 0.0;
  double rmse_mw = 0.0;
  /// Imbalance cost in EUR: shortfall penalized 3× surplus (typical
  /// day-ahead market asymmetry), 50 EUR/MWh base.
  double imbalance_cost_eur = 0.0;
  /// FLOPs spent on the weather processing (downscale + ensemble).
  double compute_flops = 0.0;
};

/// The end-to-end energy-forecast application.
class EnergyForecaster {
 public:
  EnergyForecaster(WeatherOptions weather, WindFarm farm, std::uint64_t seed)
      : generator_(weather, seed), farm_(std::move(farm)), seed_(seed) {}

  /// Generates `days` of history and trains the MLP correction model that
  /// maps ensemble statistics → actual power. Returns final training MSE.
  double train(int days, int epochs = 60);

  /// Forecasts the next day and scores it against generated truth.
  ForecastResult forecast_day(const ForecastOptions& options);

  [[nodiscard]] const WindFarm& farm() const { return farm_; }

 private:
  /// Ensemble features for one hour: mean/std of farm-cell wind +
  /// hour-of-day encoding.
  std::vector<double> hour_features(
      const std::vector<WeatherState>& members_hour, int hour,
      int downscale_factor) const;
  /// Raw physical forecast (power curve on the ensemble-mean wind).
  double physical_power(const std::vector<WeatherState>& members_hour,
                        int downscale_factor) const;
  /// Actual production: power curve on the true wind, degraded by wake and
  /// air-density losses the physical model does not capture (this is the
  /// systematic signal the AI correction learns, paper §VI-D "quality of
  /// predictions").
  double actual_production(const WeatherState& truth_hour,
                           int downscale_factor) const;

  WeatherGenerator generator_;
  WindFarm farm_;
  std::uint64_t seed_;
  std::unique_ptr<Mlp> correction_;
  double feature_scale_ = 1.0;
};

}  // namespace everest::apps
