// Synthetic weather-ensemble substrate (paper §VI-A/B). Stands in for the
// ECMWF/WRF products the project uses: spatially correlated fields with
// diurnal structure, ensemble perturbations, and a downscaling operator
// ("increase the resolution of weather forecast ensembles", §VI-A).
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"

namespace everest::apps {

/// One scalar field on a regular ny × nx grid (row-major).
struct WeatherField {
  int ny = 0;
  int nx = 0;
  /// Grid spacing in km.
  double dx_km = 25.0;
  std::vector<double> data;

  [[nodiscard]] double at(int y, int x) const {
    return data[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                static_cast<std::size_t>(x)];
  }
  double& at(int y, int x) {
    return data[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                static_cast<std::size_t>(x)];
  }
  /// Bilinear sample at fractional grid coordinates (clamped).
  [[nodiscard]] double sample(double y, double x) const;
};

/// Weather state for one hour: the variables the use cases need.
struct WeatherState {
  WeatherField wind_speed;   // m/s at hub height
  WeatherField wind_dir;     // radians
  WeatherField temperature;  // °C
  WeatherField solar;        // W/m²
};

/// Configuration of the synthetic atmosphere.
struct WeatherOptions {
  int ny = 24;
  int nx = 24;
  double dx_km = 25.0;
  double mean_wind = 8.0;        // m/s
  double wind_variability = 3.0; // synoptic std-dev
  double correlation_cells = 4.0;  // spatial correlation length (cells)
  /// Probability per day of a ramp event (front passage), the phenomenon
  /// §VI-A targets ("severe meteorological ramp-up/down events").
  double ramp_probability = 0.15;
};

/// Generates "truth" weather and perturbed ensembles around it.
class WeatherGenerator {
 public:
  WeatherGenerator(WeatherOptions options, std::uint64_t seed)
      : options_(options), rng_(seed) {}

  /// Generates `hours` consecutive truth states (hour 0 = midnight).
  std::vector<WeatherState> generate_truth(int hours);

  /// Perturbs a truth sequence into one ensemble member: correlated noise
  /// plus a phase/amplitude error that grows with lead time.
  std::vector<WeatherState> perturb_member(
      const std::vector<WeatherState>& truth, double error_growth = 0.04);

  [[nodiscard]] const WeatherOptions& options() const { return options_; }

 private:
  WeatherField correlated_noise(double stddev);
  WeatherOptions options_;
  Rng rng_;
};

/// Bilinear downscaling by an integer factor with terrain-like small-scale
/// perturbation (deterministic from `seed` so members stay comparable).
WeatherField downscale(const WeatherField& coarse, int factor,
                       double perturbation = 0.05, std::uint64_t seed = 17);

/// FLOPs a downscale of this size costs (for compute accounting).
double downscale_flops(const WeatherField& coarse, int factor);

}  // namespace everest::apps
