#include "apps/energy.hpp"

#include <algorithm>
#include <cmath>

#include "common/stats.hpp"

namespace everest::apps {

namespace {
constexpr double kPi = 3.14159265358979323846;
constexpr double kBasePriceEurMwh = 50.0;
constexpr double kShortfallMultiplier = 3.0;
}  // namespace

double WindFarm::turbine_power(double v, double rated_mw) const {
  if (v < cut_in_ms || v >= cut_out_ms) return 0.0;
  if (v >= rated_ms) return rated_mw;
  // Cubic ramp between cut-in and rated.
  const double f = (v - cut_in_ms) / (rated_ms - cut_in_ms);
  return rated_mw * f * f * f;
}

double WindFarm::farm_power(const WeatherField& wind) const {
  double total = 0.0;
  for (const Turbine& t : turbines) {
    const double v = wind.sample(t.y_km / wind.dx_km, t.x_km / wind.dx_km);
    total += turbine_power(v, t.rated_mw);
  }
  return total;
}

double WindFarm::capacity_mw() const {
  double total = 0.0;
  for (const Turbine& t : turbines) total += t.rated_mw;
  return total;
}

WindFarm WindFarm::make_cluster(int n, double domain_y_km, double domain_x_km,
                                std::uint64_t seed) {
  WindFarm farm;
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    Turbine t;
    t.y_km = domain_y_km * (0.4 + 0.2 * rng.uniform());
    t.x_km = domain_x_km * (0.4 + 0.2 * rng.uniform());
    t.rated_mw = 3.0;
    farm.turbines.push_back(t);
  }
  return farm;
}

std::vector<double> EnergyForecaster::hour_features(
    const std::vector<WeatherState>& members_hour, int hour,
    int downscale_factor) const {
  // Farm-cell wind statistics across the ensemble.
  OnlineStats wind_stats, power_stats;
  for (const WeatherState& member : members_hour) {
    const WeatherField fine =
        downscale(member.wind_speed, downscale_factor, 0.05, seed_);
    double mean_wind = 0.0;
    for (const Turbine& t : farm_.turbines) {
      mean_wind += fine.sample(t.y_km / fine.dx_km, t.x_km / fine.dx_km);
    }
    mean_wind /= static_cast<double>(farm_.turbines.size());
    wind_stats.add(mean_wind);
    power_stats.add(farm_.farm_power(fine));
  }
  const double capacity = farm_.capacity_mw();
  return {
      wind_stats.mean() / 15.0,
      wind_stats.stddev() / 5.0,
      power_stats.mean() / capacity,
      power_stats.stddev() / capacity,
      std::sin(2.0 * kPi * hour / 24.0),
      std::cos(2.0 * kPi * hour / 24.0),
  };
}

double EnergyForecaster::physical_power(
    const std::vector<WeatherState>& members_hour,
    int downscale_factor) const {
  double total = 0.0;
  for (const WeatherState& member : members_hour) {
    const WeatherField fine =
        downscale(member.wind_speed, downscale_factor, 0.05, seed_);
    total += farm_.farm_power(fine);
  }
  return total / static_cast<double>(members_hour.size());
}

double EnergyForecaster::actual_production(const WeatherState& truth_hour,
                                           int downscale_factor) const {
  const WeatherField fine =
      downscale(truth_hour.wind_speed, downscale_factor, 0.05, seed_);
  const double raw = farm_.farm_power(fine);
  // Wake losses (~10%) plus an air-density term: warm air is thinner, so
  // production drops ~0.6%/°C above 12 °C.
  const double gy = farm_.turbines.empty()
                        ? 0.0
                        : farm_.turbines[0].y_km / truth_hour.temperature.dx_km;
  const double gx = farm_.turbines.empty()
                        ? 0.0
                        : farm_.turbines[0].x_km / truth_hour.temperature.dx_km;
  const double temp = truth_hour.temperature.sample(gy, gx);
  const double loss = 0.90 * (1.0 - 0.006 * (temp - 12.0));
  return std::clamp(raw * loss, 0.0, farm_.capacity_mw());
}

double EnergyForecaster::train(int days, int epochs) {
  ForecastOptions options;  // defaults for history generation
  std::vector<std::vector<double>> features;
  std::vector<std::vector<double>> targets;
  const double capacity = farm_.capacity_mw();
  for (int day = 0; day < days; ++day) {
    const auto truth = generator_.generate_truth(options.horizon_hours);
    std::vector<std::vector<WeatherState>> members;
    for (int m = 0; m < options.ensemble_members; ++m) {
      members.push_back(
          generator_.perturb_member(truth, options.member_error_growth));
    }
    for (int h = 0; h < options.horizon_hours; ++h) {
      std::vector<WeatherState> hour_states;
      for (const auto& member : members) hour_states.push_back(member[h]);
      features.push_back(
          hour_features(hour_states, h, options.downscale_factor));
      targets.push_back(
          {actual_production(truth[h], options.downscale_factor) / capacity});
    }
  }
  Rng rng(seed_ ^ 0xABCDEF);
  correction_ = std::make_unique<Mlp>(
      std::vector<int>{static_cast<int>(features.front().size()), 16, 1}, rng);
  double loss = 0.0;
  for (int e = 0; e < epochs; ++e) {
    loss = correction_->train_epoch(features, targets, 0.02, rng);
  }
  return loss;
}

ForecastResult EnergyForecaster::forecast_day(const ForecastOptions& options) {
  ForecastResult result;
  const double capacity = farm_.capacity_mw();
  const auto truth = generator_.generate_truth(options.horizon_hours);
  std::vector<std::vector<WeatherState>> members;
  for (int m = 0; m < options.ensemble_members; ++m) {
    members.push_back(
        generator_.perturb_member(truth, options.member_error_growth));
  }
  double se = 0.0, physical_se = 0.0;
  for (int h = 0; h < options.horizon_hours; ++h) {
    std::vector<WeatherState> hour_states;
    for (const auto& member : members) hour_states.push_back(member[h]);
    const double physical =
        physical_power(hour_states, options.downscale_factor);
    double forecast = physical;
    if (correction_ != nullptr) {
      const auto f = hour_features(hour_states, h, options.downscale_factor);
      forecast = std::clamp(correction_->predict(f)[0], 0.0, 1.0) * capacity;
    }
    const double actual =
        actual_production(truth[h], options.downscale_factor);
    result.forecast_mw.push_back(forecast);
    result.physical_mw.push_back(physical);
    result.actual_mw.push_back(actual);
    se += (forecast - actual) * (forecast - actual);
    physical_se += (physical - actual) * (physical - actual);
    const double error_mwh = forecast - actual;  // 1-hour settlement
    result.imbalance_cost_eur +=
        kBasePriceEurMwh *
        (error_mwh > 0 ? kShortfallMultiplier * error_mwh : -error_mwh);
    result.compute_flops +=
        static_cast<double>(options.ensemble_members + 1) *
        downscale_flops(truth[h].wind_speed, options.downscale_factor);
  }
  result.rmse_mw = std::sqrt(se / options.horizon_hours);
  result.physical_rmse_mw = std::sqrt(physical_se / options.horizon_hours);
  return result;
}

}  // namespace everest::apps
