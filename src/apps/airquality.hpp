// Use case §VI-B: Plum'air-style air-quality forecasting for industrial
// sites. Gaussian-plume dispersion of stack emissions on a local (~10 km)
// grid, driven by ensemble weather; forecast mode estimates exceedance
// probabilities at receptors so the site can curtail production.
#pragma once

#include <string>
#include <vector>

#include "apps/weather.hpp"
#include "common/status.hpp"

namespace everest::apps {

/// Pasquill stability classes (A = very unstable … F = very stable).
enum class Stability { kA, kB, kC, kD, kE, kF };

/// Stability from solar radiation and wind speed (simplified Turner table).
Stability classify_stability(double solar_wm2, double wind_ms);

/// One emission stack.
struct StackSource {
  double y_km = 0.0;
  double x_km = 0.0;
  double height_m = 50.0;
  double emission_gs = 100.0;  // g/s of the tracked pollutant
};

/// Dispersion coefficients sigma_y/sigma_z (m) at downwind distance x (m)
/// for a stability class (Briggs power-law fits, rural).
void briggs_sigmas(Stability stability, double x_m, double* sigma_y,
                   double* sigma_z);

/// Ground-level concentration (µg/m³) at a receptor from one source under
/// steady wind (speed m/s, direction radians, blowing towards +x rotated).
double plume_concentration(const StackSource& source, double wind_ms,
                           double wind_dir_rad, Stability stability,
                           double receptor_y_km, double receptor_x_km);

/// A monitoring/forecast grid around the site.
struct ConcentrationField {
  int ny = 0, nx = 0;
  double dx_km = 0.25;
  std::vector<double> ugm3;
  [[nodiscard]] double at(int y, int x) const {
    return ugm3[static_cast<std::size_t>(y) * static_cast<std::size_t>(nx) +
                static_cast<std::size_t>(x)];
  }
};

/// Computes the concentration field for a set of sources and one weather
/// state (wind/solar sampled at each source).
ConcentrationField dispersion_field(const std::vector<StackSource>& sources,
                                    const WeatherState& weather, int ny,
                                    int nx, double dx_km);

/// FLOPs per dispersion_field call (cost accounting).
double dispersion_flops(std::size_t sources, int ny, int nx);

/// Receptor of interest (school, hospital, monitoring station).
struct Receptor {
  std::string name;
  double y_km = 0.0;
  double x_km = 0.0;
};

/// Forecast outcome at the receptors.
struct AirQualityForecast {
  /// P(concentration > limit) per receptor per hour [receptor][hour].
  std::vector<std::vector<double>> exceedance_probability;
  /// Ensemble-mean concentration [receptor][hour].
  std::vector<std::vector<double>> mean_ugm3;
  /// Recommended curtailment hours (any receptor's P(exceed) > threshold).
  std::vector<int> curtail_hours;
  double compute_flops = 0.0;
};

struct AirQualityOptions {
  int ensemble_members = 8;
  int horizon_hours = 24;
  double limit_ugm3 = 50.0;
  double curtail_threshold = 0.3;
  int grid_ny = 40, grid_nx = 40;
  double grid_dx_km = 0.25;  // 10 km domain
};

/// Runs the forecast pipeline for one day.
AirQualityForecast forecast_air_quality(
    const std::vector<StackSource>& sources,
    const std::vector<Receptor>& receptors, WeatherGenerator& generator,
    const AirQualityOptions& options);

}  // namespace everest::apps
