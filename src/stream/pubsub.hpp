// Data-plane pub/sub: versioned-object invalidation as delta PUSH
// instead of lazy refetch. Without it, a producer publishing a new
// version of a shared object (a fresh weather ensemble, a recalibrated
// speed-profile table) leaves every consumer cache stale — the next
// stage() misses and pays a full-shard fetch. With a subscription, the
// publish itself schedules delta transfers (the fraction of the shard
// that actually changed) from the producing node to every subscriber's
// cache, over the same fair-share LinkChannels every other transfer
// shares — so the push congests honestly against foreground traffic
// and a later read at the subscriber hits the cache at the NEW version.
//
// Single-owner like the DataPlane it drives (one simulation thread).
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "data/plane.hpp"

namespace everest::stream {

struct PublishStats {
  std::uint64_t publishes = 0;
  std::uint64_t deltas_pushed = 0;   ///< shard-delta transfers scheduled
  std::uint64_t deltas_arrived = 0;  ///< pushes that landed in a cache
  double delta_bytes = 0.0;          ///< pushed over the fabric
  double full_bytes = 0.0;           ///< what refetching would have moved
};

/// Publisher side of the invalidation path for one DataPlane.
class ShardPublisher {
 public:
  explicit ShardPublisher(data::DataPlane& plane) : plane_(&plane) {}

  /// Registers `node`'s interest in `object`: every future publish
  /// pushes the new version's deltas into that node's cache.
  void subscribe(data::ObjectId object, std::size_t node);
  void unsubscribe(data::ObjectId object, std::size_t node);

  /// Re-registers `object` at a new version (DataPlane::put — replicas
  /// placed, old cached copies staled) and pushes `delta_fraction` of
  /// each shard's bytes to every subscribed node over the transfer
  /// fabric. On arrival the subscriber's cache holds the shard at the
  /// NEW version (refetch cost = a full fetch, which is what the delta
  /// saved). Subscribers that already hold a replica are skipped.
  Status publish(data::ObjectId object, double bytes, std::size_t producer,
                 double delta_fraction = 0.1);

  [[nodiscard]] const PublishStats& stats() const { return stats_; }
  [[nodiscard]] std::size_t num_subscriptions(data::ObjectId object) const {
    auto it = subs_.find(object);
    return it == subs_.end() ? 0 : it->second.size();
  }

 private:
  data::DataPlane* plane_;
  std::map<data::ObjectId, std::set<std::size_t>> subs_;
  PublishStats stats_;
};

}  // namespace everest::stream
