// Event model of the streaming layer (ROADMAP: "continuous ingestion +
// incremental analytics as a first-class workload"). The three paper use
// cases are naturally unbounded: weather ensembles arrive per cycle,
// air-quality sensors report continuously, floating-car data streams in.
// An Event is one timestamped reading on a named topic; a WindowOutput is
// one incremental analytic over a closed event-time window.
//
// Event time is integer microseconds so window arithmetic is exact and
// replays are bit-reproducible; values are doubles (µg/m³, km/h, MW).
// WindowOutput has a canonical byte encoding so "byte-identical window
// outputs across a crash/failover replay" is a checkable equality, not a
// fuzzy comparison.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "serve/request.hpp"

namespace everest::stream {

/// One timestamped reading on a topic. `key` partitions the topic
/// (receptor index, road-segment index, wind-farm id); windows fold
/// per (topic, key).
struct Event {
  std::string topic;
  std::uint64_t key = 0;
  /// Event time (µs on the stream's own timeline, not the wall clock).
  std::uint64_t event_time_us = 0;
  double value = 0.0;
  /// Per-event randomness root (operators that sample derive from it).
  std::uint64_t seed = 0;
  /// Admission lane: latency-critical events jump the ingest queue.
  serve::SlaClass sla = serve::SlaClass::kThroughput;
  /// Punctuation advances the topic frontier to event_time_us without
  /// carrying a reading (a heartbeat/watermark message). Folded by no
  /// operator; closes windows the frontier passed.
  bool punctuation = false;
};

/// One incremental analytic emitted when an event-time window closed.
struct WindowOutput {
  std::string topic;
  std::string op;  ///< emitting operator (a topic may feed several)
  std::uint64_t key = 0;
  std::uint64_t window_start_us = 0;
  std::uint64_t window_end_us = 0;  ///< exclusive
  std::uint64_t events = 0;         ///< readings folded into this window
  double value = 0.0;

  /// Appends the canonical byte encoding (length-prefixed strings,
  /// little-endian integers, IEEE-754 bit patterns) — the unit of the
  /// byte-identity checks.
  void encode(std::string& out) const;
  [[nodiscard]] std::string to_string() const;

  friend bool operator==(const WindowOutput& a, const WindowOutput& b);
};

/// FNV-1a over the concatenated canonical encodings — a cheap equality
/// token for "same outputs, same order" across runs and replays.
[[nodiscard]] std::uint64_t fingerprint(const std::vector<WindowOutput>& outputs);

}  // namespace everest::stream
