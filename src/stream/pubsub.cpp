#include "stream/pubsub.hpp"

#include <algorithm>

namespace everest::stream {

void ShardPublisher::subscribe(data::ObjectId object, std::size_t node) {
  subs_[object].insert(node);
}

void ShardPublisher::unsubscribe(data::ObjectId object, std::size_t node) {
  auto it = subs_.find(object);
  if (it == subs_.end()) return;
  it->second.erase(node);
  if (it->second.empty()) subs_.erase(it);
}

Status ShardPublisher::publish(data::ObjectId object, double bytes,
                               std::size_t producer, double delta_fraction) {
  if (delta_fraction <= 0.0 || delta_fraction > 1.0) {
    return InvalidArgument("delta_fraction must be in (0, 1]");
  }
  plane_->put(object, bytes, producer);
  ++stats_.publishes;

  const data::DataObject* obj = plane_->find(object);
  if (obj == nullptr) return Internal("object vanished after put");

  auto it = subs_.find(object);
  if (it == subs_.end()) return OkStatus();

  for (const std::size_t node : it->second) {
    for (const data::ShardKey& key : obj->keys()) {
      const double shard_bytes = obj->shard_bytes(key.shard);
      // A node holding a durable replica of this shard reads locally;
      // pushing to its cache would be wasted traffic.
      const std::vector<std::size_t> holders = plane_->replicas(key);
      if (std::find(holders.begin(), holders.end(), node) != holders.end()) {
        continue;
      }
      const std::size_t src = holders.empty() ? producer : holders.front();
      if (src == node) continue;
      const double delta = shard_bytes * delta_fraction;
      const double refetch_cost =
          plane_->transfers().estimate_us(shard_bytes, src, node);
      ++stats_.deltas_pushed;
      stats_.delta_bytes += delta;
      stats_.full_bytes += shard_bytes;
      plane_->transfers().fetch(key, delta, src, node, [this, key, node,
                                                        shard_bytes,
                                                        refetch_cost] {
        // The delta applied on top of the stale copy yields the new
        // version: the cache now answers reads at `key` (version
        // included) without a full fetch.
        plane_->cache(node).insert(key, shard_bytes, refetch_cost);
        ++stats_.deltas_arrived;
      });
    }
  }
  return OkStatus();
}

}  // namespace everest::stream
