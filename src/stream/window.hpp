// Windowed incremental operators: tumbling/sliding event-time windows
// with watermark-driven triggering. An operator folds events into
// per-(window, key) accumulators as they arrive — O(state), not
// O(events) — and closes every window the watermark passed, emitting
// outputs in a deterministic order (ascending window end, then key).
//
// The watermark discipline is the standard bounded-out-of-orderness one:
// the engine advances an operator's watermark to
// `topic frontier − allowed_lateness`, so an event may trail the frontier
// by up to allowed_lateness and still be folded; anything later is
// dropped and counted (`late_dropped`), never silently reordered.
//
// Determinism contract (what the TEST_P suites and the crash-replay
// byte-identity checks rely on): given the same per-key event sequence,
// offer/advance produce byte-identical outputs — window assignment is
// integer arithmetic, victim-free state lives in std::map ordered by
// (window end, key), and accumulator folding is sequential.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "stream/event.hpp"

namespace everest::stream {

enum class WindowKind : std::uint8_t {
  kTumbling = 0,  ///< back-to-back windows of `size_us`
  kSliding,       ///< overlapping windows advancing by `slide_us`
};

std::string_view to_string(WindowKind kind);

struct WindowSpec {
  WindowKind kind = WindowKind::kTumbling;
  std::uint64_t size_us = 1'000'000;
  /// Sliding only; 0 (or kTumbling) means slide == size.
  std::uint64_t slide_us = 0;
  /// Bounded out-of-orderness: events may trail the topic frontier by
  /// this much and still fold; the watermark lags the frontier by it.
  std::uint64_t allowed_lateness_us = 0;

  [[nodiscard]] std::uint64_t effective_slide_us() const {
    return (kind == WindowKind::kTumbling || slide_us == 0) ? size_us
                                                            : slide_us;
  }
  /// Start offsets of every window containing event time `t`, descending
  /// (the window ending soonest comes last). Tumbling yields one.
  void windows_of(std::uint64_t t, std::vector<std::uint64_t>* starts) const;
};

/// Incremental per-(window, key) state. `add` must be O(1)-ish and
/// deterministic in the event sequence; `finish` produces the window's
/// output value and is called exactly once, when the window closes.
class Accumulator {
 public:
  virtual ~Accumulator() = default;
  virtual void add(const Event& event) = 0;
  virtual double finish(std::uint64_t window_start_us,
                        std::uint64_t window_end_us) = 0;
};

/// Makes a fresh accumulator for one key (called once per open cell).
using AccumulatorFactory =
    std::function<std::unique_ptr<Accumulator>(std::uint64_t key)>;

struct OperatorStats {
  std::uint64_t events_in = 0;      ///< events folded into >=1 window
  std::uint64_t late_dropped = 0;   ///< events behind every window
  std::uint64_t windows_closed = 0; ///< outputs emitted
};

/// Interface the stream engine drives. Implementations are single-owner:
/// the engine serializes offer/advance under its pump.
class Operator {
 public:
  Operator(std::string name, std::string topic)
      : name_(std::move(name)), topic_(std::move(topic)) {}
  virtual ~Operator() = default;
  Operator(const Operator&) = delete;
  Operator& operator=(const Operator&) = delete;

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }

  /// Folds one event; false = dropped late (every window it belongs to
  /// already closed).
  virtual bool offer(const Event& event) = 0;

  /// Monotonically advances the watermark; closes every window with
  /// end <= watermark and APPENDS their outputs to `out` in (window end,
  /// key) order. A non-advancing watermark is a no-op.
  virtual void advance_watermark(std::uint64_t watermark_us,
                                 std::vector<WindowOutput>* out) = 0;

  [[nodiscard]] virtual std::uint64_t watermark_us() const = 0;
  /// Watermark distance behind the topic frontier this operator needs.
  [[nodiscard]] virtual std::uint64_t allowed_lateness_us() const = 0;
  /// Longest event-time span one window covers — the horizon a failover
  /// replay must rewind past the acked watermark to rebuild open windows.
  [[nodiscard]] virtual std::uint64_t max_window_span_us() const = 0;

  /// Drops all window state and rewinds the watermark (a failover
  /// re-attach replays from the WAL into a reset operator).
  virtual void reset() = 0;

  [[nodiscard]] virtual const OperatorStats& stats() const = 0;

 private:
  std::string name_;
  std::string topic_;
};

/// The generic windowed operator: per-(window, key) accumulators from a
/// factory, watermark-driven closing, deterministic output order.
class WindowedOperator : public Operator {
 public:
  WindowedOperator(std::string name, std::string topic, WindowSpec spec,
                   AccumulatorFactory factory);

  bool offer(const Event& event) override;
  void advance_watermark(std::uint64_t watermark_us,
                         std::vector<WindowOutput>* out) override;
  [[nodiscard]] std::uint64_t watermark_us() const override {
    return watermark_;
  }
  [[nodiscard]] std::uint64_t allowed_lateness_us() const override {
    return spec_.allowed_lateness_us;
  }
  [[nodiscard]] std::uint64_t max_window_span_us() const override {
    return spec_.size_us;
  }
  void reset() override;
  [[nodiscard]] const OperatorStats& stats() const override { return stats_; }

  [[nodiscard]] const WindowSpec& spec() const { return spec_; }
  /// Open (window, key) cells currently held.
  [[nodiscard]] std::size_t open_cells() const { return cells_.size(); }

 private:
  struct CellKey {
    std::uint64_t end_us = 0;
    std::uint64_t key = 0;
    friend bool operator<(const CellKey& a, const CellKey& b) {
      if (a.end_us != b.end_us) return a.end_us < b.end_us;
      return a.key < b.key;
    }
  };
  struct Cell {
    std::uint64_t start_us = 0;
    std::uint64_t events = 0;
    std::unique_ptr<Accumulator> acc;
  };

  WindowSpec spec_;
  AccumulatorFactory factory_;
  /// Ordered by (window end, key): advance_watermark pops a prefix.
  std::map<CellKey, Cell> cells_;
  std::uint64_t watermark_ = 0;
  OperatorStats stats_;
  std::vector<std::uint64_t> scratch_starts_;
};

}  // namespace everest::stream
