// The stream engine of one node: ties the ingestor (bounded two-lane
// admission + WAL), the windowed operators, and the subscriber sessions
// into a single pump loop.
//
//   producers ──offer──▶ Ingestor ──take──▶ pump ──▶ Operator::offer
//                                            │            │ advance
//                                            ▼            ▼
//                                     topic frontier   WindowOutputs
//                                            │            │
//                                            └─staleness──▶ sessions
//
// The pump is the only thread touching operators, so operator code needs
// no locks and folding is strictly admission-ordered — the determinism
// contract. Watermarks are bounded out-of-orderness: per topic the
// frontier is the max event time admitted, and each operator's watermark
// advances to frontier − its allowed lateness.
//
// Failover path (driven by StreamFabric): stop() the dead engine's
// clients, construct a fresh engine over the same WAL dir on the new
// primary, re-register the same operators in the same order,
// replay_wal(), then attach() the surviving sessions — their acked
// watermarks suppress re-emitted windows, so subscribers see a
// byte-identical continuation.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.hpp"
#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "storage/env.hpp"
#include "stream/ingestor.hpp"
#include "stream/session.hpp"
#include "stream/window.hpp"

namespace everest::stream {

struct EngineConfig {
  IngestorConfig ingest;
  /// Subscription admission bound: subscribe() rejects with
  /// RESOURCE_EXHAUSTED beyond this.
  std::size_t max_sessions = 64;
  /// Pump poll granularity while the queue is empty.
  std::chrono::microseconds idle_poll{200};
  /// Span sink (borrowed; may be null). When enabled, each delivery
  /// fan-out gets a "deliver" span and every Delivery carries a
  /// TraceContext parented under it, so consumer-side work stitches
  /// into the engine's chain.
  obs::Tracer* tracer = nullptr;
};

struct EngineStats {
  std::uint64_t events_processed = 0;
  std::uint64_t outputs_emitted = 0;
  std::uint64_t deliveries = 0;
};

/// One node's streaming runtime. Thread-safe facade; operators are
/// pump-thread-only.
class StreamEngine {
 public:
  explicit StreamEngine(EngineConfig config, obs::Registry* registry = nullptr,
                        storage::Env* env = nullptr);
  ~StreamEngine();

  StreamEngine(const StreamEngine&) = delete;
  StreamEngine& operator=(const StreamEngine&) = delete;

  /// Registers an operator. Must happen before start()/replay_wal();
  /// registration order fixes the WAL topic ids, so a failover
  /// replacement must register the same operators in the same order.
  Status add_operator(std::unique_ptr<Operator> op);

  /// Producer-facing admission (thread-safe, never blocks): WAL-append +
  /// two-lane queue; RESOURCE_EXHAUSTED when the queue is full.
  Status ingest(Event event);

  /// Opens a subscription on `topic` for `tenant`. RESOURCE_EXHAUSTED
  /// once `max_sessions` sessions are live; NOT_FOUND for a topic no
  /// operator consumes.
  Result<std::shared_ptr<StreamSession>> subscribe(const std::string& tenant,
                                                   const std::string& topic,
                                                   SessionConfig config = {});

  /// Closes and removes one session. NOT_FOUND if unknown.
  Status unsubscribe(std::uint64_t session_id);

  /// Re-attaches an existing session (failover re-home). The session's
  /// acked watermark keeps suppressing already-delivered windows.
  Status attach(std::shared_ptr<StreamSession> session);

  /// Removes a session without closing it (its queue and ack state
  /// survive for attach() on another engine). NOT_FOUND if unknown.
  Result<std::shared_ptr<StreamSession>> detach(std::uint64_t session_id);

  /// Removes every session without closing them (failover re-home).
  std::vector<std::shared_ptr<StreamSession>> detach_all();

  /// Spawns the pump. Idempotent.
  void start();
  /// Drains the queue, stops the pump, closes every session.
  void stop();
  /// Fail-stop: halts the pump immediately — queued events are lost
  /// (the WAL has them), sessions stay open for re-attach elsewhere.
  void kill();
  [[nodiscard]] bool running() const { return running_.load(); }

  /// Blocks until every admitted event has been folded and delivered.
  void flush();

  /// Replays this engine's WAL through the registered operators in
  /// admission order (engine must not be running). Deliveries flow to
  /// attached sessions — replay duplicates are suppressed by acks.
  /// `acked_horizon_us` trims the replay: an event whose every
  /// containing window closed at or before the horizon (event time +
  /// the topic's max window span <= horizon) only contributes to
  /// already-acked windows, so it is skipped; windows the trim leaves
  /// partially rebuilt are exactly the acked ones the sessions suppress.
  /// Returns events folded.
  Result<std::uint64_t> replay_wal(std::uint64_t acked_horizon_us = 0);

  /// Drops one topic's operator state and frontier (pre-replay reset).
  void reset_topic(const std::string& topic);

  [[nodiscard]] EngineStats stats() const;
  [[nodiscard]] const Ingestor& ingestor() const { return ingestor_; }
  /// Registered topics in registration (WAL id) order.
  [[nodiscard]] std::vector<std::string> topics() const;
  /// Max admitted event time on `topic` (0 when none).
  [[nodiscard]] std::uint64_t frontier_us(const std::string& topic) const;
  /// Min operator watermark on `topic` (0 when none).
  [[nodiscard]] std::uint64_t watermark_us(const std::string& topic) const;
  [[nodiscard]] std::size_t num_sessions() const;

 private:
  void pump();
  /// Folds one event and triggers its topic's operators. Pump thread or
  /// stopped-engine replay only.
  void process(const Event& event);
  void deliver(const std::string& topic, std::uint64_t frontier,
               std::vector<WindowOutput>& outputs);

  EngineConfig config_;
  obs::Registry* registry_;
  storage::Env* env_;
  Ingestor ingestor_;

  /// Registration-ordered; WAL topic id = ingestor_.topic_id(topic).
  std::vector<std::unique_ptr<Operator>> operators_;
  std::vector<std::string> topics_;  ///< registration order
  /// topic -> indices into operators_ (pump-thread-only after start).
  std::map<std::string, std::vector<std::size_t>> by_topic_;
  /// topic -> max admitted event time. Written by the pump, read by
  /// metrics accessors under frontier_mu_.
  mutable std::mutex frontier_mu_;
  std::map<std::string, std::uint64_t> frontiers_;

  mutable std::mutex sessions_mu_;
  std::map<std::uint64_t, std::shared_ptr<StreamSession>> sessions_;
  std::uint64_t next_session_id_ = 1;

  std::thread pump_thread_;
  std::atomic<bool> running_{false};
  std::atomic<bool> stop_requested_{false};
  /// Events the pump finished processing (pairs with ingest admitted
  /// count; flush() waits for equality).
  std::atomic<std::uint64_t> consumed_{0};

  mutable std::mutex stats_mu_;
  EngineStats stats_;

  obs::Counter* ctr_events_ = nullptr;
  obs::Counter* ctr_outputs_ = nullptr;
  obs::Gauge* gauge_watermark_lag_ = nullptr;
  obs::Histogram* hist_staleness_ = nullptr;
};

}  // namespace everest::stream
