#include "stream/operators.hpp"

#include <algorithm>
#include <utility>

namespace everest::stream {

namespace {

class MeanAccumulator final : public Accumulator {
 public:
  void add(const Event& event) override {
    sum_ += event.value;
    ++count_;
  }
  double finish(std::uint64_t, std::uint64_t) override {
    return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
  }

 private:
  double sum_ = 0.0;
  std::uint64_t count_ = 0;
};

class CountAccumulator final : public Accumulator {
 public:
  void add(const Event&) override { ++count_; }
  double finish(std::uint64_t, std::uint64_t) override {
    return static_cast<double>(count_);
  }

 private:
  std::uint64_t count_ = 0;
};

class ExceedanceAccumulator final : public Accumulator {
 public:
  explicit ExceedanceAccumulator(double limit) : limit_(limit) {}
  void add(const Event& event) override {
    ++count_;
    if (event.value > limit_) ++exceed_;
  }
  double finish(std::uint64_t, std::uint64_t) override {
    return count_ == 0
               ? 0.0
               : static_cast<double>(exceed_) / static_cast<double>(count_);
  }

 private:
  double limit_;
  std::uint64_t count_ = 0;
  std::uint64_t exceed_ = 0;
};

}  // namespace

AccumulatorFactory mean_accumulator() {
  return [](std::uint64_t) { return std::make_unique<MeanAccumulator>(); };
}

AccumulatorFactory count_accumulator() {
  return [](std::uint64_t) { return std::make_unique<CountAccumulator>(); };
}

AccumulatorFactory exceedance_accumulator(double limit) {
  return [limit](std::uint64_t) {
    return std::make_unique<ExceedanceAccumulator>(limit);
  };
}

std::unique_ptr<Operator> make_plume_exceedance_operator(std::string topic,
                                                         WindowSpec spec,
                                                         double limit_ugm3,
                                                         std::string name) {
  return std::make_unique<WindowedOperator>(std::move(name), std::move(topic),
                                            spec,
                                            exceedance_accumulator(limit_ugm3));
}

PtdrRerouteOperator::PtdrRerouteOperator(
    std::string name, std::string topic, WindowSpec spec,
    std::shared_ptr<const apps::RoadNetwork> network, std::vector<OdPair> pairs,
    PtdrRerouteConfig config)
    : Operator(std::move(name), std::move(topic)),
      inner_("mean_speed", this->topic(), spec, mean_accumulator()),
      network_(std::move(network)),
      pairs_(std::move(pairs)),
      config_(config),
      overlay_(network_->num_segments(), 1.0) {
  init_routes();
}

void PtdrRerouteOperator::init_routes() {
  routes_.clear();
  routes_.reserve(pairs_.size());
  for (const OdPair& pair : pairs_) {
    routes_.push_back(
        network_->shortest_path(pair.from, pair.to, config_.initial_hour));
  }
}

bool PtdrRerouteOperator::offer(const Event& event) {
  const bool folded = inner_.offer(event);
  if (folded) {
    ++stats_.events_in;
  } else {
    ++stats_.late_dropped;
  }
  return folded;
}

double PtdrRerouteOperator::path_time_s(const std::vector<std::size_t>& path,
                                        int hour) const {
  double total = 0.0;
  for (const std::size_t seg : path) {
    // expected_time_s under the profile, stretched by the observed
    // overlay (factor < 1 = slower than usual = longer time).
    total += network_->expected_time_s(seg, hour) / overlay_[seg];
  }
  return total;
}

void PtdrRerouteOperator::advance_watermark(std::uint64_t watermark_us,
                                            std::vector<WindowOutput>* out) {
  scratch_.clear();
  inner_.advance_watermark(watermark_us, &scratch_);
  stats_.late_dropped = inner_.stats().late_dropped;
  if (scratch_.empty()) return;

  // Fold the closed windows' mean speeds into the overlay, one trigger
  // per distinct window end (inner outputs arrive end-ascending).
  std::size_t i = 0;
  while (i < scratch_.size()) {
    const std::uint64_t end = scratch_[i].window_end_us;
    const std::uint64_t start = scratch_[i].window_start_us;
    for (; i < scratch_.size() && scratch_[i].window_end_us == end; ++i) {
      const std::size_t seg = static_cast<std::size_t>(scratch_[i].key);
      if (seg >= overlay_.size() || scratch_[i].events == 0) continue;
      const double freeflow = network_->segment(seg).freeflow_kmh;
      double factor = scratch_[i].value / freeflow;
      factor = std::clamp(factor, config_.min_speed_factor,
                          config_.max_speed_factor);
      overlay_[seg] = factor;
    }

    // Re-evaluate every monitored pair under the updated overlay; the
    // hour of day comes from the window end on the stream timeline.
    const int hour =
        static_cast<int>((end / 3'600'000'000ULL) % 24);
    for (std::size_t p = 0; p < pairs_.size(); ++p) {
      double best_time = path_time_s(routes_[p], hour);
      const std::vector<std::size_t>* best = nullptr;
      const auto alternatives = network_->alternative_paths(
          pairs_[p].from, pairs_[p].to, hour, config_.alternatives);
      for (const auto& alt : alternatives) {
        if (alt.empty() || alt == routes_[p]) continue;
        const double t = path_time_s(alt, hour);
        if (t < best_time * (1.0 - config_.reroute_threshold) &&
            (best == nullptr || t < path_time_s(*best, hour))) {
          best_time = t;
          best = &alt;
        }
      }
      if (best != nullptr) {
        routes_[p] = *best;
        ++rerouted_;
      }
      WindowOutput output;
      output.topic = topic();
      output.op = name();
      output.key = p;
      output.window_start_us = start;
      output.window_end_us = end;
      output.events = routes_[p].size();
      output.value = best_time;
      out->push_back(std::move(output));
      ++stats_.windows_closed;
    }
  }
}

void PtdrRerouteOperator::reset() {
  inner_.reset();
  std::fill(overlay_.begin(), overlay_.end(), 1.0);
  rerouted_ = 0;
  stats_ = OperatorStats{};
  init_routes();
}

std::unique_ptr<Operator> make_ptdr_reroute_operator(
    std::string topic, WindowSpec spec,
    std::shared_ptr<const apps::RoadNetwork> network, std::vector<OdPair> pairs,
    PtdrRerouteConfig config, std::string name) {
  return std::make_unique<PtdrRerouteOperator>(std::move(name),
                                               std::move(topic), spec,
                                               std::move(network),
                                               std::move(pairs), config);
}

}  // namespace everest::stream
