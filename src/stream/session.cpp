#include "stream/session.hpp"

namespace everest::stream {

StreamSession::StreamSession(std::uint64_t id, std::string tenant,
                             std::string topic, SessionConfig config,
                             obs::Registry* registry)
    : id_(id),
      tenant_(std::move(tenant)),
      topic_(std::move(topic)),
      config_(config) {
  if (registry != nullptr) {
    dropped_counter_ = registry->counter("stream.session.dropped",
                                         {{"tenant", tenant_}});
  }
}

void StreamSession::push(Delivery delivery) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    if (delivery.output.window_end_us <= acked_) {
      // Replay duplicate: the client already durably consumed this
      // window before the failover.
      ++stats_.suppressed;
      return;
    }
    if (queue_.size() >= config_.queue_capacity) {
      queue_.pop_front();  // drop-oldest: freshest outputs win
      ++stats_.dropped;
      if (dropped_counter_ != nullptr) dropped_counter_->inc();
    }
    queue_.push_back(std::move(delivery));
  }
  cv_.notify_one();
}

std::optional<Delivery> StreamSession::poll(std::chrono::microseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return !queue_.empty() || closed_; });
  if (queue_.empty()) return std::nullopt;
  Delivery delivery = std::move(queue_.front());
  queue_.pop_front();
  ++stats_.delivered;
  return delivery;
}

std::vector<Delivery> StreamSession::drain() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Delivery> out;
  out.reserve(queue_.size());
  while (!queue_.empty()) {
    out.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++stats_.delivered;
  }
  return out;
}

void StreamSession::ack(std::uint64_t watermark_us) {
  std::lock_guard<std::mutex> lock(mu_);
  if (watermark_us > acked_) acked_ = watermark_us;
}

std::uint64_t StreamSession::acked_watermark_us() const {
  std::lock_guard<std::mutex> lock(mu_);
  return acked_;
}

void StreamSession::close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

bool StreamSession::closed() const {
  std::lock_guard<std::mutex> lock(mu_);
  return closed_;
}

std::size_t StreamSession::queued() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size();
}

SessionStats StreamSession::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace everest::stream
