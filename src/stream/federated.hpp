// Federated streaming: topics homed across the serving cluster, with
// subscriptions that SURVIVE a primary crash. One StreamEngine per
// topic lives on the topic's home node; homing reuses the federation's
// shard geometry (ShardMap::shard_of over the topic name, preference
// order from the live shard table), so a topic's home is the node whose
// caches are warm for its keys — the same locality rule keyed requests
// follow.
//
// Failover contract (the E24 crash-replay criterion): when a home node
// fail-stops, handle_failover()
//   1. kills the topic's engine (queued-but-unprocessed events are
//      lost from RAM — the WAL has every admitted one),
//   2. detaches its sessions with their acked watermarks intact,
//   3. builds a fresh engine on the next preferred node over the SAME
//      per-topic WAL dir (fail-stop: disks survive, like the data
//      plane's tiers), re-registering operators from the registered
//      factory in the same order,
//   4. replays the WAL from before the minimum acked watermark (trim:
//      events wholly inside acked windows are skipped), and
//   5. re-attaches the sessions — whose acks suppress re-emitted
//      windows, so each subscriber's delivered sequence is
//      byte-identical to an uninterrupted run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "cluster/federation.hpp"
#include "common/status.hpp"
#include "obs/registry.hpp"
#include "storage/env.hpp"
#include "stream/engine.hpp"

namespace everest::stream {

struct FabricConfig {
  /// Homes available for topics (must match the federation's node count
  /// when one is attached).
  std::size_t num_nodes = 4;
  /// Root directory for per-topic WALs ("<root>/<topic>"). Empty =
  /// in-memory only: failover loses window state instead of replaying.
  std::string wal_root;
  /// Engine template (its ingest.wal_dir is overridden per topic).
  EngineConfig engine;
  /// Topic-name hashing geometry (standalone mode; with a federation
  /// attached the federation's own table decides preference order).
  cluster::ShardMapConfig shard_map;
};

struct FabricStats {
  std::uint64_t failovers = 0;        ///< topics re-homed
  std::uint64_t replayed_events = 0;  ///< WAL events folded on failover
  std::uint64_t sessions_moved = 0;   ///< subscriptions re-attached
};

/// Topic-sharded streaming over (optionally) a serving federation.
/// Single-writer facade: ingest() is thread-safe (it lands in engine
/// admission queues); topology mutations (crash/failover/stop) are
/// driver-thread-only, like cluster::Federation's fault hooks.
class StreamFabric {
 public:
  using OperatorFactory = std::function<std::unique_ptr<Operator>()>;

  /// `federation` (borrowed, may be null) supplies liveness and shard
  /// preference; null = standalone mode with fabric-local crash marks.
  explicit StreamFabric(FabricConfig config,
                        cluster::Federation* federation = nullptr,
                        obs::Registry* registry = nullptr,
                        storage::Env* env = nullptr);
  ~StreamFabric();

  StreamFabric(const StreamFabric&) = delete;
  StreamFabric& operator=(const StreamFabric&) = delete;

  /// Registers a topic and the factory that builds its operator (called
  /// once per (re-)homing). Before start(). ALREADY_EXISTS on re-use.
  Status register_topic(const std::string& topic, OperatorFactory factory);

  void start();
  void stop();

  /// Current home node of `topic`; NOT_FOUND for unknown topics.
  [[nodiscard]] Result<std::size_t> home_of(const std::string& topic) const;

  /// Routes the event to its topic's home engine. UNAVAILABLE while the
  /// home is crashed and failover has not run yet.
  Status ingest(Event event);

  /// Subscribes against the topic's current home engine. The session
  /// survives that home's crash (handle_failover re-attaches it).
  Result<std::shared_ptr<StreamSession>> subscribe(const std::string& tenant,
                                                   const std::string& topic,
                                                   SessionConfig config = {});

  /// Standalone-mode fail-stop of `node` (with a federation attached,
  /// call Federation::crash and then handle_failover directly).
  void crash(std::size_t node);
  /// Clears the standalone crash mark (node may home topics again).
  void restore(std::size_t node);
  [[nodiscard]] bool node_crashed(std::size_t node) const;

  /// Re-homes every topic whose home is dead: kill, detach, rebuild on
  /// the next live preference, WAL-replay past the acked horizon,
  /// re-attach. Safe to call when nothing is dead (no-op). Returns the
  /// topics moved.
  std::vector<std::string> handle_failover();

  /// Blocks until every live engine folded its admitted events.
  void flush();

  [[nodiscard]] const FabricStats& stats() const { return stats_; }
  [[nodiscard]] StreamEngine* engine(const std::string& topic);

 private:
  struct Topic {
    OperatorFactory factory;
    std::size_t home = 0;
    std::unique_ptr<StreamEngine> engine;
  };

  /// Preference-ordered candidate homes for `topic`, live-first.
  [[nodiscard]] std::vector<std::size_t> candidates(
      const std::string& topic) const;
  [[nodiscard]] std::unique_ptr<StreamEngine> build_engine(
      const std::string& topic, const OperatorFactory& factory) const;

  FabricConfig config_;
  cluster::Federation* federation_;
  obs::Registry* registry_;
  storage::Env* env_;

  std::map<std::string, Topic> topics_;
  std::set<std::size_t> crashed_;  ///< standalone-mode fail marks
  bool started_ = false;
  FabricStats stats_;
};

}  // namespace everest::stream
