#include "stream/federated.hpp"

#include <algorithm>

namespace everest::stream {

StreamFabric::StreamFabric(FabricConfig config, cluster::Federation* federation,
                           obs::Registry* registry, storage::Env* env)
    : config_(std::move(config)),
      federation_(federation),
      registry_(registry),
      env_(env) {
  if (federation_ != nullptr) config_.num_nodes = federation_->num_nodes();
}

StreamFabric::~StreamFabric() { stop(); }

std::vector<std::size_t> StreamFabric::candidates(
    const std::string& topic) const {
  const std::uint32_t shard = cluster::ShardMap::shard_of(
      topic, config_.shard_map.num_shards, config_.shard_map.salt);
  std::vector<std::size_t> order;
  if (federation_ != nullptr) {
    const auto table = federation_->shard_table();
    if (shard < table->replicas.size()) order = table->replicas[shard];
  }
  // Standalone (or table gap): rotate the node ring from the shard.
  for (std::size_t i = 0; i < config_.num_nodes; ++i) {
    const std::size_t node = (shard + i) % config_.num_nodes;
    if (std::find(order.begin(), order.end(), node) == order.end()) {
      order.push_back(node);
    }
  }
  std::vector<std::size_t> live;
  for (const std::size_t node : order) {
    if (!node_crashed(node)) live.push_back(node);
  }
  return live;
}

bool StreamFabric::node_crashed(std::size_t node) const {
  if (federation_ != nullptr && federation_->crashed(node)) return true;
  return crashed_.count(node) != 0;
}

std::unique_ptr<StreamEngine> StreamFabric::build_engine(
    const std::string& topic, const OperatorFactory& factory) const {
  EngineConfig engine_config = config_.engine;
  engine_config.ingest.wal_dir =
      config_.wal_root.empty() ? "" : config_.wal_root + "/" + topic;
  auto engine =
      std::make_unique<StreamEngine>(engine_config, registry_, env_);
  engine->add_operator(factory());
  return engine;
}

Status StreamFabric::register_topic(const std::string& topic,
                                    OperatorFactory factory) {
  if (started_) {
    return FailedPrecondition("register topics before start()");
  }
  if (topics_.count(topic) != 0) {
    return AlreadyExists("topic '" + topic + "' already registered");
  }
  const std::vector<std::size_t> order = candidates(topic);
  if (order.empty()) return Unavailable("no live node to home '" + topic + "'");
  Topic entry;
  entry.home = order.front();
  entry.engine = build_engine(topic, factory);
  entry.factory = std::move(factory);
  topics_[topic] = std::move(entry);
  return OkStatus();
}

void StreamFabric::start() {
  for (auto& [name, topic] : topics_) {
    if (!node_crashed(topic.home)) topic.engine->start();
  }
  started_ = true;
}

void StreamFabric::stop() {
  for (auto& [name, topic] : topics_) topic.engine->stop();
  started_ = false;
}

Result<std::size_t> StreamFabric::home_of(const std::string& topic) const {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status(NotFound("unknown topic '" + topic + "'"));
  }
  return it->second.home;
}

Status StreamFabric::ingest(Event event) {
  auto it = topics_.find(event.topic);
  if (it == topics_.end()) {
    return NotFound("unknown topic '" + event.topic + "'");
  }
  if (node_crashed(it->second.home)) {
    return Unavailable("home node " + std::to_string(it->second.home) +
                       " of '" + event.topic +
                       "' is down; failover pending");
  }
  return it->second.engine->ingest(std::move(event));
}

Result<std::shared_ptr<StreamSession>> StreamFabric::subscribe(
    const std::string& tenant, const std::string& topic,
    SessionConfig config) {
  auto it = topics_.find(topic);
  if (it == topics_.end()) {
    return Status(NotFound("unknown topic '" + topic + "'"));
  }
  return it->second.engine->subscribe(tenant, topic, config);
}

void StreamFabric::crash(std::size_t node) { crashed_.insert(node); }

void StreamFabric::restore(std::size_t node) { crashed_.erase(node); }

std::vector<std::string> StreamFabric::handle_failover() {
  std::vector<std::string> moved;
  for (auto& [name, topic] : topics_) {
    if (!node_crashed(topic.home)) continue;
    const std::vector<std::size_t> order = candidates(name);
    if (order.empty()) continue;  // whole cluster down; nothing to do

    // 1. fail-stop the dead home's engine; 2. salvage its sessions.
    topic.engine->kill();
    std::vector<std::shared_ptr<StreamSession>> sessions =
        topic.engine->detach_all();

    // Replay horizon: nothing below the minimum acked watermark needs
    // re-delivery (sessions suppress those windows anyway; the trim
    // just skips events that could only rebuild acked windows).
    std::uint64_t horizon = UINT64_MAX;
    for (const auto& session : sessions) {
      horizon = std::min(horizon, session->acked_watermark_us());
    }
    if (sessions.empty() || horizon == UINT64_MAX) horizon = 0;

    // 3-5. fresh engine on the new home over the same WAL, re-attach,
    // replay, resume.
    topic.home = order.front();
    topic.engine = build_engine(name, topic.factory);
    for (auto& session : sessions) {
      topic.engine->attach(std::move(session));
      ++stats_.sessions_moved;
    }
    auto replayed = topic.engine->replay_wal(horizon);
    if (replayed.ok()) stats_.replayed_events += replayed.value();
    if (started_) topic.engine->start();
    ++stats_.failovers;
    moved.push_back(name);
  }
  return moved;
}

void StreamFabric::flush() {
  for (auto& [name, topic] : topics_) {
    if (!node_crashed(topic.home)) topic.engine->flush();
  }
}

StreamEngine* StreamFabric::engine(const std::string& topic) {
  auto it = topics_.find(topic);
  return it == topics_.end() ? nullptr : it->second.engine.get();
}

}  // namespace everest::stream
