// Long-lived subscriptions alongside serve::Server::submit. A
// StreamSession is the server-side endpoint of one subscriber: window
// outputs are pushed into a bounded per-session queue the client drains
// at its own pace (poll or callback). When the client falls behind, the
// oldest undelivered outputs are dropped — freshest-first delivery, the
// right policy for monitoring dashboards — and every drop is counted
// (`stream.session.dropped`), never silent.
//
// Sessions also carry the failover-replay dedup: the client acks the
// watermark it has durably consumed, and the session suppresses any
// re-delivered output with window_end <= acked. After a crash the engine
// replays the WAL from before the acked horizon, re-emits some already
// -seen windows, and the session filters them — so the client-visible
// sequence is byte-identical to an uninterrupted run.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "obs/registry.hpp"
#include "obs/trace.hpp"
#include "serve/request.hpp"
#include "stream/event.hpp"

namespace everest::stream {

/// One window output delivered to a subscriber.
struct Delivery {
  WindowOutput output;
  /// Topic frontier (µs) when the output was queued — staleness at the
  /// consumer is frontier − window_start.
  std::uint64_t frontier_us = 0;
  /// Propagated trace identity: valid when the engine traced this
  /// delivery (parented under its "deliver" span), so a consumer's
  /// downstream spans stitch into the same chain.
  obs::TraceContext trace;
};

struct SessionConfig {
  /// Bounded per-session output queue; beyond it the oldest undelivered
  /// deliveries are dropped (and counted).
  std::size_t queue_capacity = 1024;
  serve::SlaClass sla = serve::SlaClass::kThroughput;
};

struct SessionStats {
  std::uint64_t delivered = 0;  ///< handed to the client via poll()
  std::uint64_t dropped = 0;    ///< overwritten before the client drained
  std::uint64_t suppressed = 0; ///< replay duplicates filtered by ack
};

/// Server-side endpoint of one subscription. Thread-safe: the engine
/// pump pushes, the client thread polls/acks.
class StreamSession {
 public:
  StreamSession(std::uint64_t id, std::string tenant, std::string topic,
                SessionConfig config, obs::Registry* registry);

  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const std::string& tenant() const { return tenant_; }
  [[nodiscard]] const std::string& topic() const { return topic_; }
  [[nodiscard]] serve::SlaClass sla() const { return config_.sla; }

  /// Engine-side: queue one output. Drops the oldest undelivered entry
  /// when full; suppresses replay duplicates (window_end <= acked).
  void push(Delivery delivery);

  /// Client-side: next delivery, blocking up to `timeout`. nullopt on
  /// timeout or after close() drained the queue.
  std::optional<Delivery> poll(std::chrono::microseconds timeout);

  /// Client-side: drain everything currently queued without blocking.
  std::vector<Delivery> drain();

  /// Client-side: mark everything with window_end <= `watermark_us` as
  /// durably consumed. Monotonic; a lower ack is ignored.
  void ack(std::uint64_t watermark_us);
  [[nodiscard]] std::uint64_t acked_watermark_us() const;

  /// Engine-side on unsubscribe/shutdown: wakes blocked pollers; queued
  /// deliveries stay drainable.
  void close();
  [[nodiscard]] bool closed() const;

  [[nodiscard]] std::size_t queued() const;
  [[nodiscard]] SessionStats stats() const;

 private:
  const std::uint64_t id_;
  const std::string tenant_;
  const std::string topic_;
  const SessionConfig config_;
  obs::Counter* dropped_counter_ = nullptr;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Delivery> queue_;
  std::uint64_t acked_ = 0;
  bool closed_ = false;
  SessionStats stats_;
};

}  // namespace everest::stream
