#include "stream/event.hpp"

#include <cstdio>

#include "storage/format.hpp"

namespace everest::stream {

void WindowOutput::encode(std::string& out) const {
  storage::put_u32(out, static_cast<std::uint32_t>(topic.size()));
  out.append(topic);
  storage::put_u32(out, static_cast<std::uint32_t>(op.size()));
  out.append(op);
  storage::put_u64(out, key);
  storage::put_u64(out, window_start_us);
  storage::put_u64(out, window_end_us);
  storage::put_u64(out, events);
  storage::put_f64(out, value);
}

std::string WindowOutput::to_string() const {
  char buf[192];
  std::snprintf(buf, sizeof(buf),
                "%s/%s key=%llu [%llu,%llu) events=%llu value=%.6g",
                topic.c_str(), op.c_str(),
                static_cast<unsigned long long>(key),
                static_cast<unsigned long long>(window_start_us),
                static_cast<unsigned long long>(window_end_us),
                static_cast<unsigned long long>(events), value);
  return buf;
}

bool operator==(const WindowOutput& a, const WindowOutput& b) {
  return a.topic == b.topic && a.op == b.op && a.key == b.key &&
         a.window_start_us == b.window_start_us &&
         a.window_end_us == b.window_end_us && a.events == b.events &&
         a.value == b.value;
}

std::uint64_t fingerprint(const std::vector<WindowOutput>& outputs) {
  std::string bytes;
  bytes.reserve(outputs.size() * 64);
  for (const WindowOutput& output : outputs) output.encode(bytes);
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
  for (const char c : bytes) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace everest::stream
