#include "stream/window.hpp"

namespace everest::stream {

std::string_view to_string(WindowKind kind) {
  switch (kind) {
    case WindowKind::kTumbling: return "tumbling";
    case WindowKind::kSliding: return "sliding";
  }
  return "?";
}

void WindowSpec::windows_of(std::uint64_t t,
                            std::vector<std::uint64_t>* starts) const {
  starts->clear();
  const std::uint64_t slide = effective_slide_us();
  if (slide == 0 || size_us == 0) return;
  // Latest window starting at or before t, then every earlier start
  // whose window still covers t (start + size > t).
  std::uint64_t start = (t / slide) * slide;
  for (;;) {
    starts->push_back(start);
    if (start < slide) break;
    const std::uint64_t prev = start - slide;
    if (prev + size_us <= t) break;
    start = prev;
  }
}

WindowedOperator::WindowedOperator(std::string name, std::string topic,
                                   WindowSpec spec, AccumulatorFactory factory)
    : Operator(std::move(name), std::move(topic)),
      spec_(spec),
      factory_(std::move(factory)) {}

bool WindowedOperator::offer(const Event& event) {
  spec_.windows_of(event.event_time_us, &scratch_starts_);
  bool folded = false;
  for (const std::uint64_t start : scratch_starts_) {
    const std::uint64_t end = start + spec_.size_us;
    if (end <= watermark_) continue;  // this window already closed
    auto [it, inserted] = cells_.try_emplace(CellKey{end, event.key});
    Cell& cell = it->second;
    if (inserted) {
      cell.start_us = start;
      cell.acc = factory_(event.key);
    }
    cell.acc->add(event);
    ++cell.events;
    folded = true;
  }
  if (folded) {
    ++stats_.events_in;
  } else {
    ++stats_.late_dropped;
  }
  return folded;
}

void WindowedOperator::advance_watermark(std::uint64_t watermark_us,
                                         std::vector<WindowOutput>* out) {
  if (watermark_us <= watermark_) return;  // watermarks only move forward
  watermark_ = watermark_us;
  auto it = cells_.begin();
  while (it != cells_.end() && it->first.end_us <= watermark_) {
    WindowOutput output;
    output.topic = topic();
    output.op = name();
    output.key = it->first.key;
    output.window_start_us = it->second.start_us;
    output.window_end_us = it->first.end_us;
    output.events = it->second.events;
    output.value =
        it->second.acc->finish(it->second.start_us, it->first.end_us);
    out->push_back(std::move(output));
    ++stats_.windows_closed;
    it = cells_.erase(it);
  }
}

void WindowedOperator::reset() {
  cells_.clear();
  watermark_ = 0;
  stats_ = OperatorStats{};
}

}  // namespace everest::stream
