#include "stream/engine.hpp"

#include <algorithm>

namespace everest::stream {

StreamEngine::StreamEngine(EngineConfig config, obs::Registry* registry,
                           storage::Env* env)
    : config_(config),
      registry_(registry),
      env_(env),
      ingestor_(config_.ingest, registry, env) {
  if (registry_ != nullptr) {
    ctr_events_ = registry_->counter("stream.events_processed");
    ctr_outputs_ = registry_->counter("stream.outputs_emitted");
    // kMax: the merged federation value is the worst watermark lag.
    gauge_watermark_lag_ = registry_->gauge("stream.watermark_lag_us",
                                            obs::GaugeKind::kMax);
    hist_staleness_ = registry_->histogram("stream.staleness_us");
  }
}

StreamEngine::~StreamEngine() { stop(); }

Status StreamEngine::add_operator(std::unique_ptr<Operator> op) {
  if (running_.load()) {
    return FailedPrecondition("cannot register operators while running");
  }
  const std::string topic = op->topic();
  ingestor_.topic_id(topic);  // fix the WAL id in registration order
  if (std::find(topics_.begin(), topics_.end(), topic) == topics_.end()) {
    topics_.push_back(topic);
  }
  by_topic_[topic].push_back(operators_.size());
  operators_.push_back(std::move(op));
  return OkStatus();
}

Status StreamEngine::ingest(Event event) { return ingestor_.offer(std::move(event)); }

Result<std::shared_ptr<StreamSession>> StreamEngine::subscribe(
    const std::string& tenant, const std::string& topic,
    SessionConfig config) {
  if (by_topic_.find(topic) == by_topic_.end()) {
    return Status(NotFound("no operator consumes topic '" + topic + "'"));
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= config_.max_sessions) {
    return Status(ResourceExhausted(
        "session capacity exhausted (" + std::to_string(config_.max_sessions) +
        " live), subscribe rejected"));
  }
  auto session = std::make_shared<StreamSession>(next_session_id_++, tenant,
                                                 topic, config, registry_);
  sessions_[session->id()] = session;
  return session;
}

Status StreamEngine::unsubscribe(std::uint64_t session_id) {
  std::shared_ptr<StreamSession> session;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    auto it = sessions_.find(session_id);
    if (it == sessions_.end()) {
      return NotFound("unknown session " + std::to_string(session_id));
    }
    session = it->second;
    sessions_.erase(it);
  }
  session->close();
  return OkStatus();
}

Status StreamEngine::attach(std::shared_ptr<StreamSession> session) {
  if (by_topic_.find(session->topic()) == by_topic_.end()) {
    return NotFound("no operator consumes topic '" + session->topic() + "'");
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  if (sessions_.size() >= config_.max_sessions) {
    return ResourceExhausted("session capacity exhausted, attach rejected");
  }
  const std::uint64_t id = session->id();
  sessions_[id] = std::move(session);
  next_session_id_ = std::max(next_session_id_, id + 1);
  return OkStatus();
}

Result<std::shared_ptr<StreamSession>> StreamEngine::detach(
    std::uint64_t session_id) {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  auto it = sessions_.find(session_id);
  if (it == sessions_.end()) {
    return Status(NotFound("unknown session " + std::to_string(session_id)));
  }
  std::shared_ptr<StreamSession> session = std::move(it->second);
  sessions_.erase(it);
  return session;
}

std::vector<std::shared_ptr<StreamSession>> StreamEngine::detach_all() {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  std::vector<std::shared_ptr<StreamSession>> out;
  out.reserve(sessions_.size());
  for (auto& [id, session] : sessions_) out.push_back(std::move(session));
  sessions_.clear();
  return out;
}

void StreamEngine::start() {
  if (running_.exchange(true)) return;
  stop_requested_.store(false);
  pump_thread_ = std::thread([this] { pump(); });
}

void StreamEngine::stop() {
  if (running_.load()) {
    flush();
    stop_requested_.store(true);
    if (pump_thread_.joinable()) pump_thread_.join();
    running_.store(false);
  }
  std::lock_guard<std::mutex> lock(sessions_mu_);
  for (auto& [id, session] : sessions_) session->close();
}

void StreamEngine::kill() {
  if (!running_.load()) return;
  stop_requested_.store(true);
  if (pump_thread_.joinable()) pump_thread_.join();
  running_.store(false);
}

void StreamEngine::flush() {
  if (!running_.load()) return;
  // Wait until the pump consumed every event admitted so far. The
  // acquire load on consumed_ pairs with the pump's post-process
  // release increment, so operator/frontier state read afterwards is
  // the folded state.
  const std::uint64_t target = ingestor_.stats().admitted;
  while (consumed_.load(std::memory_order_acquire) < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  ingestor_.sync_wal();
}

void StreamEngine::pump() {
  while (!stop_requested_.load()) {
    std::optional<Event> event = ingestor_.take(config_.idle_poll);
    if (!event.has_value()) continue;
    process(*event);
    consumed_.fetch_add(1, std::memory_order_release);
  }
}

void StreamEngine::process(const Event& event) {
  auto it = by_topic_.find(event.topic);
  if (it == by_topic_.end()) return;  // replayed topic nobody consumes now

  std::uint64_t frontier;
  {
    std::lock_guard<std::mutex> lock(frontier_mu_);
    std::uint64_t& f = frontiers_[event.topic];
    f = std::max(f, event.event_time_us);
    frontier = f;
  }

  std::vector<WindowOutput> outputs;
  std::uint64_t min_watermark = frontier;
  for (const std::size_t idx : it->second) {
    Operator& op = *operators_[idx];
    if (!event.punctuation) op.offer(event);
    const std::uint64_t lateness = op.allowed_lateness_us();
    const std::uint64_t watermark =
        frontier > lateness ? frontier - lateness : 0;
    op.advance_watermark(watermark, &outputs);
    min_watermark = std::min(min_watermark, op.watermark_us());
  }

  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (!event.punctuation) ++stats_.events_processed;
    stats_.outputs_emitted += outputs.size();
  }
  if (ctr_events_ != nullptr && !event.punctuation) ctr_events_->inc();
  if (ctr_outputs_ != nullptr && !outputs.empty()) {
    ctr_outputs_->inc(outputs.size());
  }
  if (gauge_watermark_lag_ != nullptr) {
    gauge_watermark_lag_->set(static_cast<double>(frontier - min_watermark));
  }
  if (!outputs.empty()) deliver(event.topic, frontier, outputs);
}

void StreamEngine::deliver(const std::string& topic, std::uint64_t frontier,
                           std::vector<WindowOutput>& outputs) {
  std::vector<std::shared_ptr<StreamSession>> targets;
  {
    std::lock_guard<std::mutex> lock(sessions_mu_);
    for (auto& [id, session] : sessions_) {
      if (session->topic() == topic) targets.push_back(session);
    }
  }
  if (targets.empty()) return;
  obs::Tracer* tracer = config_.tracer;
  const bool tracing = tracer != nullptr && tracer->enabled();
  obs::TraceContext ctx;
  double t0 = 0.0;
  if (tracing) {
    // One trace per fan-out: the "deliver" span roots it and each
    // Delivery carries a context parented under it, so consumer-side
    // spans stitch into this chain.
    ctx = obs::TraceContext{tracer->next_id(), tracer->next_id()};
    t0 = tracer->wall_now_us();
  }
  std::uint64_t delivered = 0;
  for (WindowOutput& output : outputs) {
    if (hist_staleness_ != nullptr && frontier > output.window_start_us) {
      // Staleness of the analytic at delivery: age of the oldest data
      // folded into it, on the stream's own timeline.
      hist_staleness_->record(
          static_cast<double>(frontier - output.window_start_us));
    }
    for (const auto& session : targets) {
      session->push(Delivery{output, frontier, ctx});
      ++delivered;
    }
  }
  if (tracing) {
    tracer->span(obs::TimeDomain::kWall, ctx.trace_id, ctx.parent_span, 0, t0,
                 tracer->wall_now_us(), obs::kAutoTrack, "deliver", "stream",
                 {{"topic", topic},
                  {"outputs", std::to_string(outputs.size())},
                  {"sessions", std::to_string(targets.size())}});
  }
  std::lock_guard<std::mutex> lock(stats_mu_);
  stats_.deliveries += delivered;
}

Result<std::uint64_t> StreamEngine::replay_wal(std::uint64_t acked_horizon_us) {
  if (running_.load()) {
    return Status(FailedPrecondition("stop the engine before replay"));
  }
  if (config_.ingest.wal_dir.empty()) {
    return Status(FailedPrecondition("engine has no WAL"));
  }
  // Per-topic max window span: an event older than horizon − span can
  // only fall into windows that closed at or before the horizon.
  std::map<std::string, std::uint64_t> span;
  for (const auto& [topic, indices] : by_topic_) {
    std::uint64_t s = 0;
    for (const std::size_t idx : indices) {
      s = std::max(s, operators_[idx]->max_window_span_us());
    }
    span[topic] = s;
  }
  std::uint64_t folded = 0;
  Ingestor::replay(
      config_.ingest.wal_dir, topics(),
      [&](const Event& event) {
        if (acked_horizon_us > 0 && !event.punctuation) {
          auto it = span.find(event.topic);
          const std::uint64_t s = it == span.end() ? 0 : it->second;
          if (event.event_time_us + s <= acked_horizon_us) return;
        }
        process(event);
        ++folded;
      },
      env_);
  return folded;
}

void StreamEngine::reset_topic(const std::string& topic) {
  auto it = by_topic_.find(topic);
  if (it != by_topic_.end()) {
    for (const std::size_t idx : it->second) operators_[idx]->reset();
  }
  std::lock_guard<std::mutex> lock(frontier_mu_);
  frontiers_[topic] = 0;
}

EngineStats StreamEngine::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

std::vector<std::string> StreamEngine::topics() const { return topics_; }

std::uint64_t StreamEngine::frontier_us(const std::string& topic) const {
  std::lock_guard<std::mutex> lock(frontier_mu_);
  auto it = frontiers_.find(topic);
  return it == frontiers_.end() ? 0 : it->second;
}

std::uint64_t StreamEngine::watermark_us(const std::string& topic) const {
  auto it = by_topic_.find(topic);
  if (it == by_topic_.end() || it->second.empty()) return 0;
  std::uint64_t wm = UINT64_MAX;
  for (const std::size_t idx : it->second) {
    wm = std::min(wm, operators_[idx]->watermark_us());
  }
  return wm;
}

std::size_t StreamEngine::num_sessions() const {
  std::lock_guard<std::mutex> lock(sessions_mu_);
  return sessions_.size();
}

}  // namespace everest::stream
