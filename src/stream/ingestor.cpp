#include "stream/ingestor.hpp"

namespace everest::stream {

namespace {

// WAL field mapping (CatalogLog reused as an event journal):
//   type    kPlace = reading, kSeal = punctuation
//   object  event key        shard  topic id
//   version event time (µs)  node   event seed
//   bytes   event value
storage::LogRecord encode_event(const Event& event, std::uint32_t topic_id) {
  storage::LogRecord record;
  record.type = event.punctuation ? storage::LogRecordType::kSeal
                                  : storage::LogRecordType::kPlace;
  record.object = event.key;
  record.shard = topic_id;
  record.version = event.event_time_us;
  record.node = event.seed;
  record.bytes = event.value;
  return record;
}

}  // namespace

Ingestor::Ingestor(IngestorConfig config, obs::Registry* registry,
                   storage::Env* env)
    : config_(std::move(config)), queue_(config_.queue_capacity) {
  if (!config_.wal_dir.empty()) {
    wal_ = std::make_unique<storage::CatalogLog>(config_.wal_dir, config_.wal,
                                                 registry, env);
  }
  if (registry != nullptr) {
    ctr_admitted_ = registry->counter("stream.ingest.admitted");
    ctr_rejected_ = registry->counter("stream.ingest.rejected");
  }
}

std::uint32_t Ingestor::topic_id(const std::string& topic) {
  std::lock_guard<std::mutex> lock(mu_);
  for (std::size_t i = 0; i < topics_.size(); ++i) {
    if (topics_[i] == topic) return static_cast<std::uint32_t>(i);
  }
  topics_.push_back(topic);
  return static_cast<std::uint32_t>(topics_.size() - 1);
}

Status Ingestor::offer(Event event) {
  const int lane = event.sla == serve::SlaClass::kLatencyCritical ? 0 : 1;
  const std::uint32_t tid = topic_id(event.topic);
  const bool punctuation = event.punctuation;
  // Admit-then-journal: a rejected event is never logged, so replay
  // reproduces exactly the admitted sequence.
  Status admitted;
  {
    // Queue order must equal WAL order (fold order == replay order is
    // the determinism contract), so admission and journaling are one
    // critical section across producers.
    std::lock_guard<std::mutex> lock(admit_mu_);
    admitted = queue_.push(event, lane, "event on '" + event.topic + "'");
    if (admitted.ok() && wal_ != nullptr) {
      wal_->append(encode_event(event, tid));
    }
  }
  if (!admitted.ok()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.rejected;
    }
    if (ctr_rejected_ != nullptr) ctr_rejected_->inc();
    return admitted;
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.admitted;
    if (punctuation) ++stats_.punctuations;
  }
  if (ctr_admitted_ != nullptr) ctr_admitted_->inc();
  return OkStatus();
}

std::optional<Event> Ingestor::take(std::chrono::microseconds timeout) {
  return queue_.pop(timeout);
}

void Ingestor::close() {
  queue_.close();
  if (wal_ != nullptr) wal_->sync();
}

bool Ingestor::closed() const { return queue_.closed(); }

std::size_t Ingestor::pending() const { return queue_.size(); }

IngestStats Ingestor::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

Status Ingestor::sync_wal() {
  if (wal_ == nullptr) return OkStatus();
  return wal_->sync();
}

std::uint64_t Ingestor::replay(const std::string& dir,
                               const std::vector<std::string>& topics,
                               const std::function<void(const Event&)>& fn,
                               storage::Env* env) {
  std::uint64_t delivered = 0;
  storage::CatalogLog::replay_records(
      dir,
      [&](const storage::LogRecord& record) {
        if (record.type != storage::LogRecordType::kPlace &&
            record.type != storage::LogRecordType::kSeal) {
          return;
        }
        if (record.shard >= topics.size()) return;
        Event event;
        event.topic = topics[record.shard];
        event.key = record.object;
        event.event_time_us = record.version;
        event.seed = record.node;
        event.value = record.bytes;
        event.punctuation = record.type == storage::LogRecordType::kSeal;
        fn(event);
        ++delivered;
      },
      env);
  return delivered;
}

}  // namespace everest::stream
