// Continuous event admission through the same two-lane bounded queue
// that fronts request serving (serve::TwoLaneQueue): latency-critical
// events jump the lane, a full queue rejects with RESOURCE_EXHAUSTED
// instead of buffering unboundedly — backpressure is the producer's
// problem, by design.
//
// Admitted events are also appended to a write-ahead log
// (storage::CatalogLog reused as an event journal) BEFORE becoming
// visible to the consumer, so a crashed stream node can be replayed in
// exact admission order: WAL order == fold order == the determinism
// contract of the window operators. Punctuation travels through the
// same log (kSeal frames), so replay reproduces watermark advancement
// too.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "obs/registry.hpp"
#include "serve/request_queue.hpp"
#include "storage/env.hpp"
#include "storage/log.hpp"
#include "stream/event.hpp"

namespace everest::stream {

struct IngestorConfig {
  /// Bounded admission queue shared by both lanes.
  std::size_t queue_capacity = 4096;
  /// WAL directory; empty = in-memory only (no crash replay).
  std::string wal_dir;
  storage::LogConfig wal;
};

struct IngestStats {
  std::uint64_t admitted = 0;
  std::uint64_t rejected = 0;
  std::uint64_t punctuations = 0;
};

/// Event front door of one stream node. Thread-safe producers; the
/// engine pump is the single consumer.
class Ingestor {
 public:
  explicit Ingestor(IngestorConfig config, obs::Registry* registry = nullptr,
                    storage::Env* env = nullptr);

  /// Maps a topic to the compact id used in WAL frames. Ids are assigned
  /// in first-seen order; replay needs the same topic list in the same
  /// order (StreamEngine registers operators deterministically).
  std::uint32_t topic_id(const std::string& topic);

  /// Admission: WAL-append then queue, lane by `event.sla`. Rejects with
  /// RESOURCE_EXHAUSTED when the queue is full (nothing is logged for a
  /// rejected event), FAILED_PRECONDITION after close().
  Status offer(Event event);

  /// Consumer side: oldest admitted event, priority lane first; blocks
  /// up to `timeout`.
  std::optional<Event> take(std::chrono::microseconds timeout);

  void close();
  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t pending() const;
  [[nodiscard]] IngestStats stats() const;
  [[nodiscard]] bool wal_enabled() const { return wal_ != nullptr; }
  /// Forces the WAL's group commit (tests / graceful shutdown).
  Status sync_wal();

  /// Streams every event in `dir`'s WAL in admission order. `topics`
  /// maps WAL topic ids back to names (index = id; events whose id is
  /// out of range are dropped). Returns events delivered.
  static std::uint64_t replay(
      const std::string& dir, const std::vector<std::string>& topics,
      const std::function<void(const Event&)>& fn,
      storage::Env* env = nullptr);

 private:
  IngestorConfig config_;
  serve::TwoLaneQueue<Event> queue_;
  std::unique_ptr<storage::CatalogLog> wal_;

  /// Serializes push + WAL append so queue order == WAL order.
  std::mutex admit_mu_;
  mutable std::mutex mu_;
  std::vector<std::string> topics_;  ///< index = topic id
  IngestStats stats_;

  obs::Counter* ctr_admitted_ = nullptr;
  obs::Counter* ctr_rejected_ = nullptr;
};

}  // namespace everest::stream
