// Incremental analytics for the paper's use cases, as streaming
// operators (§VI served continuously instead of one-shot):
//
//   * air quality (§VI-B) — sliding-window plume exceedance: events are
//     receptor concentration readings (µg/m³); each closed window emits
//     the fraction of readings above the regulatory limit per receptor —
//     the same exceedance probability AirQualityForecast computes in
//     batch, maintained incrementally;
//   * traffic (§VI-C) — online PTDR re-routing: events are per-segment
//     speed observations (km/h) from floating-car data; each closed
//     window folds mean observed speed per segment into a persistent
//     speed overlay on the shared road network, re-evaluates every
//     monitored origin/destination pair under the overlay, and switches
//     to an alternative route when it beats the current one by a
//     threshold. One output per pair per trigger: the chosen route's
//     expected travel seconds.
//
// Plus generic accumulators (count/mean) for tests and benches.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "apps/traffic.hpp"
#include "stream/window.hpp"

namespace everest::stream {

/// Σvalue / count over the window (0 when empty).
[[nodiscard]] AccumulatorFactory mean_accumulator();
/// Number of readings in the window.
[[nodiscard]] AccumulatorFactory count_accumulator();
/// Fraction of readings with value > limit (the §VI-B exceedance
/// probability at one receptor).
[[nodiscard]] AccumulatorFactory exceedance_accumulator(double limit);

/// Sliding-window plume exceedance per receptor. Events: key = receptor
/// index, value = ground-level concentration (µg/m³).
std::unique_ptr<Operator> make_plume_exceedance_operator(
    std::string topic, WindowSpec spec, double limit_ugm3,
    std::string name = "plume_exceedance");

/// One monitored origin/destination pair for online re-routing.
struct OdPair {
  std::size_t from = 0;
  std::size_t to = 0;
};

struct PtdrRerouteConfig {
  /// Re-route when an alternative beats the current route's expected
  /// time by more than this fraction (hysteresis against flapping).
  double reroute_threshold = 0.05;
  /// Alternatives evaluated per trigger (iterative edge-penalization).
  int alternatives = 3;
  /// Hour of day the initial routes are computed for.
  int initial_hour = 8;
  /// Observed-speed overlay clamp (fraction of free-flow).
  double min_speed_factor = 0.05;
  double max_speed_factor = 2.0;
};

/// Online PTDR re-routing on speed updates. Events: key = road-segment
/// index, value = observed speed (km/h). Deterministic: expected times
/// under the speed overlay, no Monte Carlo on the hot path.
class PtdrRerouteOperator : public Operator {
 public:
  PtdrRerouteOperator(std::string name, std::string topic, WindowSpec spec,
                      std::shared_ptr<const apps::RoadNetwork> network,
                      std::vector<OdPair> pairs, PtdrRerouteConfig config);

  bool offer(const Event& event) override;
  void advance_watermark(std::uint64_t watermark_us,
                         std::vector<WindowOutput>* out) override;
  [[nodiscard]] std::uint64_t watermark_us() const override {
    return inner_.watermark_us();
  }
  [[nodiscard]] std::uint64_t allowed_lateness_us() const override {
    return inner_.allowed_lateness_us();
  }
  [[nodiscard]] std::uint64_t max_window_span_us() const override {
    return inner_.max_window_span_us();
  }
  void reset() override;
  [[nodiscard]] const OperatorStats& stats() const override { return stats_; }

  /// Route switches since construction/reset.
  [[nodiscard]] std::uint64_t rerouted() const { return rerouted_; }
  /// Current route of one monitored pair (segment indices).
  [[nodiscard]] const std::vector<std::size_t>& route(std::size_t pair) const {
    return routes_[pair];
  }

 private:
  /// Expected travel seconds of `path` departing at `hour`, with each
  /// segment's profile speed scaled by the observed overlay factor.
  [[nodiscard]] double path_time_s(const std::vector<std::size_t>& path,
                                   int hour) const;
  void init_routes();

  WindowedOperator inner_;  ///< mean observed speed per segment
  std::shared_ptr<const apps::RoadNetwork> network_;
  std::vector<OdPair> pairs_;
  PtdrRerouteConfig config_;
  std::vector<std::vector<std::size_t>> routes_;  ///< current path per pair
  std::vector<double> overlay_;  ///< per-segment observed/free-flow factor
  std::uint64_t rerouted_ = 0;
  OperatorStats stats_;
  std::vector<WindowOutput> scratch_;
};

std::unique_ptr<Operator> make_ptdr_reroute_operator(
    std::string topic, WindowSpec spec,
    std::shared_ptr<const apps::RoadNetwork> network, std::vector<OdPair> pairs,
    PtdrRerouteConfig config = {}, std::string name = "ptdr_reroute");

}  // namespace everest::stream
