// Distributed workflow scheduling (paper §III-A: the HyperLoom-style
// platform "aims to improve resource utilization and reduces the overall
// workflow processing time"). Three schedulers over a simulated worker
// pool: FIFO (central ready queue), HEFT (communication-aware list
// scheduling), and locality-aware work stealing. Includes fault injection
// with retry.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "platform/node.hpp"
#include "workflow/task_graph.hpp"

namespace everest::workflow {

/// One worker (a CPU node or a VM share of it).
struct WorkerSpec {
  std::string name;
  /// Effective compute throughput (GFLOP/s) for task work.
  double gflops = 10.0;
  /// Bandwidth to any other worker (GB/s); intra-worker transfers are free.
  double link_gbps = 1.0;
  /// Per-transfer latency (us).
  double link_latency_us = 20.0;
};

/// Derives one worker per platform node (effective GFLOP/s from the CPU
/// model at roofline efficiency 0.6; edge nodes reached over the uplink).
std::vector<WorkerSpec> workers_from_platform(
    const platform::PlatformSpec& spec);

enum class SchedulerKind { kFifo, kHeft, kWorkStealing };

std::string_view to_string(SchedulerKind kind);

struct SimulationOptions {
  SchedulerKind scheduler = SchedulerKind::kHeft;
  /// Probability that one task execution fails and is retried.
  double failure_probability = 0.0;
  /// Max retries per task before the run aborts.
  int max_retries = 3;
  std::uint64_t seed = 7;
};

/// Result of simulating one workflow execution.
struct ScheduleOutcome {
  double makespan_us = 0.0;
  /// Per-worker busy time (compute only).
  std::vector<double> busy_us;
  /// Mean busy/makespan across workers.
  double mean_utilization = 0.0;
  /// Total bytes moved between distinct workers.
  double bytes_transferred = 0.0;
  /// Task → worker assignment.
  std::vector<std::size_t> assignment;
  /// Executions including retries.
  std::size_t executions = 0;
};

/// Simulates the task graph on the workers under the chosen scheduler.
Result<ScheduleOutcome> simulate_schedule(const TaskGraph& graph,
                                          const std::vector<WorkerSpec>& workers,
                                          const SimulationOptions& options = {});

}  // namespace everest::workflow
