// Distributed workflow scheduling (paper §III-A: the HyperLoom-style
// platform "aims to improve resource utilization and reduces the overall
// workflow processing time"). Three schedulers over a simulated worker
// pool: FIFO (central ready queue), HEFT (communication-aware list
// scheduling), and locality-aware work stealing.
//
// Fault tolerance (paper §IV: the runtime must "react to changing
// workload conditions"): a seed-reproducible FaultPlan injects node
// crashes/restarts, link degradation and partitions, stragglers, and
// transient task errors into the simulation. A phi-accrual heartbeat
// detector notices dead workers; recovery reschedules lost work onto
// healthy workers with exponential backoff + jitter, recomputes lost
// data objects through their lineage, and optionally re-executes
// stragglers speculatively.
#pragma once

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/status.hpp"
#include "data/plane.hpp"
#include "obs/trace.hpp"
#include "platform/node.hpp"
#include "resilience/detector.hpp"
#include "resilience/fault_plan.hpp"
#include "resilience/retry.hpp"
#include "workflow/task_graph.hpp"

namespace everest::workflow {

/// One worker (a CPU node or a VM share of it).
struct WorkerSpec {
  std::string name;
  /// Effective compute throughput (GFLOP/s) for task work.
  double gflops = 10.0;
  /// Bandwidth to any other worker (GB/s); intra-worker transfers are free.
  double link_gbps = 1.0;
  /// Per-transfer latency (us).
  double link_latency_us = 20.0;
};

/// Derives one worker per platform node (effective GFLOP/s from the CPU
/// model at roofline efficiency 0.6; edge nodes reached over the uplink).
std::vector<WorkerSpec> workers_from_platform(
    const platform::PlatformSpec& spec);

enum class SchedulerKind { kFifo, kHeft, kWorkStealing };

std::string_view to_string(SchedulerKind kind);

/// Where a failed task may be retried.
enum class RetryStrategy {
  /// Naive/legacy: back onto the queue of the worker that failed — a bad
  /// worker retries its own failures forever. Kept as the baseline the
  /// resilience bench compares against.
  kSameWorker,
  /// Retried work becomes eligible on any healthy worker (default).
  kAnyHealthy,
};

struct SimulationOptions {
  SchedulerKind scheduler = SchedulerKind::kHeft;
  /// Probability that one task execution fails and is retried (a blanket
  /// transient-error injection; FaultPlan windows compose with it).
  double failure_probability = 0.0;
  /// Max failed executions per task before it is given up on.
  int max_retries = 3;
  std::uint64_t seed = 7;

  // ---- resilience ----
  /// Chaos schedule to inject (borrowed; may be null).
  const resilience::FaultPlan* fault_plan = nullptr;
  /// Where retries may run.
  RetryStrategy retry_strategy = RetryStrategy::kAnyHealthy;
  /// Backoff applied before each retry (base_delay_us = 0 disables).
  resilience::RetryPolicy retry;
  /// On retry-budget exhaustion: abort the whole run (legacy behavior)
  /// or mark the task (and its descendants) failed and keep going so
  /// availability can be measured.
  bool abort_on_retry_exhaustion = true;
  /// Heartbeat cadence of the simulated workers and the monitor sweep.
  double heartbeat_interval_us = 1000.0;
  /// Phi thresholds for the health registry.
  double suspect_phi = 3.0;
  double dead_phi = 8.0;
  /// Speculative re-execution: launch a backup copy on an idle healthy
  /// worker once a task has run `speculation_factor` times its estimate
  /// (0 disables). First completion wins.
  double speculation_factor = 0.0;
  /// Record a deterministic event trace in the outcome.
  bool record_trace = false;

  // ---- data plane ----
  /// When set, task outputs become versioned DataObjects in a simulated
  /// data plane (one storage node + cache per worker): inputs are staged
  /// through caches and fair-share links event-by-event instead of the
  /// closed-form transfer estimate, a crash invalidates exactly the
  /// shards that died (a surviving replica absorbs the crash with no
  /// recomputation), and the prefetcher warms upcoming tasks' inputs.
  /// Borrowed; may be null (legacy closed-form path). num_nodes is
  /// overridden with the worker count. Fault-plan link windows
  /// (degrade/partition) apply to the legacy path only — in plane mode
  /// congestion comes from the shared links themselves.
  const data::PlaneConfig* data_plane = nullptr;
  /// Work stealing only: enqueue ready tasks where their largest input
  /// lives (data gravity). Off = round-robin placement — the
  /// locality-blind baseline E19a compares against.
  bool locality_aware = true;
  /// Frontier waves the prefetcher looks ahead (plane mode only; 0
  /// disables prefetching).
  int prefetch_depth = 0;

  // ---- observability ----
  /// Span/event sink (borrowed; may be null). Spans carry *sim time*:
  /// one span per task execution on its worker's track ("stage" /
  /// "compute" children in plane mode), instant events for steals,
  /// retries, speculation, prefetch issues, and every fault-plan
  /// consequence (crash, detect, recompute, restart). In plane mode the
  /// data plane also emits per-transfer spans into the same tracer.
  obs::Tracer* tracer = nullptr;
};

/// Result of simulating one workflow execution.
struct ScheduleOutcome {
  double makespan_us = 0.0;
  /// Per-worker busy time (compute only).
  std::vector<double> busy_us;
  /// Mean busy/makespan across workers.
  double mean_utilization = 0.0;
  /// Total bytes moved between distinct workers.
  double bytes_transferred = 0.0;
  /// Task → worker assignment (last successful execution).
  std::vector<std::size_t> assignment;
  /// Executions including retries, recomputations, and speculation.
  std::size_t executions = 0;

  // ---- resilience accounting ----
  std::size_t tasks_completed = 0;
  /// Tasks that exhausted their retry budget plus descendants that could
  /// therefore never run (only non-zero with abort_on_retry_exhaustion
  /// off).
  std::size_t tasks_failed = 0;
  std::size_t retries = 0;
  /// Task executions lost to node crashes.
  std::size_t lost_executions = 0;
  /// Completed tasks re-executed because a crash lost their outputs.
  std::size_t recomputed_tasks = 0;
  std::size_t speculative_launches = 0;
  std::size_t speculative_wins = 0;
  /// Per detected crash: time from the crash to the moment recovery was
  /// initiated (detection latency of the phi-accrual detector).
  std::vector<double> detection_latency_us;
  /// Per detected crash: time from the crash until all work it lost
  /// (running + recomputed tasks) completed again.
  std::vector<double> recovery_us;
  /// Deterministic event log (record_trace only). Same seed + same plan
  /// => byte-identical.
  std::vector<std::string> trace;

  /// Data-plane counters (all zero unless options.data_plane was set).
  data::PlaneStats plane;

  /// Completed fraction of all tasks (1.0 on a clean run).
  [[nodiscard]] double availability() const {
    const std::size_t n = tasks_completed + tasks_failed;
    return n == 0 ? 1.0
                  : static_cast<double>(tasks_completed) /
                        static_cast<double>(n);
  }
};

/// Simulates the task graph on the workers under the chosen scheduler and
/// fault plan.
Result<ScheduleOutcome> simulate_schedule(const TaskGraph& graph,
                                          const std::vector<WorkerSpec>& workers,
                                          const SimulationOptions& options = {});

}  // namespace everest::workflow
