// Task graphs for the HyperLoom-style workflow engine (paper §III-A:
// "end-to-end data processing workflows composed of a large number of
// interconnected computational tasks of various granularity").
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/graph.hpp"
#include "common/rng.hpp"
#include "common/status.hpp"
#include "ir/module.hpp"

namespace everest::workflow {

/// One computational task.
struct TaskNode {
  std::string name;
  /// Work per execution (FLOPs).
  double flops = 1e6;
  /// Size of the produced data object (bytes), transferred to consumers.
  double output_bytes = 0.0;
  /// Kernel symbol (for variant lookup by the runtime), may be empty.
  std::string kernel;
  /// Predecessor task ids.
  std::vector<std::size_t> deps;
};

/// An immutable-after-build DAG of tasks.
class TaskGraph {
 public:
  /// Adds a task; `deps` must reference earlier tasks.
  std::size_t add_task(TaskNode node);

  [[nodiscard]] std::size_t size() const { return tasks_.size(); }
  [[nodiscard]] const TaskNode& task(std::size_t i) const { return tasks_[i]; }
  [[nodiscard]] const std::vector<TaskNode>& tasks() const { return tasks_; }

  /// Consumers of each task (derived).
  [[nodiscard]] std::vector<std::vector<std::size_t>> successors() const;

  /// Structural check: deps in range and acyclic (guaranteed by builder,
  /// checked for graphs loaded from IR).
  [[nodiscard]] Status validate() const;

  /// Total work (FLOPs) and the critical-path work (FLOPs along the
  /// heaviest dependency chain) — bounds on speedup.
  [[nodiscard]] double total_flops() const;
  [[nodiscard]] double critical_path_flops() const;

  /// Builds from a workflow-dialect IR function: every workflow.task op
  /// becomes a task (est_flops attr or 1 MFLOP default); sources/sinks are
  /// zero-work endpoints.
  static Result<TaskGraph> from_ir(ir::Function& fn);

  // ---- Synthetic generators for scaling studies (E8) ----

  /// Layered random DAG: `layers` × `width` tasks, each task depends on
  /// 1..max_deps random tasks of the previous layer.
  static TaskGraph random_layered(std::size_t layers, std::size_t width,
                                  int max_deps, Rng& rng,
                                  double mean_flops = 5e7,
                                  double mean_bytes = 1e6);

  /// Classic map-shuffle-reduce: `width` mappers, `reducers` reducers, each
  /// reducer reads every mapper (all-to-all shuffle).
  static TaskGraph map_reduce(std::size_t width, std::size_t reducers,
                              double map_flops = 5e7,
                              double reduce_flops = 2e7,
                              double shuffle_bytes = 4e6);

  /// Linear pipeline of `stages` stages, `width` independent lanes.
  static TaskGraph pipeline(std::size_t stages, std::size_t width,
                            double stage_flops = 5e7,
                            double stage_bytes = 1e6);

 private:
  std::vector<TaskNode> tasks_;
};

}  // namespace everest::workflow
