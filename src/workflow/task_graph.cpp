#include "workflow/task_graph.hpp"

#include <algorithm>
#include <map>

namespace everest::workflow {

std::size_t TaskGraph::add_task(TaskNode node) {
  tasks_.push_back(std::move(node));
  return tasks_.size() - 1;
}

std::vector<std::vector<std::size_t>> TaskGraph::successors() const {
  std::vector<std::vector<std::size_t>> out(tasks_.size());
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (std::size_t dep : tasks_[i].deps) out[dep].push_back(i);
  }
  return out;
}

Status TaskGraph::validate() const {
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    for (std::size_t dep : tasks_[i].deps) {
      if (dep >= i) {
        return InvalidArgument("task '" + tasks_[i].name +
                               "' depends on a later or equal task id");
      }
    }
    if (tasks_[i].flops < 0 || tasks_[i].output_bytes < 0) {
      return InvalidArgument("task '" + tasks_[i].name +
                             "' has negative work or output size");
    }
  }
  return OkStatus();
}

double TaskGraph::total_flops() const {
  double sum = 0.0;
  for (const TaskNode& t : tasks_) sum += t.flops;
  return sum;
}

double TaskGraph::critical_path_flops() const {
  std::vector<double> path(tasks_.size(), 0.0);
  double best = 0.0;
  for (std::size_t i = 0; i < tasks_.size(); ++i) {
    double longest_dep = 0.0;
    for (std::size_t dep : tasks_[i].deps) {
      longest_dep = std::max(longest_dep, path[dep]);
    }
    path[i] = longest_dep + tasks_[i].flops;
    best = std::max(best, path[i]);
  }
  return best;
}

Result<TaskGraph> TaskGraph::from_ir(ir::Function& fn) {
  TaskGraph graph;
  // Map from defining op → task id, in program order.
  std::map<const ir::Operation*, std::size_t> task_of;
  for (auto& op : fn.entry()) {
    const std::string& n = op->name();
    if (n != "workflow.task" && n != "workflow.source" && n != "workflow.sink") {
      continue;
    }
    TaskNode node;
    node.name = op->str_attr("name", "task" + std::to_string(graph.size()));
    if (n == "workflow.task") {
      node.flops = op->double_attr("est_flops", 1e6);
      node.kernel = op->str_attr("kernel");
      if (op->num_results() == 1 && op->result_types()[0].is_shaped()) {
        node.output_bytes =
            static_cast<double>(op->result_types()[0].byte_size());
      }
    } else if (n == "workflow.source") {
      node.flops = 0.0;
      node.output_bytes = 4096.0;  // stream window handle
    } else {
      node.flops = 0.0;
    }
    for (std::size_t i = 0; i < op->num_operands(); ++i) {
      const ir::Value& v = op->operand(i);
      if (!v.is_op_result()) continue;
      auto it = task_of.find(v.defining_op());
      if (it != task_of.end()) node.deps.push_back(it->second);
    }
    task_of[op.get()] = graph.add_task(std::move(node));
  }
  EVEREST_RETURN_IF_ERROR(graph.validate());
  return graph;
}

TaskGraph TaskGraph::random_layered(std::size_t layers, std::size_t width,
                                    int max_deps, Rng& rng, double mean_flops,
                                    double mean_bytes) {
  TaskGraph graph;
  std::vector<std::size_t> previous;
  for (std::size_t layer = 0; layer < layers; ++layer) {
    std::vector<std::size_t> current;
    for (std::size_t w = 0; w < width; ++w) {
      TaskNode node;
      node.name = "t" + std::to_string(layer) + "_" + std::to_string(w);
      node.flops = rng.lognormal(std::log(mean_flops), 0.6);
      node.output_bytes = rng.lognormal(std::log(mean_bytes), 0.5);
      if (!previous.empty()) {
        const int deps = 1 + static_cast<int>(rng.uniform_int(
                                 static_cast<std::uint64_t>(max_deps)));
        std::vector<std::size_t> pool = previous;
        rng.shuffle(pool);
        for (int d = 0; d < deps && d < static_cast<int>(pool.size()); ++d) {
          node.deps.push_back(pool[static_cast<std::size_t>(d)]);
        }
        std::sort(node.deps.begin(), node.deps.end());
        node.deps.erase(std::unique(node.deps.begin(), node.deps.end()),
                        node.deps.end());
      }
      current.push_back(graph.add_task(std::move(node)));
    }
    previous = std::move(current);
  }
  return graph;
}

TaskGraph TaskGraph::map_reduce(std::size_t width, std::size_t reducers,
                                double map_flops, double reduce_flops,
                                double shuffle_bytes) {
  TaskGraph graph;
  std::vector<std::size_t> mappers;
  for (std::size_t i = 0; i < width; ++i) {
    TaskNode m;
    m.name = "map" + std::to_string(i);
    m.flops = map_flops;
    m.output_bytes = shuffle_bytes;
    mappers.push_back(graph.add_task(std::move(m)));
  }
  for (std::size_t r = 0; r < reducers; ++r) {
    TaskNode red;
    red.name = "reduce" + std::to_string(r);
    red.flops = reduce_flops;
    red.output_bytes = shuffle_bytes / 8;
    red.deps = mappers;
    graph.add_task(std::move(red));
  }
  return graph;
}

TaskGraph TaskGraph::pipeline(std::size_t stages, std::size_t width,
                              double stage_flops, double stage_bytes) {
  TaskGraph graph;
  std::vector<std::size_t> previous(width, 0);
  for (std::size_t s = 0; s < stages; ++s) {
    std::vector<std::size_t> current;
    for (std::size_t w = 0; w < width; ++w) {
      TaskNode node;
      node.name = "s" + std::to_string(s) + "_l" + std::to_string(w);
      node.flops = stage_flops;
      node.output_bytes = stage_bytes;
      if (s > 0) node.deps = {previous[w]};
      current.push_back(graph.add_task(std::move(node)));
    }
    previous = std::move(current);
  }
  return graph;
}

}  // namespace everest::workflow
