#include "workflow/scheduler.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <deque>
#include <limits>
#include <memory>
#include <queue>
#include <set>

#include "data/plane.hpp"
#include "data/prefetcher.hpp"
#include "platform/desim.hpp"
#include "resilience/lineage.hpp"

namespace everest::workflow {

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kHeft: return "heft";
    case SchedulerKind::kWorkStealing: return "work-stealing";
  }
  return "?";
}

std::vector<WorkerSpec> workers_from_platform(
    const platform::PlatformSpec& spec) {
  std::vector<WorkerSpec> workers;
  for (const platform::NodeSpec& node : spec.nodes) {
    WorkerSpec w;
    w.name = node.name;
    w.gflops = node.cpu.peak_gflops_per_core * node.cpu.cores * 0.6;
    const bool cloud = node.tier == platform::Tier::kCloud;
    w.link_gbps = cloud ? spec.intra_dc.bandwidth_gbps
                        : spec.edge_uplink.bandwidth_gbps;
    w.link_latency_us =
        cloud ? spec.intra_dc.latency_us : spec.edge_uplink.latency_us;
    workers.push_back(std::move(w));
  }
  return workers;
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double compute_us(const TaskNode& task, const WorkerSpec& worker) {
  return task.flops / (worker.gflops * 1e3);  // GFLOP/s → FLOP/us
}

/// HEFT: upward ranks, then min-EFT worker per task in rank order.
/// Returns per-task assignment and a priority order.
void heft_plan(const TaskGraph& graph, const std::vector<WorkerSpec>& workers,
               std::vector<std::size_t>* assignment,
               std::vector<std::size_t>* order) {
  const std::size_t n = graph.size();
  double mean_gflops = 0.0;
  for (const WorkerSpec& w : workers) mean_gflops += w.gflops;
  mean_gflops /= static_cast<double>(workers.size());
  double mean_gbps = 0.0, mean_lat = 0.0;
  for (const WorkerSpec& w : workers) {
    mean_gbps += w.link_gbps;
    mean_lat += w.link_latency_us;
  }
  mean_gbps /= static_cast<double>(workers.size());
  mean_lat /= static_cast<double>(workers.size());

  const auto succ = graph.successors();
  std::vector<double> rank(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const TaskNode& task = graph.task(i);
    const double w_avg = task.flops / (mean_gflops * 1e3);
    double best_succ = 0.0;
    for (std::size_t s : succ[i]) {
      const double comm =
          mean_lat + task.output_bytes / (mean_gbps * 1e3);
      best_succ = std::max(best_succ, comm + rank[s]);
    }
    rank[i] = w_avg + best_succ;
  }
  order->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*order)[i] = i;
  std::stable_sort(order->begin(), order->end(),
                   [&](std::size_t a, std::size_t b) {
                     return rank[a] > rank[b];
                   });

  // Min-EFT placement.
  assignment->assign(n, kNone);
  std::vector<double> worker_free(workers.size(), 0.0);
  std::vector<double> finish(n, 0.0);
  for (std::size_t t : *order) {
    const TaskNode& task = graph.task(t);
    double best_eft = std::numeric_limits<double>::infinity();
    std::size_t best_worker = 0;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      double data_ready = 0.0;
      for (std::size_t dep : task.deps) {
        double arrive = finish[dep];
        if ((*assignment)[dep] != w) {
          arrive += workers[w].link_latency_us +
                    graph.task(dep).output_bytes /
                        (workers[w].link_gbps * 1e3);
        }
        data_ready = std::max(data_ready, arrive);
      }
      const double start = std::max(worker_free[w], data_ready);
      const double eft = start + compute_us(task, workers[w]);
      if (eft < best_eft) {
        best_eft = eft;
        best_worker = w;
      }
    }
    (*assignment)[t] = best_worker;
    finish[t] = best_eft;
    worker_free[best_worker] = best_eft;
  }
}

/// The whole simulation as one object so the event callbacks share state.
class ChaosSim {
 public:
  ChaosSim(const TaskGraph& graph, const std::vector<WorkerSpec>& workers,
           const SimulationOptions& options)
      : graph_(graph),
        workers_(workers),
        opt_(options),
        plan_(options.fault_plan != nullptr ? *options.fault_plan
                                            : kEmptyPlan),
        rng_(options.seed),
        registry_(workers.size(), options.heartbeat_interval_us,
                  options.suspect_phi, options.dead_phi) {}

  Result<ScheduleOutcome> run();

 private:
  using FaultKind = resilience::FaultKind;

  struct RunningTask {
    std::size_t task = kNone;
    int task_epoch = 0;
    double start_us = 0.0;
    double est_us = 0.0;
    bool speculative = false;
    /// Root span for this execution (0 = tracing off).
    std::uint64_t span_id = 0;
    /// Sim time compute began (staging/transfer before it).
    double compute_start_us = 0.0;
  };

  struct Outage {
    std::size_t worker = kNone;
    double crash_us = 0.0;
    bool initiated = false;
    /// Tasks whose (re-)completion ends this outage's recovery window.
    std::set<std::size_t> pending;
    bool recovery_recorded = false;
  };

  [[nodiscard]] bool terminal() const {
    return aborted_ || done_count_ + failed_count_ >= graph_.size();
  }
  [[nodiscard]] bool chaos_enabled() const {
    return !plan_.empty() || opt_.speculation_factor > 0.0;
  }
  /// Healthy enough to receive new work.
  [[nodiscard]] bool dispatchable(std::size_t w) const {
    if (alive_[w] == 0) return false;
    return !chaos_enabled() || registry_.dispatchable(w);
  }
  /// Valid to pull from a ready queue right now (stale entries are
  /// dropped at pop time instead of being hunted down inside deques).
  [[nodiscard]] bool runnable(std::size_t t) const {
    return done_[t] == 0 && failed_[t] == 0 && missing_[t] == 0 &&
           in_flight_[t] == 0 && backoff_pending_[t] == 0;
  }
  /// Retried tasks steer away from the worker that failed them — but only
  /// while some other idle healthy worker could take them instead.
  [[nodiscard]] bool blocked_by_avoid(std::size_t t, std::size_t w) const {
    if (avoid_worker_[t] != static_cast<int>(w)) return false;
    for (std::size_t v = 0; v < workers_.size(); ++v) {
      if (v != w && busy_[v] == 0 && dispatchable(v)) return true;
    }
    return false;
  }

  [[nodiscard]] bool plane_mode() const { return plane_ != nullptr; }

  void trace(const char* event, std::size_t task, std::size_t worker,
             const char* detail = "");
  [[nodiscard]] bool tracing() const {
    return opt_.tracer != nullptr && opt_.tracer->enabled();
  }
  /// Sim-time instant on worker `w`'s track. trace_id groups by task.
  void emit_instant(const char* name, const char* component, std::size_t task,
                    std::size_t worker, obs::Annotations annotations = {});
  /// Root span for one finished execution (+ stage/compute children when
  /// the compute start is known).
  void emit_task_span(const RunningTask& exec, std::size_t t, std::size_t w,
                      const char* outcome);
  [[nodiscard]] std::size_t gravity_target(std::size_t t) const;
  void enqueue_ready(std::size_t t);
  void maybe_enqueue(std::size_t t);
  std::size_t pick_task(std::size_t w);
  bool try_dispatch(std::size_t w);
  void dispatch_all();
  void dispatch_task(std::size_t t, std::size_t w, bool speculative);
  void on_complete(std::size_t w, std::size_t t, int task_epoch,
                   int worker_epoch);
  void on_failure(std::size_t t, std::size_t w);
  void release_retry(std::size_t t, std::size_t failed_worker);
  void mark_failed_closure(std::size_t t);
  void crash(std::size_t w, double downtime_us);
  void restart(std::size_t w);
  void initiate_recovery(Outage& outage);
  void heartbeat_tick();
  void check_stragglers();
  void note_progress(std::size_t t);
  /// Least-loaded healthy worker, avoiding `avoid` when possible.
  std::size_t healthiest_worker(std::size_t avoid);
  double transfer_cost(std::size_t t, std::size_t w, double* bytes_moved,
                       double* blocked_us);

  // Plane-mode execution: dispatch stages inputs through the data plane
  // (event-driven cached/deduped transfers), then compute begins.
  void stage_inputs(std::size_t t, std::size_t w,
                    platform::Simulator::Callback on_staged);
  void begin_compute(std::size_t w, std::size_t t, int task_epoch,
                     int worker_epoch);
  [[nodiscard]] double est_stage_us(std::size_t t, std::size_t w);
  void run_prefetch(std::size_t completed);

  const TaskGraph& graph_;
  const std::vector<WorkerSpec>& workers_;
  const SimulationOptions& opt_;
  static const resilience::FaultPlan kEmptyPlan;
  const resilience::FaultPlan& plan_;

  platform::Simulator sim_;
  Rng rng_;
  resilience::HealthRegistry registry_;

  // Graph state.
  std::vector<std::vector<std::size_t>> succ_;
  std::vector<std::vector<std::size_t>> deps_;
  std::vector<std::size_t> missing_;
  std::vector<char> done_, failed_, output_lost_, backoff_pending_;
  std::vector<char> spec_launched_;
  std::vector<std::size_t> output_worker_;
  std::vector<int> avoid_worker_;
  std::vector<int> attempts_;
  std::vector<int> epoch_;
  std::vector<int> in_flight_;

  // Worker state.
  std::vector<char> alive_, busy_;
  std::vector<int> worker_epoch_;
  std::vector<double> worker_now_;
  std::vector<RunningTask> running_on_;

  // Ready containers (per scheduler kind).
  std::deque<std::size_t> central_;
  std::vector<std::deque<std::size_t>> local_;
  std::vector<std::size_t> heft_assignment_, heft_order_, heft_position_;
  std::vector<std::vector<std::size_t>> heft_ready_;  // kept rank-sorted

  std::vector<Outage> outages_;

  // Data plane (plane mode only).
  std::unique_ptr<data::DataPlane> plane_;
  std::unique_ptr<data::Prefetcher> prefetcher_;
  std::vector<double> output_bytes_;

  ScheduleOutcome out_;
  std::size_t done_count_ = 0;
  std::size_t failed_count_ = 0;
  bool aborted_ = false;
  Status fatal_;
};

const resilience::FaultPlan ChaosSim::kEmptyPlan;

void ChaosSim::trace(const char* event, std::size_t task, std::size_t worker,
                     const char* detail) {
  if (!opt_.record_trace) return;
  char buf[192];
  std::snprintf(buf, sizeof(buf), "@%.3f %s task=%ld worker=%ld%s%s",
                sim_.now(), event,
                task == kNone ? -1L : static_cast<long>(task),
                worker == kNone ? -1L : static_cast<long>(worker),
                detail[0] != '\0' ? " " : "", detail);
  out_.trace.emplace_back(buf);
}

void ChaosSim::emit_instant(const char* name, const char* component,
                            std::size_t task, std::size_t worker,
                            obs::Annotations annotations) {
  if (!tracing()) return;
  if (task != kNone) {
    annotations.emplace_back("task", graph_.task(task).name);
  }
  opt_.tracer->instant(
      obs::TimeDomain::kSim, task == kNone ? 0 : task + 1, sim_.now(),
      worker == kNone ? 0 : static_cast<std::uint32_t>(worker), name,
      component, std::move(annotations));
}

void ChaosSim::emit_task_span(const RunningTask& exec, std::size_t t,
                              std::size_t w, const char* outcome) {
  if (!tracing() || exec.span_id == 0) return;
  obs::Tracer* tr = opt_.tracer;
  const double now = sim_.now();
  const std::uint64_t trace_id = t + 1;
  const auto track = static_cast<std::uint32_t>(w);
  if (exec.compute_start_us > exec.start_us) {
    tr->span(obs::TimeDomain::kSim, trace_id, tr->next_id(), exec.span_id,
             exec.start_us, exec.compute_start_us, track, "stage", "data");
    tr->span(obs::TimeDomain::kSim, trace_id, tr->next_id(), exec.span_id,
             exec.compute_start_us, now, track, "compute", "workflow");
  }
  tr->span(obs::TimeDomain::kSim, trace_id, exec.span_id, 0, exec.start_us,
           now, track, graph_.task(t).name, "workflow",
           {{"worker", workers_[w].name},
            {"outcome", outcome},
            {"attempt", std::to_string(attempts_[t])},
            {"speculative", exec.speculative ? "1" : "0"}});
}

std::size_t ChaosSim::healthiest_worker(std::size_t avoid) {
  std::size_t best = kNone;
  double best_load = std::numeric_limits<double>::infinity();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (!dispatchable(w)) continue;
    // Load proxy: queued work plus busy state, normalized by speed.
    double load = (static_cast<double>(busy_[w]) +
                   static_cast<double>(opt_.scheduler == SchedulerKind::kHeft
                                           ? heft_ready_[w].size()
                                           : local_[w].size())) /
                  workers_[w].gflops;
    if (w == avoid) load += 1e6;  // only if nothing else is healthy
    if (load < best_load) {
      best_load = load;
      best = w;
    }
  }
  return best == kNone ? avoid : best;
}

std::size_t ChaosSim::gravity_target(std::size_t t) const {
  // Data gravity: place where the biggest input lives (round-robin for
  // roots, and for everything when locality awareness is off).
  std::size_t target = t % workers_.size();
  if (opt_.locality_aware) {
    double best_bytes = -1.0;
    for (std::size_t dep : graph_.task(t).deps) {
      if (output_worker_[dep] == kNone) continue;
      if (graph_.task(dep).output_bytes > best_bytes) {
        best_bytes = graph_.task(dep).output_bytes;
        target = output_worker_[dep];
      }
    }
  }
  return target;
}

void ChaosSim::enqueue_ready(std::size_t t) {
  switch (opt_.scheduler) {
    case SchedulerKind::kFifo:
      central_.push_back(t);
      break;
    case SchedulerKind::kWorkStealing: {
      std::size_t target = gravity_target(t);
      if (!dispatchable(target)) target = healthiest_worker(target);
      local_[target].push_back(t);
      break;
    }
    case SchedulerKind::kHeft: {
      std::size_t target = heft_assignment_[t];
      if (!dispatchable(target)) {
        target = healthiest_worker(target);
        heft_assignment_[t] = target;
      }
      // Insert keeping the vector sorted by descending rank position
      // (back = highest priority).
      auto& q = heft_ready_[target];
      auto it = std::lower_bound(
          q.begin(), q.end(), t, [&](std::size_t a, std::size_t b) {
            return heft_position_[a] > heft_position_[b];
          });
      q.insert(it, t);
      break;
    }
  }
}

void ChaosSim::maybe_enqueue(std::size_t t) {
  if (runnable(t)) enqueue_ready(t);
}

std::size_t ChaosSim::pick_task(std::size_t w) {
  // Pops until a dispatchable task is found. Stale entries (completed
  // elsewhere, re-blocked, backing off) are dropped; entries only held
  // back by retry avoidance are kept in place for another worker.
  auto pop_deque = [&](std::deque<std::size_t>& q,
                       bool front) -> std::size_t {
    std::vector<std::size_t> held;
    std::size_t got = kNone;
    while (!q.empty()) {
      const std::size_t t = front ? q.front() : q.back();
      if (front) {
        q.pop_front();
      } else {
        q.pop_back();
      }
      if (!runnable(t)) continue;
      if (blocked_by_avoid(t, w)) {
        held.push_back(t);
        continue;
      }
      got = t;
      break;
    }
    for (auto it = held.rbegin(); it != held.rend(); ++it) {
      if (front) {
        q.push_front(*it);
      } else {
        q.push_back(*it);
      }
    }
    return got;
  };

  switch (opt_.scheduler) {
    case SchedulerKind::kFifo:
      return pop_deque(central_, /*front=*/true);
    case SchedulerKind::kWorkStealing: {
      std::size_t t = pop_deque(local_[w], /*front=*/true);
      if (t != kNone) return t;
      // Steal from the longest queue (a dead worker's queue is a valid —
      // and important — victim: stealing is how its backlog gets rescued).
      std::size_t victim = kNone, longest = 0;
      for (std::size_t v = 0; v < workers_.size(); ++v) {
        if (v == w) continue;
        if (local_[v].size() > longest) {
          longest = local_[v].size();
          victim = v;
        }
      }
      if (victim == kNone) return kNone;
      // Locality-aware stealing (two passes over a live victim's backlog;
      // a dead victim is always robbed blind — stealing is how its
      // backlog gets rescued):
      //   1. a task whose biggest input already lives on the thief moves
      //      no data — take it;
      //   2. otherwise only compute-bound tasks migrate: stealing is
      //      worthwhile when moving the inputs costs no more than the
      //      compute itself. Transfer-bound tasks stay queued at their
      //      data; the worker holding it drains them locally.
      if (opt_.locality_aware && dispatchable(victim)) {
        auto& q = local_[victim];
        for (auto it = q.rbegin(); it != q.rend(); ++it) {
          const std::size_t cand = *it;
          if (!runnable(cand) || blocked_by_avoid(cand, w)) continue;
          if (gravity_target(cand) == w) {
            q.erase(std::next(it).base());
            emit_instant("steal", "workflow", cand, w,
                         {{"victim", workers_[victim].name},
                          {"kind", "local-input"}});
            return cand;
          }
        }
        for (auto it = q.rbegin(); it != q.rend(); ++it) {
          const std::size_t cand = *it;
          if (!runnable(cand) || blocked_by_avoid(cand, w)) continue;
          const double move = plane_mode()
                                  ? est_stage_us(cand, w)
                                  : transfer_cost(cand, w, nullptr, nullptr);
          if (move <= compute_us(graph_.task(cand), workers_[w])) {
            q.erase(std::next(it).base());
            emit_instant("steal", "workflow", cand, w,
                         {{"victim", workers_[victim].name},
                          {"kind", "compute-bound"}});
            return cand;
          }
        }
        return kNone;
      }
      t = pop_deque(local_[victim], /*front=*/false);
      if (t != kNone) {
        emit_instant("steal", "workflow", t, w,
                     {{"victim", workers_[victim].name}, {"kind", "blind"}});
      }
      return t;
    }
    case SchedulerKind::kHeft: {
      // Back of the sorted vector = highest-rank ready task.
      std::vector<std::size_t> held;
      std::size_t got = kNone;
      while (!heft_ready_[w].empty()) {
        const std::size_t t = heft_ready_[w].back();
        heft_ready_[w].pop_back();
        if (!runnable(t)) continue;
        if (blocked_by_avoid(t, w)) {
          held.push_back(t);
          continue;
        }
        got = t;
        break;
      }
      for (auto it = held.rbegin(); it != held.rend(); ++it) {
        heft_ready_[w].push_back(*it);
      }
      return got;
    }
  }
  return kNone;
}

double ChaosSim::transfer_cost(std::size_t t, std::size_t w,
                               double* bytes_moved, double* blocked_us) {
  const double now = sim_.now();
  double worst = 0.0;
  for (std::size_t dep : graph_.task(t).deps) {
    const std::size_t src = output_worker_[dep];
    if (src == w || src == kNone) continue;
    const WorkerSpec& ws = workers_[w];
    const double bytes = graph_.task(dep).output_bytes;
    double move = ws.link_latency_us + bytes / (ws.link_gbps * 1e3);
    // Degradation windows on either endpoint stretch the transfer.
    move *= plan_.severity(FaultKind::kLinkDegrade, static_cast<int>(w), now);
    move *=
        plan_.severity(FaultKind::kLinkDegrade, static_cast<int>(src), now);
    worst = std::max(worst, move);
    if (bytes_moved != nullptr) *bytes_moved += bytes;
    // A partition covering either endpoint blocks the transfer until the
    // partition heals.
    if (blocked_us != nullptr) {
      const double heal = std::max(
          plan_.window_end(FaultKind::kLinkPartition, static_cast<int>(w),
                           now),
          plan_.window_end(FaultKind::kLinkPartition, static_cast<int>(src),
                           now));
      *blocked_us = std::max(*blocked_us, heal - now);
    }
  }
  return worst;
}

double ChaosSim::est_stage_us(std::size_t t, std::size_t w) {
  // Idle-link estimate of the staging span (for straggler detection
  // only — actual staging is event-driven and may congest).
  double est = 0.0;
  for (std::size_t dep : deps_[t]) {
    const std::size_t src = output_worker_[dep];
    if (src == w || src == kNone || output_bytes_[dep] <= 0.0) continue;
    est = std::max(
        est, plane_->transfers().estimate_us(output_bytes_[dep], src, w));
  }
  return est;
}

void ChaosSim::stage_inputs(std::size_t t, std::size_t w,
                            platform::Simulator::Callback on_staged) {
  struct StageState {
    std::size_t pending = 1;  // guard held until all stages are issued
    platform::Simulator::Callback on_staged;
  };
  auto state = std::make_shared<StageState>();
  state->on_staged = std::move(on_staged);
  const auto arrived = [state] {
    if (--state->pending == 0) state->on_staged();
  };
  for (std::size_t dep : deps_[t]) {
    if (output_bytes_[dep] <= 0.0) continue;
    ++state->pending;
    const Status staged =
        plane_->stage(static_cast<data::ObjectId>(dep), w, arrived);
    if (!staged.ok()) --state->pending;  // lost object: lineage will re-run
  }
  if (--state->pending == 0) {
    sim_.schedule(0.0, [state] { state->on_staged(); });
  }
}

void ChaosSim::begin_compute(std::size_t w, std::size_t t, int task_epoch,
                             int worker_epoch) {
  if (aborted_) return;
  if (worker_epoch_[w] != worker_epoch) return;  // crashed while staging
  const double now = sim_.now();
  if (done_[t] != 0 || failed_[t] != 0 || epoch_[t] != task_epoch) {
    // Cancelled while staging (duplicate won, or recomputation reset it).
    // This copy's dispatch incremented in_flight_ and this is its last
    // report: release it, or a recomputed task stays unrunnable forever.
    if (in_flight_[t] > 0) --in_flight_[t];
    busy_[w] = 0;
    running_on_[w] = RunningTask{};
    worker_now_[w] = now;
    trace("cancelled", t, w);
    maybe_enqueue(t);
    dispatch_all();
    return;
  }
  const double exec =
      compute_us(graph_.task(t), workers_[w]) *
      plan_.severity(FaultKind::kStraggler, static_cast<int>(w), now);
  out_.busy_us[w] += exec;
  worker_now_[w] = now + exec;
  running_on_[w].compute_start_us = now;  // staging just finished
  trace("compute", t, w);
  sim_.schedule(exec, [this, w, t, task_epoch, worker_epoch] {
    on_complete(w, t, task_epoch, worker_epoch);
  });
}

void ChaosSim::run_prefetch(std::size_t completed) {
  const std::vector<data::PrefetchCandidate> plan = prefetcher_->plan(
      completed, done_, in_flight_, output_worker_, output_bytes_);
  for (const data::PrefetchCandidate& c : plan) {
    emit_instant("prefetch", "data", c.producer, c.target);
    (void)plane_->prefetch(static_cast<data::ObjectId>(c.producer),
                           c.target);
  }
}

void ChaosSim::dispatch_task(std::size_t t, std::size_t w, bool speculative) {
  const double now = sim_.now();
  if (plane_mode()) {
    // Two-phase: stage the inputs through the plane (cache hits are
    // free, misses ride fair-share links, identical fetches dedup),
    // then compute. The worker is occupied for the whole span.
    busy_[w] = 1;
    ++in_flight_[t];
    ++out_.executions;
    avoid_worker_[t] = -1;
    const double nominal = compute_us(graph_.task(t), workers_[w]);
    RunningTask exec{t, epoch_[t], now, est_stage_us(t, w) + nominal,
                     speculative};
    if (tracing()) {
      exec.span_id = opt_.tracer->next_id();
      // begin_compute stamps the real boundary once staging finishes.
      exec.compute_start_us = now;
      if (speculative) emit_instant("speculate", "workflow", t, w);
    }
    running_on_[w] = exec;
    trace(speculative ? "speculate" : "dispatch", t, w);
    stage_inputs(t, w, [this, w, t, te = epoch_[t],
                        we = worker_epoch_[w]] {
      begin_compute(w, t, te, we);
    });
    return;
  }
  double moved = 0.0, blocked = 0.0;
  const double xfer = transfer_cost(t, w, &moved, &blocked);
  out_.bytes_transferred += moved;
  const double nominal = compute_us(graph_.task(t), workers_[w]);
  const double exec =
      nominal *
      plan_.severity(FaultKind::kStraggler, static_cast<int>(w), now);
  const double start = std::max(now, worker_now_[w]) + blocked;
  const double end = start + xfer + exec;
  out_.busy_us[w] += exec;
  worker_now_[w] = end;
  busy_[w] = 1;
  ++in_flight_[t];
  ++out_.executions;
  avoid_worker_[t] = -1;
  // The speculation estimate is the *nominal* duration: a straggling
  // execution must look late relative to a healthy one.
  RunningTask run{t, epoch_[t], now, xfer + nominal, speculative};
  if (tracing()) {
    run.span_id = opt_.tracer->next_id();
    run.compute_start_us = start + xfer;
    if (speculative) emit_instant("speculate", "workflow", t, w);
  }
  running_on_[w] = run;
  trace(speculative ? "speculate" : "dispatch", t, w);
  sim_.schedule(end - now, [this, w, t, te = epoch_[t],
                            we = worker_epoch_[w]] {
    on_complete(w, t, te, we);
  });
}

bool ChaosSim::try_dispatch(std::size_t w) {
  if (busy_[w] != 0 || !dispatchable(w)) return false;
  const std::size_t t = pick_task(w);
  if (t == kNone) return false;
  dispatch_task(t, w, /*speculative=*/false);
  return true;
}

void ChaosSim::dispatch_all() {
  if (aborted_) return;
  bool progress = true;
  while (progress) {
    progress = false;
    for (std::size_t w = 0; w < workers_.size(); ++w) {
      progress |= try_dispatch(w);
    }
  }
}

void ChaosSim::note_progress(std::size_t t) {
  for (Outage& o : outages_) {
    if (!o.initiated || o.recovery_recorded) continue;
    o.pending.erase(t);
    if (o.pending.empty()) {
      o.recovery_recorded = true;
      out_.recovery_us.push_back(sim_.now() - o.crash_us);
      trace("recovered", kNone, o.worker);
      emit_instant("recovered", "resilience", kNone, o.worker,
                   {{"recovery_us",
                     std::to_string(sim_.now() - o.crash_us)}});
    }
  }
}

void ChaosSim::on_complete(std::size_t w, std::size_t t, int task_epoch,
                           int worker_epoch) {
  if (aborted_) return;
  // The worker crashed after launching this: the execution never reports.
  if (worker_epoch_[w] != worker_epoch) return;
  const RunningTask exec = running_on_[w];
  const bool speculative = exec.speculative;
  busy_[w] = 0;
  running_on_[w] = RunningTask{};
  worker_now_[w] = sim_.now();

  if (done_[t] != 0 || failed_[t] != 0 || epoch_[t] != task_epoch) {
    // A duplicate copy that lost the race, or a cancelled execution.
    // Same in_flight_ release as the staging-cancel path above.
    if (in_flight_[t] > 0) --in_flight_[t];
    trace("cancelled", t, w);
    emit_task_span(exec, t, w, "cancelled");
    maybe_enqueue(t);
    dispatch_all();
    return;
  }
  --in_flight_[t];

  // Transient-error injection: blanket probability composed with any
  // fault-plan window covering this worker right now.
  const double window_p = plan_.max_magnitude(
      FaultKind::kTransientError, static_cast<int>(w), sim_.now());
  const double p =
      1.0 - (1.0 - opt_.failure_probability) * (1.0 - window_p);
  if (p > 0.0 && rng_.bernoulli(p)) {
    trace("fail", t, w);
    emit_task_span(exec, t, w, "transient-fail");
    emit_instant("fail", "resilience", t, w);
    on_failure(t, w);
    dispatch_all();
    return;
  }

  done_[t] = 1;
  ++done_count_;
  ++out_.tasks_completed;
  ++epoch_[t];  // cancels any other in-flight copy
  output_worker_[t] = w;
  output_lost_[t] = 0;
  out_.assignment[t] = w;
  out_.makespan_us = std::max(out_.makespan_us, sim_.now());
  if (speculative && spec_launched_[t] != 0) ++out_.speculative_wins;
  trace("complete", t, w);
  emit_task_span(exec, t, w, "ok");
  if (plane_mode()) {
    // The output is born on w; the plane shards and replicates it.
    plane_->put(static_cast<data::ObjectId>(t), output_bytes_[t], w,
                graph_.task(t).name);
    if (prefetcher_ != nullptr) run_prefetch(t);
  }
  note_progress(t);
  for (std::size_t s : succ_[t]) {
    if (missing_[s] > 0 && --missing_[s] == 0) maybe_enqueue(s);
  }
  dispatch_all();
}

void ChaosSim::on_failure(std::size_t t, std::size_t w) {
  ++attempts_[t];
  if (attempts_[t] > opt_.max_retries) {
    if (opt_.abort_on_retry_exhaustion) {
      aborted_ = true;
      fatal_ = ResourceExhausted("task '" + graph_.task(t).name +
                                 "' exceeded retry budget");
      return;
    }
    trace("exhausted", t, w);
    emit_instant("exhausted", "resilience", t, w);
    mark_failed_closure(t);
    return;
  }
  ++out_.retries;
  backoff_pending_[t] = 1;
  if (opt_.retry_strategy == RetryStrategy::kAnyHealthy) {
    avoid_worker_[t] = static_cast<int>(w);
  }
  const double delay = opt_.retry.delay_us(attempts_[t], rng_);
  sim_.schedule(delay, [this, t, w] { release_retry(t, w); });
}

void ChaosSim::release_retry(std::size_t t, std::size_t failed_worker) {
  if (aborted_) return;
  backoff_pending_[t] = 0;
  if (done_[t] != 0 || failed_[t] != 0 || missing_[t] > 0 ||
      in_flight_[t] > 0) {
    return;  // state moved on (e.g. recomputation re-blocked it)
  }
  trace("retry", t, failed_worker);
  emit_instant("retry", "resilience", t, failed_worker,
               {{"attempt", std::to_string(attempts_[t])}});
  if (opt_.retry_strategy == RetryStrategy::kSameWorker) {
    // Naive pinning: back onto the failing worker's own queue.
    switch (opt_.scheduler) {
      case SchedulerKind::kFifo:
        central_.push_front(t);
        break;
      case SchedulerKind::kWorkStealing:
        local_[failed_worker].push_front(t);
        break;
      case SchedulerKind::kHeft:
        heft_assignment_[t] = failed_worker;
        heft_ready_[failed_worker].push_back(t);
        break;
    }
  } else {
    // Eligible on any healthy worker, steered away from the one that
    // just failed it.
    switch (opt_.scheduler) {
      case SchedulerKind::kFifo:
        central_.push_back(t);
        break;
      case SchedulerKind::kWorkStealing:
        local_[healthiest_worker(failed_worker)].push_back(t);
        break;
      case SchedulerKind::kHeft: {
        heft_assignment_[t] = healthiest_worker(failed_worker);
        enqueue_ready(t);
        break;
      }
    }
  }
  dispatch_all();
}

void ChaosSim::mark_failed_closure(std::size_t t) {
  // The task and every transitive successor can never complete.
  std::deque<std::size_t> frontier{t};
  while (!frontier.empty()) {
    const std::size_t u = frontier.front();
    frontier.pop_front();
    if (failed_[u] != 0 || done_[u] != 0) continue;
    failed_[u] = 1;
    ++failed_count_;
    ++out_.tasks_failed;
    ++epoch_[u];
    for (std::size_t s : succ_[u]) frontier.push_back(s);
  }
}

void ChaosSim::crash(std::size_t w, double downtime_us) {
  if (aborted_ || alive_[w] == 0) return;
  alive_[w] = 0;
  busy_[w] = 0;
  ++worker_epoch_[w];
  trace("crash", kNone, w);
  emit_instant("crash", "resilience", kNone, w,
               {{"worker", workers_[w].name}});

  Outage outage;
  outage.worker = w;
  outage.crash_us = sim_.now();
  const RunningTask lost = running_on_[w];
  running_on_[w] = RunningTask{};
  if (lost.task != kNone && done_[lost.task] == 0 &&
      epoch_[lost.task] == lost.task_epoch) {
    --in_flight_[lost.task];
    ++out_.lost_executions;
    outage.pending.insert(lost.task);
    trace("lost", lost.task, w);
    emit_instant("lost", "resilience", lost.task, w);
  }
  // Stored outputs on this worker are gone; the lineage pass at recovery
  // decides which of them must be recomputed.
  if (plane_mode()) {
    // The plane knows exactly which shards died. Objects with a
    // surviving replica repoint their reads; only objects whose last
    // replica vanished (version bumped) feed the lineage recompute.
    plane_->invalidate_node(w);
    for (std::size_t t = 0; t < graph_.size(); ++t) {
      if (done_[t] == 0 || output_worker_[t] != w) continue;
      auto holder = plane_->primary_node(static_cast<data::ObjectId>(t));
      if (holder.ok()) {
        output_worker_[t] = holder.value();
      } else {
        output_lost_[t] = 1;
      }
    }
  } else {
    for (std::size_t t = 0; t < graph_.size(); ++t) {
      if (done_[t] != 0 && output_worker_[t] == w) output_lost_[t] = 1;
    }
  }
  outages_.push_back(std::move(outage));
  sim_.schedule(downtime_us, [this, w] { restart(w); });
}

void ChaosSim::restart(std::size_t w) {
  if (aborted_) return;
  if (plane_mode()) plane_->restore_node(w);  // rejoins empty
  alive_[w] = 1;
  busy_[w] = 0;
  worker_now_[w] = sim_.now();
  registry_.heartbeat(w, sim_.now());  // announces itself: healthy again
  trace("restart", kNone, w);
  emit_instant("restart", "resilience", kNone, w,
               {{"worker", workers_[w].name}});
  // If the phi detector has not noticed the outage yet, the returning
  // worker's own report triggers recovery (it lost its state either way).
  for (Outage& o : outages_) {
    if (o.worker == w && !o.initiated) initiate_recovery(o);
  }
  dispatch_all();
}

void ChaosSim::initiate_recovery(Outage& outage) {
  outage.initiated = true;
  out_.detection_latency_us.push_back(sim_.now() - outage.crash_us);
  trace("detect", kNone, outage.worker);
  emit_instant("detect", "resilience", kNone, outage.worker,
               {{"latency_us",
                 std::to_string(sim_.now() - outage.crash_us)}});

  // Lineage: which lost data objects must be rebuilt?
  const auto rec = resilience::recompute_closure(deps_, done_, output_lost_);
  for (std::size_t t : rec) {
    done_[t] = 0;
    --done_count_;
    --out_.tasks_completed;
    ++out_.recomputed_tasks;
    ++epoch_[t];
    output_lost_[t] = 0;
    output_worker_[t] = kNone;
    outage.pending.insert(t);
    trace("recompute", t, outage.worker);
    emit_instant("recompute", "resilience", t, outage.worker);
  }
  // Rebuild dependency counts for everything not finished (recomputation
  // may have re-blocked arbitrary tasks).
  for (std::size_t t = 0; t < graph_.size(); ++t) {
    if (done_[t] != 0) continue;
    std::size_t miss = 0;
    for (std::size_t d : deps_[t]) miss += done_[d] == 0 ? 1 : 0;
    missing_[t] = miss;
  }
  // A dead HEFT worker's private ready queue must move to the living.
  if (opt_.scheduler == SchedulerKind::kHeft) {
    auto pending = std::move(heft_ready_[outage.worker]);
    heft_ready_[outage.worker].clear();
    for (std::size_t t : pending) {
      if (!runnable(t)) continue;
      heft_assignment_[t] = healthiest_worker(outage.worker);
      enqueue_ready(t);
    }
  }
  for (std::size_t t = 0; t < graph_.size(); ++t) maybe_enqueue(t);

  if (outage.pending.empty() && !outage.recovery_recorded) {
    outage.recovery_recorded = true;
    out_.recovery_us.push_back(sim_.now() - outage.crash_us);
  }
  dispatch_all();
}

void ChaosSim::check_stragglers() {
  if (opt_.speculation_factor <= 0.0) return;
  const double now = sim_.now();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (alive_[w] == 0 || busy_[w] == 0) continue;
    const RunningTask& r = running_on_[w];
    if (r.task == kNone || done_[r.task] != 0 || in_flight_[r.task] != 1) {
      continue;
    }
    if (now - r.start_us <= opt_.speculation_factor * r.est_us) continue;
    // Back it up on an idle healthy worker; first completion wins.
    for (std::size_t v = 0; v < workers_.size(); ++v) {
      if (v == w || busy_[v] != 0 || !dispatchable(v)) continue;
      spec_launched_[r.task] = 1;
      ++out_.speculative_launches;
      dispatch_task(r.task, v, /*speculative=*/true);
      break;
    }
  }
}

void ChaosSim::heartbeat_tick() {
  if (aborted_ || terminal()) return;
  const double now = sim_.now();
  for (std::size_t w = 0; w < workers_.size(); ++w) {
    if (alive_[w] != 0) registry_.heartbeat(w, now);
  }
  for (std::size_t w : registry_.update(now)) {
    for (Outage& o : outages_) {
      if (o.worker == w && !o.initiated) initiate_recovery(o);
    }
  }
  check_stragglers();
  dispatch_all();
  sim_.schedule(opt_.heartbeat_interval_us, [this] { heartbeat_tick(); });
}

Result<ScheduleOutcome> ChaosSim::run() {
  EVEREST_RETURN_IF_ERROR(graph_.validate());
  if (workers_.empty()) return InvalidArgument("no workers");
  const std::size_t n = graph_.size();
  const std::size_t m = workers_.size();
  out_.busy_us.assign(m, 0.0);
  out_.assignment.assign(n, kNone);
  if (n == 0) return out_;

  succ_ = graph_.successors();
  deps_.resize(n);
  for (std::size_t i = 0; i < n; ++i) deps_[i] = graph_.task(i).deps;
  missing_.resize(n);
  for (std::size_t i = 0; i < n; ++i) missing_[i] = deps_[i].size();
  done_.assign(n, 0);
  failed_.assign(n, 0);
  output_lost_.assign(n, 0);
  backoff_pending_.assign(n, 0);
  spec_launched_.assign(n, 0);
  output_worker_.assign(n, kNone);
  avoid_worker_.assign(n, -1);
  attempts_.assign(n, 0);
  epoch_.assign(n, 0);
  in_flight_.assign(n, 0);

  alive_.assign(m, 1);
  busy_.assign(m, 0);
  worker_epoch_.assign(m, 0);
  worker_now_.assign(m, 0.0);
  running_on_.assign(m, RunningTask{});
  local_.resize(m);
  heft_ready_.resize(m);

  output_bytes_.resize(n);
  for (std::size_t i = 0; i < n; ++i) {
    output_bytes_[i] = graph_.task(i).output_bytes;
  }
  if (opt_.data_plane != nullptr) {
    data::PlaneConfig cfg = *opt_.data_plane;
    cfg.num_nodes = m;
    // Transfer spans land in the same trace as the task spans.
    if (opt_.tracer != nullptr) cfg.tracer = opt_.tracer;
    plane_ = std::make_unique<data::DataPlane>(sim_, cfg);
    if (opt_.prefetch_depth > 0) {
      data::PrefetchConfig pf;
      pf.depth = opt_.prefetch_depth;
      prefetcher_ = std::make_unique<data::Prefetcher>(deps_, pf);
    }
  }

  heft_position_.assign(n, 0);
  if (opt_.scheduler == SchedulerKind::kHeft) {
    heft_plan(graph_, workers_, &heft_assignment_, &heft_order_);
    for (std::size_t i = 0; i < n; ++i) heft_position_[heft_order_[i]] = i;
  }

  // Arm the fault plan: crashes are events; window faults (degrade,
  // partition, straggler, transient) are queried on demand.
  for (const resilience::FaultEvent& e : plan_.events()) {
    if (e.kind != FaultKind::kNodeCrash) continue;
    if (e.target < 0 || static_cast<std::size_t>(e.target) >= m) continue;
    sim_.schedule(e.at_us, [this, w = static_cast<std::size_t>(e.target),
                            d = e.duration_us] { crash(w, d); });
  }
  if (chaos_enabled()) {
    for (std::size_t w = 0; w < m; ++w) registry_.heartbeat(w, 0.0);
    sim_.schedule(opt_.heartbeat_interval_us, [this] { heartbeat_tick(); });
  }

  for (std::size_t i = 0; i < n; ++i) maybe_enqueue(i);
  sim_.schedule(0, [this] { dispatch_all(); });
  sim_.run();

  if (aborted_) return fatal_;
  if (done_count_ + failed_count_ < n) {
    return Internal("scheduler deadlock: " +
                    std::to_string(n - done_count_ - failed_count_) +
                    " tasks unresolved");
  }

  double mean = 0.0;
  for (double b : out_.busy_us) {
    mean += out_.makespan_us > 0 ? b / out_.makespan_us : 0.0;
  }
  out_.mean_utilization = mean / static_cast<double>(m);
  if (plane_mode()) {
    out_.plane = plane_->stats();
    out_.bytes_transferred =
        out_.plane.bytes_fetched + out_.plane.bytes_replicated;
  }
  return std::move(out_);
}

}  // namespace

Result<ScheduleOutcome> simulate_schedule(
    const TaskGraph& graph, const std::vector<WorkerSpec>& workers,
    const SimulationOptions& options) {
  ChaosSim sim(graph, workers, options);
  return sim.run();
}

}  // namespace everest::workflow
