#include "workflow/scheduler.hpp"

#include <algorithm>
#include <deque>
#include <limits>
#include <queue>

namespace everest::workflow {

std::string_view to_string(SchedulerKind kind) {
  switch (kind) {
    case SchedulerKind::kFifo: return "fifo";
    case SchedulerKind::kHeft: return "heft";
    case SchedulerKind::kWorkStealing: return "work-stealing";
  }
  return "?";
}

std::vector<WorkerSpec> workers_from_platform(
    const platform::PlatformSpec& spec) {
  std::vector<WorkerSpec> workers;
  for (const platform::NodeSpec& node : spec.nodes) {
    WorkerSpec w;
    w.name = node.name;
    w.gflops = node.cpu.peak_gflops_per_core * node.cpu.cores * 0.6;
    const bool cloud = node.tier == platform::Tier::kCloud;
    w.link_gbps = cloud ? spec.intra_dc.bandwidth_gbps
                        : spec.edge_uplink.bandwidth_gbps;
    w.link_latency_us =
        cloud ? spec.intra_dc.latency_us : spec.edge_uplink.latency_us;
    workers.push_back(std::move(w));
  }
  return workers;
}

namespace {

constexpr std::size_t kNone = static_cast<std::size_t>(-1);

double compute_us(const TaskNode& task, const WorkerSpec& worker) {
  return task.flops / (worker.gflops * 1e3);  // GFLOP/s → FLOP/us
}

/// Transfer time for pulling all dep outputs produced on other workers.
/// Fetches overlap, so the cost is the slowest single fetch.
double transfer_us(const TaskGraph& graph, const TaskNode& task,
                   std::size_t target_worker,
                   const std::vector<std::size_t>& assignment,
                   const std::vector<WorkerSpec>& workers,
                   double* bytes_moved) {
  double worst = 0.0;
  for (std::size_t dep : task.deps) {
    if (assignment[dep] == target_worker || assignment[dep] == kNone) continue;
    const WorkerSpec& w = workers[target_worker];
    const double bytes = graph.task(dep).output_bytes;
    worst = std::max(worst,
                     w.link_latency_us + bytes / (w.link_gbps * 1e3));
    if (bytes_moved != nullptr) *bytes_moved += bytes;
  }
  return worst;
}

/// HEFT: upward ranks, then min-EFT worker per task in rank order.
/// Returns per-task assignment and a priority order.
void heft_plan(const TaskGraph& graph, const std::vector<WorkerSpec>& workers,
               std::vector<std::size_t>* assignment,
               std::vector<std::size_t>* order) {
  const std::size_t n = graph.size();
  double mean_gflops = 0.0;
  for (const WorkerSpec& w : workers) mean_gflops += w.gflops;
  mean_gflops /= static_cast<double>(workers.size());
  double mean_gbps = 0.0, mean_lat = 0.0;
  for (const WorkerSpec& w : workers) {
    mean_gbps += w.link_gbps;
    mean_lat += w.link_latency_us;
  }
  mean_gbps /= static_cast<double>(workers.size());
  mean_lat /= static_cast<double>(workers.size());

  const auto succ = graph.successors();
  std::vector<double> rank(n, 0.0);
  for (std::size_t i = n; i-- > 0;) {
    const TaskNode& task = graph.task(i);
    const double w_avg = task.flops / (mean_gflops * 1e3);
    double best_succ = 0.0;
    for (std::size_t s : succ[i]) {
      const double comm =
          mean_lat + task.output_bytes / (mean_gbps * 1e3);
      best_succ = std::max(best_succ, comm + rank[s]);
    }
    rank[i] = w_avg + best_succ;
  }
  order->resize(n);
  for (std::size_t i = 0; i < n; ++i) (*order)[i] = i;
  std::stable_sort(order->begin(), order->end(),
                   [&](std::size_t a, std::size_t b) {
                     return rank[a] > rank[b];
                   });

  // Min-EFT placement.
  assignment->assign(n, kNone);
  std::vector<double> worker_free(workers.size(), 0.0);
  std::vector<double> finish(n, 0.0);
  for (std::size_t t : *order) {
    const TaskNode& task = graph.task(t);
    double best_eft = std::numeric_limits<double>::infinity();
    std::size_t best_worker = 0;
    for (std::size_t w = 0; w < workers.size(); ++w) {
      double data_ready = 0.0;
      for (std::size_t dep : task.deps) {
        double arrive = finish[dep];
        if ((*assignment)[dep] != w) {
          arrive += workers[w].link_latency_us +
                    graph.task(dep).output_bytes /
                        (workers[w].link_gbps * 1e3);
        }
        data_ready = std::max(data_ready, arrive);
      }
      const double start = std::max(worker_free[w], data_ready);
      const double eft = start + compute_us(task, workers[w]);
      if (eft < best_eft) {
        best_eft = eft;
        best_worker = w;
      }
    }
    (*assignment)[t] = best_worker;
    finish[t] = best_eft;
    worker_free[best_worker] = best_eft;
  }
}

}  // namespace

Result<ScheduleOutcome> simulate_schedule(
    const TaskGraph& graph, const std::vector<WorkerSpec>& workers,
    const SimulationOptions& options) {
  EVEREST_RETURN_IF_ERROR(graph.validate());
  if (workers.empty()) return InvalidArgument("no workers");
  const std::size_t n = graph.size();
  ScheduleOutcome outcome;
  outcome.busy_us.assign(workers.size(), 0.0);
  outcome.assignment.assign(n, kNone);
  if (n == 0) return outcome;

  Rng rng(options.seed);
  const auto succ = graph.successors();

  // HEFT precomputes a static plan; FIFO/WS decide online.
  std::vector<std::size_t> heft_assignment, heft_order;
  std::vector<std::size_t> heft_position(n, 0);
  if (options.scheduler == SchedulerKind::kHeft) {
    heft_plan(graph, workers, &heft_assignment, &heft_order);
    for (std::size_t i = 0; i < n; ++i) heft_position[heft_order[i]] = i;
  }

  std::vector<std::size_t> missing_deps(n);
  for (std::size_t i = 0; i < n; ++i) missing_deps[i] = graph.task(i).deps.size();
  std::vector<double> finish(n, 0.0);
  std::vector<int> attempts(n, 0);

  // Ready containers.
  // FIFO: one central deque. WS: per-worker deques (locality placement).
  // HEFT: per-worker sets ordered by rank position.
  std::deque<std::size_t> central;
  std::vector<std::deque<std::size_t>> local(workers.size());
  auto heft_cmp = [&](std::size_t a, std::size_t b) {
    return heft_position[a] > heft_position[b];
  };
  std::vector<std::priority_queue<std::size_t, std::vector<std::size_t>,
                                  decltype(heft_cmp)>>
      heft_ready(workers.size(),
                 std::priority_queue<std::size_t, std::vector<std::size_t>,
                                     decltype(heft_cmp)>(heft_cmp));

  auto locality_worker = [&](std::size_t task) -> std::size_t {
    // Place where the biggest input lives; round-robin for roots.
    double best_bytes = -1.0;
    std::size_t best = task % workers.size();
    for (std::size_t dep : graph.task(task).deps) {
      if (outcome.assignment[dep] == kNone) continue;
      if (graph.task(dep).output_bytes > best_bytes) {
        best_bytes = graph.task(dep).output_bytes;
        best = outcome.assignment[dep];
      }
    }
    return best;
  };

  auto enqueue_ready = [&](std::size_t task) {
    switch (options.scheduler) {
      case SchedulerKind::kFifo:
        central.push_back(task);
        break;
      case SchedulerKind::kWorkStealing:
        local[locality_worker(task)].push_back(task);
        break;
      case SchedulerKind::kHeft:
        heft_ready[heft_assignment[task]].push(task);
        break;
    }
  };
  for (std::size_t i = 0; i < n; ++i) {
    if (missing_deps[i] == 0) enqueue_ready(i);
  }

  // Event loop over worker completions.
  struct Completion {
    double time;
    std::size_t worker;
    std::size_t task;
    bool operator>(const Completion& other) const {
      if (time != other.time) return time > other.time;
      return task > other.task;
    }
  };
  std::priority_queue<Completion, std::vector<Completion>, std::greater<>>
      running;
  std::vector<bool> busy(workers.size(), false);
  std::vector<double> worker_now(workers.size(), 0.0);
  double now = 0.0;
  std::size_t completed = 0;

  auto try_dispatch = [&](std::size_t w) -> bool {
    if (busy[w]) return false;
    std::size_t task = kNone;
    switch (options.scheduler) {
      case SchedulerKind::kFifo:
        if (!central.empty()) {
          task = central.front();
          central.pop_front();
        }
        break;
      case SchedulerKind::kWorkStealing: {
        if (!local[w].empty()) {
          task = local[w].front();
          local[w].pop_front();
        } else {
          // Steal from the longest queue.
          std::size_t victim = kNone, longest = 0;
          for (std::size_t v = 0; v < workers.size(); ++v) {
            if (local[v].size() > longest) {
              longest = local[v].size();
              victim = v;
            }
          }
          if (victim != kNone) {
            task = local[victim].back();
            local[victim].pop_back();
          }
        }
        break;
      }
      case SchedulerKind::kHeft:
        if (!heft_ready[w].empty()) {
          task = heft_ready[w].top();
          heft_ready[w].pop();
        }
        break;
    }
    if (task == kNone) return false;
    outcome.assignment[task] = w;
    double moved = 0.0;
    const double xfer = transfer_us(graph, graph.task(task), w,
                                    outcome.assignment, workers, &moved);
    outcome.bytes_transferred += moved;
    const double exec = compute_us(graph.task(task), workers[w]);
    const double start = std::max(now, worker_now[w]);
    const double end = start + xfer + exec;
    outcome.busy_us[w] += exec;
    worker_now[w] = end;
    busy[w] = true;
    ++outcome.executions;
    running.push({end, w, task});
    return true;
  };

  auto dispatch_all = [&] {
    bool progress = true;
    while (progress) {
      progress = false;
      for (std::size_t w = 0; w < workers.size(); ++w) {
        progress |= try_dispatch(w);
      }
    }
  };

  dispatch_all();
  while (completed < n) {
    if (running.empty()) {
      return Internal("scheduler deadlock: no running task but " +
                      std::to_string(n - completed) + " remain");
    }
    const Completion done = running.top();
    running.pop();
    now = done.time;
    busy[done.worker] = false;
    const bool failed = options.failure_probability > 0 &&
                        rng.bernoulli(options.failure_probability);
    if (failed) {
      if (++attempts[done.task] > options.max_retries) {
        return ResourceExhausted("task '" + graph.task(done.task).name +
                                 "' exceeded retry budget");
      }
      // Retry on the same worker.
      switch (options.scheduler) {
        case SchedulerKind::kFifo: central.push_front(done.task); break;
        case SchedulerKind::kWorkStealing:
          local[done.worker].push_front(done.task);
          break;
        case SchedulerKind::kHeft: heft_ready[done.worker].push(done.task); break;
      }
    } else {
      finish[done.task] = now;
      ++completed;
      outcome.makespan_us = std::max(outcome.makespan_us, now);
      for (std::size_t s : succ[done.task]) {
        if (--missing_deps[s] == 0) enqueue_ready(s);
      }
    }
    dispatch_all();
  }

  double mean = 0.0;
  for (double b : outcome.busy_us) {
    mean += outcome.makespan_us > 0 ? b / outcome.makespan_us : 0.0;
  }
  outcome.mean_utilization = mean / static_cast<double>(workers.size());
  return outcome;
}

}  // namespace everest::workflow
