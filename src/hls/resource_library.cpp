#include "hls/resource_library.hpp"

namespace everest::hls {

const OpProfile& profile_for(OpClass cls) {
  // f64 datapath profiles: latency/area in line with vendor floating-point
  // core datasheets at ~250 MHz.
  static const OpProfile kAdd{OpClass::kAdd, 3, 1, 3.2, 700, 900, 3, 18.0};
  static const OpProfile kMul{OpClass::kMul, 4, 1, 3.5, 250, 420, 11, 35.0};
  static const OpProfile kDiv{OpClass::kDiv, 28, 1, 3.8, 3200, 3600, 0, 120.0};
  static const OpProfile kSpecial{OpClass::kSpecial, 22, 1, 3.6, 2600, 2900,
                                  9, 95.0};
  static const OpProfile kLoad{OpClass::kLoad, 2, 1, 2.4, 60, 80, 0, 12.0};
  static const OpProfile kStore{OpClass::kStore, 1, 1, 2.4, 40, 60, 0, 12.0};
  static const OpProfile kCast{OpClass::kCast, 1, 1, 1.8, 90, 120, 0, 4.0};
  static const OpProfile kLogic{OpClass::kLogic, 1, 1, 1.5, 30, 40, 0, 2.0};
  switch (cls) {
    case OpClass::kAdd: return kAdd;
    case OpClass::kMul: return kMul;
    case OpClass::kDiv: return kDiv;
    case OpClass::kSpecial: return kSpecial;
    case OpClass::kLoad: return kLoad;
    case OpClass::kStore: return kStore;
    case OpClass::kCast: return kCast;
    case OpClass::kLogic: return kLogic;
  }
  return kLogic;
}

OpClass classify_op(std::string_view op_name, std::string_view detail) {
  if (op_name == "kernel.load") return OpClass::kLoad;
  if (op_name == "kernel.store") return OpClass::kStore;
  if (op_name == "kernel.cast") return OpClass::kCast;
  if (op_name == "kernel.binop") {
    if (detail == "mul") return OpClass::kMul;
    if (detail == "div") return OpClass::kDiv;
    if (detail == "and" || detail == "or" || detail == "xor" ||
        detail == "mod") {
      return OpClass::kLogic;
    }
    return OpClass::kAdd;  // add/sub/min/max/cmp share the adder class
  }
  if (op_name == "kernel.unop") {
    if (detail == "neg" || detail == "abs") return OpClass::kAdd;
    return OpClass::kSpecial;
  }
  if (op_name == "builtin.constant") return OpClass::kLogic;
  return OpClass::kLogic;
}

FpgaDevice FpgaDevice::cloudfpga_ku060() {
  FpgaDevice d;
  d.name = "cloudFPGA-KU060";
  d.luts = 331000;
  d.ffs = 663000;
  d.dsps = 2760;
  d.bram_kib = 38000;
  d.bram_blocks = 1080;
  d.max_fmax_mhz = 250.0;
  d.static_power_w = 8.0;
  d.dynamic_scale = 1.0;
  return d;
}

FpgaDevice FpgaDevice::p9_vu9p() {
  FpgaDevice d;
  d.name = "P9-VU9P";
  d.luts = 1182000;
  d.ffs = 2364000;
  d.dsps = 6840;
  d.bram_kib = 75900;
  d.bram_blocks = 2160;
  d.max_fmax_mhz = 300.0;
  d.static_power_w = 20.0;
  d.dynamic_scale = 1.0;
  return d;
}

FpgaDevice FpgaDevice::edge_zu7ev() {
  FpgaDevice d;
  d.name = "Edge-ZU7EV";
  d.luts = 230000;
  d.ffs = 461000;
  d.dsps = 1728;
  d.bram_kib = 11000;
  d.bram_blocks = 312;
  d.max_fmax_mhz = 200.0;
  d.static_power_w = 3.0;
  d.dynamic_scale = 0.8;  // smaller process node configuration
  return d;
}

}  // namespace everest::hls
