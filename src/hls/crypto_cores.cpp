#include "hls/crypto_cores.hpp"

#include <algorithm>

namespace everest::hls {

const std::vector<CryptoCore>& crypto_core_catalog() {
  // Design points in line with published AES-GCM / SHA-256 FPGA
  // implementations: x1 = iterative, x2/x4 = partially/fully unrolled
  // rounds, wide = multi-lane.
  static const std::vector<CryptoCore> kCatalog = {
      {"aes128-ctr-x1", "aes128-ctr", 1.6, 44, 3200, 2900, 2, 28.0},
      {"aes128-ctr-x4", "aes128-ctr", 6.4, 14, 11800, 9800, 8, 24.0},
      {"aes128-gcm-x1", "aes128-gcm", 1.45, 60, 5200, 4700, 4, 36.0},
      {"aes128-gcm-x2", "aes128-gcm", 2.9, 36, 9400, 8600, 8, 33.0},
      {"aes128-gcm-x4", "aes128-gcm", 5.8, 22, 17600, 16100, 16, 31.0},
      {"aes128-gcm-wide", "aes128-gcm", 11.6, 22, 34100, 31500, 32, 30.0},
      {"sha256-x1", "sha256", 0.94, 68, 2300, 2100, 1, 18.0},
      {"sha256-x2", "sha256", 1.88, 36, 4300, 3900, 2, 16.5},
  };
  return kCatalog;
}

Result<CryptoCore> select_crypto_core(const std::string& algo,
                                      double min_throughput_mbps,
                                      double clock_mhz) {
  const CryptoCore* best = nullptr;
  for (const CryptoCore& core : crypto_core_catalog()) {
    if (core.algo != algo) continue;
    if (core.throughput_mbps(clock_mhz) < min_throughput_mbps) continue;
    if (best == nullptr || core.luts < best->luts) best = &core;
  }
  if (best == nullptr) {
    return NotFound("no '" + algo + "' core sustains " +
                    std::to_string(min_throughput_mbps) + " MB/s at " +
                    std::to_string(clock_mhz) + " MHz");
  }
  return *best;
}

Result<CryptoCore> select_crypto_core_best_effort(const std::string& algo,
                                                  double min_throughput_mbps,
                                                  double clock_mhz) {
  auto exact = select_crypto_core(algo, min_throughput_mbps, clock_mhz);
  if (exact.ok()) return exact;
  const CryptoCore* fastest = nullptr;
  for (const CryptoCore& core : crypto_core_catalog()) {
    if (core.algo != algo) continue;
    if (fastest == nullptr || core.bytes_per_cycle > fastest->bytes_per_cycle) {
      fastest = &core;
    }
  }
  if (fastest == nullptr) {
    return NotFound("unknown crypto algorithm '" + algo + "'");
  }
  return *fastest;
}

}  // namespace everest::hls
