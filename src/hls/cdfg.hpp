// CDFG extraction: turns a kernel-dialect loop nest into the data-flow graph
// plus memory-access summary the HLS scheduler consumes.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/graph.hpp"
#include "common/status.hpp"
#include "hls/resource_library.hpp"
#include "ir/module.hpp"

namespace everest::hls {

/// One loop of a perfect nest (outer → inner order in KernelLoopNest).
struct LoopInfo {
  std::int64_t lb = 0;
  std::int64_t ub = 0;
  std::int64_t step = 1;
  [[nodiscard]] std::int64_t trip_count() const {
    return step > 0 ? (ub - lb + step - 1) / step : 0;
  }
};

/// Linear index expression a*i + b with respect to the innermost induction
/// variable i. Contributions from outer induction variables are summarized
/// by `outer_terms` (true if any outer var participates); their value is
/// constant within one innermost-loop execution.
struct AffineIndex {
  std::int64_t coeff = 0;   // multiplier of the innermost var
  std::int64_t constant = 0;
  bool outer_terms = false;
  bool analyzable = true;   // false: index not affine in the induction vars
};

/// One memory access in the innermost body.
struct MemAccess {
  std::string array;     // stable name: "argN" or "allocN"
  bool is_store = false;
  AffineIndex index;     // flattened (row-major) linear index
  std::size_t node;      // DFG node id
  std::int64_t array_elems = 0;  // total elements of the memref
  /// Where the array lives: kOnChip arrays consume BRAM; others stream
  /// from off-chip through the load/store units.
  ir::MemorySpace space = ir::MemorySpace::kDefault;
};

/// One DFG node (an operation of the innermost body).
struct DfgNode {
  const ir::Operation* op = nullptr;
  OpClass cls = OpClass::kLogic;
  /// True for index-arithmetic that compiles to address generation (free
  /// relative to the datapath; still scheduled, with kLogic cost).
  bool address_only = false;
};

/// A perfect loop nest with its innermost-body DFG.
struct KernelLoopNest {
  std::vector<LoopInfo> loops;  // outer → inner
  std::vector<DfgNode> nodes;
  Digraph deps;                 // data + memory-ordering dependencies
  std::vector<MemAccess> accesses;

  [[nodiscard]] std::int64_t innermost_trip() const {
    return loops.empty() ? 1 : loops.back().trip_count();
  }
  [[nodiscard]] std::int64_t outer_iterations() const {
    std::int64_t n = 1;
    for (std::size_t i = 0; i + 1 < loops.size(); ++i) {
      n *= loops[i].trip_count();
    }
    return n;
  }
  /// Ops per class in one innermost iteration.
  [[nodiscard]] std::map<OpClass, int> op_histogram() const;
};

/// Extracts every top-level loop nest of a kernel function. Non-loop ops at
/// function scope (constants, returns) are ignored; a function with no loops
/// yields an empty vector.
Result<std::vector<KernelLoopNest>> extract_loop_nests(ir::Function& fn);

}  // namespace everest::hls
