#include "hls/hls.hpp"

#include <algorithm>
#include <cmath>

#include "common/strings.hpp"

namespace everest::hls {

std::string HlsConfig::summary() const {
  std::string out = strprintf("unroll=%d ports=%d clk=%.0fMHz", unroll,
                              mem_ports_per_array, clock_mhz);
  if (enable_dift) out += " +dift";
  if (!encrypt_offchip.empty()) out += " +" + encrypt_offchip;
  return out;
}

double ResourceUsage::utilization(const FpgaDevice& device) const {
  double u = 0.0;
  if (device.luts > 0) u = std::max(u, double(luts) / double(device.luts));
  if (device.ffs > 0) u = std::max(u, double(ffs) / double(device.ffs));
  if (device.dsps > 0) u = std::max(u, double(dsps) / double(device.dsps));
  if (device.bram_blocks > 0) {
    u = std::max(u, double(brams) / double(device.bram_blocks));
  }
  return u;
}

namespace {

/// TaintHLS-calibrated DIFT overhead knobs (Pilato et al., TCAD'19 report
/// single-digit-% area and negligible latency overhead for shadow logic).
constexpr double kDiftLutPerUnitFraction = 0.08;
constexpr int kDiftExtraDepth = 2;
constexpr double kDiftEnergyFraction = 0.05;

struct NestCost {
  NestReport report;
  ResourceUsage resources;
  double dynamic_energy_pj = 0.0;
  double max_delay_ns = 0.0;
};

Result<NestCost> cost_nest(const KernelLoopNest& nest, const HlsConfig& config,
                           const FpgaDevice& device) {
  NestCost out;
  out.report.loops = nest.loops;

  const int unroll =
      std::max<int>(1, std::min<std::int64_t>(config.unroll,
                                              nest.innermost_trip()));
  // Memory partitioning sized for the unrolled access group.
  out.report.banking = plan_partitioning(nest, unroll, config.max_banks);

  ResourceConstraints constraints;
  constraints.max_units = config.max_units;
  constraints.mem_ports_per_array = config.mem_ports_per_array;
  EVEREST_ASSIGN_OR_RETURN(Schedule schedule,
                           list_schedule(nest, constraints));
  out.report.depth = schedule.length;

  IiAnalysis ii = analyze_ii(nest, constraints, out.report.banking);
  // Unrolled copies contend for banks: re-run the memory analysis with the
  // unroll factor to get the group II.
  for (const auto& [array, banking] : out.report.banking.arrays) {
    const ConflictReport report =
        analyze_conflicts(nest, array, banking, unroll);
    ii.memory_mii = std::max(ii.memory_mii, report.required_ii);
  }
  out.report.ii = ii;

  // Cycles: pipeline fill + one II per (grouped) iteration.
  const std::int64_t groups =
      (nest.innermost_trip() + unroll - 1) / std::max(1, unroll);
  const std::int64_t inner_cycles =
      schedule.length +
      static_cast<std::int64_t>(ii.ii()) * std::max<std::int64_t>(0, groups - 1);
  out.report.cycles = inner_cycles * nest.outer_iterations();

  // Units: one set per unrolled copy.
  for (const auto& [cls, count] : schedule.units) {
    out.report.units[cls] = count * unroll;
  }

  // Area: functional units + registers + banking BRAM.
  Binding binding = bind(nest, schedule);
  for (const auto& [cls, count] : out.report.units) {
    const OpProfile& p = profile_for(cls);
    out.resources.luts += std::int64_t(p.luts) * count;
    out.resources.ffs += std::int64_t(p.ffs) * count;
    out.resources.dsps += std::int64_t(p.dsps) * count;
    out.max_delay_ns = std::max(out.max_delay_ns, p.delay_ns);
  }
  out.resources.ffs += std::int64_t(binding.registers) * 64 * unroll;
  // BRAM is charged for on-chip arrays only; default/device-space memrefs
  // stream from off-chip through the load/store units.
  std::map<std::string, std::int64_t> array_elems;
  for (const MemAccess& acc : nest.accesses) {
    if (acc.space == ir::MemorySpace::kOnChip) {
      array_elems[acc.array] = acc.array_elems;
    }
  }
  for (const auto& [array, elems] : array_elems) {
    out.resources.brams +=
        bram_blocks_for(elems, /*elem_bytes=*/8, out.report.banking.of(array));
  }

  // Dynamic energy: every executed op pays its profile energy.
  const std::int64_t total_iters =
      nest.innermost_trip() * nest.outer_iterations();
  for (const auto& [cls, per_iter] : nest.op_histogram()) {
    out.dynamic_energy_pj += profile_for(cls).energy_pj *
                             static_cast<double>(per_iter) *
                             static_cast<double>(total_iters) *
                             device.dynamic_scale;
  }
  return out;
}

}  // namespace

Result<AcceleratorDesign> synthesize(ir::Function& fn, const HlsConfig& config,
                                     const FpgaDevice& device,
                                     std::int64_t offchip_bytes) {
  if (config.unroll < 1) {
    return InvalidArgument("unroll factor must be >= 1");
  }
  EVEREST_ASSIGN_OR_RETURN(std::vector<KernelLoopNest> nests,
                           extract_loop_nests(fn));
  if (nests.empty()) {
    return FailedPrecondition("function '" + fn.name() +
                              "' has no kernel loop nests to synthesize "
                              "(lower tensor ops to the kernel dialect first)");
  }
  AcceleratorDesign design;
  design.kernel = fn.name();
  design.config = config;
  design.device = device;

  double max_delay_ns = 0.0;
  double dynamic_energy_pj = 0.0;
  for (const KernelLoopNest& nest : nests) {
    EVEREST_ASSIGN_OR_RETURN(NestCost cost, cost_nest(nest, config, device));
    design.estimate.total_cycles += cost.report.cycles;
    design.estimate.resources += cost.resources;
    dynamic_energy_pj += cost.dynamic_energy_pj;
    max_delay_ns = std::max(max_delay_ns, cost.max_delay_ns);
    design.nests.push_back(std::move(cost.report));
  }

  // Clock: bounded by request, device ceiling, and datapath delay.
  double fmax = std::min(config.clock_mhz, device.max_fmax_mhz);
  if (max_delay_ns > 0.0) fmax = std::min(fmax, 1000.0 / max_delay_ns);
  design.estimate.fmax_mhz = fmax;

  // Security: DIFT shadow logic scales the datapath area and deepens the
  // pipeline slightly.
  if (config.enable_dift) {
    const auto base_luts = design.estimate.resources.luts;
    const auto extra =
        static_cast<std::int64_t>(std::ceil(base_luts * kDiftLutPerUnitFraction));
    design.estimate.resources.luts += extra;
    design.estimate.resources.ffs +=
        static_cast<std::int64_t>(std::ceil(extra * 0.6));
    design.security.dift_area_fraction =
        base_luts > 0 ? double(extra) / double(base_luts) : 0.0;
    design.security.dift_extra_depth = kDiftExtraDepth;
    design.estimate.total_cycles += kDiftExtraDepth;
    dynamic_energy_pj *= 1.0 + kDiftEnergyFraction;
  }

  design.estimate.latency_us =
      design.estimate.total_cycles / design.estimate.fmax_mhz;  // cycles/MHz=us
  design.estimate.dynamic_energy_uj = dynamic_energy_pj * 1e-6;

  // Off-chip encryption through a crypto core sized to keep up with the
  // accelerator's effective bandwidth demand.
  if (!config.encrypt_offchip.empty() && offchip_bytes > 0) {
    const double needed_mbps =
        design.estimate.latency_us > 0
            ? offchip_bytes / design.estimate.latency_us  // B/us == MB/s
            : 100.0;
    EVEREST_ASSIGN_OR_RETURN(
        CryptoCore core,
        select_crypto_core_best_effort(config.encrypt_offchip,
                                       needed_mbps * 0.5, fmax));
    design.security.crypto_core = core.name;
    design.security.crypto_resources = {core.luts, core.ffs, 0, core.brams};
    design.estimate.resources += design.security.crypto_resources;
    const double crypto_cycles =
        core.latency_cycles + double(offchip_bytes) / core.bytes_per_cycle;
    const double crypto_time_us = crypto_cycles / fmax;
    // Encryption overlaps the datapath; the exposed tail is at least a
    // quarter of the crypto time, and all of the excess when the core
    // cannot keep up with the accelerator.
    design.security.crypto_latency_us =
        std::max(0.25 * crypto_time_us,
                 crypto_time_us - design.estimate.latency_us);
    design.estimate.latency_us += design.security.crypto_latency_us;
    design.estimate.dynamic_energy_uj +=
        core.energy_pj_per_byte * double(offchip_bytes) * 1e-6;
  }

  design.estimate.static_energy_uj =
      device.static_power_w * design.estimate.latency_us;  // W*us = uJ

  if (!design.estimate.resources.fits(device)) {
    return ResourceExhausted(strprintf(
        "design for '%s' (%s) exceeds device %s: %lld LUT / %lld DSP / %lld "
        "BRAM needed",
        fn.name().c_str(), config.summary().c_str(), device.name.c_str(),
        static_cast<long long>(design.estimate.resources.luts),
        static_cast<long long>(design.estimate.resources.dsps),
        static_cast<long long>(design.estimate.resources.brams)));
  }
  return design;
}

}  // namespace everest::hls
