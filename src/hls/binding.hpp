// Resource binding: assigns scheduled operations to functional-unit
// instances (left-edge over issue intervals) and estimates the registers
// needed to carry values across cycles.
#pragma once

#include <map>
#include <vector>

#include "hls/cdfg.hpp"
#include "hls/scheduling.hpp"

namespace everest::hls {

/// Binding of DFG nodes to functional-unit instances.
struct Binding {
  /// Per node: instance id within its op class (-1 for address-only ops).
  std::vector<int> instance;
  /// Instances allocated per class.
  std::map<OpClass, int> instances;
  /// 64-bit registers required to hold values live across cycle boundaries.
  int registers = 0;
};

/// Left-edge binding on the given schedule. Pipelined units occupy their
/// instance only at the issue cycle, so two ops share an instance iff they
/// issue in different cycles.
Binding bind(const KernelLoopNest& nest, const Schedule& schedule);

}  // namespace everest::hls
