#include "hls/binding.hpp"

#include <algorithm>

namespace everest::hls {

Binding bind(const KernelLoopNest& nest, const Schedule& schedule) {
  Binding binding;
  binding.instance.assign(nest.nodes.size(), -1);

  // Group nodes by class, sort by issue cycle (left edge), and assign the
  // lowest-numbered instance free at that cycle.
  std::map<OpClass, std::vector<std::size_t>> by_class;
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    if (nest.nodes[i].address_only) continue;
    by_class[nest.nodes[i].cls].push_back(i);
  }
  for (auto& [cls, nodes] : by_class) {
    std::sort(nodes.begin(), nodes.end(), [&](std::size_t a, std::size_t b) {
      return schedule.start[a] < schedule.start[b];
    });
    // busy_until[k] = last cycle instance k issued in.
    std::vector<int> last_issue;
    for (std::size_t node : nodes) {
      const int cycle = schedule.start[node];
      int chosen = -1;
      for (std::size_t k = 0; k < last_issue.size(); ++k) {
        if (last_issue[k] < cycle) {
          chosen = static_cast<int>(k);
          break;
        }
      }
      if (chosen < 0) {
        chosen = static_cast<int>(last_issue.size());
        last_issue.push_back(cycle);
      } else {
        last_issue[static_cast<std::size_t>(chosen)] = cycle;
      }
      binding.instance[node] = chosen;
    }
    binding.instances[cls] = static_cast<int>(last_issue.size());
  }

  // Register estimate: one 64-bit register per producer→consumer edge value
  // that crosses at least one cycle boundary; count max live values per
  // cycle. Values are live from producer finish to last consumer issue.
  std::map<int, int> live_at;
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    const int produce =
        schedule.start[i] + latency_of_node(nest, i);
    int last_use = produce;
    for (std::size_t succ : nest.deps.successors(i)) {
      last_use = std::max(last_use, schedule.start[succ]);
    }
    for (int c = produce; c < last_use; ++c) ++live_at[c];
  }
  for (const auto& [cycle, live] : live_at) {
    binding.registers = std::max(binding.registers, live);
  }
  return binding;
}

}  // namespace everest::hls
