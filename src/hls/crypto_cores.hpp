// Catalog of cryptographic accelerator cores (paper §III-A/B: "a
// comprehensive library of optimized accelerators for memory and near
// memory encryption", "a library of cryptographic functions"). Each entry
// is an area/throughput design point; selection matches application
// requirements (throughput floor, area ceiling).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.hpp"

namespace everest::hls {

/// One synthesizable crypto-core design point.
struct CryptoCore {
  std::string name;        // "aes128-gcm-x1"
  std::string algo;        // "aes128-gcm", "aes128-ctr", "sha256"
  double bytes_per_cycle;  // steady-state throughput
  int latency_cycles;      // pipeline fill latency
  std::int64_t luts;
  std::int64_t ffs;
  std::int64_t brams;
  double energy_pj_per_byte;

  /// Steady-state throughput at a clock (MB/s).
  [[nodiscard]] double throughput_mbps(double clock_mhz) const {
    return bytes_per_cycle * clock_mhz;  // MB/s since MHz * B/cycle
  }
};

/// All available design points (several unrolling degrees per algorithm).
const std::vector<CryptoCore>& crypto_core_catalog();

/// Smallest-area core of `algo` meeting `min_throughput_mbps` at the given
/// clock. NOT_FOUND if no point qualifies.
Result<CryptoCore> select_crypto_core(const std::string& algo,
                                      double min_throughput_mbps,
                                      double clock_mhz);

/// Like select_crypto_core, but when no design point sustains the demand it
/// returns the fastest available core of `algo` (encryption then becomes
/// the bottleneck and the caller must serialize behind it). NOT_FOUND only
/// for an unknown algorithm.
Result<CryptoCore> select_crypto_core_best_effort(const std::string& algo,
                                                  double min_throughput_mbps,
                                                  double clock_mhz);

}  // namespace everest::hls
