// FPGA operator library and device models for the HLS engine (paper §III-B:
// Bambu-style HLS with "hardware estimations for code-snippets").
//
// Latencies/areas are calibrated to typical mid-range FPGA operator
// implementations (DSP48-based f64 arithmetic, LUTRAM/BRAM memories); the
// SDK needs *relative* estimates to rank design points, not sign-off timing.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace everest::hls {

/// Operation classes the scheduler understands.
enum class OpClass : std::uint8_t {
  kAdd,      // f64 add/sub/min/max/compare
  kMul,      // f64 multiply
  kDiv,      // f64 divide
  kSpecial,  // exp/log/sqrt/tanh/sigmoid (CORDIC/poly cores)
  kLoad,     // memory read
  kStore,    // memory write
  kCast,     // width/type conversion
  kLogic,    // integer/bit ops, index arithmetic
};

/// Per-operator implementation characteristics.
struct OpProfile {
  OpClass cls;
  /// Pipeline latency in cycles.
  int latency = 1;
  /// Initiation interval of the unit itself (1 = fully pipelined).
  int unit_ii = 1;
  /// Combinational delay in ns (limits fmax).
  double delay_ns = 2.0;
  /// Area cost of one unit instance.
  int luts = 0;
  int ffs = 0;
  int dsps = 0;
  /// Dynamic energy per operation (pJ).
  double energy_pj = 10.0;
};

/// Returns the profile for an op class (f64 datapath).
const OpProfile& profile_for(OpClass cls);

/// Maps a kernel-dialect operation name + attribute to an op class.
/// `detail` carries the binop kind or unop fn name.
OpClass classify_op(std::string_view op_name, std::string_view detail);

/// An FPGA device model (capacity + clocking + power).
struct FpgaDevice {
  std::string name;
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t dsps = 0;
  /// Total BRAM capacity in KiB and number of independent BRAM blocks
  /// (each block offers two ports).
  std::int64_t bram_kib = 0;
  std::int64_t bram_blocks = 0;
  /// Achievable clock ceiling (MHz) for well-pipelined designs.
  double max_fmax_mhz = 300.0;
  /// Static power (W) and a dynamic scale factor applied to datapath energy.
  double static_power_w = 2.0;
  double dynamic_scale = 1.0;

  /// Presets used across the EVEREST target system (paper §V).
  /// cloudFPGA-style network-attached device (Kintex UltraScale).
  static FpgaDevice cloudfpga_ku060();
  /// CAPI/OpenCAPI bus-attached card on the POWER9 node (Virtex UltraScale+).
  static FpgaDevice p9_vu9p();
  /// Edge-class device (Zynq UltraScale+).
  static FpgaDevice edge_zu7ev();
};

}  // namespace everest::hls
