// On-chip memory partitioning (paper §III-B: "polyhedral-based
// transformations, multi-port memories and dedicated micro-architectures to
// schedule the memory accesses"). Implements cyclic/block partitioning with
// Wang–Li–Cong-style bank-conflict analysis for affine accesses.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "hls/cdfg.hpp"

namespace everest::hls {

enum class PartitionType : std::uint8_t { kNone, kCyclic, kBlock };

std::string_view to_string(PartitionType type);

/// Partitioning decision for one array.
struct ArrayBanking {
  PartitionType type = PartitionType::kNone;
  int banks = 1;
  /// Ports per bank (BRAM offers 2; >2 implies replication, which the
  /// estimator charges for).
  int ports_per_bank = 2;
};

/// Partitioning decisions for every array touched by a loop nest.
struct BankingPlan {
  std::map<std::string, ArrayBanking> arrays;

  [[nodiscard]] const ArrayBanking& of(const std::string& array) const {
    static const ArrayBanking kDefault;
    auto it = arrays.find(array);
    return it == arrays.end() ? kDefault : it->second;
  }
};

/// Result of conflict analysis for one array under a banking choice.
struct ConflictReport {
  /// Worst-case simultaneous accesses directed at one bank in one
  /// initiation interval (1 = conflict-free given one port).
  int max_accesses_per_bank = 0;
  /// Cycles the accesses force between loop iterations: ceil(max/ports).
  int required_ii = 1;
  /// Total accesses analyzed.
  int accesses = 0;
  /// True if any access was non-affine (analysis fell back to worst case).
  bool conservative = false;
};

/// Analyzes bank conflicts for `array` among the accesses of `nest`,
/// assuming the loop is unrolled by `unroll` (consecutive iterations issue
/// together). Bank of element e: cyclic ⇒ e mod banks; block ⇒
/// floor(e / ceil(elems/banks)).
ConflictReport analyze_conflicts(const KernelLoopNest& nest,
                                 const std::string& array,
                                 const ArrayBanking& banking, int unroll);

/// Chooses a banking plan: smallest bank count (power of two up to
/// `max_banks`, trying cyclic then block) that brings every array's
/// required II to 1 at the given unroll factor; falls back to the best
/// found. BRAM cost grows with banks, so smaller is better.
BankingPlan plan_partitioning(const KernelLoopNest& nest, int unroll,
                              int max_banks = 16);

/// BRAM blocks consumed by an array under a banking decision (each bank is
/// at least one block; replication for >2 ports multiplies).
std::int64_t bram_blocks_for(std::int64_t array_elems, std::int64_t elem_bytes,
                             const ArrayBanking& banking);

}  // namespace everest::hls
