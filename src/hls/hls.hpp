// Top-level HLS entry point (Bambu-style, paper §III-B): synthesizes a
// kernel-dialect function into an accelerator design with cycle/area/energy
// estimates, optional DIFT security instrumentation, and optional off-chip
// encryption via a crypto core.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/status.hpp"
#include "hls/binding.hpp"
#include "hls/cdfg.hpp"
#include "hls/crypto_cores.hpp"
#include "hls/memory.hpp"
#include "hls/resource_library.hpp"
#include "hls/scheduling.hpp"
#include "ir/module.hpp"

namespace everest::hls {

/// Knobs for one hardware variant.
struct HlsConfig {
  /// Innermost-loop unroll factor (copies issued per II).
  int unroll = 1;
  /// Memory ports visible per array per cycle (pre-partitioning).
  int mem_ports_per_array = 2;
  /// Functional-unit ceilings; empty = bounded only by the device.
  std::map<OpClass, int> max_units;
  /// Target clock (capped by the device and datapath delay).
  double clock_mhz = 250.0;
  /// Maximum banks the partitioner may use per array.
  int max_banks = 16;
  /// TaintHLS-style dynamic information flow tracking.
  bool enable_dift = false;
  /// Encrypt all off-chip traffic with this algo ("" = off).
  std::string encrypt_offchip;

  [[nodiscard]] std::string summary() const;
};

/// Aggregate FPGA resource usage.
struct ResourceUsage {
  std::int64_t luts = 0;
  std::int64_t ffs = 0;
  std::int64_t dsps = 0;
  std::int64_t brams = 0;

  ResourceUsage& operator+=(const ResourceUsage& other) {
    luts += other.luts;
    ffs += other.ffs;
    dsps += other.dsps;
    brams += other.brams;
    return *this;
  }
  /// True if this fits within the device.
  [[nodiscard]] bool fits(const FpgaDevice& device) const {
    return luts <= device.luts && ffs <= device.ffs && dsps <= device.dsps &&
           brams <= device.bram_blocks;
  }
  /// Max fractional utilization across resource kinds.
  [[nodiscard]] double utilization(const FpgaDevice& device) const;
};

/// Per-loop-nest synthesis report.
struct NestReport {
  std::vector<LoopInfo> loops;
  IiAnalysis ii;
  int depth = 0;                 // pipeline depth of one iteration
  std::int64_t cycles = 0;       // total cycles for the whole nest
  BankingPlan banking;
  std::map<OpClass, int> units;  // per unrolled iteration group
};

/// Whole-accelerator estimate.
struct AcceleratorEstimate {
  std::int64_t total_cycles = 0;
  double fmax_mhz = 0.0;
  double latency_us = 0.0;
  ResourceUsage resources;
  double dynamic_energy_uj = 0.0;
  double static_energy_uj = 0.0;
  [[nodiscard]] double energy_uj() const {
    return dynamic_energy_uj + static_energy_uj;
  }
  /// Effective power (W) over the run.
  [[nodiscard]] double power_w() const {
    return latency_us > 0 ? energy_uj() / latency_us : 0.0;
  }
};

/// Overheads attributable to security features (filled when enabled).
struct SecurityOverheads {
  double dift_area_fraction = 0.0;    // extra LUTs / baseline LUTs
  int dift_extra_depth = 0;           // extra pipeline stages
  double crypto_latency_us = 0.0;     // off-chip encryption time
  ResourceUsage crypto_resources;
  std::string crypto_core;            // selected core name
};

/// A fully synthesized hardware variant.
struct AcceleratorDesign {
  std::string kernel;
  HlsConfig config;
  FpgaDevice device;
  std::vector<NestReport> nests;
  AcceleratorEstimate estimate;
  SecurityOverheads security;
};

/// Synthesizes `fn` (kernel dialect) for `device` under `config`.
/// `offchip_bytes` is the data volume moved across the off-chip boundary
/// per invocation (drives the encryption overhead when enabled).
/// Fails with RESOURCE_EXHAUSTED if the design does not fit the device.
Result<AcceleratorDesign> synthesize(ir::Function& fn, const HlsConfig& config,
                                     const FpgaDevice& device,
                                     std::int64_t offchip_bytes = 0);

}  // namespace everest::hls
