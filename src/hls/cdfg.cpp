#include "hls/cdfg.hpp"

#include <cassert>

namespace everest::hls {

namespace {

/// Tracks how a Value relates to the loop induction variables.
struct AffineCtx {
  const ir::Block* innermost = nullptr;
  std::vector<const ir::Block*> outer;  // outer loop bodies
  std::map<const ir::Operation*, std::size_t> node_of;

  [[nodiscard]] bool is_outer_var(const ir::Value& v) const {
    if (!v.is_block_arg()) return false;
    for (const ir::Block* b : outer) {
      if (v.owner_block() == b && v.index() == 0) return true;
    }
    return false;
  }
};

/// Evaluates an index expression as AffineIndex over the innermost var.
AffineIndex analyze_affine(const ir::Value& v, const AffineCtx& ctx) {
  AffineIndex out;
  if (v.is_block_arg()) {
    if (v.owner_block() == ctx.innermost && v.index() == 0) {
      out.coeff = 1;
      return out;
    }
    if (ctx.is_outer_var(v)) {
      out.outer_terms = true;
      return out;
    }
    out.analyzable = false;
    return out;
  }
  const ir::Operation* def = v.defining_op();
  if (def == nullptr) {
    out.analyzable = false;
    return out;
  }
  if (def->name() == "builtin.constant") {
    const ir::Attribute* a = def->attr("value");
    if (a && a->is_int()) {
      out.constant = a->as_int();
      return out;
    }
    if (a && a->is_double()) {
      out.constant = static_cast<std::int64_t>(a->as_double());
      return out;
    }
    out.analyzable = false;
    return out;
  }
  if (def->name() == "kernel.binop") {
    const std::string op = def->str_attr("op");
    AffineIndex a = analyze_affine(def->operand(0), ctx);
    AffineIndex b = analyze_affine(def->operand(1), ctx);
    if (!a.analyzable || !b.analyzable) {
      out.analyzable = false;
      return out;
    }
    if (op == "add") {
      out.coeff = a.coeff + b.coeff;
      out.constant = a.constant + b.constant;
      out.outer_terms = a.outer_terms || b.outer_terms;
      return out;
    }
    if (op == "sub") {
      out.coeff = a.coeff - b.coeff;
      out.constant = a.constant - b.constant;
      out.outer_terms = a.outer_terms || b.outer_terms;
      return out;
    }
    if (op == "mul") {
      // Affine only if one side is a pure constant.
      const bool a_const = a.coeff == 0 && !a.outer_terms;
      const bool b_const = b.coeff == 0 && !b.outer_terms;
      if (a_const) {
        out.coeff = b.coeff * a.constant;
        out.constant = b.constant * a.constant;
        out.outer_terms = b.outer_terms;
        return out;
      }
      if (b_const) {
        out.coeff = a.coeff * b.constant;
        out.constant = a.constant * b.constant;
        out.outer_terms = a.outer_terms;
        return out;
      }
      out.analyzable = false;
      return out;
    }
  }
  out.analyzable = false;
  return out;
}

/// Stable name for a memref base value.
std::string array_name(const ir::Value& base,
                       std::map<const ir::Operation*, int>& alloc_ids) {
  if (base.is_block_arg()) {
    return "arg" + std::to_string(base.index());
  }
  const ir::Operation* def = base.defining_op();
  if (def != nullptr && def->name() == "kernel.alloc") {
    auto [it, inserted] =
        alloc_ids.emplace(def, static_cast<int>(alloc_ids.size()));
    return "alloc" + std::to_string(it->second);
  }
  return "unknown";
}

/// Row-major flattened linear index of a multi-dim access.
AffineIndex flatten_index(const ir::Operation& access, std::size_t first_index,
                          const ir::Type& memref, const AffineCtx& ctx) {
  AffineIndex linear;
  std::int64_t stride = 1;
  const auto& shape = memref.shape();
  // Accumulate from the last dimension backwards.
  std::vector<AffineIndex> dims;
  for (std::size_t d = 0; d < shape.size(); ++d) {
    dims.push_back(analyze_affine(access.operand(first_index + d), ctx));
  }
  for (std::size_t d = shape.size(); d-- > 0;) {
    const AffineIndex& idx = dims[d];
    if (!idx.analyzable) {
      linear.analyzable = false;
      return linear;
    }
    linear.coeff += idx.coeff * stride;
    linear.constant += idx.constant * stride;
    linear.outer_terms |= idx.outer_terms;
    stride *= shape[d];
  }
  return linear;
}

/// True if the block's only non-terminator op is a nested kernel.for
/// (perfect nesting).
const ir::Operation* sole_nested_for(const ir::Block& body) {
  const ir::Operation* nested = nullptr;
  for (const auto& op : body) {
    if (op->name() == "kernel.yield") continue;
    if (op->name() == "kernel.for") {
      if (nested != nullptr) return nullptr;  // two loops: not perfect
      nested = op.get();
    } else {
      return nullptr;  // real work at this level: treat as innermost
    }
  }
  return nested;
}

LoopInfo loop_info_of(const ir::Operation& op) {
  LoopInfo info;
  info.lb = op.int_attr("lb");
  info.ub = op.int_attr("ub");
  info.step = op.int_attr("step", 1);
  return info;
}

Result<KernelLoopNest> build_nest(ir::Operation& top_for) {
  KernelLoopNest nest;
  AffineCtx ctx;
  ir::Operation* current = &top_for;
  ir::Block* body = nullptr;
  while (true) {
    nest.loops.push_back(loop_info_of(*current));
    if (current->num_regions() != 1 || current->region(0).num_blocks() != 1) {
      return InvalidArgument("kernel.for without a single-block body");
    }
    body = &current->region(0).front();
    const ir::Operation* nested = sole_nested_for(*body);
    if (nested == nullptr) break;
    ctx.outer.push_back(body);
    current = const_cast<ir::Operation*>(nested);
  }
  ctx.innermost = body;

  // DFG nodes: every non-terminator op of the innermost body. A nested
  // kernel.for here means an imperfect nest; reject for now (the compiler
  // lowering only emits perfect nests).
  std::map<const ir::Operation*, std::size_t> node_of;
  for (const auto& op : *body) {
    if (op->name() == "kernel.yield") continue;
    if (op->name() == "kernel.for") {
      return Unimplemented("imperfect loop nests are not supported by HLS");
    }
    DfgNode node;
    node.op = op.get();
    std::string detail = op->str_attr("op");
    if (detail.empty()) detail = op->str_attr("fn");
    node.cls = classify_op(op->name(), detail);
    // Index arithmetic feeding only loads/stores is address generation.
    if (node.cls == OpClass::kLogic &&
        (op->name() == "kernel.binop" || op->name() == "builtin.constant")) {
      node.address_only = true;
    }
    node_of[op.get()] = nest.nodes.size();
    nest.nodes.push_back(node);
  }
  // Integer constants and index arithmetic: mark address-only when they
  // produce index-typed values.
  for (DfgNode& node : nest.nodes) {
    if (node.op->num_results() == 1) {
      const ir::Type& t = node.op->result_types()[0];
      if (t.is_scalar() && t.elem() == ir::ScalarKind::kIndex) {
        node.address_only = true;
      }
    }
  }

  nest.deps = Digraph(nest.nodes.size());
  // Data dependencies within the body.
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    const ir::Operation* op = nest.nodes[i].op;
    for (std::size_t k = 0; k < op->num_operands(); ++k) {
      const ir::Value& v = op->operand(k);
      if (v.is_op_result()) {
        auto it = node_of.find(v.defining_op());
        if (it != node_of.end()) nest.deps.add_edge(it->second, i);
      }
    }
  }

  // Memory accesses + ordering edges per array.
  std::map<const ir::Operation*, int> alloc_ids;
  std::map<std::string, std::vector<std::size_t>> per_array;  // access idx
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    const ir::Operation* op = nest.nodes[i].op;
    if (op->name() != "kernel.load" && op->name() != "kernel.store") continue;
    MemAccess acc;
    acc.is_store = op->name() == "kernel.store";
    const std::size_t base_idx = acc.is_store ? 1 : 0;
    const ir::Value& base = op->operand(base_idx);
    acc.array = array_name(base, alloc_ids);
    acc.index = flatten_index(*op, base_idx + 1, base.type(), ctx);
    acc.node = i;
    acc.array_elems = base.type().num_elements();
    acc.space = base.type().memory_space();
    per_array[acc.array].push_back(nest.accesses.size());
    nest.accesses.push_back(acc);
  }
  for (const auto& [array, access_ids] : per_array) {
    for (std::size_t a = 0; a < access_ids.size(); ++a) {
      for (std::size_t b = a + 1; b < access_ids.size(); ++b) {
        const MemAccess& first = nest.accesses[access_ids[a]];
        const MemAccess& second = nest.accesses[access_ids[b]];
        // Keep ordering whenever at least one is a store (RAW/WAR/WAW).
        if (first.is_store || second.is_store) {
          nest.deps.add_edge(first.node, second.node);
        }
      }
    }
  }
  return nest;
}

}  // namespace

std::map<OpClass, int> KernelLoopNest::op_histogram() const {
  std::map<OpClass, int> hist;
  for (const DfgNode& node : nodes) {
    if (node.address_only) continue;
    ++hist[node.cls];
  }
  return hist;
}

Result<std::vector<KernelLoopNest>> extract_loop_nests(ir::Function& fn) {
  std::vector<KernelLoopNest> nests;
  for (auto& op : fn.entry()) {
    if (op->name() != "kernel.for") continue;
    EVEREST_ASSIGN_OR_RETURN(KernelLoopNest nest, build_nest(*op));
    nests.push_back(std::move(nest));
  }
  return nests;
}

}  // namespace everest::hls
