#include "hls/memory.hpp"

#include <algorithm>
#include <cmath>
#include <set>

namespace everest::hls {

std::string_view to_string(PartitionType type) {
  switch (type) {
    case PartitionType::kNone: return "none";
    case PartitionType::kCyclic: return "cyclic";
    case PartitionType::kBlock: return "block";
  }
  return "?";
}

namespace {

std::int64_t bank_of(std::int64_t elem, std::int64_t elems_total,
                     const ArrayBanking& banking) {
  if (banking.banks <= 1) return 0;
  switch (banking.type) {
    case PartitionType::kNone: return 0;
    case PartitionType::kCyclic: {
      std::int64_t b = elem % banking.banks;
      return b < 0 ? b + banking.banks : b;
    }
    case PartitionType::kBlock: {
      const std::int64_t block =
          std::max<std::int64_t>(1, (elems_total + banking.banks - 1) /
                                        banking.banks);
      return std::clamp<std::int64_t>(elem / block, 0, banking.banks - 1);
    }
  }
  return 0;
}

}  // namespace

ConflictReport analyze_conflicts(const KernelLoopNest& nest,
                                 const std::string& array,
                                 const ArrayBanking& banking, int unroll) {
  ConflictReport report;
  std::vector<const MemAccess*> accesses;
  for (const MemAccess& acc : nest.accesses) {
    if (acc.array == array) accesses.push_back(&acc);
  }
  report.accesses = static_cast<int>(accesses.size()) * unroll;
  if (accesses.empty()) return report;

  // Worst case: every unrolled access hits the same bank.
  auto conservative_result = [&] {
    report.conservative = true;
    report.max_accesses_per_bank = report.accesses;
    report.required_ii = static_cast<int>(
        (report.accesses + banking.ports_per_bank - 1) /
        banking.ports_per_bank);
    return report;
  };

  // Count per-bank pressure for the unrolled iteration group. Outer-loop
  // contributions shift all cyclic banks uniformly when shared, so we
  // evaluate at outer offset 0; a residual `conservative` flag marks
  // non-affine indices. A loop-invariant address (coeff == 0) is fetched
  // once and broadcast to every unrolled copy, so duplicate (load, elem)
  // pairs collapse; stores to the same element still serialize.
  std::map<std::int64_t, int> per_bank;
  std::set<std::pair<bool, std::int64_t>> seen_loads;
  int unique_accesses = 0;
  const bool offchip = accesses.front()->space != ir::MemorySpace::kOnChip;
  for (const MemAccess* acc : accesses) {
    if (!acc->index.analyzable) return conservative_result();
    for (int u = 0; u < unroll; ++u) {
      const std::int64_t elem =
          acc->index.coeff * u + acc->index.constant;
      if (!acc->is_store && !seen_loads.insert({false, elem}).second) {
        continue;  // broadcast of an already-fetched element
      }
      ++unique_accesses;
      ++per_bank[bank_of(elem, acc->array_elems, banking)];
    }
  }
  for (const auto& [bank, count] : per_bank) {
    report.max_accesses_per_bank =
        std::max(report.max_accesses_per_bank, count);
  }
  if (offchip) {
    // Off-chip arrays stream through a wide AXI-style channel: the limit is
    // burst width (elements per cycle), not BRAM ports.
    constexpr int kBurstElemsPerCycle = 8;  // 512-bit bus, f64 elements
    report.required_ii =
        (unique_accesses + kBurstElemsPerCycle - 1) / kBurstElemsPerCycle;
  } else {
    report.required_ii =
        (report.max_accesses_per_bank + banking.ports_per_bank - 1) /
        banking.ports_per_bank;
  }
  report.required_ii = std::max(report.required_ii, 1);
  return report;
}

BankingPlan plan_partitioning(const KernelLoopNest& nest, int unroll,
                              int max_banks) {
  BankingPlan plan;
  std::map<std::string, bool> arrays;
  for (const MemAccess& acc : nest.accesses) arrays[acc.array] = true;

  for (const auto& [array, unused] : arrays) {
    ArrayBanking best;
    int best_ii = analyze_conflicts(nest, array, best, unroll).required_ii;
    for (int banks = 2; banks <= max_banks && best_ii > 1; banks *= 2) {
      for (PartitionType type : {PartitionType::kCyclic, PartitionType::kBlock}) {
        ArrayBanking candidate{type, banks, 2};
        const int ii = analyze_conflicts(nest, array, candidate, unroll)
                           .required_ii;
        if (ii < best_ii) {
          best = candidate;
          best_ii = ii;
        }
        if (best_ii == 1) break;
      }
    }
    plan.arrays[array] = best;
  }
  return plan;
}

std::int64_t bram_blocks_for(std::int64_t array_elems, std::int64_t elem_bytes,
                             const ArrayBanking& banking) {
  // One BRAM block ≈ 36 Kib = 4.5 KiB of storage.
  constexpr std::int64_t kBlockBytes = 4608;
  const std::int64_t banks = std::max(1, banking.banks);
  const std::int64_t bytes_per_bank =
      (array_elems * elem_bytes + banks - 1) / banks;
  const std::int64_t blocks_per_bank =
      std::max<std::int64_t>(1, (bytes_per_bank + kBlockBytes - 1) / kBlockBytes);
  const std::int64_t replication =
      std::max(1, (banking.ports_per_bank + 1) / 2);
  return banks * blocks_per_bank * replication;
}

}  // namespace everest::hls
