#include "hls/scheduling.hpp"

#include <algorithm>
#include <queue>

namespace everest::hls {

namespace {

int latency_of(const DfgNode& node) {
  return node.address_only ? 1 : profile_for(node.cls).latency;
}

std::map<OpClass, int> count_units(const KernelLoopNest& nest,
                                   const std::vector<int>& start) {
  // Fully pipelined units: an instance is busy at its issue cycle only, so
  // instances required = max simultaneous issues per class.
  std::map<OpClass, std::map<int, int>> issues;
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    if (nest.nodes[i].address_only) continue;
    ++issues[nest.nodes[i].cls][start[i]];
  }
  std::map<OpClass, int> units;
  for (const auto& [cls, by_cycle] : issues) {
    int peak = 0;
    for (const auto& [cycle, n] : by_cycle) peak = std::max(peak, n);
    units[cls] = peak;
  }
  return units;
}

}  // namespace

Schedule schedule_asap(const KernelLoopNest& nest) {
  Schedule s;
  s.start.assign(nest.nodes.size(), 0);
  auto order = nest.deps.topological_order();
  if (!order) return s;  // cyclic (should not happen); all at 0
  for (std::size_t n : *order) {
    for (std::size_t succ : nest.deps.successors(n)) {
      s.start[succ] =
          std::max(s.start[succ],
                   s.start[n] + latency_of(nest.nodes[n]));
    }
  }
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    s.length = std::max(s.length, s.start[i] + latency_of(nest.nodes[i]));
  }
  s.units = count_units(nest, s.start);
  return s;
}

Schedule schedule_alap(const KernelLoopNest& nest, int deadline) {
  Schedule s;
  s.start.assign(nest.nodes.size(), 0);
  auto order = nest.deps.topological_order();
  if (!order) return s;
  // Initialize each node to its latest finish = deadline.
  for (std::size_t i = 0; i < nest.nodes.size(); ++i) {
    s.start[i] = deadline - latency_of(nest.nodes[i]);
  }
  for (auto it = order->rbegin(); it != order->rend(); ++it) {
    const std::size_t n = *it;
    for (std::size_t succ : nest.deps.successors(n)) {
      s.start[n] = std::min(s.start[n],
                            s.start[succ] - latency_of(nest.nodes[n]));
    }
    s.start[n] = std::max(s.start[n], 0);
  }
  s.length = deadline;
  s.units = count_units(nest, s.start);
  return s;
}

std::vector<int> slack(const KernelLoopNest& nest) {
  Schedule asap = schedule_asap(nest);
  Schedule alap = schedule_alap(nest, asap.length);
  std::vector<int> out(nest.nodes.size());
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = alap.start[i] - asap.start[i];
  }
  return out;
}

Result<Schedule> list_schedule(const KernelLoopNest& nest,
                               const ResourceConstraints& constraints) {
  const std::size_t n = nest.nodes.size();
  Schedule s;
  s.start.assign(n, -1);
  if (n == 0) return s;
  auto order = nest.deps.topological_order();
  if (!order) return InvalidArgument("DFG has a dependency cycle");
  const std::vector<int> node_slack = slack(nest);

  std::vector<std::size_t> unscheduled_preds(n);
  for (std::size_t i = 0; i < n; ++i) {
    unscheduled_preds[i] = nest.deps.in_degree(i);
  }
  // Ready list ordered by (slack, id) — least slack first (critical path).
  auto cmp = [&](std::size_t a, std::size_t b) {
    if (node_slack[a] != node_slack[b]) return node_slack[a] > node_slack[b];
    return a > b;
  };
  std::priority_queue<std::size_t, std::vector<std::size_t>, decltype(cmp)>
      ready(cmp);
  std::vector<int> earliest(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    if (unscheduled_preds[i] == 0) ready.push(i);
  }

  // usage[cycle][class] = issues already placed.
  std::map<int, std::map<OpClass, int>> usage;
  // Memory-port usage per cycle per array.
  std::map<int, std::map<std::string, int>> mem_usage;
  std::map<std::size_t, const MemAccess*> access_of_node;
  for (const MemAccess& acc : nest.accesses) access_of_node[acc.node] = &acc;

  std::size_t scheduled = 0;
  while (!ready.empty()) {
    const std::size_t node = ready.top();
    ready.pop();
    const DfgNode& dn = nest.nodes[node];
    int cycle = earliest[node];
    if (!dn.address_only) {
      auto unit_limit = [&]() -> int {
        auto it = constraints.max_units.find(dn.cls);
        return it == constraints.max_units.end() ? 1 << 30 : it->second;
      }();
      while (true) {
        bool fits = usage[cycle][dn.cls] < unit_limit;
        if (fits && access_of_node.count(node) > 0) {
          const MemAccess* acc = access_of_node[node];
          fits = mem_usage[cycle][acc->array] <
                 constraints.mem_ports_per_array;
        }
        if (fits) break;
        ++cycle;
      }
      ++usage[cycle][dn.cls];
      if (access_of_node.count(node) > 0) {
        ++mem_usage[cycle][access_of_node[node]->array];
      }
    }
    s.start[node] = cycle;
    ++scheduled;
    const int finish = cycle + latency_of(dn);
    s.length = std::max(s.length, finish);
    for (std::size_t succ : nest.deps.successors(node)) {
      earliest[succ] = std::max(earliest[succ], finish);
      if (--unscheduled_preds[succ] == 0) ready.push(succ);
    }
  }
  if (scheduled != n) return Internal("list scheduler dropped nodes");
  s.units = count_units(nest, s.start);
  return s;
}

IiAnalysis analyze_ii(const KernelLoopNest& nest,
                      const ResourceConstraints& constraints,
                      const BankingPlan& banking) {
  IiAnalysis out;

  // Resource MII: ops of a class per iteration / available units.
  for (const auto& [cls, count] : nest.op_histogram()) {
    auto it = constraints.max_units.find(cls);
    if (it == constraints.max_units.end() || it->second <= 0) continue;
    out.resource_mii = std::max(
        out.resource_mii, (count + it->second - 1) / it->second);
  }

  // Memory MII: per-array conflict analysis under the banking plan.
  std::map<std::string, bool> arrays;
  for (const MemAccess& acc : nest.accesses) arrays[acc.array] = true;
  for (const auto& [array, unused] : arrays) {
    const ConflictReport report =
        analyze_conflicts(nest, array, banking.of(array), /*unroll=*/1);
    out.memory_mii = std::max(out.memory_mii, report.required_ii);
  }

  // Recurrence MII: a load and a store on the same array whose linear index
  // does not advance with the innermost variable (coeff == 0) form a
  // loop-carried dependence (e.g. an accumulator); the II must cover the
  // latency of the path load → ... → store.
  for (const MemAccess& load : nest.accesses) {
    if (load.is_store || load.index.coeff != 0 || !load.index.analyzable) {
      continue;
    }
    for (const MemAccess& store : nest.accesses) {
      if (!store.is_store || store.array != load.array) continue;
      if (!store.index.analyzable || store.index.coeff != 0) continue;
      if (store.index.constant != load.index.constant) continue;
      // Longest latency path from the load node to the store node.
      std::vector<int> dist(nest.nodes.size(), -1);
      dist[load.node] = latency_of_node(nest, load.node);
      auto order = nest.deps.topological_order();
      if (!order) continue;
      for (std::size_t n : *order) {
        if (dist[n] < 0) continue;
        for (std::size_t succ : nest.deps.successors(n)) {
          dist[succ] =
              std::max(dist[succ], dist[n] + latency_of_node(nest, succ));
        }
      }
      if (dist[store.node] > 0) {
        out.recurrence_mii = std::max(out.recurrence_mii, dist[store.node]);
      }
    }
  }
  return out;
}

int latency_of_node(const KernelLoopNest& nest, std::size_t node) {
  return nest.nodes[node].address_only
             ? 1
             : profile_for(nest.nodes[node].cls).latency;
}

}  // namespace everest::hls
