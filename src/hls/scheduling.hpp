// HLS operation scheduling: ASAP / ALAP / resource-constrained list
// scheduling, plus initiation-interval analysis for pipelined loops.
#pragma once

#include <map>
#include <vector>

#include "common/status.hpp"
#include "hls/cdfg.hpp"
#include "hls/memory.hpp"

namespace everest::hls {

/// Resource budget the scheduler must respect (per innermost iteration).
struct ResourceConstraints {
  /// Max functional-unit instances per class (missing key = unlimited).
  std::map<OpClass, int> max_units;
  /// Memory ports available per array per cycle (after partitioning).
  int mem_ports_per_array = 2;
};

/// A cycle-accurate schedule of one innermost-loop body.
struct Schedule {
  std::vector<int> start;   // per DFG node, issue cycle
  int length = 0;           // makespan in cycles (depth of one iteration)
  /// Units actually required per class (max concurrent issues).
  std::map<OpClass, int> units;
};

/// Unconstrained as-soon-as-possible schedule.
Schedule schedule_asap(const KernelLoopNest& nest);

/// As-late-as-possible within `deadline` (use asap.length for min-latency).
Schedule schedule_alap(const KernelLoopNest& nest, int deadline);

/// Slack per node (ALAP start − ASAP start); drives list-scheduling priority.
std::vector<int> slack(const KernelLoopNest& nest);

/// Resource-constrained list scheduling (priority = min slack).
Result<Schedule> list_schedule(const KernelLoopNest& nest,
                               const ResourceConstraints& constraints);

/// Initiation-interval analysis for pipelined execution of the innermost
/// loop: II = max(resource MII, memory MII, recurrence MII).
struct IiAnalysis {
  int resource_mii = 1;
  int memory_mii = 1;
  int recurrence_mii = 1;
  [[nodiscard]] int ii() const {
    return std::max(resource_mii, std::max(memory_mii, recurrence_mii));
  }
};

/// `banking` describes the memory partitioning in force (bank count/type per
/// array); pass the result of plan_partitioning().
IiAnalysis analyze_ii(const KernelLoopNest& nest,
                      const ResourceConstraints& constraints,
                      const BankingPlan& banking);

/// Latency in cycles of one DFG node (1 for address-only logic).
int latency_of_node(const KernelLoopNest& nest, std::size_t node);

}  // namespace everest::hls
