// E4 — Fig. 4: heterogeneous node architectures — OpenCAPI bus-attached
// vs TCP/UDP network-attached FPGAs.
//
// Series 1: same offload across transfer sizes on each attachment; prints
// achieved end-to-end throughput and the crossover region.
// Series 2: scale-out — N disaggregated cloudFPGAs processing a partitioned
// workload vs 1 bus-attached card.
#include <cstdio>

#include "common/table.hpp"
#include "platform/executor.hpp"
#include "platform/links.hpp"
#include "platform/node.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::platform;

namespace {

compiler::Variant offload_variant(const std::string& device, double bytes,
                                  double compute_us) {
  compiler::Variant v;
  v.id = "offload";
  v.kernel = "stream_kernel";
  v.target = compiler::TargetKind::kFpga;
  v.device = device;
  v.latency_us = compute_us;
  v.energy_uj = compute_us * 15.0;
  v.bytes_in = bytes;
  v.bytes_out = bytes / 8;
  return v;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E4: bus-attached vs network-attached FPGA (Fig. 4) ===\n\n");

  // --- Series 1: transfer-size sweep -------------------------------------
  std::printf("payload sweep (compute fixed at 50 us):\n");
  Table sweep({"payload", "opencapi total us", "udp total us", "tcp total us",
               "capi speedup"});
  const LinkModel capi = LinkModel::opencapi();
  const LinkModel udp = LinkModel::udp_datacenter();
  const LinkModel tcp = LinkModel::tcp_datacenter();
  for (double kib : {1.0, 16.0, 256.0, 4096.0, 65536.0, 1048576.0}) {
    const double bytes = kib * 1024.0;
    const double compute = 50.0;
    const double t_capi = capi.transfer_us(bytes) + compute +
                          capi.transfer_us(bytes / 8);
    const double t_udp =
        udp.transfer_us(bytes) + compute + udp.transfer_us(bytes / 8);
    const double t_tcp =
        tcp.transfer_us(bytes) + compute + tcp.transfer_us(bytes / 8);
    std::string label = kib >= 1024 ? fmt_double(kib / 1024, 0) + " MiB"
                                    : fmt_double(kib, 0) + " KiB";
    sweep.add_row({label, fmt_double(t_capi, 1), fmt_double(t_udp, 1),
                   fmt_double(t_tcp, 1), fmt_double(t_udp / t_capi, 2) + "x"});
  }
  std::printf("%s\n", sweep.render().c_str());

  // --- Series 2: scale-out of disaggregated FPGAs ------------------------
  std::printf("scale-out: 1 GiB workload partitioned over N network-attached "
              "cloudFPGAs vs 1 bus-attached VU9P:\n");
  const double total_bytes = 1024.0 * 1024 * 1024;
  const double total_compute_us = 200000.0;  // on one KU060
  PlatformSpec spec = PlatformSpec::everest_reference(1, 16, 0);
  NodeSpec& host = *spec.find("p9-0");

  // Bus-attached baseline (one VU9P, ~2.4x the KU060's datapath).
  compiler::Variant bus =
      offload_variant("P9-VU9P", total_bytes, total_compute_us / 2.4);
  FpgaSlot* bus_slot = find_slot(host, bus);
  auto bus_run = execute_on_fpga(spec, host, *bus_slot, bus);
  const double bus_total =
      bus_run.ok() ? bus_run->total_us() - bus_run->reconfig_us : 0.0;

  Table scale({"N cloudFPGAs", "total time (ms)", "speedup vs 1",
               "vs bus-attached"});
  double base_n1 = 0.0;
  for (int n : {1, 2, 4, 8, 16}) {
    // Each shard: bytes/n over its own UDP link (parallel), compute/n.
    compiler::Variant shard = offload_variant(
        "cloudFPGA-KU060", total_bytes / n, total_compute_us / n);
    // Fresh slots so every shard pays its own transfer (parallel links).
    PlatformSpec fresh = PlatformSpec::everest_reference(1, 16, 0);
    NodeSpec& fresh_host = *fresh.nodes.begin();
    FpgaSlot* slot = find_slot(fresh_host, shard);
    auto run = execute_on_fpga(fresh, fresh_host, *slot, shard);
    if (!run.ok()) continue;
    const double shard_total = run->total_us() - run->reconfig_us;
    if (n == 1) base_n1 = shard_total;
    scale.add_row({std::to_string(n), fmt_double(shard_total / 1e3, 1),
                   fmt_double(base_n1 / shard_total, 2) + "x",
                   fmt_double(bus_total / shard_total, 2) + "x"});
  }
  std::printf("%s", scale.render().c_str());
  std::printf("(bus-attached VU9P baseline: %.1f ms)\n\n", bus_total / 1e3);

  std::printf("shape check: coherent attachment dominates at small payloads "
              "(latency-bound); disaggregation wins by scaling out — with "
              "enough network FPGAs the aggregate beats one big card, the "
              "cloudFPGA thesis (paper §V).\n");

  // --- Series 3: shell-role reconfiguration amortization -----------------
  std::printf("\nrole-swap amortization on a network-attached FPGA:\n");
  Table amort({"invocations between swaps", "effective overhead per call"});
  PlatformSpec spec2 = PlatformSpec::everest_reference(1, 1, 0);
  NodeSpec& host2 = *spec2.find("p9-0");
  compiler::Variant small =
      offload_variant("cloudFPGA-KU060", 1 << 20, 500.0);
  FpgaSlot* slot2 = find_slot(host2, small);
  const double reconfig = slot2->reconfig_us(small.kernel);
  for (int calls : {1, 10, 100, 1000}) {
    amort.add_row({std::to_string(calls),
                   fmt_double(reconfig / calls / 1e3, 2) + " ms"});
  }
  std::printf("%s\nE4 done.\n", amort.render().c_str());
  return 0;
}
