// Micro-benchmarks (google-benchmark) for the SDK's hot paths: crypto,
// IR construction/verification, einsum inference, HLS synthesis, scheduler
// throughput, and PTDR sampling. These guard against performance
// regressions in the toolchain itself.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>

#include "apps/traffic.hpp"
#include "cluster/membership.hpp"
#include "cluster/router.hpp"
#include "cluster/shard_map.hpp"
#include "common/rng.hpp"
#include "compiler/lowering.hpp"
#include "compiler/variants.hpp"
#include "dsl/einsum.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"
#include "ir/parser.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"
#include "jit/cache.hpp"
#include "jit/detector.hpp"
#include "obs/obs.hpp"
#include "serve/metrics.hpp"
#include "security/aes.hpp"
#include "security/sha256.hpp"
#include "storage/storage.hpp"
#include "stream/operators.hpp"
#include "stream/pubsub.hpp"
#include "workflow/scheduler.hpp"

namespace {

using namespace everest;

void BM_AesGcmEncrypt(benchmark::State& state) {
  security::Block16 key{};
  std::array<std::uint8_t, 12> iv{};
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)));
  Rng rng(1);
  for (auto& b : data) b = static_cast<std::uint8_t>(rng.uniform_int(256));
  for (auto _ : state) {
    auto out = security::aes128_gcm_encrypt(key, iv, data);
    benchmark::DoNotOptimize(out.tag);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_AesGcmEncrypt)->Arg(4096)->Arg(65536);

void BM_Sha256(benchmark::State& state) {
  std::vector<std::uint8_t> data(static_cast<std::size_t>(state.range(0)), 7);
  for (auto _ : state) {
    auto digest = security::sha256(data);
    benchmark::DoNotOptimize(digest);
  }
  state.SetBytesProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_Sha256)->Arg(4096)->Arg(1 << 20);

void BM_IrBuildVerify(benchmark::State& state) {
  ir::register_everest_dialects();
  const int n = static_cast<int>(state.range(0));
  for (auto _ : state) {
    ir::Module m("bench");
    ir::Type t = ir::Type::tensor({16}, ir::ScalarKind::kF64);
    ir::Function* fn =
        m.add_function("f", ir::Type::function({t}, {t})).value();
    ir::OpBuilder b(&fn->entry());
    ir::Value v = fn->arg(0);
    for (int i = 0; i < n; ++i) {
      v = b.create_value("tensor.add", {v, v}, t);
    }
    b.ret({v});
    benchmark::DoNotOptimize(ir::verify(m).ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * n);
}
BENCHMARK(BM_IrBuildVerify)->Arg(100)->Arg(1000);

void BM_IrPrintParseRoundTrip(benchmark::State& state) {
  ir::register_everest_dialects();
  ir::Module m("bench");
  ir::Type t = ir::Type::tensor({16}, ir::ScalarKind::kF64);
  ir::Function* fn = m.add_function("f", ir::Type::function({t}, {t})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Value v = fn->arg(0);
  for (int i = 0; i < 200; ++i) v = b.create_value("tensor.add", {v, v}, t);
  b.ret({v});
  for (auto _ : state) {
    const std::string text = ir::print(m);
    auto parsed = ir::parse_module(text);
    benchmark::DoNotOptimize(parsed.ok());
  }
}
BENCHMARK(BM_IrPrintParseRoundTrip);

void BM_EinsumInference(benchmark::State& state) {
  for (auto _ : state) {
    auto spec = dsl::parse_einsum("abc,cd,de->abe");
    auto shape = dsl::infer_output_shape(
        *spec, {{8, 16, 32}, {32, 64}, {64, 4}});
    benchmark::DoNotOptimize(shape.ok());
  }
}
BENCHMARK(BM_EinsumInference);

void BM_HlsSynthesis(benchmark::State& state) {
  dsl::TensorProgram p("k");
  auto a = p.input("a", {64, 64});
  auto w = p.input("w", {64, 64});
  p.output("y", relu(matmul(a, w)));
  ir::Module m = p.lower().value();
  (void)compiler::lower_to_kernel(m, "k");
  ir::Function* kfn = m.find("k_kernel");
  hls::HlsConfig config;
  config.unroll = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto design = hls::synthesize(*kfn, config, hls::FpgaDevice::p9_vu9p());
    benchmark::DoNotOptimize(design.ok());
  }
}
BENCHMARK(BM_HlsSynthesis)->Arg(1)->Arg(8);

void BM_VariantGeneration(benchmark::State& state) {
  for (auto _ : state) {
    state.PauseTiming();
    dsl::TensorProgram p("k");
    auto a = p.input("a", {64, 64});
    auto w = p.input("w", {64, 64});
    p.output("y", relu(matmul(a, w)));
    ir::Module m = p.lower().value();
    state.ResumeTiming();
    compiler::VariantSpace space;
    space.devices = {hls::FpgaDevice::p9_vu9p()};
    auto variants = compiler::generate_variants(m, "k", space,
                                                compiler::CpuModel::power9());
    benchmark::DoNotOptimize(variants.ok());
  }
}
BENCHMARK(BM_VariantGeneration);

void BM_WorkflowSimulation(benchmark::State& state) {
  Rng rng(3);
  workflow::TaskGraph graph = workflow::TaskGraph::random_layered(
      10, static_cast<std::size_t>(state.range(0)), 3, rng);
  std::vector<workflow::WorkerSpec> workers;
  for (int i = 0; i < 16; ++i) {
    workers.push_back({"w" + std::to_string(i), 10.0, 1.0, 10.0});
  }
  workflow::SimulationOptions options;
  options.scheduler = workflow::SchedulerKind::kHeft;
  for (auto _ : state) {
    auto outcome = workflow::simulate_schedule(graph, workers, options);
    benchmark::DoNotOptimize(outcome.ok());
  }
  state.SetItemsProcessed(int64_t(state.iterations()) *
                          int64_t(graph.size()));
}
BENCHMARK(BM_WorkflowSimulation)->Arg(32)->Arg(256);

void BM_PtdrSampling(benchmark::State& state) {
  apps::RoadNetwork city = apps::RoadNetwork::make_grid(12, 12, 9);
  const auto path = city.shortest_path(0, city.num_nodes() - 1, 8);
  Rng rng(5);
  for (auto _ : state) {
    auto dist = apps::ptdr_route_time(
        city, path, 8, static_cast<std::size_t>(state.range(0)), rng);
    benchmark::DoNotOptimize(dist.mean_s);
  }
  state.SetItemsProcessed(int64_t(state.iterations()) * state.range(0));
}
BENCHMARK(BM_PtdrSampling)->Arg(100)->Arg(1000);

// The observability contract: a disabled tracer costs one relaxed load +
// branch per call site (<10 ns; bench_e20 enforces the budget), an
// enabled span pays string materialisation + one ring push, and the
// instruments stay O(ns) so hot paths can record unconditionally.
void BM_SpanDisabled(benchmark::State& state) {
  obs::Tracer tracer;  // disabled
  for (auto _ : state) {
    obs::Tracer::ScopedSpan s = tracer.scoped("noop", "bench");
    benchmark::DoNotOptimize(s);
  }
}
BENCHMARK(BM_SpanDisabled);

void BM_SpanEnabled(benchmark::State& state) {
  obs::TracerConfig config;
  config.enabled = true;
  config.ring_capacity = 1 << 10;
  obs::Tracer tracer(config);
  for (auto _ : state) {
    obs::Tracer::ScopedSpan s = tracer.scoped("op", "bench");
    benchmark::DoNotOptimize(s);
  }
  state.counters["dropped"] = double(tracer.dropped());
}
BENCHMARK(BM_SpanEnabled);

void BM_CounterInc(benchmark::State& state) {
  obs::Counter counter;
  for (auto _ : state) counter.inc();
  benchmark::DoNotOptimize(counter.value());
}
BENCHMARK(BM_CounterInc);

void BM_HistogramRecord(benchmark::State& state) {
  obs::Histogram hist;
  Rng rng(9);
  std::vector<double> values(1024);
  for (double& v : values) v = rng.uniform() * 1e5;
  std::size_t i = 0;
  for (auto _ : state) {
    hist.record(values[i++ & 1023]);
  }
  benchmark::DoNotOptimize(hist.count());
}
BENCHMARK(BM_HistogramRecord);

// Propagating a TraceContext across a forward hop is two 64-bit copies;
// the E25 smoke holds it under 50 ns so cross-node stitching can ride
// every federation forward unconditionally.
void BM_TraceContextPropagation(benchmark::State& state) {
  obs::TraceContext ctx{1, 1};
  for (auto _ : state) {
    ctx = ctx.child(ctx.parent_span + 1);
    benchmark::DoNotOptimize(ctx);
  }
}
BENCHMARK(BM_TraceContextPropagation);

// TimeSeriesStore::append is ring bookkeeping only (the snapshot build
// is the sampler's cost); the E25 smoke holds it under 100 ns.
void BM_TsdbAppend(benchmark::State& state) {
  obs::Registry registry;
  obs::TimeSeriesConfig config;
  config.capacity = 128;
  obs::TimeSeriesStore store(&registry, config);
  for (auto _ : state) {
    store.append(obs::RegistrySnapshot{});
  }
  state.counters["ring"] = double(store.size());
}
BENCHMARK(BM_TsdbAppend);

/// Shared 8-node routing rig for the cluster router benchmarks.
struct RouterRig {
  cluster::Membership membership;
  cluster::ShardMap shard_map;
  cluster::ClusterRouter router;

  RouterRig()
      : membership({"n0", "n1", "n2", "n3", "n4", "n5", "n6", "n7"}),
        shard_map(8, cluster::ShardMapConfig{64, 2, 0x5eedULL}),
        router(&membership, &shard_map,
               [](std::size_t node) { return (node * 7 + 3) % 5; }, 42) {}
};

// Keyless routing is the federation's per-request hot path (two snapshot
// loads + one stateless p2c hash); E21's smoke enforces <200 ns on it.
void BM_RouterKeylessRoute(benchmark::State& state) {
  RouterRig rig;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    auto decision = rig.router.route("");
    if (decision.ok()) sink += decision->node;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RouterKeylessRoute);

void BM_RouterKeyedRoute(benchmark::State& state) {
  RouterRig rig;
  const std::string keys[4] = {"obj3", "obj17", "obj29", "obj41"};
  std::uint64_t sink = 0;
  std::size_t i = 0;
  for (auto _ : state) {
    auto decision = rig.router.route(keys[i++ & 3]);
    if (decision.ok()) sink += decision->node;
  }
  benchmark::DoNotOptimize(sink);
}
BENCHMARK(BM_RouterKeyedRoute);

// Catalog-log append is on the data plane's mutation path (every put/
// place/demote) and, via on_input_staged, on the serve workers' cold
// staging path: encode + CRC + buffered fwrite under one mutex. Arg is
// sync_every — 1 pays an fsync per append, 64 amortizes (group commit).
void BM_CatalogLogAppend(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("everest_bm_wal_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  storage::LogConfig config;
  config.sync_every = static_cast<std::size_t>(state.range(0));
  storage::CatalogLog log(dir, config);
  storage::LogRecord record{storage::LogRecordType::kPlace, 0, 7, 0, 0, 1,
                            1e6};
  std::uint64_t sink = 0;
  for (auto _ : state) {
    record.object = sink & 1023;
    sink += log.append(record).seq;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_CatalogLogAppend)->Arg(1)->Arg(64);

// Segment-store lookup backs every tier residency probe the data plane
// makes on a cache miss (one map walk; no I/O).
void BM_SegmentLocate(benchmark::State& state) {
  storage::SegmentStore store("");  // in-memory: index cost only
  const std::uint64_t keys = 4096;
  for (std::uint64_t i = 0; i < keys; ++i) {
    (void)store.append(data::ShardKey{i, 0, 0}, 1e6);
  }
  double sink = 0.0;
  std::uint64_t i = 0;
  for (auto _ : state) {
    auto located = store.locate(data::ShardKey{i++ & (keys - 1), 0, 0});
    if (located.ok()) sink += located.value();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentLocate);

// Frame verification is the scrubber's inner loop: re-read one sealed
// segment, CRC every frame, and check the chain + footer against the
// index. items/s = records verified per second (ns/record when
// inverted); the byte-rate budget in ScrubConfig is set against this.
void BM_SegmentFrameVerify(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("everest_bm_verify_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  const std::uint64_t records = static_cast<std::uint64_t>(state.range(0));
  storage::SegmentConfig config;
  config.segment_bytes = 1e18;  // everything lands in one segment
  storage::SegmentStore store(dir, config);
  for (std::uint64_t i = 0; i < records; ++i) {
    (void)store.append(data::ShardKey{i, 0, 0}, 1e6);
  }
  store.seal_active();
  const std::uint64_t id = store.sealed_segment_ids().front();
  std::uint64_t sink = 0;
  for (auto _ : state) {
    sink += store.verify_segment(id).frames;
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(records));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SegmentFrameVerify)->Arg(256)->Arg(4096);

// One full scrub pass over a multi-segment store: what a background
// scrub cycle costs end to end. bytes/s = physical segment-file bytes
// scanned per second (the MB/s the ScrubConfig budget throttles).
void BM_ScrubFullPass(benchmark::State& state) {
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("everest_bm_scrub_" + std::to_string(getpid())))
          .string();
  std::filesystem::remove_all(dir);
  storage::SegmentConfig config;
  config.segment_bytes = 1e6;  // ~19k frames per sealed segment
  storage::SegmentStore store(dir, config);
  for (std::uint64_t i = 0; i < 4096; ++i) {
    (void)store.append(data::ShardKey{i, 0, 0}, 4096.0);
  }
  store.seal_active();
  storage::Scrubber scrubber(store);
  double bytes = 0.0;
  for (auto _ : state) {
    bytes += scrubber.full_pass().bytes_scanned;
  }
  benchmark::DoNotOptimize(bytes);
  state.SetBytesProcessed(static_cast<std::int64_t>(bytes));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_ScrubFullPass);

// Window advance is the stream pump's per-event trigger check plus the
// occasional close cascade: fold one event, move the watermark one slide.
// Arg is the keys per topic — cell-map size is the dominant cost.
void BM_StreamWindowAdvance(benchmark::State& state) {
  const std::uint64_t keys = static_cast<std::uint64_t>(state.range(0));
  stream::WindowSpec spec;
  spec.kind = stream::WindowKind::kSliding;
  spec.size_us = 4000;
  spec.slide_us = 1000;
  stream::WindowedOperator op("mean", "aq", spec, stream::mean_accumulator());
  stream::Event event;
  event.topic = "aq";
  std::vector<stream::WindowOutput> out;
  std::uint64_t t = 0;
  std::uint64_t sink = 0;
  for (auto _ : state) {
    t += 250;
    event.key = t % keys;
    event.event_time_us = t;
    event.value = 1.0;
    op.offer(event);
    out.clear();
    op.advance_watermark(t > 4000 ? t - 4000 : 0, &out);
    sink += out.size();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StreamWindowAdvance)->Arg(4)->Arg(64);

// Publish fan-out is the pub/sub invalidation hot path: one put() and a
// delta transfer scheduled per (subscriber, shard). Arg is subscribers.
void BM_StreamPublishFanout(benchmark::State& state) {
  platform::Simulator sim;
  data::PlaneConfig config;
  config.num_nodes = static_cast<std::size_t>(state.range(0)) + 1;
  config.cache_bytes = 64.0 * 1024 * 1024;
  data::DataPlane plane(sim, config);
  stream::ShardPublisher publisher(plane);
  for (std::int64_t node = 1; node <= state.range(0); ++node) {
    publisher.subscribe(1, static_cast<std::size_t>(node));
  }
  for (auto _ : state) {
    (void)publisher.publish(1, 1024.0 * 1024, /*producer=*/0);
    sim.run();
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_StreamPublishFanout)->Arg(1)->Arg(8);

// The JIT's serving-path tax: every batch's coverage probe is one
// covers() call — a hash lookup plus an LRU tick, budgeted <200 ns so
// specialization checks never show up in a p99 (same bar as the cluster
// router's keyless route()). Arg is the number of cached tuples.
void BM_JitVariantCacheLookup(benchmark::State& state) {
  runtime::KnowledgeBase kb;
  jit::VariantCache cache(&kb, nullptr,
                          {static_cast<std::size_t>(state.range(0))});
  compiler::Variant v;
  v.kernel = "k";
  v.threads = 1;
  v.layout = "soa";
  v.latency_us = 10.0;
  for (int b = 0; b < state.range(0); ++b) {
    jit::MintedVariants minted;
    v.id = "jit-k-b" + std::to_string(b);
    minted.variants = {v};
    (void)cache.publish({"k", b, ""}, minted, /*seed=*/1);
  }
  const jit::HotTuple hot{"k", static_cast<int>(state.range(0)) / 2, ""};
  std::uint64_t hits = 0;
  for (auto _ : state) {
    hits += cache.covers(hot);
  }
  benchmark::DoNotOptimize(hits);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JitVariantCacheLookup)->Arg(8)->Arg(64);

// One detector pass over a populated serving registry: parse every
// serve.feature.* series, delta against the previous window, rank by
// requests x regret. Runs once per scan period (default 250 ms), so the
// budget is microseconds, not nanoseconds — but it must stay flat in the
// number of (kernel, bucket, tenant) series. Arg is distinct tuples.
void BM_JitHotTupleScan(benchmark::State& state) {
  runtime::KnowledgeBase kb;
  compiler::Variant v;
  v.kernel = "k";
  v.id = "cpu-generic";
  v.threads = 1;
  v.layout = "soa";
  v.latency_us = 25.0;
  (void)kb.load({v});
  serve::ServingMetrics metrics;
  Rng rng(7);
  for (int t = 0; t < state.range(0); ++t) {
    const double scale = std::exp2(t % 8);
    for (int i = 0; i < 40; ++i) {
      metrics.record_feature("k", "tenant" + std::to_string(t / 8), scale,
                             scale * rng.uniform(20.0, 200.0));
    }
  }
  jit::HotTupleDetector detector(&kb);
  double now_us = 0.0;
  std::size_t sink = 0;
  for (auto _ : state) {
    now_us += 250'000.0;
    sink += detector.scan(metrics.registry().snapshot(now_us)).size();
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_JitHotTupleScan)->Arg(8)->Arg(64);

}  // namespace

BENCHMARK_MAIN();
