// E23 — durability under disk faults (DESIGN.md row 17; the robustness
// counterpart of E22: extreme-scale deployments do not just crash, their
// disks lie — ENOSPC, EIO, torn writes, silent bit rot).
//
// Series 1: fault storm + recover — a replicated durable plane takes a
//           scripted storm of WAL write errors (short writes included)
//           and tier ENOSPC while traffic keeps flowing; the degraded
//           tier sheds demotions, resumes automatically when the medium
//           clears, and after a process death the replayed catalog is
//           byte-identical (fingerprint) with zero acknowledged-write
//           loss.
// Series 2: bit rot + scrub/repair — sealed segments are silently
//           corrupted; the budgeted scrubber quarantines them (keys
//           suspect, never resurrected) and repairs every suspect from
//           the surviving replicas within a bounded MTTR, losing
//           nothing.
// Series 3: read-only goodput — one node's disk goes read-only
//           (ENOSPC) under an out-of-core sweep; reads keep promoting
//           from the tier, so goodput stays within 1.5x of fault-free.
//
// `--smoke` shrinks the series for CI and self-checks the acceptance
// criteria via the exit code.
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "data/plane.hpp"
#include "obs/registry.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"
#include "resilience/fault_plan.hpp"
#include "storage/storage.hpp"

#include "smoke.hpp"

using namespace everest;

namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("everest_e23_") + tag + "_" + std::to_string(getpid())))
      .string();
}

constexpr double kObjectBytes = 1e6;

/// Replicated edge plane over `nodes` nodes: objects are born on node 0,
/// read on the last node over a WAN hop; every node has an NVMe tier.
data::PlaneConfig storm_plane(std::size_t nodes, const std::string& dir,
                              storage::Env* env, obs::Registry* registry) {
  data::PlaneConfig config;
  config.num_nodes = nodes;
  config.replication = 2;
  config.cache_bytes = 1.5e6;
  config.shard_limit_bytes = 4e6;  // 1 MB objects stay single-shard
  config.link = platform::LinkModel::edge_wan();
  config.storage.disk_capacity_bytes = 1e9;
  config.storage.dir = dir;
  config.storage.env = env;
  config.storage.segment.segment_bytes = 4e6;  // seal every ~4 demotions
  config.registry = registry;
  return config;
}

/// Stages objects [1..count] at `dst`, one after the other. Returns the
/// simulated microseconds the scan took.
double scan(platform::Simulator& sim, data::DataPlane& plane, int count,
            std::size_t dst, int rounds = 1) {
  const double start = sim.now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 1; i <= count; ++i) {
      (void)plane.stage(static_cast<data::ObjectId>(i), dst, [] {});
      sim.run();
    }
  }
  return sim.now() - start;
}

bool journal_has(const std::vector<std::string>& journal,
                 const std::string& needle) {
  for (const std::string& line : journal) {
    if (line.find(needle) != std::string::npos) return true;
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf("=== E23: durability under disk faults ===\n\n");
  const int objects = smoke ? 16 : 48;

  // --- Series 1: fault storm, graceful degradation, zero acked loss ------
  std::printf("--- WAL/tier fault storm + crash + replay ---\n");
  Table s1({"metric", "value"});
  {
    const std::string dir = scratch_dir("storm");
    fs::remove_all(dir);
    storage::FaultEnv fenv(storage::Env::posix(), /*seed=*/7);
    obs::Registry registry;
    std::uint64_t online_fp = 0;
    std::uint64_t acked = 0;
    data::PlaneStats storm_stats;
    bool degraded_then_resumed = false;
    {
      platform::Simulator sim;
      data::DataPlane plane(sim, storm_plane(3, dir, &fenv, &registry));
      // Fault-free phase: every put below is an acknowledged write once
      // the replication traffic settles.
      for (int i = 1; i <= objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      sim.run();
      scan(sim, plane, objects, 2);  // fetch + demote into node 2's tier
      // The storm: short-write EIO bursts on the WAL, ENOSPC on node 2's
      // tier — while traffic keeps flowing.
      fenv.inject({"catalog.log", storage::IoOp::kWrite,
                   resilience::FaultKind::kDiskIoError, /*after_calls=*/0,
                   /*count=*/3, /*magnitude=*/0.5});
      fenv.inject({"tier2", storage::IoOp::kWrite,
                   resilience::FaultKind::kDiskIoFull, /*after_calls=*/0,
                   /*count=*/2, /*magnitude=*/1.0});
      for (int i = objects + 1; i <= 2 * objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      sim.run();
      scan(sim, plane, 2 * objects, 2);
      // Medium clears; the next demotion probes bring the tier back and
      // the WAL self-heals on its next sync.
      fenv.clear();
      scan(sim, plane, 2 * objects, 2);
      (void)plane.checkpoint();  // drains any WAL backlog
      scan(sim, plane, objects, 2);  // post-checkpoint mutations
      acked = static_cast<std::uint64_t>(2 * objects);
      online_fp = plane.catalog().fingerprint();
      storm_stats = plane.stats();
      degraded_then_resumed =
          journal_has(plane.scrub_journal(), "tier-read-only node=2") &&
          journal_has(plane.scrub_journal(), "tier-resumed node=2");
    }  // process death (no orderly shutdown)
    platform::Simulator sim;
    data::DataPlane plane(sim, storm_plane(3, dir, nullptr, nullptr));
    const auto report = plane.recover();
    const bool identical =
        report.ok() && plane.catalog().fingerprint() == online_fp;
    std::uint64_t survivors = 0;
    for (std::uint64_t i = 1; i <= acked; ++i) {
      if (plane.available(static_cast<data::ObjectId>(i))) ++survivors;
    }
    s1.add_row({"acked writes", std::to_string(acked)});
    s1.add_row({"available after replay", std::to_string(survivors)});
    s1.add_row({"injected faults",
                std::to_string(fenv.stats().injected_errors)});
    s1.add_row({"tier faults / resumes",
                std::to_string(storm_stats.tier_faults) + " / " +
                    std::to_string(storm_stats.tier_resumes)});
    s1.add_row({"demotions shed",
                std::to_string(storm_stats.demote_rejected)});
    s1.add_row({"fingerprint identical", identical ? "yes" : "NO"});
    checker.check(fenv.stats().injected_errors > 0, "e23.storm.faults_fired");
    checker.check(degraded_then_resumed, "e23.storm.degrade_then_resume");
    checker.check(survivors == acked, "e23.storm.zero_acked_loss");
    checker.check(identical, "e23.storm.catalog_fingerprint_identical");
    fs::remove_all(dir);
  }
  std::printf("%s\n", s1.render().c_str());

  // --- Series 2: bit rot -> scrub -> repair from replicas ----------------
  std::printf("--- silent bit rot + budgeted scrub + replica repair ---\n");
  Table s2({"metric", "value"});
  {
    const std::string dir = scratch_dir("rot");
    fs::remove_all(dir);
    obs::Registry registry;
    platform::Simulator sim;
    data::DataPlane plane(sim, storm_plane(3, dir, nullptr, &registry));
    for (int i = 1; i <= objects; ++i) {
      plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
    }
    sim.run();
    scan(sim, plane, objects, 2);  // demote the working set into tier 2

    // Rot: flip one bit in every other sealed segment file of node 2.
    std::size_t rotted = 0;
    const auto sealed = plane.tier(2)->store().sealed_segment_ids();
    for (std::size_t s = 0; s < sealed.size(); s += 2) {
      const std::string path =
          dir + "/tier2/seg-" + std::to_string(sealed[s]) + ".dat";
      std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
      if (!file) continue;
      file.seekp(10);
      const int byte = file.peek();
      file.seekp(10);
      file.put(static_cast<char>(byte ^ 0x01));
      ++rotted;
    }

    // Budgeted scrub until every sealed segment has been visited; each
    // quarantine triggers an immediate repair from the replicas.
    storage::ScrubReport total;
    for (std::size_t step = 0; step < sealed.size() + 1; ++step) {
      const storage::ScrubReport report = plane.scrub_node(2);
      total.segments_verified += report.segments_verified;
      total.segments_quarantined += report.segments_quarantined;
      sim.run();  // drain the repair transfers before the next step
      if (total.segments_verified + total.segments_quarantined >=
          sealed.size()) {
        break;
      }
    }

    std::uint64_t survivors = 0;
    for (int i = 1; i <= objects; ++i) {
      if (plane.available(static_cast<data::ObjectId>(i))) ++survivors;
    }
    const data::PlaneStats stats = plane.stats();
    const auto mttr = registry.histogram("storage.repair.mttr_us")->snapshot();
    s2.add_row({"sealed segments", std::to_string(sealed.size())});
    s2.add_row({"segments rotted", std::to_string(rotted)});
    s2.add_row({"quarantined", std::to_string(total.segments_quarantined)});
    s2.add_row({"repairs", std::to_string(stats.repairs)});
    s2.add_row({"repairs lost", std::to_string(stats.repair_lost)});
    s2.add_row({"MTTR mean ms", fmt_double(mttr.mean() / 1e3, 3)});
    s2.add_row({"MTTR max ms", fmt_double(mttr.max_seen / 1e3, 3)});
    s2.add_row({"objects surviving", std::to_string(survivors) + "/" +
                                         std::to_string(objects)});
    checker.check(rotted > 0 && total.segments_quarantined == rotted,
                  "e23.scrub.rot_quarantined");
    checker.check(stats.repairs > 0 && stats.repair_lost == 0,
                  "e23.scrub.all_repaired_from_replicas");
    // MTTR bound: every suspect re-sheltered within one simulated second
    // of being found (quarantine -> durable again).
    checker.check(mttr.count == stats.repairs && mttr.max_seen < 1e6,
                  "e23.scrub.mttr_bounded");
    checker.check(survivors == static_cast<std::uint64_t>(objects),
                  "e23.scrub.zero_loss");
    fs::remove_all(dir);
  }
  std::printf("%s\n", s2.render().c_str());

  // --- Series 3: goodput with one node's disk read-only ------------------
  std::printf("--- out-of-core sweep, one disk read-only (ENOSPC) ---\n");
  Table s3({"medium", "goodput MB/s", "tier hits", "demotions shed"});
  {
    const int sweep_objects = smoke ? 24 : 40;
    const int rounds = smoke ? 3 : 6;
    const int fresh_per_round = 4;  // new data arriving mid-sweep
    const double swept_mb =
        (sweep_objects + fresh_per_round) * rounds * kObjectBytes / 1e6;
    double goodput_ok = 0.0;
    double goodput_ro = 0.0;
    bool degradation_engaged = false;
    for (const bool read_only : {false, true}) {
      const std::string dir =
          scratch_dir(read_only ? "sweep_ro" : "sweep_ok");
      fs::remove_all(dir);
      storage::FaultEnv fenv(storage::Env::posix(), /*seed=*/7);
      data::PlaneConfig config = storm_plane(2, dir, &fenv, nullptr);
      config.replication = 1;
      config.cache_bytes = 4e6;  // working set = 10x RAM
      platform::Simulator sim;
      data::DataPlane plane(sim, config);
      for (int i = 1; i <= sweep_objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      sim.run();
      // Warm the tier, untimed: two rounds, so even the shards resident
      // in RAM at the end of round one get evicted-and-demoted — the
      // whole working set is durable before any fault lands.
      scan(sim, plane, sweep_objects, 1, 2);
      if (read_only) {
        // The disk fills: every further segment write (and resume-probe
        // open) fails with ENOSPC for the rest of the run.
        fenv.inject({"tier1", storage::IoOp::kWrite,
                     resilience::FaultKind::kDiskIoFull, 0,
                     std::uint64_t(-1), 1.0});
        fenv.inject({"tier1", storage::IoOp::kOpen,
                     resilience::FaultKind::kDiskIoFull, 0,
                     std::uint64_t(-1), 1.0});
      }
      // Timed sweep: the warm working set plus a trickle of fresh
      // objects each round — the writes that actually hit the full disk.
      const double start = sim.now();
      data::ObjectId fresh_id = 1000;
      for (int r = 0; r < rounds; ++r) {
        for (int i = 1; i <= sweep_objects; ++i) {
          (void)plane.stage(static_cast<data::ObjectId>(i), 1, [] {});
          sim.run();
        }
        for (int k = 0; k < fresh_per_round; ++k, ++fresh_id) {
          plane.put(fresh_id, kObjectBytes, 0);
          (void)plane.stage(fresh_id, 1, [] {});
          sim.run();
        }
      }
      const double us = sim.now() - start;
      const double goodput = swept_mb / (us / 1e6);
      (read_only ? goodput_ro : goodput_ok) = goodput;
      if (read_only) {
        degradation_engaged =
            plane.tier_read_only(1) && plane.stats().demote_rejected > 0;
      }
      s3.add_row({read_only ? "read-only (ENOSPC)" : "healthy",
                  fmt_double(goodput, 1),
                  std::to_string(plane.stats().tier_hits),
                  std::to_string(plane.stats().demote_rejected)});
      fs::remove_all(dir);
    }
    // Graceful degradation: the full disk really tripped read-only mode
    // (writes shed), yet it still serves promotions, so the sweep stays
    // within 1.5x of fault-free goodput.
    checker.check(degradation_engaged, "e23.goodput.degradation_engaged");
    checker.check(goodput_ro > 0.0 && goodput_ok <= 1.5 * goodput_ro,
                  "e23.goodput.read_only_within_1p5x");
  }
  std::printf("%s\n", s3.render().c_str());

  return checker.report("E23");
}
