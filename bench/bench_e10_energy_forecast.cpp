// E10 — use case §VI-A: wind-farm day-ahead forecasting.
//
// Series 1: ensemble downscaling resolution sweep — forecast RMSE and
//           imbalance cost vs compute cost.
// Series 2: equal-time comparison — with hardware acceleration (from the
//           HLS estimator) a higher-resolution ensemble fits the same
//           wall-clock budget and beats the low-res baseline.
#include <cstdio>

#include "apps/energy.hpp"
#include "common/table.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::apps;

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E10: renewable-energy forecast (use case A) ===\n\n");

  WeatherOptions weather;
  weather.ny = 12;
  weather.nx = 12;
  weather.dx_km = 25.0;
  WindFarm farm = WindFarm::make_cluster(
      24, weather.ny * weather.dx_km, weather.nx * weather.dx_km, 42);
  std::printf("farm: %zu turbines, %.0f MW; domain %dx%d @ %.0f km\n\n",
              farm.turbines.size(), farm.capacity_mw(), weather.ny, weather.nx,
              weather.dx_km);

  // --- Series 1: resolution / members sweep -------------------------------
  // Each configuration gets a freshly seeded forecaster so every row sees
  // the SAME training history and the SAME 10 forecast days (paired
  // comparison — the resolution effect is not drowned by weather luck).
  std::printf("resolution sweep (10 paired days):\n");
  Table sweep({"grid", "members", "RMSE (MW)", "imbalance (EUR/d)",
               "compute (MFLOP/d)"});
  struct Config {
    int factor;
    int members;
  };
  const Config configs[] = {{1, 4}, {2, 4}, {4, 4}, {4, 8}, {8, 8}, {10, 16}};
  struct Scored {
    double rmse, cost, flops;
  };
  std::vector<Scored> scored;
  for (const Config c : configs) {
    EnergyForecaster forecaster(weather, farm, 2026);
    forecaster.train(/*days=*/8, /*epochs=*/50);
    ForecastOptions options;
    options.downscale_factor = c.factor;
    options.ensemble_members = c.members;
    double rmse = 0.0, cost = 0.0, flops = 0.0;
    const int days = smoke ? 3 : 10;
    for (int d = 0; d < days; ++d) {
      const ForecastResult r = forecaster.forecast_day(options);
      rmse += r.rmse_mw;
      cost += r.imbalance_cost_eur;
      flops += r.compute_flops;
    }
    scored.push_back({rmse / days, cost / days, flops / days});
    const double res_km = weather.dx_km / c.factor;
    sweep.add_row({fmt_double(res_km, 1) + " km", std::to_string(c.members),
                   fmt_double(rmse / days, 2), fmt_double(cost / days, 0),
                   fmt_double(flops / days / 1e6, 1)});
  }
  std::printf("%s\n", sweep.render().c_str());

  // --- Series 2: equal-time budget, CPU vs accelerated --------------------
  // CPU node: 134 effective GFLOP/s (POWER9 at roofline efficiency); the
  // accelerated pipeline sustains ~8x on the downscale/ensemble kernels
  // (E5's measured speedup for streaming kernels).
  // A fixed wall-clock slot for the weather pipeline translates into a
  // FLOP budget; the accelerated pipeline sustains ~8x the CPU on the
  // streaming downscale/ensemble kernels (E5), so the same slot buys 8x
  // the FLOPs and therefore a finer affordable configuration.
  const double cpu_budget_gflop = 0.025;
  const double accel_budget_gflop = cpu_budget_gflop * 8.0;
  std::printf("equal-time budget (same wall-clock slot, 8x accelerated "
              "pipeline):\n");
  Table budget({"pipeline", "affordable config", "RMSE (MW)",
                "imbalance (EUR/d)"});
  struct Budgeted {
    const char* label;
    double gflops_per_s;
  };
  for (const Budgeted b : {Budgeted{"CPU-only", cpu_budget_gflop},
                           {"HW-accelerated", accel_budget_gflop}}) {
    double best_rmse = 1e300, best_cost = 0.0;
    std::string chosen = "-";
    for (std::size_t i = 0; i < scored.size(); ++i) {
      if (scored[i].flops / 1e9 > b.gflops_per_s) continue;  // over budget
      if (scored[i].rmse < best_rmse) {
        best_rmse = scored[i].rmse;
        best_cost = scored[i].cost;
        chosen = fmt_double(weather.dx_km / configs[i].factor, 1) + " km x" +
                 std::to_string(configs[i].members);
      }
    }
    budget.add_row({b.label, chosen, fmt_double(best_rmse, 2),
                    fmt_double(best_cost, 0)});
  }
  std::printf("%s\n", budget.render().c_str());
  std::printf("shape check: finer grids + more members reduce RMSE and "
              "imbalance cost at superlinear compute; acceleration converts "
              "the same time budget into a better forecast — the use case's "
              "market argument (§VI-D).\n\nE10 done.\n");
  return 0;
}
