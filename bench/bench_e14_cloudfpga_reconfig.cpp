// E14 — §V cloudFPGA shell-role architecture: partial reconfiguration and
// isolation.
//
// Series 1: role-swap latency vs bitstream size, and the request rate at
//           which keeping a warm pool beats reconfiguring on demand.
// Series 2: shell/role isolation — role logic cannot reach shell state or
//           other tenants' data (checked via the taint policy).
#include <cstdio>

#include "common/table.hpp"
#include "platform/node.hpp"
#include "security/taint.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::platform;

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E14: cloudFPGA shell-role reconfiguration (paper §V) "
              "===\n\n");

  // --- Series 1: reconfiguration latency ----------------------------------
  std::printf("role-swap latency vs partial bitstream size (6 ms/MiB ICAP "
              "path):\n");
  Table swap({"role bitstream", "swap latency (ms)"});
  for (double mib : {4.0, 9.0, 18.0, 36.0, 72.0}) {
    FpgaSlot slot;
    slot.reconfig_ms_per_mib = 6.0;
    slot.role_bitstream_mib = mib;
    swap.add_row({fmt_double(mib, 0) + " MiB",
                  fmt_double(slot.reconfig_us("role") / 1e3, 0)});
  }
  std::printf("%s\n", swap.render().c_str());

  // Warm pool vs reconfigure-on-demand under alternating kernels.
  std::printf("two alternating kernels, one vs two network FPGAs:\n");
  Table pool({"strategy", "per-request overhead (ms)", "kernels resident"});
  FpgaSlot single;
  single.reconfig_ms_per_mib = 6.0;
  single.role_bitstream_mib = 18.0;
  // Strict alternation forces a swap every request on a single device.
  double single_overhead = 0.0;
  std::string roles[2] = {"kernelA", "kernelB"};
  for (int i = 0; i < 10; ++i) {
    single_overhead += single.reconfig_us(roles[i % 2]);
    single.current_role = roles[i % 2];
  }
  pool.add_row({"1 FPGA, reconfigure on demand",
                fmt_double(single_overhead / 10 / 1e3, 1), "1"});
  // Two devices: each keeps one role warm.
  FpgaSlot a = single, b = single;
  a.current_role = "";
  b.current_role = "";
  double dual_overhead = a.reconfig_us("kernelA") + b.reconfig_us("kernelB");
  a.current_role = "kernelA";
  b.current_role = "kernelB";
  for (int i = 0; i < 8; ++i) {
    dual_overhead += (i % 2 == 0 ? a : b).reconfig_us(roles[i % 2]);
  }
  pool.add_row({"2 FPGAs, warm roles",
                fmt_double(dual_overhead / 10 / 1e3, 1), "2"});
  std::printf("%s\n", pool.render().c_str());

  // Break-even arrival rate: reconfig pays off only below it.
  const double swap_ms = 108.0;  // 18 MiB role
  std::printf("break-even: with %.0f ms swaps, alternating request streams "
              "above %.1f req/s justify a second disaggregated device — "
              "scale-out instead of time-sharing (the cloudFPGA argument).\n\n",
              swap_ms, 1000.0 / (2 * swap_ms));

  // --- Series 2: shell-role isolation -------------------------------------
  std::printf("shell-role isolation via the information-flow policy:\n");
  security::TaintTracker taint;
  taint.set_label("shell.mgmt_state",
                  security::TaintLabel({"shell-privileged"}));
  taint.set_label("tenantA.data", security::TaintLabel({"tenantA"}));
  taint.set_label("tenantB.data", security::TaintLabel({"tenantB"}));
  // Role A processes its own data: fine.
  taint.propagate("roleA", {"tenantA.data"}, {"tenantA.result"});
  security::TaintLabel role_a_clearance({"tenantA"});
  const Status ok = taint.check_sink("tenantA.result", role_a_clearance);
  std::printf("  roleA -> tenantA sink: %s\n", ok.ok() ? "allowed" : "BLOCKED");
  // Role A attempting to read shell state / tenant B: blocked by policy.
  taint.propagate("roleA-evil", {"tenantA.data", "shell.mgmt_state"},
                  {"exfil"});
  const Status blocked = taint.check_sink("exfil", role_a_clearance);
  std::printf("  roleA touching shell state -> tenantA sink: %s (%s)\n",
              blocked.ok() ? "ALLOWED (BUG)" : "blocked",
              std::string(to_string(blocked.code())).c_str());
  taint.propagate("roleA-cross", {"tenantB.data"}, {"crossed"});
  const Status cross = taint.check_sink("crossed", role_a_clearance);
  std::printf("  roleA reading tenantB data -> tenantA sink: %s\n",
              cross.ok() ? "ALLOWED (BUG)" : "blocked");
  std::printf("\nshape check: swap latency scales linearly with bitstream "
              "size; warm scale-out amortizes it away; privileged shell "
              "state never flows to tenant sinks — the isolation property "
              "the shell-role split provides (paper §V).\n\nE14 done.\n");
  return 0;
}
