// E24 — continuous ingestion + incremental analytics as a first-class
// workload. Five series, one per acceptance criterion:
//   (1) sustained ingestion — the two-lane admission path folds a
//       full-throttle event schedule at >= 20k events/s, with and
//       without the WAL journal, under Poisson and bursty arrivals;
//   (2) result staleness vs window size — p99 of (frontier − window
//       start) at delivery grows monotonically over {1s, 4s, 16s}
//       tumbling windows: the analytics freshness knob is the window;
//   (3) pub/sub invalidation — publishing a new object version pushes
//       shard DELTAS to subscriber caches over the shared transfer
//       fabric, moving strictly fewer bytes than the refetch it
//       replaces while leaving the cache warm at the new version;
//   (4) mixed tenancy — a batch serving tenant keeps its p99 within 2x
//       of its streaming-free baseline while a paced event stream
//       ingests concurrently (admission isolation, not best-effort);
//   (5) crash-mid-window failover — a scripted home-node crash, WAL
//       replay past the acked horizon, and session re-attach yield a
//       client-visible output sequence byte-identical to an
//       uninterrupted run (fingerprint equality).
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "data/plane.hpp"
#include "platform/desim.hpp"
#include "serve/endpoints.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "stream/engine.hpp"
#include "stream/federated.hpp"
#include "stream/operators.hpp"
#include "stream/pubsub.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::stream;

namespace fs = std::filesystem;
using WallClock = std::chrono::steady_clock;

namespace {

constexpr std::uint64_t kSeed = 2026;

std::string scratch_dir(const std::string& tag) {
  return (fs::temp_directory_path() /
          ("everest_e24_" + tag + "_" + std::to_string(::getpid())))
      .string();
}

Event to_event(const serve::EventArrival& arrival) {
  Event event;
  event.topic = arrival.topic;
  event.key = arrival.key;
  event.event_time_us = arrival.event_time_us;
  event.value = arrival.value;
  event.seed = arrival.seed;
  event.sla = arrival.latency_critical ? serve::SlaClass::kLatencyCritical
                                       : serve::SlaClass::kThroughput;
  return event;
}

Event punctuation(std::string topic, std::uint64_t t_us) {
  Event event;
  event.topic = std::move(topic);
  event.event_time_us = t_us;
  event.punctuation = true;
  return event;
}

// ---- series 1: sustained ingestion ---------------------------------------

struct IngestRow {
  serve::EventStreamReport offered;
  std::uint64_t folded = 0;
  double fold_eps = 0.0;  ///< events folded per wall second (incl. flush)
};

IngestRow run_ingest(serve::EventStreamSpec::Arrival arrival, bool wal,
                     double events_per_s, std::chrono::milliseconds horizon,
                     const std::string& wal_dir) {
  EngineConfig config;
  config.ingest.queue_capacity = 1 << 17;
  if (wal) {
    fs::create_directories(wal_dir);
    config.ingest.wal_dir = wal_dir;
  }
  StreamEngine engine(config);
  WindowSpec spec;
  spec.size_us = 50'000;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "count", "fcd", spec, count_accumulator()));
  engine.start();

  serve::EventStreamSpec stream_spec;
  stream_spec.topics = {"fcd"};
  stream_spec.clients = 4;
  stream_spec.events_per_s = events_per_s;
  stream_spec.duration = horizon;
  stream_spec.arrival = arrival;
  stream_spec.keys_per_topic = 32;
  stream_spec.lc_fraction = 0.1;
  stream_spec.seed = kSeed;

  IngestRow row;
  const WallClock::time_point start = WallClock::now();
  row.offered = serve::run_event_stream(
      [&](const serve::EventArrival& arrival_event) {
        return engine.ingest(to_event(arrival_event));
      },
      stream_spec, /*pace=*/false);
  engine.flush();
  const double wall_s =
      std::chrono::duration_cast<std::chrono::nanoseconds>(WallClock::now() -
                                                           start)
          .count() /
      1e9;
  row.folded = engine.stats().events_processed;
  row.fold_eps = wall_s > 0.0 ? static_cast<double>(row.folded) / wall_s : 0.0;
  engine.stop();
  if (wal) fs::remove_all(wal_dir);
  return row;
}

// ---- series 2: staleness vs window size ----------------------------------

double staleness_p99_s(std::uint64_t window_us, double events_per_s) {
  EngineConfig config;
  config.ingest.queue_capacity = 1 << 17;
  StreamEngine engine(config);
  WindowSpec spec;
  spec.size_us = window_us;
  engine.add_operator(std::make_unique<WindowedOperator>(
      "mean", "aq", spec, mean_accumulator()));
  SessionConfig session_config;
  session_config.queue_capacity = 1 << 15;  // never drop: unbiased sample
  auto session = engine.subscribe("dashboard", "aq", session_config);
  if (!session.ok()) return 0.0;
  engine.start();

  // Event-time horizon covers two of the largest windows plus slack, so
  // even the 16 s windows close more than once.
  serve::EventStreamSpec stream_spec;
  stream_spec.topics = {"aq"};
  stream_spec.clients = 2;
  stream_spec.events_per_s = events_per_s;
  stream_spec.duration = std::chrono::milliseconds(33'000);
  stream_spec.keys_per_topic = 8;
  stream_spec.seed = kSeed;
  serve::run_event_stream(
      [&](const serve::EventArrival& arrival) {
        return engine.ingest(to_event(arrival));
      },
      stream_spec, /*pace=*/false);
  engine.ingest(punctuation("aq", 34'000'000));
  engine.flush();

  std::vector<double> staleness_us;
  for (const Delivery& delivery : session.value()->drain()) {
    staleness_us.push_back(static_cast<double>(
        delivery.frontier_us - delivery.output.window_start_us));
  }
  engine.stop();
  if (staleness_us.empty()) return 0.0;
  return percentile(staleness_us, 99.0) / 1e6;
}

// ---- series 5: crash-mid-window failover ---------------------------------

struct FailoverRun {
  std::vector<WindowOutput> delivered;
  std::uint64_t fp = 0;
  FabricStats stats;
  bool ok = true;  ///< every fabric call succeeded
};

/// One topic through a 2-node fabric: 60 events at 1 ms spacing, client
/// acks after every delivery. `crash_at` != 0 fail-stops the home node
/// after that event (mid-window) and re-homes before the rest flows.
FailoverRun run_failover_scenario(const std::string& wal_root,
                                  std::size_t crash_at) {
  FabricConfig config;
  config.num_nodes = 2;
  config.wal_root = wal_root;
  config.engine.ingest.wal.sync_every = 1;  // acked == durable
  StreamFabric fabric(config);
  WindowSpec spec;
  spec.size_us = 10'000;
  FailoverRun run;
  run.ok &= fabric
                .register_topic("aq",
                                [spec] {
                                  return std::make_unique<WindowedOperator>(
                                      "mean", "aq", spec, mean_accumulator());
                                })
                .ok();
  fabric.start();
  auto session = fabric.subscribe("tenant", "aq");
  run.ok &= session.ok();
  if (!run.ok) return run;
  const std::size_t home_before = fabric.home_of("aq").value();

  auto consume = [&] {
    for (const Delivery& delivery : session.value()->drain()) {
      run.delivered.push_back(delivery.output);
      session.value()->ack(delivery.output.window_end_us);
    }
  };

  Rng rng(99);
  for (std::size_t i = 0; i < 60; ++i) {
    Event event;
    event.topic = "aq";
    event.key = i % 3;
    event.event_time_us = (i + 1) * 1000;
    event.value = rng.uniform(0, 50);
    run.ok &= fabric.ingest(std::move(event)).ok();
    if ((i + 1) % 10 == 0) {
      fabric.flush();
      consume();
    }
    if (crash_at != 0 && i + 1 == crash_at) {
      fabric.flush();
      consume();
      fabric.crash(home_before);
      run.ok &= fabric.handle_failover() == std::vector<std::string>{"aq"};
    }
  }
  run.ok &= fabric.ingest(punctuation("aq", 100'000)).ok();
  fabric.flush();
  consume();
  fabric.stop();
  run.fp = fingerprint(run.delivered);
  run.stats = fabric.stats();
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf("=== E24: continuous ingestion + incremental analytics ===\n\n");

  // --- Series 1: sustained ingestion throughput -------------------------
  std::printf("--- sustained ingestion (full-throttle schedule, 50 ms count "
              "windows, 4 producers) ---\n");
  const auto ingest_horizon = std::chrono::milliseconds(smoke ? 200 : 400);
  Table s1({"offered eps", "arrival", "wal", "admitted", "rejected",
            "folded", "fold eps"});
  double best_fold_eps = 0.0;
  const std::vector<double> rates =
      smoke ? std::vector<double>{50'000.0}
            : std::vector<double>{20'000.0, 50'000.0, 100'000.0};
  for (double rate : rates) {
    for (auto arrival : {serve::EventStreamSpec::Arrival::kPoisson,
                         serve::EventStreamSpec::Arrival::kBurst}) {
      for (bool wal : {false, true}) {
        const IngestRow row =
            run_ingest(arrival, wal, rate, ingest_horizon,
                       scratch_dir("ingest"));
        best_fold_eps = std::max(best_fold_eps, row.fold_eps);
        s1.add_row({fmt_double(rate, 0),
                    arrival == serve::EventStreamSpec::Arrival::kPoisson
                        ? "poisson"
                        : "burst",
                    wal ? "on" : "off",
                    std::to_string(row.offered.admitted),
                    std::to_string(row.offered.rejected),
                    std::to_string(row.folded), fmt_double(row.fold_eps, 0)});
      }
    }
  }
  std::printf("%s", s1.render().c_str());
  checker.check(best_fold_eps >= 20'000.0, "ingest-sustains-20k-events-per-s");

  // --- Series 2: staleness vs window size -------------------------------
  std::printf("\n--- result staleness vs window size (tumbling, 33 s "
              "event-time horizon) ---\n");
  const double staleness_eps = smoke ? 600.0 : 2000.0;
  Table s2({"window s", "staleness p99 s"});
  std::vector<double> staleness;
  for (std::uint64_t window_us :
       {std::uint64_t{1'000'000}, std::uint64_t{4'000'000},
        std::uint64_t{16'000'000}}) {
    staleness.push_back(staleness_p99_s(window_us, staleness_eps));
    s2.add_row({fmt_double(window_us / 1e6, 0),
                fmt_double(staleness.back(), 3)});
  }
  std::printf("%s", s2.render().c_str());
  checker.check(staleness[0] > 0.0 && staleness[0] < staleness[1] &&
                    staleness[1] < staleness[2],
                "staleness-p99-monotone-in-window-size");

  // --- Series 3: pub/sub delta push vs refetch --------------------------
  std::printf("\n--- pub/sub invalidation: delta push vs full refetch "
              "(4 MB object, 10%% deltas, 8 publishes) ---\n");
  {
    platform::Simulator sim;
    data::PlaneConfig plane_config;
    plane_config.num_nodes = 4;
    plane_config.cache_bytes = 32.0 * 1024 * 1024;
    data::DataPlane plane(sim, plane_config);
    ShardPublisher publisher(plane);
    const data::ObjectId object = 7;
    publisher.subscribe(object, 2);
    publisher.subscribe(object, 3);
    bool publishes_ok = true;
    for (int i = 0; i < 8; ++i) {
      publishes_ok &=
          publisher.publish(object, 4.0 * 1024 * 1024, /*producer=*/0).ok();
      sim.run();
    }
    const PublishStats& stats = publisher.stats();
    bool warm = true;
    const data::DataObject* obj = plane.find(object);
    if (obj == nullptr) {
      warm = false;
    } else {
      for (const data::ShardKey& key : obj->keys()) {
        warm &= plane.cache(2).contains(key) && plane.cache(3).contains(key);
      }
    }
    Table s3({"publishes", "deltas pushed", "delta MB", "refetch MB",
              "subscriber caches warm"});
    s3.add_row({std::to_string(stats.publishes),
                std::to_string(stats.deltas_pushed),
                fmt_double(stats.delta_bytes / (1024.0 * 1024), 2),
                fmt_double(stats.full_bytes / (1024.0 * 1024), 2),
                warm ? "yes" : "no"});
    std::printf("%s", s3.render().c_str());
    checker.check(publishes_ok && stats.deltas_arrived == stats.deltas_pushed &&
                      stats.delta_bytes < stats.full_bytes && warm,
                  "pubsub-delta-cheaper-than-refetch-and-cache-warm");
  }

  // --- Series 4: mixed batch + streaming tenancy ------------------------
  std::printf("\n--- mixed tenancy: batch p99 with a concurrent paced event "
              "stream ---\n");
  {
    const auto horizon = std::chrono::milliseconds(smoke ? 250 : 500);
    const std::vector<serve::Endpoint> endpoints = serve::standard_endpoints();
    serve::WorkloadSpec batch_spec;
    batch_spec.kernels = {"energy_forecast"};
    batch_spec.offered_rps = 200.0;
    batch_spec.duration = horizon;
    batch_spec.lc_fraction = 0.2;
    batch_spec.lc_deadline_ms = 0.0;
    batch_spec.tp_deadline_ms = 0.0;  // isolate latency from expiry
    batch_spec.seed = kSeed;
    auto make_options = [] {
      serve::ServerOptions options;
      options.worker_threads = 2;
      options.queue_capacity = 64;
      options.batch.max_batch = 8;
      options.batch.max_wait = std::chrono::microseconds(2000);
      return options;
    };
    auto serve_batch = [&](bool with_stream) {
      runtime::KnowledgeBase kb;
      serve::Server server(make_options(), &kb);
      for (const serve::Endpoint& ep : endpoints) {
        (void)server.register_endpoint(ep);
      }
      (void)server.start();
      serve::LoadReport report;
      if (with_stream) {
        EngineConfig config;
        config.ingest.queue_capacity = 1 << 16;
        StreamEngine engine(config);
        WindowSpec spec;
        spec.size_us = 100'000;
        engine.add_operator(std::make_unique<WindowedOperator>(
            "count", "fcd", spec, count_accumulator()));
        engine.start();
        serve::EventStreamSpec stream_spec;
        stream_spec.topics = {"fcd"};
        stream_spec.clients = 2;
        stream_spec.events_per_s = 10'000.0;
        stream_spec.duration = horizon;
        stream_spec.seed = kSeed;
        // Paced: the stream competes for the machine in real time, the
        // way a co-located ingest pipeline would.
        std::thread producer([&] {
          serve::run_event_stream(
              [&](const serve::EventArrival& arrival) {
                return engine.ingest(to_event(arrival));
              },
              stream_spec, /*pace=*/true);
        });
        report = serve::run_open_loop(server, batch_spec);
        producer.join();
        engine.stop();
      } else {
        report = serve::run_open_loop(server, batch_spec);
      }
      server.stop();
      return report;
    };
    const serve::LoadReport baseline = serve_batch(/*with_stream=*/false);
    const serve::LoadReport mixed = serve_batch(/*with_stream=*/true);
    Table s4({"tenant mix", "completed", "p50 ms", "p99 ms"});
    s4.add_row({"batch alone", std::to_string(baseline.completed),
                fmt_double(baseline.p50_us() / 1e3, 2),
                fmt_double(baseline.p99_us() / 1e3, 2)});
    s4.add_row({"batch + 10k eps stream", std::to_string(mixed.completed),
                fmt_double(mixed.p50_us() / 1e3, 2),
                fmt_double(mixed.p99_us() / 1e3, 2)});
    std::printf("%s", s4.render().c_str());
    checker.check(baseline.p99_us() > 0.0 &&
                      mixed.p99_us() <= 2.0 * baseline.p99_us(),
                  "batch-p99-within-2x-of-streaming-free-baseline");
  }

  // --- Series 5: crash-mid-window failover replay -----------------------
  std::printf("\n--- crash-mid-window failover: client-visible byte "
              "identity ---\n");
  {
    const std::string base = scratch_dir("failover");
    const std::string baseline_root = base + "/baseline";
    const std::string crashed_root = base + "/crashed";
    fs::create_directories(baseline_root);
    fs::create_directories(crashed_root);
    const FailoverRun baseline = run_failover_scenario(baseline_root, 0);
    // Crash at event 35: window [30000, 40000) is mid-flight.
    const FailoverRun crashed = run_failover_scenario(crashed_root, 35);
    fs::remove_all(base);
    Table s5({"run", "outputs", "fingerprint", "failovers", "replayed"});
    s5.add_row({"uninterrupted", std::to_string(baseline.delivered.size()),
                std::to_string(baseline.fp),
                std::to_string(baseline.stats.failovers),
                std::to_string(baseline.stats.replayed_events)});
    s5.add_row({"crash @ event 35", std::to_string(crashed.delivered.size()),
                std::to_string(crashed.fp),
                std::to_string(crashed.stats.failovers),
                std::to_string(crashed.stats.replayed_events)});
    std::printf("%s", s5.render().c_str());
    checker.check(baseline.ok && crashed.ok && !baseline.delivered.empty() &&
                      crashed.stats.failovers == 1 &&
                      crashed.stats.replayed_events > 0 &&
                      baseline.delivered.size() == crashed.delivered.size() &&
                      baseline.fp == crashed.fp,
                  "failover-replay-byte-identical");
  }

  std::printf("\n");
  return checker.report("E24");
}
