// E1 — Fig. 1: the data-driven compilation flow, end to end.
//
// DSL → unified IR → middle-end transforms → software + hardware variants
// with estimated cost metadata. The "figure" is functional: we print each
// stage's artifact sizes and the resulting variant table per kernel, which
// is exactly the data Fig. 1's pipeline produces.
#include <cstdio>

#include "apps/mlp.hpp"
#include "common/table.hpp"
#include "compiler/dse.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"
#include "ir/pass.hpp"
#include "ir/printer.hpp"
#include "ir/verifier.hpp"

#include "smoke.hpp"

using namespace everest;

namespace {

std::size_t count_ops(ir::Module& m) {
  std::size_t n = 0;
  m.walk([&](ir::Operation&) { ++n; });
  return n;
}

void run_kernel_through_flow(const char* label, dsl::TensorProgram& program) {
  std::printf("--- kernel: %s ---\n", label);
  auto module_or = program.lower();
  if (!module_or.ok()) {
    std::printf("  front-end failed: %s\n",
                module_or.status().to_string().c_str());
    return;
  }
  ir::Module module = std::move(module_or).value();
  std::printf("  front-end: unified IR, %zu ops, verified=%s\n",
              count_ops(module), ir::verify(module).ok() ? "yes" : "no");

  // Middle-end cleanups.
  ir::PassManager pm;
  pm.add<compiler::ConstantFoldPass>();
  pm.add<compiler::CsePass>();
  pm.add<compiler::DcePass>();
  if (Status st = pm.run(module); !st.ok()) {
    std::printf("  middle-end failed: %s\n", st.to_string().c_str());
    return;
  }
  std::printf("  middle-end: %zu ops after fold/cse/dce (%zu passes timed)\n",
              count_ops(module), pm.records().size());

  // Kernel lowering for the hardware path.
  auto kernel_name = compiler::lower_to_kernel(module, program.name());
  if (kernel_name.ok()) {
    std::printf("  lowering: %s with %zu loop nests\n", kernel_name->c_str(),
                compiler::count_loop_nests(*module.find(*kernel_name)));
  }

  // Variant generation (the flow's output).
  compiler::VariantSpace space;
  space.thread_counts = {1, 4, 16};
  space.tile_sizes = {0, 64};
  space.layouts = {"soa", "aos"};
  space.unroll_factors = {1, 4, 8};
  space.devices = {hls::FpgaDevice::p9_vu9p(),
                   hls::FpgaDevice::cloudfpga_ku060()};
  auto variants = compiler::generate_variants(module, program.name(), space,
                                              compiler::CpuModel::power9());
  if (!variants.ok()) {
    std::printf("  variant generation failed: %s\n",
                variants.status().to_string().c_str());
    return;
  }
  std::size_t sw = 0, hw = 0;
  for (const auto& v : *variants) {
    (v.target == compiler::TargetKind::kCpu ? sw : hw) += 1;
  }
  const auto front = compiler::pareto_variants(*variants);
  std::printf("  backend: %zu variants (%zu sw, %zu hw), Pareto front %zu\n",
              variants->size(), sw, hw, front.size());

  Table table({"variant", "target", "latency us", "energy uJ", "area %"});
  for (const auto& v : front) {
    table.add_row({v.id, std::string(compiler::to_string(v.target)),
                   fmt_double(v.latency_us, 1), fmt_double(v.energy_uj, 1),
                   fmt_double(v.area_fraction * 100, 2)});
  }
  std::printf("  Pareto-front variants exposed to the runtime:\n%s\n",
              table.render().c_str());

  // Metadata round trip (Fig. 1's "variant metadata" edge to the runtime).
  const std::string json_text = compiler::variants_to_json(*variants).dump();
  std::printf("  metadata: %zu bytes of JSON for the runtime\n\n",
              json_text.size());
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E1: data-driven compilation flow (paper Fig. 1) ===\n\n");

  {
    dsl::TensorProgram p("ensemble_postproc");
    auto x = p.input("ens", {32, 256});
    auto w = p.input("w", {256, 64});
    p.output("y", relu(matmul(x, w)));
    run_kernel_through_flow("ensemble_postproc (matmul+relu)", p);
  }
  {
    dsl::TensorProgram p("plume_kernel");
    auto c = p.input("conc", {128, 128});
    auto decay = p.input("decay", {128, 128});
    p.output("out", exp(scale(c * decay, -0.5)));
    run_kernel_through_flow("plume_kernel (elementwise+exp)", p);
  }
  {
    Rng rng(3);
    apps::Mlp net({8, 32, 4}, rng);
    dsl::TensorProgram p = net.to_tensor_program("mlp_infer", 16);
    run_kernel_through_flow("mlp_infer (AI kernel from framework)", p);
  }
  std::printf("E1 done.\n");
  return 0;
}
