// E20 — observability: overhead and fidelity of the unified tracing +
// metrics layer (src/obs).
//
// Series A: cost of a *disabled* span call site — the price every hot
//           path pays for having tracing compiled in. Acceptance: <10 ns.
// Series B: the E17 serving sweep replayed with tracing on. Every
//           admitted request must leave one complete span chain
//           (admission → queue → batch → execute → reply), parentage
//           must be acyclic, and the registry histogram's p99 must agree
//           with the exact-reservoir ServingMetrics p99 within one
//           bucket width. The trace exports as Chrome trace-event JSON
//           (load it in Perfetto / chrome://tracing).
// Series C: the E8 workflow strong-scaling sweep replayed with sim-time
//           tracing on, plus one chaos point (data plane + node crash)
//           — tracing must not perturb the simulation (byte-identical
//           makespans) and the trace must carry the fault instants.
//
// `--smoke` shrinks the sweeps and self-checks all criteria via the
// exit code.
#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/json.hpp"
#include "common/rng.hpp"
#include "common/table.hpp"
#include "data/plane.hpp"
#include "obs/obs.hpp"
#include "resilience/fault_plan.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::serve;
using namespace everest::workflow;

namespace {

constexpr std::uint64_t kSeed = 2026;

/// Builds a fresh server (and knowledge base) for one sweep point.
struct Service {
  runtime::KnowledgeBase kb;
  Server server;
  Service(ServerOptions options, const std::vector<Endpoint>& endpoints)
      : server(options, &kb) {
    for (const Endpoint& ep : endpoints) {
      Status st = server.register_endpoint(ep);
      if (!st.ok()) std::printf("register failed: %s\n", st.to_string().c_str());
    }
    (void)server.start();
  }
};

/// Nanoseconds per disabled-span call site, best of `repeats` timed
/// loops (the best run is the one least disturbed by the scheduler).
double disabled_span_ns(int repeats, int iters) {
  obs::Tracer tracer;  // default config: disabled
  double best = 1e9;
  for (int r = 0; r < repeats; ++r) {
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < iters; ++i) {
      obs::Tracer::ScopedSpan s = tracer.scoped("noop", "bench");
      // Keep the span object observable so the loop is not deleted.
      asm volatile("" : : "r"(&s) : "memory");
    }
    const auto end = std::chrono::steady_clock::now();
    const double ns =
        std::chrono::duration<double, std::nano>(end - start).count() /
        static_cast<double>(iters);
    best = std::min(best, ns);
  }
  return best;
}

std::size_t count_roots(const std::vector<obs::TraceEvent>& events,
                        const char* name) {
  std::size_t n = 0;
  for (const auto& ev : events) {
    if (ev.kind == obs::TraceEvent::Kind::kSpan && ev.parent_id == 0 &&
        ev.name == name) {
      ++n;
    }
  }
  return n;
}

std::size_t count_named(const std::vector<obs::TraceEvent>& events,
                        const char* name) {
  std::size_t n = 0;
  for (const auto& ev : events) {
    if (ev.name == name) ++n;
  }
  return n;
}

/// Serializes + re-parses the trace through common/json and writes it to
/// `path`. Returns false when the round trip fails.
bool export_and_validate(const std::vector<obs::TraceEvent>& events,
                         const char* path) {
  const std::string text = obs::chrome_trace(events);
  auto parsed = json::parse(text);
  if (!parsed.ok()) {
    std::printf("trace JSON re-parse failed: %s\n",
                parsed.status().to_string().c_str());
    return false;
  }
  if (!parsed->contains("traceEvents") ||
      parsed->at("traceEvents").as_array().empty()) {
    std::printf("trace JSON has no traceEvents\n");
    return false;
  }
  std::ofstream out(path);
  out << text;
  std::printf("wrote %s (%zu events, %zu bytes)\n", path, events.size(),
              text.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf("=== E20: observability — tracing overhead and fidelity ===\n\n");

  // --- Series A: disabled-span overhead ----------------------------------
  std::printf("--- cost of a disabled span call site ---\n");
  const double ns = disabled_span_ns(/*repeats=*/5, smoke ? 2000000 : 5000000);
  std::printf("disabled scoped span: %.2f ns per call site (budget: 10 ns)\n\n",
              ns);
  checker.check(ns < 10.0, "disabled span call site costs <10 ns");

  // --- Series B: E17 serving sweep with tracing on ------------------------
  std::printf("--- E17 replay: mixed-SLA serving with request tracing ---\n");
  const auto horizon = std::chrono::milliseconds(smoke ? 120 : 400);
  const std::vector<Endpoint> endpoints = standard_endpoints();
  Table s2({"offered rps", "admitted", "request roots", "span events",
            "exact p99 ms", "hist p99 ms", "bucket width ms"});
  std::vector<obs::TraceEvent> serving_events;
  std::string registry_text;
  const std::vector<double> offered_sweep =
      smoke ? std::vector<double>{300.0, 800.0}
            : std::vector<double>{300.0, 800.0, 1600.0};
  for (double offered : offered_sweep) {
    obs::TracerConfig tcfg;
    tcfg.enabled = true;
    tcfg.ring_capacity = 1 << 16;
    obs::Tracer tracer(tcfg);

    ServerOptions options;
    options.worker_threads = 2;
    options.queue_capacity = 128;
    options.batch.max_batch = 8;
    options.batch.lc_max_batch = 2;
    options.batch.max_wait = std::chrono::microseconds(2000);
    options.tracer = &tracer;
    Service service(options, endpoints);

    WorkloadSpec spec;
    spec.kernels = {"energy_forecast", "aq_dispersion", "ptdr_route"};
    spec.offered_rps = offered;
    spec.duration = horizon;
    spec.lc_fraction = 0.3;
    spec.lc_deadline_ms = 50.0;
    spec.tp_deadline_ms = 500.0;
    spec.seed = kSeed;
    (void)run_open_loop(service.server, spec);
    const MetricsSnapshot snap = service.server.metrics().snapshot();
    const obs::HistogramSnapshot hist =
        service.server.metrics().latency_histogram();
    registry_text = service.server.metrics().registry().to_text();
    service.server.stop();

    const std::vector<obs::TraceEvent> events = tracer.collect();
    const std::size_t roots = count_roots(events, "request");
    const double hist_p99 = hist.percentile(99.0);
    const double width = hist.bucket_width_at(99.0);
    s2.add_row({fmt_double(offered, 0), std::to_string(snap.admitted),
                std::to_string(roots), std::to_string(events.size()),
                fmt_double(snap.p99_us / 1e3, 2), fmt_double(hist_p99 / 1e3, 2),
                fmt_double(width / 1e3, 2)});

    checker.check(tracer.dropped() == 0, "serving trace dropped no events");
    checker.check(obs::spans_acyclic(events), "serving span parentage acyclic");
    checker.check(obs::span_chains_complete(events),
                  "serving span chains complete");
    checker.check(roots == snap.admitted,
                  "every admitted request has a root span");
    checker.check(std::abs(hist_p99 - snap.p99_us) <= width,
                  "histogram p99 within 1 bucket of exact p99");
    serving_events = events;
  }
  std::printf("%s\n", s2.render().c_str());
  checker.check(export_and_validate(serving_events, "e20_serving_trace.json"),
                "serving Chrome trace is valid JSON");
  std::printf("each admitted request renders as queue/batch/execute/reply\n"
              "children under one root span; drops, rejects, and injected\n"
              "faults show up as instants on the worker tracks.\n\n");

  // --- Series C: E8 workflow scaling with sim-time tracing -----------------
  std::printf("--- E8 replay: strong scaling with per-task sim-time spans ---\n");
  Rng rng(3);
  TaskGraph graph = TaskGraph::random_layered(10, 64, 3, rng, 2e8, 1e6);
  Table s3({"workers", "makespan (ms)", "traced makespan (ms)", "span events"});
  const std::vector<std::size_t> pools =
      smoke ? std::vector<std::size_t>{1, 4, 16}
            : std::vector<std::size_t>{1, 2, 4, 8, 16, 32};
  for (std::size_t n : pools) {
    std::vector<WorkerSpec> workers;
    for (std::size_t i = 0; i < n; ++i) {
      workers.push_back({"w" + std::to_string(i), 10.0, 1.0, 10.0});
    }
    SimulationOptions base;
    base.scheduler = SchedulerKind::kHeft;
    auto plain = simulate_schedule(graph, workers, base);

    obs::TracerConfig tcfg;
    tcfg.enabled = true;
    obs::Tracer tracer(tcfg);
    SimulationOptions traced = base;
    traced.tracer = &tracer;
    auto with_trace = simulate_schedule(graph, workers, traced);

    if (!checker.check(plain.ok() && with_trace.ok(),
                       "workflow simulations run")) {
      continue;
    }
    const std::vector<obs::TraceEvent> events = tracer.collect();
    s3.add_row({std::to_string(n), fmt_double(plain->makespan_us / 1e3, 1),
                fmt_double(with_trace->makespan_us / 1e3, 1),
                std::to_string(events.size())});
    checker.check(plain->makespan_us == with_trace->makespan_us,
                  "tracing does not perturb the simulation");
    checker.check(tracer.dropped() == 0, "workflow trace dropped no events");
    checker.check(obs::spans_acyclic(events),
                  "workflow span parentage acyclic");
    checker.check(obs::span_chains_complete(events),
                  "workflow span chains complete");
    checker.check(!events.empty(), "workflow trace non-empty");
  }
  std::printf("%s\n", s3.render().c_str());

  // One chaos point: work stealing + data plane + a node crash, so the
  // trace carries transfer spans and fault instants end to end.
  std::printf("--- chaos point: work stealing + data plane + node crash ---\n");
  {
    obs::TracerConfig tcfg;
    tcfg.enabled = true;
    obs::Tracer tracer(tcfg);

    data::PlaneConfig plane;
    plane.cache_bytes = 32.0 * 1024 * 1024;
    resilience::FaultPlan chaos;
    chaos.crash(0, 5e4, 1e5);

    SimulationOptions options;
    options.scheduler = SchedulerKind::kWorkStealing;
    options.data_plane = &plane;
    options.prefetch_depth = 2;
    options.fault_plan = &chaos;
    options.abort_on_retry_exhaustion = false;
    options.tracer = &tracer;
    std::vector<WorkerSpec> workers;
    for (std::size_t i = 0; i < 8; ++i) {
      workers.push_back({"w" + std::to_string(i), 10.0, 1.0, 10.0});
    }
    auto outcome = simulate_schedule(graph, workers, options);
    if (checker.check(outcome.ok(), "chaos simulation runs")) {
      const std::vector<obs::TraceEvent> events = tracer.collect();
      std::printf("makespan %.1f ms, %zu events: %zu transfer spans, "
                  "%zu crash / %zu detect / %zu recompute instants\n",
                  outcome->makespan_us / 1e3, events.size(),
                  count_named(events, "xfer"), count_named(events, "crash"),
                  count_named(events, "detect"),
                  count_named(events, "recompute"));
      checker.check(tracer.dropped() == 0, "chaos trace dropped no events");
      checker.check(obs::spans_acyclic(events), "chaos span parentage acyclic");
      checker.check(obs::span_chains_complete(events),
                    "chaos span chains complete");
      checker.check(count_named(events, "crash") >= 1,
                    "crash instant present in trace");
      checker.check(count_named(events, "xfer") >= 1,
                    "data-plane transfer spans present in trace");
      checker.check(export_and_validate(events, "e20_workflow_trace.json"),
                    "workflow Chrome trace is valid JSON");
    }
  }

  // A taste of the registry export the serving layer now carries.
  std::printf("\n--- serving metrics registry (flat text export, head) ---\n");
  std::size_t printed = 0, pos = 0;
  while (printed < 10 && pos < registry_text.size()) {
    const std::size_t eol = registry_text.find('\n', pos);
    if (eol == std::string::npos) break;
    std::printf("%s\n", registry_text.substr(pos, eol - pos).c_str());
    pos = eol + 1;
    ++printed;
  }

  std::printf("\nE20 done.\n");
  if (smoke) return checker.report("E20");
  return checker.failures() == 0 ? everest::bench::kExitOk
                                 : everest::bench::kExitCriterionFailed;
}
