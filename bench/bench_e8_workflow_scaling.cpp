// E8 — §III-A HyperLoom claim: "improve resource utilization and reduce
// the overall workflow processing time".
//
// Series 1: makespan + utilization vs worker count (strong scaling).
// Series 2: scheduler comparison (FIFO vs HEFT vs work stealing) on
//           heterogeneous pools and communication-heavy graphs.
// Series 3: graph-size scaling 1k → 100k tasks (engine throughput).
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::workflow;

namespace {

std::vector<WorkerSpec> pool(std::size_t n, double gflops = 10.0) {
  std::vector<WorkerSpec> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.push_back({"w" + std::to_string(i), gflops, 1.0, 10.0});
  }
  return workers;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E8: workflow engine scaling (HyperLoom role) ===\n\n");

  // --- Series 1: strong scaling ------------------------------------------
  Rng rng(3);
  TaskGraph graph = TaskGraph::random_layered(10, 64, 3, rng, 2e8, 1e6);
  std::printf("strong scaling, %zu-task layered DAG (HEFT):\n", graph.size());
  Table scaling({"workers", "makespan (ms)", "speedup", "utilization"});
  double base = 0.0;
  for (std::size_t n : {1, 2, 4, 8, 16, 32}) {
    SimulationOptions options;
    options.scheduler = SchedulerKind::kHeft;
    auto outcome = simulate_schedule(graph, pool(n), options);
    if (!outcome.ok()) continue;
    if (n == 1) base = outcome->makespan_us;
    scaling.add_row({std::to_string(n),
                     fmt_double(outcome->makespan_us / 1e3, 1),
                     fmt_double(base / outcome->makespan_us, 2) + "x",
                     fmt_double(outcome->mean_utilization * 100, 0) + "%"});
  }
  std::printf("%s\n", scaling.render().c_str());

  // --- Series 2: scheduler comparison ------------------------------------
  std::printf("schedulers under two regimes (heterogeneous pool: 1 fast + 7 "
              "slow):\n");
  struct Regime {
    const char* name;
    double flops;
    double bytes;
  };
  std::vector<WorkerSpec> hetero = pool(8, 4.0);
  hetero[0].gflops = 40.0;
  for (const Regime regime : {Regime{"compute-dominated", 2e9, 5e6},
                              {"communication-dominated", 5e8, 2e7}}) {
    Rng rng2(7);
    TaskGraph heavy = TaskGraph::random_layered(8, 32, 3, rng2, regime.flops,
                                                regime.bytes);
    Table sched({"scheduler", "makespan (ms)", "utilization", "GB moved"});
    for (SchedulerKind kind : {SchedulerKind::kFifo, SchedulerKind::kHeft,
                               SchedulerKind::kWorkStealing}) {
      SimulationOptions options;
      options.scheduler = kind;
      auto outcome = simulate_schedule(heavy, hetero, options);
      if (!outcome.ok()) continue;
      sched.add_row({std::string(to_string(kind)),
                     fmt_double(outcome->makespan_us / 1e3, 1),
                     fmt_double(outcome->mean_utilization * 100, 0) + "%",
                     fmt_double(outcome->bytes_transferred / 1e9, 2)});
    }
    std::printf("[%s]\n%s\n", regime.name, sched.render().c_str());
  }

  // --- Series 3: graph-size scaling --------------------------------------
  std::printf("engine throughput vs graph size (16 workers, map-reduce):\n");
  Table size_table({"tasks", "makespan (s)", "sim wall time (ms)",
                    "tasks/sim-ms"});
  for (std::size_t width : {1000, 10000, 50000, 100000}) {
    if (smoke && width > 10000) continue;
    TaskGraph big = TaskGraph::map_reduce(width, 32, 5e7, 2e8, 1e5);
    SimulationOptions options;
    options.scheduler = SchedulerKind::kFifo;  // HEFT rank is O(V+E), fine too
    const auto start = std::chrono::steady_clock::now();
    auto outcome = simulate_schedule(big, pool(16), options);
    const auto end = std::chrono::steady_clock::now();
    if (!outcome.ok()) continue;
    const double wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    size_table.add_row({std::to_string(big.size()),
                        fmt_double(outcome->makespan_us / 1e6, 1),
                        fmt_double(wall_ms, 1),
                        fmt_double(big.size() / wall_ms, 0)});
  }
  std::printf("%s\n", size_table.render().c_str());

  // --- Series 4: fault tolerance -----------------------------------------
  std::printf("fault injection (32 workers, 10k tasks):\n");
  TaskGraph faulty_graph = TaskGraph::map_reduce(10000, 16);
  Table fault({"failure prob", "makespan (s)", "executions", "overhead"});
  double clean_makespan = 0.0;
  for (double p : {0.0, 0.01, 0.05, 0.15}) {
    SimulationOptions options;
    options.scheduler = SchedulerKind::kFifo;
    options.failure_probability = p;
    options.max_retries = 20;
    auto outcome = simulate_schedule(faulty_graph, pool(32), options);
    if (!outcome.ok()) continue;
    if (p == 0.0) clean_makespan = outcome->makespan_us;
    fault.add_row({fmt_double(p, 2),
                   fmt_double(outcome->makespan_us / 1e6, 2),
                   std::to_string(outcome->executions),
                   fmt_double(100.0 * (outcome->makespan_us / clean_makespan -
                                       1.0),
                              1) +
                       "%"});
  }
  std::printf("%s\n", fault.render().c_str());
  std::printf("shape check: near-linear scaling until the critical path "
              "binds; HEFT wins when compute dominates (EFT placement on "
              "the fast node), locality-aware work stealing wins when "
              "communication dominates (fewest bytes moved); 100k-task "
              "graphs simulate in milliseconds; retry overhead tracks "
              "failure probability.\n\nE8 done.\n");
  return 0;
}
