// E2 — Fig. 2: the virtualized runtime's dynamic adaptation.
//
// A workload goes through phases (idle → CPU contention → FPGA congestion →
// security incident → calm). The adaptation loop re-selects variants each
// phase; we print the selected variant and compare cumulative latency
// against (a) the best *static* variant choice and (b) a per-phase oracle.
#include <cstdio>

#include <limits>
#include <map>

#include "common/table.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"

#include "smoke.hpp"

using namespace everest;
using compiler::TargetKind;
using compiler::Variant;

namespace {

Variant make_variant(const std::string& id, TargetKind target, double latency,
                     double energy, bool dift = false) {
  Variant v;
  v.id = id;
  v.kernel = "k";
  v.target = target;
  v.latency_us = latency;
  v.energy_uj = energy;
  v.bytes_in = 4e6;
  v.bytes_out = 4e5;
  v.dift = dift;
  v.device = target == TargetKind::kFpga ? "P9-VU9P" : "";
  return v;
}

struct Phase {
  const char* name;
  runtime::SystemState state;
  int invocations;
};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E2: virtualized runtime adaptation (paper Fig. 2) ===\n\n");

  runtime::KnowledgeBase kb;
  std::vector<Variant> variants = {
      make_variant("cpu-t16", TargetKind::kCpu, 120.0, 11000.0),
      make_variant("cpu-t4", TargetKind::kCpu, 260.0, 6000.0),
      make_variant("fpga-u8", TargetKind::kFpga, 90.0, 2500.0),
      make_variant("fpga-u8-dift", TargetKind::kFpga, 102.0, 2900.0, true),
  };
  (void)kb.load(variants);
  runtime::Autotuner tuner(&kb);

  runtime::SystemState idle;
  runtime::SystemState contended;
  contended.cpu_load = 0.85;
  runtime::SystemState congested;
  congested.fpga_queue_depth = 4.0;
  runtime::SystemState incident;
  incident.protection = security::ProtectionLevel::kProtect;
  runtime::SystemState both;
  both.cpu_load = 0.85;
  both.fpga_queue_depth = 4.0;

  const int invocations = smoke ? 40 : 200;
  const Phase phases[] = {
      {"idle", idle, invocations},
      {"cpu-contention", contended, invocations},
      {"fpga-congestion", congested, invocations},
      {"security-incident", incident, 150},
      {"mixed-pressure", both, invocations},
      {"calm-again", idle, invocations},
  };

  // Ground truth latency of a variant in a state (what execution would
  // actually cost; same model the tuner uses — the interesting comparison
  // is adaptive vs static policies, not model error).
  auto true_latency = [&](const Variant& v,
                          const runtime::SystemState& state) {
    return tuner.adjusted_latency("k", v, state);
  };

  Table table({"phase", "selected", "phase avg us", "oracle us",
               "static-best us"});
  double adaptive_total = 0.0, oracle_total = 0.0;
  std::map<std::string, double> static_totals;
  for (const Variant& v : variants) static_totals[v.id] = 0.0;

  for (const Phase& phase : phases) {
    auto selection = tuner.select("k", runtime::Goal{}, phase.state);
    const std::string chosen = selection.ok() ? selection->variant.id : "-";
    double adaptive_phase = 0.0, oracle_phase = 0.0;
    // Oracle: best variant for this phase (eligible ones only).
    double best = std::numeric_limits<double>::infinity();
    for (const Variant& v : variants) {
      const bool secured = v.dift;
      if (phase.state.protection == security::ProtectionLevel::kProtect &&
          !(v.target == TargetKind::kFpga && secured)) {
        continue;
      }
      best = std::min(best, true_latency(v, phase.state));
    }
    for (int i = 0; i < phase.invocations; ++i) {
      if (selection.ok()) {
        adaptive_phase += true_latency(selection->variant, phase.state);
      }
      oracle_phase += best;
      for (const Variant& v : variants) {
        // Static policies that are ineligible during the incident stall at
        // a 10x penalty (blocked execution).
        const bool ok_now =
            phase.state.protection != security::ProtectionLevel::kProtect ||
            (v.target == TargetKind::kFpga && v.dift);
        static_totals[v.id] +=
            ok_now ? true_latency(v, phase.state)
                   : 10.0 * true_latency(v, phase.state);
      }
    }
    adaptive_total += adaptive_phase;
    oracle_total += oracle_phase;
    double static_best_phase = std::numeric_limits<double>::infinity();
    for (const Variant& v : variants) {
      static_best_phase =
          std::min(static_best_phase, true_latency(v, phase.state));
    }
    table.add_row({phase.name, chosen,
                   fmt_double(adaptive_phase / phase.invocations, 1),
                   fmt_double(oracle_phase / phase.invocations, 1),
                   fmt_double(static_best_phase, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  double best_static = std::numeric_limits<double>::infinity();
  std::string best_static_id;
  for (const auto& [id, total] : static_totals) {
    if (total < best_static) {
      best_static = total;
      best_static_id = id;
    }
  }
  std::printf("cumulative latency (ms): adaptive %.1f | oracle %.1f | best "
              "static (%s) %.1f\n",
              adaptive_total / 1e3, oracle_total / 1e3,
              best_static_id.c_str(), best_static / 1e3);
  std::printf("adaptive vs static-best speedup: %.2fx (paper claim: dynamic "
              "selection beats any fixed choice)\n",
              best_static / adaptive_total);
  std::printf("adaptive vs oracle gap: %.1f%%\n",
              100.0 * (adaptive_total - oracle_total) /
                  std::max(oracle_total, 1e-9));
  std::printf("\nE2 done.\n");
  return 0;
}
