// E7 — §III-A/§IV security: cost of protection and quality of detection.
//
// Series 1: TaintHLS-style DIFT instrumentation overhead (area/latency).
// Series 2: crypto — software AES-GCM throughput vs modeled accelerator
//           cores (the "library of optimized accelerators" claim).
// Series 3: anomaly-detector operating characteristic on injected attacks.
#include <chrono>
#include <cstdio>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "dsl/tensor_expr.hpp"
#include "compiler/lowering.hpp"
#include "hls/crypto_cores.hpp"
#include "hls/hls.hpp"
#include "security/aes.hpp"
#include "security/anomaly.hpp"

#include "smoke.hpp"

using namespace everest;

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E7: security features — overhead and detection ===\n\n");

  // --- Series 1: DIFT overhead on the use-case kernels -------------------
  std::printf("DIFT (TaintHLS-style) instrumentation overhead:\n");
  Table dift({"kernel", "LUT base", "LUT +DIFT", "area ovh", "cycles ovh"});
  auto make_program = [](int which) {
    if (which == 0) {
      dsl::TensorProgram p("plume_k");
      auto a = p.input("a", {256, 256});
      auto b = p.input("b", {256, 256});
      p.output("y", exp(a * b));
      return p;
    }
    dsl::TensorProgram p("gemm_k");
    auto a = p.input("a", {128, 128});
    auto b = p.input("b", {128, 128});
    p.output("y", matmul(a, b));
    return p;
  };
  for (int which : {0, 1}) {
    const char* label = which == 0 ? "plume 256x256 (exp)" : "gemm 128x128";
    dsl::TensorProgram p = make_program(which);
    auto module = p.lower();
    if (!module.ok()) continue;
    auto name = compiler::lower_to_kernel(*module, p.name());
    if (!name.ok()) continue;
    hls::HlsConfig plain;
    hls::HlsConfig secured;
    secured.enable_dift = true;
    auto d0 = hls::synthesize(*module->find(*name), plain,
                              hls::FpgaDevice::p9_vu9p());
    auto d1 = hls::synthesize(*module->find(*name), secured,
                              hls::FpgaDevice::p9_vu9p());
    if (!d0.ok() || !d1.ok()) continue;
    dift.add_row(
        {label, std::to_string(d0->estimate.resources.luts),
         std::to_string(d1->estimate.resources.luts),
         fmt_double(100.0 * (double(d1->estimate.resources.luts) /
                                 double(d0->estimate.resources.luts) -
                             1.0),
                    1) +
             "%",
         std::to_string(d1->estimate.total_cycles -
                        d0->estimate.total_cycles)});
  }
  std::printf("%s\n", dift.render().c_str());

  // --- Series 2: crypto throughput ---------------------------------------
  std::printf("AES-128-GCM: software vs modeled accelerator cores:\n");
  // Measure the software implementation.
  security::Block16 key{};
  std::array<std::uint8_t, 12> iv{};
  std::vector<std::uint8_t> payload(1 << 20);
  Rng rng(5);
  for (auto& byte : payload) {
    byte = static_cast<std::uint8_t>(rng.uniform_int(256));
  }
  const auto start = std::chrono::steady_clock::now();
  const auto sealed = security::aes128_gcm_encrypt(key, iv, payload);
  const auto end = std::chrono::steady_clock::now();
  const double sw_seconds =
      std::chrono::duration<double>(end - start).count();
  const double sw_mbps = payload.size() / sw_seconds / 1e6;

  Table crypto({"implementation", "throughput (MB/s)", "LUTs", "pJ/byte"});
  crypto.add_row({"software (this host)", fmt_double(sw_mbps, 1), "-", "-"});
  for (const hls::CryptoCore& core : hls::crypto_core_catalog()) {
    if (core.algo != "aes128-gcm") continue;
    crypto.add_row({core.name, fmt_double(core.throughput_mbps(250.0), 0),
                    std::to_string(core.luts),
                    fmt_double(core.energy_pj_per_byte, 1)});
  }
  std::printf("%s", crypto.render().c_str());
  std::printf("(tag of the measured run: %02x%02x..., kept to defeat "
              "dead-code elimination)\n\n",
              sealed.tag[0], sealed.tag[1]);

  // --- Series 3: anomaly-detector ROC ------------------------------------
  std::printf("anomaly detector: detection vs false-positive rate across "
              "attack magnitudes:\n");
  Table roc({"attack magnitude (x)", "detection rate", "false-pos rate"});
  for (double magnitude : {1.02, 1.05, 1.1, 1.2, 1.5, 3.0}) {
    int detected = 0, attacks = 0, false_pos = 0, clean = 0;
    for (int trial = 0; trial < 20; ++trial) {
      security::AnomalyDetector detector;
      Rng trng(static_cast<std::uint64_t>(trial) * 31 + 7);
      auto normal = [&] {
        security::BehaviorSample s;
        s.latency_us = trng.normal(100, 5);
        s.bytes = trng.normal(1e6, 3e4);
        s.value_range = trng.normal(50, 2);
        s.access_stride = 1.0;
        return s;
      };
      for (int i = 0; i < 150; ++i) {
        const auto v = detector.observe(normal());
        if (i > 30 && v.anomalous) ++false_pos;
        if (i > 30) ++clean;
      }
      for (int i = 0; i < 10; ++i) {
        auto s = normal();
        s.latency_us *= magnitude;  // timing-channel style stall
        ++attacks;
        detected += detector.observe(s).anomalous;
      }
    }
    roc.add_row({fmt_double(magnitude, 2),
                 fmt_double(100.0 * detected / attacks, 1) + "%",
                 fmt_double(100.0 * false_pos / clean, 2) + "%"});
  }
  std::printf("%s\n", roc.render().c_str());
  std::printf("shape check: DIFT costs single-digit-%% area and ~constant "
              "cycles (TaintHLS numbers); accelerator cores beat software "
              "AES by orders of magnitude; detection saturates quickly with "
              "attack magnitude at sub-%% false positives.\n\nE7 done.\n");
  return 0;
}
