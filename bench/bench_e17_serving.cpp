// E17 — the serving layer quantified: the demonstrator as a multi-tenant
// service. Four series: (1) sustained throughput vs offered load with
// batching on/off — coalescing amortizes per-batch setup, so the saturation
// point moves right; (2) the latency price of each batching policy point
// (max batch × max wait) at moderate load; (3) overload behaviour vs queue
// capacity — a bounded admission queue rejects early and keeps p99 flat
// where a near-unbounded queue lets latency collapse into queueing delay;
// (4) SLA isolation in a mixed workload: latency-critical traffic keeps a
// small-batch priority path while throughput traffic is batched hard.
#include <cstdio>
#include <string>

#include "common/table.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::serve;

namespace {

constexpr std::uint64_t kSeed = 2026;

/// Builds a fresh server (and knowledge base) for one sweep point.
struct Service {
  runtime::KnowledgeBase kb;
  Server server;
  Service(ServerOptions options, const std::vector<Endpoint>& endpoints)
      : server(options, &kb) {
    for (const Endpoint& ep : endpoints) {
      Status st = server.register_endpoint(ep);
      if (!st.ok()) std::printf("register failed: %s\n", st.to_string().c_str());
    }
    (void)server.start();
  }
};

std::string pct(double x) { return fmt_double(100.0 * x, 1) + "%"; }

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E17: concurrent request serving on the EVEREST runtime ===\n\n");
  const auto horizon = std::chrono::milliseconds(smoke ? 120 : 400);
  const std::vector<Endpoint> endpoints = standard_endpoints();

  // --- Series 1: throughput vs offered load, batch-1 vs batch-8 ---------
  std::printf("--- throughput vs offered load (open loop, energy_forecast, "
              "2 workers) ---\n");
  Table s1({"offered rps", "policy", "achieved rps", "p50 ms", "p99 ms",
            "rejected", "mean batch"});
  for (double offered : {100.0, 200.0, 400.0, 800.0, 1600.0, 3200.0}) {
    for (std::size_t max_batch : {std::size_t{1}, std::size_t{8}}) {
      ServerOptions options;
      options.worker_threads = 2;
      options.queue_capacity = 64;
      options.batch.max_batch = max_batch;
      options.batch.max_wait = std::chrono::microseconds(2000);
      Service service(options, endpoints);
      WorkloadSpec spec;
      spec.kernels = {"energy_forecast"};
      spec.offered_rps = offered;
      spec.duration = horizon;
      spec.lc_fraction = 0.0;
      spec.lc_deadline_ms = 0.0;
      spec.tp_deadline_ms = 0.0;  // isolate admission from expiry
      spec.seed = kSeed;
      const LoadReport report = run_open_loop(service.server, spec);
      const MetricsSnapshot snap = service.server.metrics().snapshot();
      service.server.stop();
      s1.add_row({fmt_double(offered, 0),
                  max_batch == 1 ? "batch-1" : "batch-8",
                  fmt_double(report.achieved_rps(), 0),
                  fmt_double(report.p50_us() / 1e3, 2),
                  fmt_double(report.p99_us() / 1e3, 2),
                  pct(snap.rejection_rate()),
                  fmt_double(snap.mean_batch_size, 2)});
    }
  }
  std::printf("%s\n", s1.render().c_str());
  std::printf("batching amortizes the shared ensemble setup: batch-8 keeps\n"
              "achieved ~= offered well past the batch-1 saturation point.\n\n");

  // --- Series 2: latency vs batch policy at moderate load ---------------
  std::printf("--- latency vs batch policy (open loop, 600 rps mixed "
              "kernels) ---\n");
  Table s2({"max batch", "max wait us", "achieved rps", "p50 ms", "p99 ms",
            "mean batch"});
  for (std::size_t max_batch :
       {std::size_t{1}, std::size_t{4}, std::size_t{16}}) {
    for (long wait_us : {200L, 2000L, 10000L}) {
      ServerOptions options;
      options.worker_threads = 2;
      options.queue_capacity = 256;
      options.batch.max_batch = max_batch;
      options.batch.max_wait = std::chrono::microseconds(wait_us);
      Service service(options, endpoints);
      WorkloadSpec spec;
      spec.kernels = {"energy_forecast", "aq_dispersion", "ptdr_route"};
      spec.offered_rps = 600.0;
      spec.duration = horizon;
      spec.lc_fraction = 0.0;
      spec.lc_deadline_ms = 0.0;
      spec.tp_deadline_ms = 0.0;
      spec.seed = kSeed;
      const LoadReport report = run_open_loop(service.server, spec);
      const MetricsSnapshot snap = service.server.metrics().snapshot();
      service.server.stop();
      s2.add_row({std::to_string(max_batch), std::to_string(wait_us),
                  fmt_double(report.achieved_rps(), 0),
                  fmt_double(report.p50_us() / 1e3, 2),
                  fmt_double(report.p99_us() / 1e3, 2),
                  fmt_double(snap.mean_batch_size, 2)});
    }
  }
  std::printf("%s\n", s2.render().c_str());
  std::printf("the policy trade: bigger batches + longer waits buy\n"
              "throughput headroom and cost median latency.\n\n");

  // --- Series 3: overload — admission control vs an unbounded queue -----
  std::printf("--- overload behaviour vs queue capacity (1 worker, batch-1, "
              "~2.3x overload) ---\n");
  Table s3({"queue cap", "achieved rps", "p50 ms", "p99 ms", "rejected",
            "max depth"});
  for (std::size_t capacity : {std::size_t{8}, std::size_t{32},
                               std::size_t{128}, std::size_t{100000}}) {
    ServerOptions options;
    options.worker_threads = 1;
    options.queue_capacity = capacity;
    // batch-1 pins the service rate below the offered rate, so the queue
    // bound is the only thing standing between overload and the tail.
    options.batch.max_batch = 1;
    options.batch.max_wait = std::chrono::microseconds(2000);
    Service service(options, endpoints);
    WorkloadSpec spec;
    spec.kernels = {"energy_forecast"};
    spec.offered_rps = 3000.0;
    spec.duration = horizon;
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.seed = kSeed;
    const LoadReport report = run_open_loop(service.server, spec);
    const MetricsSnapshot snap = service.server.metrics().snapshot();
    service.server.stop();
    s3.add_row({capacity == 100000 ? "~inf" : std::to_string(capacity),
                fmt_double(report.achieved_rps(), 0),
                fmt_double(report.p50_us() / 1e3, 2),
                fmt_double(report.p99_us() / 1e3, 2),
                pct(snap.rejection_rate()),
                std::to_string(snap.max_queue_depth)});
  }
  std::printf("%s\n", s3.render().c_str());
  std::printf("admission control is the p99 governor: a bounded queue sheds\n"
              "excess load early and keeps tail latency flat; the unbounded\n"
              "queue converts overload into seconds of queueing delay.\n\n");

  // --- Series 4: SLA isolation in a mixed workload ----------------------
  std::printf("--- SLA classes under mixed load (30%% latency-critical, "
              "closed+open) ---\n");
  Table s4({"offered rps", "LC p99 ms", "TP p99 ms", "expired", "completed",
            "rejected"});
  for (double offered : {300.0, 800.0, 1600.0}) {
    ServerOptions options;
    options.worker_threads = 2;
    options.queue_capacity = 128;
    options.batch.max_batch = 8;
    options.batch.lc_max_batch = 2;
    options.batch.max_wait = std::chrono::microseconds(2000);
    Service service(options, endpoints);
    WorkloadSpec spec;
    spec.kernels = {"energy_forecast", "aq_dispersion", "ptdr_route"};
    spec.offered_rps = offered;
    spec.duration = horizon;
    spec.lc_fraction = 0.3;
    spec.lc_deadline_ms = 50.0;
    spec.tp_deadline_ms = 500.0;
    spec.seed = kSeed;
    const LoadReport report = run_open_loop(service.server, spec);
    const MetricsSnapshot snap = service.server.metrics().snapshot();
    service.server.stop();
    s4.add_row({fmt_double(offered, 0),
                fmt_double(snap.lc_p99_us / 1e3, 2),
                fmt_double(snap.tp_p99_us / 1e3, 2),
                std::to_string(snap.expired),
                std::to_string(snap.completed),
                std::to_string(snap.rejected)});
  }
  std::printf("%s\n", s4.render().c_str());
  std::printf("the latency-critical lane (priority pop + small batches +\n"
              "deadline drop) holds its p99 while throughput traffic absorbs\n"
              "the batching delay.\n");
  return 0;
}
