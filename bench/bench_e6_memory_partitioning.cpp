// E6 — §III-B memory management: partitioning + multi-port memories.
//
// Sweeps bank count and partition type for an unrolled streaming kernel and
// prints achieved II, BRAM cost, and end-to-end cycles — reproducing the
// canonical memory-partitioning result (conflicts drop, II → 1, at a BRAM
// cost that grows with banks).
#include <cstdio>

#include "common/table.hpp"
#include "hls/cdfg.hpp"
#include "hls/hls.hpp"
#include "hls/memory.hpp"
#include "ir/builder.hpp"
#include "ir/dialect.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::hls;

namespace {

ir::Module make_stream_kernel(std::int64_t n) {
  ir::register_everest_dialects();
  ir::Module m("stream");
  ir::Type mem = ir::Type::memref({n}, ir::ScalarKind::kF64,
                                  ir::MemorySpace::kOnChip);
  ir::Function* fn =
      m.add_function("saxpy", ir::Type::function({mem, mem, mem}, {})).value();
  ir::OpBuilder b(&fn->entry());
  ir::Operation& loop = b.create("kernel.for", {}, {},
                                 {{"lb", ir::Attribute::integer(0)},
                                  {"ub", ir::Attribute::integer(n)},
                                  {"step", ir::Attribute::integer(1)}});
  ir::Block& body = loop.emplace_region().emplace_block({ir::Type::index()});
  ir::OpBuilder ib(&body);
  ir::Value x = ib.create_value("kernel.load", {fn->arg(0), body.arg(0)},
                                ir::Type::f64());
  ir::Value y = ib.create_value("kernel.load", {fn->arg(1), body.arg(0)},
                                ir::Type::f64());
  ir::Value a = ib.constant_f64(3.0);
  ir::Value ax = ib.create_value("kernel.binop", {a, x}, ir::Type::f64(),
                                 {{"op", ir::Attribute::string("mul")}});
  ir::Value s = ib.create_value("kernel.binop", {ax, y}, ir::Type::f64(),
                                {{"op", ir::Attribute::string("add")}});
  ib.create("kernel.store", {s, fn->arg(2), body.arg(0)}, {});
  ib.create("kernel.yield", {}, {});
  b.ret();
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E6: memory partitioning and multi-port memories ===\n\n");
  constexpr std::int64_t kN = 4096;
  ir::Module m = make_stream_kernel(kN);
  auto nests = extract_loop_nests(*m.find("saxpy"));
  if (!nests.ok()) {
    std::printf("extraction failed: %s\n", nests.status().to_string().c_str());
    return 1;
  }
  const KernelLoopNest& nest = (*nests)[0];

  // --- Series 1: fixed unroll=8, sweep banking of array arg0 -------------
  std::printf("unroll=8, banking sweep for one input array:\n");
  Table banks({"banks", "type", "max acc/bank", "required II", "BRAM blocks"});
  for (int nbanks : {1, 2, 4, 8}) {
    for (PartitionType type : {PartitionType::kCyclic, PartitionType::kBlock}) {
      if (nbanks == 1 && type == PartitionType::kBlock) continue;
      ArrayBanking banking{nbanks == 1 ? PartitionType::kNone : type, nbanks,
                           2};
      const ConflictReport report =
          analyze_conflicts(nest, "arg0", banking, /*unroll=*/8);
      banks.add_row({std::to_string(nbanks),
                     std::string(to_string(banking.type)),
                     std::to_string(report.max_accesses_per_bank),
                     std::to_string(report.required_ii),
                     std::to_string(bram_blocks_for(kN, 8, banking))});
    }
  }
  std::printf("%s\n", banks.render().c_str());

  // --- Series 2: end-to-end cycles/area vs unroll (planner active) -------
  std::printf("end-to-end synthesis, partitioner chooses banking:\n");
  Table synth({"unroll", "II", "cycles", "BRAM", "LUT", "speedup"});
  double base_cycles = 0.0;
  for (int unroll : {1, 2, 4, 8, 16}) {
    HlsConfig config;
    config.unroll = unroll;
    config.max_banks = 32;
    auto design = synthesize(*m.find("saxpy"), config,
                             FpgaDevice::p9_vu9p());
    if (!design.ok()) {
      std::printf("unroll %d: %s\n", unroll,
                  design.status().to_string().c_str());
      continue;
    }
    if (unroll == 1) base_cycles = double(design->estimate.total_cycles);
    synth.add_row(
        {std::to_string(unroll), std::to_string(design->nests[0].ii.ii()),
         std::to_string(design->estimate.total_cycles),
         std::to_string(design->estimate.resources.brams),
         std::to_string(design->estimate.resources.luts),
         fmt_double(base_cycles / double(design->estimate.total_cycles), 2) +
             "x"});
  }
  std::printf("%s\n", synth.render().c_str());

  // --- Series 3: multi-port (replicated) banks ---------------------------
  std::printf("ports-per-bank at fixed 4 banks, unroll=16:\n");
  Table ports({"ports/bank", "required II", "BRAM blocks"});
  for (int p : {1, 2, 4}) {
    ArrayBanking banking{PartitionType::kCyclic, 4, p};
    const ConflictReport report =
        analyze_conflicts(nest, "arg0", banking, 16);
    ports.add_row({std::to_string(p), std::to_string(report.required_ii),
                   std::to_string(bram_blocks_for(kN, 8, banking))});
  }
  std::printf("%s\n", ports.render().c_str());
  std::printf("shape check: cyclic banking removes unit-stride conflicts "
              "(block banking does not); II falls to 1 once banks x ports "
              ">= simultaneous accesses; BRAM grows with banks and port "
              "replication — the classic partitioning trade-off.\n\nE6 "
              "done.\n");
  return 0;
}
