// E16 — the §V multi-node demonstrator, quantified: end-to-end makespan
// and energy of an ensemble pipeline as a function of platform size,
// FPGA role warmth, background CPU contention, and the optimization goal.
// This is the integration experiment: compiler variants + knowledge base +
// per-node state + greedy EFT placement, all live in one run.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"
#include "runtime/demonstrator.hpp"

#include "smoke.hpp"

using namespace everest;

namespace {

runtime::KnowledgeBase build_kb() {
  ir::Module module("app");
  {
    dsl::TensorProgram p("member_k");
    auto a = p.input("a", {512, 512});
    auto b = p.input("b", {512, 512});
    p.output("y", exp(scale(a * b, -0.5)) + a);
    (void)p.lower_into(module);
  }
  compiler::VariantSpace space;
  space.thread_counts = {1, 8};
  space.tile_sizes = {0};
  space.layouts = {"soa"};
  space.unroll_factors = {1, 8};
  space.devices = {hls::FpgaDevice::p9_vu9p(),
                   hls::FpgaDevice::cloudfpga_ku060()};
  runtime::KnowledgeBase kb;
  auto variants = compiler::generate_variants(module, "member_k", space,
                                              compiler::CpuModel::power9());
  if (variants.ok()) (void)kb.load(*variants);
  return kb;
}

workflow::TaskGraph build_graph(int members) {
  workflow::TaskGraph graph;
  workflow::TaskNode ingest;
  ingest.name = "ingest";
  ingest.kernel = "ingest";
  ingest.flops = 2e8;
  ingest.output_bytes = 8e6;
  const auto ingest_id = graph.add_task(std::move(ingest));
  std::vector<std::size_t> ids;
  for (int m = 0; m < members; ++m) {
    workflow::TaskNode t;
    t.name = "member-" + std::to_string(m);
    t.kernel = "member_k";
    t.flops = 2.6e6;
    t.output_bytes = 512 * 512 * 8.0;
    t.deps = {ingest_id};
    ids.push_back(graph.add_task(std::move(t)));
  }
  workflow::TaskNode reduce;
  reduce.name = "reduce";
  reduce.kernel = "reduce";
  reduce.flops = 2e7;
  reduce.deps = ids;
  graph.add_task(std::move(reduce));
  return graph;
}

platform::PlatformSpec warmed(platform::PlatformSpec spec) {
  for (auto& node : spec.nodes) {
    for (auto& slot : node.fpgas) slot.current_role = "member_k";
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E16: multi-node demonstrator (paper SV) ===\n\n");
  runtime::KnowledgeBase kb = build_kb();
  const workflow::TaskGraph graph = build_graph(16);
  std::printf("pipeline: ingest -> 16 ensemble members -> reduce\n\n");

  // --- Series 1: platform size × warmth under CPU contention -------------
  Table scale({"cloud nodes", "FPGAs", "makespan cold (ms)",
               "makespan warm (ms)", "warm speedup", "fpga tasks"});
  for (int nodes : {1, 2, 4}) {
    if (smoke && nodes > 2) continue;
    auto spec = platform::PlatformSpec::everest_reference(nodes, 2, 0);
    runtime::DemonstratorOptions options;
    options.background_cpu_load = 0.85;
    auto cold = runtime::run_demonstrator(spec, kb, graph, options);
    auto warm = runtime::run_demonstrator(warmed(spec), kb, graph, options);
    if (!cold.ok() || !warm.ok()) continue;
    int fpga_tasks = 0;
    for (const auto& [id, count] : warm->variant_mix) {
      if (id.rfind("fpga", 0) == 0) fpga_tasks += count;
    }
    std::size_t total_fpgas = 0;
    for (const auto& node : spec.nodes) total_fpgas += node.fpgas.size();
    scale.add_row({std::to_string(nodes), std::to_string(total_fpgas),
                   fmt_double(cold->makespan_us / 1e3, 1),
                   fmt_double(warm->makespan_us / 1e3, 1),
                   fmt_double(cold->makespan_us / warm->makespan_us, 2) + "x",
                   std::to_string(fpga_tasks)});
  }
  std::printf("platform scaling (85%% CPU contention):\n%s\n",
              scale.render().c_str());

  // --- Series 2: goal switch ----------------------------------------------
  auto spec = warmed(platform::PlatformSpec::everest_reference(2, 2, 0));
  Table goals({"goal", "makespan (ms)", "energy (mJ)", "variant mix"});
  for (const auto& [label, objective] :
       {std::pair<const char*, runtime::Goal::Objective>{
            "min latency", runtime::Goal::Objective::kMinLatency},
        {"min energy", runtime::Goal::Objective::kMinEnergy}}) {
    runtime::DemonstratorOptions options;
    options.goal.objective = objective;
    auto run = runtime::run_demonstrator(spec, kb, graph, options);
    if (!run.ok()) continue;
    std::string mix;
    for (const auto& [id, count] : run->variant_mix) {
      mix += id + "x" + std::to_string(count) + " ";
    }
    goals.add_row({label, fmt_double(run->makespan_us / 1e3, 1),
                   fmt_double(run->total_energy_uj / 1e3, 1), mix});
  }
  std::printf("goal switch (idle CPUs, warm FPGAs):\n%s\n",
              goals.render().c_str());
  std::printf("shape check: warm accelerators absorb the ensemble under "
              "CPU contention — and their marginal value shrinks as more "
              "CPU nodes join (2.25x -> 1.43x), the classic offload "
              "economics; the energy goal "
              "shifts the mix toward FPGA variants even when the idle CPU "
              "is faster — dynamic selection end-to-end (Figs. 1+2+4 "
              "together).\n\nE16 done.\n");
  return 0;
}
