// E13 — §III-B ablation: "a software-only implementation could explore
// layouts of particles as array-of-structures or structure-of-arrays, or
// could tile complex tensor expressions".
//
// Sweeps layout × tiling × threading over kernels with different
// arithmetic intensities and shows that the best configuration flips —
// no single variant wins everywhere, motivating pre-generation + runtime
// selection.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/analysis.hpp"
#include "compiler/cache_model.hpp"
#include "dsl/particles.hpp"
#include "compiler/variants.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::compiler;

namespace {

struct ProfileCase {
  const char* label;
  KernelProfile profile;
};

std::vector<ProfileCase> cases() {
  // Streaming particle update: low intensity, bandwidth-bound.
  KernelProfile particles;
  particles.flops = 2e8;
  particles.bytes_read = 1.6e9;
  particles.bytes_written = 8e8;
  // Dense tensor contraction: high intensity, compute-bound.
  KernelProfile tensor;
  tensor.flops = 5e10;
  tensor.bytes_read = 2e8;
  tensor.bytes_written = 5e7;
  // Mixed kernel.
  KernelProfile mixed;
  mixed.flops = 4e9;
  mixed.bytes_read = 1e9;
  mixed.bytes_written = 2e8;
  mixed.special_ops = 5e7;
  return {{"particle update (0.08 F/B)", particles},
          {"tensor contraction (200 F/B)", tensor},
          {"mixed plume (3.3 F/B)", mixed}};
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E13: layout x tiling x threading ablation ===\n\n");
  const CpuModel cpu = CpuModel::power9();

  for (const ProfileCase& pc : cases()) {
    std::printf("--- %s ---\n", pc.label);
    Table table({"config", "latency (ms)", "energy (mJ)", "bound"});
    std::string best_id;
    double best = 1e300;
    for (const std::string layout : {"soa", "aos"}) {
      for (int tile : {0, 64, 512}) {
        for (int threads : {1, 4, 16}) {
          const SwEstimate est =
              estimate_software(pc.profile, cpu, threads, tile, layout);
          const std::string id = layout + "/tile" + std::to_string(tile) +
                                 "/t" + std::to_string(threads);
          if (est.latency_us < best) {
            best = est.latency_us;
            best_id = id;
          }
          // Print a representative subset to keep the table readable.
          if ((tile == 0 || tile == 64) && (threads == 1 || threads == 16)) {
            table.add_row({id, fmt_double(est.latency_us / 1e3, 2),
                           fmt_double(est.energy_uj / 1e3, 1),
                           est.memory_us > est.compute_us ? "memory"
                                                          : "compute"});
          }
        }
      }
    }
    std::printf("%sbest: %s (%.2f ms)\n\n", table.render().c_str(),
                best_id.c_str(), best / 1e3);
  }

  // Cross-kernel summary: which knob matters where.
  std::printf("knob sensitivity (latency ratio worst/best per knob):\n");
  Table sens({"kernel", "layout impact", "tiling impact", "threads impact"});
  for (const ProfileCase& pc : cases()) {
    auto ratio = [&](auto vary) {
      double lo = 1e300, hi = 0.0;
      vary(lo, hi);
      return hi / lo;
    };
    const double layout_r = ratio([&](double& lo, double& hi) {
      for (const std::string l : {"soa", "aos"}) {
        const double v =
            estimate_software(pc.profile, cpu, 16, 64, l).latency_us;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    });
    const double tile_r = ratio([&](double& lo, double& hi) {
      for (int t : {0, 64, 512}) {
        const double v =
            estimate_software(pc.profile, cpu, 16, t, "soa").latency_us;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    });
    const double thread_r = ratio([&](double& lo, double& hi) {
      for (int t : {1, 4, 16}) {
        const double v =
            estimate_software(pc.profile, cpu, t, 64, "soa").latency_us;
        lo = std::min(lo, v);
        hi = std::max(hi, v);
      }
    });
    sens.add_row({pc.label, fmt_double(layout_r, 2) + "x",
                  fmt_double(tile_r, 2) + "x", fmt_double(thread_r, 2) + "x"});
  }
  std::printf("%s\n", sens.render().c_str());

  // Measured (not modeled) layout effect: the particle eDSL lowers the SAME
  // update in both layouts and the cache simulator replays the real traces.
  std::printf("measured AoS vs SoA (particle eDSL + cache sim, 8 fields, "
              "2 hot, 8k particles, 32 KiB L2):\n");
  Table measured({"mode", "layout", "DRAM MB", "miss rate"});
  dsl::ParticleKernel k("wide", 8192);
  auto x = k.field("x");
  auto v = k.field("v");
  for (const char* cold : {"f2", "f3", "f4", "f5", "f6", "f7"}) {
    (void)k.field(cold);
  }
  (void)k.update("x", x + v * k.constant(0.1));
  for (const bool partial : {true, false}) {
    for (dsl::ParticleLayout layout :
         {dsl::ParticleLayout::kAoS, dsl::ParticleLayout::kSoA}) {
      auto module = k.lower(layout, partial);
      if (!module.ok()) continue;
      const std::string fn =
          std::string("wide_") + std::string(dsl::to_string(layout));
      auto stats = simulate_kernel_cache(*module->find(fn), 0,
                                         CacheConfig{32, 64, 8}, 1u << 26);
      if (!stats.ok()) continue;
      measured.add_row({partial ? "partial update (2/8 fields)"
                                : "full rewrite",
                        std::string(dsl::to_string(layout)),
                        fmt_double(stats->dram_bytes / 1e6, 2),
                        fmt_double(stats->miss_rate * 100, 2) + "%"});
    }
  }
  std::printf("%s\n", measured.render().c_str());

  std::printf("shape check: layout dominates the bandwidth-bound particle "
              "kernel, threading dominates the compute-bound contraction, "
              "tiling matters in between; the measured series confirms it from "
              "real traces: SoA wins partial updates (4x less DRAM), AoS wins "
              "full rewrites (SoA power-of-two column strides collide in the "
              "cache) — the middle-end must generate all "
              "of them (paper §III-B).\n\nE13 done.\n");
  return 0;
}
