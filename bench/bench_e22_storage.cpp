// E22 — persistent tiered storage + crash-recoverable catalog (DESIGN.md
// row 16; the paper's §III big-data pillar taken past RAM: "extreme-scale"
// working sets do not fit in memory, and edge nodes die).
//
// Series 1: crash + replay — a durable data plane is killed mid-flight
//           (including between the two checkpoint phases) and replayed;
//           the rebuilt catalog must be byte-identical (fingerprint) to
//           the one the dead process maintained online, and a corrupt
//           log tail must be skipped and counted, never fatal.
// Series 2: restart-to-warm vs lineage recompute — after a process death
//           the node's disk tier (local NVMe model) re-serves its shards;
//           the alternative is re-fetching everything over the edge WAN.
// Series 3: out-of-core goodput — a cyclic sweep over a working set 10x
//           the RAM cache, with and without the disk tier under it.
//
// `--smoke` shrinks the series for CI and self-checks the acceptance
// criteria via the exit code.
#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/table.hpp"
#include "data/plane.hpp"
#include "platform/desim.hpp"
#include "platform/links.hpp"
#include "storage/storage.hpp"

#include "smoke.hpp"

using namespace everest;

namespace {

namespace fs = std::filesystem;

std::string scratch_dir(const char* tag) {
  return (fs::temp_directory_path() /
          (std::string("everest_e22_") + tag + "_" + std::to_string(getpid())))
      .string();
}

/// Two-node edge plane: objects are born on node 0, read on node 1 over
/// a WAN hop; node 1's RAM cache holds ~1.5 shards, its NVMe tier holds
/// everything.
data::PlaneConfig edge_plane(double disk_bytes, const std::string& dir = "") {
  data::PlaneConfig config;
  config.num_nodes = 2;
  config.cache_bytes = 1.5e6;
  config.shard_limit_bytes = 4e6;  // 1 MB objects stay single-shard
  config.link = platform::LinkModel::edge_wan();
  config.storage.disk_capacity_bytes = disk_bytes;
  config.storage.dir = dir;
  return config;
}

constexpr double kObjectBytes = 1e6;

/// Stages objects [1..count] at node 1, one after the other (each stage
/// completes before the next starts — a scan, not a burst). Returns the
/// simulated microseconds the whole scan took.
double scan(platform::Simulator& sim, data::DataPlane& plane, int count,
            int rounds = 1) {
  const double start = sim.now();
  for (int r = 0; r < rounds; ++r) {
    for (int i = 1; i <= count; ++i) {
      (void)plane.stage(static_cast<data::ObjectId>(i), 1, [] {});
      sim.run();
    }
  }
  return sim.now() - start;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf("=== E22: persistent tiered storage + crash recovery ===\n\n");
  const int objects = smoke ? 16 : 64;

  // --- Series 1: crash + replay rebuilds a byte-identical catalog --------
  std::printf("--- crash + replay (catalog zero-divergence) ---\n");
  Table s1({"scenario", "applied", "skipped", "corrupt", "identical"});
  {
    const std::string dir = scratch_dir("replay");
    fs::remove_all(dir);
    std::uint64_t online_fp = 0;
    {
      platform::Simulator sim;
      data::DataPlane plane(sim, edge_plane(1e9, dir));
      for (int i = 1; i <= objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      scan(sim, plane, objects);       // fetch + demote traffic
      (void)plane.checkpoint();        // snapshot + truncate mid-life
      scan(sim, plane, objects / 2);   // post-checkpoint mutations
      online_fp = plane.catalog().fingerprint();
    }  // process death (no orderly shutdown)
    platform::Simulator sim;
    data::DataPlane plane(sim, edge_plane(1e9, dir));
    const auto report = plane.recover();
    const bool identical =
        report.ok() && plane.catalog().fingerprint() == online_fp;
    if (report.ok()) {
      s1.add_row({"crash after checkpoint",
                  std::to_string(report.value().replay.records_applied),
                  std::to_string(report.value().replay.records_skipped),
                  std::to_string(report.value().replay.corrupt_records),
                  identical ? "yes" : "NO"});
    }
    checker.check(identical, "e22.catalog.zero_divergence");
    fs::remove_all(dir);
  }
  {
    // Crash BETWEEN the two checkpoint phases: snapshot written, log not
    // yet truncated — replay must converge, not double-apply.
    const std::string dir = scratch_dir("torn_ckpt");
    fs::remove_all(dir);
    storage::Catalog mirror;
    storage::CatalogLog log(dir);
    for (int i = 1; i <= objects; ++i) {
      storage::LogRecord record{storage::LogRecordType::kPlace, 0,
                                static_cast<std::uint64_t>(i), 0, 0, 1,
                                kObjectBytes};
      record.seq = log.append(record).seq;
      mirror.apply(record);
    }
    log.sync();
    (void)log.write_snapshot(mirror);  // phase 1 lands; phase 2 never runs
    const storage::ReplayResult replayed = storage::CatalogLog::replay(dir);
    const bool convergent =
        replayed.snapshot_loaded &&
        replayed.catalog.fingerprint() == mirror.fingerprint() &&
        replayed.records_applied == 0;
    s1.add_row({"crash mid-checkpoint",
                std::to_string(replayed.records_applied),
                std::to_string(replayed.records_skipped),
                std::to_string(replayed.corrupt_records),
                convergent ? "yes" : "NO"});
    checker.check(convergent, "e22.checkpoint.crash_convergent");

    // And a torn tail on top: corrupt the last record in place. Replay
    // must skip + count it — and still match, since the snapshot already
    // covers every logged record.
    const std::string path = storage::CatalogLog::log_path(dir);
    {
      std::fstream file(path, std::ios::in | std::ios::out | std::ios::binary);
      file.seekg(0, std::ios::end);
      const auto size = static_cast<long>(file.tellg());
      file.seekp(size - 4);
      file.put('\x7f');
    }
    const storage::ReplayResult damaged = storage::CatalogLog::replay(dir);
    const bool skipped =
        damaged.corrupt_records == 1 &&
        damaged.catalog.fingerprint() == mirror.fingerprint();
    s1.add_row({"corrupt log tail", std::to_string(damaged.records_applied),
                std::to_string(damaged.records_skipped),
                std::to_string(damaged.corrupt_records),
                skipped ? "yes" : "NO"});
    checker.check(skipped, "e22.replay.corrupt_tail_skipped");
    fs::remove_all(dir);
  }
  std::printf("%s\n", s1.render().c_str());

  // --- Series 2: restart-to-warm vs re-fetching over the WAN -------------
  std::printf("--- restart-to-warm vs lineage recompute (NVMe promote vs "
              "edge-WAN refetch) ---\n");
  double warm_ms = 0.0;
  double cold_ms = 0.0;
  std::uint64_t warm_tier_hits = 0;
  {
    const std::string dir = scratch_dir("warm");
    fs::remove_all(dir);
    {
      // First life: stage the working set at node 1; evictions demote it
      // to node 1's disk tier.
      platform::Simulator sim;
      data::DataPlane plane(sim, edge_plane(1e9, dir));
      for (int i = 1; i <= objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      scan(sim, plane, objects);
    }  // process death
    {
      // Warm restart: recover the catalog, then re-read everything. The
      // shards come off the local NVMe tier, not the WAN.
      platform::Simulator sim;
      data::DataPlane plane(sim, edge_plane(1e9, dir));
      if (!plane.recover().ok()) {
        checker.check(false, "e22.restart.recover_failed");
      }
      warm_ms = scan(sim, plane, objects) / 1e3;
      warm_tier_hits = plane.stats().tier_hits;
    }
    {
      // The alternative history: no durable tier — the restarted node
      // recomputes its lineage upstream (modeled at its cheapest: the
      // objects re-exist on node 0 for free) and re-pays every WAN fetch.
      platform::Simulator sim;
      data::DataPlane plane(sim, edge_plane(0.0));
      for (int i = 1; i <= objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      cold_ms = scan(sim, plane, objects) / 1e3;
    }
    fs::remove_all(dir);
  }
  Table s2({"restart path", "modeled ms", "tier hits"});
  s2.add_row({"warm (disk tier)", fmt_double(warm_ms, 2),
              std::to_string(warm_tier_hits)});
  s2.add_row({"cold (WAN refetch)", fmt_double(cold_ms, 2), "0"});
  std::printf("%s\n", s2.render().c_str());
  checker.check(warm_tier_hits > 0 && warm_ms < cold_ms,
                "e22.restart.warm_beats_recompute");

  // --- Series 3: out-of-core goodput (working set 10x the RAM cache) -----
  std::printf("--- cyclic sweep, working set = 10x cache ---\n");
  Table s3({"tier", "goodput MB/s", "tier hits", "WAN MB"});
  double goodput_on = 0.0;
  double goodput_off = 0.0;
  {
    // 40 x 1 MB objects over a 4 MB cache: a cyclic sweep is LRU's worst
    // case — RAM alone re-faults every access, every round.
    const int sweep_objects = 40;
    const int rounds = smoke ? 3 : 6;
    const double swept_mb =
        sweep_objects * rounds * kObjectBytes / 1e6;
    for (const bool tiered : {true, false}) {
      data::PlaneConfig config = edge_plane(tiered ? 1e9 : 0.0);
      config.cache_bytes = 4e6;
      platform::Simulator sim;
      data::DataPlane plane(sim, config);
      for (int i = 1; i <= sweep_objects; ++i) {
        plane.put(static_cast<data::ObjectId>(i), kObjectBytes, 0);
      }
      const double us = scan(sim, plane, sweep_objects, rounds);
      const double goodput = swept_mb / (us / 1e6);
      (tiered ? goodput_on : goodput_off) = goodput;
      s3.add_row({tiered ? "nvme under cache" : "none",
                  fmt_double(goodput, 1),
                  std::to_string(plane.stats().tier_hits),
                  fmt_double(plane.stats().bytes_fetched / 1e6, 1)});
    }
  }
  std::printf("%s\n", s3.render().c_str());
  // The floor: the tier must lift out-of-core goodput well clear of the
  // WAN-bound baseline (NVMe promote ≈ 0.4 ms vs WAN refetch ≈ several).
  checker.check(goodput_on >= 1.2 * goodput_off, "e22.goodput.tier_floor");

  return checker.report("E22");
}
