// E9 — §IV mARGOt dynamic autotuning quality.
//
// Series 1: regret vs an oracle under drifting load (how close the
//           decision-maker stays to the best possible choice).
// Series 2: online learning — the knowledge base corrects a mispredicted
//           static estimate and recovers.
// Series 3: goal switch at runtime (performance → energy) changes the
//           selected variants, honoring constraints.
#include <cstdio>

#include <cmath>
#include <limits>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "runtime/autotuner.hpp"
#include "runtime/knowledge.hpp"

#include "smoke.hpp"

using namespace everest;
using compiler::TargetKind;
using compiler::Variant;

namespace {

Variant mk(const std::string& id, TargetKind target, double lat, double en,
           bool dift = false) {
  Variant v;
  v.id = id;
  v.kernel = "k";
  v.target = target;
  v.latency_us = lat;
  v.energy_uj = en;
  v.dift = dift;
  v.device = target == TargetKind::kFpga ? "P9-VU9P" : "";
  return v;
}

std::vector<Variant> variant_set() {
  return {mk("cpu-t16", TargetKind::kCpu, 100.0, 9000.0),
          mk("cpu-t4", TargetKind::kCpu, 220.0, 5000.0),
          mk("fpga-u8", TargetKind::kFpga, 80.0, 2200.0),
          mk("fpga-u2", TargetKind::kFpga, 180.0, 1400.0, true)};
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);

  std::printf("=== E9: autotuner decision quality (mARGOt role) ===\n\n");

  // --- Series 1: regret under drifting load -------------------------------
  {
    runtime::KnowledgeBase kb;
    (void)kb.load(variant_set());
    runtime::Autotuner tuner(&kb);
    Rng rng(11);
    double tuned = 0.0, oracle = 0.0, fixed_cpu = 0.0, fixed_fpga = 0.0;
    const int steps = smoke ? 300 : 2000;
    for (int t = 0; t < steps; ++t) {
      runtime::SystemState state;
      // Slow sinusoidal drift of CPU load plus FPGA queue bursts.
      state.cpu_load = 0.45 + 0.45 * std::sin(t * 0.01);
      state.fpga_queue_depth = (t / 250) % 2 == 1 ? 3.0 : 0.0;
      auto sel = tuner.select("k", runtime::Goal{}, state);
      double best = std::numeric_limits<double>::infinity();
      for (const Variant& v : *kb.variants_for("k")) {
        best = std::min(best, tuner.adjusted_latency("k", v, state));
      }
      if (sel.ok()) tuned += sel->predicted_latency_us;
      oracle += best;
      fixed_cpu +=
          tuner.adjusted_latency("k", *kb.find("k", "cpu-t16"), state);
      fixed_fpga +=
          tuner.adjusted_latency("k", *kb.find("k", "fpga-u8"), state);
    }
    Table t({"policy", "mean latency (us)", "regret vs oracle"});
    auto row = [&](const char* name, double total) {
      t.add_row({name, fmt_double(total / steps, 1),
                 fmt_double(100.0 * (total - oracle) / oracle, 1) + "%"});
    };
    row("autotuner (adaptive)", tuned);
    row("static cpu-t16", fixed_cpu);
    row("static fpga-u8", fixed_fpga);
    row("oracle", oracle);
    std::printf("drifting load, 2000 decisions:\n%s\n", t.render().c_str());
  }

  // --- Series 2: online learning recovers from bad estimates --------------
  {
    runtime::KnowledgeBase kb;
    auto variants = variant_set();
    variants[2].latency_us = 20.0;  // fpga-u8 estimate is 4x optimistic
    (void)kb.load(variants);
    runtime::Autotuner tuner(&kb);
    Rng rng(3);
    const double fpga_reality = 80.0;
    Table t({"invocation", "selected", "observed us", "expected(fpga) us"});
    for (int i = 0; i < 10; ++i) {
      auto sel = tuner.select("k", runtime::Goal{}, runtime::SystemState{});
      if (!sel.ok()) break;
      const double observed =
          sel->variant.id == "fpga-u8"
              ? rng.normal(fpga_reality, 2.0)
              : rng.normal(sel->variant.latency_us, 2.0);
      tuner.observe("k", sel->variant.id, observed, sel->variant.energy_uj);
      if (i < 6 || i == 9) {
        t.add_row({std::to_string(i), sel->variant.id,
                   fmt_double(observed, 1),
                   fmt_double(kb.expected_latency("k", *kb.find("k", "fpga-u8")),
                              1)});
      }
    }
    std::printf("online calibration of a 4x-optimistic FPGA estimate:\n%s\n",
                t.render().c_str());
  }

  // --- Series 3: runtime goal switch --------------------------------------
  {
    runtime::KnowledgeBase kb;
    (void)kb.load(variant_set());
    runtime::Autotuner tuner(&kb);
    runtime::Goal perf;
    runtime::Goal energy;
    energy.objective = runtime::Goal::Objective::kMinEnergy;
    runtime::Goal deadline_energy = energy;
    deadline_energy.latency_deadline_us = 150.0;
    Table t({"goal", "selected", "latency us", "energy uJ", "feasible"});
    for (const auto& [label, goal] :
         {std::pair<const char*, runtime::Goal>{"min latency", perf},
          {"min energy", energy},
          {"min energy, deadline 150us", deadline_energy}}) {
      auto sel = tuner.select("k", goal, runtime::SystemState{});
      if (!sel.ok()) continue;
      t.add_row({label, sel->variant.id,
                 fmt_double(sel->predicted_latency_us, 1),
                 fmt_double(sel->predicted_energy_uj, 0),
                 sel->constraints_met ? "yes" : "no"});
    }
    std::printf("goal switching (paper: optimization goal set for "
                "execution):\n%s\n",
                t.render().c_str());
  }
  std::printf("shape check: adaptive regret is a few %% (statics pay 2x+ in "
              "some phase); misestimates are corrected within ~3 "
              "observations; goal switches move along the Pareto front.\n\n"
              "E9 done.\n");
  return 0;
}
