// E25 — federation-wide telemetry quantified. Five experiment series
// plus two nanosecond budgets:
//   (1) full-pipeline overhead: the E21 keyless closed loop with the
//       whole telemetry stack off vs on (shared tracer, per-node
//       time-series samplers) — the stack must cost <=5% goodput
//       (smoke: on/off ratio >= 0.95);
//   (2) cross-node stitching: keyed traffic at replication 2 forwards
//       between nodes; every span any node emits must chain back to its
//       federation root — one stitched trace per ingress request
//       (smoke: acyclic, 100% root-reachable, 100% of multi-node traces
//       single-rooted, >0 forwarded traces, zero ring drops, and the
//       chrome-trace export lints);
//   (3) critical-path extraction: the stitched forest attributed to
//       queue / batch / forward / execute / reply segments, averaged
//       over local vs forwarded requests — where the time goes;
//   (4) time-series rollups: per-node snapshot rings sampled during the
//       run, then merged per the GaugeKind contract (smoke: merged
//       counters equal the direct per-node sums, the federation p99 is
//       computable from merged windowed histograms, and the
//       obs.trace.dropped self-telemetry series reads zero);
//   (5) SLO burn-rate control timeline: a latency fault injected into a
//       serving node drives the fast+slow burn windows over threshold;
//       the page engages load shedding, the queue drains, the page
//       clears, and the flight recorder captures the incident window as
//       a Perfetto-loadable bundle (smoke: alert within 3 fast windows
//       of injection, SLO restored after shedding, bundle lints and
//       covers the fault instant, dump files written);
//   budgets: TraceContext propagation <50 ns/hop, TimeSeriesStore
//       append <100 ns (smoke-enforced; bench_micro tracks both).
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "cluster/federation.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "obs/obs.hpp"
#include "serve/loadgen.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::cluster;

namespace {

constexpr std::uint64_t kSeed = 2026;
/// Fixed per-request service time for the federation series: per-node
/// capacity is worker_threads / kServiceUs, so overhead and stitching
/// results are properties of the telemetry, not of kernel noise.
constexpr long kServiceUs = 800;

serve::Endpoint kv_endpoint() {
  serve::Endpoint ep;
  ep.kernel = "kv";
  compiler::Variant v;
  v.id = "kv-cpu";
  v.kernel = "kv";
  v.target = compiler::TargetKind::kCpu;
  v.latency_us = static_cast<double>(kServiceUs);
  v.energy_uj = 10.0;
  ep.variants = {v};
  ep.handler = [](const serve::Batch& batch, std::vector<double>* values) {
    std::this_thread::sleep_for(std::chrono::microseconds(kServiceUs));
    values->clear();
    for (const serve::PendingRequest& pending : batch.requests) {
      values->push_back(static_cast<double>(pending.request.seed % 1000));
    }
    return OkStatus();
  };
  return ep;
}

FederationOptions base_options(std::size_t nodes) {
  FederationOptions options;
  options.num_nodes = nodes;
  options.node.queue_capacity = 256;
  options.node.worker_threads = 2;
  options.node.batch.max_batch = 1;
  options.node.batch.max_wait = std::chrono::microseconds(500);
  options.shard_map.num_shards = 64;
  options.shard_map.replication = 2;
  options.seed = kSeed;
  return options;
}

struct Cluster {
  Federation federation;
  explicit Cluster(FederationOptions options)
      : federation(std::move(options)) {
    Status st = federation.register_endpoint(kv_endpoint());
    if (!st.ok()) std::printf("register failed: %s\n", st.to_string().c_str());
    st = federation.start();
    if (!st.ok()) std::printf("start failed: %s\n", st.to_string().c_str());
  }
};

/// Samples every node's registry into its TimeSeriesStore on a fixed
/// cadence — the per-node telemetry loop the rollup queries assume.
class SamplerLoop {
 public:
  SamplerLoop(std::vector<obs::TimeSeriesStore*> stores,
              const obs::Tracer* clock, std::chrono::milliseconds period)
      : stores_(std::move(stores)), clock_(clock), period_(period) {
    thread_ = std::thread([this] {
      while (!stop_.load(std::memory_order_acquire)) {
        const double now = clock_->wall_now_us();
        for (obs::TimeSeriesStore* store : stores_) store->sample(now);
        std::this_thread::sleep_for(period_);
      }
    });
  }
  ~SamplerLoop() { stop(); }
  void stop() {
    if (thread_.joinable()) {
      stop_.store(true, std::memory_order_release);
      thread_.join();
      // One closing sample so the rings include the post-drain totals.
      const double now = clock_->wall_now_us();
      for (obs::TimeSeriesStore* store : stores_) store->sample(now);
    }
  }

 private:
  std::vector<obs::TimeSeriesStore*> stores_;
  const obs::Tracer* clock_;
  std::chrono::milliseconds period_;
  std::atomic<bool> stop_{false};
  std::thread thread_;
};

std::string pct(double x) { return fmt_double(100.0 * x, 1) + "%"; }

serve::WorkloadSpec keyed_spec(std::chrono::milliseconds horizon) {
  serve::WorkloadSpec spec;
  spec.kernels = {"kv"};
  spec.offered_rps = 800.0;
  spec.duration = horizon;
  spec.lc_fraction = 0.0;
  spec.lc_deadline_ms = 0.0;
  spec.tp_deadline_ms = 0.0;
  spec.num_data_objects = 48;
  spec.zipf_skew = 1.0;
  spec.input_bytes = 64.0 * 1024;
  spec.seed = kSeed;
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf(
      "=== E25: federation-wide telemetry (stitched traces, rollups, SLO "
      "burn control, flight recorder) ===\n\n");
  const auto horizon = std::chrono::milliseconds(smoke ? 300 : 600);

  // --- Series 1: full-pipeline telemetry overhead -----------------------
  std::printf(
      "--- overhead: 3-node keyless closed loop, telemetry off vs on "
      "(tracer + per-node samplers) ---\n");
  Table s1({"telemetry", "achieved rps", "p50 ms", "p99 ms", "spans",
            "samples"});
  double rps_off = 0.0;
  double rps_on = 0.0;
  // Interleaved best-of-2 per config: the ratio compares each stack's
  // best achievable goodput, so a scheduler hiccup in one run cannot
  // masquerade as telemetry overhead.
  const auto run_overhead_config = [&](bool telemetry) {
    obs::TracerConfig tracer_config;
    tracer_config.ring_capacity = 1 << 18;
    tracer_config.enabled = telemetry;
    obs::Tracer tracer(tracer_config);
    FederationOptions options = base_options(3);
    if (telemetry) {
      options.tracer = &tracer;
      options.node.tracer = &tracer;
    }
    Cluster cluster(options);
    std::vector<std::unique_ptr<obs::TimeSeriesStore>> stores;
    std::vector<obs::TimeSeriesStore*> store_ptrs;
    if (telemetry) {
      for (std::size_t i = 0; i < cluster.federation.num_nodes(); ++i) {
        stores.push_back(std::make_unique<obs::TimeSeriesStore>(
            &cluster.federation.node(i).metrics().registry(),
            obs::TimeSeriesConfig{}, &tracer));
        store_ptrs.push_back(stores.back().get());
      }
    }
    {
      std::unique_ptr<SamplerLoop> sampler;
      if (telemetry) {
        sampler = std::make_unique<SamplerLoop>(
            store_ptrs, &tracer, std::chrono::milliseconds(20));
      }
      serve::WorkloadSpec spec;
      spec.kernels = {"kv"};
      spec.duration = horizon;
      spec.lc_fraction = 0.0;
      spec.lc_deadline_ms = 0.0;
      spec.tp_deadline_ms = 0.0;
      spec.seed = kSeed;
      const serve::LoadReport report = serve::run_closed_loop(
          cluster.federation.submit_fn(), cluster.federation.drain_fn(), spec,
          /*clients=*/12);
      if (sampler) sampler->stop();
      cluster.federation.stop();
      const double rps = report.achieved_rps();
      double& best = telemetry ? rps_on : rps_off;
      best = std::max(best, rps);
      std::size_t samples = 0;
      for (const obs::TimeSeriesStore* store : store_ptrs) {
        samples += store->size();
      }
      s1.add_row({telemetry ? "on" : "off", fmt_double(rps, 0),
                  fmt_double(report.p50_us() / 1e3, 2),
                  fmt_double(report.p99_us() / 1e3, 2),
                  std::to_string(telemetry ? tracer.collect().size()
                                           : std::size_t{0}),
                  std::to_string(samples)});
    }
  };
  for (int rep = 0; rep < 2; ++rep) {
    run_overhead_config(false);
    run_overhead_config(true);
  }
  std::printf("%s\n", s1.render().c_str());
  const double overhead_ratio = rps_off > 0.0 ? rps_on / rps_off : 0.0;
  std::printf(
      "telemetry-on keeps %s of the telemetry-off goodput (the stack is\n"
      "per-thread rings + one registry snapshot per sampling tick).\n\n",
      pct(overhead_ratio).c_str());
  if (smoke) {
    checker.check(overhead_ratio >= 0.95, "telemetry-overhead<=5%");
  }

  // --- Series 2+3+4: stitching, critical path, rollups (one keyed run) --
  std::printf(
      "--- stitching: 3 nodes, repl 2, keyed 800 rps, locality routing "
      "(forwards cross nodes) ---\n");
  {
    obs::TracerConfig tracer_config;
    tracer_config.ring_capacity = 1 << 18;
    tracer_config.enabled = true;
    obs::Tracer tracer(tracer_config);
    FederationOptions options = base_options(3);
    options.tracer = &tracer;
    options.node.tracer = &tracer;
    options.node.input_cache.capacity_bytes = 1.25 * 1024 * 1024;
    options.node.input_stage_scale = 0.2;
    Cluster cluster(options);
    std::vector<std::unique_ptr<obs::TimeSeriesStore>> stores;
    std::vector<obs::TimeSeriesStore*> store_ptrs;
    std::vector<const obs::TimeSeriesStore*> store_views;
    for (std::size_t i = 0; i < cluster.federation.num_nodes(); ++i) {
      stores.push_back(std::make_unique<obs::TimeSeriesStore>(
          &cluster.federation.node(i).metrics().registry(),
          obs::TimeSeriesConfig{}, &tracer));
      store_ptrs.push_back(stores.back().get());
      store_views.push_back(stores.back().get());
    }
    serve::LoadReport report;
    {
      SamplerLoop sampler(store_ptrs, &tracer, std::chrono::milliseconds(20));
      report = serve::run_open_loop(cluster.federation.submit_fn(),
                                    cluster.federation.drain_fn(),
                                    keyed_spec(horizon));
      sampler.stop();
    }
    const FederationStats stats = cluster.federation.stats();

    // Direct per-node totals BEFORE stop() for the rollup cross-check.
    std::uint64_t direct_completed = 0;
    for (std::size_t i = 0; i < cluster.federation.num_nodes(); ++i) {
      const obs::RegistrySnapshot snap =
          cluster.federation.node(i).metrics().registry().snapshot();
      const auto it = snap.counters.find("serve.completed");
      if (it != snap.counters.end()) direct_completed += it->second;
    }
    cluster.federation.stop();

    const std::vector<obs::TraceEvent> events = tracer.collect();
    const bool acyclic = obs::spans_acyclic(events);
    const double reachable = obs::root_reachable_fraction(events);
    const double stitched = obs::stitched_cross_node_fraction(events);
    const std::vector<obs::CriticalPath> paths = obs::critical_paths(events);
    std::vector<obs::CriticalPath> forwarded_paths;
    std::vector<obs::CriticalPath> local_paths;
    for (const obs::CriticalPath& path : paths) {
      (path.forward_us > 0.0 ? forwarded_paths : local_paths).push_back(path);
    }
    Table s2({"metric", "value"});
    s2.add_row({"spans collected", std::to_string(events.size())});
    s2.add_row({"ring drops", std::to_string(tracer.dropped())});
    s2.add_row({"request traces", std::to_string(paths.size())});
    s2.add_row({"forwarded traces", std::to_string(forwarded_paths.size())});
    s2.add_row({"federation forwards", std::to_string(stats.forwarded)});
    s2.add_row({"acyclic", acyclic ? "yes" : "NO"});
    s2.add_row({"root-reachable", pct(reachable)});
    s2.add_row({"multi-node single-rooted", pct(stitched)});
    std::printf("%s\n", s2.render().c_str());

    const std::string exported = obs::chrome_trace(events);
    const Status lint = obs::validate_chrome_trace(exported);
    std::printf(
        "chrome-trace export: %zu bytes, lint %s\n\n", exported.size(),
        lint.ok() ? "ok" : lint.to_string().c_str());

    std::printf("--- critical path: where the mean request's time goes ---\n");
    Table s3({"requests", "count", "total ms", "queue", "batch", "forward",
              "execute", "reply", "other"});
    const auto path_row = [&](const char* label,
                              const std::vector<obs::CriticalPath>& set) {
      const obs::CriticalPath mean = obs::mean_critical_path(set);
      const auto share = [&](double us) {
        return mean.total_us > 0.0 ? pct(us / mean.total_us) : pct(0.0);
      };
      s3.add_row({label, std::to_string(set.size()),
                  fmt_double(mean.total_us / 1e3, 2), share(mean.queue_us),
                  share(mean.batch_us), share(mean.forward_us),
                  share(mean.execute_us), share(mean.reply_us),
                  share(mean.other_us)});
    };
    path_row("local", local_paths);
    path_row("forwarded", forwarded_paths);
    path_row("all", paths);
    std::printf("%s\n", s3.render().c_str());
    std::printf(
        "forwarded requests pay the extra hop; everything else lands in\n"
        "the same queue/execute split as local ones — the stitched chain\n"
        "is what makes that attribution possible.\n\n");

    std::printf("--- rollups: merged per-node rings vs direct totals ---\n");
    const auto merged = obs::TimeSeriesStore::merged(store_views);
    const std::string latency_key =
        obs::Registry::key_of("serve.latency_us", {{"class", "tp"}});
    const double window_us = 60e6;  // generously covers the whole run
    const auto merged_p99 = obs::TimeSeriesStore::merged_percentile(
        store_views, latency_key, 99.0, window_us);
    std::uint64_t merged_completed = 0;
    std::uint64_t merged_dropped = 0;
    bool series_gauge_present = false;
    if (merged.has_value()) {
      const auto it = merged->counters.find("serve.completed");
      if (it != merged->counters.end()) merged_completed = it->second;
      const auto drop_it = merged->counters.find("obs.trace.dropped");
      if (drop_it != merged->counters.end()) merged_dropped = drop_it->second;
      series_gauge_present = merged->gauges.count("obs.registry.series") > 0;
    }
    Table s4({"metric", "merged", "direct"});
    s4.add_row({"serve.completed", std::to_string(merged_completed),
                std::to_string(direct_completed)});
    s4.add_row({"tp p99 ms",
                merged_p99 ? fmt_double(*merged_p99 / 1e3, 2) : "n/a",
                fmt_double(report.p99_us() / 1e3, 2)});
    s4.add_row({"obs.trace.dropped", std::to_string(merged_dropped),
                std::to_string(tracer.dropped())});
    std::printf("%s\n", s4.render().c_str());
    std::printf(
        "counters merge by summing reset-aware deltas; the federation p99\n"
        "comes from merging each node's windowed histogram delta — no\n"
        "central scrape needed during the run.\n\n");

    if (smoke) {
      checker.check(acyclic, "span-forest-acyclic");
      checker.check(reachable >= 1.0, "root-reachable==100%");
      checker.check(stitched >= 1.0, "multi-node-traces-single-rooted");
      checker.check(!forwarded_paths.empty(), "forwarded-traces>0");
      checker.check(tracer.dropped() == 0, "zero-trace-ring-drops");
      checker.check(lint.ok(), "chrome-trace-export-lints");
      checker.check(merged.has_value() &&
                        merged_completed == direct_completed,
                    "merged-counters==direct-sums");
      checker.check(merged_p99.has_value() && *merged_p99 > 0.0,
                    "merged-windowed-p99-computable");
      checker.check(merged_dropped == 0 && series_gauge_present,
                    "self-telemetry-zero-drops");
    }
  }

  // --- Series 5: SLO burn → shed → recover + flight recorder ------------
  std::printf(
      "--- SLO timeline: 1 node, 2000 rps offered, service 400 us; fault "
      "raises it to 2500 us at t=0.8 s ---\n");
  {
    const std::string dump_dir = "e25_flight";
    std::error_code ec;
    std::filesystem::create_directories(dump_dir, ec);

    obs::TracerConfig tracer_config;
    tracer_config.ring_capacity = 1 << 18;
    tracer_config.enabled = true;
    obs::Tracer tracer(tracer_config);
    obs::Registry obs_registry;  // SLO + flight self-telemetry

    std::atomic<long> service_delay_us{400};
    serve::Endpoint ep;
    ep.kernel = "kv";
    compiler::Variant v;
    v.id = "kv-cpu";
    v.kernel = "kv";
    v.target = compiler::TargetKind::kCpu;
    v.latency_us = 400.0;
    v.energy_uj = 10.0;
    ep.variants = {v};
    ep.handler = [&service_delay_us](const serve::Batch& batch,
                                     std::vector<double>* values) {
      std::this_thread::sleep_for(
          std::chrono::microseconds(service_delay_us.load()));
      values->clear();
      values->resize(batch.requests.size(), 0.0);
      return OkStatus();
    };

    serve::ServerOptions server_options;
    server_options.queue_capacity = 256;
    server_options.worker_threads = 2;
    server_options.batch.max_batch = 1;
    server_options.batch.max_wait = std::chrono::microseconds(200);
    server_options.tracer = &tracer;
    runtime::KnowledgeBase kb;
    serve::Server server(server_options, &kb);
    (void)server.register_endpoint(ep);

    obs::TimeSeriesStore tsdb(&server.metrics().registry(),
                              obs::TimeSeriesConfig{}, &tracer);
    obs::FlightRecorderConfig flight_config;
    flight_config.retention_us = 5e6;
    flight_config.dump_dir = dump_dir;
    obs::FlightRecorder flight(&tracer, &tsdb, flight_config, &obs_registry);
    // Breaker opens are also dump triggers (none expected in this
    // timeline — the wiring is what's exercised).
    server.mutable_breakers().set_on_open(
        [&flight](const std::string& scope, const std::string& id,
                  double now_us) {
          (void)now_us;
          (void)flight.trigger("breaker.open", {{"scope", scope}, {"id", id}});
        });

    obs::SloMonitor monitor(&obs_registry);
    obs::SloObjective objective;
    objective.key = "tenant0/tp";
    // 20 ms against a healthy ~1 ms: a scheduler hiccup on a loaded CI
    // machine must not page, the injected overload (queue growth is
    // unbounded past capacity) still crosses it within one bucket.
    objective.latency_threshold_us = 20'000.0;
    objective.target = 0.95;
    objective.fast_window_us = 400'000.0;
    objective.slow_window_us = 1'600'000.0;
    objective.fast_burn_threshold = 4.0;
    objective.slow_burn_threshold = 1.0;
    objective.bucket_us = 100'000.0;
    objective.min_events = 20;
    monitor.add_objective(objective);

    double alert_at_us = -1.0;    // first kFastBurn/kPage transition
    double recover_at_us = -1.0;  // first transition back to kOk
    double inject_at_us = -1.0;
    bool shed_engaged = false;
    Table timeline({"t ms", "transition", "fast burn", "slow burn",
                    "action"});
    monitor.set_on_alert([&](const obs::SloAlert& alert) {
      std::string action = "-";
      if (inject_at_us < 0.0) {
        // Pre-injection noise (a CI machine stall can burn a window):
        // logged, but the controller only reacts to the real incident.
        timeline.add_row(
            {fmt_double(alert.at_us / 1e3, 0),
             std::string(obs::to_string(alert.from)) + " -> " +
                 std::string(obs::to_string(alert.to)),
             fmt_double(alert.fast_burn, 1), fmt_double(alert.slow_burn, 1),
             "ignored (pre-injection)"});
        return;
      }
      if (alert.to != obs::SloAlertState::kOk) {
        if (alert_at_us < 0.0) alert_at_us = alert.at_us;
        if (!shed_engaged) {
          // Telemetry steering admission: shed 70% of throughput
          // traffic and bias the autotuner toward min-latency until the
          // burn cools. Held (not toggled per evaluation) so the
          // recovery is monotone.
          server.set_slo_shed_fraction(0.7);
          server.set_slo_degraded(true);
          shed_engaged = true;
          action = "engage shed 70%";
        }
        if (alert.to == obs::SloAlertState::kPage) {
          const auto seq =
              flight.trigger("slo.page", {{"slo", alert.key}});
          if (seq.has_value()) action += " + flight dump";
        }
      } else if (shed_engaged && recover_at_us < 0.0) {
        recover_at_us = alert.at_us;
        action = "page cleared";
      }
      timeline.add_row(
          {fmt_double(alert.at_us / 1e3, 0),
           std::string(obs::to_string(alert.from)) + " -> " +
               std::string(obs::to_string(alert.to)),
           fmt_double(alert.fast_burn, 1), fmt_double(alert.slow_burn, 1),
           action});
    });

    Status start_status = server.start();
    if (!start_status.ok()) {
      std::printf("server start failed: %s\n",
                  start_status.to_string().c_str());
    }

    std::atomic<bool> stop_traffic{false};
    std::atomic<std::uint64_t> shed_count{0};
    const std::string slo_key = objective.key;
    std::thread traffic([&] {
      std::uint64_t seq = 0;
      auto next = std::chrono::steady_clock::now();
      const auto period = std::chrono::microseconds(500);  // 2000 rps
      while (!stop_traffic.load(std::memory_order_acquire)) {
        serve::Request request;
        request.kernel = "kv";
        request.sla = serve::SlaClass::kThroughput;
        request.seed = kSeed + seq++;
        const Status admitted = server.submit(
            std::move(request), [&](const serve::Response& response) {
              monitor.record(slo_key, response.latency_us,
                             response.status.ok(), tracer.wall_now_us());
            });
        if (!admitted.ok()) {
          if (admitted.code() == StatusCode::kUnavailable) {
            // Shed at the front door by the controller's own decision:
            // counted, but not an SLO event (otherwise shedding could
            // never clear the page it was meant to fix).
            shed_count.fetch_add(1, std::memory_order_relaxed);
          } else {
            // Queue-full rejection: the overload is failing real
            // traffic — that IS an SLO violation.
            monitor.record(slo_key, 0.0, false, tracer.wall_now_us());
          }
        }
        next += period;
        std::this_thread::sleep_until(next);
      }
    });

    const double inject_after_us = 800'000.0;
    const double alert_deadline_us = 3.0 * objective.fast_window_us;
    const double hard_stop_us = 7e6;
    while (true) {
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
      const double now = tracer.wall_now_us();
      tsdb.sample(now);
      if (inject_at_us < 0.0 && now >= inject_after_us) {
        service_delay_us.store(2500);
        inject_at_us = now;
        std::printf("t=%4.0f ms: fault injected (service 400 -> 2500 us; "
                    "capacity 5000 -> 800 rps)\n",
                    now / 1e3);
        if (monitor.status(objective.key).state != obs::SloAlertState::kOk) {
          // Pre-injection noise left the state machine already alerting:
          // there will be no fresh transition to react to, so the
          // controller engages off the standing state instead.
          alert_at_us = now;
          server.set_slo_shed_fraction(0.7);
          server.set_slo_degraded(true);
          shed_engaged = true;
          (void)flight.trigger("slo.page", {{"slo", objective.key}});
        }
      }
      (void)monitor.evaluate(now);
      const bool settled =
          recover_at_us > 0.0 && now > recover_at_us + 400'000.0;
      if (settled || now > hard_stop_us) break;
    }
    stop_traffic.store(true, std::memory_order_release);
    traffic.join();
    server.drain();
    server.stop();

    std::printf("%s\n", timeline.render().c_str());
    const obs::SloStatusReport final_report = monitor.status(objective.key);
    const double alert_lag_us =
        alert_at_us > 0.0 && inject_at_us > 0.0 ? alert_at_us - inject_at_us
                                                : -1.0;
    const double recover_lag_us =
        recover_at_us > 0.0 && alert_at_us > 0.0
            ? recover_at_us - alert_at_us
            : -1.0;
    std::printf(
        "alert %s ms after injection; SLO restored %s ms after shedding "
        "engaged; %llu requests shed; %llu page(s).\n\n",
        alert_lag_us >= 0.0 ? fmt_double(alert_lag_us / 1e3, 0).c_str()
                            : "n/a",
        recover_lag_us >= 0.0 ? fmt_double(recover_lag_us / 1e3, 0).c_str()
                              : "n/a",
        static_cast<unsigned long long>(shed_count.load()),
        static_cast<unsigned long long>(final_report.pages));

    // Flight bundle: the page captured the window leading up to it.
    std::printf("--- flight recorder ---\n");
    const auto bundle = flight.bundle(0);
    bool bundle_lints = false;
    bool bundle_covers_fault = false;
    bool dump_files_exist = false;
    std::string bundle_stats = "none";
    if (bundle.has_value()) {
      const std::string bundle_trace = bundle->trace_json(2);
      bundle_lints = obs::validate_chrome_trace(bundle_trace).ok();
      bundle_covers_fault =
          inject_at_us > 0.0 && bundle->covers_us(inject_at_us);
      const std::string stem = dump_dir + "/flight-" +
                               std::to_string(bundle->seq) + "-" +
                               bundle->reason;
      dump_files_exist = std::filesystem::exists(stem + ".trace.json") &&
                         std::filesystem::exists(stem + ".metrics.json");
      bundle_stats = "reason=" + bundle->reason + ", " +
                     std::to_string(bundle->events.size()) + " events, " +
                     std::to_string(bundle_trace.size()) + " bytes, window " +
                     fmt_double(bundle->window_start_us / 1e3, 0) + ".." +
                     fmt_double(bundle->triggered_at_us / 1e3, 0) + " ms";
    }
    std::printf(
        "bundle: %s\n  lint %s, covers fault instant %s, dump files %s "
        "(%llu trigger(s), %llu suppressed)\n\n",
        bundle_stats.c_str(), bundle_lints ? "ok" : "FAILED",
        bundle_covers_fault ? "yes" : "NO",
        dump_files_exist ? "written" : "MISSING",
        static_cast<unsigned long long>(flight.triggers()),
        static_cast<unsigned long long>(flight.suppressed()));

    if (smoke) {
      checker.check(inject_at_us > 0.0 && alert_lag_us >= 0.0 &&
                        alert_lag_us <= alert_deadline_us,
                    "burn-alert-within-3-fast-windows");
      checker.check(final_report.pages >= 1, "burn-paged");
      checker.check(recover_lag_us >= 0.0 && recover_lag_us <= 3.5e6,
                    "shedding-restores-slo");
      checker.check(tracer.dropped() == 0, "zero-trace-ring-drops-slo-run");
      checker.check(bundle.has_value() && flight.triggers() >= 1,
                    "flight-bundle-captured");
      checker.check(bundle_lints, "flight-bundle-lints");
      checker.check(bundle_covers_fault, "flight-bundle-covers-fault");
      checker.check(dump_files_exist, "flight-dump-files-written");
    }
  }

  // --- nanosecond budgets ------------------------------------------------
  std::printf("--- telemetry hot-path budgets ---\n");
  {
    // TraceContext propagation: what every forward hop pays to carry the
    // trace — two 64-bit copies, budget <50 ns.
    constexpr int kHops = 1 << 20;
    obs::TraceContext ctx{1, 1};
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (int i = 0; i < kHops; ++i) {
      ctx = ctx.child(ctx.parent_span + 1);
      sink += ctx.trace_id + ctx.parent_span;
    }
    const auto t1 = std::chrono::steady_clock::now();
    const double hop_ns =
        std::chrono::duration<double, std::nano>(t1 - t0).count() / kHops;

    // TimeSeriesStore::append: ring bookkeeping only, budget <100 ns.
    obs::Registry budget_registry;
    obs::TimeSeriesConfig ring_config;
    ring_config.capacity = 128;
    obs::TimeSeriesStore budget_store(&budget_registry, ring_config);
    constexpr int kAppends = 1 << 17;
    const auto t2 = std::chrono::steady_clock::now();
    for (int i = 0; i < kAppends; ++i) {
      budget_store.append(obs::RegistrySnapshot{});
    }
    const auto t3 = std::chrono::steady_clock::now();
    const double append_ns =
        std::chrono::duration<double, std::nano>(t3 - t2).count() / kAppends;

    Table budgets({"path", "measured", "budget"});
    budgets.add_row({"TraceContext per hop", fmt_double(hop_ns, 1) + " ns",
                     "< 50 ns"});
    budgets.add_row({"TimeSeriesStore append",
                     fmt_double(append_ns, 1) + " ns", "< 100 ns"});
    std::printf("%s\n", budgets.render().c_str());
    if (sink == 0) std::printf("(unreachable sink)\n");
    if (smoke) {
      checker.check(hop_ns < 50.0, "trace-propagation<50ns/hop");
      checker.check(append_ns < 100.0, "tsdb-append<100ns");
    }
  }

  if (!smoke) {
    std::printf("run with --smoke to self-check the acceptance criteria.\n");
  }
  return checker.report("E25");
}
