// E5 — §VI-D "performance and energy efficiency": HLS acceleration vs
// software on the three use-case kernels.
//
// For each kernel we generate the full variant set and report the best CPU
// point vs the best FPGA point (latency and energy), plus where hardware
// pays off and where it does not — the crossover that motivates keeping
// *both* kinds of variants (paper §III-B).
#include <cstdio>

#include "common/table.hpp"
#include "compiler/analysis.hpp"
#include "compiler/variants.hpp"
#include "dsl/tensor_expr.hpp"
#include "hls/hls.hpp"

#include "smoke.hpp"

using namespace everest;

namespace {

struct KernelCase {
  std::string label;
  dsl::TensorProgram program;
};

std::vector<KernelCase> make_cases() {
  std::vector<KernelCase> cases;
  {
    // Energy use case: ensemble → power features, GEMM-shaped (batch of
    // grid cells × regression weights).
    dsl::TensorProgram p("energy_gemm");
    auto ens = p.input("ens", {512, 256});
    auto w = p.input("w", {256, 64});
    p.output("y", relu(matmul(ens, w)));
    cases.push_back({"energy: ensemble GEMM 512x256x64", std::move(p)});
  }
  {
    // Air-quality: plume kernel — exp-heavy elementwise chain, the shape
    // CPUs hate (special-function bound) and FPGA pipelines love.
    dsl::TensorProgram p("plume");
    auto dist2 = p.input("dist2", {512, 512});
    auto sigma = p.input("sigma", {512, 512});
    p.output("conc", exp(scale(dist2 / sigma, -0.5)) / sigma);
    cases.push_back({"airq: plume exp kernel 512x512", std::move(p)});
  }
  {
    // Traffic: PTDR batch — per-sample segment sums with sqrt/log noise
    // transforms (Monte Carlo inner loop as a tensor kernel).
    dsl::TensorProgram p("ptdr_batch");
    auto speeds = p.input("speeds", {256, 128});   // samples × segments
    auto lengths = p.input("lengths", {256, 128});
    p.output("times", sqrt(lengths / speeds) * (lengths / speeds));
    cases.push_back({"traffic: PTDR sample batch 256x128", std::move(p)});
  }
  {
    // Small kernel where hardware should NOT pay off.
    dsl::TensorProgram p("tiny");
    auto a = p.input("a", {32, 32});
    auto b = p.input("b", {32, 32});
    p.output("c", a + b);
    cases.push_back({"control: tiny vecadd 32x32", std::move(p)});
  }
  return cases;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E5: hardware acceleration of use-case kernels ===\n\n");
  Table table({"kernel", "P9 CPU us", "edge CPU us", "FPGA us",
               "vs edge", "P9 uJ", "FPGA uJ", "energy", "hw wins on"});
  for (KernelCase& kc : make_cases()) {
    auto module = kc.program.lower();
    if (!module.ok()) {
      std::printf("%s: %s\n", kc.label.c_str(),
                  module.status().to_string().c_str());
      continue;
    }
    compiler::VariantSpace space;
    space.thread_counts = {1, 4, 16};
    space.tile_sizes = {0, 64};
    space.layouts = {"soa"};
    space.unroll_factors = {1, 4, 8, 16};
    space.devices = {hls::FpgaDevice::p9_vu9p()};
    auto variants = compiler::generate_variants(
        *module, kc.program.name(), space, compiler::CpuModel::power9());
    if (!variants.ok()) {
      std::printf("%s: %s\n", kc.label.c_str(),
                  variants.status().to_string().c_str());
      continue;
    }
    double cpu_lat = 1e300, cpu_en = 1e300, fpga_lat = 1e300, fpga_en = 1e300;
    for (const auto& v : *variants) {
      if (v.target == compiler::TargetKind::kCpu) {
        if (v.latency_us < cpu_lat) cpu_lat = v.latency_us;
        if (v.energy_uj < cpu_en) cpu_en = v.energy_uj;
      } else {
        if (v.latency_us < fpga_lat) fpga_lat = v.latency_us;
        if (v.energy_uj < fpga_en) fpga_en = v.energy_uj;
      }
    }
    // Edge-class CPU latency (same kernel, weak node): the attachment the
    // paper targets for FPGA acceleration.
    auto profile = compiler::profile_kernel(*module->find(kc.program.name()));
    double edge_lat = 1e300;
    for (int threads : {1, 4}) {
      const auto est = compiler::estimate_software(
          *profile, compiler::CpuModel::edge_arm(), threads, 0, "soa");
      edge_lat = std::min(edge_lat, est.latency_us);
    }
    std::string wins;
    if (fpga_lat < edge_lat) wins += "edge-latency ";
    if (fpga_en < cpu_en) wins += "energy";
    if (wins.empty()) wins = "none";
    table.add_row({kc.label, fmt_double(cpu_lat, 1), fmt_double(edge_lat, 1),
                   fmt_double(fpga_lat, 1),
                   fmt_double(edge_lat / fpga_lat, 2) + "x",
                   fmt_double(cpu_en, 0), fmt_double(fpga_en, 0),
                   fmt_double(cpu_en / fpga_en, 2) + "x", wins});
  }
  std::printf("%s\n", table.render().c_str());
  std::printf("shape check: the single-PE accelerator beats the edge-class "
              "CPU on latency and every CPU on energy-per-inference for the "
              "streaming kernels; the 16-core POWER9 keeps the latency crown "
              "in the cloud — no one-fits-all, hence pre-generated variants "
              "+ runtime selection (paper SVI-D).\n\nE5 done.\n");
  return 0;
}
