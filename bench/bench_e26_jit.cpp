// E26 — online variant specialization: closing the compile↔serve loop.
// The JIT watches live traffic (per-kernel data-feature histograms the
// serving layer exports), mints shape-specialized variants through the
// compiler's DSE pipeline on a budgeted background service, and hot-swaps
// them into the knowledge base mid-flight. Four questions, one per series:
//
//   1. Does specialization pay? A drifting workload (the hot data-feature
//      bucket moves every few seconds) served with the JIT on vs the
//      specialization-off ablation: post-engagement p99 and mean
//      regret-vs-oracle must both improve.
//   2. Is compilation harmless? Compile work must stay inside the token
//      bucket (compile-µs per wall-second), and a server's measured p99
//      while the JIT compiles continuously must stay within 1.2x of the
//      no-compile baseline.
//   3. Is the hot swap safe? A live server keeps answering while minted
//      variant sets replace each other; zero in-flight requests may be
//      lost (epoch-based retirement: in-flight batches finish on their
//      snapshot, new batches never see retired ids).
//   4. Does the cache survive restart? A fresh process warm-restarted
//      from the persisted VariantCache must select specialized variants
//      immediately, with zero DSE reruns.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "jit/jit.hpp"
#include "serve/endpoints.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "storage/env.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::jit;

namespace {

constexpr std::uint64_t kSeed = 2026;
constexpr const char* kKernel = "aq_dispersion";

double steady_us() {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

KernelSpec make_spec() {
  KernelSpec spec;
  spec.kernel = kKernel;
  spec.profile.flops = 4e6;
  spec.profile.bytes_read = 2e6;
  spec.profile.bytes_written = 5e5;
  spec.profile.live_bytes = 1 << 20;
  spec.base_dim = 64.0;
  return spec;
}

/// The offline variant set: a compile-time sweep estimated at the
/// profiled size (scale 1). Generic (specialized_scale 0), so they are
/// eligible at every scale — but their tile choices were made blind to
/// the shapes live traffic actually sends.
std::vector<compiler::Variant> offline_variants(const KernelSpec& spec) {
  struct Knobs {
    const char* id;
    int threads;
    int tile;
    const char* layout;
  };
  const Knobs knobs[] = {{"cpu-t1-plain", 1, 0, "aos"},
                         {"cpu-t4-tile32", 4, 32, "soa"},
                         {"cpu-t8-tile128", 8, 128, "soa"}};
  std::vector<compiler::Variant> out;
  for (const Knobs& k : knobs) {
    const ShapeEstimate est =
        estimate_shaped(spec, k.threads, k.tile, k.layout, 1.0);
    compiler::Variant v;
    v.id = k.id;
    v.kernel = spec.kernel;
    v.threads = k.threads;
    v.tile = k.tile;
    v.layout = k.layout;
    v.latency_us = est.latency_us;
    v.energy_uj = est.energy_uj;
    v.bytes_in = spec.profile.bytes_read;
    v.bytes_out = spec.profile.bytes_written;
    out.push_back(std::move(v));
  }
  return out;
}

// percentile() and mean_of() come from common/stats.hpp.

// ------------------------------------------------------------ series 1 --

struct DriftReport {
  std::vector<double> round_p99_us;           ///< per round
  std::vector<double> round_mean_regret_us;   ///< per round
  std::vector<std::vector<double>> latencies; ///< per round, per request
  std::vector<std::vector<double>> regrets;
  /// Rounds that STARTED with the hot bucket already specialized (always
  /// empty for the ablation; filled by the jit-on run and reused as the
  /// comparison window for both).
  std::vector<bool> engaged;
  std::uint64_t publishes = 0;
  double granted_us = 0.0;
  double elapsed_s = 0.0;
  std::uint64_t budget_denied = 0;
  double specialized_fraction = 0.0;  ///< selections served by minted code
};

/// One closed-loop pass over the drifting workload. The execution model
/// is the same shape-aware estimator the specializer ranks candidates
/// with, so a minted variant's advantage shows up in *measured* latency;
/// the oracle is the best any knob setting could have done per request.
DriftReport run_drift(bool jit_on, int rounds_per_bucket, int per_round,
                      const std::string& cache_path) {
  const KernelSpec spec = make_spec();
  const std::vector<int> phases = {1, 3, 5};  // the hot bucket drifts

  runtime::KnowledgeBase kb;
  (void)kb.load(offline_variants(spec));
  runtime::Autotuner tuner(&kb);
  serve::ServingMetrics metrics;
  obs::Registry jit_registry;

  JitConfig config;
  config.detector.min_requests = 24;
  config.cache_path = cache_path;
  JitService jitsvc(&kb, &metrics.registry(), &jit_registry, nullptr,
                    cache_path.empty() ? nullptr : storage::Env::posix(),
                    config);
  jitsvc.register_kernel(spec);

  Rng rng(kSeed);
  DriftReport report;
  double now_us = 0.0;
  std::uint64_t specialized = 0, total = 0;

  for (std::size_t phase = 0; phase < phases.size(); ++phase) {
    const int bucket = phases[phase];
    for (int r = 0; r < rounds_per_bucket; ++r) {
      const HotTuple tuple{kKernel, bucket, "t0"};
      report.engaged.push_back(jit_on &&
                               jitsvc.cache().covers(tuple) > 0);
      std::vector<double> lat, reg;
      for (int i = 0; i < per_round; ++i) {
        const double scale =
            serve::feature_bucket_scale(bucket) * rng.uniform(0.8, 1.3);
        runtime::SystemState state;
        state.fpgas_available = 0;
        state.data_scale = scale;
        auto sel = tuner.select(kKernel, runtime::Goal{}, state);
        if (!sel.ok()) continue;
        const double measured =
            estimate_variant(spec, sel->variant, scale).latency_us;
        // Feedback at the profiled size (expectations are per scale 1).
        tuner.observe(kKernel, sel->variant.id, measured / scale,
                      estimate_variant(spec, sel->variant, scale).energy_uj /
                          scale);
        metrics.record_feature(kKernel, "t0", scale, measured);
        lat.push_back(measured);
        reg.push_back(measured - oracle_latency_us(spec, scale));
        ++total;
        if (sel->variant.specialized_scale > 0.0) ++specialized;
      }
      report.round_p99_us.push_back(percentile(lat, 0.99));
      report.round_mean_regret_us.push_back(mean_of(reg));
      report.latencies.push_back(std::move(lat));
      report.regrets.push_back(std::move(reg));
      now_us += 1e6;  // one wall-second per round
      if (jit_on) report.publishes += jitsvc.tick(now_us);
    }
  }
  const BudgetStats budget = jitsvc.service().budget_stats();
  report.granted_us = budget.granted_us;
  report.budget_denied = jitsvc.service().stats().budget_denied;
  report.elapsed_s = now_us / 1e6;
  report.specialized_fraction =
      total == 0 ? 0.0
                 : static_cast<double>(specialized) / static_cast<double>(total);
  if (jit_on && !cache_path.empty()) (void)jitsvc.persist();
  return report;
}

// ------------------------------------------------------- series 2 and 3 --

/// A variant-aware endpoint over the E26 kernel spec: the handler's
/// answer depends deterministically on the selected variant, so hot swaps
/// are exercised by real batch execution.
serve::Endpoint make_jit_endpoint(const KernelSpec& spec) {
  serve::Endpoint ep;
  ep.kernel = spec.kernel;
  ep.variants = offline_variants(spec);
  ep.variant_handler = [spec](const serve::Batch& batch,
                              const compiler::Variant* variant,
                              std::vector<double>* values) -> Status {
    for (const serve::PendingRequest& pending : batch.requests) {
      const double scale = pending.request.payload_scale;
      values->push_back(variant == nullptr
                            ? 0.0
                            : estimate_variant(spec, *variant, scale)
                                  .latency_us);
    }
    return OkStatus();
  };
  return ep;
}

/// Measures a served workload's p99 with an optional concurrent compile
/// storm (a JitService re-minting continuously, gated only by its
/// budget). Returns latency p99 in µs.
double serve_p99_under_compile(bool compile_storm,
                               std::chrono::milliseconds horizon) {
  const KernelSpec spec = make_spec();
  runtime::KnowledgeBase kb;
  serve::ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 512;
  options.fpgas_available = 0;
  serve::Server server(options, &kb);
  (void)server.register_endpoint(make_jit_endpoint(spec));
  (void)server.start();

  // The storm compiles against its OWN knowledge base: series 2 isolates
  // the CPU cost of compilation, series 3 covers swap correctness.
  runtime::KnowledgeBase storm_kb;
  VariantCache storm_cache(&storm_kb);
  ServiceConfig storm_config;
  storm_config.budget.compile_us_per_s = 50'000.0;
  storm_config.budget.burst_us = 50'000.0;
  CompilationService storm(&storm_cache, nullptr, nullptr, storm_config);
  storm.register_kernel(spec);
  std::atomic<bool> stop{false};
  std::thread storm_thread;
  if (compile_storm) {
    storm_thread = std::thread([&] {
      // The production contract: compile work runs at idle priority, so
      // on a fully loaded core serving preempts it instead of waiting
      // behind a compile slice.
      set_background_thread_priority();
      int bucket = 0;
      while (!stop.load(std::memory_order_acquire)) {
        // compile_now bypasses the coverage check, so every call is a
        // full DSE run — continuous compile pressure, budget-gated.
        (void)storm.compile_now({kKernel, bucket, "storm"}, steady_us());
        bucket = (bucket + 1) % 8;
        std::this_thread::sleep_for(std::chrono::microseconds(200));
      }
    });
  }

  serve::WorkloadSpec workload;
  workload.kernels = {kKernel};
  workload.offered_rps = 400.0;
  workload.duration = horizon;
  workload.lc_fraction = 0.0;
  workload.lc_deadline_ms = 0.0;
  workload.tp_deadline_ms = 0.0;
  workload.seed = kSeed;
  const serve::LoadReport report = serve::run_open_loop(server, workload);
  stop.store(true, std::memory_order_release);
  if (storm_thread.joinable()) storm_thread.join();
  server.stop();
  return report.p99_us();
}

struct SwapReport {
  std::uint64_t submitted = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t rejected = 0;
  std::uint64_t swaps = 0;
  std::uint64_t epoch_start = 0;
  std::uint64_t epoch_end = 0;
  bool retired_gone = false;
  bool latest_live = false;
};

/// Serves a steady stream while the JIT re-mints the hot tuple's variant
/// set over and over — every publish retires the previous version while
/// batches are in flight.
SwapReport run_hot_swap(int requests, int swaps) {
  const KernelSpec spec = make_spec();
  runtime::KnowledgeBase kb;
  serve::ServerOptions options;
  options.worker_threads = 2;
  options.queue_capacity = 4096;
  options.fpgas_available = 0;
  serve::Server server(options, &kb);
  (void)server.register_endpoint(make_jit_endpoint(spec));
  (void)server.start();

  VariantCache cache(&kb);
  CompilationService service(&cache, nullptr, nullptr, ServiceConfig{});
  service.register_kernel(spec);
  const HotTuple tuple{kKernel, 2, ""};

  SwapReport report;
  report.epoch_start = kb.epoch(kKernel);

  std::atomic<std::uint64_t> completed{0}, failed{0}, rejected{0};
  std::atomic<bool> clients_done{false};
  std::thread client([&] {
    Rng rng(kSeed);
    for (int i = 0; i < requests; ++i) {
      serve::Request request;
      request.kernel = kKernel;
      // Keep traffic inside the specialized tuple's bucket so minted
      // variants genuinely win selection while being swapped.
      request.payload_scale = 4.0 * rng.uniform(0.8, 1.3);
      request.seed = static_cast<std::uint64_t>(i);
      Status st = server.submit(request, [&](const serve::Response& r) {
        if (r.status.ok()) {
          completed.fetch_add(1);
        } else {
          failed.fetch_add(1);
        }
      });
      if (!st.ok()) rejected.fetch_add(1);
      if (i % 16 == 0) std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
    clients_done.store(true, std::memory_order_release);
  });

  // Re-mint the live tuple while the client hammers it.
  std::vector<std::string> previous_ids;
  while (!clients_done.load(std::memory_order_acquire) &&
         report.swaps < static_cast<std::uint64_t>(swaps) * 8) {
    const auto before = cache.lookup(tuple);
    if (before.has_value()) {
      previous_ids.clear();
      for (const compiler::Variant& v : before->variants) {
        previous_ids.push_back(v.id);
      }
    }
    if (service.compile_now(tuple, steady_us()).ok()) ++report.swaps;
    std::this_thread::sleep_for(std::chrono::microseconds(300));
  }
  client.join();
  server.drain();
  server.stop();

  report.submitted = static_cast<std::uint64_t>(requests);
  report.completed = completed.load();
  report.failed = failed.load();
  report.rejected = rejected.load();
  report.epoch_end = kb.epoch(kKernel);
  // The previous version's ids are retired; the latest entry is live.
  report.retired_gone = true;
  for (const std::string& id : previous_ids) {
    if (kb.find(kKernel, id).has_value()) report.retired_gone = false;
  }
  const auto latest = cache.lookup(tuple);
  report.latest_live = latest.has_value();
  if (latest.has_value()) {
    for (const compiler::Variant& v : latest->variants) {
      if (!kb.find(kKernel, v.id).has_value()) report.latest_live = false;
    }
  }
  return report;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf(
      "=== E26: online variant specialization (compile<->serve loop) ===\n\n");

  const int rounds_per_bucket = smoke ? 3 : 10;
  const int per_round = smoke ? 120 : 400;
  const std::string cache_path = "bench_e26_jitcache.json";
  std::remove(cache_path.c_str());

  // --- Series 1: drifting workload, JIT on vs specialization-off -------
  std::printf("--- drifting data features: JIT on vs ablation (%d rounds x "
              "%d req, hot bucket 1 -> 3 -> 5) ---\n",
              3 * rounds_per_bucket, per_round);
  const DriftReport on = run_drift(true, rounds_per_bucket, per_round,
                                   cache_path);
  const DriftReport off = run_drift(false, rounds_per_bucket, per_round, "");

  Table s1({"round", "p99 off (us)", "p99 jit (us)", "regret off (us)",
            "regret jit (us)", "specialized"});
  std::vector<double> on_post_lat, off_post_lat, on_post_reg, off_post_reg;
  for (std::size_t r = 0; r < on.round_p99_us.size(); ++r) {
    s1.add_row({std::to_string(r), fmt_double(off.round_p99_us[r], 1),
                fmt_double(on.round_p99_us[r], 1),
                fmt_double(off.round_mean_regret_us[r], 1),
                fmt_double(on.round_mean_regret_us[r], 1),
                on.engaged[r] ? "yes" : "-"});
    if (on.engaged[r]) {
      on_post_lat.insert(on_post_lat.end(), on.latencies[r].begin(),
                         on.latencies[r].end());
      off_post_lat.insert(off_post_lat.end(), off.latencies[r].begin(),
                          off.latencies[r].end());
      on_post_reg.insert(on_post_reg.end(), on.regrets[r].begin(),
                         on.regrets[r].end());
      off_post_reg.insert(off_post_reg.end(), off.regrets[r].begin(),
                          off.regrets[r].end());
    }
  }
  std::printf("%s\n", s1.render().c_str());
  const double p99_on = percentile(on_post_lat, 0.99);
  const double p99_off = percentile(off_post_lat, 0.99);
  const double regret_on = mean_of(on_post_reg);
  const double regret_off = mean_of(off_post_reg);
  std::printf("post-engagement (%zu req/run): p99 %s -> %s us, mean regret "
              "%s -> %s us, %s publishes, %.0f%% of jit-run selections "
              "specialized\n\n",
              on_post_lat.size(), fmt_double(p99_off, 1).c_str(),
              fmt_double(p99_on, 1).c_str(), fmt_double(regret_off, 2).c_str(),
              fmt_double(regret_on, 2).c_str(),
              std::to_string(on.publishes).c_str(),
              100.0 * on.specialized_fraction);
  checker.check(!on_post_lat.empty() && p99_on < p99_off,
                "specialization improves post-engagement p99 vs ablation");
  checker.check(!on_post_reg.empty() && regret_on < regret_off,
                "specialization reduces mean regret-vs-oracle vs ablation");

  // --- Series 2: compile work stays inside the budget ------------------
  const ServiceConfig default_service;
  const double budget_cap_us = default_service.budget.burst_us +
                               default_service.budget.compile_us_per_s *
                                   on.elapsed_s;
  std::printf("--- compile budget: granted %s us over %.0f s (cap %s us, "
              "%llu denials) ---\n",
              fmt_double(on.granted_us, 0).c_str(), on.elapsed_s,
              fmt_double(budget_cap_us, 0).c_str(),
              static_cast<unsigned long long>(on.budget_denied));
  checker.check(on.granted_us <= budget_cap_us + 1e-6,
                "compile work never exceeds the token-bucket budget");

  const auto horizon = std::chrono::milliseconds(smoke ? 150 : 500);
  // Warm up allocators/thread pools once so the quiet baseline does not
  // carry first-run cold-start cost into the ratio.
  (void)serve_p99_under_compile(false, std::chrono::milliseconds(50));
  const double p99_quiet = serve_p99_under_compile(false, horizon);
  const double p99_storm = serve_p99_under_compile(true, horizon);
  std::printf("serving p99: %s us quiet, %s us under continuous compile "
              "(ratio %s)\n\n",
              fmt_double(p99_quiet / 1.0, 1).c_str(),
              fmt_double(p99_storm / 1.0, 1).c_str(),
              fmt_double(p99_storm / std::max(p99_quiet, 1e-9), 3).c_str());
  checker.check(p99_storm <= 1.2 * p99_quiet,
                "serving p99 during compilation within 1.2x of no-compile");

  // --- Series 3: hot swap under live traffic ----------------------------
  const SwapReport swap = run_hot_swap(smoke ? 1200 : 4000, smoke ? 6 : 20);
  std::printf("--- hot swap under load: %llu swaps, epoch %llu -> %llu ---\n",
              static_cast<unsigned long long>(swap.swaps),
              static_cast<unsigned long long>(swap.epoch_start),
              static_cast<unsigned long long>(swap.epoch_end));
  std::printf("submitted %llu | completed %llu | failed %llu | rejected "
              "%llu | retired ids gone: %s | latest version live: %s\n\n",
              static_cast<unsigned long long>(swap.submitted),
              static_cast<unsigned long long>(swap.completed),
              static_cast<unsigned long long>(swap.failed),
              static_cast<unsigned long long>(swap.rejected),
              swap.retired_gone ? "yes" : "NO",
              swap.latest_live ? "yes" : "NO");
  checker.check(swap.swaps >= 2 && swap.failed == 0 &&
                    swap.completed + swap.rejected == swap.submitted &&
                    swap.epoch_end > swap.epoch_start + swap.swaps &&
                    swap.retired_gone && swap.latest_live,
                "hot swap loses zero in-flight requests (epoch retirement)");

  // --- Series 4: warm restart from the persisted cache ------------------
  {
    const KernelSpec spec = make_spec();
    runtime::KnowledgeBase kb;
    (void)kb.load(offline_variants(spec));
    serve::ServingMetrics metrics;  // no traffic yet: restart is cold-path
    JitConfig config;
    config.cache_path = cache_path;
    JitService jitsvc(&kb, &metrics.registry(), nullptr, nullptr,
                      storage::Env::posix(), config);
    jitsvc.register_kernel(spec);
    auto restored = jitsvc.warm_restart();
    const std::size_t entries = restored.ok() ? *restored : 0;

    // Selection at every drifted bucket must hit minted code immediately.
    runtime::Autotuner tuner(&kb);
    int specialized_hits = 0, probes = 0;
    for (int bucket : {1, 3, 5}) {
      runtime::SystemState state;
      state.fpgas_available = 0;
      state.data_scale = serve::feature_bucket_scale(bucket);
      auto sel = tuner.select(kKernel, runtime::Goal{}, state);
      ++probes;
      if (sel.ok() && sel->variant.specialized_scale > 0.0) {
        ++specialized_hits;
      }
    }
    const std::uint64_t compiles =
        jitsvc.service().stats().compiles_ok +
        jitsvc.service().stats().compiles_failed;
    std::printf("--- warm restart: %zu cache entries restored, %d/%d hot "
                "buckets served specialized, %llu DSE runs ---\n\n",
                entries, specialized_hits, probes,
                static_cast<unsigned long long>(compiles));
    checker.check(entries >= 3 && specialized_hits == probes && compiles == 0,
                  "warm restart serves specialized variants with zero DSE "
                  "reruns");
  }
  std::remove(cache_path.c_str());

  return checker.report("E26");
}
