// E15 — ablation of the middle-end's cost-model fidelity (DESIGN.md §6):
// rule-of-thumb roofline vs trace-based cache simulation when choosing a
// tile size for the matmul accumulation nest.
//
// The heuristic in estimate_software() assumes "tile fits L2 ⇒ efficient";
// the cache model replays the actual access trace. This bench shows where
// they agree, where the heuristic is blind (associativity conflicts,
// partial reuse), and what the simulated DRAM traffic implies for the
// memory-bound term of the roofline.
#include <cstdio>

#include "common/table.hpp"
#include "compiler/cache_model.hpp"
#include "compiler/lowering.hpp"
#include "compiler/transforms.hpp"
#include "dsl/tensor_expr.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::compiler;

namespace {

ir::Module make_matmul(std::int64_t n) {
  dsl::TensorProgram p("mm");
  auto a = p.input("a", {n, n});
  auto b = p.input("b", {n, n});
  p.output("c", matmul(a, b));
  ir::Module m = p.lower().value();
  (void)lower_to_kernel(m, "mm");
  return m;
}

}  // namespace

int main(int argc, char** argv) {
  // Accepted for uniformity; this experiment's fixed series are
  // already CI-scale, so smoke mode changes nothing.
  (void)everest::bench::smoke_mode(argc, argv);

  std::printf("=== E15: cache-simulation-backed tiling ablation ===\n\n");
  constexpr std::int64_t kN = 96;  // 3 × 72 KiB arrays
  const CacheConfig l2{64, 64, 8}; // deliberately smaller than the data

  std::printf("matmul %lldx%lld, 64 KiB 8-way L2 model — loop-order "
              "ablation (interchange is dependence-checked):\n",
              static_cast<long long>(kN), static_cast<long long>(kN));
  Table table({"loop order", "accesses", "miss rate", "DRAM MB",
               "mem time @25GB/s (us)"});
  struct OrderCase {
    const char* label;
    int swap_a;
    int swap_b;  // -1 = leave the lowered ikj order
  };
  for (const OrderCase oc : {OrderCase{"i k j (lowered)", -1, -1},
                             {"k i j", 0, 1},
                             {"j k i", 0, 2},
                             {"i j k", 1, 2}}) {
    ir::Module m = make_matmul(kN);
    if (oc.swap_a >= 0) {
      Status st = interchange_loops(*m.find("mm_kernel"), 1,
                                    static_cast<std::size_t>(oc.swap_a),
                                    static_cast<std::size_t>(oc.swap_b));
      if (!st.ok()) {
        std::printf("%s: %s\n", oc.label, st.to_string().c_str());
        continue;
      }
    }
    auto stats = simulate_kernel_cache(*m.find("mm_kernel"), 1, l2,
                                       /*max_accesses=*/1u << 26);
    if (!stats.ok()) {
      std::printf("%s: %s\n", oc.label, stats.status().to_string().c_str());
      continue;
    }
    const double mem_us = stats->dram_bytes / (25.0 * 1e3);  // 25 GB/s
    table.add_row({oc.label, std::to_string(stats->accesses),
                   fmt_double(stats->miss_rate * 100, 2) + "%",
                   fmt_double(stats->dram_bytes / 1e6, 2),
                   fmt_double(mem_us, 1)});
  }
  std::printf("%s\n", table.render().c_str());

  // Inner-only tiling does NOT change the reuse pattern — an honest
  // negative ablation (real tiling benefit needs 2-D tile + reorder).
  {
    ir::Module m = make_matmul(kN);
    (void)tile_innermost(*m.find("mm_kernel"), 1, 16);
    auto stats = simulate_kernel_cache(*m.find("mm_kernel"), 1, l2, 1u << 26);
    if (stats.ok()) {
      std::printf("inner-only tile 16: miss rate %.2f%% (unchanged — "
                  "locality needs reordering, not just strip-mining)\n\n",
                  stats->miss_rate * 100);
    }
  }

  // Cache-size sweep at a fixed kernel: where does the working set fall in?
  std::printf("cache-size sweep (untiled):\n");
  Table sizes({"L2 size", "miss rate", "DRAM MB"});
  for (std::int64_t kib : {8, 32, 128, 512}) {
    ir::Module m = make_matmul(kN);
    auto stats = simulate_kernel_cache(*m.find("mm_kernel"), 1,
                                       CacheConfig{kib, 64, 8}, 1u << 26);
    if (!stats.ok()) continue;
    sizes.add_row({std::to_string(kib) + " KiB",
                   fmt_double(stats->miss_rate * 100, 2) + "%",
                   fmt_double(stats->dram_bytes / 1e6, 2)});
  }
  std::printf("%s\n", sizes.render().c_str());
  std::printf("shape check: loop order shifts DRAM traffic at equal FLOPs "
              "(~7%% here; the dominant lever is the working-set cliff in "
              "the cache-size sweep); inner-only strip-mining is "
              "locality-neutral. The "
              "trace-based model quantifies what the fits-in-L2 heuristic "
              "only guesses — why the middle-end consults simulators "
              "(paper SIII-B).\n\nE15 done.\n");
  return 0;
}
