// E19 — the virtualized data plane quantified (paper Fig. 2: the runtime
// "manages the data movement between the nodes"; §III-A aims to "improve
// resource utilization and reduce the overall workflow processing time").
//
// Series 1: locality-aware vs locality-blind scheduling on transfer-bound
//           graphs — data gravity strictly reduces simulated fetch bytes
//           and, when transfers dominate compute, makespan.
// Series 2: serve-side input cache — warm replicas for a Zipf-skewed
//           object mix raise goodput over the cold path at bounded p99.
// Series 3: eviction-policy ablation — LRU vs LFU vs cost-aware hit rate
//           on the same skewed trace; the policy choice is measurable.
//
// `--smoke` shrinks the series for CI and self-checks the acceptance
// criteria via the exit code.
#include <cstdio>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "common/table.hpp"
#include "data/cache.hpp"
#include "data/plane.hpp"
#include "serve/loadgen.hpp"
#include "serve/server.hpp"
#include "workflow/scheduler.hpp"
#include "workflow/task_graph.hpp"

#include "smoke.hpp"

using namespace everest;
using namespace everest::serve;
using namespace everest::workflow;

namespace {

constexpr std::uint64_t kSeed = 2026;

std::vector<WorkerSpec> pool(std::size_t n) {
  std::vector<WorkerSpec> workers;
  for (std::size_t i = 0; i < n; ++i) {
    workers.push_back({"w" + std::to_string(i), 10.0, 1.0, 10.0});
  }
  return workers;
}

struct PlaneRun {
  double makespan_ms = 0.0;
  double fetched_mb = 0.0;
  std::uint64_t local_hits = 0;
  std::uint64_t cache_hits = 0;
};

PlaneRun run_plane(const TaskGraph& graph, std::size_t workers,
                   const data::PlaneConfig& plane, bool locality_aware) {
  SimulationOptions options;
  options.scheduler = SchedulerKind::kWorkStealing;
  options.seed = kSeed;
  options.data_plane = &plane;
  options.locality_aware = locality_aware;
  const auto outcome = simulate_schedule(graph, pool(workers), options);
  PlaneRun run;
  if (!outcome.ok()) {
    std::printf("simulate failed: %s\n", outcome.status().to_string().c_str());
    return run;
  }
  run.makespan_ms = outcome.value().makespan_us / 1e3;
  run.fetched_mb = outcome.value().plane.bytes_fetched / 1e6;
  run.local_hits = outcome.value().plane.local_hits;
  run.cache_hits = outcome.value().plane.cache_hits;
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = everest::bench::smoke_mode(argc, argv);
  everest::bench::SmokeChecker checker;

  std::printf("=== E19: virtualized data plane ===\n\n");

  // --- Series 1: locality-aware vs blind on transfer-bound graphs --------
  std::printf("--- data gravity vs round-robin (work stealing, 6 workers, "
              "UDP fabric) ---\n");
  data::PlaneConfig plane;
  plane.cache_bytes = 64.0 * 1024 * 1024;
  plane.shard_limit_bytes = 4.0 * 1024 * 1024;

  struct GraphCase {
    const char* name;
    TaskGraph graph;
  };
  std::vector<GraphCase> cases;
  {
    // Lane counts are kept coprime with the 6-worker pool so round-robin
    // has no accidental lane affinity.
    const std::size_t lanes = smoke ? 7 : 13;
    const std::size_t stages = smoke ? 5 : 8;
    // Chains of cheap tasks handing off fat outputs: every off-node hop
    // is pure waste a gravity scheduler avoids.
    cases.push_back({"pipeline",
                     TaskGraph::pipeline(stages, lanes, 1e7, 8e6)});
    // Partial shuffle: each reducer reads a window of 3 mappers with
    // skewed output sizes, so "where the biggest input lives" differs
    // per reducer — the signal gravity exploits.
    {
      TaskGraph shuffle;
      const std::size_t mappers = smoke ? 8 : 16;
      const std::size_t reducers = smoke ? 7 : 13;
      for (std::size_t m = 0; m < mappers; ++m) {
        TaskNode node;
        node.name = "map" + std::to_string(m);
        node.flops = 1e7;
        node.output_bytes = (4.0 + double((m * 5) % 9)) * 2e6;
        shuffle.add_task(node);
      }
      for (std::size_t r = 0; r < reducers; ++r) {
        TaskNode node;
        node.name = "reduce" + std::to_string(r);
        node.flops = 1e7;
        node.output_bytes = 1e6;
        for (std::size_t k = 0; k < 3; ++k) {
          node.deps.push_back((r + k) % mappers);
        }
        shuffle.add_task(node);
      }
      cases.push_back({"shuffle", std::move(shuffle)});
    }
    Rng rng(kSeed);
    cases.push_back({"layered",
                     TaskGraph::random_layered(smoke ? 4 : 6, smoke ? 7 : 13,
                                               3, rng, 1e7, 8e6)});
  }
  Table s1({"graph", "placement", "fetched MB", "local hits", "cache hits",
            "makespan ms"});
  for (const GraphCase& c : cases) {
    const PlaneRun blind = run_plane(c.graph, 6, plane, false);
    const PlaneRun aware = run_plane(c.graph, 6, plane, true);
    s1.add_row({c.name, "round-robin", fmt_double(blind.fetched_mb, 1),
                std::to_string(blind.local_hits),
                std::to_string(blind.cache_hits),
                fmt_double(blind.makespan_ms, 1)});
    s1.add_row({c.name, "data gravity", fmt_double(aware.fetched_mb, 1),
                std::to_string(aware.local_hits),
                std::to_string(aware.cache_hits),
                fmt_double(aware.makespan_ms, 1)});
    if (smoke &&
        !checker.check(aware.fetched_mb < blind.fetched_mb,
                       "data gravity fetches strictly less than round-robin")) {
      std::printf("  %s: gravity fetched %.2f MB, blind %.2f MB\n", c.name,
                  aware.fetched_mb, blind.fetched_mb);
    }
  }
  std::printf("%s\n", s1.render().c_str());
  std::printf("placing tasks where their largest input lives turns remote\n"
              "fetches into local reads; on transfer-bound graphs that is\n"
              "most of the traffic.\n\n");

  // --- Series 2: serve input cache under a Zipf-skewed object mix --------
  std::printf("--- serve goodput, cold vs warm input path (open loop, "
              "Zipf %.1f over %d objects, WAN input link) ---\n",
              1.1, 64);
  Table s2({"input cache", "achieved rps", "p99 ms", "input hit rate",
            "stall ms total"});
  double cold_rps = 0.0, warm_rps = 0.0;
  for (const bool warm : {false, true}) {
    ServerOptions options;
    options.worker_threads = 2;
    options.queue_capacity = 256;
    options.batch.max_batch = 4;
    options.batch.max_wait = std::chrono::microseconds(500);
    options.input_link = platform::LinkModel::edge_wan();
    if (warm) {
      options.input_cache.capacity_bytes = 32.0 * 1024 * 1024;
      options.input_cache.policy = data::EvictionPolicy::kLru;
    }
    runtime::KnowledgeBase kb;
    Server server(options, &kb);
    for (const Endpoint& ep : standard_endpoints()) {
      (void)server.register_endpoint(ep);
    }
    (void)server.start();
    WorkloadSpec spec;
    spec.kernels = {"energy_forecast"};
    spec.offered_rps = smoke ? 300.0 : 600.0;
    spec.duration = std::chrono::milliseconds(smoke ? 150 : 400);
    spec.lc_fraction = 0.0;
    spec.lc_deadline_ms = 0.0;
    spec.tp_deadline_ms = 0.0;
    spec.seed = kSeed;
    spec.num_data_objects = 64;
    spec.zipf_skew = 1.1;
    spec.input_bytes = 256.0 * 1024;
    const LoadReport report = run_open_loop(server, spec);
    const MetricsSnapshot snap = server.metrics().snapshot();
    server.stop();
    (warm ? warm_rps : cold_rps) = report.achieved_rps();
    s2.add_row({warm ? "32 MiB LRU" : "off (cold)",
                fmt_double(report.achieved_rps(), 0),
                fmt_double(report.p99_us() / 1e3, 2),
                fmt_double(100.0 * snap.input_hit_rate(), 1) + "%",
                fmt_double(snap.input_stall_us / 1e3, 1)});
  }
  std::printf("%s\n", s2.render().c_str());
  if (smoke &&
      !checker.check(warm_rps > cold_rps,
                     "warm input cache beats cold path on goodput")) {
    std::printf("  warm %.1f rps vs cold %.1f rps\n", warm_rps, cold_rps);
  }
  std::printf("the hot keys of the skewed mix stay resident, so most\n"
              "requests skip the WAN stall entirely; the cold path pays it\n"
              "on every batch.\n\n");

  // --- Series 3: eviction-policy ablation --------------------------------
  std::printf("--- eviction policy vs hit rate (Zipf 0.9 trace over mixed "
              "object sizes, 1 MiB cache) ---\n");
  const std::size_t num_objects = 200;
  const std::size_t draws = smoke ? 20000 : 100000;
  Table s3({"policy", "hit rate", "evictions", "MB evicted"});
  double min_rate = 1.0, max_rate = 0.0;
  for (const auto& [label, policy] :
       {std::pair<const char*, data::EvictionPolicy>
            {"LRU", data::EvictionPolicy::kLru},
        {"LFU", data::EvictionPolicy::kLfu},
        {"cost-aware", data::EvictionPolicy::kCostAware}}) {
    data::CacheConfig config;
    config.capacity_bytes = 1.0 * 1024 * 1024;
    config.policy = policy;
    data::Cache cache(config);
    ZipfSampler zipf(num_objects, 0.9);
    Rng rng(kSeed);
    for (std::size_t i = 0; i < draws; ++i) {
      const std::size_t obj = zipf.sample(rng);
      const data::ShardKey key{obj, 0, 0};
      // Sizes and refetch costs vary per object, decorrelated from
      // popularity — the axis the policies disagree on.
      const double bytes = (1.0 + double((obj * 7) % 13)) * 16.0 * 1024;
      const double cost_us = (1.0 + double((obj * 3) % 7)) * 250.0;
      if (!cache.lookup(key)) {
        (void)cache.insert(key, bytes, cost_us);
      }
    }
    const data::CacheStats stats = cache.stats();
    min_rate = std::min(min_rate, stats.hit_rate());
    max_rate = std::max(max_rate, stats.hit_rate());
    s3.add_row({label, fmt_double(100.0 * stats.hit_rate(), 2) + "%",
                std::to_string(stats.evictions),
                fmt_double(stats.bytes_evicted / 1e6, 1)});
  }
  std::printf("%s\n", s3.render().c_str());
  if (smoke &&
      !checker.check(max_rate - min_rate >= 0.005,
                     "eviction policy choice moves the hit rate")) {
    std::printf("  hit-rate spread %.4f < 0.005\n", max_rate - min_rate);
  }
  std::printf("with sizes and refetch costs decorrelated from popularity,\n"
              "what a policy keeps under pressure changes the hit rate —\n"
              "the ablation the plane's per-node cache knob exposes.\n\n");

  std::printf("E19 done.\n");
  if (smoke) return checker.report("E19");
  return everest::bench::kExitOk;
}
